package main

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
)

const csvHeader = "param,value,workload,ipc,branch_mpki,l1i_mpki,starv_pki,tag_pki,pfc_resteers"

// sweepArgs is a tiny but real sweep: 2 values x 2 workloads, short runs.
func sweepArgs(extra ...string) []string {
	args := []string{
		"-param", "ftq", "-values", "4,16",
		"-workloads", "server_a,spec_a",
		"-warmup", "20000", "-measure", "50000",
	}
	return append(args, extra...)
}

// TestSweepCSVShape checks the output contract: header, one row per
// (value, workload), and a GEOMEAN summary row per value, in sweep order.
func TestSweepCSVShape(t *testing.T) {
	var out bytes.Buffer
	if err := run(sweepArgs(), &out); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if lines[0] != csvHeader {
		t.Fatalf("header = %q", lines[0])
	}
	want := []string{
		"ftq,4,server_a,", "ftq,4,spec_a,", "ftq,4,GEOMEAN,",
		"ftq,16,server_a,", "ftq,16,spec_a,", "ftq,16,GEOMEAN,",
	}
	if len(lines) != 1+len(want) {
		t.Fatalf("got %d lines, want %d:\n%s", len(lines), 1+len(want), out.String())
	}
	for i, prefix := range want {
		if !strings.HasPrefix(lines[i+1], prefix) {
			t.Fatalf("line %d = %q, want prefix %q", i+1, lines[i+1], prefix)
		}
		if n := strings.Count(lines[i+1], ","); n != strings.Count(csvHeader, ",") {
			t.Fatalf("line %d has %d commas: %q", i+1, n, lines[i+1])
		}
	}
}

// TestSweepCacheDeterminism runs the same sweep uncached, cold-cached, and
// warm-cached: all three must emit byte-identical CSV.
func TestSweepCacheDeterminism(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "cache")

	var uncached, cold, warm bytes.Buffer
	if err := run(sweepArgs(), &uncached); err != nil {
		t.Fatal(err)
	}
	if err := run(sweepArgs("-cache", dir, "-parallel", "2"), &cold); err != nil {
		t.Fatal(err)
	}
	if err := run(sweepArgs("-cache", dir), &warm); err != nil {
		t.Fatal(err)
	}
	if cold.String() != uncached.String() {
		t.Errorf("cold cached output differs from uncached:\n%s\nvs\n%s", cold.String(), uncached.String())
	}
	if warm.String() != uncached.String() {
		t.Errorf("warm cached output differs from uncached:\n%s\nvs\n%s", warm.String(), uncached.String())
	}
}

// TestSweepBadInput covers the error paths users actually hit.
func TestSweepBadInput(t *testing.T) {
	for _, args := range [][]string{
		{"-param", "nope"},
		{"-values", "1,x"},
		{"-workloads", "bogus"},
	} {
		if err := run(args, &bytes.Buffer{}); err == nil {
			t.Errorf("run(%v) succeeded, want error", args)
		}
	}
}
