package dist

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"fdp/internal/obs"
	"fdp/internal/runner"
)

// WorkerOptions configure one worker process (cmd/fdpworker).
type WorkerOptions struct {
	// Slots bounds concurrent leases (non-positive = GOMAXPROCS). A
	// lease arriving with every slot busy is refused with 503, which the
	// coordinator treats as transient and routes elsewhere.
	Slots int
	// Cache, when non-nil, is the worker-local result cache: a spec
	// re-leased to the same worker replays instead of re-simulating.
	// Fleet-wide dedupe stays coordinator-mediated — the coordinator
	// checks its own content-addressed store before leasing at all.
	Cache *runner.Cache
	// Checkpoint enables post-warmup checkpoint reuse inside this worker
	// (requires Cache), exactly as in a local run.
	Checkpoint bool
	// Watchdog, when > 0, supervises each lease with the runner's
	// progress watchdog. Usually left off: the coordinator's lease
	// expiry is the distributed hang detector, and it reassigns instead
	// of just failing.
	Watchdog time.Duration
	// Manifests, when non-nil, accumulates every observed lease manifest
	// (the worker monitor's /metrics per-run source).
	Manifests *obs.ManifestLog
	// FaultHook is the chaos seam, forwarded to runner.Execute.
	FaultHook func(ctx context.Context, job, attempt int) error
}

// Worker serves the lease protocol: GET /healthz (version handshake and
// capacity) and POST /run (execute one leased spec, streaming heartbeat
// lines and a final sealed result). Every lease runs through the local
// runner.Execute path, so worker-side semantics — retry classification,
// invariant checking, caching — are the single-box semantics.
type Worker struct {
	opts  WorkerOptions
	slots chan struct{}

	done   atomic.Int64
	failed atomic.Int64
}

// NewWorker builds a worker.
func NewWorker(opts WorkerOptions) *Worker {
	if opts.Slots <= 0 {
		opts.Slots = runtime.GOMAXPROCS(0)
	}
	return &Worker{opts: opts, slots: make(chan struct{}, opts.Slots)}
}

// Handler returns the protocol mux. Mount extra endpoints (the monitor)
// on an outer mux if wanted.
func (wk *Worker) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", wk.serveHealth)
	mux.HandleFunc("/run", wk.serveRun)
	return mux
}

// Jobs returns the lifetime (done, failed) lease counts.
func (wk *Worker) Jobs() (done, failed int64) {
	return wk.done.Load(), wk.failed.Load()
}

func (wk *Worker) serveHealth(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	done, failed := wk.Jobs()
	json.NewEncoder(w).Encode(Hello{
		Proto: ProtoVersion, Epoch: runner.Epoch, Slots: cap(wk.slots),
		Done: done, Failed: failed,
	})
}

// lineWriter serializes streamed JSONL lines (the heartbeat ticker and
// the lease body write concurrently) and flushes each line through the
// chunked response immediately.
type lineWriter struct {
	mu sync.Mutex
	w  http.ResponseWriter
	rc *http.ResponseController
}

func (lw *lineWriter) writeRec(rec streamRec) error {
	b, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	lw.mu.Lock()
	defer lw.mu.Unlock()
	if _, err := lw.w.Write(append(b, '\n')); err != nil {
		return err
	}
	return lw.rc.Flush()
}

func (wk *Worker) serveRun(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	select {
	case wk.slots <- struct{}{}:
		defer func() { <-wk.slots }()
	default:
		http.Error(w, "worker at capacity", http.StatusServiceUnavailable)
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, maxJobBytes))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	var job Job
	if err := json.Unmarshal(body, &job); err != nil {
		// A request that does not even decode was corrupted in flight;
		// 400 is classified corrupt on the coordinator.
		http.Error(w, fmt.Sprintf("bad lease body: %v", err), http.StatusBadRequest)
		return
	}

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	out := &lineWriter{w: w, rc: http.NewResponseController(w)}

	sp, err := job.BuildSpec()
	if err != nil {
		wk.failed.Add(1)
		out.writeRec(streamRec{T: recError, Class: runner.Classify(err).String(), Msg: err.Error()})
		return
	}

	// Heartbeat sampler: a per-lease Status carries the attempt's live
	// heartbeat (the same plumbing /progress uses); the ticker relays its
	// cycle counter down the stream so the coordinator sees forward
	// progress, not just connection liveness.
	st := &runner.Status{}
	hbEvery := time.Duration(job.HeartbeatMS) * time.Millisecond
	if hbEvery <= 0 {
		hbEvery = 250 * time.Millisecond
	}
	if hbEvery < 10*time.Millisecond {
		hbEvery = 10 * time.Millisecond
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		t := time.NewTicker(hbEvery)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-r.Context().Done():
				return
			case <-t.C:
				var cycles uint64
				for _, j := range st.Snapshot().Jobs {
					cycles += j.Cycles
				}
				if out.writeRec(streamRec{T: recHeartbeat, Cycles: cycles}) != nil {
					return
				}
			}
		}
	}()

	results, execErr := runner.Execute(r.Context(), []runner.Spec{sp}, runner.Options{
		Parallel:        1,
		Observe:         job.Observe,
		Check:           job.Check,
		Cache:           wk.opts.Cache,
		Checkpoint:      wk.opts.Checkpoint,
		WatchdogTimeout: wk.opts.Watchdog,
		Status:          st,
		Manifests:       wk.opts.Manifests,
		FaultHook:       wk.opts.FaultHook,
	})
	close(stop)
	wg.Wait()

	res := results[0]
	ferr := execErr
	if ferr == nil {
		ferr = res.Err
	}
	if ferr != nil || res.Run == nil {
		if ferr == nil {
			ferr = fmt.Errorf("dist: lease %s produced no run", job.Lease)
		}
		wk.failed.Add(1)
		out.writeRec(streamRec{T: recError, Class: runner.Classify(ferr).String(), Msg: ferr.Error()})
		return
	}
	env, err := SealResult(job.Key, res.Run, res.Manifest)
	if err != nil {
		wk.failed.Add(1)
		out.writeRec(streamRec{T: recError, Class: runner.ClassFatal.String(), Msg: err.Error()})
		return
	}
	wk.done.Add(1)
	out.writeRec(streamRec{T: recResult, Env: env})
}
