package core

import (
	"sync/atomic"
	"time"
)

// Heartbeat is the liveness side-channel of one running simulation: the
// cycle loop stamps it at every context-poll point (every ctxCheckInterval
// cycles, microseconds of wall time), and a concurrent watchdog reads it
// to tell a slow job from a hung one. All methods are safe on a nil
// receiver and from any goroutine; Beat never allocates, so attaching a
// heartbeat keeps the steady-state cycle loop at zero allocs/op.
type Heartbeat struct {
	cycles atomic.Uint64
	wall   atomic.Int64 // UnixNano of the last beat
}

// Beat records forward progress up to the given simulated cycle.
func (h *Heartbeat) Beat(cycles uint64) {
	if h == nil {
		return
	}
	h.cycles.Store(cycles)
	h.wall.Store(time.Now().UnixNano())
}

// Cycles returns the simulated cycle of the last beat (0 before the
// first one, or on a nil receiver).
func (h *Heartbeat) Cycles() uint64 {
	if h == nil {
		return 0
	}
	return h.cycles.Load()
}

// LastBeat returns the wall-clock time of the last beat (the zero time
// before the first one, or on a nil receiver).
func (h *Heartbeat) LastBeat() time.Time {
	if h == nil {
		return time.Time{}
	}
	ns := h.wall.Load()
	if ns == 0 {
		return time.Time{}
	}
	return time.Unix(0, ns)
}
