// Command chaos is the seeded fault-injection gate behind `make
// chaos-check`: it proves the hardened execution path end to end by
// actually injecting the failures the runner claims to survive.
//
// Phase 1 (in-process faults) runs a small simulation grid with a panic, a
// hang, and a corrupt disk-cache entry planted by faultkit, and asserts
// the retry policy absorbs the panic, the watchdog kills the hang, the
// corrupt entry is quarantined (not served, not silently missed), and
// keep-going still completes every healthy job.
//
// Phase 2 (crash resume) re-execs itself, kills the child with os.Exit(9)
// mid-campaign — the kill -9 model — garbles the journal tail, then
// resumes over the same cache directory and asserts exactly the journaled
// jobs are trusted from the cache and only the unfinished ones re-run.
//
// Exit status 0 means every assertion held. On failure the working
// directory is kept for inspection.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"time"

	"fdp/internal/core"
	"fdp/internal/faultkit"
	"fdp/internal/obs"
	"fdp/internal/runner"
	"fdp/internal/synth"
)

// crashAfter is how many jobs the crash-phase child completes (and
// journals) before the injected os.Exit kills it.
const crashAfter = 2

func main() {
	var (
		seed  = flag.Uint64("seed", 0xC4A05, "fault-plan seed (chaos runs replay exactly from their seed)")
		dir   = flag.String("dir", "", "working directory (default: a temp dir, removed on success)")
		child = flag.Bool("crash-child", false, "internal: run the crash-phase campaign and die mid-run")
	)
	flag.Parse()

	if *child {
		runCrashChild(*dir)
		// runCrashChild only returns if the planned kill never fired.
		fmt.Fprintln(os.Stderr, "chaos: crash child completed without dying (exit fault never fired)")
		os.Exit(3)
	}

	root := *dir
	if root == "" {
		var err error
		root, err = os.MkdirTemp("", "fdp-chaos-")
		if err != nil {
			fail("%v", err)
		}
	}
	fmt.Printf("chaos: seed=%#x dir=%s\n", *seed, root)

	phase1(root, *seed)
	phase2(root, *seed)

	if *dir == "" {
		os.RemoveAll(root)
	}
	fmt.Println("chaos: OK")
}

// chaosSpecs is the shared campaign grid: both phases and the crash child
// must build the identical spec list, since fault plans and journal
// contents are keyed by job index and spec hash.
func chaosSpecs() []runner.Spec {
	ws, err := synth.Resolve("server_a", "client_a")
	if err != nil {
		fail("%v", err)
	}
	var specs []runner.Spec
	for _, cfg := range []core.Config{core.DefaultConfig(), core.BaselineConfig()} {
		for _, w := range ws {
			specs = append(specs, runner.WorkloadSpec(cfg, w, 10_000, 40_000))
		}
	}
	return specs
}

// phase1 injects a panic, a hang, and a corrupt cache entry into one
// keep-going Execute and asserts each is survived the advertised way.
func phase1(root string, seed uint64) {
	fmt.Println("chaos: phase 1: in-process faults (panic, hang, corrupt cache entry)")
	specs := chaosSpecs()
	cacheDir := filepath.Join(root, "phase1-cache")
	cache, err := runner.NewCache(runner.DefaultCacheCapacity, cacheDir)
	if err != nil {
		fail("%v", err)
	}

	// Plant a corrupt cache entry for the last spec: run it once to get a
	// real on-disk entry, then tear it in half. The campaign must
	// quarantine it (rename to *.corrupt) and re-simulate, not serve it.
	last := len(specs) - 1
	if _, err := runner.Execute(context.Background(), specs[last:], runner.Options{Cache: cache}); err != nil {
		fail("seeding cache entry: %v", err)
	}
	entry := filepath.Join(cacheDir, specs[last].Key()+".json")
	if err := faultkit.TruncateFrac(entry, 0.5); err != nil {
		fail("corrupting cache entry: %v", err)
	}
	// A fresh cache over the same directory, so the torn entry is read
	// back from disk instead of the in-memory copy.
	cache, err = runner.NewCache(runner.DefaultCacheCapacity, cacheDir)
	if err != nil {
		fail("%v", err)
	}

	plan := faultkit.NewPlan()
	plan.Set(0, faultkit.Fault{Kind: faultkit.Panic, Attempts: 1}) // transient: retry absorbs it
	plan.Set(1, faultkit.Fault{Kind: faultkit.Hang})               // watchdog food: fatal, quarantined

	reg := obs.NewRegistry()
	results, err := runner.Execute(context.Background(), specs, runner.Options{
		Parallel:        2,
		Cache:           cache,
		Reg:             reg,
		Check:           true,
		WatchdogTimeout: 250 * time.Millisecond,
		Retry:           runner.RetryPolicy{Attempts: 3, Base: 10 * time.Millisecond, Cap: 50 * time.Millisecond},
		KeepGoing:       true,
		FaultHook:       plan.Hook(),
	})

	var jerr *runner.Error
	if !errors.As(err, &jerr) {
		fail("phase 1: Execute returned %v, want a classified *runner.Error for the quarantined hang", err)
	}
	if !errors.Is(err, runner.ErrHung) {
		fail("phase 1: quarantined error %v does not wrap ErrHung", err)
	}
	for i, res := range results {
		if i == 1 {
			if res.Run != nil {
				fail("phase 1: hung job %d produced a run", i)
			}
			continue
		}
		if res.Run == nil {
			fail("phase 1: healthy job %d has no run (err: %v)", i, res.Err)
		}
	}
	assertCounter(reg, runner.MetricRetries, 1)
	assertCounter(reg, runner.MetricWatchdogFired, 1)
	assertCounter(reg, runner.MetricQuarantined, 1)
	assertCounter(reg, runner.MetricCacheQuarantined, 1)
	if got := plan.Injected(faultkit.Panic); got != 1 {
		fail("phase 1: injected %d panics, want 1", got)
	}
	if got := plan.Injected(faultkit.Hang); got != 1 {
		fail("phase 1: injected %d hangs, want 1", got)
	}
	if _, err := os.Stat(entry + ".corrupt"); err != nil {
		fail("phase 1: corrupt cache entry was not quarantined to *.corrupt: %v", err)
	}
	fmt.Println("chaos: phase 1: OK (panic retried, hang watchdogged, corrupt entry quarantined)")
}

// phase2 kills a child mid-campaign, garbles the journal tail, and
// asserts the resume trusts exactly the journaled results.
func phase2(root string, seed uint64) {
	fmt.Println("chaos: phase 2: crash resume (kill -9 mid-campaign, garbled journal tail)")
	dir := filepath.Join(root, "phase2")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		fail("%v", err)
	}
	exe, err := os.Executable()
	if err != nil {
		fail("%v", err)
	}
	cmd := exec.Command(exe, "-crash-child", "-dir", dir, "-seed", strconv.FormatUint(seed, 10))
	cmd.Stderr = os.Stderr
	err = cmd.Run()
	var xerr *exec.ExitError
	if !errors.As(err, &xerr) || xerr.ExitCode() != 9 {
		fail("phase 2: crash child exited %v, want exit status 9", err)
	}
	fmt.Printf("chaos: phase 2: child died with exit status 9 after %d journaled jobs\n", crashAfter)

	journalPath := filepath.Join(dir, "journal.wal")
	if err := faultkit.AppendGarbage(journalPath, seed, 37); err != nil {
		fail("garbling journal tail: %v", err)
	}

	specs := chaosSpecs()
	cache, err := runner.NewCache(runner.DefaultCacheCapacity, dir)
	if err != nil {
		fail("%v", err)
	}
	journal, err := runner.OpenJournal(journalPath)
	if err != nil {
		fail("reopening garbled journal: %v", err)
	}
	defer journal.Close()
	records, truncated := journal.Recovered()
	if records != crashAfter {
		fail("phase 2: journal recovered %d records, want %d", records, crashAfter)
	}
	if truncated == 0 {
		fail("phase 2: journal recovery truncated nothing despite the garbled tail")
	}
	fmt.Printf("chaos: phase 2: journal recovered %d records, truncated %d garbage bytes\n", records, truncated)

	reg := obs.NewRegistry()
	results, err := runner.Execute(context.Background(), specs, runner.Options{
		Cache:   cache,
		Journal: journal,
		Reg:     reg,
	})
	if err != nil {
		fail("phase 2: resume failed: %v", err)
	}
	for i, res := range results {
		if res.Run == nil {
			fail("phase 2: resumed job %d has no run", i)
		}
		if (i < crashAfter) != res.CacheHit {
			fail("phase 2: job %d cache hit = %v, want %v (journal gates cache trust)",
				i, res.CacheHit, i < crashAfter)
		}
	}
	assertCounter(reg, runner.MetricCacheHits, crashAfter)
	assertCounter(reg, runner.MetricCacheMisses, uint64(len(specs)-crashAfter))
	if journal.Len() != len(specs) {
		fail("phase 2: journal holds %d keys after resume, want %d", journal.Len(), len(specs))
	}
	fmt.Printf("chaos: phase 2: OK (resume re-ran only the %d unjournaled jobs)\n", len(specs)-crashAfter)
}

// runCrashChild runs the campaign with a journal and dies via an injected
// os.Exit(9) when the third job starts — the first two results are cached
// and journaled (both fsync'd) by then.
func runCrashChild(dir string) {
	cache, err := runner.NewCache(runner.DefaultCacheCapacity, dir)
	if err != nil {
		fail("%v", err)
	}
	journal, err := runner.OpenJournal(filepath.Join(dir, "journal.wal"))
	if err != nil {
		fail("%v", err)
	}
	plan := faultkit.NewPlan()
	plan.Set(crashAfter, faultkit.Fault{Kind: faultkit.Exit, Code: 9})
	// Parallel: 1 makes the execution order exactly the spec order, so the
	// kill lands after precisely crashAfter journaled completions.
	_, _ = runner.Execute(context.Background(), chaosSpecs(), runner.Options{
		Parallel:  1,
		Cache:     cache,
		Journal:   journal,
		FaultHook: plan.Hook(),
	})
}

func assertCounter(reg *obs.Registry, name string, want uint64) {
	if got := reg.Counter(name).Value(); got != want {
		fail("%s = %d, want %d", name, got, want)
	}
}

func fail(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "chaos: FAIL: "+format+"\n", args...)
	os.Exit(1)
}
