package bpred

// Perceptron is the Jimenez/Lin perceptron branch predictor (HPCA 2001),
// cited by the paper among the direction predictors modern frontends draw
// from. Each branch hashes to a weight vector dotted with the recent
// global history bits; training is the classic perceptron rule gated by
// the margin threshold.
type Perceptron struct {
	name      string
	weights   [][]int8 // [entry][histLen+1], weights[_][0] is the bias
	idxBits   int
	histLen   int
	threshold int32
}

// NewPerceptron builds a predictor with 2^idxBits weight vectors over
// histLen history bits.
func NewPerceptron(name string, idxBits, histLen int) *Perceptron {
	p := &Perceptron{
		name:      name,
		idxBits:   idxBits,
		histLen:   histLen,
		threshold: int32(1.93*float64(histLen) + 14),
	}
	p.weights = make([][]int8, 1<<idxBits)
	for i := range p.weights {
		p.weights[i] = make([]int8, histLen+1)
	}
	return p
}

// Perceptron8KB returns an ~8KB configuration comparable to the Fig. 12
// gshare point (256 vectors x 33 8-bit weights).
func Perceptron8KB() *Perceptron { return NewPerceptron("perceptron-8kb", 8, 32) }

// Name implements DirPredictor.
func (p *Perceptron) Name() string { return p.name }

// Specs implements DirPredictor: the perceptron reads raw history bits,
// no folded views needed.
func (p *Perceptron) Specs() []FoldSpec { return nil }

// Bind implements DirPredictor.
func (p *Perceptron) Bind(int) {}

// StorageBits implements DirPredictor.
func (p *Perceptron) StorageBits() int {
	return len(p.weights) * (p.histLen + 1) * 8
}

func (p *Perceptron) index(pc uint64) uint32 {
	return uint32(pc>>2) & (1<<uint(p.idxBits) - 1)
}

func (p *Perceptron) output(pc uint64, h *History) int32 {
	w := p.weights[p.index(pc)]
	y := int32(w[0])
	for i := 0; i < p.histLen; i++ {
		if h.Bit(i) == 1 {
			y += int32(w[i+1])
		} else {
			y -= int32(w[i+1])
		}
	}
	return y
}

// Predict implements DirPredictor.
func (p *Perceptron) Predict(pc uint64, h *History) bool {
	return p.output(pc, h) >= 0
}

// Update implements DirPredictor.
func (p *Perceptron) Update(pc uint64, h *History, taken bool) {
	y := p.output(pc, h)
	pred := y >= 0
	if pred == taken && abs32(y) > p.threshold {
		return
	}
	w := p.weights[p.index(pc)]
	adj := func(c *int8, agree bool) {
		if agree {
			if *c < 127 {
				*c++
			}
		} else if *c > -128 {
			*c--
		}
	}
	adj(&w[0], taken)
	for i := 0; i < p.histLen; i++ {
		adj(&w[i+1], (h.Bit(i) == 1) == taken)
	}
}
