package core

// Micro-program tests: hand-built images with scripted branch outcomes
// exercise the PFC and misprediction machinery precisely, instruction by
// instruction, where the synthetic workloads can only check aggregates.

import (
	"testing"

	"fdp/internal/program"
)

// scripted is a minimal Oracle over a hand-built image. cond decides
// conditional outcomes per (pc, occurrence); indirect targets come from
// tgt.
type scripted struct {
	img    *program.Image
	pc     uint64
	entry  uint64
	counts map[uint64]int
	stack  []uint64
	cond   func(pc uint64, n int) bool
	tgt    func(pc uint64, n int) uint64
}

func newScripted(img *program.Image, entry uint64) *scripted {
	return &scripted{img: img, pc: entry, entry: entry, counts: map[uint64]int{},
		cond: func(uint64, int) bool { return false },
		tgt:  func(uint64, int) uint64 { return 0 },
	}
}

func (s *scripted) Image() *program.Image { return s.img }
func (s *scripted) PC() uint64            { return s.pc }

func (s *scripted) Next() program.DynInst {
	si, ok := s.img.At(s.pc)
	if !ok {
		panic("scripted oracle escaped image")
	}
	n := s.counts[s.pc]
	s.counts[s.pc]++
	d := program.DynInst{SI: si}
	switch si.Type {
	case program.NonBranch:
		d.NextPC = si.FallThrough()
	case program.CondDirect:
		d.Taken = s.cond(s.pc, n)
		if d.Taken {
			d.NextPC = si.Target
		} else {
			d.NextPC = si.FallThrough()
		}
	case program.Jump:
		d.Taken, d.NextPC = true, si.Target
	case program.Call:
		d.Taken, d.NextPC = true, si.Target
		s.stack = append(s.stack, si.FallThrough())
	case program.IndJump, program.IndCall:
		d.Taken, d.NextPC = true, s.tgt(s.pc, n)
		if si.Type == program.IndCall {
			s.stack = append(s.stack, si.FallThrough())
		}
	case program.Return:
		d.Taken = true
		if len(s.stack) > 0 {
			d.NextPC = s.stack[len(s.stack)-1]
			s.stack = s.stack[:len(s.stack)-1]
		} else {
			d.NextPC = s.entry
		}
	}
	s.pc = d.NextPC
	return d
}

func (s *scripted) PeekDirection(pc uint64) bool {
	return s.cond(pc, s.counts[pc])
}

func (s *scripted) PeekTarget(pc uint64) (uint64, bool) {
	si, ok := s.img.At(pc)
	if !ok || !si.Type.IsIndirect() {
		return 0, false
	}
	return s.tgt(pc, s.counts[pc]), true
}

// loopImage builds: body NonBranch x (n-1), then Jump back to base.
func loopImage(t *testing.T, n int) *program.Image {
	t.Helper()
	img := program.NewImage(0x40_0000)
	for i := 0; i < n-1; i++ {
		img.Append(program.NonBranch)
	}
	j := img.Append(program.Jump)
	img.SetTarget(j, img.Base())
	if err := img.Freeze(); err != nil {
		t.Fatal(err)
	}
	return img
}

// microConfig is the default config without the stochastic backend stalls,
// so cycle-level assertions are stable.
func microConfig() Config {
	cfg := DefaultConfig()
	cfg.StallProb = 0
	return cfg
}

// TestPFCFixesBTBMissJump: the first encounter of an unconditional jump
// misses the BTB. With PFC the pre-decoder re-steers (no pipeline flush at
// all); without PFC it costs a full misprediction.
func TestPFCFixesBTBMissJump(t *testing.T) {
	for _, pfc := range []bool{true, false} {
		img := loopImage(t, 16)
		cfg := microConfig()
		cfg.PFC = pfc
		c, err := New(cfg, newScripted(img, img.Base()))
		if err != nil {
			t.Fatal(err)
		}
		c.Step(3000)
		r := c.Stats()
		if pfc {
			if r.PFCResteers == 0 {
				t.Error("PFC on: no resteers for BTB-miss jump")
			}
			if r.Mispredictions != 0 {
				t.Errorf("PFC on: %d mispredictions, want 0", r.Mispredictions)
			}
		} else {
			if r.Mispredictions == 0 {
				t.Error("PFC off: BTB-miss jump never mispredicted")
			}
			if r.PFCResteers != 0 {
				t.Errorf("PFC off: %d resteers", r.PFCResteers)
			}
		}
		// After the first resolution the jump is in the BTB: exactly one
		// corrective event total.
		if got := r.PFCResteers + r.Mispredictions; got != 1 {
			t.Errorf("pfc=%v: %d corrective events, want exactly 1", pfc, got)
		}
	}
}

// TestPFCCase2FixesHintTakenCond: a conditional that is always taken; the
// cold bimodal base predicts weakly-taken, so the first encounter is a
// BTB-miss with a taken hint — exactly PFC case 2.
func TestPFCCase2FixesHintTakenCond(t *testing.T) {
	img := program.NewImage(0x40_0000)
	for i := 0; i < 10; i++ {
		img.Append(program.NonBranch)
	}
	cpc := img.Append(program.CondDirect)
	img.SetTarget(cpc, img.Base())
	// Fall-through tail (never executed).
	for i := 0; i < 8; i++ {
		img.Append(program.NonBranch)
	}
	if err := img.Freeze(); err != nil {
		t.Fatal(err)
	}
	o := newScripted(img, img.Base())
	o.cond = func(uint64, int) bool { return true } // always taken
	cfg := microConfig()
	c, err := New(cfg, o)
	if err != nil {
		t.Fatal(err)
	}
	c.Step(3000)
	r := c.Stats()
	if r.PFCResteers == 0 {
		t.Error("PFC case 2 never fired")
	}
	if r.Mispredictions != 0 {
		t.Errorf("%d mispredictions, want 0 (PFC should fix the cold miss)", r.Mispredictions)
	}
	if r.PFCWrong != 0 {
		t.Errorf("PFCWrong = %d for an always-taken branch", r.PFCWrong)
	}
}

// TestPFCWrongOnNeverTakenCond: a never-taken conditional with a cold
// weakly-taken hint triggers a *wrong* PFC re-steer on first encounter —
// the harmful case the paper describes for strongly-biased branches
// (§VI-B), charged as a full misprediction.
func TestPFCWrongOnNeverTakenCond(t *testing.T) {
	img := program.NewImage(0x40_0000)
	for i := 0; i < 10; i++ {
		img.Append(program.NonBranch)
	}
	cpc := img.Append(program.CondDirect)
	img.SetTarget(cpc, img.Base()+4) // bogus target, never taken
	for i := 0; i < 4; i++ {
		img.Append(program.NonBranch)
	}
	j := img.Append(program.Jump)
	img.SetTarget(j, img.Base())
	if err := img.Freeze(); err != nil {
		t.Fatal(err)
	}
	o := newScripted(img, img.Base()) // cond defaults to never-taken
	cfg := microConfig()
	c, err := New(cfg, o)
	if err != nil {
		t.Fatal(err)
	}
	c.Step(4000)
	r := c.Stats()
	if r.PFCWrong == 0 {
		t.Error("wrong PFC re-steer not recorded")
	}
	if r.Mispredictions == 0 {
		t.Error("wrong PFC did not cost a misprediction")
	}
}

// TestRASPredictsReturns: a call/return pair; after warmup, returns are
// predicted by the RAS with no flushes.
func TestRASPredictsReturns(t *testing.T) {
	img := program.NewImage(0x40_0000)
	// main: 6 insts, call f, 6 insts, jump main.
	for i := 0; i < 6; i++ {
		img.Append(program.NonBranch)
	}
	callPC := img.Append(program.Call)
	for i := 0; i < 6; i++ {
		img.Append(program.NonBranch)
	}
	jmp := img.Append(program.Jump)
	img.SetTarget(jmp, img.Base())
	// f: 4 insts, return.
	fEntry := img.Append(program.NonBranch)
	for i := 0; i < 3; i++ {
		img.Append(program.NonBranch)
	}
	img.Append(program.Return)
	img.SetTarget(callPC, fEntry)
	if err := img.Freeze(); err != nil {
		t.Fatal(err)
	}
	c, err := New(microConfig(), newScripted(img, img.Base()))
	if err != nil {
		t.Fatal(err)
	}
	c.Step(2000)
	before := c.Stats().Mispredictions + c.Stats().PFCResteers
	c.Step(4000)
	after := c.Stats().Mispredictions + c.Stats().PFCResteers
	if after != before {
		t.Errorf("steady-state call/return loop still mispredicting: %d -> %d", before, after)
	}
	if c.Stats().Branches == 0 {
		t.Error("no branches retired")
	}
}

// TestIndirectLearnsTarget: a monomorphic indirect jump becomes
// predictable once the BTB holds its last target.
func TestIndirectLearnsTarget(t *testing.T) {
	img := program.NewImage(0x40_0000)
	for i := 0; i < 7; i++ {
		img.Append(program.NonBranch)
	}
	ind := img.Append(program.IndJump)
	tail := img.Append(program.NonBranch)
	_ = tail
	if err := img.Freeze(); err != nil {
		t.Fatal(err)
	}
	o := newScripted(img, img.Base())
	o.tgt = func(uint64, int) uint64 { return img.Base() } // always back to start
	_ = ind
	c, err := New(microConfig(), o)
	if err != nil {
		t.Fatal(err)
	}
	c.Step(2000)
	before := c.Stats().Mispredictions
	c.Step(4000)
	if got := c.Stats().Mispredictions; got != before {
		t.Errorf("monomorphic indirect still mispredicting: %d -> %d", before, got)
	}
}

// TestOracleSyncPanicIsAbsent: the frontend/oracle synchronization
// invariant must hold across a long mixed run (the dispatch stage panics
// on violation).
func TestOracleSyncInvariant(t *testing.T) {
	img := loopImage(t, 64)
	c, err := New(microConfig(), newScripted(img, img.Base()))
	if err != nil {
		t.Fatal(err)
	}
	c.Step(20000) // panics on violation
	if c.Retired() == 0 {
		t.Error("nothing retired")
	}
}

// TestFTQNeverExceedsCapacity exercises the frontend under a tiny FTQ.
func TestTinyFTQ(t *testing.T) {
	img := loopImage(t, 40)
	cfg := microConfig()
	cfg.FTQEntries = 1
	c, err := New(cfg, newScripted(img, img.Base()))
	if err != nil {
		t.Fatal(err)
	}
	c.Step(5000)
	if c.Retired() == 0 {
		t.Error("1-entry FTQ made no progress")
	}
}

// TestGHRFixupFlushOnUndetectedCond: under the GHR-fix policy, a
// BTB-miss not-taken conditional discovered at pre-decode forces a
// history-fixup flush of the younger FTQ entries (§III-A).
func TestGHRFixupFlushOnUndetectedCond(t *testing.T) {
	img := program.NewImage(0x40_0000)
	for i := 0; i < 9; i++ {
		img.Append(program.NonBranch)
	}
	cpc := img.Append(program.CondDirect) // never taken, never in BTB (taken-only alloc)
	img.SetTarget(cpc, img.Base())
	for i := 0; i < 5; i++ {
		img.Append(program.NonBranch)
	}
	j := img.Append(program.Jump)
	img.SetTarget(j, img.Base())
	if err := img.Freeze(); err != nil {
		t.Fatal(err)
	}
	cfg := microConfig()
	cfg.HistPolicy = HistGHRFix
	cfg.BTBAllocPolicy = AllocTakenOnly // the cond never enters the BTB
	cfg.PFC = false
	c, err := New(cfg, newScripted(img, img.Base()))
	if err != nil {
		t.Fatal(err)
	}
	c.Step(4000)
	r := c.Stats()
	if r.HistFixupFlushes == 0 {
		t.Error("undetected not-taken cond never triggered a fixup flush")
	}
	// The fixup repeats every iteration: the branch stays out of the BTB.
	if r.HistFixupFlushes < 10 {
		t.Errorf("only %d fixup flushes in 4000 cycles", r.HistFixupFlushes)
	}
}

// TestGHRFixupAbsentWithAllAlloc: the same program under all-branch
// allocation detects the conditional after its first resolution, so fixup
// flushes stop.
func TestGHRFixupAbsentWithAllAlloc(t *testing.T) {
	img := program.NewImage(0x40_0000)
	for i := 0; i < 9; i++ {
		img.Append(program.NonBranch)
	}
	cpc := img.Append(program.CondDirect)
	img.SetTarget(cpc, img.Base())
	for i := 0; i < 5; i++ {
		img.Append(program.NonBranch)
	}
	j := img.Append(program.Jump)
	img.SetTarget(j, img.Base())
	if err := img.Freeze(); err != nil {
		t.Fatal(err)
	}
	cfg := microConfig()
	cfg.HistPolicy = HistGHRFix
	cfg.BTBAllocPolicy = AllocAll
	cfg.PFC = false
	c, err := New(cfg, newScripted(img, img.Base()))
	if err != nil {
		t.Fatal(err)
	}
	c.Step(2000)
	early := c.Stats().HistFixupFlushes
	c.Step(4000)
	late := c.Stats().HistFixupFlushes
	if late != early {
		t.Errorf("fixups continued after BTB allocation: %d -> %d", early, late)
	}
}
