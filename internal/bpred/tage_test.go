package bpred

import (
	"testing"

	"fdp/internal/xrand"
)

// harness runs predict/update over a synthetic outcome sequence with a
// shared history updated by ground truth (direction mode) and returns the
// accuracy over the last half (after warmup).
func harness(t *testing.T, p DirPredictor, seq func(i int) (pc uint64, taken bool), n int) float64 {
	t.Helper()
	h := NewHistory(p.Specs())
	p.Bind(0)
	correct, measured := 0, 0
	for i := 0; i < n; i++ {
		pc, taken := seq(i)
		pred := p.Predict(pc, h)
		p.Update(pc, h, taken)
		h.InsertDir(taken)
		if i >= n/2 {
			measured++
			if pred == taken {
				correct++
			}
		}
	}
	return float64(correct) / float64(measured)
}

func TestTAGELearnsPattern(t *testing.T) {
	// A branch with period-4 pattern TTTN: far beyond bimodal, trivial
	// for short TAGE histories.
	acc := harness(t, NewTAGE(TAGE18KB()), func(i int) (uint64, bool) {
		return 0x40_0000, i%4 != 3
	}, 20000)
	if acc < 0.99 {
		t.Errorf("TAGE pattern accuracy = %.3f, want >= 0.99", acc)
	}
}

func TestTAGELearnsLongCorrelation(t *testing.T) {
	// Two interleaved branches: A follows a period-5 pattern, B repeats
	// A's outcome from 3 A-instances earlier. The combined sequence is
	// deterministic but only predictable through global history.
	var past []bool
	acc := harness(t, NewTAGE(TAGE18KB()), func(i int) (uint64, bool) {
		if i%2 == 0 {
			taken := (i/2)%5 < 2
			past = append(past, taken)
			return 0x1000, taken
		}
		k := len(past) - 3
		if k < 0 {
			return 0x2000, false
		}
		return 0x2000, past[k]
	}, 40000)
	if acc < 0.95 {
		t.Errorf("TAGE correlated accuracy = %.3f, want >= 0.95", acc)
	}
}

func TestTAGEBeatsBimodalOnPattern(t *testing.T) {
	seq := func(i int) (uint64, bool) { return 0x8000, i%3 == 0 } // TNN
	tage := harness(t, NewTAGE(TAGE18KB()), seq, 20000)
	bim := harness(t, NewBimodal(12), seq, 20000)
	if tage <= bim {
		t.Errorf("TAGE %.3f not better than bimodal %.3f on pattern", tage, bim)
	}
}

func TestTAGEBiasedBranches(t *testing.T) {
	// Many distinct strongly-biased branches: bimodal-style behaviour.
	rng := xrand.New(9)
	acc := harness(t, NewTAGE(TAGE18KB()), func(i int) (uint64, bool) {
		pc := uint64(0x40_0000 + (i%256)*4)
		return pc, rng.Bool(0.98)
	}, 50000)
	if acc < 0.95 {
		t.Errorf("TAGE biased accuracy = %.3f", acc)
	}
}

func TestTAGEConfigSizes(t *testing.T) {
	small := NewTAGE(TAGE9KB()).StorageBits()
	base := NewTAGE(TAGE18KB()).StorageBits()
	big := NewTAGE(TAGE36KB()).StorageBits()
	if !(small < base && base < big) {
		t.Errorf("sizes not monotone: %d %d %d", small, base, big)
	}
	// The baseline should be in the vicinity of 18KB (within 40%).
	kb := float64(base) / 8 / 1024
	if kb < 11 || kb > 25 {
		t.Errorf("baseline TAGE size = %.1fKB, want ~18KB", kb)
	}
	// Geometric history lengths: increasing, max near 260.
	tables := TAGE18KB().Tables
	for i := 1; i < len(tables); i++ {
		if tables[i].HistLen <= tables[i-1].HistLen {
			t.Errorf("table %d histlen %d not increasing", i, tables[i].HistLen)
		}
	}
	if got := tables[len(tables)-1].HistLen; got != 260 {
		t.Errorf("max history length = %d, want 260", got)
	}
}

func TestTAGEDeterministic(t *testing.T) {
	run := func() []bool {
		p := NewTAGE(TAGE18KB())
		h := NewHistory(p.Specs())
		p.Bind(0)
		rng := xrand.New(4)
		var preds []bool
		for i := 0; i < 5000; i++ {
			pc := uint64(0x1000 + (i%97)*4)
			taken := rng.Bool(0.6)
			preds = append(preds, p.Predict(pc, h))
			p.Update(pc, h, taken)
			h.InsertDir(taken)
		}
		return preds
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic at %d", i)
		}
	}
}

func TestGshareLearnsBias(t *testing.T) {
	acc := harness(t, Gshare8KB(), func(i int) (uint64, bool) {
		return uint64(0x2000 + (i%64)*4), i%64 < 48 // per-pc constant
	}, 30000)
	if acc < 0.95 {
		t.Errorf("gshare accuracy = %.3f", acc)
	}
}

func TestGshareWeakerThanTAGEOnHistory(t *testing.T) {
	// Period-24 pattern on one pc: TAGE's long histories win.
	seq := func(i int) (uint64, bool) { return 0x3000, (i/3)%8 == 0 }
	tage := harness(t, NewTAGE(TAGE18KB()), seq, 40000)
	gsh := harness(t, Gshare8KB(), seq, 40000)
	if tage < gsh {
		t.Errorf("TAGE %.3f < gshare %.3f on long pattern", tage, gsh)
	}
}

func TestGshareStorage(t *testing.T) {
	if got := Gshare8KB().StorageBits(); got != 8*1024*8 {
		t.Errorf("gshare storage = %d bits, want 64Ki", got)
	}
}

func TestPerfectDir(t *testing.T) {
	outcomes := map[uint64]bool{0x10: true, 0x20: false}
	p := &PerfectDir{Oracle: func(pc uint64) bool { return outcomes[pc] }}
	if !p.Predict(0x10, nil) || p.Predict(0x20, nil) {
		t.Error("PerfectDir does not follow oracle")
	}
	if p.StorageBits() != 0 || len(p.Specs()) != 0 {
		t.Error("PerfectDir claims storage or history")
	}
	p.Update(0x10, nil, false) // must be a no-op, not a panic
	if p.Name() == "" {
		t.Error("empty name")
	}
}

func TestBimodalBasics(t *testing.T) {
	b := NewBimodal(10)
	h := NewHistory(nil)
	// Initialized weakly taken.
	if !b.Predict(0x4, h) {
		t.Error("initial prediction not taken")
	}
	b.Update(0x4, h, false)
	b.Update(0x4, h, false)
	if b.Predict(0x4, h) {
		t.Error("did not learn not-taken")
	}
	// Saturation: never out of range.
	for i := 0; i < 10; i++ {
		b.Update(0x4, h, true)
	}
	if !b.Predict(0x4, h) {
		t.Error("did not learn taken")
	}
	if b.Name() != "bimodal" || b.StorageBits() != 2048 {
		t.Errorf("meta: %s %d", b.Name(), b.StorageBits())
	}
}

func TestPredictorsHandleWrongPathPCs(t *testing.T) {
	// Predict must be safe for arbitrary PCs (wrong-path addresses).
	preds := []DirPredictor{NewTAGE(TAGE18KB()), Gshare8KB(), NewBimodal(8)}
	for _, p := range preds {
		h := NewHistory(p.Specs())
		p.Bind(0)
		for _, pc := range []uint64{0, 1, 3, 0xffff_ffff_ffff_fffc, 0xdead_beef} {
			p.Predict(pc, h) // no panic
		}
	}
}

func BenchmarkTAGEPredict(b *testing.B) {
	p := NewTAGE(TAGE18KB())
	h := NewHistory(p.Specs())
	p.Bind(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Predict(uint64(0x40_0000+(i%1024)*4), h)
	}
}

func BenchmarkTAGEUpdate(b *testing.B) {
	p := NewTAGE(TAGE18KB())
	h := NewHistory(p.Specs())
	p.Bind(0)
	rng := xrand.New(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Update(uint64(0x40_0000+(i%1024)*4), h, rng.Bool(0.5))
	}
}

func TestPredictorMetaMethods(t *testing.T) {
	// Exercise the trivial interface plumbing on every predictor.
	preds := []DirPredictor{
		NewTAGE(TAGE18KB()), Gshare8KB(), NewBimodal(8),
		TAGESCL24KB(), Perceptron8KB(), &PerfectDir{Oracle: func(uint64) bool { return true }},
	}
	for _, p := range preds {
		if p.Name() == "" {
			t.Errorf("%T has empty name", p)
		}
		p.Bind(0) // must not panic
		h := NewHistory(p.Specs())
		if h.NumFolds() != len(p.Specs()) {
			t.Errorf("%s: NumFolds %d != specs %d", p.Name(), h.NumFolds(), len(p.Specs()))
		}
		p.Predict(0x40, h)
		p.Update(0x40, h, true)
		p.Update(0x40, h, false)
	}
}

func TestGshareUpdateSaturation(t *testing.T) {
	g := Gshare8KB()
	h := NewHistory(g.Specs())
	g.Bind(0)
	for i := 0; i < 10; i++ {
		g.Update(0x40, h, true)
	}
	if !g.Predict(0x40, h) {
		t.Error("saturated-taken counter predicts not-taken")
	}
	for i := 0; i < 10; i++ {
		g.Update(0x40, h, false)
	}
	if g.Predict(0x40, h) {
		t.Error("saturated-not-taken counter predicts taken")
	}
}

func TestTAGEAllocationAging(t *testing.T) {
	// Hammer mispredictions on many branches: the allocator must age
	// usefulness counters rather than deadlock when all candidates are
	// useful. Verified by accuracy still improving on a final stable phase.
	p := NewTAGE(TAGE9KB())
	h := NewHistory(p.Specs())
	p.Bind(0)
	rng := xrand.New(21)
	for i := 0; i < 60000; i++ {
		pc := uint64(0x1000 + (i%4096)*4)
		taken := rng.Bool(0.5) // chaos phase: constant allocation pressure
		p.Update(pc, h, taken)
		h.InsertDir(taken)
	}
	correct := 0
	const n = 20000
	for i := 0; i < n; i++ {
		pc := uint64(0x9000_0000 + (i%16)*4)
		taken := i%4 == 0
		if p.Predict(pc, h) == taken {
			correct++
		}
		p.Update(pc, h, taken)
		h.InsertDir(taken)
	}
	if acc := float64(correct) / n; acc < 0.90 {
		t.Errorf("post-chaos accuracy %.3f; allocator wedged?", acc)
	}
}
