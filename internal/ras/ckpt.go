package ras

import "fdp/internal/ckpt"

const tagRAS = 0x52415331 // "RAS1"

// SaveState encodes the full entry ring (dead slots included, so a
// restored stack is bit-identical to the saved one), the top/size
// cursors, and the statistics counters, which measurement reports read
// cumulatively.
func (r *RAS) SaveState(w *ckpt.Writer) {
	w.Tag(tagRAS)
	w.U64s(r.entries)
	w.Int(r.top)
	w.Int(r.size)
	w.U64(r.Pushes)
	w.U64(r.Pops)
	w.U64(r.Underflows)
}

// LoadState restores state written by SaveState into a RAS of the same
// depth.
func (r *RAS) LoadState(rd *ckpt.Reader) {
	rd.Tag(tagRAS)
	rd.U64s(r.entries)
	r.top = rd.Int()
	r.size = rd.Int()
	if rd.Err() == nil && (r.size < 0 || r.size > len(r.entries) || r.top < 0 || r.top >= len(r.entries)) {
		rd.Failf("ras: cursors out of range: top=%d size=%d depth=%d", r.top, r.size, len(r.entries))
		return
	}
	r.Pushes = rd.U64()
	r.Pops = rd.U64()
	r.Underflows = rd.U64()
}
