package dist

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"fdp/internal/obs"
	"fdp/internal/runner"
	"fdp/internal/stats"
)

// Config configures a Coordinator. The zero value of every field is
// usable; only Workers is required.
type Config struct {
	// Workers are the worker base URLs ("http://host:port").
	Workers []string
	// Client issues the lease requests. Replaceable for fault injection
	// (faultkit.NewTransport); defaults to a plain streaming client.
	Client *http.Client
	// LeaseTimeout is the progress deadline of one lease: a worker whose
	// heartbeat stream shows no forward progress for this long has its
	// lease expired and reassigned (default 15s). This — not the local
	// watchdog — is the distributed hang detector, because expiry
	// reassigns the job to a surviving worker instead of failing it.
	LeaseTimeout time.Duration
	// HeartbeatEvery is the heartbeat cadence requested from workers
	// (default LeaseTimeout/5, clamped to [10ms, 1s]).
	HeartbeatEvery time.Duration
	// MaxLeases bounds lease assignments per job per attempt (default
	// 3 per worker, minimum 4).
	MaxLeases int
	// MaxWorkerFails is how many consecutive lease failures mark a
	// worker lost (default 3). Version skew loses a worker immediately.
	MaxWorkerFails int
	// MaxCorrupt bounds corrupt envelopes tolerated per job before the
	// job fails with the corrupt class (default 3) — a persistently
	// corrupting link must not retry forever.
	MaxCorrupt int
	// Backoff paces reassignments (Base/Cap only; default 25ms–500ms).
	// Jitter is deterministic per (spec key, assignment), like the
	// runner's retry backoff.
	Backoff runner.RetryPolicy
}

func (c Config) normalized() Config {
	if c.Client == nil {
		c.Client = &http.Client{}
	}
	if c.LeaseTimeout <= 0 {
		c.LeaseTimeout = 15 * time.Second
	}
	if c.HeartbeatEvery <= 0 {
		c.HeartbeatEvery = c.LeaseTimeout / 5
	}
	if c.HeartbeatEvery < 10*time.Millisecond {
		c.HeartbeatEvery = 10 * time.Millisecond
	}
	if c.HeartbeatEvery > time.Second {
		c.HeartbeatEvery = time.Second
	}
	if c.MaxLeases <= 0 {
		c.MaxLeases = 3 * len(c.Workers)
		if c.MaxLeases < 4 {
			c.MaxLeases = 4
		}
	}
	if c.MaxWorkerFails <= 0 {
		c.MaxWorkerFails = 3
	}
	if c.MaxCorrupt <= 0 {
		c.MaxCorrupt = 3
	}
	if c.Backoff.Base <= 0 {
		c.Backoff.Base = 25 * time.Millisecond
	}
	if c.Backoff.Cap <= 0 {
		c.Backoff.Cap = 500 * time.Millisecond
	}
	return c
}

// workerState is the coordinator's view of one worker.
type workerState struct {
	url string

	mu          sync.Mutex
	lost        bool
	lostReason  string
	consecFails int
	inflight    int
	slots       int
	lease       string // most recent lease label, "" when idle
	lastBeat    time.Time
	done        int64
	failed      int64
}

func (w *workerState) leaseStart(label string) {
	w.mu.Lock()
	w.inflight++
	w.lease = label
	w.mu.Unlock()
}

func (w *workerState) beat() {
	w.mu.Lock()
	w.lastBeat = time.Now()
	w.mu.Unlock()
}

func (w *workerState) leaseDone() {
	w.mu.Lock()
	w.inflight--
	w.lease = ""
	w.done++
	w.consecFails = 0
	w.mu.Unlock()
}

// leaseFailed records a failed lease; it reports whether this failure
// crossed the consecutive-failure threshold and lost the worker.
func (w *workerState) leaseFailed(maxFails int, reason string) (lostNow bool) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.inflight--
	w.lease = ""
	w.failed++
	w.consecFails++
	if !w.lost && w.consecFails >= maxFails {
		w.lost = true
		w.lostReason = reason
		return true
	}
	return false
}

// lose marks the worker permanently dead (version skew); reports
// whether this call made the transition.
func (w *workerState) lose(reason string) bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.lost {
		return false
	}
	w.lost = true
	w.lostReason = reason
	return true
}

func (w *workerState) usable() bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	return !w.lost
}

// Coordinator implements runner.Backend over a fleet of HTTP workers.
// One Coordinator serves any number of concurrent BackendJob calls (the
// scheduler pool); all fleet state is internally synchronized.
type Coordinator struct {
	cfg     Config
	workers []*workerState
	nextRR  atomic.Int64 // round-robin tiebreak cursor

	// Campaign counters (FleetSnapshot).
	leases    atomic.Int64
	reassigns atomic.Int64
	expired   atomic.Int64
	corrupt   atomic.Int64
	dups      atomic.Int64
	lostN     atomic.Int64
	fallbacks atomic.Int64
}

var _ runner.Backend = (*Coordinator)(nil)

// NewCoordinator builds a coordinator over the given fleet. Call Check
// to probe /healthz eagerly (version handshake, capacity); without it
// workers are assumed single-slot and skew is caught at the first
// envelope.
func NewCoordinator(cfg Config) (*Coordinator, error) {
	if len(cfg.Workers) == 0 {
		return nil, fmt.Errorf("dist: no workers configured")
	}
	cfg = cfg.normalized()
	c := &Coordinator{cfg: cfg}
	seen := map[string]bool{}
	for _, raw := range cfg.Workers {
		u, err := url.Parse(strings.TrimRight(raw, "/"))
		if err != nil || u.Scheme == "" || u.Host == "" {
			return nil, fmt.Errorf("dist: bad worker URL %q (want http://host:port)", raw)
		}
		base := u.Scheme + "://" + u.Host
		if seen[base] {
			return nil, fmt.Errorf("dist: duplicate worker %q", base)
		}
		seen[base] = true
		c.workers = append(c.workers, &workerState{url: base, slots: 1})
	}
	return c, nil
}

// FromFlag builds a coordinator from a -workers flag value (comma-
// separated worker base URLs) with default fault tolerance.
func FromFlag(list string) (*Coordinator, error) {
	var urls []string
	for _, tok := range strings.Split(list, ",") {
		if tok = strings.TrimSpace(tok); tok != "" {
			urls = append(urls, tok)
		}
	}
	return NewCoordinator(Config{Workers: urls})
}

// Check probes every worker's /healthz: it records capacity, loses
// version-skewed workers immediately, and fails only when not a single
// worker is healthy — a partially-up fleet is a working fleet.
func (c *Coordinator) Check(ctx context.Context) error {
	var errs []string
	healthy := 0
	for _, w := range c.workers {
		hello, err := c.hello(ctx, w)
		if err != nil {
			errs = append(errs, fmt.Sprintf("%s: %v", w.url, err))
			continue
		}
		if hello.Proto != ProtoVersion || hello.Epoch != runner.Epoch {
			reason := fmt.Sprintf("version skew: worker proto=%d epoch=%d, coordinator proto=%d epoch=%d",
				hello.Proto, hello.Epoch, ProtoVersion, runner.Epoch)
			if w.lose(reason) {
				c.lostN.Add(1)
			}
			errs = append(errs, fmt.Sprintf("%s: %s", w.url, reason))
			continue
		}
		w.mu.Lock()
		if hello.Slots > 0 {
			w.slots = hello.Slots
		}
		w.mu.Unlock()
		healthy++
	}
	if healthy == 0 {
		return fmt.Errorf("dist: no healthy workers: %s", strings.Join(errs, "; "))
	}
	return nil
}

func (c *Coordinator) hello(ctx context.Context, w *workerState) (*Hello, error) {
	ctx, cancel := context.WithTimeout(ctx, 5*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, w.url+"/healthz", nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.cfg.Client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("healthz: HTTP %d", resp.StatusCode)
	}
	var h Hello
	if err := json.NewDecoder(io2MB(resp)).Decode(&h); err != nil {
		return nil, fmt.Errorf("healthz: %w", err)
	}
	return &h, nil
}

// pick chooses the lease target: a usable worker, preferring free slots
// over oversubscription, fewer consecutive failures, then lower load,
// avoiding skipURL when any alternative exists. Returns nil when the
// whole fleet is lost.
func (c *Coordinator) pick(skipURL string) *workerState {
	type cand struct {
		w                *workerState
		free             bool
		consecFails, inflight int
	}
	var cands []cand
	for _, w := range c.workers {
		w.mu.Lock()
		if !w.lost {
			cands = append(cands, cand{w: w, free: w.inflight < w.slots,
				consecFails: w.consecFails, inflight: w.inflight})
		}
		w.mu.Unlock()
	}
	if len(cands) == 0 {
		return nil
	}
	if len(cands) > 1 && skipURL != "" {
		kept := cands[:0]
		for _, cd := range cands {
			if cd.w.url != skipURL {
				kept = append(kept, cd)
			}
		}
		if len(kept) > 0 {
			cands = kept
		}
	}
	best := cands[0]
	for _, cd := range cands[1:] {
		switch {
		case cd.free != best.free:
			if cd.free {
				best = cd
			}
		case cd.consecFails != best.consecFails:
			if cd.consecFails < best.consecFails {
				best = cd
			}
		case cd.inflight < best.inflight:
			best = cd
		}
	}
	return best.w
}

// loseWorker marks a worker dead and emits the worker_lost event on the
// observing job's timeline.
func (c *Coordinator) loseWorker(w *workerState, reason string, job runner.BackendJob) {
	if w.lose(reason) {
		c.lostN.Add(1)
		job.Spans.Event(job.Label, job.Index, job.Attempt, obs.SpanWorkerLost, w.url, reason)
	}
}

// outcome is one lease's terminal report (or its expiry notice).
type outcome struct {
	run     *stats.Run
	m       *obs.Manifest
	err     error
	w       *workerState
	assign  int
	expired bool // expiry notice: the lease keeps draining in the background
}

// raceSlot is the per-job first-valid-result-wins gate. Expired leases
// keep draining while a replacement runs; whichever produces a valid
// envelope first claims the slot, and any later valid result is counted
// as a deduped double-completion and dropped.
type raceSlot struct {
	mu  sync.Mutex
	won bool
}

func (r *raceSlot) claim() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.won {
		return false
	}
	r.won = true
	return true
}

// Run implements runner.Backend: lease the spec out, supervise the
// lease, reassign on expiry or classified-transient failure, and return
// the first valid result. Deterministic failure classes return as-is
// (the runner's retry loop and quarantine own the policy); losing the
// whole fleet returns runner.ErrBackendUnavailable so Execute degrades
// to local execution.
func (c *Coordinator) Run(ctx context.Context, job runner.BackendJob) (*stats.Run, *obs.Manifest, error) {
	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	race := &raceSlot{}
	// Buffered for every possible message: one expiry notice plus one
	// final outcome per lease, so no lease goroutine ever blocks on a
	// departed Run.
	results := make(chan outcome, 2*c.cfg.MaxLeases+2)

	var (
		launched   int
		active     int
		corruptN   int
		lastErr    error
		skipURL    string
	)
	launch := func() bool {
		if launched >= c.cfg.MaxLeases {
			return false
		}
		w := c.pick(skipURL)
		if w == nil {
			return false
		}
		launched++
		active++
		c.leases.Add(1)
		go c.runLease(runCtx, w, job, launched, race, results)
		return true
	}
	if !launch() {
		c.fallbacks.Add(1)
		return nil, nil, fmt.Errorf("%w: every worker is lost", runner.ErrBackendUnavailable)
	}

	reassign := func(o outcome, class string, detail error) error {
		c.reassigns.Add(1)
		job.Spans.Event(job.Label, job.Index, job.Attempt, obs.SpanReassign, class, detail.Error())
		skipURL = o.w.url
		if serr := sleepCtx(runCtx, c.cfg.Backoff.Backoff(o.assign, runner.BackoffSeed(job.Key))); serr != nil {
			return serr
		}
		launch() // false when budget or fleet is exhausted; the loop drains
		return nil
	}

	for active > 0 {
		var o outcome
		select {
		case <-ctx.Done():
			return nil, nil, ctx.Err()
		case o = <-results:
		}
		if o.expired {
			// The lease showed no forward progress for LeaseTimeout. It
			// keeps draining in the background (a slow-but-alive worker can
			// still win the race); for assignment purposes it has failed.
			active--
			c.expired.Add(1)
			lastErr = fmt.Errorf("dist: lease %d on %s expired (no progress for %v)", o.assign, o.w.url, c.cfg.LeaseTimeout)
			if o.w.leaseFailed(c.cfg.MaxWorkerFails, "lease expired") {
				c.lostN.Add(1)
				job.Spans.Event(job.Label, job.Index, job.Attempt, obs.SpanWorkerLost, o.w.url, "consecutive lease failures")
			}
			if err := reassign(o, "lease-expired", lastErr); err != nil {
				return nil, nil, err
			}
			continue
		}
		if o.err == nil {
			o.w.leaseDone()
			return o.run, o.m, nil
		}
		active--
		lastErr = o.err
		class := runner.Classify(o.err)
		switch {
		case errors.Is(o.err, ErrVersionSkew):
			// Skew is fatal for the worker, not the job: quarantine the
			// worker and run the spec elsewhere.
			o.w.leaseFailed(c.cfg.MaxWorkerFails, "version skew")
			c.loseWorker(o.w, o.err.Error(), job)
			if err := reassign(o, "version-skew", o.err); err != nil {
				return nil, nil, err
			}
		case class == runner.ClassCorruptInput:
			corruptN++
			c.corrupt.Add(1)
			if o.w.leaseFailed(c.cfg.MaxWorkerFails, "corrupt results") {
				c.lostN.Add(1)
				job.Spans.Event(job.Label, job.Index, job.Attempt, obs.SpanWorkerLost, o.w.url, "consecutive lease failures")
			}
			if corruptN >= c.cfg.MaxCorrupt {
				// A persistently corrupting path: stop burning the fleet on
				// this job and surface the corrupt class.
				return nil, nil, &runner.Error{Class: runner.ClassCorruptInput, Job: job.Label, Attempts: o.assign, Err: o.err}
			}
			if err := reassign(o, "corrupt", o.err); err != nil {
				return nil, nil, err
			}
		case class == runner.ClassTransient:
			if o.w.leaseFailed(c.cfg.MaxWorkerFails, "consecutive lease failures") {
				c.lostN.Add(1)
				job.Spans.Event(job.Label, job.Index, job.Attempt, obs.SpanWorkerLost, o.w.url, "consecutive lease failures")
			}
			if err := reassign(o, "transient", o.err); err != nil {
				return nil, nil, err
			}
		default:
			// A deterministic worker-side failure (invariant violation, bad
			// spec): reassigning replays it bit-for-bit. Hand it straight to
			// the runner's classification machinery.
			o.w.leaseFailed(c.cfg.MaxWorkerFails, "job failure")
			return nil, nil, o.err
		}
	}
	// Every lease is spent and none produced a valid result.
	usable := 0
	for _, w := range c.workers {
		if w.usable() {
			usable++
		}
	}
	if lastErr == nil {
		lastErr = fmt.Errorf("dist: lease budget exhausted")
	}
	if usable == 0 {
		c.fallbacks.Add(1)
		return nil, nil, fmt.Errorf("%w: %v", runner.ErrBackendUnavailable, lastErr)
	}
	if _, ok := lastErr.(*runner.Error); !ok {
		lastErr = &runner.Error{Class: runner.Classify(lastErr), Job: job.Label, Attempts: launched, Err: lastErr}
	}
	return nil, nil, lastErr
}

// runLease executes one lease: POST the job, relay heartbeats into the
// attempt's progress heartbeat, supervise forward progress against
// LeaseTimeout, and deliver the terminal outcome. On expiry it sends a
// notice and keeps draining, so a merely-slow worker can still complete
// the race (dedup counts the loser).
func (c *Coordinator) runLease(ctx context.Context, w *workerState, job runner.BackendJob, assign int, race *raceSlot, out chan<- outcome) {
	label := fmt.Sprintf("%.12s#%d.%d", job.Key, job.Attempt, assign)
	w.leaseStart(job.Label)
	leaseStart := time.Now()
	expired := false

	finishSpan := func(errText string) {
		job.Spans.Span(job.Label, job.Index, job.Attempt, obs.SpanLease, leaseStart, time.Now(), w.url, errText)
	}
	// fail delivers a terminal failure (or just worker bookkeeping when
	// the expiry notice already reported this lease to Run).
	fail := func(err error) {
		finishSpan(err.Error())
		if expired {
			w.mu.Lock()
			w.inflight--
			w.lease = ""
			w.failed++
			w.mu.Unlock()
			return
		}
		out <- outcome{err: err, w: w, assign: assign}
	}

	body, err := json.Marshal(JobFromBackend(job, label, c.cfg.HeartbeatEvery.Milliseconds()))
	if err != nil {
		fail(fmt.Errorf("dist: encoding lease %s: %w", label, err))
		return
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, w.url+"/run", bytes.NewReader(body))
	if err != nil {
		fail(fmt.Errorf("dist: lease %s: %w", label, err))
		return
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.cfg.Client.Do(req)
	if err != nil {
		if errors.Is(err, context.Canceled) {
			fail(err)
			return
		}
		// The request never completed (refused, reset, or the worker died
		// mid-request — SIGKILL shows up as a bare EOF here). Leases are
		// idempotent, so whatever broke it, retrying elsewhere is safe.
		fail(&runner.Error{Class: runner.ClassTransient, Job: job.Label, Attempts: assign,
			Err: fmt.Errorf("dist: lease %s to %s: %w", label, w.url, err)})
		return
	}
	defer resp.Body.Close()
	switch {
	case resp.StatusCode == http.StatusOK:
	case resp.StatusCode == http.StatusBadRequest:
		msg, _ := bufio.NewReader(io2MB(resp)).ReadString('\n')
		fail(&runner.Error{Class: runner.ClassCorruptInput, Job: job.Label, Attempts: assign,
			Err: fmt.Errorf("dist: worker %s rejected lease %s: %s", w.url, label, strings.TrimSpace(msg))})
		return
	default:
		fail(&runner.Error{Class: runner.ClassTransient, Job: job.Label, Attempts: assign,
			Err: fmt.Errorf("dist: worker %s: HTTP %d", w.url, resp.StatusCode)})
		return
	}

	// Reader goroutine feeds lines; this goroutine multiplexes them with
	// the progress deadline so a silent (dead or hung) stream expires
	// even while the read blocks.
	type lineMsg struct {
		line []byte
		err  error
	}
	lines := make(chan lineMsg, 1)
	go func() {
		rd := bufio.NewReader(resp.Body)
		for {
			line, err := rd.ReadBytes('\n')
			if len(line) > 0 {
				lines <- lineMsg{line: line}
			}
			if err != nil {
				lines <- lineMsg{err: err}
				return
			}
		}
	}()

	expire := time.NewTimer(c.cfg.LeaseTimeout)
	defer expire.Stop()
	var lastCycles uint64
	seenBeat := false
	for {
		select {
		case <-ctx.Done():
			finishSpan(ctx.Err().Error())
			if expired {
				w.mu.Lock()
				w.inflight--
				w.lease = ""
				w.mu.Unlock()
			} else {
				out <- outcome{err: ctx.Err(), w: w, assign: assign}
			}
			return
		case <-expire.C:
			if !expired {
				expired = true
				out <- outcome{expired: true, w: w, assign: assign}
			}
		case msg := <-lines:
			if msg.err != nil {
				// A clean EOF and a body dying mid-line are both the
				// stream-truncation model: transient, reassign elsewhere.
				if errors.Is(msg.err, io.EOF) || errors.Is(msg.err, io.ErrUnexpectedEOF) {
					fail(&runner.Error{Class: runner.ClassTransient, Job: job.Label, Attempts: assign,
						Err: fmt.Errorf("dist: lease %s: stream from %s truncated before a result", label, w.url)})
				} else {
					fail(fmt.Errorf("dist: lease %s reading from %s: %w", label, w.url, msg.err))
				}
				return
			}
			var rec streamRec
			if err := json.Unmarshal(msg.line, &rec); err != nil {
				fail(&runner.Error{Class: runner.ClassCorruptInput, Job: job.Label, Attempts: assign,
					Err: fmt.Errorf("dist: lease %s: undecodable stream line from %s: %v", label, w.url, err)})
				return
			}
			switch rec.T {
			case recHeartbeat:
				w.beat()
				job.Heartbeat.Beat(rec.Cycles)
				if !seenBeat || rec.Cycles != lastCycles {
					// Forward progress (or first liveness): push the
					// expiry out. A hung job keeps reporting the same
					// cycle count, so its timer is never reset again.
					seenBeat = true
					lastCycles = rec.Cycles
					if !expired {
						if !expire.Stop() {
							select {
							case <-expire.C:
							default:
							}
						}
						expire.Reset(c.cfg.LeaseTimeout)
					}
				}
			case recResult:
				if rec.Env == nil {
					fail(&runner.Error{Class: runner.ClassCorruptInput, Job: job.Label, Attempts: assign,
						Err: fmt.Errorf("dist: lease %s: result record without envelope", label)})
					return
				}
				run, m, err := rec.Env.Open(job.Key)
				if err != nil {
					cls := runner.ClassCorruptInput
					if errors.Is(err, ErrVersionSkew) {
						cls = runner.ClassFatal
					}
					fail(&runner.Error{Class: cls, Job: job.Label, Attempts: assign,
						Err: fmt.Errorf("dist: lease %s from %s: %w", label, w.url, err)})
					return
				}
				if m != nil && job.Spec != nil {
					// The manifest's Config crossed the wire as generic JSON
					// and decoded into a map, which marshals with sorted keys.
					// Restore the typed config — identical by construction,
					// since job.Key covers the config and the worker verified
					// it — so a distributed -metrics file is byte-identical
					// to a local one.
					m.Config = job.Spec.Config
				}
				finishSpan("")
				if race.claim() {
					if expired {
						// The replacement had not finished yet: this lease
						// lost its deadline but won the race.
						w.mu.Lock()
						w.inflight--
						w.lease = ""
						w.done++
						w.mu.Unlock()
					}
					out <- outcome{run: run, m: m, w: w, assign: assign}
				} else {
					// A replacement already delivered this spec: count the
					// deterministic dedupe and drop the duplicate.
					c.dups.Add(1)
					w.mu.Lock()
					w.inflight--
					w.lease = ""
					w.done++
					w.mu.Unlock()
				}
				return
			case recError:
				fail(&runner.Error{Class: classFromString(rec.Class), Job: job.Label, Attempts: assign,
					Err: fmt.Errorf("dist: worker %s: %s", w.url, rec.Msg)})
				return
			default:
				fail(&runner.Error{Class: runner.ClassCorruptInput, Job: job.Label, Attempts: assign,
					Err: fmt.Errorf("dist: lease %s: unknown stream record %q from %s", label, rec.T, w.url)})
				return
			}
		}
	}
}

// WorkerStatus is one worker's row in a FleetSnapshot.
type WorkerStatus struct {
	URL   string `json:"url"`
	State string `json:"state"` // "ok" or "lost"
	// Reason is why a lost worker was lost.
	Reason      string `json:"reason,omitempty"`
	Slots       int    `json:"slots"`
	Inflight    int    `json:"inflight"`
	Lease       string `json:"lease,omitempty"` // job label of the newest lease
	LastBeatMS  int64  `json:"last_beat_ms"`    // age of the newest heartbeat; -1 = never
	JobsDone    int64  `json:"jobs_done"`
	JobsFailed  int64  `json:"jobs_failed"`
	ConsecFails int    `json:"consec_fails"`
}

// FleetSnapshot is the coordinator's live view for the monitor's
// /workers endpoint: per-worker status plus campaign-lifetime lease
// accounting.
type FleetSnapshot struct {
	Workers []WorkerStatus `json:"workers"`

	Leases      int64 `json:"leases"`
	Reassigns   int64 `json:"reassigns"`
	Expired     int64 `json:"leases_expired"`
	Corrupt     int64 `json:"results_corrupt"`
	Duplicates  int64 `json:"results_deduped"`
	WorkersLost int64 `json:"workers_lost"`
	Fallbacks   int64 `json:"local_fallbacks"`
}

// Fleet snapshots the coordinator's worker fleet. Safe to call from any
// goroutine at any time (the monitor scrapes mid-campaign).
func (c *Coordinator) Fleet() FleetSnapshot {
	snap := FleetSnapshot{
		Leases:      c.leases.Load(),
		Reassigns:   c.reassigns.Load(),
		Expired:     c.expired.Load(),
		Corrupt:     c.corrupt.Load(),
		Duplicates:  c.dups.Load(),
		WorkersLost: c.lostN.Load(),
		Fallbacks:   c.fallbacks.Load(),
	}
	now := time.Now()
	for _, w := range c.workers {
		w.mu.Lock()
		ws := WorkerStatus{
			URL: w.url, State: "ok", Reason: w.lostReason,
			Slots: w.slots, Inflight: w.inflight, Lease: w.lease,
			LastBeatMS: -1, JobsDone: w.done, JobsFailed: w.failed,
			ConsecFails: w.consecFails,
		}
		if w.lost {
			ws.State = "lost"
		}
		if !w.lastBeat.IsZero() {
			ws.LastBeatMS = now.Sub(w.lastBeat).Milliseconds()
		}
		w.mu.Unlock()
		snap.Workers = append(snap.Workers, ws)
	}
	return snap
}

// io2MB bounds a small (non-streaming) response body.
func io2MB(resp *http.Response) io.Reader {
	return io.LimitReader(resp.Body, 2<<20)
}

// sleepCtx sleeps for d or until ctx ends.
func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}
