package bpred

// LoopPredictor identifies conditional branches with stable trip counts
// and predicts their exits exactly — the "L" component of TAGE-SC-L
// (Seznec, CBP-4/5) and one of the auxiliary predictors the paper lists
// among modern frontends (§II-A). It is consulted only when confident.
type LoopPredictor struct {
	entries []loopEntry
	idxMask uint32

	// Hits counts confident predictions served.
	Hits uint64
}

type loopEntry struct {
	tag   uint16
	trip  uint16 // learned iteration count (taken trip-1 times, then exit)
	count uint16 // architectural iteration counter
	conf  uint8  // 0..7; confident at >= 3
	age   uint8
}

// NewLoopPredictor builds a predictor with 2^idxBits entries.
func NewLoopPredictor(idxBits int) *LoopPredictor {
	return &LoopPredictor{
		entries: make([]loopEntry, 1<<idxBits),
		idxMask: 1<<uint(idxBits) - 1,
	}
}

func (l *LoopPredictor) index(pc uint64) (*loopEntry, uint16) {
	return &l.entries[uint32(pc>>2)&l.idxMask], uint16(pc >> 18)
}

// StorageBits returns the table budget.
func (l *LoopPredictor) StorageBits() int {
	return len(l.entries) * (16 + 16 + 16 + 3 + 2)
}

// Predict returns (taken, confident). When not confident the caller must
// fall back to its main predictor. The iteration counter is architectural
// (advanced by Update), so deep run-ahead over several iterations of the
// same loop sees a slightly stale count; exits may still mispredict under
// extreme overlap, as in real implementations that checkpoint lazily.
func (l *LoopPredictor) Predict(pc uint64) (taken, confident bool) {
	e, tag := l.index(pc)
	if e.tag != tag || e.conf < 3 || e.trip < 2 {
		return false, false
	}
	l.Hits++
	return e.count+1 < e.trip, true
}

// Update trains the predictor with an executed conditional branch outcome.
func (l *LoopPredictor) Update(pc uint64, taken bool) {
	e, tag := l.index(pc)
	if e.tag != tag {
		// Age the incumbent; replace once it decays.
		if e.age > 0 {
			e.age--
			return
		}
		*e = loopEntry{tag: tag, age: 3}
	}
	if taken {
		if e.count < 0xffff {
			e.count++
		}
		return
	}
	// Loop exit: the completed activation ran count+1 iterations (count
	// taken executions plus this not-taken exit).
	observed := e.count + 1
	if observed == e.trip {
		if e.conf < 7 {
			e.conf++
		}
	} else {
		e.trip = observed
		e.conf = 0
	}
	e.count = 0
	e.age = 3
}
