package monitor

import (
	"bufio"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"reflect"
	"strings"
	"testing"
	"time"

	"fdp/internal/core"
	"fdp/internal/obs"
	"fdp/internal/runner"
	"fdp/internal/synth"
)

func testSource() Source {
	st := &runner.Status{}
	st.Specs.Store(4)
	st.Started.Store(3)
	st.Done.Store(2)
	st.Running.Store(1)
	st.CacheHits.Store(1)
	st.CacheMisses.Store(2)
	st.Retries.Store(5)
	st.Watchdog.Store(1)
	st.Quarantined.Store(2)
	st.CacheQuarantined.Store(3)

	ml := obs.NewManifestLog()
	ml.Add(&obs.Manifest{
		Schema:   obs.ManifestSchema,
		Workload: "server_a",
		Config:   map[string]any{"Name": "fdp"},
		Counters: map[string]uint64{"run.cycles": 1000, "acct.delivering": 700},
		Derived:  map[string]float64{"run.ipc": 2.5},
		Histograms: map[string]obs.HistogramSnapshot{
			"ftq.occupancy": {Count: 1000, Sum: 12000, Min: 0, Max: 24},
		},
	})
	return Source{Status: st, Manifests: ml}
}

func get(t *testing.T, srv *httptest.Server, path string) (string, *http.Response) {
	t.Helper()
	resp, err := srv.Client().Get(srv.URL + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read %s: %v", path, err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d, body %q", path, resp.StatusCode, body)
	}
	return string(body), resp
}

func TestMetricsEndpoint(t *testing.T) {
	srv := httptest.NewServer(Handler(testSource()))
	defer srv.Close()

	body, resp := get(t, srv, "/metrics")
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content type %q, want text/plain", ct)
	}
	for _, want := range []string{
		"runner_jobs 3\n",
		"runner_cache_hits 1\n",
		"runner_cache_misses 2\n",
		"runner_jobs_running 1\n",
		"runner_jobs_queued 1\n",
		"runner_retries 5\n",
		"runner_watchdog_fired 1\n",
		"runner_jobs_quarantined 2\n",
		"runner_cache_quarantined 3\n",
		"# TYPE runner_jobs counter\n",
		"# TYPE runner_watchdog_fired counter\n",
		`fdp_run_counter{config="fdp",workload="server_a",name="acct.delivering"} 700` + "\n",
		`fdp_run_counter{config="fdp",workload="server_a",name="run.cycles"} 1000` + "\n",
		`fdp_run_derived{config="fdp",workload="server_a",name="run.ipc"} 2.5` + "\n",
		`fdp_run_histogram_sum{config="fdp",workload="server_a",name="ftq.occupancy"} 12000` + "\n",
		`fdp_run_histogram_count{config="fdp",workload="server_a",name="ftq.occupancy"} 1000` + "\n",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q\ngot:\n%s", want, body)
		}
	}
	// Every non-comment line must be `name value` or `name{labels} value`:
	// a cheap validity check of the exposition format.
	for _, line := range strings.Split(strings.TrimRight(body, "\n"), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			t.Errorf("malformed exposition line %q", line)
		}
	}
}

func TestProgressEndpoint(t *testing.T) {
	srv := httptest.NewServer(Handler(testSource()))
	defer srv.Close()

	body, resp := get(t, srv, "/progress")
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("content type %q, want application/json", ct)
	}
	var snap runner.StatusSnapshot
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("progress body not JSON: %v\n%s", err, body)
	}
	want := runner.StatusSnapshot{
		Specs: 4, Started: 3, Done: 2, Running: 1, Queued: 1,
		CacheHits: 1, CacheMisses: 2,
		Retries: 5, Watchdog: 1, Quarantined: 2, CacheQuarantined: 3,
	}
	if !reflect.DeepEqual(snap, want) {
		t.Errorf("progress snapshot = %+v, want %+v", snap, want)
	}
}

// TestInFlightJobExposure: a tracked attempt shows up on /progress with
// its heartbeat age and on /metrics as a runner_job_heartbeat_age_ms
// sample.
func TestInFlightJobExposure(t *testing.T) {
	src := testSource()
	hb := &core.Heartbeat{}
	hb.Beat(4096)
	src.Status.TrackJob(7, "fdp/server_a", 2, hb)
	srv := httptest.NewServer(Handler(src))
	defer srv.Close()

	body, _ := get(t, srv, "/progress")
	var snap runner.StatusSnapshot
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("progress body not JSON: %v\n%s", err, body)
	}
	if len(snap.Jobs) != 1 {
		t.Fatalf("progress jobs = %+v, want one entry", snap.Jobs)
	}
	j := snap.Jobs[0]
	if j.Index != 7 || j.Job != "fdp/server_a" || j.Attempt != 2 || j.Cycles != 4096 {
		t.Errorf("job snapshot = %+v", j)
	}
	if j.LastBeatMS < 0 {
		t.Errorf("beaten job has last_beat_ms %d, want >= 0", j.LastBeatMS)
	}

	metrics, _ := get(t, srv, "/metrics")
	if !strings.Contains(metrics, `runner_job_heartbeat_age_ms{job="fdp/server_a",attempt="2"} `) {
		t.Errorf("/metrics missing per-job heartbeat age:\n%s", metrics)
	}
}

func TestPprofMounted(t *testing.T) {
	srv := httptest.NewServer(Handler(testSource()))
	defer srv.Close()

	body, _ := get(t, srv, "/debug/pprof/")
	if !strings.Contains(body, "goroutine") {
		t.Errorf("pprof index does not list profiles:\n%.200s", body)
	}
}

func TestNilSources(t *testing.T) {
	srv := httptest.NewServer(Handler(Source{}))
	defer srv.Close()

	body, _ := get(t, srv, "/metrics")
	if !strings.Contains(body, "runner_jobs 0\n") {
		t.Errorf("nil-source /metrics missing zero runner_jobs:\n%s", body)
	}
	if strings.Contains(body, "fdp_run_counter{") {
		t.Errorf("nil-source /metrics should have no per-run series:\n%s", body)
	}
	get(t, srv, "/progress")
}

func TestStartAndClose(t *testing.T) {
	srv, err := Start("localhost:0", testSource())
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	resp, err := http.Get("http://" + srv.Addr() + "/progress")
	if err != nil {
		t.Fatalf("GET live server: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("live /progress status %d", resp.StatusCode)
	}
	if err := srv.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

// intervalSource builds a source with a populated interval store: one
// finished run and one still-live run.
func intervalSource() (Source, *obs.IntervalRun) {
	src := testSource()
	store := obs.NewIntervalStore(0)
	doneRun := store.StartRun("aabbcc", "fdp/server_a", 1000)
	for c := uint64(1); c <= 3; c++ {
		doneRun.RecordInterval(obs.IntervalRecord{Cycle: c * 1000, Instructions: c * 2000})
	}
	doneRun.Finish()
	live := store.StartRun("ddeeff", "fdp/client_a", 1000)
	live.RecordInterval(obs.IntervalRecord{Cycle: 1000, Instructions: 1500})
	src.Intervals = store
	return src, live
}

func TestRunsEndpoint(t *testing.T) {
	src, _ := intervalSource()
	srv := httptest.NewServer(Handler(src))
	defer srv.Close()

	body, resp := get(t, srv, "/runs")
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("content type %q, want application/json", ct)
	}
	var runs []obs.IntervalRunMeta
	if err := json.Unmarshal([]byte(body), &runs); err != nil {
		t.Fatalf("/runs body not JSON: %v\n%s", err, body)
	}
	if len(runs) != 2 {
		t.Fatalf("/runs = %+v, want 2 entries", runs)
	}
	if runs[0].ID != "aabbcc" || runs[0].Run != "fdp/server_a" || !runs[0].Done || runs[0].Records != 3 {
		t.Errorf("first run meta = %+v", runs[0])
	}
	if runs[1].ID != "ddeeff" || runs[1].Done {
		t.Errorf("second run meta = %+v", runs[1])
	}
}

func TestIntervalsEndpoint(t *testing.T) {
	src, _ := intervalSource()
	srv := httptest.NewServer(Handler(src))
	defer srv.Close()

	// No parameters: every run's buffered records, header-framed.
	body, resp := get(t, srv, "/intervals")
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("content type %q, want application/x-ndjson", ct)
	}
	if !strings.Contains(body, `{"run":"fdp/server_a","every":1000}`) ||
		!strings.Contains(body, `{"run":"fdp/client_a","every":1000}`) {
		t.Errorf("/intervals missing run headers:\n%s", body)
	}
	recs, err := obs.ReadIntervalJSONL(strings.NewReader(body))
	if err != nil {
		t.Fatalf("/intervals output unparseable: %v", err)
	}
	if len(recs) != 4 {
		t.Errorf("/intervals returned %d records, want 4", len(recs))
	}

	// Selection: exact id, label, and unique prefix all resolve.
	for _, q := range []string{"aabbcc", "fdp/server_a", "aab"} {
		body, _ := get(t, srv, "/intervals?run="+url.QueryEscape(q))
		recs, err := obs.ReadIntervalJSONL(strings.NewReader(body))
		if err != nil || len(recs) != 3 {
			t.Errorf("run=%s: %d records (%v), want 3", q, len(recs), err)
		}
		if strings.Contains(body, "fdp/client_a") {
			t.Errorf("run=%s leaked another run's header", q)
		}
	}

	// Unknown or ambiguous selectors 404; follow without run= is a 400.
	for path, want := range map[string]int{
		"/intervals?run=nope": http.StatusNotFound,
		"/intervals?follow=1": http.StatusBadRequest,
	} {
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != want {
			t.Errorf("GET %s: status %d, want %d", path, resp.StatusCode, want)
		}
	}
}

// TestIntervalsFollow is the live-tail acceptance test: a follow=1
// request delivers at least two incremental flushes while the run is
// still unfinished, then terminates when the run finishes.
func TestIntervalsFollow(t *testing.T) {
	src, live := intervalSource()
	srv := httptest.NewServer(Handler(src))
	defer srv.Close()

	resp, err := srv.Client().Get(srv.URL + "/intervals?run=fdp/client_a&follow=1")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)

	// Header first.
	if !sc.Scan() {
		t.Fatalf("no header line: %v", sc.Err())
	}
	if got := sc.Text(); !strings.Contains(got, `"run":"fdp/client_a"`) {
		t.Fatalf("header = %q", got)
	}
	// Flush 1: the record buffered before the request.
	if !sc.Scan() {
		t.Fatalf("no first record: %v", sc.Err())
	}
	first, err := obs.ParseIntervalRecord(sc.Bytes())
	if err != nil || first.Cycle != 1000 {
		t.Fatalf("first record %v (%v), want cycle 1000", first, err)
	}

	// Flush 2: a record taken while the response is open — the live-tail
	// property. The scanner blocks until the server flushes it.
	live.RecordInterval(obs.IntervalRecord{Cycle: 2000, Instructions: 3100})
	if !sc.Scan() {
		t.Fatalf("no live record: %v", sc.Err())
	}
	second, err := obs.ParseIntervalRecord(sc.Bytes())
	if err != nil || second.Cycle != 2000 {
		t.Fatalf("live record %v (%v), want cycle 2000", second, err)
	}

	// A third incremental flush, then Finish ends the stream.
	live.RecordInterval(obs.IntervalRecord{Cycle: 3000, Instructions: 4700})
	if !sc.Scan() {
		t.Fatalf("no third record: %v", sc.Err())
	}
	live.Finish()
	if sc.Scan() {
		t.Fatalf("stream did not end at Finish: %q", sc.Text())
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("stream error: %v", err)
	}
}

// TestIntervalsFollowLiveRun drives the full pipeline end to end: a
// real Execute streams interval records through the store while an open
// follow request tails them, proving incremental delivery before the
// simulation completes.
func TestIntervalsFollowLiveRun(t *testing.T) {
	store := obs.NewIntervalStore(0)
	srv := httptest.NewServer(Handler(Source{Intervals: store}))
	defer srv.Close()

	cfg := core.DefaultConfig()
	w := synth.ByName("server_a")
	sp := runner.WorkloadSpec(cfg, w, 0, 300_000)
	label := cfg.Name + "/" + w.Name

	// Pre-register the run under its spec key so the follow request can
	// attach before the attempt begins (the runner re-registers the same
	// id, which keeps follower cursors valid), and gate the simulation on
	// the fault hook so every record is provably delivered while the
	// simulation is in flight.
	store.StartRun(sp.Key(), label, 10_000)
	started := make(chan struct{})
	execDone := make(chan error, 1)
	go func() {
		_, err := runner.Execute(context.Background(), []runner.Spec{sp}, runner.Options{
			Parallel:      1,
			Observe:       true,
			IntervalEvery: 10_000,
			Intervals:     store,
			FaultHook: func(ctx context.Context, job, attempt int) error {
				<-started
				return nil
			},
		})
		execDone <- err
	}()

	resp, err := srv.Client().Get(srv.URL + "/intervals?run=" + url.QueryEscape(label) + "&follow=1")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()

	sc := bufio.NewScanner(resp.Body)
	// The header arrives before the simulation is released: everything
	// after it is an incremental flush from a live run.
	if !sc.Scan() || !strings.Contains(sc.Text(), `"run":`) {
		t.Fatalf("no header line: %q (%v)", sc.Text(), sc.Err())
	}
	close(started)
	var flushes, lastCycle int
	for sc.Scan() {
		line := sc.Bytes()
		rec, err := obs.ParseIntervalRecord(line)
		if err != nil {
			t.Fatalf("bad record %q: %v", line, err)
		}
		if int(rec.Cycle) <= lastCycle {
			t.Fatalf("cycle went backwards: %d after %d", rec.Cycle, lastCycle)
		}
		lastCycle = int(rec.Cycle)
		flushes++
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("stream error: %v", err)
	}
	// The acceptance bar: >= 2 incremental deliveries from a live run.
	if flushes < 2 {
		t.Fatalf("follow stream delivered %d records, want >= 2", flushes)
	}
	if err := <-execDone; err != nil {
		t.Fatalf("Execute: %v", err)
	}
	if m, ok := store.Run(sp.Key()); !ok || !m.Done {
		t.Fatalf("run meta after Execute = %+v, %v", m, ok)
	}
}

func TestTimelineEndpoint(t *testing.T) {
	src := testSource()
	spans := obs.NewSpanLog()
	epoch := spans.Epoch()
	spans.Span("fdp/server_a", 0, 1, obs.SpanSimulate, epoch.Add(5*time.Millisecond), epoch.Add(9*time.Millisecond), "cold", "")
	spans.Span("fdp/client_a", 1, 1, obs.SpanSimulate, epoch.Add(2*time.Millisecond), epoch.Add(4*time.Millisecond), "cold", "")
	spans.Event("fdp/server_a", 0, 1, obs.SpanRetry, "transient", "boom")
	src.Spans = spans
	srv := httptest.NewServer(Handler(src))
	defer srv.Close()

	var doc struct {
		Epoch string `json:"epoch"`
		Spans []struct {
			Run     string `json:"run"`
			Kind    string `json:"kind"`
			StartUS int64  `json:"start_us"`
			DurUS   int64  `json:"dur_us"`
			Detail  string `json:"detail"`
			Err     string `json:"err"`
		} `json:"spans"`
	}
	body, resp := get(t, srv, "/timeline")
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("content type %q, want application/json", ct)
	}
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatalf("/timeline body not JSON: %v\n%s", err, body)
	}
	if doc.Epoch == "" {
		t.Error("/timeline missing epoch")
	}
	if len(doc.Spans) != 3 {
		t.Fatalf("/timeline has %d spans, want 3:\n%s", len(doc.Spans), body)
	}
	// Sorted by start: client_a's simulate (2ms) precedes server_a's
	// (5ms). The retry event fires at "now", so only the relative order
	// of the two explicitly-timed spans is asserted.
	var client, server = -1, -1
	for i, sp := range doc.Spans {
		switch {
		case sp.Kind == "simulate" && sp.Run == "fdp/client_a":
			client = i
			if sp.StartUS != 2000 || sp.DurUS != 2000 || sp.Detail != "cold" {
				t.Errorf("client simulate span = %+v", sp)
			}
		case sp.Kind == "simulate" && sp.Run == "fdp/server_a":
			server = i
			if sp.StartUS != 5000 || sp.DurUS != 4000 {
				t.Errorf("server simulate span = %+v", sp)
			}
		case sp.Kind == "retry":
			if sp.Err != "boom" || sp.DurUS != 0 {
				t.Errorf("retry event = %+v", sp)
			}
		default:
			t.Errorf("unexpected span %+v", sp)
		}
	}
	if client == -1 || server == -1 || client > server {
		t.Errorf("simulate spans out of start order: client=%d server=%d", client, server)
	}

	// run= filter.
	body, _ = get(t, srv, "/timeline?run="+url.QueryEscape("fdp/server_a"))
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.Spans) != 2 {
		t.Fatalf("filtered /timeline has %d spans, want 2", len(doc.Spans))
	}
	for _, sp := range doc.Spans {
		if sp.Run != "fdp/server_a" {
			t.Errorf("filtered span from wrong run: %+v", sp)
		}
	}
}

// TestQueueDepthSummary: /metrics renders the queue-depth histogram as a
// Prometheus summary with quantiles, sum and count.
func TestQueueDepthSummary(t *testing.T) {
	src := testSource()
	for _, d := range []uint64{0, 1, 2, 3, 4, 5, 6, 7, 8, 9} {
		src.Status.ObserveQueueDepth(d)
	}
	srv := httptest.NewServer(Handler(src))
	defer srv.Close()

	body, _ := get(t, srv, "/metrics")
	for _, want := range []string{
		"# TYPE runner_queue_depth summary\n",
		"runner_queue_depth{quantile=\"0.5\"} ",
		"runner_queue_depth{quantile=\"0.9\"} ",
		"runner_queue_depth{quantile=\"0.99\"} ",
		"runner_queue_depth_sum 45\n",
		"runner_queue_depth_count 10\n",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q\ngot:\n%s", want, body)
		}
	}
}

// TestNewEndpointsNilSources: the interval/timeline endpoints stay
// well-formed with a completely empty source.
func TestNewEndpointsNilSources(t *testing.T) {
	srv := httptest.NewServer(Handler(Source{}))
	defer srv.Close()

	body, _ := get(t, srv, "/runs")
	if strings.TrimSpace(body) != "[]" {
		t.Errorf("nil-source /runs = %q, want []", body)
	}
	body, _ = get(t, srv, "/intervals")
	if strings.TrimSpace(body) != "" {
		t.Errorf("nil-source /intervals = %q, want empty", body)
	}
	resp, err := srv.Client().Get(srv.URL + "/intervals?run=x")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("nil-source /intervals?run=x status %d, want 404", resp.StatusCode)
	}
	body, _ = get(t, srv, "/timeline")
	var doc struct {
		Spans []any `json:"spans"`
	}
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatalf("nil-source /timeline not JSON: %v\n%s", err, body)
	}
	if len(doc.Spans) != 0 {
		t.Errorf("nil-source /timeline spans = %v, want none", doc.Spans)
	}
	// /metrics still renders the (empty) queue-depth summary.
	body, _ = get(t, srv, "/metrics")
	if !strings.Contains(body, "runner_queue_depth_count 0\n") {
		t.Errorf("nil-source /metrics missing empty summary:\n%s", body)
	}
}

// TestProgressBeforeAnyJob: a fresh Status (campaign configured, nothing
// started) serves a well-formed all-zero snapshot — the pre-first-job
// scrape regression.
func TestProgressBeforeAnyJob(t *testing.T) {
	srv := httptest.NewServer(Handler(Source{Status: &runner.Status{}}))
	defer srv.Close()

	body, _ := get(t, srv, "/progress")
	var snap runner.StatusSnapshot
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("progress body not JSON: %v\n%s", err, body)
	}
	if !reflect.DeepEqual(snap, runner.StatusSnapshot{}) {
		t.Errorf("pre-start snapshot = %+v, want zero value", snap)
	}
}
