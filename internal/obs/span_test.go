package obs

import (
	"bytes"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestSpanKindNames(t *testing.T) {
	for k := SpanKind(0); k < numSpanKinds; k++ {
		name := k.String()
		if name == "" || strings.HasPrefix(name, "SpanKind(") {
			t.Fatalf("kind %d has no wire name", k)
		}
		back, ok := SpanKindFromString(name)
		if !ok || back != k {
			t.Fatalf("SpanKindFromString(%q) = %v, %v; want %v", name, back, ok, k)
		}
	}
	if _, ok := SpanKindFromString("nope"); ok {
		t.Fatal("unknown name resolved")
	}
	if got := SpanKind(200).String(); got != "SpanKind(200)" {
		t.Fatalf("out-of-range String = %q", got)
	}
}

func TestSpanCodecRoundTrip(t *testing.T) {
	spans := []Span{
		{Run: "fdp/server_a", Job: 0, Attempt: 1, Kind: SpanSimulate, Start: 1234, Dur: 56789, Detail: "cold"},
		{Run: "baseline/client_b", Job: 7, Attempt: 2, Kind: SpanRetry, Start: -3, Dur: 0, Detail: "transient", Err: "panic: boom"},
		{Run: `quote"back\slash` + "\nnewline", Kind: SpanQueued, Start: 0, Dur: 0},
		{Run: "", Kind: SpanCacheHit},
	}
	for _, sp := range spans {
		line := AppendSpanJSONL(nil, sp)
		back, err := ParseSpan(line)
		if err != nil {
			t.Fatalf("ParseSpan(%q): %v", line, err)
		}
		if back != sp {
			t.Fatalf("round trip: %+v -> %q -> %+v", sp, line, back)
		}
	}

	var buf bytes.Buffer
	if err := WriteSpans(&buf, spans); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSpanJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(spans) {
		t.Fatalf("read %d spans, want %d", len(got), len(spans))
	}
	for i := range spans {
		if got[i] != spans[i] {
			t.Fatalf("span %d: %+v != %+v", i, got[i], spans[i])
		}
	}
}

func TestSpanCodecErrors(t *testing.T) {
	if _, err := ParseSpan([]byte("not json")); err == nil {
		t.Error("malformed line should error")
	}
	if _, err := ParseSpan([]byte(`{"r":"x","k":"nope"}`)); err == nil {
		t.Error("unknown kind should error")
	}
	if _, err := ReadSpanJSONL(strings.NewReader(`{"r":"x","k":"nope"}` + "\n")); err == nil {
		t.Error("stream with bad line should error")
	}
	if got, err := ReadSpanJSONL(strings.NewReader("\n\n")); err != nil || len(got) != 0 {
		t.Errorf("blank lines: %v, %v", got, err)
	}
}

func TestSpanLog(t *testing.T) {
	l := NewSpanLog()
	epoch := l.Epoch()
	if epoch.IsZero() {
		t.Fatal("epoch not set")
	}
	start := epoch.Add(10 * time.Millisecond)
	l.Span("cfg/wl", 1, 1, SpanSimulate, start, start.Add(2*time.Millisecond), "cold", "")
	l.Event("cfg/wl", 1, 1, SpanRetry, "transient", "boom")
	all := l.All()
	if len(all) != 2 {
		t.Fatalf("got %d spans, want 2", len(all))
	}
	if all[0].Start != 10_000 || all[0].Dur != 2_000 {
		t.Fatalf("epoch offsets wrong: start=%d dur=%d", all[0].Start, all[0].Dur)
	}
	if all[1].Dur != 0 || all[1].Kind != SpanRetry || all[1].Err != "boom" {
		t.Fatalf("event shape wrong: %+v", all[1])
	}
	// All returns a copy.
	all[0].Run = "clobbered"
	if l.All()[0].Run != "cfg/wl" {
		t.Fatal("All leaked internal storage")
	}
}

func TestSpanLogSink(t *testing.T) {
	l := NewSpanLog()
	var buf bytes.Buffer
	l.SetSink(&buf)
	l.Event("a/b", 0, 1, SpanWatchdog, "", "hung")
	l.Event("a/b", 0, 2, SpanQuarantine, "", "hung")
	got, err := ReadSpanJSONL(&buf)
	if err != nil || len(got) != 2 {
		t.Fatalf("sink stream: %v, %v", got, err)
	}
	if got[0].Kind != SpanWatchdog || got[1].Kind != SpanQuarantine {
		t.Fatalf("sink order wrong: %+v", got)
	}
	if l.SinkErr() != nil {
		t.Fatalf("unexpected sink error: %v", l.SinkErr())
	}
}

type failWriter struct{ err error }

func (w failWriter) Write([]byte) (int, error) { return 0, w.err }

func TestSpanLogSinkErrSticky(t *testing.T) {
	l := NewSpanLog()
	wantErr := errors.New("disk full")
	l.SetSink(failWriter{err: wantErr})
	l.Event("a/b", 0, 1, SpanRetry, "", "")
	l.Event("a/b", 0, 2, SpanRetry, "", "")
	if !errors.Is(l.SinkErr(), wantErr) {
		t.Fatalf("SinkErr = %v, want %v", l.SinkErr(), wantErr)
	}
	// Emission must survive a broken sink: the in-memory log still grows.
	if len(l.All()) != 2 {
		t.Fatalf("log lost spans after sink error: %d", len(l.All()))
	}
}

func TestSpanLogNil(t *testing.T) {
	var l *SpanLog
	l.Add(Span{})
	l.Span("x", 0, 0, SpanQueued, time.Now(), time.Now(), "", "")
	l.Event("x", 0, 0, SpanRetry, "", "")
	l.SetSink(&bytes.Buffer{})
	if l.All() != nil || l.SinkErr() != nil || !l.Epoch().IsZero() {
		t.Fatal("nil SpanLog misbehaved")
	}
}

func TestSpanLogConcurrent(t *testing.T) {
	l := NewSpanLog()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				l.Event("a/b", i, 1, SpanRetry, "", "")
				l.All()
			}
		}()
	}
	wg.Wait()
	if len(l.All()) != 800 {
		t.Fatalf("got %d spans, want 800", len(l.All()))
	}
}
