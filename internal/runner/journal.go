package runner

import (
	"bytes"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"
)

// Journal is the crash-safe run journal: an append-only, fsync'd WAL of
// completed spec hashes. Unlike the result cache — whose files are
// written atomically but whose *durability* is asynchronous — a journal
// record is on disk before the job is reported complete, so a `kill -9`
// mid-campaign loses at most the jobs that had not yet recorded. On
// reopen, a corrupt tail (a record torn by the crash) is detected by its
// per-record CRC and truncated away; every record before it is replayed.
//
// The journal is the source of completion truth when configured:
// Execute trusts a cached result only for journaled keys, and records a
// key only after its result is durably cached.
type Journal struct {
	mu   sync.Mutex
	f    *os.File
	path string
	done map[string]struct{}

	recovered int   // valid records replayed at open
	truncated int64 // corrupt tail bytes dropped at open
	errs      uint64
}

// journalMagic identifies the file format.
const journalMagic = "FDPJRNL1\n"

// Record layout: 64 hex key chars, a space, 8 hex CRC-32(key) chars and a
// newline — fixed-size, so the valid prefix is a whole number of records
// and tail recovery is a byte-offset truncation.
const (
	journalKeyLen = 64
	journalRecLen = journalKeyLen + 1 + 8 + 1
)

// OpenJournal opens (creating if missing) the journal at path, replays
// every valid record, and truncates any corrupt tail. A file that does
// not begin with the format magic is refused — except for a torn partial
// header (shorter than the magic), which a crash during creation can
// leave behind and which is reset to an empty journal.
func OpenJournal(path string) (*Journal, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("runner: journal: %w", err)
	}
	j := &Journal{f: f, path: path, done: make(map[string]struct{})}
	b, err := io.ReadAll(f)
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("runner: journal: %w", err)
	}
	switch {
	case len(b) == 0:
		if err := j.reset(); err != nil {
			f.Close()
			return nil, err
		}
		return j, nil
	case !bytes.HasPrefix(b, []byte(journalMagic)):
		if len(b) < len(journalMagic) && bytes.HasPrefix([]byte(journalMagic), b) {
			// Torn header from a crash during creation: start over.
			j.truncated = int64(len(b))
			if err := j.reset(); err != nil {
				f.Close()
				return nil, err
			}
			return j, nil
		}
		f.Close()
		return nil, fmt.Errorf("runner: journal %s: not a journal file (bad magic)", path)
	}

	off := len(journalMagic)
	for off+journalRecLen <= len(b) {
		key, ok := parseJournalRecord(b[off : off+journalRecLen])
		if !ok {
			break
		}
		j.done[key] = struct{}{}
		j.recovered++
		off += journalRecLen
	}
	if off < len(b) {
		// Corrupt or torn tail: drop it so the next append starts on a
		// clean record boundary.
		j.truncated = int64(len(b) - off)
		if err := f.Truncate(int64(off)); err != nil {
			f.Close()
			return nil, fmt.Errorf("runner: journal: truncating corrupt tail: %w", err)
		}
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		return nil, fmt.Errorf("runner: journal: %w", err)
	}
	return j, nil
}

// reset writes a fresh header (caller holds no lock yet; only used
// during open).
func (j *Journal) reset() error {
	if err := j.f.Truncate(0); err != nil {
		return fmt.Errorf("runner: journal: %w", err)
	}
	if _, err := j.f.Seek(0, io.SeekStart); err != nil {
		return fmt.Errorf("runner: journal: %w", err)
	}
	if _, err := j.f.WriteString(journalMagic); err != nil {
		return fmt.Errorf("runner: journal: %w", err)
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("runner: journal: %w", err)
	}
	return nil
}

// parseJournalRecord validates one fixed-size record and returns its key.
func parseJournalRecord(rec []byte) (key string, ok bool) {
	if len(rec) != journalRecLen || rec[journalKeyLen] != ' ' || rec[journalRecLen-1] != '\n' {
		return "", false
	}
	for _, c := range rec[:journalKeyLen] {
		if !isHex(c) {
			return "", false
		}
	}
	var crc uint32
	for _, c := range rec[journalKeyLen+1 : journalRecLen-1] {
		v, okc := hexVal(c)
		if !okc {
			return "", false
		}
		crc = crc<<4 | uint32(v)
	}
	k := string(rec[:journalKeyLen])
	if crc32.ChecksumIEEE([]byte(k)) != crc {
		return "", false
	}
	return k, true
}

func isHex(c byte) bool { _, ok := hexVal(c); return ok }

func hexVal(c byte) (byte, bool) {
	switch {
	case c >= '0' && c <= '9':
		return c - '0', true
	case c >= 'a' && c <= 'f':
		return c - 'a' + 10, true
	default:
		return 0, false
	}
}

// Done reports whether key was recorded (this run or a previous one).
func (j *Journal) Done(key string) bool {
	if j == nil {
		return false
	}
	j.mu.Lock()
	_, ok := j.done[key]
	j.mu.Unlock()
	return ok
}

// Len returns the number of recorded keys.
func (j *Journal) Len() int {
	if j == nil {
		return 0
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.done)
}

// Recovered reports what the open-time replay found: how many valid
// records were replayed and how many corrupt tail bytes were dropped.
func (j *Journal) Recovered() (records int, truncatedBytes int64) {
	if j == nil {
		return 0, 0
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.recovered, j.truncated
}

// Errs returns the number of failed appends (the journal degrades on
// write errors — a lost record only means re-executing that spec on
// resume, never wrong results).
func (j *Journal) Errs() uint64 {
	if j == nil {
		return 0
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.errs
}

// Record appends key and fsyncs. Re-recording a key is a no-op. The
// in-memory set is updated even when the append fails, so in-process
// dedup keeps working; the error is reported (and counted) for the
// caller to surface.
func (j *Journal) Record(key string) error {
	if j == nil {
		return nil
	}
	if len(key) != journalKeyLen {
		return fmt.Errorf("runner: journal: key %q is not a %d-hex-digit spec hash", key, journalKeyLen)
	}
	for i := 0; i < len(key); i++ {
		if !isHex(key[i]) {
			return fmt.Errorf("runner: journal: key %q is not a %d-hex-digit spec hash", key, journalKeyLen)
		}
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if _, ok := j.done[key]; ok {
		return nil
	}
	j.done[key] = struct{}{}
	rec := fmt.Sprintf("%s %08x\n", key, crc32.ChecksumIEEE([]byte(key)))
	if _, err := j.f.WriteString(rec); err != nil {
		j.errs++
		return fmt.Errorf("runner: journal: %w", err)
	}
	if err := j.f.Sync(); err != nil {
		j.errs++
		return fmt.Errorf("runner: journal: %w", err)
	}
	return nil
}

// Close closes the journal file.
func (j *Journal) Close() error {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.f.Close()
}
