package core

import (
	"context"
	"errors"
	"fmt"

	"fdp/internal/bpred"
	"fdp/internal/btb"
	"fdp/internal/cache"
	"fdp/internal/ckpt"
	"fdp/internal/program"
	"fdp/internal/stats"
)

// This file implements functional fast-forward warmup: executing the
// oracle stream and training the predictors, BTB, RAS, caches and ITLB
// with architectural outcomes, without timing the pipeline. A fast-forward
// leaves the pipeline itself empty (no FTQ entries, no decode queue, no
// in-flight fills), which is exactly what makes the post-warmup state
// small enough to checkpoint: only training state plus a handful of
// scalars need to be serialized, and a restored machine is bit-identical
// to one that fast-forwarded in place — the property the warmup-check CI
// gate proves per golden workload.
//
// Fast-forward warmup is a different warmup *semantic* than cycle-accurate
// warmup (no speculative-path training, no prefetcher training, detection
// approximated architecturally), so runs using it carry a distinct
// identity in the runner's result cache (Spec.FFwd). Within the semantic
// it is exact: cold fast-forward and checkpoint-restore produce
// byte-identical measured manifests.

// snapMagic/snapVersion head every core snapshot.
const (
	snapMagic   = 0x46445053 // "FDPS"
	snapVersion = 1
)

// ErrBadSnapshot marks a checkpoint that failed to decode into the target
// machine (wrong magic/version, mismatched geometry, truncated or damaged
// payload). SimulateCheckpointed wraps restore failures with it so callers
// can fall back to a cold fast-forward instead of failing the run.
var ErrBadSnapshot = errors.New("core: bad snapshot")

// ffwdCheckInterval is how often (in instructions) FastForward polls the
// context and stamps the heartbeat; same spirit as ctxCheckInterval in the
// cycle loop.
const ffwdCheckInterval = 1 << 14

// FastForward functionally executes n instructions from the oracle,
// training the direction predictor, BTB, indirect predictor, RAS,
// instruction-cache hierarchy and ITLB with architectural outcomes, then
// re-synchronizes the speculative frontend state (PC, history, RAS) so
// cycle-accurate measurement can start immediately. It must be called
// before any cycles have run. The context is polled every
// ffwdCheckInterval instructions.
func (c *Core) FastForward(ctx context.Context, n uint64) error {
	if c.now != 0 || c.q.Len() != 0 || c.dqLen != 0 {
		return fmt.Errorf("core: FastForward on a machine that already ran (cycle %d)", c.now)
	}
	done := ctx.Done()
	c.hb.Beat(0)
	// lastLine dedupes hierarchy touches: straight-line code stays within a
	// cache line for several instructions, and both the cold and the
	// restored path see the identical access sequence either way.
	lastLine := ^uint64(0)
	target := c.retired + n
	for c.retired < target {
		pc := c.oracle.PC()
		if line := pc >> cache.LineShift; line != lastLine {
			lastLine = line
			if !c.itlb.Probe(pc) {
				c.itlb.Fill(pc)
			}
			c.hier.Touch(line)
		}
		dyn := c.oracle.Next()
		c.retired++
		if dyn.SI.IsBranch() {
			c.ffwdTrainBranch(pc, dyn)
		}
		if c.retired&(ffwdCheckInterval-1) == 0 {
			c.hb.Beat(c.retired)
			if done != nil {
				select {
				case <-done:
					return ctx.Err()
				default:
				}
			}
		}
	}
	// Start the frontend on the correct path, exactly like a post-flush
	// restart: speculative PC at the oracle, speculative history and RAS
	// copied from the architectural state, BB walk re-synchronized.
	c.specPC = c.oracle.PC()
	c.histSpec.CopyFrom(c.histArch)
	c.rasSpec.CopyFrom(c.rasArch)
	if c.bb != nil {
		c.bbValid = false
		c.bbExpectStart = c.specPC
	}
	return nil
}

// ffwdTrainBranch is trainBranch for functional warmup: the same
// architectural training recipe, but with no frontend uop to consult.
// Detection (which cycle-accurate warmup takes from the predict-time BTB
// probe) is approximated architecturally by a non-mutating BTB peek; the
// prefetcher is NOT trained, since it is driven by timing-path events
// that do not exist functionally. Both approximations are deterministic,
// so cold fast-forward and checkpoint restore agree exactly.
func (c *Core) ffwdTrainBranch(pc uint64, dyn program.DynInst) {
	si := dyn.SI
	if si.Type.IsConditional() {
		if c.tage != nil {
			c.tage.Update(pc, c.histArch, dyn.Taken)
		} else {
			c.dir.Update(pc, c.histArch, dyn.Taken)
		}
	}
	if si.Type.IsIndirect() {
		c.it.Update(pc, c.histArch, dyn.NextPC)
	}

	// The GHRNoFix policy inserts history only for branches the frontend
	// saw (detected, PFC-steered or mispredicted); functionally that is
	// approximated as "the BTB knows the branch, or it diverts the flow"
	// — peeked before this branch trains the BTB, matching the
	// predict-before-train ordering of the pipeline.
	detected := false
	if c.cfg.HistPolicy == HistGHRNoFix {
		detected = c.ffwdDetected(pc)
	}

	if c.bb != nil {
		if pc >= c.archBlockStart {
			size := int((pc-c.archBlockStart)/program.InstBytes) + 1
			tgt := dyn.NextPC
			if !dyn.Taken {
				tgt = si.Target
			}
			c.bb.Insert(c.archBlockStart, size, si.Type, tgt)
		}
		if dyn.Taken {
			c.archBlockStart = dyn.NextPC
		} else {
			c.archBlockStart = pc + program.InstBytes
		}
	} else {
		switch {
		case dyn.Taken:
			c.tb.Insert(pc, si.Type, dyn.NextPC)
		case c.cfg.BTBAllocPolicy == AllocAll:
			c.tb.Insert(pc, si.Type, si.Target)
		}
	}

	if si.Type.IsCall() {
		c.rasArch.Push(pc + program.InstBytes)
	}
	if si.Type.IsReturn() {
		c.rasArch.Pop()
	}

	switch c.cfg.HistPolicy {
	case HistTHR:
		if dyn.Taken {
			c.histArch.InsertTaken(pc, dyn.NextPC)
		}
	case HistGHRNoFix:
		if detected || dyn.Taken {
			c.histArch.InsertDir(dyn.Taken)
		}
	case HistGHRFix, HistIdeal:
		c.histArch.InsertDir(dyn.Taken)
	}
}

// ffwdDetected reports whether the active BTB organization currently
// knows the branch at pc, without mutating replacement state.
func (c *Core) ffwdDetected(pc uint64) bool {
	switch {
	case c.realBTB != nil:
		return c.realBTB.Peek(pc)
	case c.twoLevel != nil:
		return c.twoLevel.L1().Peek(pc) || c.twoLevel.L2().Peek(pc)
	case c.bb != nil:
		// Block-grained detection has no per-branch probe; treat the
		// branch as detected (BB-BTB mode targets full block coverage).
		return true
	default:
		// Perfect BTB: everything is detected.
		return true
	}
}

// Snapshot serializes the machine's post-warmup microarchitectural state:
// predictor tables, BTB contents, indirect predictor, architectural
// history and RAS, cache and ITLB contents, and the architectural-position
// scalars. It requires a quiesced machine — empty pipeline, no divergence
// in flight — which FastForward guarantees; it returns an error otherwise.
func (c *Core) Snapshot() ([]byte, error) {
	if c.q.Len() != 0 || c.dqLen != 0 || c.diverged {
		return nil, fmt.Errorf("core: snapshot of a non-quiesced machine (ftq %d, dq %d, diverged %v)",
			c.q.Len(), c.dqLen, c.diverged)
	}
	w := ckpt.NewWriter()
	w.U32(snapMagic)
	w.U32(snapVersion)
	w.U64(c.specPC)
	w.U64(c.retired)
	w.U64(c.now)
	w.U64(c.archBlockStart)
	w.Bool(c.bbValid)
	w.U64(c.bbExpectStart)
	w.U64(c.bbBranchPC)
	w.U8(uint8(c.bbType))
	w.U64(c.bbTarget)

	c.histArch.SaveState(w)
	c.rasArch.SaveState(w)

	if sp, ok := c.dir.(bpred.StatePredictor); ok {
		sp.SaveState(w)
	}
	switch {
	case c.realBTB != nil:
		c.realBTB.SaveState(w)
	case c.twoLevel != nil:
		c.twoLevel.SaveState(w)
	case c.bb != nil:
		c.bb.SaveState(w)
	default:
		if p, ok := c.tb.(*btb.Perfect); ok {
			p.SaveState(w)
		}
	}
	c.it.SaveState(w)
	c.hier.SaveState(w)
	c.itlb.SaveState(w)
	return w.Bytes(), nil
}

// RestoreSnapshot loads state serialized by Snapshot into a freshly built
// machine whose oracle has already been advanced past the warmup region
// (see AdvanceOracle). The speculative frontend state is re-derived from
// the restored architectural state exactly as FastForward leaves it, so a
// restored machine and a cold fast-forwarded one are bit-identical.
func (c *Core) RestoreSnapshot(b []byte) error {
	if c.now != 0 || c.q.Len() != 0 || c.dqLen != 0 {
		return fmt.Errorf("core: restore into a machine that already ran (cycle %d)", c.now)
	}
	r := ckpt.NewReader(b)
	if m := r.U32(); r.Err() == nil && m != snapMagic {
		return fmt.Errorf("core: bad snapshot magic %#x", m)
	}
	if v := r.U32(); r.Err() == nil && v != snapVersion {
		return fmt.Errorf("core: unsupported snapshot version %d", v)
	}
	c.specPC = r.U64()
	c.retired = r.U64()
	c.now = r.U64()
	c.archBlockStart = r.U64()
	c.bbValid = r.Bool()
	c.bbExpectStart = r.U64()
	c.bbBranchPC = r.U64()
	c.bbType = program.InstType(r.U8())
	c.bbTarget = r.U64()

	c.histArch.LoadState(r)
	c.rasArch.LoadState(r)

	if sp, ok := c.dir.(bpred.StatePredictor); ok {
		sp.LoadState(r)
	}
	switch {
	case c.realBTB != nil:
		c.realBTB.LoadState(r)
	case c.twoLevel != nil:
		c.twoLevel.LoadState(r)
	case c.bb != nil:
		c.bb.LoadState(r)
	default:
		if p, ok := c.tb.(*btb.Perfect); ok {
			p.LoadState(r)
		}
	}
	c.it.LoadState(r)
	c.hier.LoadState(r)
	c.itlb.LoadState(r)
	if err := r.Done(); err != nil {
		return fmt.Errorf("core: snapshot decode: %w", err)
	}

	c.histSpec.CopyFrom(c.histArch)
	c.rasSpec.CopyFrom(c.rasArch)
	return nil
}

// advancer is implemented by oracle streams that can skip ahead cheaply
// (trace replays jump modulo the trace length; synth streams replay their
// behaviour models without materializing DynInsts).
type advancer interface {
	Advance(n uint64)
}

// AdvanceOracle functionally advances an oracle by n instructions — the
// restore-side counterpart of FastForward's stream consumption. Streams
// implementing Advance are skipped in chunks with context polls between
// them; others are drained with Next.
func AdvanceOracle(ctx context.Context, o Oracle, n uint64) error {
	done := ctx.Done()
	const chunk = 1 << 16
	for n > 0 {
		step := n
		if step > chunk {
			step = chunk
		}
		if a, ok := o.(advancer); ok {
			a.Advance(step)
		} else {
			for i := uint64(0); i < step; i++ {
				o.Next()
			}
		}
		n -= step
		if done != nil {
			select {
			case <-done:
				return ctx.Err()
			default:
			}
		}
	}
	return nil
}

// SimulateCheckpointed runs one simulation with functional fast-forward
// warmup and checkpointing. With restore == nil it fast-forwards through
// the warmup budget cold, snapshots the post-warmup state, measures, and
// returns the snapshot alongside the run. With restore != nil it advances
// a fresh oracle past the warmup region, loads the snapshot, and
// measures — producing a byte-identical run without re-training. The
// returned snapshot is nil on the restore path.
func SimulateCheckpointed(ctx context.Context, cfg Config, oracle Oracle, workload string, warmup, measure uint64, o SimOptions, restore []byte) (*stats.Run, []byte, error) {
	if restore != nil {
		o.phase("restore")
		if err := AdvanceOracle(ctx, oracle, warmup); err != nil {
			return nil, nil, err
		}
	}
	c, err := New(cfg, oracle)
	if err != nil {
		return nil, nil, err
	}
	c.SetWorkloadName(workload)
	if o.Probes != nil {
		c.Observe(o.Probes)
	}
	c.hb = o.Heartbeat
	if o.Check {
		c.EnableChecks()
	}
	var snap []byte
	if restore != nil {
		if err := c.RestoreSnapshot(restore); err != nil {
			return nil, nil, fmt.Errorf("%w: %v", ErrBadSnapshot, err)
		}
	} else {
		o.phase("ffwd")
		if err := c.FastForward(ctx, warmup); err != nil {
			return nil, nil, err
		}
		if snap, err = c.Snapshot(); err != nil {
			return nil, nil, err
		}
	}
	o.phase("measure")
	run, err := c.RunContext(ctx, 0, measure)
	if err != nil {
		return nil, nil, err
	}
	return run, snap, nil
}
