// Package runner is the unified run-execution subsystem: every frontend
// (the experiment grid, cmd/sweep, cmd/fdpsim) describes its simulations
// as declarative Specs and hands them to Execute, which schedules them on
// a bounded worker pool with first-error cancellation and per-job panic
// isolation, and satisfies repeated specs from a content-addressed result
// cache instead of re-simulating. See docs/ARCHITECTURE.md.
package runner

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"

	"fdp/internal/core"
	"fdp/internal/synth"
)

// Epoch is the simulator-semantics version of cached results. Any change
// that alters simulation output — which by definition regenerates the
// golden manifests (`make golden-update`) — MUST bump this constant so
// stale on-disk cache entries are treated as misses instead of silently
// replaying results from the old simulator. Representation-only changes
// that keep the golden manifests byte-identical must NOT bump it, so
// caches stay warm across them.
const Epoch = 2

// cacheSchema versions the on-disk cache entry layout itself (as opposed
// to the simulator semantics, which Epoch tracks). v2 nests the result in
// a CRC-32-covered payload so bit flips are detected and quarantined.
const cacheSchema = 2

// Spec declares one simulation: the full machine configuration, the
// workload identity, and the warmup/measure instruction budget. Two specs
// with equal Keys denote the same simulation and — the simulator being
// deterministic — the same result; that is what makes results
// content-addressable.
type Spec struct {
	// Config is the full machine configuration (part of the identity).
	Config core.Config
	// Workload, Class and Seed identify the deterministic instruction
	// stream. For synthetic workloads the (name, seed) pair pins the
	// generated program and all branch behaviour.
	Workload string
	Class    string
	Seed     uint64
	// Warmup and Measure are the instruction budgets.
	Warmup  uint64
	Measure uint64

	// NewOracle produces a fresh oracle for the stream. It is the
	// execution handle only — never part of the identity hash — and must
	// yield the same instruction sequence every call (synth streams and
	// trace replays both do).
	NewOracle func() core.Oracle
}

// WorkloadSpec builds the Spec for one (config, synthetic workload,
// budget) simulation.
func WorkloadSpec(cfg core.Config, w *synth.Workload, warmup, measure uint64) Spec {
	return Spec{
		Config:   cfg,
		Workload: w.Name,
		Class:    w.Class,
		Seed:     w.Seed,
		Warmup:   warmup,
		Measure:  measure,
		NewOracle: func() core.Oracle {
			return w.NewStream()
		},
	}
}

// Key returns the spec's stable content hash: sha256 over a versioned
// preamble, the workload identity and budget, and the canonical JSON
// encoding of the configuration. Adding a Config field changes the hash —
// deliberately, since a new knob may change semantics. The simulator
// Epoch is NOT part of the key; it is stored alongside cached entries and
// checked on read, so an epoch bump invalidates entries without orphaning
// the files. TestSpecKeyGolden pins the scheme against silent drift.
func (s Spec) Key() string {
	cfg, err := json.Marshal(s.Config)
	if err != nil {
		// core.Config is a plain data struct; its encoding cannot fail.
		panic(fmt.Sprintf("runner: marshaling config: %v", err))
	}
	h := sha256.New()
	fmt.Fprintf(h, "fdp-spec-v1|workload=%s|class=%s|seed=%d|warmup=%d|measure=%d|config=",
		s.Workload, s.Class, s.Seed, s.Warmup, s.Measure)
	h.Write(cfg)
	return hex.EncodeToString(h.Sum(nil))
}
