package obs

// Top-down frontend cycle-accounting taxonomy. Every measured cycle is
// attributed by the core to exactly one bucket, so the bucket vector is a
// partition of the run's cycles (the conservation invariant: bucket sum
// == measured cycles, asserted by the root-level accounting tests and by
// `make accounting-check`). The taxonomy names live here — next to the
// other canonical metric names — because the interval codec, the
// manifests and the report renderer all share them; the classification
// rules themselves are the core's business (internal/core/account.go,
// documented in docs/OBSERVABILITY.md).
const (
	// AcctDelivering: the decode queue held a full decode-width group —
	// the frontend kept the backend fed this cycle.
	AcctDelivering = iota
	// AcctL1IMissStarved: starved with the FTQ head waiting on an
	// instruction-cache fill (the fetch-starvation the paper's
	// prefetching attacks).
	AcctL1IMissStarved
	// AcctFTQEmpty: starved with no FTQ entries to fetch from — the
	// prediction pipeline itself is the bottleneck.
	AcctFTQEmpty
	// AcctResteerRecovery: starved while the prediction pipeline restarts
	// after a post-fetch-correction redirect.
	AcctResteerRecovery
	// AcctFlushRecovery: starved while a resolve-time misprediction flush
	// is pending or the pipeline restarts after a resolve/GHR-fixup
	// flush.
	AcctFlushRecovery
	// AcctMSHRBackpressure: starved with the FTQ head's demand fill
	// blocked because the MSHRs were full this cycle.
	AcctMSHRBackpressure
	// AcctFetchPartial: starved with fetchable work available — partial
	// blocks, taken-branch fragmentation, tag-probe bandwidth or
	// fill-pipeline skew kept delivery under decode width.
	AcctFetchPartial

	// NumAcctBuckets is the taxonomy size.
	NumAcctBuckets
)

// AcctBucketNames are the wire names of the taxonomy, indexed by bucket.
var AcctBucketNames = [NumAcctBuckets]string{
	AcctDelivering:       "delivering",
	AcctL1IMissStarved:   "l1i_miss_starved",
	AcctFTQEmpty:         "ftq_empty",
	AcctResteerRecovery:  "resteer_recovery",
	AcctFlushRecovery:    "flush_recovery",
	AcctMSHRBackpressure: "mshr_backpressure",
	AcctFetchPartial:     "fetch_partial",
}

// AcctCounterPrefix prefixes the taxonomy names in manifest counters
// ("acct.delivering", "acct.l1i_miss_starved", ...).
const AcctCounterPrefix = "acct."

// AcctCounterName returns the manifest counter name of bucket b.
func AcctCounterName(b int) string { return AcctCounterPrefix + AcctBucketNames[b] }

// AcctVector extracts the accounting counter family from a manifest
// counter map. ok is false when any bucket is absent — pre-accounting
// manifests, or non-run documents like the `__runner__` summary.
func AcctVector(counters map[string]uint64) (v [NumAcctBuckets]uint64, ok bool) {
	for b := range v {
		c, present := counters[AcctCounterName(b)]
		if !present {
			return [NumAcctBuckets]uint64{}, false
		}
		v[b] = c
	}
	return v, true
}
