package prefetch

import "fdp/internal/program"

// RDIP is RAS-Directed Instruction Prefetching (Kolli/Saidi/Wenisch,
// MICRO'13), the precursor to D-JOLT the paper cites: the program context
// is captured as a hash of the return-address stack contents, and the
// I-cache misses observed under each context are prefetched the next time
// the same context is entered.
type RDIP struct {
	// Shadow RAS maintained from the retired call/return stream.
	stack []uint64

	table *sigTable
	cur   uint32
}

// NewRDIP builds the default-size RDIP (~34KB metadata).
func NewRDIP() *RDIP {
	return &RDIP{table: newSigTable(4096, 4)}
}

// Name implements Prefetcher.
func (r *RDIP) Name() string { return "rdip" }

// StorageBits implements Prefetcher.
func (r *RDIP) StorageBits() int { return r.table.storageBits() }

// signature hashes the top four RAS entries (the paper's context).
func (r *RDIP) signature() uint32 {
	n := len(r.stack)
	lo := n - 4
	if lo < 0 {
		lo = 0
	}
	return sigOf(r.stack[lo:n])
}

// OnBranch implements Prefetcher: calls push and returns pop the shadow
// RAS; every context change triggers a lookup.
func (r *RDIP) OnBranch(pc uint64, t program.InstType, target uint64, emit Emit) {
	switch {
	case t.IsCall():
		r.stack = append(r.stack, pc+4)
		if len(r.stack) > 64 {
			r.stack = r.stack[1:]
		}
	case t.IsReturn():
		if len(r.stack) > 0 {
			r.stack = r.stack[:len(r.stack)-1]
		}
	default:
		return
	}
	r.cur = r.signature()
	r.table.lookup(r.cur, emit)
}

// OnAccess implements Prefetcher: misses are attributed to the current
// RAS context.
func (r *RDIP) OnAccess(line uint64, hit, _ bool, emit Emit) {
	if hit {
		return
	}
	r.table.record(r.cur, line)
}

// OnFill implements Prefetcher.
func (r *RDIP) OnFill(uint64, Emit) {}
