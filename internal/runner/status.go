package runner

import "sync/atomic"

// Status is the lock-free live progress view of an Execute call, built
// for concurrent readers (the HTTP monitor) while workers update it. The
// obs registry is deliberately NOT used here: it is single-goroutine by
// contract, whereas Status fields are plain atomics that any goroutine
// may read mid-run. A nil *Status disables all updates.
type Status struct {
	// Specs is the total number of specs handed to Execute.
	Specs atomic.Int64
	// Started counts jobs a worker has begun (cache hits included);
	// Done counts jobs that finished, successfully or not.
	Started atomic.Int64
	Done    atomic.Int64
	// Running is the instantaneous number of in-flight jobs.
	Running atomic.Int64
	// CacheHits / CacheMisses mirror the runner_cache_* counters.
	CacheHits   atomic.Int64
	CacheMisses atomic.Int64
	// Canceled counts jobs abandoned by first-error or caller
	// cancellation; Panics counts recovered job panics.
	Canceled atomic.Int64
	Panics   atomic.Int64
}

// StatusSnapshot is the JSON shape served on the monitor's /progress
// endpoint: one consistent-enough point-in-time read of every field.
type StatusSnapshot struct {
	Specs       int64 `json:"specs"`
	Started     int64 `json:"started"`
	Done        int64 `json:"done"`
	Running     int64 `json:"running"`
	Queued      int64 `json:"queued"`
	CacheHits   int64 `json:"cache_hits"`
	CacheMisses int64 `json:"cache_misses"`
	Canceled    int64 `json:"canceled"`
	Panics      int64 `json:"panics"`
}

// Snapshot reads the current values. Fields are read independently, so a
// snapshot taken mid-update may be off by a job — fine for monitoring.
func (s *Status) Snapshot() StatusSnapshot {
	if s == nil {
		return StatusSnapshot{}
	}
	snap := StatusSnapshot{
		Specs:       s.Specs.Load(),
		Started:     s.Started.Load(),
		Done:        s.Done.Load(),
		Running:     s.Running.Load(),
		CacheHits:   s.CacheHits.Load(),
		CacheMisses: s.CacheMisses.Load(),
		Canceled:    s.Canceled.Load(),
		Panics:      s.Panics.Load(),
	}
	if q := snap.Specs - snap.Started; q > 0 {
		snap.Queued = q
	}
	return snap
}

// nil-safe increment helpers used from the scheduler hot path.

func (s *Status) addSpecs(n int64) {
	if s != nil {
		s.Specs.Add(n)
	}
}

func (s *Status) jobStarted() {
	if s != nil {
		s.Started.Add(1)
		s.Running.Add(1)
	}
}

func (s *Status) jobDone() {
	if s != nil {
		s.Done.Add(1)
		s.Running.Add(-1)
	}
}

func (s *Status) cacheHit() {
	if s != nil {
		s.CacheHits.Add(1)
	}
}

func (s *Status) cacheMiss() {
	if s != nil {
		s.CacheMisses.Add(1)
	}
}

func (s *Status) addCanceled(n int64) {
	if s != nil && n > 0 {
		s.Canceled.Add(n)
	}
}

func (s *Status) panicked() {
	if s != nil {
		s.Panics.Add(1)
	}
}
