package runner

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"fdp/internal/obs"
	"fdp/internal/stats"
)

func testRun(workload string, cycles uint64) *stats.Run {
	return &stats.Run{
		Config:       "test",
		Workload:     workload,
		Cycles:       cycles,
		Instructions: 2 * cycles,
		WindowIPC:    []float64{1.5, 2.0},
	}
}

func TestCacheHitMiss(t *testing.T) {
	c, err := NewCache(4, "")
	if err != nil {
		t.Fatal(err)
	}
	if _, _, ok := c.Get("k1", false); ok {
		t.Fatal("hit on empty cache")
	}
	c.Put("k1", testRun("a", 100), nil)
	run, m, ok := c.Get("k1", false)
	if !ok || run == nil || m != nil {
		t.Fatalf("Get = (%v, %v, %v), want run hit without manifest", run, m, ok)
	}
	if run.Cycles != 100 || run.Workload != "a" {
		t.Fatalf("wrong cached run: %+v", run)
	}
	hits, misses, _ := c.Stats()
	if hits != 1 || misses != 1 {
		t.Fatalf("stats = (%d hits, %d misses), want (1, 1)", hits, misses)
	}
}

// TestCacheIsolation asserts mutating a returned run cannot corrupt the
// cached copy (and vice versa for the stored run).
func TestCacheIsolation(t *testing.T) {
	c, _ := NewCache(4, "")
	orig := testRun("a", 100)
	c.Put("k", orig, nil)
	orig.Cycles = 999
	orig.WindowIPC[0] = -1

	got, _, _ := c.Get("k", false)
	if got.Cycles != 100 || got.WindowIPC[0] != 1.5 {
		t.Fatalf("cache aliased caller state: %+v", got)
	}
	got.WindowIPC[1] = -2
	again, _, _ := c.Get("k", false)
	if again.WindowIPC[1] != 2.0 {
		t.Fatal("cache aliased returned state")
	}
}

// TestCacheNeedManifest: an entry stored without a manifest cannot serve
// an observed consumer.
func TestCacheNeedManifest(t *testing.T) {
	c, _ := NewCache(4, "")
	c.Put("k", testRun("a", 1), nil)
	if _, _, ok := c.Get("k", true); ok {
		t.Fatal("manifest-less entry served an observed consumer")
	}
	m := &obs.Manifest{Schema: obs.ManifestSchema, Workload: "a"}
	c.Put("k", testRun("a", 1), m)
	if _, got, ok := c.Get("k", true); !ok || got == nil || got.Workload != "a" {
		t.Fatalf("manifest entry not served: ok=%v m=%+v", ok, got)
	}
}

func TestCacheEviction(t *testing.T) {
	c, _ := NewCache(2, "")
	c.Put("k1", testRun("a", 1), nil)
	c.Put("k2", testRun("b", 2), nil)
	if _, _, ok := c.Get("k1", false); !ok { // k1 now most recent
		t.Fatal("k1 missing before eviction")
	}
	c.Put("k3", testRun("c", 3), nil) // evicts k2 (least recently used)
	if c.Len() != 2 {
		t.Fatalf("Len = %d, want 2", c.Len())
	}
	if _, _, ok := c.Get("k2", false); ok {
		t.Fatal("k2 survived eviction")
	}
	for _, k := range []string{"k1", "k3"} {
		if _, _, ok := c.Get(k, false); !ok {
			t.Fatalf("%s was evicted, want k2", k)
		}
	}
}

// TestCacheDiskRoundTrip: a second cache over the same directory serves
// results simulated by the first — the resume path.
func TestCacheDiskRoundTrip(t *testing.T) {
	dir := t.TempDir()
	c1, err := NewCache(4, dir)
	if err != nil {
		t.Fatal(err)
	}
	m := &obs.Manifest{Schema: obs.ManifestSchema, Workload: "a", Counters: map[string]uint64{"run.cycles": 100}}
	c1.Put("k", testRun("a", 100), m)

	c2, err := NewCache(4, dir)
	if err != nil {
		t.Fatal(err)
	}
	run, gotM, ok := c2.Get("k", true)
	if !ok {
		t.Fatal("disk entry not found by fresh cache")
	}
	if run.Cycles != 100 || run.WindowIPC[1] != 2.0 {
		t.Fatalf("disk run corrupted: %+v", run)
	}
	if gotM == nil || gotM.Counters["run.cycles"] != 100 {
		t.Fatalf("disk manifest corrupted: %+v", gotM)
	}
}

// TestCacheCorruptDiskEntry: garbage on disk is a miss, never a failure,
// and a subsequent Put repairs it.
func TestCacheCorruptDiskEntry(t *testing.T) {
	dir := t.TempDir()
	c, _ := NewCache(4, dir)
	if err := os.WriteFile(filepath.Join(dir, "k.json"), []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, ok := c.Get("k", false); ok {
		t.Fatal("corrupt entry served")
	}
	c.Put("k", testRun("a", 7), nil)
	c2, _ := NewCache(4, dir)
	if run, _, ok := c2.Get("k", false); !ok || run.Cycles != 7 {
		t.Fatal("Put did not repair the corrupt entry")
	}
}

// TestCacheEpochMismatch: entries written under another simulator epoch
// are misses.
func TestCacheEpochMismatch(t *testing.T) {
	dir := t.TempDir()
	c, _ := NewCache(4, dir)
	b, err := json.Marshal(diskEntry{Schema: cacheSchema, Epoch: Epoch + 1, Key: "k", Run: testRun("a", 5)})
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "k.json"), b, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, ok := c.Get("k", false); ok {
		t.Fatal("entry from a different epoch served")
	}
	// Same epoch but mismatched embedded key (hand-copied file): miss.
	b, _ = json.Marshal(diskEntry{Schema: cacheSchema, Epoch: Epoch, Key: "other", Run: testRun("a", 5)})
	os.WriteFile(filepath.Join(dir, "k.json"), b, 0o644)
	if _, _, ok := c.Get("k", false); ok {
		t.Fatal("entry with mismatched key served")
	}
}
