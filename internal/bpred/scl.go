package bpred

// This file implements TAGE-SC-L (Seznec, CBP-4/5): TAGE plus a loop
// predictor and a GEHL-style statistical corrector. The paper's baseline
// uses plain TAGE; TAGE-SC-L is the natural "more frontend resources"
// extension commercial cores ship, included here as an additional Fig. 12
// comparison point.

// scTable is one statistical-corrector component: signed counters indexed
// by pc hashed with a fold of the recent history.
type scTable struct {
	ctr     []int8 // 6-bit signed counters: -32..31
	idxBits int
	histLen int // 0 = bias table (pc only)
	foldIdx int // index into the shared History folds; -1 for bias
}

// SCConfig sizes the statistical corrector.
type SCConfig struct {
	IdxBits  int
	HistLens []int // history lengths of the non-bias tables
}

// DefaultSCConfig returns a small (~6KB) corrector.
func DefaultSCConfig() SCConfig {
	return SCConfig{IdxBits: 12, HistLens: []int{5, 15, 43}}
}

// TAGESCL combines TAGE with a loop predictor and a statistical
// corrector. It implements DirPredictor.
type TAGESCL struct {
	name string
	tage *TAGE
	loop *LoopPredictor
	sc   []scTable

	thresh   int32
	tcounter int32 // dynamic threshold adaptation

	// LoopOverrides and SCOverrides count how often each component
	// changed the TAGE prediction.
	LoopOverrides uint64
	SCOverrides   uint64
}

// NewTAGESCL builds the combined predictor around the given TAGE config.
func NewTAGESCL(name string, tcfg TAGEConfig, scfg SCConfig) *TAGESCL {
	p := &TAGESCL{
		name:   name,
		tage:   NewTAGE(tcfg),
		loop:   NewLoopPredictor(9),
		thresh: 6,
	}
	for _, hl := range append([]int{0}, scfg.HistLens...) {
		p.sc = append(p.sc, scTable{
			ctr:     make([]int8, 1<<scfg.IdxBits),
			idxBits: scfg.IdxBits,
			histLen: hl,
			foldIdx: -1,
		})
	}
	return p
}

// TAGESCL64KB returns the full-budget configuration.
func TAGESCL64KB() *TAGESCL {
	return NewTAGESCL("tage-sc-l-64kb", TAGE36KB(), DefaultSCConfig())
}

// TAGESCL24KB returns a budget near the paper's baseline TAGE.
func TAGESCL24KB() *TAGESCL {
	return NewTAGESCL("tage-sc-l-24kb", TAGE18KB(), DefaultSCConfig())
}

// Name implements DirPredictor.
func (p *TAGESCL) Name() string { return p.name }

// Specs implements DirPredictor: TAGE's folds followed by one fold per
// non-bias SC table.
func (p *TAGESCL) Specs() []FoldSpec {
	specs := p.tage.Specs()
	for _, t := range p.sc {
		if t.histLen > 0 {
			specs = append(specs, FoldSpec{Length: t.histLen, Width: t.idxBits})
		}
	}
	return specs
}

// Bind implements DirPredictor.
func (p *TAGESCL) Bind(base int) {
	p.tage.Bind(base)
	fold := base + len(p.tage.Specs())
	for i := range p.sc {
		if p.sc[i].histLen > 0 {
			p.sc[i].foldIdx = fold
			fold++
		}
	}
}

// StorageBits implements DirPredictor.
func (p *TAGESCL) StorageBits() int {
	bits := p.tage.StorageBits() + p.loop.StorageBits()
	for _, t := range p.sc {
		bits += len(t.ctr) * 6
	}
	return bits
}

func (t *scTable) index(pc uint64, h *History) uint32 {
	idx := uint32(pc >> 2)
	if t.foldIdx >= 0 {
		idx ^= h.Folded(t.foldIdx)
	}
	return idx & (1<<uint(t.idxBits) - 1)
}

// scSum computes the corrector sum, with the TAGE prediction contributing
// a strong centring term.
func (p *TAGESCL) scSum(pc uint64, h *History, tagePred bool) int32 {
	var sum int32
	if tagePred {
		sum += 8
	} else {
		sum -= 8
	}
	for i := range p.sc {
		sum += 2*int32(p.sc[i].ctr[p.sc[i].index(pc, h)]) + 1
	}
	return sum
}

// Predict implements DirPredictor: loop predictor overrides when
// confident; otherwise the statistical corrector may flip a weak TAGE
// prediction.
func (p *TAGESCL) Predict(pc uint64, h *History) bool {
	if taken, confident := p.loop.Predict(pc); confident {
		p.LoopOverrides++
		return taken
	}
	tagePred := p.tage.Predict(pc, h)
	sum := p.scSum(pc, h, tagePred)
	scPred := sum >= 0
	if scPred != tagePred && abs32(sum) >= p.thresh {
		p.SCOverrides++
		return scPred
	}
	return tagePred
}

// Update implements DirPredictor.
func (p *TAGESCL) Update(pc uint64, h *History, taken bool) {
	p.loop.Update(pc, taken)
	tagePred := p.tage.Predict(pc, h)
	sum := p.scSum(pc, h, tagePred)
	scUsed := (sum >= 0) != tagePred && abs32(sum) >= p.thresh
	finalPred := tagePred
	if scUsed {
		finalPred = sum >= 0
	}
	// Train the corrector on mispredictions and low-confidence sums.
	if finalPred != taken || abs32(sum) < p.thresh+6 {
		for i := range p.sc {
			c := &p.sc[i].ctr[p.sc[i].index(pc, h)]
			if taken {
				if *c < 31 {
					*c++
				}
			} else if *c > -32 {
				*c--
			}
		}
	}
	// Dynamic threshold: if SC overrides are hurting, raise the bar.
	if scUsed {
		if finalPred == taken && tagePred != taken {
			p.tcounter--
		} else if finalPred != taken && tagePred == taken {
			p.tcounter++
		}
		if p.tcounter >= 4 {
			p.tcounter = 0
			if p.thresh < 30 {
				p.thresh += 2
			}
		} else if p.tcounter <= -4 {
			p.tcounter = 0
			if p.thresh > 4 {
				p.thresh -= 2
			}
		}
	}
	p.tage.Update(pc, h, taken)
}

func abs32(x int32) int32 {
	if x < 0 {
		return -x
	}
	return x
}
