package synth

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"fdp/internal/program"
	"fdp/internal/wspec"
)

// TestPresetsCompile keeps wspec.Presets and presetParams in lock-step:
// every advertised preset must resolve to valid parameters for the full
// variant range the built-in families use.
func TestPresetsCompile(t *testing.T) {
	for _, name := range wspec.Presets {
		for v := 0; v < 4; v++ {
			p, err := presetParams(name, v)
			if err != nil {
				t.Fatalf("presetParams(%q, %d): %v", name, v, err)
			}
			if err := p.Validate(); err != nil {
				t.Fatalf("preset %q variant %d invalid: %v", name, v, err)
			}
		}
	}
	if _, err := presetParams("mainframe", 0); err == nil {
		t.Fatal("unknown preset accepted")
	}
}

// TestSingleComponentSpecEquivalence: a one-component, no-phase spec
// compiles to a byte-identical image, identical behaviour tables and an
// identical dynamic stream as the plain preset generated with the same
// parameters and seed. This is the refactor's core compatibility
// guarantee — it is why the built-ins can flow through FromSpec without
// regenerating any golden manifest.
func TestSingleComponentSpecEquivalence(t *testing.T) {
	const seed = serverSeedBase + 2 // server_c's seed
	sp := &wspec.Spec{
		Version: wspec.Version, Name: "server_c", Class: "server", Seed: seed,
		SwitchEvery: wspec.DefaultSwitchEvery,
		Mix:         []wspec.Component{{Preset: "server", Variant: 2, Weight: 1}},
	}
	fromSpec, err := FromSpec(sp)
	if err != nil {
		t.Fatal(err)
	}
	plain := MustGenerate(ServerParams(2), "server", seed)

	if fromSpec.SpecHash == "" {
		t.Error("spec-compiled workload missing SpecHash")
	}
	if fromSpec.Mixed() {
		t.Error("single-component spec compiled to a mixed workload")
	}
	if fromSpec.Name != plain.Name || fromSpec.Class != plain.Class || fromSpec.Seed != plain.Seed {
		t.Fatalf("identity mismatch: %s/%s/%d vs %s/%s/%d",
			fromSpec.Name, fromSpec.Class, fromSpec.Seed, plain.Name, plain.Class, plain.Seed)
	}
	if fromSpec.Entry() != plain.Entry() {
		t.Fatalf("entry mismatch: %#x vs %#x", fromSpec.Entry(), plain.Entry())
	}

	// Byte-identical static image.
	a, b := fromSpec.Image(), plain.Image()
	if a.Base() != b.Base() || a.Size() != b.Size() {
		t.Fatalf("image shape mismatch: base %#x size %d vs base %#x size %d",
			a.Base(), a.Size(), b.Base(), b.Size())
	}
	for pc := a.Base(); pc < a.Limit(); pc += program.InstBytes {
		ia, _ := a.At(pc)
		ib, _ := b.At(pc)
		if ia != ib {
			t.Fatalf("image differs at %#x: %+v vs %+v", pc, ia, ib)
		}
	}

	// Identical dynamic stream (behaviour models and seeding included).
	sa, sb := fromSpec.NewStream(), plain.NewStream()
	for i := 0; i < 200_000; i++ {
		da, db := sa.Next(), sb.Next()
		if da != db {
			t.Fatalf("stream diverges at instruction %d: %+v vs %+v", i, da, db)
		}
	}
}

// TestBuiltinsMatchLegacyGeneration: the registry's spec-compiled
// built-ins equal direct MustGenerate output (the pre-refactor path)
// across the whole suite.
func TestBuiltinsMatchLegacyGeneration(t *testing.T) {
	legacy := []*Workload{}
	for v := 0; v < 4; v++ {
		legacy = append(legacy, MustGenerate(ServerParams(v), "server", serverSeedBase+uint64(v)))
	}
	for v := 0; v < 4; v++ {
		legacy = append(legacy, MustGenerate(ClientParams(v), "client", clientSeedBase+uint64(v)))
	}
	for v := 0; v < 4; v++ {
		legacy = append(legacy, MustGenerate(SpecParams(v), "spec", specSeedBase+uint64(v)))
	}
	std := StandardWorkloads()
	if len(std) != len(legacy) {
		t.Fatalf("suite size %d, want %d", len(std), len(legacy))
	}
	for i, w := range std {
		l := legacy[i]
		if w.Name != l.Name || w.Class != l.Class || w.Seed != l.Seed || w.SpecHash != "" {
			t.Fatalf("workload %d identity: %s/%s/%d hash=%q vs %s/%s/%d",
				i, w.Name, w.Class, w.Seed, w.SpecHash, l.Name, l.Class, l.Seed)
		}
		if w.Image().Size() != l.Image().Size() || w.Entry() != l.Entry() {
			t.Fatalf("%s: image size/entry differ from legacy generation", w.Name)
		}
		sa, sb := w.NewStream(), l.NewStream()
		for k := 0; k < 20_000; k++ {
			if da, db := sa.Next(), sb.Next(); da != db {
				t.Fatalf("%s: stream diverges at %d", w.Name, k)
			}
		}
	}
}

func mixedSpec() *wspec.Spec {
	three := 3.0
	return &wspec.Spec{
		Version: wspec.Version, Name: "mix_test", Class: "custom", Seed: 99,
		SwitchEvery: 5_000,
		Mix: []wspec.Component{
			{Preset: "spec", Variant: 0, Weight: three},
			{Preset: "client", Variant: 0, Weight: 1, SeedOffset: 11},
		},
		Phases: []wspec.Phase{
			{At: 120_000, Reseed: 1},
			{At: 240_000, Mix: []wspec.Component{{Preset: "spec", Variant: 1, Weight: 1}}},
		},
	}
}

// TestMixedSpecDeterminism: two streams of a mixed+phased workload are
// instruction-identical, the oracle contract (next executed PC equals
// the previous NextPC) holds across component switches and phase
// boundaries, and execution actually reaches every phase.
func TestMixedSpecDeterminism(t *testing.T) {
	w, err := FromSpec(mixedSpec())
	if err != nil {
		t.Fatal(err)
	}
	if !w.Mixed() || w.Phases() != 3 {
		t.Fatalf("Mixed=%v Phases=%d, want mixed with 3 phases", w.Mixed(), w.Phases())
	}
	sa, sb := w.NewStream(), w.NewStream()
	const n = 300_000
	prevNext := sa.PC()
	for i := 0; i < n; i++ {
		if pc := sa.PC(); pc != prevNext {
			t.Fatalf("oracle contract broken at %d: PC %#x, previous NextPC %#x", i, pc, prevNext)
		}
		da, db := sa.Next(), sb.Next()
		if da != db {
			t.Fatalf("streams diverge at %d: %+v vs %+v", i, da, db)
		}
		prevNext = da.NextPC
	}
	if sa.phase != 2 {
		t.Fatalf("after %d instructions stream is in phase %d, want 2", n, sa.phase)
	}
}

// TestMixWeightShares: the deficit scheduler converges component
// instruction shares to the mix weights.
func TestMixWeightShares(t *testing.T) {
	sp := mixedSpec()
	sp.Phases = nil // keep one phase so shares are easy to read
	w, err := FromSpec(sp)
	if err != nil {
		t.Fatal(err)
	}
	s := w.NewStream()
	for i := 0; i < 400_000; i++ {
		s.Next()
	}
	total := s.ctxs[0].ran + s.ctxs[1].ran
	share := float64(s.ctxs[0].ran) / float64(total)
	if share < 0.70 || share > 0.80 {
		t.Fatalf("weight-3 component got %.3f of instructions, want ~0.75", share)
	}
}

// TestPhaseChurnChangesCode: a reseed phase must execute different code
// (fresh image region) than phase 0.
func TestPhaseChurnChangesCode(t *testing.T) {
	sp := mixedSpec()
	w, err := FromSpec(sp)
	if err != nil {
		t.Fatal(err)
	}
	s := w.NewStream()
	seenP0 := map[uint64]bool{}
	for s.phase == 0 {
		d := s.Next()
		seenP0[d.SI.PC] = true
		if s.Executed > 200_000 {
			t.Fatal("phase 1 never entered")
		}
	}
	// The boundary lands at the first scheduling point at or after At.
	if s.Executed < 120_000 || s.Executed > 121_000 {
		t.Fatalf("phase 1 entered at instruction %d, want shortly after 120000", s.Executed)
	}
	for i := 0; i < 50_000; i++ {
		if d := s.Next(); seenP0[d.SI.PC] {
			t.Fatalf("instruction %#x executed both before and after the churn boundary", d.SI.PC)
		}
	}
}

// TestMixedAdvanceEquivalence: Advance(n) (the checkpoint-restore path)
// reaches the same stream state as executing n instructions, across
// phase boundaries.
func TestMixedAdvanceEquivalence(t *testing.T) {
	w, err := FromSpec(mixedSpec())
	if err != nil {
		t.Fatal(err)
	}
	const n = 250_000 // past both phase boundaries
	sa, sb := w.NewStream(), w.NewStream()
	for i := 0; i < n; i++ {
		sa.Next()
	}
	sb.Advance(n)
	if sa.PC() != sb.PC() || sa.Executed != sb.Executed || sa.phase != sb.phase {
		t.Fatalf("Advance state mismatch: pc %#x/%#x executed %d/%d phase %d/%d",
			sa.PC(), sb.PC(), sa.Executed, sb.Executed, sa.phase, sb.phase)
	}
	for i := 0; i < 50_000; i++ {
		if da, db := sa.Next(), sb.Next(); da != db {
			t.Fatalf("post-Advance streams diverge at %d", i)
		}
	}
}

// TestFromSpecRejectsBadParams: overrides are validated through
// Params.Validate with a component-locating error.
func TestFromSpecRejectsBadParams(t *testing.T) {
	bad := 1
	sp := &wspec.Spec{
		Version: wspec.Version, Name: "bad", Class: "custom", Seed: 1,
		SwitchEvery: wspec.DefaultSwitchEvery,
		Mix:         []wspec.Component{{Preset: "server", Weight: 1, Params: wspec.Overrides{Funcs: &bad}}},
	}
	_, err := FromSpec(sp)
	if err == nil {
		t.Fatal("FromSpec accepted Funcs=1")
	}
	if !strings.Contains(err.Error(), "component 0") || !strings.Contains(err.Error(), "Funcs") {
		t.Fatalf("error %q does not locate the bad component/parameter", err)
	}
}

// TestLoadSpecFile exercises the file path end to end.
func TestLoadSpecFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "w.yaml")
	doc := "version: 1\nname: filetest\nseed: 7\nmix:\n  - preset: spec\n    variant: 1\n"
	if err := os.WriteFile(path, []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
	w, err := LoadSpecFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if w.Name != "filetest" || w.Seed != 7 || w.SpecHash == "" {
		t.Fatalf("loaded workload: %s seed=%d hash=%q", w.Name, w.Seed, w.SpecHash)
	}
	if _, err := LoadSpecFile(filepath.Join(dir, "missing.yaml")); err == nil {
		t.Fatal("missing file accepted")
	}
}
