package bpred

import "fdp/internal/ckpt"

// This file serializes predictor training state for fast-forward warmup
// checkpoints. Only state that influences future predictions (or future
// training) is encoded; statistics that the core resets at measurement
// start are not. Geometry (table sizes, fold specs) is NOT encoded — the
// restoring machine is built from the same training-relevant Config, and
// the length-checked slice decoders reject a checkpoint whose geometry
// disagrees.

// Section tags keep decode failures attributable to a component.
const (
	tagHistory    = 0x48495354  // "HIST"
	tagTAGE       = 0x54414745  // "TAGE"
	tagGshare     = 0x47534852  // "GSHR"
	tagBimodal    = 0x42494d44  // "BIMD"
	tagPerceptron = 0x50455243  // "PERC"
	tagSCL        = 0x5343_4c31 // "SCL1"
	tagLoop       = 0x4c4f4f50  // "LOOP"
)

// SaveState encodes the raw history bits and every folded register.
func (h *History) SaveState(w *ckpt.Writer) {
	w.Tag(tagHistory)
	w.U64s(h.bits[:])
	w.U32s(h.vals)
}

// LoadState restores state written by SaveState into a History built with
// the same FoldSpecs.
func (h *History) LoadState(r *ckpt.Reader) {
	r.Tag(tagHistory)
	r.U64s(h.bits[:])
	r.U32s(h.vals)
}

// SaveState encodes the bimodal counters, every tagged entry, the
// use-alt and tick meta-state, and the allocation RNG, so that training
// resumed from a restored TAGE is indistinguishable from one trained
// in-place.
func (t *TAGE) SaveState(w *ckpt.Writer) {
	w.Tag(tagTAGE)
	w.U8s(t.bimodal)
	w.Int(len(t.tables))
	for i := range t.tables {
		es := t.tables[i].entries
		w.U32(uint32(len(es)))
		for j := range es {
			w.U16(es[j].tag)
			w.I8(es[j].ctr)
			w.U8(es[j].u)
		}
	}
	w.I8(t.useAlt)
	w.Int(t.tick)
	w.U64(t.rng.State())
}

// LoadState restores state written by SaveState.
func (t *TAGE) LoadState(r *ckpt.Reader) {
	r.Tag(tagTAGE)
	r.U8s(t.bimodal)
	if n := r.Int(); r.Err() == nil && n != len(t.tables) {
		r.Failf("tage: table count mismatch: %d vs %d", n, len(t.tables))
		return
	}
	for i := range t.tables {
		es := t.tables[i].entries
		if n := r.U32(); r.Err() == nil && int(n) != len(es) {
			r.Failf("tage: table %d entry count mismatch: %d vs %d", i, n, len(es))
			return
		}
		for j := range es {
			es[j].tag = r.U16()
			es[j].ctr = r.I8()
			es[j].u = r.U8()
		}
	}
	t.useAlt = r.I8()
	t.tick = r.Int()
	t.rng.SetState(r.U64())
}

// SaveState encodes the gshare counter table.
func (g *Gshare) SaveState(w *ckpt.Writer) {
	w.Tag(tagGshare)
	w.U8s(g.counters)
}

// LoadState restores state written by SaveState.
func (g *Gshare) LoadState(r *ckpt.Reader) {
	r.Tag(tagGshare)
	r.U8s(g.counters)
}

// SaveState encodes the bimodal counter table.
func (b *Bimodal) SaveState(w *ckpt.Writer) {
	w.Tag(tagBimodal)
	w.U8s(b.counters)
}

// LoadState restores state written by SaveState.
func (b *Bimodal) LoadState(r *ckpt.Reader) {
	r.Tag(tagBimodal)
	r.U8s(b.counters)
}

// SaveState encodes every weight vector.
func (p *Perceptron) SaveState(w *ckpt.Writer) {
	w.Tag(tagPerceptron)
	w.Int(len(p.weights))
	for i := range p.weights {
		w.I8s(p.weights[i])
	}
}

// LoadState restores state written by SaveState.
func (p *Perceptron) LoadState(r *ckpt.Reader) {
	r.Tag(tagPerceptron)
	if n := r.Int(); r.Err() == nil && n != len(p.weights) {
		r.Failf("perceptron: vector count mismatch: %d vs %d", n, len(p.weights))
		return
	}
	for i := range p.weights {
		r.I8s(p.weights[i])
	}
}

// SaveState encodes the loop-predictor entries. The Hits counter is
// included because Predict advances it, and training replays during a
// checkpointed warmup must leave the predictor bit-identical to a cold
// warmup's.
func (l *LoopPredictor) SaveState(w *ckpt.Writer) {
	w.Tag(tagLoop)
	w.Int(len(l.entries))
	for i := range l.entries {
		e := &l.entries[i]
		w.U16(e.tag)
		w.U16(e.trip)
		w.U16(e.count)
		w.U8(e.conf)
		w.U8(e.age)
	}
	w.U64(l.Hits)
}

// LoadState restores state written by SaveState.
func (l *LoopPredictor) LoadState(r *ckpt.Reader) {
	r.Tag(tagLoop)
	if n := r.Int(); r.Err() == nil && n != len(l.entries) {
		r.Failf("loop: entry count mismatch: %d vs %d", n, len(l.entries))
		return
	}
	for i := range l.entries {
		e := &l.entries[i]
		e.tag = r.U16()
		e.trip = r.U16()
		e.count = r.U16()
		e.conf = r.U8()
		e.age = r.U8()
	}
	l.Hits = r.U64()
}

// SaveState encodes the combined predictor: TAGE, loop predictor,
// statistical-corrector counters, the adaptive threshold pair, and the
// override counters Update advances through its internal Predict calls.
func (p *TAGESCL) SaveState(w *ckpt.Writer) {
	w.Tag(tagSCL)
	p.tage.SaveState(w)
	p.loop.SaveState(w)
	w.Int(len(p.sc))
	for i := range p.sc {
		w.I8s(p.sc[i].ctr)
	}
	w.I32(p.thresh)
	w.I32(p.tcounter)
	w.U64(p.LoopOverrides)
	w.U64(p.SCOverrides)
}

// LoadState restores state written by SaveState.
func (p *TAGESCL) LoadState(r *ckpt.Reader) {
	r.Tag(tagSCL)
	p.tage.LoadState(r)
	p.loop.LoadState(r)
	if n := r.Int(); r.Err() == nil && n != len(p.sc) {
		r.Failf("scl: corrector table count mismatch: %d vs %d", n, len(p.sc))
		return
	}
	for i := range p.sc {
		r.I8s(p.sc[i].ctr)
	}
	p.thresh = r.I32()
	p.tcounter = r.I32()
	p.LoopOverrides = r.U64()
	p.SCOverrides = r.U64()
}

// StatePredictor is implemented by direction predictors whose training
// state can be checkpointed. PerfectDir is stateless and deliberately not
// on this list; the core skips it.
type StatePredictor interface {
	SaveState(w *ckpt.Writer)
	LoadState(r *ckpt.Reader)
}
