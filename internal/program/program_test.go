package program

import (
	"testing"
	"testing/quick"
)

func TestInstTypeString(t *testing.T) {
	cases := map[InstType]string{
		NonBranch:  "non-branch",
		CondDirect: "cond",
		Jump:       "jump",
		Call:       "call",
		IndJump:    "ind-jump",
		IndCall:    "ind-call",
		Return:     "return",
	}
	for ty, want := range cases {
		if got := ty.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", ty, got, want)
		}
	}
	if got := InstType(99).String(); got != "InstType(99)" {
		t.Errorf("unknown type String() = %q", got)
	}
}

func TestInstTypePredicates(t *testing.T) {
	type pred struct {
		branch, cond, uncond, direct, indirect, call, ret bool
	}
	want := map[InstType]pred{
		NonBranch:  {},
		CondDirect: {branch: true, cond: true, direct: true},
		Jump:       {branch: true, uncond: true, direct: true},
		Call:       {branch: true, uncond: true, direct: true, call: true},
		IndJump:    {branch: true, uncond: true, indirect: true},
		IndCall:    {branch: true, uncond: true, indirect: true, call: true},
		Return:     {branch: true, uncond: true, ret: true},
	}
	for ty, w := range want {
		if ty.IsBranch() != w.branch {
			t.Errorf("%v.IsBranch() = %v", ty, ty.IsBranch())
		}
		if ty.IsConditional() != w.cond {
			t.Errorf("%v.IsConditional() = %v", ty, ty.IsConditional())
		}
		if ty.IsUnconditional() != w.uncond {
			t.Errorf("%v.IsUnconditional() = %v", ty, ty.IsUnconditional())
		}
		if ty.IsDirect() != w.direct {
			t.Errorf("%v.IsDirect() = %v", ty, ty.IsDirect())
		}
		if ty.IsIndirect() != w.indirect {
			t.Errorf("%v.IsIndirect() = %v", ty, ty.IsIndirect())
		}
		if ty.IsCall() != w.call {
			t.Errorf("%v.IsCall() = %v", ty, ty.IsCall())
		}
		if ty.IsReturn() != w.ret {
			t.Errorf("%v.IsReturn() = %v", ty, ty.IsReturn())
		}
	}
}

func TestEveryBranchTypeIsExactlyOneKind(t *testing.T) {
	for ty := InstType(0); int(ty) < NumInstTypes; ty++ {
		if !ty.IsBranch() {
			continue
		}
		if ty.IsConditional() == ty.IsUnconditional() {
			t.Errorf("%v: conditional=%v unconditional=%v, want exactly one",
				ty, ty.IsConditional(), ty.IsUnconditional())
		}
	}
}

func TestImageAppendAt(t *testing.T) {
	im := NewImage(0x1000)
	pc0 := im.Append(NonBranch)
	pc1 := im.Append(CondDirect)
	pc2 := im.Append(Jump)
	if pc0 != 0x1000 || pc1 != 0x1004 || pc2 != 0x1008 {
		t.Fatalf("pcs = %#x %#x %#x", pc0, pc1, pc2)
	}
	im.SetTarget(pc1, pc0)
	im.SetTarget(pc2, pc1)
	if err := im.Freeze(); err != nil {
		t.Fatal(err)
	}
	si, ok := im.At(pc1)
	if !ok || si.Type != CondDirect || si.Target != pc0 {
		t.Errorf("At(%#x) = %+v, %v", pc1, si, ok)
	}
	if im.Size() != 3 || im.Bytes() != 12 || im.Limit() != 0x100c {
		t.Errorf("Size=%d Bytes=%d Limit=%#x", im.Size(), im.Bytes(), im.Limit())
	}
}

func TestImageAtOutside(t *testing.T) {
	im := NewImage(0x1000)
	im.Append(NonBranch)
	if _, ok := im.At(0x0ffc); ok {
		t.Error("At below base should fail")
	}
	if _, ok := im.At(0x1004); ok {
		t.Error("At past limit should fail")
	}
	if _, ok := im.At(0x1002); ok {
		t.Error("misaligned At should fail")
	}
	si := im.AtOrSequential(0x9000)
	if si.Type != NonBranch || si.PC != 0x9000 {
		t.Errorf("AtOrSequential outside = %+v", si)
	}
	if im.Contains(0x9000) {
		t.Error("Contains outside = true")
	}
	if !im.Contains(0x1000) {
		t.Error("Contains(base) = false")
	}
}

func TestImageFreezeRejectsDanglingTarget(t *testing.T) {
	im := NewImage(0)
	pc := im.Append(Jump)
	im.SetTarget(pc, 0x4000) // outside
	if err := im.Freeze(); err == nil {
		t.Fatal("Freeze accepted dangling target")
	}
}

func TestImageFreezeAllowsIndirectWithoutTarget(t *testing.T) {
	im := NewImage(0)
	im.Append(IndJump)
	im.Append(Return)
	im.Append(NonBranch)
	if err := im.Freeze(); err != nil {
		t.Fatalf("Freeze: %v", err)
	}
	if !im.Frozen() {
		t.Error("Frozen() = false after Freeze")
	}
}

func TestImagePanics(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		fn()
	}
	mustPanic("unaligned base", func() { NewImage(2) })
	im := NewImage(0)
	pc := im.Append(Jump)
	im.SetTarget(pc, 0)
	mustPanic("SetTarget outside", func() { im.SetTarget(0x4000, 0) })
	im2 := NewImage(0)
	npc := im2.Append(NonBranch)
	mustPanic("SetTarget on non-branch", func() { im2.SetTarget(npc, 0) })
	if err := im.Freeze(); err != nil {
		t.Fatal(err)
	}
	mustPanic("Append frozen", func() { im.Append(NonBranch) })
	mustPanic("SetTarget frozen", func() { im.SetTarget(pc, 0) })
}

func TestImageEachInstAndHistogram(t *testing.T) {
	im := NewImage(0x4000)
	types := []InstType{NonBranch, NonBranch, CondDirect, Call, Return, NonBranch}
	for _, ty := range types {
		pc := im.Append(ty)
		if ty.IsDirect() {
			im.SetTarget(pc, 0x4000)
		}
	}
	var seen []StaticInst
	im.EachInst(func(si StaticInst) { seen = append(seen, si) })
	if len(seen) != len(types) {
		t.Fatalf("EachInst visited %d, want %d", len(seen), len(types))
	}
	for i, si := range seen {
		if si.Type != types[i] {
			t.Errorf("inst %d type = %v, want %v", i, si.Type, types[i])
		}
		if si.PC != 0x4000+uint64(i)*InstBytes {
			t.Errorf("inst %d pc = %#x", i, si.PC)
		}
	}
	h := im.CountByType()
	if h[NonBranch] != 3 || h[CondDirect] != 1 || h[Call] != 1 || h[Return] != 1 {
		t.Errorf("histogram = %v", h)
	}
}

func TestStaticInstFallThrough(t *testing.T) {
	si := StaticInst{PC: 0x100, Type: CondDirect, Target: 0x80}
	if si.FallThrough() != 0x104 {
		t.Errorf("FallThrough = %#x", si.FallThrough())
	}
	if !si.IsBranch() {
		t.Error("IsBranch = false")
	}
}

// Property: At is the inverse of Append for any in-range index.
func TestImageAtRoundTrip(t *testing.T) {
	im := NewImage(0x10000)
	const n = 1024
	for i := 0; i < n; i++ {
		im.Append(InstType(i % NumInstTypes))
	}
	f := func(raw uint16) bool {
		idx := int(raw) % n
		pc := im.Base() + uint64(idx)*InstBytes
		si, ok := im.At(pc)
		return ok && si.PC == pc && si.Type == InstType(idx%NumInstTypes)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: any misaligned PC misses the image.
func TestImageMisalignedNeverHits(t *testing.T) {
	im := NewImage(0)
	for i := 0; i < 64; i++ {
		im.Append(NonBranch)
	}
	f := func(pc uint64) bool {
		if pc%InstBytes == 0 {
			pc++ // force misalignment
		}
		_, ok := im.At(pc)
		return !ok
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
