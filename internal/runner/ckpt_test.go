package runner

import (
	"bytes"
	"context"
	"os"
	"reflect"
	"testing"

	"fdp/internal/core"
	"fdp/internal/faultkit"
	"fdp/internal/obs"
	"fdp/internal/synth"
)

// ffwdSpec builds one fast-forward spec for the named synth workload.
func ffwdSpec(t *testing.T, cfg core.Config, wl string, warmup, measure uint64) Spec {
	t.Helper()
	w := synth.ByName(wl)
	if w == nil {
		t.Fatalf("unknown workload %s", wl)
	}
	sp := WorkloadSpec(cfg, w, warmup, measure)
	sp.FFwd = true
	return sp
}

// timingSweepSpecs returns n fast-forward specs over one workload whose
// configs differ only in timing knobs — they share one CheckpointKey.
func timingSweepSpecs(t *testing.T, n int) []Spec {
	t.Helper()
	specs := make([]Spec, 0, n)
	for i := 0; i < n; i++ {
		cfg := core.DefaultConfig()
		cfg.Name = "sweep"
		cfg.FTQEntries = 8 + 4*i
		cfg.FetchWidth = 4 + i%4
		specs = append(specs, ffwdSpec(t, cfg, "server_a", 20_000, 15_000))
	}
	return specs
}

// TestSpecKeyFFwd: the fast-forward flag is part of the result identity —
// same budgets and config, different key.
func TestSpecKeyFFwd(t *testing.T) {
	w := synth.ByName("server_a")
	a := WorkloadSpec(core.DefaultConfig(), w, 1000, 2000)
	b := a
	b.FFwd = true
	if a.Key() == b.Key() {
		t.Fatal("fast-forward spec hashed to the cycle-accurate key")
	}
}

// TestCheckpointKeySharing pins what the checkpoint key must and must not
// see: timing-only knobs share a key (that is the whole sweep win), while
// training-relevant knobs, the workload, and the warmup budget split it.
// The measure budget must NOT split it — a checkpoint ends where
// measurement begins.
func TestCheckpointKeySharing(t *testing.T) {
	base := ffwdSpec(t, core.DefaultConfig(), "server_a", 20_000, 15_000)

	timing := base
	timing.Config.FTQEntries *= 2
	timing.Config.FetchWidth++
	timing.Config.PerfectPrefetch = true
	if base.CheckpointKey() != timing.CheckpointKey() {
		t.Error("timing-only config change split the checkpoint key")
	}

	measure := base
	measure.Measure = 99_999
	if base.CheckpointKey() != measure.CheckpointKey() {
		t.Error("measure budget split the checkpoint key")
	}

	for name, mutate := range map[string]func(*Spec){
		"dir-kind":    func(s *Spec) { s.Config.Dir = core.DirGshare },
		"btb-entries": func(s *Spec) { s.Config.BTBEntries *= 2 },
		"hist-policy": func(s *Spec) { s.Config.HistPolicy = core.HistGHRNoFix },
		"l1i-bytes":   func(s *Spec) { s.Config.L1IBytes *= 2 },
		"warmup":      func(s *Spec) { s.Warmup += 1 },
		"workload": func(s *Spec) {
			w := synth.ByName("client_a")
			s.Workload, s.Class, s.Seed = w.Name, w.Class, w.Seed
		},
	} {
		sp := base
		mutate(&sp)
		if base.CheckpointKey() == sp.CheckpointKey() {
			t.Errorf("%s change did not split the checkpoint key", name)
		}
	}
}

// TestExecuteCheckpointSweep is the scheduling property the tentpole is
// for: a sweep of N configurations over one workload pays its warmup once
// (one checkpoint build) and restores N-1 times, with results identical
// to fast-forward runs that never saw a checkpoint.
func TestExecuteCheckpointSweep(t *testing.T) {
	const n = 6
	specs := timingSweepSpecs(t, n)
	key := specs[0].CheckpointKey()
	for i := range specs {
		if specs[i].CheckpointKey() != key {
			t.Fatalf("spec %d does not share the sweep checkpoint key", i)
		}
	}

	// Reference: same specs, checkpointing off.
	ref, err := Execute(context.Background(), timingSweepSpecs(t, n), Options{Parallel: 3})
	if err != nil {
		t.Fatal(err)
	}

	cache, err := NewCache(0, "")
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	status := &Status{}
	got, err := Execute(context.Background(), specs,
		Options{Parallel: 3, Cache: cache, Checkpoint: true, Reg: reg, Status: status})
	if err != nil {
		t.Fatal(err)
	}
	for i := range specs {
		if got[i].Run == nil || !reflect.DeepEqual(ref[i].Run, got[i].Run) {
			t.Fatalf("spec %d: checkpointed run differs from plain fast-forward run", i)
		}
	}
	misses := reg.Counter(MetricCheckpointMisses).Value()
	hits := reg.Counter(MetricCheckpointHits).Value()
	restores := reg.Counter(MetricCheckpointRestores).Value()
	if misses != 1 {
		t.Errorf("%s = %d, want 1 (single warmup build for the sweep)", MetricCheckpointMisses, misses)
	}
	if hits != n-1 || restores != n-1 {
		t.Errorf("hits/restores = %d/%d, want %d/%d", hits, restores, n-1, n-1)
	}
	if status.CheckpointHits.Load() != int64(hits) || status.CheckpointMisses.Load() != int64(misses) ||
		status.CheckpointRestores.Load() != int64(restores) {
		t.Error("Status checkpoint counters diverge from registry metrics")
	}
	snap := status.Snapshot()
	if snap.CheckpointHits != int64(hits) || snap.CheckpointRestores != int64(restores) {
		t.Errorf("snapshot checkpoint counters = %d/%d, want %d/%d",
			snap.CheckpointHits, snap.CheckpointRestores, hits, restores)
	}
}

// TestCheckpointDiskRoundTrip: a checkpoint persisted by one cache is
// served byte-identically by a fresh cache over the same directory.
func TestCheckpointDiskRoundTrip(t *testing.T) {
	dir := t.TempDir()
	a, err := NewCache(0, dir)
	if err != nil {
		t.Fatal(err)
	}
	data := []byte("post-warmup state bytes")
	a.PutCheckpoint("k1", data)

	b, err := NewCache(0, dir)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := b.GetCheckpoint("k1")
	if !ok || !bytes.Equal(got, data) {
		t.Fatalf("GetCheckpoint = (%q, %v), want original bytes", got, ok)
	}
	// Returned bytes must not alias the stored copy.
	got[0] ^= 0xff
	again, _ := b.GetCheckpoint("k1")
	if !bytes.Equal(again, data) {
		t.Fatal("checkpoint store aliased returned bytes")
	}
}

// TestCheckpointWrongEpoch: a well-formed checkpoint from another
// simulator epoch is a silent miss, not corruption.
func TestCheckpointWrongEpoch(t *testing.T) {
	dir := t.TempDir()
	c, err := NewCache(0, dir)
	if err != nil {
		t.Fatal(err)
	}
	c.PutCheckpoint("k", []byte("old-epoch state"))
	path := c.ckptPath("k")
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	mutated := bytes.Replace(b,
		[]byte(`"epoch":`), []byte(`"epoch":99990`), 1)
	if bytes.Equal(mutated, b) {
		t.Fatal("epoch field not found in envelope")
	}
	if err := os.WriteFile(path, mutated, 0o644); err != nil {
		t.Fatal(err)
	}
	fresh, err := NewCache(0, dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := fresh.GetCheckpoint("k"); ok {
		t.Fatal("wrong-epoch checkpoint was served")
	}
	if q := fresh.Quarantined(); q != 0 {
		t.Fatalf("wrong-epoch checkpoint quarantined (%d), want silent miss", q)
	}
}

// TestCheckpointCorruptionFallback is the satellite robustness property:
// damage the on-disk checkpoint in each faultkit mode, re-run, and the
// runner must quarantine the file to *.corrupt, fall back to a cold
// fast-forward warmup, and still produce the correct result.
func TestCheckpointCorruptionFallback(t *testing.T) {
	dir := t.TempDir()
	buildCache, err := NewCache(0, dir)
	if err != nil {
		t.Fatal(err)
	}
	seedSpec := timingSweepSpecs(t, 1)[0]
	if _, err := Execute(context.Background(), []Spec{seedSpec},
		Options{Cache: buildCache, Checkpoint: true}); err != nil {
		t.Fatal(err)
	}
	ckptFile := buildCache.ckptPath(seedSpec.CheckpointKey())
	pristine, err := os.ReadFile(ckptFile)
	if err != nil {
		t.Fatalf("checkpoint file not written: %v", err)
	}

	corruptors := []struct {
		name string
		hit  func() error
	}{
		{"flip-bit", func() error { return faultkit.FlipBit(ckptFile, 7) }},
		{"truncate", func() error { return faultkit.TruncateFrac(ckptFile, 0.5) }},
		{"append-garbage", func() error { return faultkit.AppendGarbage(ckptFile, 11, 64) }},
	}
	for run, cr := range corruptors {
		t.Run(cr.name, func(t *testing.T) {
			if err := os.WriteFile(ckptFile, pristine, 0o644); err != nil {
				t.Fatal(err)
			}
			if err := cr.hit(); err != nil {
				t.Fatal(err)
			}
			// Fresh cache over the same directory (cold memory); a distinct
			// measure budget guarantees a result-cache miss while keeping
			// the checkpoint key identical.
			cache, err := NewCache(0, dir)
			if err != nil {
				t.Fatal(err)
			}
			sp := seedSpec
			sp.Measure = seedSpec.Measure + uint64(run+1)*1000
			reg := obs.NewRegistry()
			got, err := Execute(context.Background(), []Spec{sp},
				Options{Cache: cache, Checkpoint: true, Reg: reg})
			if err != nil {
				t.Fatal(err)
			}
			if got[0].Run == nil {
				t.Fatal("corrupted checkpoint failed the run")
			}
			want, _, werr := core.SimulateCheckpointed(context.Background(), sp.Config, sp.NewOracle(),
				sp.Workload, sp.Warmup, sp.Measure, core.SimOptions{}, nil)
			if werr != nil {
				t.Fatal(werr)
			}
			want.Class = sp.Class
			if !reflect.DeepEqual(got[0].Run, want) {
				t.Fatal("cold-fallback result differs from a direct fast-forward run")
			}
			if q := cache.Quarantined(); q != 1 {
				t.Errorf("quarantined = %d, want 1", q)
			}
			if _, err := os.Stat(ckptFile + ".corrupt"); err != nil {
				t.Errorf("quarantine file missing: %v", err)
			}
			if n := reg.Counter(MetricCheckpointMisses).Value(); n != 1 {
				t.Errorf("%s = %d, want 1 (cold rebuild)", MetricCheckpointMisses, n)
			}
			// The rebuild must republish a valid checkpoint.
			if _, ok := cache.GetCheckpoint(sp.CheckpointKey()); !ok {
				t.Error("rebuilt checkpoint not stored")
			}
		})
	}
}

// TestCheckpointUndetectedCorruption: bytes that pass the envelope CRC but
// fail core decode (the CRC was computed over already-bad bytes) must
// trigger the in-core bad-snapshot fallback, not an error.
func TestCheckpointUndetectedCorruption(t *testing.T) {
	cache, err := NewCache(0, "")
	if err != nil {
		t.Fatal(err)
	}
	sp := timingSweepSpecs(t, 1)[0]
	// A validly-enveloped checkpoint whose payload is garbage.
	cache.PutCheckpoint(sp.CheckpointKey(), []byte("not a core snapshot"))
	reg := obs.NewRegistry()
	got, err := Execute(context.Background(), []Spec{sp},
		Options{Cache: cache, Checkpoint: true, Reg: reg})
	if err != nil {
		t.Fatal(err)
	}
	want, _, werr := core.SimulateCheckpointed(context.Background(), sp.Config, sp.NewOracle(),
		sp.Workload, sp.Warmup, sp.Measure, core.SimOptions{}, nil)
	if werr != nil {
		t.Fatal(werr)
	}
	want.Class = sp.Class
	if !reflect.DeepEqual(got[0].Run, want) {
		t.Fatal("bad-snapshot fallback produced a wrong result")
	}
	if n := reg.Counter(MetricCheckpointRestores).Value(); n != 0 {
		t.Errorf("%s = %d after failed restore, want 0", MetricCheckpointRestores, n)
	}
}

// TestCheckpointObservedRunsMatch: checkpointing must not perturb
// manifests — an observed checkpointed sweep produces the same counter
// documents as observed fast-forward runs without checkpoints. This is
// the in-process half of the warmup-check gate.
func TestCheckpointObservedRunsMatch(t *testing.T) {
	const n = 3
	ref, err := Execute(context.Background(), timingSweepSpecs(t, n),
		Options{Observe: true})
	if err != nil {
		t.Fatal(err)
	}
	cache, _ := NewCache(0, "")
	got, err := Execute(context.Background(), timingSweepSpecs(t, n),
		Options{Observe: true, Cache: cache, Checkpoint: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if ref[i].Manifest == nil || got[i].Manifest == nil {
			t.Fatalf("spec %d missing manifest", i)
		}
		if !reflect.DeepEqual(ref[i].Manifest.Counters, got[i].Manifest.Counters) {
			t.Fatalf("spec %d: checkpointed manifest counters differ", i)
		}
	}
}
