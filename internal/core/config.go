// Package core ties the whole machine together: the decoupled frontend
// (branch prediction pipeline → FTQ → instruction fetch pipeline with
// post-fetch correction) feeding a simple in-order-dispatch backend that
// matches the delivered instruction stream against the workload oracle,
// trains the predictors, and charges branch-resolution flushes. It is the
// paper's "comprehensive frontend design for FDP" (§IV) as a cycle-driven
// simulator.
package core

import (
	"fmt"

	"fdp/internal/cache"
)

// HistPolicy selects the global-history management scheme (§III-A,
// Table V).
type HistPolicy int

const (
	// HistTHR is taken-only branch target history (the paper's choice):
	// the GHR is updated only by taken-branch pc/target hashes.
	HistTHR HistPolicy = iota
	// HistGHRNoFix is direction history updated only by BTB-detected
	// branches, with no correction for undetected not-taken branches
	// (GHR0/GHR1).
	HistGHRNoFix
	// HistGHRFix is direction history with pre-decode fixup flushes for
	// BTB-miss not-taken branches (GHR2/GHR3).
	HistGHRFix
	// HistIdeal is the idealized direction history: perfect branch
	// detection with actual outcomes (the paper's "Ideal" reference).
	HistIdeal
)

// String returns the Table V style name.
func (p HistPolicy) String() string {
	switch p {
	case HistTHR:
		return "THR"
	case HistGHRNoFix:
		return "GHR-nofix"
	case HistGHRFix:
		return "GHR-fix"
	case HistIdeal:
		return "Ideal"
	}
	return fmt.Sprintf("HistPolicy(%d)", int(p))
}

// BTBAlloc selects which resolved branches allocate BTB entries.
type BTBAlloc int

const (
	// AllocTakenOnly installs only taken branches (pairs with THR).
	AllocTakenOnly BTBAlloc = iota
	// AllocAll installs every branch, including not-taken conditionals
	// (pairs with direction-history schemes).
	AllocAll
)

// String names the policy.
func (a BTBAlloc) String() string {
	if a == AllocTakenOnly {
		return "taken-only"
	}
	return "all-branches"
}

// DirKind selects the direction predictor (Fig. 12).
type DirKind string

// Direction predictor kinds.
const (
	DirTAGE9      DirKind = "tage-9kb"
	DirTAGE18     DirKind = "tage-18kb"
	DirTAGE36     DirKind = "tage-36kb"
	DirGshare     DirKind = "gshare-8kb"
	DirPerceptron DirKind = "perceptron-8kb"
	DirTAGESCL24  DirKind = "tage-sc-l-24kb"
	DirTAGESCL64  DirKind = "tage-sc-l-64kb"
	DirPerfect    DirKind = "perfect"
)

// Config holds every knob of the machine. DefaultConfig returns the
// paper's Table IV baseline; experiments override individual fields.
type Config struct {
	// Name labels the configuration in reports.
	Name string

	// --- Frontend geometry ---

	// FTQEntries sizes the fetch target queue; 24 is the paper's FDP
	// design, 2 disables FDP run-ahead (§V).
	FTQEntries int
	// PredictWidth is the branch-prediction bandwidth in instructions
	// per cycle (12 = 2x fetch width, §V).
	PredictWidth int
	// MaxTakenPerCycle bounds taken predictions per cycle (1; B18m uses 2).
	MaxTakenPerCycle int
	// FetchWidth is the instruction fetch bandwidth per cycle (6).
	FetchWidth int
	// DecodeWidth is the decode/dispatch width (6); also the starvation
	// threshold of §VI-D.
	DecodeWidth int
	// DecodeQueueCap bounds the decode queue.
	DecodeQueueCap int
	// BTBLatency is the prediction-pipeline restart latency after any
	// flush or re-steer (pipelined in steady state, §VI-F3).
	BTBLatency int
	// TagProbesPerCycle is how many FTQ entries may probe the I-TLB and
	// I-cache tags per cycle (the paper's "two oldest ready entries").
	TagProbesPerCycle int

	// --- Predictors ---

	// Dir selects the direction predictor.
	Dir DirKind
	// BTBEntries/BTBWays size the BTB (8K x 4-way baseline).
	BTBEntries int
	BTBWays    int
	// PerfectBTB replaces the BTB with the image oracle (§VI-A).
	PerfectBTB bool
	// L1BTBEntries > 0 enables the two-level BTB extension (§II-A): a
	// small zero-bubble L1 BTB in front of the main BTB, whose hits that
	// fall to the second level cost L2BTBPenalty extra cycles on taken
	// redirects.
	L1BTBEntries int
	L1BTBWays    int
	L2BTBPenalty int
	// BasicBlockBTB switches to the academic basic-block-based BTB
	// organization (§III-A): entries keyed by block start, one branch per
	// entry including not-taken conditionals. Uses BTBEntries/BTBWays.
	BasicBlockBTB bool
	// PerfectIndirect replaces ITTAGE and RAS targets with the workload
	// oracle ("Perfect All" in Fig. 12, together with DirPerfect).
	PerfectIndirect bool
	// HistPolicy and BTBAllocPolicy pick the Table V row.
	HistPolicy     HistPolicy
	BTBAllocPolicy BTBAlloc
	// RASDepth sizes the return address stack.
	RASDepth int

	// --- FDP features ---

	// PFC enables post-fetch correction (§III-B).
	PFC bool

	// --- Memory hierarchy ---

	// L1IBytes/L1IWays size the instruction cache (32KB 8-way).
	L1IBytes int
	L1IWays  int
	// L2Bytes/L2Ways and LLCBytes/LLCWays size the lower levels.
	L2Bytes  int
	L2Ways   int
	LLCBytes int
	LLCWays  int
	// MSHRs bounds in-flight fills.
	MSHRs int
	// Lat holds the fill latencies.
	Lat cache.Latencies
	// ITLBEntries/ITLBWays size the I-TLB; ITLBMissPenalty is charged on
	// a miss before the tag probe can proceed.
	ITLBEntries     int
	ITLBWays        int
	ITLBMissPenalty int

	// --- Prefetching ---

	// Prefetcher names the dedicated prefetcher ("", "nl1", "fnl+mma",
	// "djolt", "eip-128kb", "eip-27kb", "sn4l+dis", "sn4l+dis+btb").
	Prefetcher string
	// PerfectPrefetch makes every demand miss fill instantly while still
	// issuing the memory request (§V "Perfect").
	PerfectPrefetch bool
	// PrefetchDegree bounds prefetch issues per cycle.
	PrefetchDegree int
	// PrefetchQueueCap bounds buffered prefetch candidates.
	PrefetchQueueCap int
	// BTBPrefetch pre-decodes filled lines and installs their PC-relative
	// branches into the BTB (§VI-E).
	BTBPrefetch bool

	// --- Backend ---

	// ResolveLatency is the dispatch-to-flush delay of a mispredicted
	// branch (execution-stage resolution).
	ResolveLatency int
	// StallProb/StallCycles crudely model backend (data-side) stalls: a
	// dispatched instruction blocks dispatch for StallCycles with
	// probability StallProb. Deterministic per run.
	StallProb   float64
	StallCycles int
	// DataModel replaces the stochastic stalls with the cache-driven
	// data-side model: L1DBytes/L1DWays size the data cache and
	// DataFootprint is the synthetic data working set in bytes.
	DataModel     bool
	L1DBytes      int
	L1DWays       int
	DataFootprint int
}

// DefaultConfig returns the Table IV baseline configuration with FDP
// enabled (24-entry FTQ, PFC on, THR history, 8K-entry BTB, TAGE-18KB).
func DefaultConfig() Config {
	return Config{
		Name:              "fdp",
		FTQEntries:        24,
		PredictWidth:      12,
		MaxTakenPerCycle:  1,
		FetchWidth:        6,
		DecodeWidth:       6,
		DecodeQueueCap:    64,
		BTBLatency:        2,
		TagProbesPerCycle: 2,

		Dir:            DirTAGE18,
		BTBEntries:     8192,
		BTBWays:        4,
		HistPolicy:     HistTHR,
		BTBAllocPolicy: AllocTakenOnly,
		RASDepth:       32,

		PFC: true,

		L1IBytes:        32 * 1024,
		L1IWays:         8,
		L2Bytes:         512 * 1024,
		L2Ways:          8,
		LLCBytes:        2 * 1024 * 1024,
		LLCWays:         16,
		MSHRs:           16,
		Lat:             cache.DefaultLatencies(),
		ITLBEntries:     64,
		ITLBWays:        4,
		ITLBMissPenalty: 8,

		PrefetchDegree:   4,
		PrefetchQueueCap: 32,

		ResolveLatency: 14,
		StallProb:      0.03,
		StallCycles:    8,

		L1DBytes:      48 * 1024,
		L1DWays:       12,
		DataFootprint: 8 * 1024 * 1024,
	}
}

// BaselineConfig returns the paper's baseline: no FDP run-ahead (2-entry
// FTQ), no PFC, no prefetching. Everything else matches DefaultConfig.
func BaselineConfig() Config {
	c := DefaultConfig()
	c.Name = "baseline"
	c.FTQEntries = 2
	c.PFC = false
	return c
}

// Validate reports the first invalid field.
func (c *Config) Validate() error {
	switch {
	case c.FTQEntries < 1:
		return fmt.Errorf("core: FTQEntries = %d", c.FTQEntries)
	case c.PredictWidth < 1 || c.FetchWidth < 1 || c.DecodeWidth < 1:
		return fmt.Errorf("core: non-positive pipeline width")
	case c.MaxTakenPerCycle < 1:
		return fmt.Errorf("core: MaxTakenPerCycle = %d", c.MaxTakenPerCycle)
	case c.DecodeQueueCap < c.FetchWidth:
		return fmt.Errorf("core: DecodeQueueCap %d < FetchWidth %d", c.DecodeQueueCap, c.FetchWidth)
	case c.BTBLatency < 1:
		return fmt.Errorf("core: BTBLatency = %d", c.BTBLatency)
	case !c.PerfectBTB && (c.BTBEntries < 1 || c.BTBWays < 1):
		return fmt.Errorf("core: bad BTB geometry")
	case c.L1BTBEntries > 0 && (c.L1BTBWays < 1 || c.L2BTBPenalty < 0):
		return fmt.Errorf("core: bad L1 BTB geometry")
	case c.BasicBlockBTB && (c.PerfectBTB || c.L1BTBEntries > 0):
		return fmt.Errorf("core: BasicBlockBTB excludes PerfectBTB and the two-level extension")
	case c.RASDepth < 1:
		return fmt.Errorf("core: RASDepth = %d", c.RASDepth)
	case c.ResolveLatency < 1:
		return fmt.Errorf("core: ResolveLatency = %d", c.ResolveLatency)
	case c.StallProb < 0 || c.StallProb >= 1:
		return fmt.Errorf("core: StallProb = %v", c.StallProb)
	case c.TagProbesPerCycle < 1:
		return fmt.Errorf("core: TagProbesPerCycle = %d", c.TagProbesPerCycle)
	case c.PrefetchDegree < 0 || c.PrefetchQueueCap < 0:
		return fmt.Errorf("core: negative prefetch bounds")
	case c.DataModel && (c.L1DBytes <= 0 || c.L1DWays <= 0 || c.DataFootprint < cache.LineBytes):
		return fmt.Errorf("core: bad data-side geometry")
	}
	return nil
}
