// Package indirect implements the ITTAGE indirect-branch target predictor
// (Seznec, CBP-3): a base last-target table plus tagged tables indexed by
// geometrically longer global-history folds, each entry holding a full
// target and a confidence counter.
package indirect

import "fdp/internal/bpred"

// Table sizes one tagged ITTAGE component.
type Table struct {
	HistLen int
	IdxBits int
	TagBits int
}

// Config sizes an ITTAGE predictor.
type Config struct {
	Name     string
	Tables   []Table
	BaseBits int // log2(base last-target table entries)
}

// DefaultConfig returns the Table IV indirect predictor: a 512-entry base
// table and four tagged tables with 8..260-bit histories (the paper uses a
// 260-bit history length for ITTAGE as well).
func DefaultConfig() Config {
	return Config{
		Name: "ittage",
		Tables: []Table{
			{HistLen: 8, IdxBits: 9, TagBits: 9},
			{HistLen: 30, IdxBits: 9, TagBits: 10},
			{HistLen: 90, IdxBits: 9, TagBits: 11},
			{HistLen: 260, IdxBits: 9, TagBits: 12},
		},
		BaseBits: 9,
	}
}

type entry struct {
	tag    uint16
	target uint64
	conf   int8  // 0..3; predict with the entry when > 0
	u      uint8 // 0..3 usefulness
}

// ITTAGE predicts targets of register-indirect branches.
type ITTAGE struct {
	cfg      Config
	base     []uint64 // last-target table
	tables   [][]entry
	foldBase int
	tick     int
}

// New builds the predictor.
func New(cfg Config) *ITTAGE {
	it := &ITTAGE{cfg: cfg, base: make([]uint64, 1<<cfg.BaseBits)}
	for _, tc := range cfg.Tables {
		it.tables = append(it.tables, make([]entry, 1<<tc.IdxBits))
	}
	return it
}

// Name identifies the predictor.
func (it *ITTAGE) Name() string { return it.cfg.Name }

// Specs returns the folded-history views the predictor registers in the
// shared History (index + tag per table).
func (it *ITTAGE) Specs() []bpred.FoldSpec {
	var specs []bpred.FoldSpec
	for _, tc := range it.cfg.Tables {
		specs = append(specs,
			bpred.FoldSpec{Length: tc.HistLen, Width: tc.IdxBits},
			bpred.FoldSpec{Length: tc.HistLen, Width: tc.TagBits},
		)
	}
	return specs
}

// Bind records the predictor's folded-register base within the History.
func (it *ITTAGE) Bind(base int) { it.foldBase = base }

// StorageBits returns the predictor's storage budget in bits (48-bit
// targets, as the paper's 48-bit addresses).
func (it *ITTAGE) StorageBits() int {
	bits := len(it.base) * 48
	for i, tc := range it.cfg.Tables {
		bits += len(it.tables[i]) * (tc.TagBits + 48 + 2 + 2)
	}
	return bits
}

func (it *ITTAGE) index(i int, pc uint64, h *bpred.History) uint32 {
	tc := it.cfg.Tables[i]
	f := h.Folded(it.foldBase + 2*i)
	return (uint32(pc>>2) ^ uint32(pc>>(2+uint(tc.IdxBits))) ^ f ^ uint32(i)*0x2545) & (1<<uint(tc.IdxBits) - 1)
}

func (it *ITTAGE) tag(i int, pc uint64, h *bpred.History) uint16 {
	tc := it.cfg.Tables[i]
	f := h.Folded(it.foldBase + 2*i + 1)
	return uint16((uint32(pc>>2) ^ f ^ f<<1) & (1<<uint(tc.TagBits) - 1))
}

func (it *ITTAGE) baseIdx(pc uint64) uint32 {
	return uint32(pc>>2) & (1<<uint(it.cfg.BaseBits) - 1)
}

// Predict returns the predicted target for the indirect branch at pc; ok
// is false when the predictor has no information at all (cold base entry).
func (it *ITTAGE) Predict(pc uint64, h *bpred.History) (target uint64, ok bool) {
	for i := len(it.tables) - 1; i >= 0; i-- {
		e := &it.tables[i][it.index(i, pc, h)]
		if e.tag == it.tag(i, pc, h) && e.conf > 0 {
			return e.target, true
		}
	}
	t := it.base[it.baseIdx(pc)]
	return t, t != 0
}

// Update trains the predictor with the actual target.
func (it *ITTAGE) Update(pc uint64, h *bpred.History, actual uint64) {
	predicted, _ := it.Predict(pc, h)
	provider := -1
	var provIdx uint32
	for i := len(it.tables) - 1; i >= 0; i-- {
		idx := it.index(i, pc, h)
		if it.tables[i][idx].tag == it.tag(i, pc, h) && it.tables[i][idx].conf > 0 {
			provider, provIdx = i, idx
			break
		}
	}
	if provider >= 0 {
		e := &it.tables[provider][provIdx]
		if e.target == actual {
			if e.conf < 3 {
				e.conf++
			}
			if e.u < 3 {
				e.u++
			}
		} else {
			e.conf--
			if e.conf <= 0 {
				e.target = actual
				e.conf = 1
			}
			if e.u > 0 {
				e.u--
			}
		}
	}
	it.base[it.baseIdx(pc)] = actual

	// Allocate a longer-history entry when the overall prediction was
	// wrong.
	if predicted != actual {
		start := provider + 1
		allocated := false
		for i := start; i < len(it.tables); i++ {
			idx := it.index(i, pc, h)
			if e := &it.tables[i][idx]; e.u == 0 {
				*e = entry{tag: it.tag(i, pc, h), target: actual, conf: 1}
				allocated = true
				break
			}
		}
		if !allocated {
			for i := start; i < len(it.tables); i++ {
				idx := it.index(i, pc, h)
				if e := &it.tables[i][idx]; e.u > 0 {
					e.u--
				}
			}
		}
	}

	it.tick++
	if it.tick >= 1<<18 {
		it.tick = 0
		for i := range it.tables {
			for j := range it.tables[i] {
				it.tables[i][j].u >>= 1
			}
		}
	}
}
