package runner

import (
	"container/list"
	"context"
	"encoding/json"
	"hash/crc32"
	"os"
	"sync"
)

// Checkpoint store: the runner side of fast-forward warmup. A checkpoint
// is the serialized post-warmup core state (core.Snapshot bytes) keyed by
// Spec.CheckpointKey() — workload identity, warmup budget and the
// training-relevant configuration subset. It lives next to the result
// cache (same directory, same quarantine discipline) but in its own
// <key>.ckpt files with its own envelope, because its lifecycle differs:
// a result answers one spec, a checkpoint seeds every spec of a timing
// sweep over one workload.

// ckptSchema versions the on-disk checkpoint envelope. The Epoch field
// pins simulator semantics exactly like result entries do: training
// semantics changes regenerate goldens, bump Epoch, and orphan stale
// checkpoints into silent misses.
const ckptSchema = 1

// ckptMemCapacity bounds in-memory checkpoints. They are megabytes each
// (full predictor tables plus cache tag state), so the resident set is
// kept small; a sweep touches one or a handful of keys at a time anyway.
const ckptMemCapacity = 8

// ckptDiskEntry is the on-disk JSON envelope of one checkpoint. Data is
// the raw core snapshot (base64 in JSON) covered by CRC, so bit flips are
// detected here — before the snapshot decoder ever sees the bytes — and
// quarantined exactly like corrupt result entries.
type ckptDiskEntry struct {
	Schema int    `json:"schema"`
	Epoch  int    `json:"epoch"`
	Key    string `json:"key"`
	CRC    uint32 `json:"crc"`
	Data   []byte `json:"data"`
}

// ckptMemEntry is one in-memory checkpoint.
type ckptMemEntry struct {
	key  string
	data []byte
}

// GetCheckpoint returns the stored post-warmup snapshot for key. A memory
// miss falls through to the disk store when one is configured. Wrong
// schema/epoch entries are silent misses; unparsable, mislabeled or
// CRC-failing files are quarantined (renamed to *.corrupt) and treated as
// misses — like Get, this never errors.
func (c *Cache) GetCheckpoint(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.ckptItems[key]; ok {
		c.ckptLL.MoveToFront(el)
		return append([]byte(nil), el.Value.(*ckptMemEntry).data...), true
	}
	if data := c.loadCkptDisk(key); data != nil {
		c.installCkpt(&ckptMemEntry{key: key, data: data})
		return append([]byte(nil), data...), true
	}
	return nil, false
}

// PutCheckpoint stores the snapshot under key, in memory and (when a
// directory is configured) on disk. Disk write failures degrade the
// store, never the run.
func (c *Cache) PutCheckpoint(key string, data []byte) {
	if len(data) == 0 {
		return
	}
	ent := &ckptMemEntry{key: key, data: append([]byte(nil), data...)}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.installCkpt(ent)
	if c.dir != "" {
		if err := c.writeCkptDisk(key, ent.data); err != nil {
			c.diskErrs++
		}
	}
}

// installCkpt adds or replaces the in-memory checkpoint (caller holds the
// lock), evicting LRU entries beyond ckptMemCapacity.
func (c *Cache) installCkpt(ent *ckptMemEntry) {
	if c.ckptItems == nil {
		c.ckptItems = make(map[string]*list.Element)
		c.ckptLL = list.New()
	}
	if el, ok := c.ckptItems[ent.key]; ok {
		el.Value = ent
		c.ckptLL.MoveToFront(el)
		return
	}
	c.ckptItems[ent.key] = c.ckptLL.PushFront(ent)
	for c.ckptLL.Len() > ckptMemCapacity {
		oldest := c.ckptLL.Back()
		c.ckptLL.Remove(oldest)
		delete(c.ckptItems, oldest.Value.(*ckptMemEntry).key)
	}
}

// ckptPath returns the disk file for a checkpoint key.
func (c *Cache) ckptPath(key string) string {
	return c.path(key) + ".ckpt"
}

// loadCkptDisk reads and validates the checkpoint for key, returning nil
// on any problem (caller holds the lock). Failure modes mirror loadDisk:
// missing file or foreign schema/epoch = miss; unparsable JSON, key
// mismatch or CRC mismatch = quarantine then miss.
func (c *Cache) loadCkptDisk(key string) []byte {
	if c.dir == "" {
		return nil
	}
	b, err := os.ReadFile(c.ckptPath(key))
	if err != nil {
		return nil
	}
	var d ckptDiskEntry
	if err := json.Unmarshal(b, &d); err != nil {
		c.quarantineFile(c.ckptPath(key))
		return nil
	}
	if d.Schema != ckptSchema || d.Epoch != Epoch {
		return nil
	}
	if d.Key != key || crc32.ChecksumIEEE(d.Data) != d.CRC || len(d.Data) == 0 {
		c.quarantineFile(c.ckptPath(key))
		return nil
	}
	return d.Data
}

// writeCkptDisk persists the checkpoint atomically, same temp+fsync+rename
// discipline as writeDisk (caller holds the lock).
func (c *Cache) writeCkptDisk(key string, data []byte) error {
	b, err := json.Marshal(ckptDiskEntry{
		Schema: ckptSchema,
		Epoch:  Epoch,
		Key:    key,
		CRC:    crc32.ChecksumIEEE(data),
		Data:   data,
	})
	if err != nil {
		return err
	}
	tmp, err := os.CreateTemp(c.dir, "."+key+".ckpt.tmp*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(append(b, '\n')); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return os.Rename(tmp.Name(), c.ckptPath(key))
}

// ckptGroup deduplicates concurrent checkpoint builds within one Execute
// call: when N jobs of a sweep share one CheckpointKey and none is cached
// yet, exactly one job fast-forwards (the builder) while the others wait
// and restore from its snapshot. A failed builder wakes the waiters to
// retry — the next one through becomes the builder — so a build failure
// never strands a sweep.
type ckptGroup struct {
	mu    sync.Mutex
	calls map[string]*ckptCall
}

// ckptCall is one in-flight build. done is closed by finish/fail; data is
// valid only after done is closed and is nil when the builder failed.
type ckptCall struct {
	done chan struct{}
	data []byte
}

func newCkptGroup() *ckptGroup {
	return &ckptGroup{calls: make(map[string]*ckptCall)}
}

// acquire resolves the checkpoint for key: from the cache (restore
// returned, build false), by electing the caller as builder (restore nil,
// build true — the caller MUST later call finish or fail exactly once),
// or by waiting on the in-flight builder. Waiting honours ctx.
func (g *ckptGroup) acquire(ctx context.Context, cache *Cache, key string) (restore []byte, build bool, err error) {
	for {
		if data, ok := cache.GetCheckpoint(key); ok {
			return data, false, nil
		}
		g.mu.Lock()
		call, inflight := g.calls[key]
		if !inflight {
			g.calls[key] = &ckptCall{done: make(chan struct{})}
			g.mu.Unlock()
			return nil, true, nil
		}
		g.mu.Unlock()
		select {
		case <-call.done:
			if call.data != nil {
				return call.data, false, nil
			}
			// Builder failed; loop — either the cache has it by now (a
			// later builder finished) or this caller becomes the builder.
		case <-ctx.Done():
			return nil, false, ctx.Err()
		}
	}
}

// finish publishes the builder's snapshot to its waiters. Call after
// PutCheckpoint so late arrivals that missed the group hit the cache.
func (g *ckptGroup) finish(key string, data []byte) {
	g.mu.Lock()
	call := g.calls[key]
	delete(g.calls, key)
	g.mu.Unlock()
	if call != nil {
		call.data = data
		close(call.done)
	}
}

// fail wakes the waiters empty-handed; each retries acquire.
func (g *ckptGroup) fail(key string) {
	g.mu.Lock()
	call := g.calls[key]
	delete(g.calls, key)
	g.mu.Unlock()
	if call != nil {
		close(call.done)
	}
}
