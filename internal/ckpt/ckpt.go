// Package ckpt is the deterministic binary codec used to serialize
// post-warmup microarchitectural state (predictor tables, BTB contents,
// cache tags, history registers) into checkpoints. The encoding is
// hand-rolled rather than gob/json because the state lives in unexported
// fields across many packages and must round-trip *bit-exactly*: the
// correctness contract of fast-forward checkpointing is that a restored
// machine re-encodes to the same bytes it was decoded from
// (FuzzCheckpoint in internal/core enforces this differentially).
//
// The format is a flat little-endian stream of fixed-width words with
// length-prefixed slices and explicit section tags. There is no
// reflection and no varint ambiguity, so equal states always produce
// equal bytes — which in turn lets the warmup-check gate compare runs
// byte-for-byte. Integrity (CRC, epoch, quarantine) is layered on top by
// the runner's checkpoint store, not here.
package ckpt

import (
	"encoding/binary"
	"fmt"
)

// Writer appends values to a growing byte buffer.
type Writer struct {
	buf []byte
}

// NewWriter returns a writer with some preallocated capacity.
func NewWriter() *Writer { return &Writer{buf: make([]byte, 0, 1<<16)} }

// Bytes returns the encoded stream.
func (w *Writer) Bytes() []byte { return w.buf }

// Tag writes a section marker so decoding failures localize to a
// component instead of smearing across the stream.
func (w *Writer) Tag(t uint32) { w.U32(t) }

// U8 appends one byte.
func (w *Writer) U8(v uint8) { w.buf = append(w.buf, v) }

// Bool appends a bool as one byte.
func (w *Writer) Bool(v bool) {
	if v {
		w.U8(1)
	} else {
		w.U8(0)
	}
}

// I8 appends a signed byte.
func (w *Writer) I8(v int8) { w.U8(uint8(v)) }

// U16 appends a little-endian uint16.
func (w *Writer) U16(v uint16) { w.buf = binary.LittleEndian.AppendUint16(w.buf, v) }

// U32 appends a little-endian uint32.
func (w *Writer) U32(v uint32) { w.buf = binary.LittleEndian.AppendUint32(w.buf, v) }

// I32 appends a little-endian int32.
func (w *Writer) I32(v int32) { w.U32(uint32(v)) }

// U64 appends a little-endian uint64.
func (w *Writer) U64(v uint64) { w.buf = binary.LittleEndian.AppendUint64(w.buf, v) }

// Int appends an int as a 64-bit word.
func (w *Writer) Int(v int) { w.U64(uint64(v)) }

// U8s appends a length-prefixed byte slice.
func (w *Writer) U8s(s []uint8) {
	w.U32(uint32(len(s)))
	w.buf = append(w.buf, s...)
}

// I8s appends a length-prefixed int8 slice.
func (w *Writer) I8s(s []int8) {
	w.U32(uint32(len(s)))
	for _, v := range s {
		w.buf = append(w.buf, uint8(v))
	}
}

// U16s appends a length-prefixed uint16 slice.
func (w *Writer) U16s(s []uint16) {
	w.U32(uint32(len(s)))
	for _, v := range s {
		w.buf = binary.LittleEndian.AppendUint16(w.buf, v)
	}
}

// U32s appends a length-prefixed uint32 slice.
func (w *Writer) U32s(s []uint32) {
	w.U32(uint32(len(s)))
	for _, v := range s {
		w.buf = binary.LittleEndian.AppendUint32(w.buf, v)
	}
}

// U64s appends a length-prefixed uint64 slice.
func (w *Writer) U64s(s []uint64) {
	w.U32(uint32(len(s)))
	for _, v := range s {
		w.buf = binary.LittleEndian.AppendUint64(w.buf, v)
	}
}

// Reader consumes a stream produced by Writer. Errors are sticky: after
// the first failure every subsequent read returns zero values, and Err
// reports the first failure with its stream offset. Slice readers decode
// into caller-provided storage and fail on length mismatch, which is how
// geometry disagreements between a checkpoint and the restoring machine
// are detected.
type Reader struct {
	buf []byte
	off int
	err error
}

// NewReader wraps an encoded stream.
func NewReader(b []byte) *Reader { return &Reader{buf: b} }

// Err returns the first decode error, or nil.
func (r *Reader) Err() error { return r.err }

// Failf records a caller-detected decode error (e.g. a structural count
// mismatch) unless an earlier error is already sticky.
func (r *Reader) Failf(format string, args ...any) { r.fail(format, args...) }

func (r *Reader) fail(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf("ckpt: offset %d: %s", r.off, fmt.Sprintf(format, args...))
	}
}

func (r *Reader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if r.off+n > len(r.buf) {
		r.fail("truncated: need %d bytes, have %d", n, len(r.buf)-r.off)
		return nil
	}
	b := r.buf[r.off : r.off+n]
	r.off += n
	return b
}

// Tag checks the next section marker against want.
func (r *Reader) Tag(want uint32) {
	got := r.U32()
	if r.err == nil && got != want {
		r.fail("section tag mismatch: got %#x, want %#x", got, want)
	}
}

// U8 reads one byte.
func (r *Reader) U8() uint8 {
	b := r.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

// Bool reads a bool; any value other than 0 or 1 is an error.
func (r *Reader) Bool() bool {
	v := r.U8()
	if r.err == nil && v > 1 {
		r.fail("bad bool byte %d", v)
	}
	return v == 1
}

// I8 reads a signed byte.
func (r *Reader) I8() int8 { return int8(r.U8()) }

// U16 reads a little-endian uint16.
func (r *Reader) U16() uint16 {
	b := r.take(2)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint16(b)
}

// U32 reads a little-endian uint32.
func (r *Reader) U32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

// I32 reads a little-endian int32.
func (r *Reader) I32() int32 { return int32(r.U32()) }

// PeekU32 returns the next uint32 without consuming it — used by decoders
// whose target storage is sized by the stream (growable tables).
func (r *Reader) PeekU32() uint32 {
	if r.err != nil {
		return 0
	}
	if r.off+4 > len(r.buf) {
		r.fail("truncated: need 4 bytes, have %d", len(r.buf)-r.off)
		return 0
	}
	return binary.LittleEndian.Uint32(r.buf[r.off:])
}

// U64 reads a little-endian uint64.
func (r *Reader) U64() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

// Int reads an int stored as a 64-bit word.
func (r *Reader) Int() int { return int(r.U64()) }

func (r *Reader) sliceLen(want int) bool {
	n := r.U32()
	if r.err != nil {
		return false
	}
	if int(n) != want {
		r.fail("slice length mismatch: stream has %d, machine has %d", n, want)
		return false
	}
	return true
}

// U8s decodes a length-prefixed byte slice into dst; the recorded length
// must equal len(dst).
func (r *Reader) U8s(dst []uint8) {
	if !r.sliceLen(len(dst)) {
		return
	}
	b := r.take(len(dst))
	if b != nil {
		copy(dst, b)
	}
}

// I8s decodes into an int8 slice of exactly the recorded length.
func (r *Reader) I8s(dst []int8) {
	if !r.sliceLen(len(dst)) {
		return
	}
	b := r.take(len(dst))
	if b == nil {
		return
	}
	for i := range dst {
		dst[i] = int8(b[i])
	}
}

// U16s decodes into a uint16 slice of exactly the recorded length.
func (r *Reader) U16s(dst []uint16) {
	if !r.sliceLen(len(dst)) {
		return
	}
	b := r.take(2 * len(dst))
	if b == nil {
		return
	}
	for i := range dst {
		dst[i] = binary.LittleEndian.Uint16(b[2*i:])
	}
}

// U32s decodes into a uint32 slice of exactly the recorded length.
func (r *Reader) U32s(dst []uint32) {
	if !r.sliceLen(len(dst)) {
		return
	}
	b := r.take(4 * len(dst))
	if b == nil {
		return
	}
	for i := range dst {
		dst[i] = binary.LittleEndian.Uint32(b[4*i:])
	}
}

// U64s decodes into a uint64 slice of exactly the recorded length.
func (r *Reader) U64s(dst []uint64) {
	if !r.sliceLen(len(dst)) {
		return
	}
	b := r.take(8 * len(dst))
	if b == nil {
		return
	}
	for i := range dst {
		dst[i] = binary.LittleEndian.Uint64(b[8*i:])
	}
}

// Done verifies the whole stream was consumed without error.
func (r *Reader) Done() error {
	if r.err != nil {
		return r.err
	}
	if r.off != len(r.buf) {
		return fmt.Errorf("ckpt: %d trailing bytes after decode", len(r.buf)-r.off)
	}
	return nil
}
