package fdp

import (
	"context"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"fdp/internal/obs"
	"fdp/internal/runner"
	"fdp/internal/synth"
	"fdp/internal/wspec"
)

// TestExampleSpecsCompile: every shipped example spec parses, validates
// and compiles (the in-test twin of `make spec-check`), and its content
// hash is reflected on the compiled workload.
func TestExampleSpecsCompile(t *testing.T) {
	dir := filepath.Join("examples", "workloads")
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for _, e := range entries {
		if filepath.Ext(e.Name()) != ".yaml" {
			continue
		}
		n++
		path := filepath.Join(dir, e.Name())
		sp, err := wspec.Load(path)
		if err != nil {
			t.Errorf("%s: %v", path, err)
			continue
		}
		w, err := synth.FromSpec(sp)
		if err != nil {
			t.Errorf("%s: %v", path, err)
			continue
		}
		if w.SpecHash != sp.Hash() {
			t.Errorf("%s: workload SpecHash %q != spec hash %q", path, w.SpecHash, sp.Hash())
		}
	}
	if n < 3 {
		t.Fatalf("only %d example specs found in %s, want >= 3", n, dir)
	}
}

// churnSpec is a small mixed+phased scenario sized for test budgets: a
// 3:1 server/client blend redeployed (reseed) at instruction 60000, so
// a 100K-instruction warmup crosses the phase boundary.
const churnSpec = `
version: 1
name: churn_it
class: server
seed: 77
switch_every: 5000
mix:
  - preset: server
    weight: 3.0
  - preset: client
    weight: 1.0
phases:
  - at: 60000
    reseed: 1
`

func writeSpec(t *testing.T, text string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "spec.yaml")
	if err := os.WriteFile(path, []byte(text), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestSpecWorkloadCachedByHash: a spec-defined workload runs through
// the runner and is served from the result cache when the same spec is
// re-resolved from disk — the cache identity is the content hash, not
// the file path or the in-memory Workload pointer.
func TestSpecWorkloadCachedByHash(t *testing.T) {
	cache, err := runner.NewCache(0, "")
	if err != nil {
		t.Fatal(err)
	}
	run := func(path string) *runner.Result {
		w, err := synth.LoadSpecFile(path)
		if err != nil {
			t.Fatal(err)
		}
		reg := obs.NewRegistry()
		res, err := runner.Execute(context.Background(),
			[]runner.Spec{runner.WorkloadSpec(DefaultConfig(), w, 20_000, 80_000)},
			runner.Options{Cache: cache, Reg: reg})
		if err != nil {
			t.Fatal(err)
		}
		t.Logf("cache hits=%d misses=%d",
			reg.Counter(runner.MetricCacheHits).Value(),
			reg.Counter(runner.MetricCacheMisses).Value())
		return &res[0]
	}

	first := run(writeSpec(t, churnSpec))
	// Same spec text at a different path: identical content hash, so the
	// runner must not simulate again.
	w2, err := synth.LoadSpecFile(writeSpec(t, churnSpec))
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	res, err := runner.Execute(context.Background(),
		[]runner.Spec{runner.WorkloadSpec(DefaultConfig(), w2, 20_000, 80_000)},
		runner.Options{Cache: cache, Reg: reg})
	if err != nil {
		t.Fatal(err)
	}
	if hits := reg.Counter(runner.MetricCacheHits).Value(); hits != 1 {
		t.Errorf("second run cache hits = %d, want 1 (keyed by spec content hash)", hits)
	}
	if !reflect.DeepEqual(first.Run, res[0].Run) {
		t.Error("cached run differs from the original simulation")
	}

	// Formatting-only edits keep the hash; a semantic change (different
	// seed, single component) must produce a different hash and key.
	w3, err := synth.LoadSpecFile(writeSpec(t, churnSpec+"    # trailing comment\n"))
	if err != nil {
		t.Fatal(err)
	}
	if w3.SpecHash != w2.SpecHash {
		t.Error("formatting-only change altered the spec hash")
	}
	other := writeSpec(t, "version: 1\nname: churn_it\nclass: server\nseed: 78\nmix:\n  - preset: server\n")
	w4, err := synth.LoadSpecFile(other)
	if err != nil {
		t.Fatal(err)
	}
	if w4.SpecHash == w2.SpecHash {
		t.Error("semantically different specs share a hash")
	}
	sp2 := runner.WorkloadSpec(DefaultConfig(), w2, 20_000, 80_000)
	sp4 := runner.WorkloadSpec(DefaultConfig(), w4, 20_000, 80_000)
	if sp2.Key() == sp4.Key() {
		t.Error("different spec hashes produced the same runner cache key")
	}
}

// TestSpecPhaseCheckpointDeterminism: fast-forward warmup of a phased
// spec workload crosses the reseed boundary; restoring the checkpointed
// post-warmup state must reproduce the cold fast-forward run exactly,
// phase position included.
func TestSpecPhaseCheckpointDeterminism(t *testing.T) {
	w, err := synth.LoadSpecFile(writeSpec(t, churnSpec))
	if err != nil {
		t.Fatal(err)
	}
	if w.Phases() != 2 || !w.Mixed() {
		t.Fatalf("churn spec compiled to %d phases, mixed=%v; want a 2-phase mix", w.Phases(), w.Mixed())
	}
	// Warmup 100K crosses the at=60000 boundary; two specs differing
	// only in a timing knob share one CheckpointKey, so the second run
	// restores the first's checkpoint.
	mk := func(lat int) runner.Spec {
		cfg := DefaultConfig()
		cfg.BTBLatency = lat
		sp := runner.WorkloadSpec(cfg, w, 100_000, 50_000)
		sp.FFwd = true
		return sp
	}
	specs := []runner.Spec{mk(1), mk(2)}
	if specs[0].CheckpointKey() != specs[1].CheckpointKey() {
		t.Fatal("timing-only sweep specs do not share a checkpoint key")
	}

	ref, err := runner.Execute(context.Background(), []runner.Spec{mk(1), mk(2)}, runner.Options{})
	if err != nil {
		t.Fatal(err)
	}
	cache, err := runner.NewCache(0, "")
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	got, err := runner.Execute(context.Background(), specs,
		runner.Options{Cache: cache, Checkpoint: true, Reg: reg})
	if err != nil {
		t.Fatal(err)
	}
	if n := reg.Counter(runner.MetricCheckpointRestores).Value(); n != 1 {
		t.Errorf("checkpoint restores = %d, want 1", n)
	}
	for i := range specs {
		if got[i].Run == nil || !reflect.DeepEqual(ref[i].Run, got[i].Run) {
			t.Errorf("spec %d: checkpoint-restored run differs from cold fast-forward run", i)
		}
	}
}
