package synth

import (
	"fmt"
	"strings"
	"sync"

	"fdp/internal/wspec"
)

// ServerParams returns the parameter set for the "server" workload class:
// multi-hundred-KB code footprints, deep call graphs, heavy discontinuity.
// variant (0..3) perturbs sizes so the four server workloads differ.
func ServerParams(variant int) Params {
	return Params{
		Name:              fmt.Sprintf("server_%c", 'a'+variant),
		Funcs:             2800 + 350*variant,
		Levels:            8,
		BlocksPerFuncMean: 12 + variant,
		BlockLenMean:      6,
		JumpFrac:          0.08,
		CallFrac:          0.24,
		IndJumpFrac:       0.02,
		IndCallFrac:       0.04,
		LoopFrac:          0.08,
		PatternFrac:       0.16,
		StrongBiasFrac:    0.93,
		TripMean:          4,
		IndTargetsMax:     10,
		MarkovStay:        0.78,
		HotFraction:       0.45,
	}
}

// ClientParams returns the "client" class: mid footprint, moderate call
// depth, a mix of loops and branchy code.
func ClientParams(variant int) Params {
	return Params{
		Name:              fmt.Sprintf("client_%c", 'a'+variant),
		Funcs:             1350 + 180*variant,
		Levels:            7,
		BlocksPerFuncMean: 11 + variant,
		BlockLenMean:      6,
		JumpFrac:          0.08,
		CallFrac:          0.20,
		IndJumpFrac:       0.03,
		IndCallFrac:       0.03,
		LoopFrac:          0.14,
		PatternFrac:       0.18,
		StrongBiasFrac:    0.92,
		TripMean:          6,
		IndTargetsMax:     8,
		MarkovStay:        0.82,
		HotFraction:       0.45,
	}
}

// SpecParams returns the "spec" class: smaller, loopier codes in the style
// of SPEC CPU workloads that still exceed the 32KB L1I when warm.
func SpecParams(variant int) Params {
	return Params{
		Name:              fmt.Sprintf("spec_%c", 'a'+variant),
		Funcs:             700 + 90*variant,
		Levels:            6,
		BlocksPerFuncMean: 14 + 2*variant,
		BlockLenMean:      7,
		JumpFrac:          0.07,
		CallFrac:          0.15,
		IndJumpFrac:       0.02,
		IndCallFrac:       0.02,
		LoopFrac:          0.17,
		PatternFrac:       0.20,
		StrongBiasFrac:    0.88,
		TripMean:          8,
		IndTargetsMax:     6,
		MarkovStay:        0.88,
		HotFraction:       0.60,
	}
}

// classSeeds gives every workload an independent master seed.
const (
	serverSeedBase = 0x5eed_0001
	clientSeedBase = 0x5eed_1001
	specSeedBase   = 0x5eed_2001
)

// builtinSpec expresses one standard workload as a workload spec: one
// component, no phases, the class seed base plus the variant as the
// master seed. Built-ins compile through the same FromSpec path as
// @file.yaml scenarios — presets are just specs the binary ships with.
func builtinSpec(class string, variant int, seedOffset uint64) *wspec.Spec {
	var base uint64
	switch class {
	case "server":
		base = serverSeedBase
	case "client":
		base = clientSeedBase
	case "spec":
		base = specSeedBase
	default:
		panic("synth: unknown builtin class " + class)
	}
	return &wspec.Spec{
		Version:     wspec.Version,
		Name:        fmt.Sprintf("%s_%c", class, 'a'+variant),
		Class:       class,
		Seed:        base + uint64(variant) + seedOffset,
		SwitchEvery: wspec.DefaultSwitchEvery,
		Mix:         []wspec.Component{{Preset: class, Variant: variant, Weight: 1}},
	}
}

// builtinSpecs returns the 12 standard workload specs (4 per class) in
// suite order.
func builtinSpecs(seedOffset uint64) []*wspec.Spec {
	var specs []*wspec.Spec
	for _, class := range []string{"server", "client", "spec"} {
		for v := 0; v < 4; v++ {
			specs = append(specs, builtinSpec(class, v, seedOffset))
		}
	}
	return specs
}

var (
	stdOnce sync.Once
	stdSet  []*Workload
)

// StandardWorkloads returns the 12 standard workloads (4 per class) used
// by all paper experiments. The set is generated once and cached; workloads
// are immutable and safe to share across goroutines (each run creates its
// own Stream).
func StandardWorkloads() []*Workload {
	stdOnce.Do(func() {
		stdSet = compileBuiltins(0)
	})
	return stdSet
}

// compileBuiltins compiles the built-in specs. Built-ins carry an empty
// SpecHash: their cache identity is the (name, seed) pair exactly as
// before the spec refactor, so every pre-existing result cache,
// checkpoint and golden manifest stays valid.
func compileBuiltins(seedOffset uint64) []*Workload {
	var ws []*Workload
	for _, sp := range builtinSpecs(seedOffset) {
		w, err := FromSpec(sp)
		if err != nil {
			panic(err) // built-in specs are known valid
		}
		w.SpecHash = ""
		w.SpecDoc = ""
		ws = append(ws, w)
	}
	return ws
}

// WorkloadsWithSeedOffset generates the full 12-workload suite with every
// master seed shifted by offset (offset 0 equals StandardWorkloads but is
// regenerated, not cached). Use for seed-sensitivity studies: the same
// program classes, different random programs and behaviours.
func WorkloadsWithSeedOffset(offset uint64) []*Workload {
	return compileBuiltins(offset)
}

// ByName returns the standard workload with the given name, or nil.
func ByName(name string) *Workload {
	for _, w := range StandardWorkloads() {
		if w.Name == name {
			return w
		}
	}
	return nil
}

// resolveToken resolves one workload token: a standard workload name, or
// "@path/to/spec.yaml" for a declarative workload spec.
func resolveToken(token string) (*Workload, error) {
	if strings.HasPrefix(token, "@") {
		path := strings.TrimPrefix(token, "@")
		if path == "" {
			return nil, fmt.Errorf("synth: empty spec reference %q (use @path/to/spec.yaml)", token)
		}
		w, err := LoadSpecFile(path)
		if err != nil {
			return nil, fmt.Errorf("synth: workload spec %q: %w", path, err)
		}
		return w, nil
	}
	if w := ByName(token); w != nil {
		return w, nil
	}
	return nil, fmt.Errorf("synth: unknown workload %q (known workloads: %s; or @file.yaml for a workload spec)",
		token, strings.Join(Names(), ", "))
}

// Resolve returns the named workloads in the given order, failing on the
// first unknown name. Each name may be a standard workload or a
// @file.yaml spec reference.
func Resolve(names ...string) ([]*Workload, error) {
	ws := make([]*Workload, 0, len(names))
	for _, name := range names {
		w, err := resolveToken(name)
		if err != nil {
			return nil, err
		}
		ws = append(ws, w)
	}
	return ws, nil
}

// ParseList resolves a comma-separated workload list as the command-line
// tools accept it: "all" (or "") yields the full standard set; otherwise
// each token is a standard workload name or a "@file.yaml" workload-spec
// reference. Whitespace around tokens is ignored. This is the one shared
// parser for every frontend's -workload flag; a failed token is reported
// with its position, the known workload names and the spec syntax.
func ParseList(s string) ([]*Workload, error) {
	s = strings.TrimSpace(s)
	if s == "" || s == "all" {
		return StandardWorkloads(), nil
	}
	tokens := strings.Split(s, ",")
	ws := make([]*Workload, 0, len(tokens))
	for i, token := range tokens {
		token = strings.TrimSpace(token)
		if token == "" {
			return nil, fmt.Errorf("synth: workload list %q: empty entry at position %d (entries are workload names or @file.yaml spec references)", s, i+1)
		}
		w, err := resolveToken(token)
		if err != nil {
			return nil, fmt.Errorf("workload list entry %d: %w", i+1, err)
		}
		ws = append(ws, w)
	}
	return ws, nil
}

// ParseWorkloadFlags resolves the paired -workload / -workload-spec
// frontend flags through ParseList. specFiles is a comma-separated list
// of workload-spec paths, each equivalent to an "@path" entry in the
// -workload list. When the -workload flag was left at its default
// (workloadsExplicit=false) and spec files are given, the specs replace
// the default list rather than adding to it.
func ParseWorkloadFlags(workloads, specFiles string, workloadsExplicit bool) ([]*Workload, error) {
	if strings.TrimSpace(specFiles) == "" {
		return ParseList(workloads)
	}
	var refs []string
	for i, p := range strings.Split(specFiles, ",") {
		p = strings.TrimSpace(p)
		if p == "" {
			return nil, fmt.Errorf("synth: spec file list %q: empty entry at position %d", specFiles, i+1)
		}
		refs = append(refs, "@"+p)
	}
	specList := strings.Join(refs, ",")
	if workloadsExplicit && strings.TrimSpace(workloads) != "" {
		return ParseList(workloads + "," + specList)
	}
	return ParseList(specList)
}

// Names returns the names of the standard workloads in order.
func Names() []string {
	ws := StandardWorkloads()
	out := make([]string, len(ws))
	for i, w := range ws {
		out[i] = w.Name
	}
	return out
}
