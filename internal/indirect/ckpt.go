package indirect

import "fdp/internal/ckpt"

const tagITTAGE = 0x49545447 // "ITTG"

// SaveState encodes the base last-target table, every tagged entry and
// the usefulness tick for fast-forward warmup checkpoints.
func (it *ITTAGE) SaveState(w *ckpt.Writer) {
	w.Tag(tagITTAGE)
	w.U64s(it.base)
	w.Int(len(it.tables))
	for i := range it.tables {
		es := it.tables[i]
		w.U32(uint32(len(es)))
		for j := range es {
			w.U16(es[j].tag)
			w.U64(es[j].target)
			w.I8(es[j].conf)
			w.U8(es[j].u)
		}
	}
	w.Int(it.tick)
}

// LoadState restores state written by SaveState into a predictor built
// with the same Config.
func (it *ITTAGE) LoadState(r *ckpt.Reader) {
	r.Tag(tagITTAGE)
	r.U64s(it.base)
	if n := r.Int(); r.Err() == nil && n != len(it.tables) {
		r.Failf("ittage: table count mismatch: %d vs %d", n, len(it.tables))
		return
	}
	for i := range it.tables {
		es := it.tables[i]
		if n := r.U32(); r.Err() == nil && int(n) != len(es) {
			r.Failf("ittage: table %d entry count mismatch: %d vs %d", i, n, len(es))
			return
		}
		for j := range es {
			es[j].tag = r.U16()
			es[j].target = r.U64()
			es[j].conf = r.I8()
			es[j].u = r.U8()
		}
	}
	it.tick = r.Int()
}
