// Command fdpsim runs one frontend configuration on one or more workloads
// and prints the measured statistics.
//
// Usage:
//
//	fdpsim [flags]
//	fdpsim -workload server_a -ftq 24 -pfc
//	fdpsim -workload all -baseline
//	fdpsim -trace trace.fdpt.gz
package main

import (
	"flag"
	"fmt"
	"os"

	"fdp/internal/core"
	"fdp/internal/stats"
	"fdp/internal/synth"
	"fdp/internal/trace"
)

func main() {
	var (
		workload   = flag.String("workload", "server_a", "standard workload name, or 'all'")
		traceFile  = flag.String("trace", "", "simulate a trace file instead of a synthetic workload")
		baseline   = flag.Bool("baseline", false, "use the no-FDP/no-prefetch baseline configuration")
		ftqEntries = flag.Int("ftq", 0, "override FTQ entries (0 = config default)")
		btbEntries = flag.Int("btb", 0, "override BTB entries")
		pfc        = flag.Bool("pfc", true, "enable post-fetch correction")
		dir        = flag.String("dir", "", "direction predictor: tage-9kb|tage-18kb|tage-36kb|gshare-8kb|perceptron-8kb|tage-sc-l-24kb|tage-sc-l-64kb|perfect")
		hist       = flag.String("hist", "thr", "history policy: thr|ghr-nofix|ghr-fix|ideal")
		prefetcher = flag.String("prefetcher", "", "dedicated prefetcher: nl1|fnl+mma|djolt|eip-128kb|eip-27kb|sn4l+dis|rdip")
		btbPref    = flag.Bool("btb-prefetch", false, "enable BTB prefetching at fill pre-decode")
		l1btb      = flag.Int("l1btb", 0, "enable the two-level BTB extension with this many L1 entries")
		timeline   = flag.Bool("timeline", false, "print a per-workload IPC sparkline (10K-instruction windows)")
		warmup     = flag.Uint64("warmup", 200_000, "warmup instructions")
		measure    = flag.Uint64("measure", 800_000, "measured instructions")
	)
	flag.Parse()

	cfg := core.DefaultConfig()
	if *baseline {
		cfg = core.BaselineConfig()
	}
	if *ftqEntries > 0 {
		cfg.FTQEntries = *ftqEntries
	}
	if *btbEntries > 0 {
		cfg.BTBEntries = *btbEntries
	}
	cfg.PFC = *pfc && !*baseline
	if *dir != "" {
		cfg.Dir = core.DirKind(*dir)
	}
	switch *hist {
	case "thr":
		cfg.HistPolicy = core.HistTHR
	case "ghr-nofix":
		cfg.HistPolicy, cfg.BTBAllocPolicy = core.HistGHRNoFix, core.AllocAll
	case "ghr-fix":
		cfg.HistPolicy, cfg.BTBAllocPolicy = core.HistGHRFix, core.AllocAll
	case "ideal":
		cfg.HistPolicy = core.HistIdeal
	default:
		fatal("unknown history policy %q", *hist)
	}
	cfg.Prefetcher = *prefetcher
	cfg.BTBPrefetch = *btbPref
	if *l1btb > 0 {
		cfg.L1BTBEntries = *l1btb
		cfg.L1BTBWays = 4
		cfg.L2BTBPenalty = cfg.BTBLatency
	}
	cfg.Name = "custom"
	if *baseline {
		cfg.Name = "baseline"
	}

	t := stats.NewTable("fdpsim results",
		"workload", "IPC", "branch MPKI", "L1I MPKI", "starv/KI", "tag/KI", "PFC resteers", "BTB hit%")
	var timelines []string
	report := func(name string, r *stats.Run) {
		t.AddRow(name, r.IPC(), r.BranchMPKI(), r.L1IMPKI(), r.StarvationPKI(),
			r.TagProbesPKI(), r.PFCResteers, 100*r.BTBHitRate())
		if *timeline {
			timelines = append(timelines, fmt.Sprintf("%-10s %s", name, stats.Sparkline(r.WindowIPC)))
		}
	}

	if *traceFile != "" {
		f, err := os.Open(*traceFile)
		if err != nil {
			fatal("%v", err)
		}
		tr, err := trace.Read(f)
		f.Close()
		if err != nil {
			fatal("%v", err)
		}
		fmt.Printf("trace %s: %s/%s, %d instructions, image %dKB\n",
			*traceFile, tr.Header.Name, tr.Header.Class, tr.Header.Instructions,
			tr.Image().Bytes()/1024)
		r, err := core.Simulate(cfg, tr.NewStream(), tr.Header.Name, *warmup, *measure)
		if err != nil {
			fatal("%v", err)
		}
		report(tr.Header.Name, r)
		fmt.Print(t)
		return
	}

	var workloads []*synth.Workload
	if *workload == "all" {
		workloads = synth.StandardWorkloads()
	} else {
		w := synth.ByName(*workload)
		if w == nil {
			fatal("unknown workload %q (have: %v)", *workload, synth.Names())
		}
		workloads = []*synth.Workload{w}
	}
	for _, w := range workloads {
		r, err := core.Simulate(cfg, w.NewStream(), w.Name, *warmup, *measure)
		if err != nil {
			fatal("%s: %v", w.Name, err)
		}
		report(w.Name, r)
	}
	fmt.Print(t)
	for _, tl := range timelines {
		fmt.Println(tl)
	}
}

func fatal(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "fdpsim: "+format+"\n", args...)
	os.Exit(1)
}
