// Package wspec defines the declarative workload-spec format: a
// versioned YAML document describing a synthetic workload scenario as a
// weighted *mix* of parameterized program images plus optional *phases*
// (footprint churn or parameter shifts at instruction boundaries). The
// package owns parsing, strict validation, the canonical re-encoding and
// the content hash that gives every spec a stable identity in the
// runner's result and checkpoint caches; internal/synth owns compiling a
// validated spec into an executable workload. See docs/WORKLOADS.md for
// the schema reference and scenario cookbook.
package wspec

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"math"
	"os"
	"regexp"
	"sort"
	"strings"
)

// Version is the only spec schema version this tree understands.
// Incompatible schema changes bump it; Parse rejects anything else so a
// spec is never silently reinterpreted.
const Version = 1

// Presets are the built-in parameter templates a mix component may
// start from. internal/synth maps each name to its Params family;
// TestPresetsCompile over there keeps the two lists in lock-step.
var Presets = []string{"server", "client", "spec"}

// MaxVariant bounds the preset variant index (variants name workloads
// "a".."z" style, so 26 of them).
const MaxVariant = 25

// DefaultSwitchEvery is the mix scheduling quantum when the spec does
// not set switch_every: how many instructions run on one component
// before the deficit scheduler may switch to another.
const DefaultSwitchEvery = 20_000

// Spec is a parsed, normalized workload spec.
type Spec struct {
	// Version is the schema version (must equal Version).
	Version int
	// Name identifies the scenario; it appears in manifests, cache keys
	// and CSV output, so it is restricted to [A-Za-z0-9._-]+.
	Name string
	// Class is the workload-class label carried into stats.Run.Class
	// (default "custom"); purely descriptive.
	Class string
	// Seed is the master seed every component seed derives from.
	Seed uint64
	// SwitchEvery is the mix scheduling quantum in instructions.
	SwitchEvery uint64
	// Mix is the initial (phase-0) component blend.
	Mix []Component
	// Phases are optional later execution phases, ordered by At.
	Phases []Phase
}

// Component is one weighted program image of a mix.
type Component struct {
	// Preset names the parameter template (see Presets).
	Preset string
	// Variant perturbs the preset's sizing like the built-in workload
	// families do (server_a..server_d are variants 0..3).
	Variant int
	// Weight is the share of executed instructions this component
	// receives relative to the mix's total weight (> 0, default 1).
	Weight float64
	// SeedOffset shifts this component's generation seed off Spec.Seed,
	// so two otherwise-identical components are different programs.
	SeedOffset uint64
	// Params overrides individual generator parameters of the preset.
	Params Overrides
}

// Phase is one later execution phase entered at an absolute instruction
// boundary. Exactly one of Reseed and Mix is set: Reseed regenerates
// the previous phase's mix as fresh program images (footprint churn, a
// code deploy), Mix replaces the blend outright (a parameter shift).
type Phase struct {
	// At is the 1-based dynamic instruction index the phase starts at.
	At uint64
	// Reseed, when > 0, regenerates the inherited mix with this churn
	// offset folded into every component seed.
	Reseed uint64
	// Mix, when non-empty, replaces the blend.
	Mix []Component
}

// Overrides are optional per-component generator parameter overrides.
// Nil fields inherit the preset value; bounds are enforced by
// synth.Params.Validate when the spec is compiled.
type Overrides struct {
	Funcs             *int
	Levels            *int
	BlocksPerFuncMean *int
	BlockLenMean      *int
	TripMean          *int
	IndTargetsMax     *int
	JumpFrac          *float64
	CallFrac          *float64
	IndJumpFrac       *float64
	IndCallFrac       *float64
	LoopFrac          *float64
	PatternFrac       *float64
	StrongBiasFrac    *float64
	MarkovStay        *float64
	HotFraction       *float64
}

var nameRE = regexp.MustCompile(`^[A-Za-z0-9._-]+$`)

// Parse parses and validates a workload-spec YAML document.
func Parse(data []byte) (*Spec, error) {
	root, err := parseYAML(data)
	if err != nil {
		return nil, fmt.Errorf("wspec: %w", err)
	}
	m, ok := root.(map[string]interface{})
	if !ok {
		return nil, fmt.Errorf("wspec: top level must be a mapping (version, name, mix, ...)")
	}
	sp := &Spec{Class: "custom", Seed: 1, SwitchEvery: DefaultSwitchEvery}
	d := &decoder{}
	d.strictKeys("spec", m, "version", "name", "class", "seed", "switch_every", "mix", "phases")
	sp.Version = d.intField("version", m, 0)
	sp.Name = d.strField("name", m, "")
	sp.Class = d.strField("class", m, sp.Class)
	sp.Seed = d.uintField("seed", m, sp.Seed)
	sp.SwitchEvery = d.uintField("switch_every", m, sp.SwitchEvery)
	sp.Mix = d.mixField("mix", m)
	if raw, ok := m["phases"]; ok && raw != nil {
		items, ok := raw.([]interface{})
		if !ok {
			d.errf("phases: must be a list")
		} else {
			for i, it := range items {
				pm, ok := it.(map[string]interface{})
				if !ok {
					d.errf("phases[%d]: must be a mapping", i)
					continue
				}
				ctx := fmt.Sprintf("phases[%d]", i)
				d.strictKeys(ctx, pm, "at", "reseed", "mix")
				ph := Phase{
					At:     d.uintField(ctx+".at", pm2(pm, "at"), 0),
					Reseed: d.uintField(ctx+".reseed", pm2(pm, "reseed"), 0),
				}
				if _, ok := pm["mix"]; ok {
					ph.Mix = d.mixField(ctx+".mix", pm2m(pm, "mix"))
				}
				sp.Phases = append(sp.Phases, ph)
			}
		}
	}
	if d.err != nil {
		return nil, fmt.Errorf("wspec: %w", d.err)
	}
	if err := sp.Validate(); err != nil {
		return nil, err
	}
	return sp, nil
}

// pm2 wraps a single field into a one-key map so the shared field
// helpers apply (they look fields up by name).
func pm2(m map[string]interface{}, key string) map[string]interface{} {
	if v, ok := m[key]; ok {
		return map[string]interface{}{key: v}
	}
	return map[string]interface{}{}
}

// pm2m is pm2 for the helpers that take the field name separately from
// the lookup key ("phases[i].mix" vs "mix").
func pm2m(m map[string]interface{}, key string) map[string]interface{} {
	return pm2(m, key)
}

// Load reads and parses the spec file at path.
func Load(path string) (*Spec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("wspec: %w", err)
	}
	sp, err := Parse(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return sp, nil
}

// Validate reports the first structural violation. Generator-parameter
// bounds (Funcs >= 2, fraction sums, ...) are checked by
// synth.Params.Validate at compile time, after overrides are applied.
func (sp *Spec) Validate() error {
	switch {
	case sp.Version != Version:
		return fmt.Errorf("wspec: version = %d, this build understands version %d", sp.Version, Version)
	case sp.Name == "":
		return fmt.Errorf("wspec: missing name")
	case !nameRE.MatchString(sp.Name):
		return fmt.Errorf("wspec: name %q must match %s", sp.Name, nameRE)
	case sp.Class == "" || !nameRE.MatchString(sp.Class):
		return fmt.Errorf("wspec: class %q must match %s", sp.Class, nameRE)
	case sp.SwitchEvery < 1:
		return fmt.Errorf("wspec: switch_every = %d, need >= 1", sp.SwitchEvery)
	case len(sp.Mix) == 0:
		return fmt.Errorf("wspec: empty mix (need at least one component)")
	}
	if err := validateMix("mix", sp.Mix); err != nil {
		return err
	}
	prevAt := uint64(0)
	for i, ph := range sp.Phases {
		ctx := fmt.Sprintf("phases[%d]", i)
		if ph.At <= prevAt {
			return fmt.Errorf("wspec: %s.at = %d, must be > %d (boundaries are strictly increasing, starting above 0)", ctx, ph.At, prevAt)
		}
		prevAt = ph.At
		hasReseed := ph.Reseed > 0
		hasMix := len(ph.Mix) > 0
		switch {
		case hasReseed && hasMix:
			return fmt.Errorf("wspec: %s: reseed and mix are mutually exclusive (a phase either churns the inherited images or replaces the blend)", ctx)
		case !hasReseed && !hasMix:
			return fmt.Errorf("wspec: %s: need reseed > 0 or a non-empty mix", ctx)
		}
		if hasMix {
			if err := validateMix(ctx+".mix", ph.Mix); err != nil {
				return err
			}
		}
	}
	return nil
}

func validateMix(ctx string, mix []Component) error {
	for i, c := range mix {
		cctx := fmt.Sprintf("%s[%d]", ctx, i)
		known := false
		for _, p := range Presets {
			if c.Preset == p {
				known = true
			}
		}
		if !known {
			return fmt.Errorf("wspec: %s: unknown preset %q (have %s)", cctx, c.Preset, strings.Join(Presets, ", "))
		}
		if c.Variant < 0 || c.Variant > MaxVariant {
			return fmt.Errorf("wspec: %s: variant = %d, need 0..%d", cctx, c.Variant, MaxVariant)
		}
		if !(c.Weight > 0) || math.IsInf(c.Weight, 0) {
			return fmt.Errorf("wspec: %s: weight = %v, need a positive finite number", cctx, c.Weight)
		}
		if err := c.Params.validate(cctx); err != nil {
			return err
		}
	}
	return nil
}

func (o *Overrides) validate(ctx string) error {
	for _, f := range o.floatFields() {
		if f.v != nil && (math.IsNaN(*f.v) || math.IsInf(*f.v, 0)) {
			return fmt.Errorf("wspec: %s.params.%s = %v, need a finite number", ctx, f.name, *f.v)
		}
	}
	return nil
}

// Hash returns the spec's canonical content hash: sha256 over a
// versioned preamble plus the canonical encoding, hex-encoded. Two
// documents that differ only in formatting, comments, key order or
// explicitly-spelled defaults hash identically; any semantic change
// (weights, seeds, overrides, phase boundaries) changes the hash. The
// runner folds this hash into Spec.Key, so it is the workload identity
// of every spec-defined scenario.
func (sp *Spec) Hash() string {
	h := sha256.New()
	fmt.Fprintf(h, "fdp-wspec-v%d\n", Version)
	h.Write(sp.Encode())
	return hex.EncodeToString(h.Sum(nil))
}

// Encode renders the spec as canonical YAML: normalized defaults, fixed
// key order, minimal formatting. Parse(Encode()) round-trips to an
// identical spec (FuzzWorkloadSpec holds the hash stable across the
// round trip).
func (sp *Spec) Encode() []byte {
	var b strings.Builder
	fmt.Fprintf(&b, "version: %d\n", sp.Version)
	fmt.Fprintf(&b, "name: %s\n", sp.Name)
	fmt.Fprintf(&b, "class: %s\n", sp.Class)
	fmt.Fprintf(&b, "seed: %d\n", sp.Seed)
	fmt.Fprintf(&b, "switch_every: %d\n", sp.SwitchEvery)
	encodeMix(&b, "", sp.Mix)
	if len(sp.Phases) > 0 {
		b.WriteString("phases:\n")
		for _, ph := range sp.Phases {
			fmt.Fprintf(&b, "  - at: %d\n", ph.At)
			if ph.Reseed > 0 {
				fmt.Fprintf(&b, "    reseed: %d\n", ph.Reseed)
			}
			if len(ph.Mix) > 0 {
				encodeMix(&b, "    ", ph.Mix)
			}
		}
	}
	return []byte(b.String())
}

func encodeMix(b *strings.Builder, indent string, mix []Component) {
	fmt.Fprintf(b, "%smix:\n", indent)
	for _, c := range mix {
		fmt.Fprintf(b, "%s  - preset: %s\n", indent, c.Preset)
		fmt.Fprintf(b, "%s    variant: %d\n", indent, c.Variant)
		fmt.Fprintf(b, "%s    weight: %s\n", indent, formatFloat(c.Weight))
		fmt.Fprintf(b, "%s    seed_offset: %d\n", indent, c.SeedOffset)
		ints := c.Params.intFields()
		floats := c.Params.floatFields()
		any := false
		for _, f := range ints {
			any = any || f.v != nil
		}
		for _, f := range floats {
			any = any || f.v != nil
		}
		if !any {
			continue
		}
		fmt.Fprintf(b, "%s    params:\n", indent)
		// Canonical parameter order: sorted by key.
		type kv struct{ k, v string }
		var kvs []kv
		for _, f := range ints {
			if f.v != nil {
				kvs = append(kvs, kv{f.name, fmt.Sprintf("%d", *f.v)})
			}
		}
		for _, f := range floats {
			if f.v != nil {
				kvs = append(kvs, kv{f.name, formatFloat(*f.v)})
			}
		}
		sort.Slice(kvs, func(i, j int) bool { return kvs[i].k < kvs[j].k })
		for _, e := range kvs {
			fmt.Fprintf(b, "%s      %s: %s\n", indent, e.k, e.v)
		}
	}
}

// formatFloat renders a float so that Parse reads back the identical
// value ('g' is shortest-roundtrip in Go) and integers keep a decimal
// point, so the scalar parser cannot reclassify them.
func formatFloat(f float64) string {
	s := fmt.Sprintf("%g", f)
	if !strings.ContainsAny(s, ".eE") {
		s += ".0"
	}
	return s
}

// Summary returns a short one-line description for listings.
func (sp *Spec) Summary() string {
	return fmt.Sprintf("%s: class=%s seed=%d components=%d phases=%d",
		sp.Name, sp.Class, sp.Seed, len(sp.Mix), len(sp.Phases)+1)
}
