// Package synth generates synthetic frontend-bound workloads that stand in
// for the IPC-1 server/client/SPEC traces used by the paper (which are not
// redistributable). A workload is a static program Image — functions made
// of basic blocks wired together by conditional branches, jumps, loops,
// direct and indirect calls, and returns — plus deterministic behaviour
// models for every branch. Executing the behaviour models yields the
// architecturally-correct dynamic instruction stream (the oracle).
//
// The generator is tuned to the regime the paper selects for: instruction
// footprints far larger than a 32KB L1I, discontinuous control flow, and
// branch working sets that stress 1K-16K-entry BTBs. See DESIGN.md §2.
package synth

import (
	"fmt"
	"sort"

	"fdp/internal/program"
	"fdp/internal/xrand"
)

// Params controls workload generation. All fields must be positive unless
// noted; Validate reports the first violation.
type Params struct {
	// Name identifies the workload class instance (e.g. "server_a").
	Name string
	// Funcs is the number of functions in the program.
	Funcs int
	// Levels is the call-graph depth: function at level L may only call
	// functions at level > L, bounding recursion (there is none) and the
	// dynamic call depth.
	Levels int
	// BlocksPerFuncMean is the mean basic-block count per function.
	BlocksPerFuncMean int
	// BlockLenMean is the mean number of non-terminator instructions per
	// basic block.
	BlockLenMean int

	// Terminator kind fractions for non-final blocks. They need not sum
	// to 1; the remainder becomes conditional branches.
	JumpFrac    float64
	CallFrac    float64
	IndJumpFrac float64
	IndCallFrac float64

	// LoopFrac is the fraction of conditional branches that are backward
	// loop branches (taken trip-1 times, then fall through).
	LoopFrac float64
	// PatternFrac is the fraction of forward conditionals driven by a
	// short repeating direction pattern (highly predictable by TAGE).
	PatternFrac float64
	// StrongBiasFrac is the fraction of remaining forward conditionals
	// that are strongly biased (taken or not-taken ~97% of the time).
	StrongBiasFrac float64
	// TripMean is the mean loop trip count.
	TripMean int
	// IndTargetsMax is the maximum number of targets for an indirect
	// jump or call site (minimum 2).
	IndTargetsMax int
	// MarkovStay is the probability an indirect site repeats its previous
	// target (temporal stickiness; the rest switches uniformly).
	MarkovStay float64
	// HotFraction of functions receives the bulk of call-site edges,
	// giving the program a hot working set plus a long cold tail.
	HotFraction float64
}

// Validate reports whether the parameters are usable.
func (p *Params) Validate() error {
	switch {
	case p.Name == "":
		return fmt.Errorf("synth: empty Name")
	case p.Funcs < 2:
		return fmt.Errorf("synth: Funcs = %d, need >= 2", p.Funcs)
	case p.Levels < 2 || p.Levels > p.Funcs:
		return fmt.Errorf("synth: Levels = %d, need 2..Funcs", p.Levels)
	case p.BlocksPerFuncMean < 2:
		return fmt.Errorf("synth: BlocksPerFuncMean = %d, need >= 2", p.BlocksPerFuncMean)
	case p.BlockLenMean < 1:
		return fmt.Errorf("synth: BlockLenMean = %d, need >= 1", p.BlockLenMean)
	case p.JumpFrac < 0 || p.CallFrac < 0 || p.IndJumpFrac < 0 || p.IndCallFrac < 0:
		return fmt.Errorf("synth: negative terminator fraction")
	case p.JumpFrac+p.CallFrac+p.IndJumpFrac+p.IndCallFrac > 0.95:
		return fmt.Errorf("synth: terminator fractions leave <5%% for conditionals")
	case p.LoopFrac < 0 || p.LoopFrac > 1:
		return fmt.Errorf("synth: LoopFrac out of [0,1]")
	case p.TripMean < 2:
		return fmt.Errorf("synth: TripMean = %d, need >= 2", p.TripMean)
	case p.IndTargetsMax < 2:
		return fmt.Errorf("synth: IndTargetsMax = %d, need >= 2", p.IndTargetsMax)
	case p.MarkovStay < 0 || p.MarkovStay >= 1:
		return fmt.Errorf("synth: MarkovStay out of [0,1)")
	case p.HotFraction <= 0 || p.HotFraction > 1:
		return fmt.Errorf("synth: HotFraction out of (0,1]")
	}
	return nil
}

// behaviourKind tags the runtime behaviour model of a branch site.
type behaviourKind uint8

const (
	behNone     behaviourKind = iota // non-branch or unconditional direct
	behBiased                        // conditional: taken with probability p
	behLoop                          // conditional: taken trip-1 times then not
	behPattern                       // conditional: repeating direction pattern
	behIndirect                      // indirect jump/call: target set + markov
	behRotate                        // indirect: deterministic round-robin over targets
)

// branchInfo is the immutable per-site behaviour description, indexed by
// image instruction index.
type branchInfo struct {
	kind    behaviourKind
	p       float64  // behBiased: taken probability
	trip    int32    // behLoop: mean trip count
	tripVar int32    // behLoop: +- uniform jitter on each loop entry
	pattern uint64   // behPattern: direction bits, LSB first
	patLen  uint8    // behPattern: pattern length in bits (1..64)
	stay    float64  // behIndirect: markov stay probability
	targets []uint64 // behIndirect: candidate target addresses
}

// Workload is an immutable generated program plus behaviour descriptions.
// Create execution streams with NewStream; each stream re-derives all
// dynamic state from the workload seed, so two streams from the same
// workload produce identical instruction sequences.
//
// A workload is either *plain* — one program image, one entry, the
// pre-spec shape — or *scenario-shaped* (built by FromSpec from a
// wspec.Spec with more than one component or phase): the image then
// holds every component of every phase back to back, and phases/
// seedRanges drive the mixed, phased execution in Stream.
type Workload struct {
	// Name is the workload identifier, e.g. "server_a".
	Name string
	// Class is the workload family: "server", "client" or "spec" for the
	// built-ins, or whatever class the spec declares.
	Class string
	// Seed is the master seed all randomness derives from.
	Seed uint64
	// SpecHash is the canonical wspec content hash for spec-defined
	// workloads, and "" for the built-in presets. The runner folds it
	// into cache and checkpoint keys, so it is the workload's cache
	// identity; built-ins keep the empty hash so their keys are stable
	// across the spec refactor.
	SpecHash string
	// SpecDoc is the canonical encoded spec document (wspec.Encode) the
	// workload was compiled from, "" for built-ins. Not identity — the
	// hash covers the content — but the distributed runner ships it so a
	// remote worker can recompile the identical scenario.
	SpecDoc string

	img   *program.Image
	info  []branchInfo // parallel to image instructions
	entry uint64       // entry PC of the first component
	base  uint64       // image base (imageBase; kept per-workload for idx math)

	// Scenario shape; all nil/zero for plain workloads.
	phases      []runPhase      // execution phases in order (phases[0].at == 0)
	switchEvery uint64          // mix scheduling quantum, instructions
	seedRanges  []seedRange     // per-component site-seed ranges
	comps       []ComponentStat // static per-component metadata, phase order
}

// runPhase is one compiled execution phase: from instruction boundary
// `at` onward, execution draws from comps.
type runPhase struct {
	at    uint64
	comps []runComp
}

// runComp is one weighted component of a phase's mix.
type runComp struct {
	entry  uint64
	weight float64
}

// seedRange says sites [lo,hi) derive their behaviour RNG streams from
// seed. Plain workloads have none and fall back to Workload.Seed.
type seedRange struct {
	lo, hi int
	seed   uint64
}

// ComponentStat summarizes the static image of one generated component
// of a workload, for inspection tools (cmd/wlstat). Plain workloads have
// exactly one; scenario workloads have one per (phase, mix component).
type ComponentStat struct {
	// Phase is the execution phase index this component belongs to.
	Phase int
	// PhaseStart is the instruction boundary at which the phase begins
	// (0 for phase 0).
	PhaseStart uint64
	// Index is the component's position within the phase's mix.
	Index int
	// Label names the component's parameter family, e.g. "server_a".
	Label string
	// Weight is the component's share of the mix schedule.
	Weight float64
	// Seed is the fully-derived generation seed (master + offset + churn).
	Seed uint64
	// Entry is the component's entry PC in the combined image.
	Entry uint64
	// Insts and Bytes are the component's static footprint.
	Insts int
	Bytes uint64
	// StaticBranches counts the component's static branch sites.
	StaticBranches int
	// HotFraction is the resolved generator hot-set parameter.
	HotFraction float64
}

// Components returns per-component static metadata in phase order. Plain
// workloads report a single component covering the whole image.
func (w *Workload) Components() []ComponentStat {
	if len(w.comps) > 0 {
		out := make([]ComponentStat, len(w.comps))
		copy(out, w.comps)
		return out
	}
	return []ComponentStat{{
		Label: w.Name, Weight: 1, Seed: w.Seed, Entry: w.entry,
		Insts: w.img.Size(), Bytes: w.img.Bytes(),
		StaticBranches: w.StaticBranches(),
	}}
}

// Mixed reports whether the workload executes as a scenario (mixes or
// phases) rather than a single plain program.
func (w *Workload) Mixed() bool { return len(w.phases) > 0 }

// Phases returns the number of execution phases (1 for plain workloads).
func (w *Workload) Phases() int {
	if len(w.phases) == 0 {
		return 1
	}
	return len(w.phases)
}

// Image returns the static program image.
func (w *Workload) Image() *program.Image { return w.img }

// Entry returns the program entry point.
func (w *Workload) Entry() uint64 { return w.entry }

// FootprintBytes returns the static code footprint.
func (w *Workload) FootprintBytes() uint64 { return w.img.Bytes() }

// StaticBranches returns the number of static branch sites.
func (w *Workload) StaticBranches() int {
	h := w.img.CountByType()
	n := 0
	for t := 0; t < program.NumInstTypes; t++ {
		if program.InstType(t).IsBranch() {
			n += h[t]
		}
	}
	return n
}

// countBranches counts static branch sites among the image instructions
// with global indices [lo,hi).
func countBranches(img *program.Image, lo, hi int) int {
	n := 0
	for i := lo; i < hi; i++ {
		if img.TypeAt(imageBase + uint64(i)*program.InstBytes).IsBranch() {
			n++
		}
	}
	return n
}

const imageBase = 0x0040_0000 // typical text-segment base

// Generate builds a plain workload from params and a seed. The same
// (params, seed) pair always yields an identical workload.
func Generate(p Params, class string, seed uint64) (*Workload, error) {
	img := program.NewImage(imageBase)
	var info []branchInfo
	entry, err := appendComponent(p, seed, img, &info)
	if err != nil {
		return nil, err
	}
	if err := img.Freeze(); err != nil {
		return nil, fmt.Errorf("synth: %s: %w", p.Name, err)
	}
	w := &Workload{
		Name: p.Name, Class: class, Seed: seed,
		img: img, info: info, entry: entry, base: imageBase,
	}
	w.comps = []ComponentStat{{
		Label: p.Name, Weight: 1, Seed: seed, Entry: entry,
		Insts: img.Size(), Bytes: img.Bytes(),
		StaticBranches: w.StaticBranches(), HotFraction: p.HotFraction,
	}}
	return w, nil
}

// appendComponent generates one program from (params, seed) at the
// image's current end, appending its behaviour table to info, and
// returns the program's entry PC. Addresses and site-seed derivation
// depend only on the append position, so the first component of a
// combined image is byte-identical to the plain workload generated from
// the same (params, seed).
func appendComponent(p Params, seed uint64, img *program.Image, info *[]branchInfo) (uint64, error) {
	if err := p.Validate(); err != nil {
		return 0, err
	}
	g := &generator{p: p, rng: xrand.New(xrand.Mix(seed)), base: img.Limit()}
	g.plan()
	g.emit(img, info)
	return g.funcs[0].entry, nil
}

// MustGenerate is Generate that panics on error; for presets known valid.
func MustGenerate(p Params, class string, seed uint64) *Workload {
	w, err := Generate(p, class, seed)
	if err != nil {
		panic(err)
	}
	return w
}

// ---------- generation internals ----------

type termKind uint8

const (
	termCond termKind = iota
	termJump
	termCall
	termIndJump
	termIndCall
	termReturn
)

// blockPlan describes one basic block before layout.
type blockPlan struct {
	nBody int      // non-terminator instructions
	kind  termKind // terminator
	// intra-function targets, as block indices within the function
	condTarget int   // termCond: taken target block
	jumpTarget int   // termJump
	indTargets []int // termIndJump
	// inter-function targets, as function indices
	callee     int   // termCall
	indCallees []int // termIndCall
	// behaviour
	beh branchInfo // kind/p/trip/pattern filled; targets resolved at emit
}

type funcPlan struct {
	level  int
	blocks []blockPlan
	// layout, filled by layout():
	entry      uint64
	blockAddrs []uint64 // start address of each block
	size       uint64   // bytes
}

type generator struct {
	p     Params
	rng   *xrand.SplitMix64
	base  uint64 // address of the first emitted instruction
	funcs []funcPlan
	// weighted callee sampling per level: calleesByLevel[L] lists
	// function indices at level > L, hot functions repeated.
	calleesByLevel [][]int
}

func (g *generator) plan() {
	p := g.p
	g.funcs = make([]funcPlan, p.Funcs)
	// Assign levels: function 0 is the level-0 dispatcher; the rest are
	// spread over levels 1..Levels-1, guaranteeing each level is populated.
	g.funcs[0].level = 0
	for i := 1; i < p.Funcs; i++ {
		if i < p.Levels {
			g.funcs[i].level = i // seed every level
		} else {
			g.funcs[i].level = 1 + g.rng.Intn(p.Levels-1)
		}
	}
	g.buildCalleeTables()
	for i := range g.funcs {
		g.planFunc(i)
	}
	g.layout()
}

// buildCalleeTables prepares weighted candidate lists so hot functions
// (first HotFraction of each level, by index) receive ~80% of call edges.
func (g *generator) buildCalleeTables() {
	p := g.p
	byLevel := make([][]int, p.Levels)
	for i := range g.funcs {
		l := g.funcs[i].level
		byLevel[l] = append(byLevel[l], i)
	}
	g.calleesByLevel = make([][]int, p.Levels)
	for l := 0; l < p.Levels; l++ {
		var pool []int
		for m := l + 1; m < p.Levels; m++ {
			fns := byLevel[m]
			hot := int(float64(len(fns)) * p.HotFraction)
			if hot < 1 {
				hot = 1
			}
			for j, f := range fns {
				w := 1
				if j < hot {
					// Hot functions appear with weight so that they soak up
					// roughly 80% of edges.
					w = 1 + 4*(len(fns)/hot)
				}
				for k := 0; k < w; k++ {
					pool = append(pool, f)
				}
			}
		}
		g.calleesByLevel[l] = pool
	}
}

func (g *generator) pickCallee(level int) (int, bool) {
	pool := g.calleesByLevel[level]
	if len(pool) == 0 {
		return 0, false
	}
	return pool[g.rng.Intn(len(pool))], true
}

func (g *generator) planFunc(fi int) {
	p := g.p
	f := &g.funcs[fi]
	if fi == 0 {
		g.planDispatcher(f)
		return
	}
	n := g.rng.Geometric(float64(p.BlocksPerFuncMean))
	if n < 2 {
		n = 2
	}
	f.blocks = make([]blockPlan, n)
	for bi := 0; bi < n; bi++ {
		b := &f.blocks[bi]
		b.nBody = g.rng.Geometric(float64(p.BlockLenMean)) - 1
		if b.nBody < 0 {
			b.nBody = 0
		}
		if bi == n-1 {
			b.kind = termReturn
			continue
		}
		b.kind = g.pickTermKind(fi, bi, n)
		switch b.kind {
		case termCond:
			g.planCond(f, b, bi, n)
		case termJump:
			b.jumpTarget = bi + 1 + g.rng.Intn(n-bi-1)
		case termCall:
			callee, _ := g.pickCallee(f.level)
			b.callee = callee
		case termIndJump:
			b.indTargets = g.pickForward(bi, n, 2+g.rng.Intn(p.IndTargetsMax-1))
			b.beh = branchInfo{kind: behIndirect, stay: p.MarkovStay}
		case termIndCall:
			k := 2 + g.rng.Intn(p.IndTargetsMax-1)
			seen := map[int]bool{}
			for attempts := 0; len(b.indCallees) < k && attempts < 8*k; attempts++ {
				c, ok := g.pickCallee(f.level)
				if !ok {
					break
				}
				if !seen[c] {
					seen[c] = true
					b.indCallees = append(b.indCallees, c)
				}
			}
			if len(b.indCallees) == 0 {
				// Tiny callee pool: degrade to a direct call.
				b.kind = termCall
				b.callee, _ = g.pickCallee(f.level)
				b.beh = branchInfo{}
				continue
			}
			sort.Ints(b.indCallees)
			b.beh = branchInfo{kind: behIndirect, stay: p.MarkovStay}
		}
	}
}

// planDispatcher builds function 0: the program's outer loop. Every
// non-final block ends in an indirect call whose target set spans the hot
// and cold parts of level >= 1, guaranteeing that execution fans out across
// the whole program on every outer iteration (the workload's "transaction
// loop").
func (g *generator) planDispatcher(f *funcPlan) {
	p := g.p
	n := p.BlocksPerFuncMean
	if n < 6 {
		n = 6
	}
	f.blocks = make([]blockPlan, n)
	for bi := 0; bi < n; bi++ {
		b := &f.blocks[bi]
		b.nBody = g.rng.Geometric(float64(p.BlockLenMean)) - 1
		if b.nBody < 0 {
			b.nBody = 0
		}
		if bi == n-1 {
			b.kind = termReturn
			continue
		}
		k := 4 + g.rng.Intn(2*p.IndTargetsMax)
		seen := map[int]bool{}
		for attempts := 0; len(b.indCallees) < k && attempts < 16*k; attempts++ {
			c, ok := g.pickCallee(0)
			if !ok {
				break
			}
			if !seen[c] {
				seen[c] = true
				b.indCallees = append(b.indCallees, c)
			}
		}
		if len(b.indCallees) == 0 {
			panic("synth: dispatcher has no callees") // Levels >= 2 guarantees some
		}
		sort.Ints(b.indCallees)
		b.kind = termIndCall
		// Dispatcher sites rotate deterministically through their targets:
		// the "transaction mix" cycles through handler types, spreading the
		// working set across the whole program every outer iteration while
		// remaining learnable by the indirect predictor.
		b.beh = branchInfo{kind: behRotate}
	}
}

// pickTermKind draws a terminator kind honouring the configured fractions.
// Call-family terminators degrade to jumps when the function has no
// eligible callees (deepest level).
func (g *generator) pickTermKind(fi, bi, n int) termKind {
	p := g.p
	r := g.rng.Float64()
	canCall := len(g.calleesByLevel[g.funcs[fi].level]) > 0
	canForward := bi+1 < n
	switch {
	case r < p.CallFrac:
		if canCall {
			return termCall
		}
		return termCond
	case r < p.CallFrac+p.IndCallFrac:
		if canCall {
			return termIndCall
		}
		return termCond
	case r < p.CallFrac+p.IndCallFrac+p.JumpFrac:
		if canForward {
			return termJump
		}
		return termCond
	case r < p.CallFrac+p.IndCallFrac+p.JumpFrac+p.IndJumpFrac:
		if canForward && bi+2 < n {
			return termIndJump
		}
		return termCond
	default:
		return termCond
	}
}

func (g *generator) planCond(f *funcPlan, b *blockPlan, bi, n int) {
	p := g.p
	if bi > 0 && g.rng.Bool(p.LoopFrac) {
		// Backward loop branch: taken target is this block or an earlier
		// one; falls through to the next block when the loop exits.
		b.condTarget = g.rng.Intn(bi + 1)
		trip := g.rng.Geometric(float64(p.TripMean))
		if trip < 2 {
			trip = 2
		}
		jitter := int32(0)
		if g.rng.Bool(0.15) {
			jitter = int32(1 + g.rng.Intn(2))
		}
		b.beh = branchInfo{kind: behLoop, trip: int32(trip), tripVar: jitter}
		return
	}
	// Forward conditional: taken target skips ahead.
	b.condTarget = bi + 1 + g.rng.Intn(n-bi-1)
	switch {
	case g.rng.Bool(p.PatternFrac):
		patLen := uint8(2 + g.rng.Intn(10))
		var pat uint64
		for i := uint8(0); i < patLen; i++ {
			if g.rng.Bool(0.5) {
				pat |= 1 << i
			}
		}
		b.beh = branchInfo{kind: behPattern, pattern: pat, patLen: patLen}
	case g.rng.Bool(p.StrongBiasFrac):
		// Strongly biased either way; not-taken bias is more common, as
		// in real code (error paths).
		if g.rng.Bool(0.35) {
			b.beh = branchInfo{kind: behBiased, p: 0.97 + 0.028*g.rng.Float64()}
		} else {
			b.beh = branchInfo{kind: behBiased, p: 0.002 + 0.028*g.rng.Float64()}
		}
	default:
		// Moderately biased data-dependent branches: the fundamentally
		// unpredictable minority that sets the branch MPKI floor.
		b.beh = branchInfo{kind: behBiased, p: 0.12 + 0.76*g.rng.Float64()}
	}
}

// pickForward returns k distinct block indices in (bi, n).
func (g *generator) pickForward(bi, n, k int) []int {
	avail := n - bi - 1
	if k > avail {
		k = avail
	}
	seen := map[int]bool{}
	var out []int
	for len(out) < k {
		t := bi + 1 + g.rng.Intn(avail)
		if !seen[t] {
			seen[t] = true
			out = append(out, t)
		}
	}
	sort.Ints(out)
	return out
}

// layout assigns addresses: functions in index order, blocks in order,
// starting at the generator's base (the image end for later components
// of a combined scenario image).
func (g *generator) layout() {
	addr := g.base
	for i := range g.funcs {
		f := &g.funcs[i]
		f.entry = addr
		f.blockAddrs = make([]uint64, len(f.blocks))
		for bi := range f.blocks {
			f.blockAddrs[bi] = addr
			addr += uint64(f.blocks[bi].nBody+1) * program.InstBytes
		}
		f.size = addr - f.entry
	}
}

// emit appends the planned program to the image and its behaviour table
// to info. Emission is strictly sequential in address order, so info
// stays index-parallel to the image instructions.
func (g *generator) emit(img *program.Image, info *[]branchInfo) {
	for fi := range g.funcs {
		f := &g.funcs[fi]
		for bi := range f.blocks {
			b := &f.blocks[bi]
			for k := 0; k < b.nBody; k++ {
				img.Append(program.NonBranch)
				*info = append(*info, branchInfo{})
			}
			var pc uint64
			switch b.kind {
			case termCond:
				pc = img.Append(program.CondDirect)
				img.SetTarget(pc, f.blockAddrs[b.condTarget])
			case termJump:
				pc = img.Append(program.Jump)
				img.SetTarget(pc, f.blockAddrs[b.jumpTarget])
			case termCall:
				pc = img.Append(program.Call)
				img.SetTarget(pc, g.funcs[b.callee].entry)
			case termIndJump:
				pc = img.Append(program.IndJump)
				b.beh.targets = make([]uint64, len(b.indTargets))
				for i, t := range b.indTargets {
					b.beh.targets[i] = f.blockAddrs[t]
				}
			case termIndCall:
				pc = img.Append(program.IndCall)
				b.beh.targets = make([]uint64, len(b.indCallees))
				for i, c := range b.indCallees {
					b.beh.targets[i] = g.funcs[c].entry
				}
			case termReturn:
				img.Append(program.Return)
			}
			*info = append(*info, b.beh)
		}
	}
}
