package ras

import (
	"testing"
	"testing/quick"
)

func TestNewPanicsOnBadDepth(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New(0) did not panic")
		}
	}()
	New(0)
}

func TestPushPopLIFO(t *testing.T) {
	r := New(8)
	r.Push(1)
	r.Push(2)
	r.Push(3)
	if r.Top() != 3 || r.Size() != 3 {
		t.Errorf("Top=%d Size=%d", r.Top(), r.Size())
	}
	for want := uint64(3); want >= 1; want-- {
		if got := r.Pop(); got != want {
			t.Fatalf("Pop = %d, want %d", got, want)
		}
	}
	if r.Size() != 0 {
		t.Errorf("Size after drain = %d", r.Size())
	}
}

func TestUnderflow(t *testing.T) {
	r := New(4)
	if got := r.Pop(); got != 0 {
		t.Errorf("empty Pop = %d", got)
	}
	if r.Underflows != 1 {
		t.Errorf("Underflows = %d", r.Underflows)
	}
	if r.Top() != 0 {
		t.Errorf("empty Top = %d", r.Top())
	}
	// Still usable after underflow.
	r.Push(9)
	if r.Pop() != 9 {
		t.Error("push/pop after underflow broken")
	}
}

func TestOverflowWrapsOldest(t *testing.T) {
	r := New(4)
	for i := uint64(1); i <= 6; i++ {
		r.Push(i)
	}
	if r.Size() != 4 {
		t.Errorf("Size = %d, want 4", r.Size())
	}
	// Newest 4 survive: 6,5,4,3. Entry 2 and 1 were overwritten.
	for want := uint64(6); want >= 3; want-- {
		if got := r.Pop(); got != want {
			t.Fatalf("Pop = %d, want %d", got, want)
		}
	}
	if got := r.Pop(); got != 0 {
		t.Errorf("Pop past wrapped entries = %d, want 0 (lost)", got)
	}
}

func TestSnapshotRestore(t *testing.T) {
	r := New(8)
	r.Push(10)
	r.Push(20)
	var s Snapshot
	r.Save(&s)
	r.Pop()
	r.Push(99)
	r.Push(98)
	r.Restore(&s)
	if r.Size() != 2 || r.Top() != 20 {
		t.Errorf("after restore: Size=%d Top=%d", r.Size(), r.Top())
	}
	if r.Pop() != 20 || r.Pop() != 10 {
		t.Error("restored contents wrong")
	}
}

func TestSnapshotBufferReuse(t *testing.T) {
	r := New(8)
	r.Push(1)
	var s Snapshot
	r.Save(&s)
	buf := &s.entries[0]
	r.Push(2)
	r.Save(&s)
	if &s.entries[0] != buf {
		t.Error("Save reallocated buffer")
	}
}

func TestCopyFrom(t *testing.T) {
	a := New(8)
	a.Push(5)
	a.Push(6)
	b := New(8)
	b.Push(100)
	b.CopyFrom(a)
	if b.Size() != 2 || b.Pop() != 6 || b.Pop() != 5 {
		t.Error("CopyFrom incomplete")
	}
	// a unaffected.
	if a.Size() != 2 || a.Top() != 6 {
		t.Error("CopyFrom mutated source")
	}
}

func TestReset(t *testing.T) {
	r := New(4)
	r.Push(1)
	r.Pop()
	r.Pop()
	r.Reset()
	if r.Size() != 0 || r.Pushes != 0 || r.Pops != 0 || r.Underflows != 0 {
		t.Error("Reset incomplete")
	}
}

// Property: any push/pop sequence within depth bounds behaves like a plain
// slice-backed stack.
func TestMatchesReferenceStack(t *testing.T) {
	f := func(ops []uint8) bool {
		r := New(16)
		var ref []uint64
		for i, op := range ops {
			if op%3 != 0 { // push twice as often as pop
				v := uint64(i + 1)
				r.Push(v)
				ref = append(ref, v)
				if len(ref) > 16 {
					ref = ref[1:] // model wraparound loss
				}
			} else {
				var want uint64
				if len(ref) > 0 {
					want = ref[len(ref)-1]
					ref = ref[:len(ref)-1]
				}
				if got := r.Pop(); got != want {
					return false
				}
			}
		}
		return r.Size() == len(ref)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
