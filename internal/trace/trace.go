// Package trace defines the on-disk workload format: a gzip-compressed
// file holding the static program image (the pre-decoder's ground truth)
// followed by the dynamic instruction records, in the spirit of the
// ChampSim traces the paper's methodology uses. Traces written from a
// synthetic workload replay exactly, and a loaded trace implements the
// same Oracle interface the core consumes, so file-driven and in-memory
// simulation are interchangeable.
package trace

import (
	"bufio"
	"compress/gzip"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"fdp/internal/program"
)

// magic identifies the format.
const magic = "FDPTRACE1\n"

// ErrCorrupt classifies every malformed-input failure out of Read: bad
// or truncated framing, implausible sizes, invalid instruction types or
// record flags, and gzip-level damage. Callers branch on it with
// errors.Is to tell a damaged trace file (re-generate or quarantine it)
// from an environmental I/O failure (retry it).
var ErrCorrupt = errors.New("corrupt trace input")

// corruptf builds a corrupt-input error carrying ErrCorrupt.
func corruptf(format string, args ...any) error {
	return fmt.Errorf("trace: "+format+": %w", append(args, ErrCorrupt)...)
}

// Header describes the traced workload.
type Header struct {
	Name         string
	Class        string
	Seed         uint64
	Entry        uint64
	Instructions uint64 // dynamic record count
}

// Writer serializes a header, image and dynamic records.
type Writer struct {
	zw    *gzip.Writer
	bw    *bufio.Writer
	count uint64
	buf   [binary.MaxVarintLen64]byte
}

// NewWriter starts a trace on w. The header's Instructions field is
// ignored here; the count is written by Close as a trailer record.
func NewWriter(w io.Writer, h Header, img *program.Image) (*Writer, error) {
	zw := gzip.NewWriter(w)
	bw := bufio.NewWriter(zw)
	tw := &Writer{zw: zw, bw: bw}
	if _, err := bw.WriteString(magic); err != nil {
		return nil, err
	}
	tw.writeString(h.Name)
	tw.writeString(h.Class)
	tw.writeUvarint(h.Seed)
	tw.writeUvarint(h.Entry)
	// Image: base, instruction count, then per-instruction type and (for
	// direct branches) target.
	tw.writeUvarint(img.Base())
	tw.writeUvarint(uint64(img.Size()))
	img.EachInst(func(si program.StaticInst) {
		tw.bw.WriteByte(byte(si.Type))
		if si.Type.IsDirect() {
			tw.writeUvarint(si.Target)
		}
	})
	return tw, nil
}

func (w *Writer) writeUvarint(v uint64) {
	n := binary.PutUvarint(w.buf[:], v)
	w.bw.Write(w.buf[:n])
}

func (w *Writer) writeString(s string) {
	w.writeUvarint(uint64(len(s)))
	w.bw.WriteString(s)
}

// Record flags.
const (
	flagTaken    = 1 << 0
	flagSeqNext  = 1 << 1 // NextPC == PC+4
	flagStatic   = 1 << 2 // NextPC == static target (direct taken)
	flagExplicit = 1 << 3 // explicit varint NextPC follows
)

// Record appends one executed instruction.
func (w *Writer) Record(d program.DynInst) {
	w.count++
	switch {
	case d.NextPC == d.SI.FallThrough():
		flags := byte(flagSeqNext)
		if d.Taken {
			flags |= flagTaken
		}
		w.bw.WriteByte(flags)
	case d.Taken && d.SI.Type.IsDirect() && d.NextPC == d.SI.Target:
		w.bw.WriteByte(flagTaken | flagStatic)
	default:
		flags := byte(flagExplicit)
		if d.Taken {
			flags |= flagTaken
		}
		w.bw.WriteByte(flags)
		w.writeUvarint(d.NextPC)
	}
}

// Count returns the number of records written so far.
func (w *Writer) Count() uint64 { return w.count }

// Close flushes the trace. The underlying writer is not closed.
func (w *Writer) Close() error {
	if err := w.bw.Flush(); err != nil {
		return err
	}
	return w.zw.Close()
}

// record is one decoded dynamic instruction.
type record struct {
	pc     uint64
	nextPC uint64
	taken  bool
}

// Trace is a fully-loaded trace: the image plus all dynamic records.
type Trace struct {
	Header Header
	img    *program.Image
	recs   []record
}

// Read loads a whole trace into memory.
func Read(r io.Reader) (*Trace, error) {
	zr, err := gzip.NewReader(r)
	if err != nil {
		return nil, corruptf("gzip header: %v", err)
	}
	defer zr.Close()
	br := bufio.NewReader(zr)
	got := make([]byte, len(magic))
	if _, err := io.ReadFull(br, got); err != nil {
		return nil, corruptf("reading magic: %v", err)
	}
	if string(got) != magic {
		return nil, corruptf("bad magic %q", got)
	}
	t := &Trace{}
	if t.Header.Name, err = readString(br); err != nil {
		return nil, err
	}
	if t.Header.Class, err = readString(br); err != nil {
		return nil, err
	}
	if t.Header.Seed, err = binary.ReadUvarint(br); err != nil {
		return nil, corruptf("header seed: %v", err)
	}
	if t.Header.Entry, err = binary.ReadUvarint(br); err != nil {
		return nil, corruptf("header entry: %v", err)
	}
	base, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, corruptf("image base: %v", err)
	}
	if base%program.InstBytes != 0 {
		return nil, corruptf("image base %#x not %d-byte aligned", base, program.InstBytes)
	}
	n, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, corruptf("image size: %v", err)
	}
	const maxImageInsts = 1 << 26 // 256MB of code: far beyond any workload
	if n == 0 || n > maxImageInsts {
		return nil, corruptf("implausible image size %d", n)
	}
	img := program.NewImage(base)
	for i := uint64(0); i < n; i++ {
		tb, err := br.ReadByte()
		if err != nil {
			return nil, corruptf("image truncated: %v", err)
		}
		ty := program.InstType(tb)
		if int(ty) >= program.NumInstTypes {
			return nil, corruptf("bad instruction type %d", tb)
		}
		pc := img.Append(ty)
		if ty.IsDirect() {
			tgt, err := binary.ReadUvarint(br)
			if err != nil {
				return nil, corruptf("branch target: %v", err)
			}
			img.SetTarget(pc, tgt)
		}
	}
	if err := img.Freeze(); err != nil {
		return nil, corruptf("invalid image: %v", err)
	}
	t.img = img

	// The dynamic-record section is the remainder of the stream; slurp it
	// and decode from the byte slice in one batched pass, which avoids the
	// per-byte bufio interface calls of the original reader. A failure
	// here is where gzip checksum damage surfaces.
	data, err := io.ReadAll(br)
	if err != nil {
		return nil, corruptf("record section: %v", err)
	}
	if t.recs, err = decodeRecords(data, img, t.Header.Entry); err != nil {
		return nil, err
	}
	t.Header.Instructions = uint64(len(t.recs))
	if len(t.recs) == 0 {
		return nil, corruptf("no dynamic records")
	}
	return t, nil
}

// decodeRecords decodes the whole dynamic-record section from a byte
// slice. Each record is a flags byte, optionally followed by an explicit
// varint NextPC; the section ends at the end of the slice. A truncated or
// overlong varint is an error (the section boundary is exact).
func decodeRecords(data []byte, img *program.Image, entry uint64) ([]record, error) {
	// Most records are a single flags byte, so len(data) is a tight upper
	// bound on the record count; reserving it up front avoids regrowth.
	recs := make([]record, 0, len(data))
	pc := entry
	for i := 0; i < len(data); {
		flags := data[i]
		i++
		rec := record{pc: pc, taken: flags&flagTaken != 0}
		si := img.AtOrSequential(pc)
		switch {
		case flags&flagSeqNext != 0:
			rec.nextPC = si.FallThrough()
		case flags&flagStatic != 0:
			rec.nextPC = si.Target
		case flags&flagExplicit != 0:
			v, n := binary.Uvarint(data[i:])
			if n <= 0 {
				if n == 0 {
					return nil, corruptf("record %d: truncated varint", len(recs))
				}
				return nil, corruptf("record %d: varint overflows 64 bits", len(recs))
			}
			rec.nextPC = v
			i += n
		default:
			return nil, corruptf("bad record flags %#x", flags)
		}
		recs = append(recs, rec)
		pc = rec.nextPC
	}
	return recs, nil
}

// decodeRecordsReference is the original one-record-at-a-time decoder,
// kept as the differential oracle for FuzzBatchedDecode: decodeRecords
// must accept exactly the inputs this accepts and produce identical
// records.
func decodeRecordsReference(br io.ByteReader, img *program.Image, entry uint64) ([]record, error) {
	var recs []record
	pc := entry
	for {
		flags, err := br.ReadByte()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		rec := record{pc: pc, taken: flags&flagTaken != 0}
		si := img.AtOrSequential(pc)
		switch {
		case flags&flagSeqNext != 0:
			rec.nextPC = si.FallThrough()
		case flags&flagStatic != 0:
			rec.nextPC = si.Target
		case flags&flagExplicit != 0:
			if rec.nextPC, err = binary.ReadUvarint(br); err != nil {
				return nil, err
			}
		default:
			return nil, fmt.Errorf("trace: bad record flags %#x", flags)
		}
		recs = append(recs, rec)
		pc = rec.nextPC
	}
	return recs, nil
}

func readString(br *bufio.Reader) (string, error) {
	n, err := binary.ReadUvarint(br)
	if err != nil {
		return "", corruptf("string length: %v", err)
	}
	if n > 1<<20 {
		return "", corruptf("oversized string (%d bytes)", n)
	}
	b := make([]byte, n)
	if _, err := io.ReadFull(br, b); err != nil {
		return "", corruptf("string truncated: %v", err)
	}
	return string(b), nil
}

// Image returns the static program image.
func (t *Trace) Image() *program.Image { return t.img }

// Len returns the number of dynamic records.
func (t *Trace) Len() int { return len(t.recs) }
