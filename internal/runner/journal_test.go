package runner

import (
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// jkey builds a deterministic valid 64-hex journal key.
func jkey(i int) string {
	return fmt.Sprintf("%064x", 0xfdb0+i)
}

func openTestJournal(t *testing.T, path string) *Journal {
	t.Helper()
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { j.Close() })
	return j
}

func TestJournalRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.wal")
	j := openTestJournal(t, path)
	for i := 0; i < 5; i++ {
		if err := j.Record(jkey(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Record(jkey(0)); err != nil { // dedup: no second record
		t.Fatal(err)
	}
	if j.Len() != 5 {
		t.Fatalf("Len = %d, want 5", j.Len())
	}
	j.Close()

	j2 := openTestJournal(t, path)
	if rec, trunc := j2.Recovered(); rec != 5 || trunc != 0 {
		t.Fatalf("Recovered = (%d, %d), want (5, 0)", rec, trunc)
	}
	for i := 0; i < 5; i++ {
		if !j2.Done(jkey(i)) {
			t.Fatalf("key %d lost across reopen", i)
		}
	}
	if j2.Done(jkey(99)) {
		t.Fatal("unrecorded key reported done")
	}
}

// TestJournalTornTail: a record torn mid-write (the kill -9 case) is
// truncated away on reopen; everything before it survives, and the
// journal keeps accepting appends on the clean boundary.
func TestJournalTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.wal")
	j := openTestJournal(t, path)
	for i := 0; i < 3; i++ {
		if err := j.Record(jkey(i)); err != nil {
			t.Fatal(err)
		}
	}
	j.Close()

	// Append half a record: the torn tail of an interrupted write.
	full := fmt.Sprintf("%s %08x\n", jkey(3), crc32.ChecksumIEEE([]byte(jkey(3))))
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(full[:journalRecLen/2]); err != nil {
		t.Fatal(err)
	}
	f.Close()

	j2 := openTestJournal(t, path)
	rec, trunc := j2.Recovered()
	if rec != 3 || trunc != int64(journalRecLen/2) {
		t.Fatalf("Recovered = (%d, %d), want (3, %d)", rec, trunc, journalRecLen/2)
	}
	if j2.Done(jkey(3)) {
		t.Fatal("torn record reported done")
	}
	if err := j2.Record(jkey(3)); err != nil {
		t.Fatal(err)
	}
	j2.Close()

	j3 := openTestJournal(t, path)
	if rec, trunc := j3.Recovered(); rec != 4 || trunc != 0 {
		t.Fatalf("after repair, Recovered = (%d, %d), want (4, 0)", rec, trunc)
	}
}

// TestJournalCorruptMiddleRecord: a bit flip in the middle of the file
// fails that record's CRC; recovery keeps the prefix and truncates from
// the damage onward (suffix records are re-executed, never trusted).
func TestJournalCorruptMiddleRecord(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.wal")
	j := openTestJournal(t, path)
	for i := 0; i < 4; i++ {
		if err := j.Record(jkey(i)); err != nil {
			t.Fatal(err)
		}
	}
	j.Close()

	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	b[len(journalMagic)+journalRecLen+5] ^= 0x01 // inside record 1's key
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}

	j2 := openTestJournal(t, path)
	rec, trunc := j2.Recovered()
	if rec != 1 {
		t.Fatalf("Recovered %d records, want 1 (prefix before damage)", rec)
	}
	if trunc != int64(3*journalRecLen) {
		t.Fatalf("truncated %d bytes, want %d", trunc, 3*journalRecLen)
	}
	if !j2.Done(jkey(0)) || j2.Done(jkey(1)) || j2.Done(jkey(3)) {
		t.Fatal("recovery kept the wrong records")
	}
}

// TestJournalBadMagic: a file that is not a journal is refused, never
// silently overwritten.
func TestJournalBadMagic(t *testing.T) {
	path := filepath.Join(t.TempDir(), "notes.txt")
	if err := os.WriteFile(path, []byte("my notes, do not destroy\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenJournal(path); err == nil || !strings.Contains(err.Error(), "bad magic") {
		t.Fatalf("OpenJournal on a foreign file: %v, want bad-magic error", err)
	}
	b, _ := os.ReadFile(path)
	if string(b) != "my notes, do not destroy\n" {
		t.Fatal("foreign file was modified")
	}
}

// TestJournalTornHeader: a crash during journal creation can leave a
// partial magic; that is reset to an empty journal, not refused.
func TestJournalTornHeader(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.wal")
	if err := os.WriteFile(path, []byte(journalMagic[:4]), 0o644); err != nil {
		t.Fatal(err)
	}
	j := openTestJournal(t, path)
	if j.Len() != 0 {
		t.Fatalf("Len = %d after torn-header reset", j.Len())
	}
	if err := j.Record(jkey(1)); err != nil {
		t.Fatal(err)
	}
	j.Close()
	j2 := openTestJournal(t, path)
	if !j2.Done(jkey(1)) {
		t.Fatal("record lost after torn-header reset")
	}
}

// TestJournalRejectsBadKey: only 64-hex spec hashes are recordable — a
// malformed key must not be able to corrupt the fixed-size framing.
func TestJournalRejectsBadKey(t *testing.T) {
	j := openTestJournal(t, filepath.Join(t.TempDir(), "run.wal"))
	for _, bad := range []string{"", "short", strings.Repeat("g", 64), strings.Repeat("a", 63) + "Z"} {
		if err := j.Record(bad); err == nil {
			t.Fatalf("key %q accepted", bad)
		}
	}
	if j.Len() != 0 {
		t.Fatalf("bad keys recorded: Len = %d", j.Len())
	}
}

// TestJournalNilSafe: every method on a nil journal is inert, so callers
// need no "-resume configured?" branches.
func TestJournalNilSafe(t *testing.T) {
	var j *Journal
	if j.Done("x") || j.Len() != 0 || j.Errs() != 0 {
		t.Fatal("nil journal reported state")
	}
	if err := j.Record(jkey(0)); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
}

// FuzzJournal hardens recovery against arbitrary on-disk bytes: open
// must never panic, and when it succeeds, a reopen after appending a
// fresh record must preserve both the replayed and the new keys.
func FuzzJournal(f *testing.F) {
	rec := func(i int) string {
		k := jkey(i)
		return fmt.Sprintf("%s %08x\n", k, crc32.ChecksumIEEE([]byte(k)))
	}
	f.Add([]byte(nil))
	f.Add([]byte(journalMagic))
	f.Add([]byte(journalMagic[:5]))
	f.Add([]byte(journalMagic + rec(1) + rec(2)))
	f.Add([]byte(journalMagic + rec(1) + rec(2)[:20]))
	flipped := []byte(journalMagic + rec(1) + rec(2))
	flipped[len(journalMagic)+7] ^= 0x40
	f.Add(flipped)
	f.Add([]byte("not a journal at all"))

	f.Fuzz(func(t *testing.T, data []byte) {
		path := filepath.Join(t.TempDir(), "fuzz.wal")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		j, err := OpenJournal(path)
		if err != nil {
			return
		}
		replayed, _ := j.Recovered()
		if replayed != j.Len() {
			t.Fatalf("replayed %d records but Len = %d", replayed, j.Len())
		}
		fresh := jkey(0xfff)
		wasDone := j.Done(fresh)
		if err := j.Record(fresh); err != nil {
			t.Fatal(err)
		}
		wantLen := j.Len()
		j.Close()

		j2, err := OpenJournal(path)
		if err != nil {
			t.Fatalf("reopen after clean append: %v", err)
		}
		defer j2.Close()
		if !j2.Done(fresh) {
			t.Fatal("fresh record lost on reopen")
		}
		if j2.Len() != wantLen {
			t.Fatalf("reopen Len = %d, want %d", j2.Len(), wantLen)
		}
		_ = wasDone
	})
}
