// Package stats collects and aggregates simulation statistics: the raw
// per-run counters the core increments, derived metrics (IPC, MPKI,
// starvation cycles per kilo-instruction), and the cross-workload
// aggregation rules the paper uses (geometric-mean speedup for IPC,
// arithmetic mean for MPKI).
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"fdp/internal/obs"
)

// Run holds the raw counters of one simulation run. The core and frontend
// increment these directly; all derived metrics live on methods so there is
// a single source of truth for definitions.
type Run struct {
	// Workload and configuration identification for reports.
	Workload string
	// Class is the workload family ("server", "client", "spec").
	Class  string
	Config string

	// Cycles is the number of simulated cycles in the measurement phase.
	Cycles uint64
	// Instructions is the number of retired (correct-path) instructions.
	Instructions uint64

	// Branches counts retired branch instructions of any kind.
	Branches uint64
	// CondBranches counts retired conditional branches.
	CondBranches uint64
	// TakenBranches counts retired taken branches.
	TakenBranches uint64
	// Mispredictions counts pipeline flushes caused by branch resolution
	// (wrong direction or wrong target detected at execute).
	Mispredictions uint64
	// DirMispredictions counts conditional branches whose direction was
	// wrong (a subset of Mispredictions for detected branches).
	DirMispredictions uint64
	// Misprediction breakdown by cause: wrong conditional flow, wrong
	// indirect target, wrong return target, undetected taken branch that
	// reached resolution (BTB miss not repaired by PFC).
	MispredCond     uint64
	MispredIndirect uint64
	MispredReturn   uint64
	MispredBTBMiss  uint64

	// BTBLookups and BTBHits count prediction-pipeline BTB accesses.
	BTBLookups uint64
	BTBHits    uint64
	// BTBMissTaken counts retired taken branches that missed in the BTB
	// at prediction time.
	BTBMissTaken uint64

	// L1IAccesses / L1IMisses count demand I-cache accesses (fetch-path
	// lookups from FTQ entries).
	L1IAccesses uint64
	L1IMisses   uint64
	// L1ITagProbes counts every tag-array access, including prefetch
	// probes (the dynamic-power proxy of Fig. 9).
	L1ITagProbes uint64
	// PrefetchIssued / PrefetchUseful / PrefetchRedundant count prefetch
	// requests from a dedicated prefetcher.
	PrefetchIssued    uint64
	PrefetchUseful    uint64
	PrefetchRedundant uint64

	// PFCResteers counts post-fetch-correction redirects; PFCWrong counts
	// those later undone by a pipeline flush (harmful corrections).
	PFCResteers uint64
	PFCWrong    uint64
	// HistFixupFlushes counts frontend flushes for GHR fixup on BTB-miss
	// not-taken branches (GHR2/GHR3 policies).
	HistFixupFlushes uint64

	// WrongPathFills counts demand fills whose FTQ entry was flushed
	// before any of its instructions dispatched — speculative fetch work
	// on a wrong path (it may still warm the caches).
	WrongPathFills uint64

	// StarvationCycles is the number of cycles in which the decode queue
	// held fewer than decode-width instructions (§VI-D).
	StarvationCycles uint64

	// Acct is the top-down frontend cycle-accounting vector: every
	// measured cycle is attributed to exactly one bucket of the fixed
	// taxonomy (obs.AcctBucketNames; classification rules in
	// internal/core/account.go and docs/OBSERVABILITY.md). Conservation
	// invariant: the buckets sum to Cycles, and the non-delivering
	// buckets sum to StarvationCycles.
	Acct [obs.NumAcctBuckets]uint64

	// Exposed-miss classification (§VI-G): a covered miss is filled
	// before any starvation is observed for it; fully exposed means the
	// fill was initiated only when its FTQ entry reached the head.
	MissFullyExposed     uint64
	MissPartiallyExposed uint64
	MissCovered          uint64

	// FTQOccupancySum accumulates FTQ occupancy each cycle (for mean).
	FTQOccupancySum uint64

	// WindowIPC samples IPC per fixed instruction window (phase
	// behaviour; see Sparkline).
	WindowIPC []float64
}

// IPC returns retired instructions per cycle.
func (r *Run) IPC() float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(r.Instructions) / float64(r.Cycles)
}

// BranchMPKI returns branch mispredictions per kilo-instruction.
func (r *Run) BranchMPKI() float64 { return r.perKI(r.Mispredictions) }

// L1IMPKI returns demand I-cache misses per kilo-instruction.
func (r *Run) L1IMPKI() float64 { return r.perKI(r.L1IMisses) }

// StarvationPKI returns starvation cycles per kilo-instruction.
func (r *Run) StarvationPKI() float64 { return r.perKI(r.StarvationCycles) }

// TagProbesPKI returns I-cache tag accesses per kilo-instruction.
func (r *Run) TagProbesPKI() float64 { return r.perKI(r.L1ITagProbes) }

// BTBHitRate returns the prediction-pipeline BTB hit rate.
func (r *Run) BTBHitRate() float64 {
	if r.BTBLookups == 0 {
		return 0
	}
	return float64(r.BTBHits) / float64(r.BTBLookups)
}

// MeanFTQOccupancy returns the average FTQ occupancy over the run.
func (r *Run) MeanFTQOccupancy() float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(r.FTQOccupancySum) / float64(r.Cycles)
}

func (r *Run) perKI(c uint64) float64 {
	if r.Instructions == 0 {
		return 0
	}
	return 1000 * float64(c) / float64(r.Instructions)
}

// Speedup returns r's IPC relative to base's IPC (1.0 = equal). A nil or
// zero-IPC base yields 0 rather than NaN/Inf.
func (r *Run) Speedup(base *Run) float64 {
	if base == nil {
		return 0
	}
	b := base.IPC()
	if b == 0 {
		return 0
	}
	return r.IPC() / b
}

// Counters returns every raw counter of the run keyed by a stable
// "run."-prefixed name, for run manifests and golden-run diffing.
func (r *Run) Counters() map[string]uint64 {
	m := map[string]uint64{
		"run.cycles":                 r.Cycles,
		"run.instructions":           r.Instructions,
		"run.branches":               r.Branches,
		"run.cond_branches":          r.CondBranches,
		"run.taken_branches":         r.TakenBranches,
		"run.mispredictions":         r.Mispredictions,
		"run.dir_mispredictions":     r.DirMispredictions,
		"run.mispred_cond":           r.MispredCond,
		"run.mispred_indirect":       r.MispredIndirect,
		"run.mispred_return":         r.MispredReturn,
		"run.mispred_btb_miss":       r.MispredBTBMiss,
		"run.btb_lookups":            r.BTBLookups,
		"run.btb_hits":               r.BTBHits,
		"run.btb_miss_taken":         r.BTBMissTaken,
		"run.l1i_accesses":           r.L1IAccesses,
		"run.l1i_misses":             r.L1IMisses,
		"run.l1i_tag_probes":         r.L1ITagProbes,
		"run.prefetch_issued":        r.PrefetchIssued,
		"run.prefetch_useful":        r.PrefetchUseful,
		"run.prefetch_redundant":     r.PrefetchRedundant,
		"run.pfc_resteers":           r.PFCResteers,
		"run.pfc_wrong":              r.PFCWrong,
		"run.hist_fixup_flushes":     r.HistFixupFlushes,
		"run.wrong_path_fills":       r.WrongPathFills,
		"run.starvation_cycles":      r.StarvationCycles,
		"run.miss_fully_exposed":     r.MissFullyExposed,
		"run.miss_partially_exposed": r.MissPartiallyExposed,
		"run.miss_covered":           r.MissCovered,
		"run.ftq_occupancy_sum":      r.FTQOccupancySum,
	}
	for b, n := range r.Acct {
		m[obs.AcctCounterName(b)] = n
	}
	return m
}

// AcctTotal returns the sum of the cycle-accounting buckets; the
// conservation invariant requires it to equal Cycles exactly.
func (r *Run) AcctTotal() uint64 {
	var n uint64
	for _, v := range r.Acct {
		n += v
	}
	return n
}

// AcctShare returns bucket b's fraction of all accounted cycles (0 when
// nothing was accounted).
func (r *Run) AcctShare(b int) float64 {
	total := r.AcctTotal()
	if total == 0 {
		return 0
	}
	return float64(r.Acct[b]) / float64(total)
}

// Derived returns the run's derived rates keyed by name, for manifests.
func (r *Run) Derived() map[string]float64 {
	return map[string]float64{
		"ipc":                r.IPC(),
		"branch_mpki":        r.BranchMPKI(),
		"l1i_mpki":           r.L1IMPKI(),
		"starvation_pki":     r.StarvationPKI(),
		"tag_probes_pki":     r.TagProbesPKI(),
		"btb_hit_rate":       r.BTBHitRate(),
		"mean_ftq_occupancy": r.MeanFTQOccupancy(),
	}
}

// Set is a collection of runs of the same configuration over multiple
// workloads, aggregated the way the paper reports: geometric mean for
// IPC-derived speedups, arithmetic mean for MPKI-like rates.
type Set struct {
	Config string
	Runs   []*Run
	// Manifests holds the per-run observability manifests when the
	// experiment runner was asked to record them (Options.Metrics); it is
	// parallel to Runs.
	Manifests []*obs.Manifest
}

// Add appends a run.
func (s *Set) Add(r *Run) { s.Runs = append(s.Runs, r) }

// ByWorkload returns the run for the named workload, or nil.
func (s *Set) ByWorkload(name string) *Run {
	for _, r := range s.Runs {
		if r.Workload == name {
			return r
		}
	}
	return nil
}

// GeoMeanSpeedup returns the geometric-mean speedup of s over base,
// pairing runs by workload name. Workloads missing from either set are
// skipped.
func (s *Set) GeoMeanSpeedup(base *Set) float64 {
	return s.GeoMeanSpeedupWhere(base, nil)
}

// GeoMeanSpeedupWhere is GeoMeanSpeedup restricted to runs accepted by
// filter (nil accepts all). A nil or empty base yields 0.
func (s *Set) GeoMeanSpeedupWhere(base *Set, filter func(*Run) bool) float64 {
	if base == nil {
		return 0
	}
	var logSum float64
	n := 0
	for _, r := range s.Runs {
		if filter != nil && !filter(r) {
			continue
		}
		b := base.ByWorkload(r.Workload)
		if b == nil {
			continue
		}
		sp := r.Speedup(b)
		if sp <= 0 {
			continue
		}
		logSum += math.Log(sp)
		n++
	}
	if n == 0 {
		return 0
	}
	return math.Exp(logSum / float64(n))
}

// ClassSpeedup returns the geometric-mean speedup over base for runs of
// the given workload class.
func (s *Set) ClassSpeedup(base *Set, class string) float64 {
	return s.GeoMeanSpeedupWhere(base, func(r *Run) bool { return r.Class == class })
}

// MeanBranchMPKI returns the arithmetic mean branch MPKI across runs.
func (s *Set) MeanBranchMPKI() float64 {
	return s.mean(func(r *Run) float64 { return r.BranchMPKI() })
}

// MeanL1IMPKI returns the arithmetic mean L1I MPKI across runs.
func (s *Set) MeanL1IMPKI() float64 {
	return s.mean(func(r *Run) float64 { return r.L1IMPKI() })
}

// MeanStarvationPKI returns the arithmetic mean starvation cycles per KI.
func (s *Set) MeanStarvationPKI() float64 {
	return s.mean(func(r *Run) float64 { return r.StarvationPKI() })
}

// MeanTagProbesPKI returns the arithmetic mean I-cache tag probes per KI.
func (s *Set) MeanTagProbesPKI() float64 {
	return s.mean(func(r *Run) float64 { return r.TagProbesPKI() })
}

func (s *Set) mean(f func(*Run) float64) float64 {
	if len(s.Runs) == 0 {
		return 0
	}
	var sum float64
	for _, r := range s.Runs {
		sum += f(r)
	}
	return sum / float64(len(s.Runs))
}

// GeoMean returns the geometric mean of xs (must all be positive; zeros
// and negatives are skipped).
func GeoMean(xs []float64) float64 {
	var logSum float64
	n := 0
	for _, x := range xs {
		if x <= 0 {
			continue
		}
		logSum += math.Log(x)
		n++
	}
	if n == 0 {
		return 0
	}
	return math.Exp(logSum / float64(n))
}

// GeoMeanIPC returns the geometric-mean IPC across runs — the paper's
// cross-workload aggregation rule for absolute IPC, and the summary row
// every sweep frontend prints. Nil runs are skipped.
func GeoMeanIPC(runs []*Run) float64 {
	ipcs := make([]float64, 0, len(runs))
	for _, r := range runs {
		if r == nil {
			continue
		}
		ipcs = append(ipcs, r.IPC())
	}
	return GeoMean(ipcs)
}

// Mean returns the arithmetic mean of xs (empty slice yields 0).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Sparkline renders values as a compact unicode bar chart (▁▂▃▄▅▆▇█),
// scaled to the series maximum. Empty input yields an empty string.
func Sparkline(values []float64) string {
	if len(values) == 0 {
		return ""
	}
	bars := []rune("▁▂▃▄▅▆▇█")
	max := values[0]
	for _, v := range values {
		if v > max {
			max = v
		}
	}
	if max <= 0 {
		max = 1
	}
	out := make([]rune, len(values))
	for i, v := range values {
		idx := int(v / max * float64(len(bars)-1))
		if idx < 0 {
			idx = 0
		}
		if idx >= len(bars) {
			idx = len(bars) - 1
		}
		out[i] = bars[idx]
	}
	return string(out)
}

// Table is a simple text table builder for experiment reports.
type Table struct {
	title  string
	header []string
	rows   [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, header ...string) *Table {
	return &Table{title: title, header: header}
}

// AddRow appends a row; cells are formatted with %v.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.3f", v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

// NumRows returns the number of data rows.
func (t *Table) NumRows() int { return len(t.rows) }

// SortByColumn sorts rows by the numeric value of column i (ascending).
func (t *Table) SortByColumn(i int) {
	sort.SliceStable(t.rows, func(a, b int) bool {
		var x, y float64
		fmt.Sscanf(t.rows[a][i], "%f", &x)
		fmt.Sscanf(t.rows[b][i], "%f", &y)
		return x < y
	})
}

// CSV renders the table as comma-separated values (header + rows). Cells
// containing commas or quotes are quoted.
func (t *Table) CSV() string {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(c, ",\"\n") {
				b.WriteByte('"')
				b.WriteString(strings.ReplaceAll(c, "\"", "\"\""))
				b.WriteByte('"')
			} else {
				b.WriteString(c)
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.header)
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}

// Title returns the table title.
func (t *Table) Title() string { return t.title }

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.title != "" {
		b.WriteString("== " + t.title + " ==\n")
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.header)
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}
