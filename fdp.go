// Package fdp is a trace-driven CPU-frontend simulator reproducing
// "Re-establishing Fetch-Directed Instruction Prefetching: An Industry
// Perspective" (Ishii, Lee, Nathella, Sunwoo — ISPASS 2021).
//
// The library models a decoupled frontend — a branch prediction pipeline
// (TAGE/ITTAGE/BTB/RAS) running ahead of instruction fetch through a Fetch
// Target Queue — with the paper's two FDP improvements (taken-only branch
// target history and post-fetch correction), a full instruction-side
// memory hierarchy, the IPC-1 prefetcher baselines, synthetic
// frontend-bound workloads, and one experiment runner per table and figure
// in the paper's evaluation.
//
// Quick start:
//
//	w := fdp.WorkloadByName("server_a")
//	base, _ := fdp.Simulate(fdp.BaselineConfig(), w, 200_000, 800_000)
//	fdpRun, _ := fdp.Simulate(fdp.DefaultConfig(), w, 200_000, 800_000)
//	fmt.Printf("FDP speedup: %.1f%%\n", 100*(fdpRun.Speedup(base)-1))
package fdp

import (
	"fmt"

	"fdp/internal/core"
	"fdp/internal/experiments"
	"fdp/internal/ftq"
	"fdp/internal/obs"
	"fdp/internal/stats"
	"fdp/internal/synth"
)

// Config is the full machine configuration (frontend geometry, predictors,
// history policy, caches, prefetcher, backend). See core.Config for field
// documentation.
type Config = core.Config

// Run holds the measured statistics of one simulation.
type Run = stats.Run

// Set aggregates runs of one configuration across workloads with the
// paper's rules (geomean speedup, arithmetic-mean MPKI).
type Set = stats.Set

// Workload is an immutable synthetic program plus branch behaviour models.
type Workload = synth.Workload

// WorkloadParams parameterizes workload generation.
type WorkloadParams = synth.Params

// History policies (Table V).
const (
	HistTHR      = core.HistTHR
	HistGHRNoFix = core.HistGHRNoFix
	HistGHRFix   = core.HistGHRFix
	HistIdeal    = core.HistIdeal
)

// BTB allocation policies.
const (
	AllocTakenOnly = core.AllocTakenOnly
	AllocAll       = core.AllocAll
)

// Direction predictors (Fig. 12, plus the extension predictors).
const (
	DirTAGE9      = core.DirTAGE9
	DirTAGE18     = core.DirTAGE18
	DirTAGE36     = core.DirTAGE36
	DirGshare     = core.DirGshare
	DirPerceptron = core.DirPerceptron
	DirTAGESCL24  = core.DirTAGESCL24
	DirTAGESCL64  = core.DirTAGESCL64
	DirPerfect    = core.DirPerfect
)

// DefaultConfig returns the paper's FDP design (Table IV): 24-entry FTQ,
// PFC, taken-only target history, 8K-entry BTB, TAGE-18KB.
func DefaultConfig() Config { return core.DefaultConfig() }

// BaselineConfig returns the paper's baseline: no FDP run-ahead (2-entry
// FTQ), no PFC, no prefetching.
func BaselineConfig() Config { return core.BaselineConfig() }

// StandardWorkloads returns the 12 standard workloads (4 server, 4 client,
// 4 SPEC-like) used by the paper experiments.
func StandardWorkloads() []*Workload { return synth.StandardWorkloads() }

// WorkloadByName returns a standard workload by name (e.g. "server_a"),
// or nil if unknown.
func WorkloadByName(name string) *Workload { return synth.ByName(name) }

// WorkloadNames lists the standard workload names.
func WorkloadNames() []string { return synth.Names() }

// GenerateWorkload builds a custom workload from parameters and a seed.
func GenerateWorkload(p WorkloadParams, class string, seed uint64) (*Workload, error) {
	return synth.Generate(p, class, seed)
}

// LoadWorkloadSpec reads, validates and compiles the declarative
// workload spec (YAML) at path — mixes and phases included. The
// compiled workload carries the spec's canonical content hash, which
// the run cache folds into result and checkpoint keys. See
// docs/WORKLOADS.md for the schema and cookbook.
func LoadWorkloadSpec(path string) (*Workload, error) { return synth.LoadSpecFile(path) }

// ParseWorkloadList resolves a comma-separated workload list: standard
// names ("server_a"), @file.yaml spec references, or "all" / "" for the
// standard suite.
func ParseWorkloadList(s string) ([]*Workload, error) { return synth.ParseList(s) }

// Simulate runs cfg on the workload for warmup + measure retired
// instructions and returns the measurement statistics.
func Simulate(cfg Config, w *Workload, warmup, measure uint64) (*Run, error) {
	if w == nil {
		return nil, fmt.Errorf("fdp: nil workload")
	}
	r, err := core.Simulate(cfg, w.NewStream(), w.Name, warmup, measure)
	if r != nil {
		r.Class = w.Class
	}
	return r, err
}

// FTQCost returns the Table III hardware cost for an n-entry FTQ (195
// bytes for the paper's 24 entries).
func FTQCost(n int) ftq.HardwareCost { return ftq.Cost(n) }

// Probes is an observability probe set: named counters, power-of-two
// bucket histograms (FTQ/MSHR occupancy, prefetch-to-use distance, PFC
// re-steer depth, L1I miss latency, ...) and an optional ring-buffered
// pipeline event tracer. See docs/OBSERVABILITY.md.
type Probes = obs.Probes

// Manifest is the single-document record of one observed run (config,
// seed, all counters and histograms); the golden-run regression harness
// diffs these byte-for-byte.
type Manifest = obs.Manifest

// NewProbes creates a probe set with the canonical histograms registered.
func NewProbes() *Probes { return obs.NewProbes() }

// SimulateObserved is Simulate with an observability probe set attached
// (nil probes behave exactly like Simulate).
func SimulateObserved(cfg Config, w *Workload, warmup, measure uint64, p *Probes) (*Run, error) {
	if w == nil {
		return nil, fmt.Errorf("fdp: nil workload")
	}
	r, err := core.SimulateObserved(cfg, w.NewStream(), w.Name, warmup, measure, p)
	if r != nil {
		r.Class = w.Class
	}
	return r, err
}

// RunManifest packages an observed run into its manifest document.
func RunManifest(cfg Config, w *Workload, r *Run, p *Probes, warmup, measure uint64) *Manifest {
	return core.Manifest(cfg, r, p, w.Seed, warmup, measure)
}

// Experiment is one reproducible table or figure from the paper.
type Experiment = experiments.Experiment

// ExperimentOptions control experiment run lengths and workloads.
type ExperimentOptions = experiments.Options

// ExperimentResult is a rendered experiment output.
type ExperimentResult = experiments.Result

// Experiments returns every paper experiment in order.
func Experiments() []Experiment { return experiments.All() }

// ExperimentByID looks up one experiment (e.g. "fig7").
func ExperimentByID(id string) (Experiment, bool) { return experiments.ByID(id) }

// DefaultExperimentOptions returns the scaled-down standard evaluation.
func DefaultExperimentOptions() ExperimentOptions { return experiments.DefaultOptions() }

// QuickExperimentOptions returns the fast smoke evaluation.
func QuickExperimentOptions() ExperimentOptions { return experiments.QuickOptions() }

// FullExperimentOptions returns the heavyweight evaluation.
func FullExperimentOptions() ExperimentOptions { return experiments.FullOptions() }

// GeoMean is the paper's IPC aggregation rule.
func GeoMean(xs []float64) float64 { return stats.GeoMean(xs) }
