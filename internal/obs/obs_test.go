package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"reflect"
	"testing"
)

func TestBucketBounds(t *testing.T) {
	cases := []struct {
		v      uint64
		bucket int
		lo, hi uint64
	}{
		{0, 0, 0, 0},
		{1, 1, 1, 1},
		{2, 2, 2, 3},
		{3, 2, 2, 3},
		{4, 3, 4, 7},
		{255, 8, 128, 255},
		{256, 9, 256, 511},
		{math.MaxUint64, 64, 1 << 63, math.MaxUint64},
	}
	for _, c := range cases {
		if got := BucketIndex(c.v); got != c.bucket {
			t.Errorf("BucketIndex(%d) = %d, want %d", c.v, got, c.bucket)
		}
		lo, hi := BucketBounds(c.bucket)
		if lo != c.lo || hi != c.hi {
			t.Errorf("BucketBounds(%d) = [%d,%d], want [%d,%d]", c.bucket, lo, hi, c.lo, c.hi)
		}
		if c.v < lo || c.v > hi {
			t.Errorf("value %d outside its own bucket [%d,%d]", c.v, lo, hi)
		}
	}
}

func TestHistogramObserve(t *testing.T) {
	var h Histogram
	for _, v := range []uint64{0, 1, 1, 7, 100} {
		h.Observe(v)
	}
	if h.Count() != 5 || h.Sum() != 109 {
		t.Fatalf("count/sum = %d/%d, want 5/109", h.Count(), h.Sum())
	}
	s := h.Snapshot()
	if s.Min != 0 || s.Max != 100 {
		t.Fatalf("min/max = %d/%d, want 0/100", s.Min, s.Max)
	}
	var total uint64
	for _, b := range s.Buckets {
		total += b.Count
	}
	if total != 5 {
		t.Fatalf("bucket counts sum to %d, want 5", total)
	}
	if got := h.Bucket(BucketIndex(1)); got != 2 {
		t.Fatalf("bucket for value 1 holds %d, want 2", got)
	}
}

func TestNilReceiversAreNoOps(t *testing.T) {
	var h *Histogram
	var c *Counter
	var tr *Tracer
	h.Observe(3)
	c.Inc()
	c.Add(5)
	tr.Emit(EvFill, 1, 2)
	tr.SetCycle(9)
	tr.Reset()
	if h.Count() != 0 || c.Value() != 0 || tr.Len() != 0 || tr.Dropped() != 0 {
		t.Fatal("nil receivers must observe nothing")
	}
	var p *Probes
	p.Reset() // must not panic
	if err := tr.WriteJSONL(&bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
}

func TestRegistry(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("a.count")
	if r.Counter("a.count") != c {
		t.Fatal("counter not interned")
	}
	c.Add(3)
	h := r.Histogram("a.hist")
	h.Observe(10)
	if got := r.CounterValues()["a.count"]; got != 3 {
		t.Fatalf("counter value %d, want 3", got)
	}
	if got := r.HistogramSnapshots()["a.hist"].Count; got != 1 {
		t.Fatalf("histogram count %d, want 1", got)
	}
	if names := r.Names(); !reflect.DeepEqual(names, []string{"a.count", "a.hist"}) {
		t.Fatalf("names = %v", names)
	}
	r.Reset()
	if c.Value() != 0 || h.Count() != 0 {
		t.Fatal("reset did not zero metrics")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("cross-type name reuse must panic")
		}
	}()
	r.Histogram("a.count")
}

func TestTracerRing(t *testing.T) {
	tr := NewTracer(4)
	for i := 0; i < 6; i++ {
		tr.SetCycle(uint64(i))
		tr.Emit(EvFTQEnqueue, uint64(i), 0)
	}
	if tr.Len() != 4 || tr.Dropped() != 2 {
		t.Fatalf("len/dropped = %d/%d, want 4/2", tr.Len(), tr.Dropped())
	}
	evs := tr.Events(nil)
	if len(evs) != 4 || evs[0].Cycle != 2 || evs[3].Cycle != 5 {
		t.Fatalf("ring kept %v, want cycles 2..5", evs)
	}
	tr.Reset()
	if tr.Len() != 0 || tr.Dropped() != 0 {
		t.Fatal("reset did not clear ring")
	}
}

func TestEventJSONLRoundTrip(t *testing.T) {
	tr := NewTracer(16)
	tr.SetCycle(7)
	tr.Emit(EvResteer, 0x4000, 3)
	tr.Emit(EvFlush, 0x8000, 12)
	var buf bytes.Buffer
	if err := WriteRunTrace(&buf, "cfg/workload", tr); err != nil {
		t.Fatal(err)
	}
	evs, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	want := tr.Events(nil)
	if !reflect.DeepEqual(evs, want) {
		t.Fatalf("round trip = %v, want %v", evs, want)
	}
}

func TestManifestCanonical(t *testing.T) {
	p := NewProbes()
	p.FTQOcc.Observe(3)
	p.Reg.Counter("x.count").Add(2)
	info := RunInfo{Workload: "w", Class: "server", Seed: 42, Warmup: 10, Measure: 20}
	m1 := NewManifest(info, p, map[string]uint64{"run.cycles": 100}, map[string]float64{"ipc": 1.5})
	m2 := NewManifest(info, p, map[string]uint64{"run.cycles": 100}, map[string]float64{"ipc": 1.5})
	b1, err := m1.MarshalIndent()
	if err != nil {
		t.Fatal(err)
	}
	b2, _ := m2.MarshalIndent()
	if !bytes.Equal(b1, b2) {
		t.Fatal("manifest encoding is not canonical")
	}
	var back Manifest
	if err := json.Unmarshal(b1, &back); err != nil {
		t.Fatal(err)
	}
	if back.Counters["run.cycles"] != 100 || back.Counters["x.count"] != 2 {
		t.Fatalf("counters = %v", back.Counters)
	}
	if back.Histograms[MetricFTQOccupancy].Count != 1 {
		t.Fatal("histogram snapshot missing from manifest")
	}
}

func TestHistogramQuantile(t *testing.T) {
	var empty HistogramSnapshot
	if got := empty.Quantile(0.5); got != 0 {
		t.Fatalf("empty quantile = %v", got)
	}
	var nilH *Histogram
	if got := nilH.Quantile(0.99); got != 0 {
		t.Fatalf("nil histogram quantile = %v", got)
	}

	// 100 distinct values 1..100: power-of-two buckets make the estimate
	// coarse, but the interpolated result must stay within the bucket the
	// true quantile falls in (a factor-of-two band).
	var h Histogram
	for v := uint64(1); v <= 100; v++ {
		h.Observe(v)
	}
	for _, c := range []struct {
		q      float64
		lo, hi float64
	}{
		{0, 1, 1},      // clamps to Min
		{-1, 1, 1},     // below-range clamps to Min
		{1, 100, 100},  // clamps to Max
		{2, 100, 100},  // above-range clamps to Max
		{0.5, 32, 64},  // true p50 = 50
		{0.9, 64, 100}, // true p90 = 90, clamped to Max at most
		{0.99, 64, 100},
	} {
		got := h.Quantile(c.q)
		if got < c.lo || got > c.hi {
			t.Errorf("Quantile(%v) = %v, want in [%v, %v]", c.q, got, c.lo, c.hi)
		}
	}
	// Monotonic in q.
	prev := h.Quantile(0)
	for _, q := range []float64{0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1} {
		got := h.Quantile(q)
		if got < prev {
			t.Fatalf("Quantile not monotonic: q=%v gives %v < %v", q, got, prev)
		}
		prev = got
	}

	// Single-value histogram: every quantile is that value.
	var one Histogram
	one.Observe(42)
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if got := one.Quantile(q); got != 42 {
			t.Fatalf("single-value Quantile(%v) = %v", q, got)
		}
	}
}
