// yaml.go implements the small YAML subset workload specs are written
// in: block mappings, block sequences, scalars (null, bool, int, float,
// string with single or double quotes), nesting by space indentation and
// '#' comments. Flow style ({...}, [...]), anchors, tags, multi-document
// streams and multi-line scalars are deliberately out of scope — specs
// that need them are specs that have grown too clever. The subset is
// documented in docs/WORKLOADS.md; parse errors carry line numbers.
package wspec

import (
	"fmt"
	"strconv"
	"strings"
)

// Parser limits. Specs are hand-written files of at most a few hundred
// lines; the caps exist so fuzzed inputs cannot run the parser away.
const (
	maxYAMLBytes = 1 << 20
	maxYAMLLines = 10_000
	maxYAMLDepth = 32
)

// yamlError is a parse error at a 1-based line number.
type yamlError struct {
	line int
	msg  string
}

func (e *yamlError) Error() string { return fmt.Sprintf("line %d: %s", e.line, e.msg) }

func yerrf(line int, format string, args ...interface{}) error {
	return &yamlError{line: line, msg: fmt.Sprintf(format, args...)}
}

// yline is one pre-processed input line with content.
type yline struct {
	num    int // 1-based source line
	indent int // leading spaces
	text   string
}

// parseYAML parses the document into nested map[string]any / []any /
// scalar values. The empty document parses to nil.
func parseYAML(data []byte) (interface{}, error) {
	if len(data) > maxYAMLBytes {
		return nil, fmt.Errorf("document larger than %d bytes", maxYAMLBytes)
	}
	raw := strings.Split(string(data), "\n")
	if len(raw) > maxYAMLLines {
		return nil, fmt.Errorf("document longer than %d lines", maxYAMLLines)
	}
	var lines []yline
	for i, l := range raw {
		l = strings.TrimRight(l, "\r")
		trimmed := strings.TrimLeft(l, " ")
		if trimmed == "" || strings.HasPrefix(trimmed, "#") {
			continue // blank and comment-only lines may contain anything
		}
		if strings.ContainsRune(l, '\t') {
			return nil, yerrf(i+1, "tab character in indentation or content (use spaces)")
		}
		lines = append(lines, yline{num: i + 1, indent: len(l) - len(trimmed), text: trimmed})
	}
	if len(lines) == 0 {
		return nil, nil
	}
	p := &yparser{lines: lines}
	v, err := p.parseBlock(lines[0].indent, 0)
	if err != nil {
		return nil, err
	}
	if p.pos != len(p.lines) {
		return nil, yerrf(p.lines[p.pos].num, "unexpected de-indented content")
	}
	return v, nil
}

type yparser struct {
	lines []yline
	pos   int
}

// parseBlock parses the run of lines at exactly this indentation level
// as either a mapping or a sequence (decided by the first line).
func (p *yparser) parseBlock(indent, depth int) (interface{}, error) {
	if depth > maxYAMLDepth {
		return nil, yerrf(p.lines[p.pos].num, "nesting deeper than %d levels", maxYAMLDepth)
	}
	if isSeqItem(p.lines[p.pos].text) {
		return p.parseSequence(indent, depth)
	}
	return p.parseMapping(indent, depth)
}

func isSeqItem(text string) bool {
	return text == "-" || strings.HasPrefix(text, "- ")
}

func (p *yparser) parseMapping(indent, depth int) (interface{}, error) {
	m := map[string]interface{}{}
	for p.pos < len(p.lines) {
		l := p.lines[p.pos]
		if l.indent < indent {
			break
		}
		if l.indent > indent {
			return nil, yerrf(l.num, "unexpected indentation (expected %d spaces)", indent)
		}
		if isSeqItem(l.text) {
			return nil, yerrf(l.num, "sequence item in a mapping")
		}
		key, rest, err := splitKey(l)
		if err != nil {
			return nil, err
		}
		if _, dup := m[key]; dup {
			return nil, yerrf(l.num, "duplicate key %q", key)
		}
		p.pos++
		if rest != "" {
			v, err := parseScalar(rest, l.num)
			if err != nil {
				return nil, err
			}
			m[key] = v
			continue
		}
		// No inline value: either a nested block, or an empty (null) value.
		if p.pos < len(p.lines) && p.lines[p.pos].indent > indent {
			v, err := p.parseBlock(p.lines[p.pos].indent, depth+1)
			if err != nil {
				return nil, err
			}
			m[key] = v
			continue
		}
		m[key] = nil
	}
	return m, nil
}

func (p *yparser) parseSequence(indent, depth int) (interface{}, error) {
	var seq []interface{}
	for p.pos < len(p.lines) {
		l := p.lines[p.pos]
		if l.indent < indent {
			break
		}
		if l.indent > indent {
			return nil, yerrf(l.num, "unexpected indentation (expected %d spaces)", indent)
		}
		if !isSeqItem(l.text) {
			return nil, yerrf(l.num, "expected a '- ' sequence item")
		}
		rest := strings.TrimPrefix(strings.TrimPrefix(l.text, "-"), " ")
		if rest == "" {
			// "-" alone: the item is the nested block below.
			p.pos++
			if p.pos < len(p.lines) && p.lines[p.pos].indent > indent {
				v, err := p.parseBlock(p.lines[p.pos].indent, depth+1)
				if err != nil {
					return nil, err
				}
				seq = append(seq, v)
			} else {
				seq = append(seq, nil)
			}
			continue
		}
		// "- key: value" starts an inline mapping whose remaining keys sit
		// below, indented past the dash; "- scalar" is a scalar item.
		if inlineMapStart(rest) {
			itemIndent := l.indent + (len(l.text) - len(rest))
			p.lines[p.pos] = yline{num: l.num, indent: itemIndent, text: rest}
			item, err := p.parseMapping(itemIndent, depth+1)
			if err != nil {
				return nil, err
			}
			seq = append(seq, item)
			continue
		}
		p.pos++
		v, err := parseScalar(rest, l.num)
		if err != nil {
			return nil, err
		}
		seq = append(seq, v)
	}
	return seq, nil
}

// inlineMapStart reports whether a sequence item body starts a mapping
// ("key: value" or "key:"), as opposed to being a plain scalar.
func inlineMapStart(rest string) bool {
	if strings.HasPrefix(rest, "\"") || strings.HasPrefix(rest, "'") {
		return false
	}
	i := strings.Index(rest, ":")
	if i <= 0 {
		return false
	}
	if i+1 < len(rest) && rest[i+1] != ' ' {
		return false // "a:b" is a scalar, "a: b" a mapping
	}
	return true
}

// splitKey splits "key: value" / "key:"; keys are plain identifiers.
func splitKey(l yline) (key, rest string, err error) {
	i := strings.Index(l.text, ":")
	if i <= 0 {
		return "", "", yerrf(l.num, "expected 'key: value', got %q", l.text)
	}
	if i+1 < len(l.text) && l.text[i+1] != ' ' {
		return "", "", yerrf(l.num, "missing space after ':' in %q", l.text)
	}
	key = strings.TrimSpace(l.text[:i])
	if key == "" || strings.ContainsAny(key, "\"' {}[]#&*") {
		return "", "", yerrf(l.num, "invalid key %q", l.text[:i])
	}
	return key, stripComment(strings.TrimSpace(l.text[i+1:])), nil
}

// stripComment removes a trailing ' #...' comment from an unquoted
// scalar (quoted scalars keep their hashes).
func stripComment(s string) string {
	if strings.HasPrefix(s, "\"") || strings.HasPrefix(s, "'") {
		return s
	}
	if i := strings.Index(s, " #"); i >= 0 {
		return strings.TrimSpace(s[:i])
	}
	if strings.HasPrefix(s, "#") {
		return ""
	}
	return s
}

// parseScalar converts one scalar token to nil/bool/uint64/int64/
// float64/string.
func parseScalar(s string, line int) (interface{}, error) {
	s = stripComment(s)
	switch s {
	case "", "~", "null":
		return nil, nil
	case "true":
		return true, nil
	case "false":
		return false, nil
	}
	if strings.HasPrefix(s, "\"") || strings.HasPrefix(s, "'") {
		q := s[0]
		if len(s) < 2 || s[len(s)-1] != q {
			return nil, yerrf(line, "unterminated quoted string %s", s)
		}
		body := s[1 : len(s)-1]
		if q == '"' {
			unq, err := strconv.Unquote(s)
			if err != nil {
				return nil, yerrf(line, "bad escape in %s", s)
			}
			return unq, nil
		}
		return strings.ReplaceAll(body, "''", "'"), nil
	}
	// Numbers: unsigned first (covers large seeds), then signed, then float.
	numeric := strings.ReplaceAll(s, "_", "")
	if u, err := strconv.ParseUint(numeric, 0, 64); err == nil {
		return u, nil
	}
	if i, err := strconv.ParseInt(numeric, 0, 64); err == nil {
		return i, nil
	}
	if f, err := strconv.ParseFloat(numeric, 64); err == nil {
		return f, nil
	}
	return s, nil // bare string
}
