# Tier-1 gate for this repo (see ROADMAP.md). `make ci` is what must stay
# green; the other targets are its pieces plus developer conveniences.

GO ?= go
FUZZTIME ?= 5s

.PHONY: ci build vet test race fuzz bench golden-update clean

ci: vet build race fuzz

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Each fuzz target needs its own invocation (go test allows one -fuzz
# pattern matching a single target per package).
fuzz:
	$(GO) test -run=^$$ -fuzz=FuzzHistogram -fuzztime=$(FUZZTIME) ./internal/obs
	$(GO) test -run=^$$ -fuzz=FuzzEventJSONL -fuzztime=$(FUZZTIME) ./internal/obs
	$(GO) test -run=^$$ -fuzz=FuzzRead -fuzztime=$(FUZZTIME) ./internal/trace

bench:
	$(GO) test -bench BenchmarkSimulatorThroughput -benchtime 2x -run=^$$ .

# Regenerate the golden-run manifests after an intentional simulator
# change; review the diff before committing.
golden-update:
	$(GO) test -run TestGoldenManifests -update .

clean:
	$(GO) clean ./...
