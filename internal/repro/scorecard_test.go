package repro

import (
	"bytes"
	"strings"
	"testing"
)

func sampleScorecard() *Scorecard {
	return &Scorecard{
		Schema: ScorecardSchema,
		Scale:  "6 workloads, 50000 warmup + 200000 measured insts",
		Artifacts: []ArtifactScore{
			{Artifact: "fig6a", Title: "FDP vs prefetchers", Outcomes: []Outcome{
				{ID: "fdp-speedup-floor", Claim: "FDP speeds up frontend-bound workloads",
					Severity: Hard, Status: StatusPass,
					Detail: "speedup(fdp)=1.4924, want in [1.1500, inf]",
					Values: []Measurement{{Config: "fdp", Value: 1.4924, Finite: true}}},
				{ID: "prefetcher-adds-little", Claim: "EIP adds only a little on top of FDP",
					Severity: Warn, Status: StatusWarn,
					Detail: "gap -0.1200, want >= -0.1000"},
			}},
			{Artifact: "tab2", Outcomes: []Outcome{
				{ID: "ghr2-pays-fixups", Severity: Hard, Status: StatusFail,
					Detail: "fixup_flushes_pki(ghr2)=0.0000, want > 0"},
			}},
		},
	}
}

// TestScorecardRoundTrip: encode -> decode -> encode must be
// byte-identical, and the decoded document must preserve counts.
func TestScorecardRoundTrip(t *testing.T) {
	card := sampleScorecard()
	b1, err := card.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.HasSuffix(b1, []byte("\n")) {
		t.Error("Encode output missing trailing newline")
	}
	got, err := DecodeScorecard(b1)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := got.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1, b2) {
		t.Errorf("round-trip not byte-identical:\n%s\nvs\n%s", b1, b2)
	}

	pass, warn, fail := got.Counts()
	if pass != 1 || warn != 1 || fail != 1 {
		t.Errorf("Counts() = %d/%d/%d, want 1/1/1", pass, warn, fail)
	}
	if want := "repro: artifacts=2 checks=3 pass=1 warn=1 fail=1"; got.Summary() != want {
		t.Errorf("Summary() = %q, want %q", got.Summary(), want)
	}
	fails := got.HardFailures()
	if len(fails) != 1 || fails[0] != "tab2/ghr2-pays-fixups" {
		t.Errorf("HardFailures() = %v", fails)
	}
}

// TestScorecardString spot-checks the text rendering the golden test in
// cmd/report locks down byte-for-byte.
func TestScorecardString(t *testing.T) {
	s := sampleScorecard().String()
	for _, want := range []string{
		"scale: 6 workloads",
		"fig6a: FDP vs prefetchers — pass 1 / warn 1 / fail 0",
		"tab2 — pass 0 / warn 0 / fail 1",
		"FAIL",
		"measured vs expected",
		"repro: artifacts=2 checks=3 pass=1 warn=1 fail=1",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("String() missing %q:\n%s", want, s)
		}
	}
}

func TestDecodeScorecardErrors(t *testing.T) {
	tests := []struct {
		name string
		in   string
		want string
	}{
		{"garbage", "{", "scorecard"},
		{"wrong-schema", `{"schema": 99, "artifacts": []}`, "schema 99"},
		{"missing-schema", `{"artifacts": []}`, "schema 0"},
		{"empty-artifact-id", `{"schema": 1, "artifacts": [{"artifact": "", "outcomes": []}]}`, "empty id"},
		{"unknown-status", `{"schema": 1, "artifacts": [{"artifact": "f", "outcomes": [{"id": "x", "status": "maybe"}]}]}`, "unknown status"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := DecodeScorecard([]byte(tt.in))
			if err == nil || !strings.Contains(err.Error(), tt.want) {
				t.Fatalf("DecodeScorecard = %v, want error containing %q", err, tt.want)
			}
		})
	}
}
