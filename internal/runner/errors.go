package runner

import (
	"context"
	"errors"
	"fmt"
	"net"
	"strconv"
	"syscall"
	"time"

	"fdp/internal/core"
	"fdp/internal/trace"
	"fdp/internal/xrand"
)

// ErrClass is the runner's error taxonomy. Every failed job is classified
// so the scheduler can choose the right degradation: transient failures
// are retried with backoff, corrupt inputs and fatal errors are not (the
// simulator is deterministic, so re-running them reproduces the failure),
// and under -keep-going any terminal failure quarantines only its own job.
type ErrClass uint8

const (
	// ClassFatal marks deterministic failures: invariant violations, hung
	// jobs, bad configurations. Retrying cannot help.
	ClassFatal ErrClass = iota
	// ClassTransient marks failures worth retrying: job panics (possibly
	// environmental — memory pressure, a poisoned sibling) and I/O errors
	// on side outputs.
	ClassTransient
	// ClassCorruptInput marks failures of the input data, not the
	// simulator: corrupt or truncated trace files. Retrying re-reads the
	// same bytes, so these are terminal, but they indict the input.
	ClassCorruptInput
)

// String returns the class's wire name (used in error text, logs and the
// chaos harness's assertions).
func (c ErrClass) String() string {
	switch c {
	case ClassTransient:
		return "transient"
	case ClassCorruptInput:
		return "corrupt-input"
	default:
		return "fatal"
	}
}

// Sentinel failure causes, matched with errors.Is.
var (
	// ErrHung marks a job canceled by the watchdog: its heartbeat showed
	// no forward progress for the configured deadline.
	ErrHung = errors.New("runner: job hung (watchdog deadline exceeded)")
	// ErrPanic marks a job that panicked and was recovered in isolation.
	ErrPanic = errors.New("runner: job panicked")
)

// Error is one classified job failure: what failed, how it is classified,
// and how many attempts were made. It wraps the underlying cause, so
// errors.Is sees through it (e.g. errors.Is(err, ErrHung)).
type Error struct {
	// Class is the taxonomy bucket driving retry/quarantine decisions.
	Class ErrClass
	// Job is the human-readable job label ("config/workload").
	Job string
	// Attempts is how many attempts were made, the failing one included.
	Attempts int
	// Err is the underlying cause.
	Err error
}

// Error renders the classified failure.
func (e *Error) Error() string {
	if e.Attempts > 1 {
		return fmt.Sprintf("runner: job %s failed (%s, %d attempts): %v", e.Job, e.Class, e.Attempts, e.Err)
	}
	return fmt.Sprintf("runner: job %s failed (%s): %v", e.Job, e.Class, e.Err)
}

// Unwrap exposes the cause to errors.Is/As.
func (e *Error) Unwrap() error { return e.Err }

// Classify maps an arbitrary job error onto the taxonomy. A runner *Error
// keeps its embedded class; raw errors are classified by cause. Network
// weather — timeouts (context.DeadlineExceeded included), refused or
// reset connections, broken pipes — is transient: the distributed backend
// surfaces exactly these when a worker dies or a link flaps, and a retry
// against a surviving worker can succeed where the deterministic
// simulator could not.
func Classify(err error) ErrClass {
	var re *Error
	if errors.As(err, &re) {
		return re.Class
	}
	switch {
	case errors.Is(err, trace.ErrCorrupt):
		return ClassCorruptInput
	case errors.Is(err, ErrPanic):
		return ClassTransient
	case errors.Is(err, ErrHung), errors.Is(err, core.ErrInvariant):
		return ClassFatal
	case errors.Is(err, context.DeadlineExceeded):
		// A deadline is a timeout. Note that Execute's cancellation-
		// casualty check runs before classification, so a caller-imposed
		// deadline never reaches this line; what does is a per-attempt or
		// per-request timeout, which retrying may well beat.
		return ClassTransient
	case isNetTransient(err):
		return ClassTransient
	default:
		return ClassFatal
	}
}

// isNetTransient reports whether err is network weather worth retrying:
// a net.Error timeout, any net.OpError (dial/read/write failures), or
// the raw connection errnos those typically wrap.
func isNetTransient(err error) bool {
	var nerr net.Error
	if errors.As(err, &nerr) && nerr.Timeout() {
		return true
	}
	var operr *net.OpError
	if errors.As(err, &operr) {
		return true
	}
	return errors.Is(err, syscall.ECONNREFUSED) ||
		errors.Is(err, syscall.ECONNRESET) ||
		errors.Is(err, syscall.EPIPE)
}

// RetryPolicy bounds re-execution of transiently failed jobs:
// exponential backoff from Base to Cap with deterministic full jitter, so
// a retried fleet neither thunders in lockstep nor loses reproducibility
// (the jitter is a pure function of the spec hash and the attempt).
type RetryPolicy struct {
	// Attempts is the maximum number of attempts per job, the first one
	// included. Zero and one both mean "no retries".
	Attempts int
	// Base is the backoff before the first retry (default 50ms).
	Base time.Duration
	// Cap bounds the exponential growth (default 2s).
	Cap time.Duration
}

// normalized fills the policy's defaults.
func (p RetryPolicy) normalized() RetryPolicy {
	if p.Attempts < 1 {
		p.Attempts = 1
	}
	if p.Base <= 0 {
		p.Base = 50 * time.Millisecond
	}
	if p.Cap <= 0 {
		p.Cap = 2 * time.Second
	}
	if p.Cap < p.Base {
		p.Cap = p.Base
	}
	return p
}

// Backoff returns the sleep before retry number `retry` (1-based): the
// exponential step capped at Cap, jittered into [step/2, step) by a
// SplitMix64 stream seeded from (seed, retry). Same inputs, same delay —
// chaos runs replay byte-for-byte.
//
// The jitter seed avalanche-mixes the spec seed and the attempt number
// (xrand.Mix on each before combining). The previous linear fold
// (seed ^ retry*gamma) left the per-retry streams correlated — with
// seed 0, retry r's second draw equals retry r+1's first — so nearby
// attempts of one spec could jitter in near-lockstep, which is exactly
// what jitter exists to prevent. TestBackoffGolden pins the values.
func (p RetryPolicy) Backoff(retry int, seed uint64) time.Duration {
	if retry < 1 {
		retry = 1
	}
	step := p.Base
	for i := 1; i < retry && step < p.Cap; i++ {
		step *= 2
	}
	if step > p.Cap {
		step = p.Cap
	}
	half := step / 2
	if half <= 0 {
		return step
	}
	rng := xrand.New(xrand.Mix(seed) ^ xrand.Mix(uint64(retry)))
	return half + time.Duration(rng.Uint64()%uint64(half))
}

// BackoffSeed derives the deterministic jitter seed from a spec key (the
// leading 16 hex digits of the content hash). Exported so alternative
// backends (internal/dist) reassign with the same reproducible jitter.
func BackoffSeed(key string) uint64 {
	if len(key) < 16 {
		return 0
	}
	v, err := strconv.ParseUint(key[:16], 16, 64)
	if err != nil {
		return 0
	}
	return v
}

// sleepCtx sleeps for d or until ctx is done, whichever is first.
func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}
