package prefetch

import "fdp/internal/program"

// FNLMMA approximates Seznec's IPC-1 winner "FNL+MMA": an aggressive but
// filtered next-line prefetcher (Footprint Next Line) combined with a
// temporal Multiple-Miss-Ahead predictor that chains from one miss to the
// misses that historically followed it.
type FNLMMA struct {
	// FNL: per-line "worth prefetching next lines" confidence, a small
	// tagged table of 2-bit counters.
	fnlTags []uint16
	fnlCtr  []uint8
	fnlMask uint64

	// MMA: miss -> next-miss chain, tagged.
	mmaTags []uint16
	mmaNext []uint64
	mmaMask uint64

	lastAccess uint64
	lastMiss   uint64
	haveMiss   bool

	// Degree knobs.
	fnlDepth int // next lines prefetched when confident
	mmaAhead int // chain steps followed per miss
}

// NewFNLMMA builds the default-size FNL+MMA (~44KB metadata).
func NewFNLMMA() *FNLMMA {
	const fnlEntries = 8192
	const mmaEntries = 4096
	f := &FNLMMA{
		fnlTags:  make([]uint16, fnlEntries),
		fnlCtr:   make([]uint8, fnlEntries),
		fnlMask:  fnlEntries - 1,
		mmaTags:  make([]uint16, mmaEntries),
		mmaNext:  make([]uint64, mmaEntries),
		mmaMask:  mmaEntries - 1,
		fnlDepth: 3,
		mmaAhead: 3,
	}
	return f
}

// Name implements Prefetcher.
func (f *FNLMMA) Name() string { return "fnl+mma" }

// StorageBits implements Prefetcher.
func (f *FNLMMA) StorageBits() int {
	return len(f.fnlTags)*(16+2) + len(f.mmaTags)*(16+42)
}

func fnlIdx(line, mask uint64) (uint64, uint16) {
	return line & mask, uint16(line >> 16)
}

// OnAccess implements Prefetcher.
func (f *FNLMMA) OnAccess(line uint64, hit, prefHit bool, emit Emit) {
	// Train FNL: a sequential advance means the previous line's footprint
	// includes its successor.
	if line == f.lastAccess+1 {
		i, tag := fnlIdx(f.lastAccess, f.fnlMask)
		if f.fnlTags[i] == tag {
			if f.fnlCtr[i] < 3 {
				f.fnlCtr[i]++
			}
		} else {
			f.fnlTags[i] = tag
			f.fnlCtr[i] = 1
		}
	} else if line != f.lastAccess {
		// A discontinuous departure right after lastAccess weakens its
		// next-line footprint.
		i, tag := fnlIdx(f.lastAccess, f.fnlMask)
		if f.fnlTags[i] == tag && f.fnlCtr[i] > 0 {
			f.fnlCtr[i]--
		}
	}
	f.lastAccess = line

	// Issue FNL prefetches for this line's footprint.
	depth := 1 // always at least next line on a miss (aggressive NL)
	i, tag := fnlIdx(line, f.fnlMask)
	if f.fnlTags[i] == tag && f.fnlCtr[i] >= 2 {
		depth = f.fnlDepth
	} else if hit && !prefHit {
		depth = 0
	}
	for d := 1; d <= depth; d++ {
		emit(line + uint64(d))
	}

	if !hit {
		f.onMiss(line, emit)
	}
}

func (f *FNLMMA) onMiss(line uint64, emit Emit) {
	// Train the miss chain.
	if f.haveMiss && f.lastMiss != line {
		i := f.lastMiss & f.mmaMask
		f.mmaTags[i] = uint16(f.lastMiss >> 14)
		f.mmaNext[i] = line
	}
	f.lastMiss = line
	f.haveMiss = true

	// Follow the chain several misses ahead.
	cur := line
	for step := 0; step < f.mmaAhead; step++ {
		i := cur & f.mmaMask
		if f.mmaTags[i] != uint16(cur>>14) {
			break
		}
		nxt := f.mmaNext[i]
		if nxt == cur {
			break
		}
		emit(nxt)
		cur = nxt
	}
}

// OnFill implements Prefetcher.
func (f *FNLMMA) OnFill(uint64, Emit) {}

// OnBranch implements Prefetcher.
func (f *FNLMMA) OnBranch(uint64, program.InstType, uint64, Emit) {}
