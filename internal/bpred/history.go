// Package bpred implements the branch-direction prediction stack: the
// global-history machinery shared by all history-based predictors (raw
// history bits plus incrementally-folded index registers), the TAGE and
// Gshare direction predictors, and the history-management policies the
// paper compares (taken-only target history vs direction history, §III-A,
// Table V).
package bpred

// HistoryBits is the raw global history register capacity in bits. The
// paper uses up to 280-bit direction history and 260-bit target history.
const HistoryBits = 320

const histWords = HistoryBits / 64

// FoldSpec describes one folded view of the global history: the low Length
// bits folded (by XOR of Width-bit chunks, with rotation) into Width bits.
// Predictor tables register the FoldSpecs they need at construction time.
type FoldSpec struct {
	Length int // history bits consumed (0 < Length < HistoryBits-1)
	Width  int // folded register width in bits (2..31)
}

// fold packs every constant InsertBit needs for one FoldSpec into one
// struct so the insert loop reads a single contiguous array. The mutable
// folded values live in a separate dense uint32 slice (History.vals): the
// insert loop streams both arrays, and snapshots of all ~38 folded
// registers collapse to one memcopy. A TAGE-18KB + ITTAGE frontend inserts
// history bits on every predicted taken branch and snapshots on every
// predicted block, so both layouts matter.
type fold struct {
	mask uint32 // (1 << Width) - 1
	// Outgoing-bit positions, precomputed as word/shift pairs into the raw
	// bits array: position Length (out0, read after a 1-bit shift and by
	// the second step of a 2-bit insert) and Length+1 (out1, read by the
	// first step of a 2-bit insert, where the departing bit has already
	// been shifted one position further).
	outW0, outS0 uint8
	outW1, outS1 uint8
	width, rem   uint8 // Width and Length % Width
	rem1         uint8 // (rem+1) % Width: landing bit of the older insert of a pair
}

// History is the speculative (or architectural) global history: raw bits
// plus one incrementally-maintained folded register per registered
// FoldSpec. All predictors sharing a frontend share one History so that a
// single insert updates every folded view at once.
//
// The two insertion flavours implement the paper's Eq. 1 (direction
// history) and Eq. 2/3 (taken-only target history; the target hash is
// folded to two bits per event so the register remains a pure shift
// register, preserving O(1) folded updates).
type History struct {
	bits  [histWords]uint64
	specs []FoldSpec
	folds []fold
	vals  []uint32 // current folded register values, parallel to folds
}

// NewHistory creates a History maintaining the given folded views.
func NewHistory(specs []FoldSpec) *History {
	for _, s := range specs {
		// Length+1 must also be a valid raw-bit position (the fused 2-bit
		// insert reads it), hence the HistoryBits-1 bound.
		if s.Length <= 0 || s.Length >= HistoryBits-1 {
			panic("bpred: FoldSpec.Length out of range")
		}
		// Width 1 is excluded: the fused two-bit insert folds both overflow
		// bits with a single XOR, which needs the register to hold them at
		// distinct positions.
		if s.Width <= 1 || s.Width > 31 {
			panic("bpred: FoldSpec.Width out of range")
		}
	}
	h := &History{specs: specs, folds: make([]fold, len(specs)), vals: make([]uint32, len(specs))}
	for i, s := range specs {
		h.folds[i] = fold{
			mask:  1<<uint(s.Width) - 1,
			outW0: uint8(s.Length >> 6),
			outS0: uint8(s.Length & 63),
			outW1: uint8((s.Length + 1) >> 6),
			outS1: uint8((s.Length + 1) & 63),
			width: uint8(s.Width),
			rem:   uint8(s.Length % s.Width),
			rem1:  uint8((s.Length%s.Width + 1) % s.Width),
		}
	}
	return h
}

// NumFolds returns the number of folded registers.
func (h *History) NumFolds() int { return len(h.folds) }

// Folded returns the current value of folded register i.
func (h *History) Folded(i int) uint32 { return h.vals[i] }

// Bit returns raw history bit p (0 = newest).
func (h *History) Bit(p int) uint32 {
	return uint32(h.bits[p>>6]>>(uint(p)&63)) & 1
}

// foldStep advances one folded register value by one inserted bit b,
// removing the outgoing raw bit found at word outW / shift outS.
func foldStep(f *fold, bits *[histWords]uint64, val, b uint32, outW, outS uint8) uint32 {
	comp := val
	comp = comp<<1 | b
	comp ^= comp >> f.width // wrap the overflow bit to position 0
	comp &= f.mask
	// Remove the bit that left the Length-bit window.
	out := uint32(bits[outW]>>outS) & 1
	comp ^= out << f.rem
	return comp
}

// InsertBit shifts one bit into the history and updates all folded views.
func (h *History) InsertBit(b uint32) {
	for i := histWords - 1; i > 0; i-- {
		h.bits[i] = h.bits[i]<<1 | h.bits[i-1]>>63
	}
	h.bits[0] = h.bits[0]<<1 | uint64(b&1)
	b &= 1
	folds := h.folds
	vals := h.vals
	for i := range folds {
		f := &folds[i]
		vals[i] = foldStep(f, &h.bits, vals[i], b, f.outW0, f.outS0)
	}
}

// insertBits2 shifts two bits into the history (b1 older, b0 newest) and
// updates all folded views, equivalent to InsertBit(b1); InsertBit(b0) but
// with a single raw-register shift and one fused fold step per register.
//
// The fusion relies on the fold being GF(2)-linear: shifting the register
// by two leaves the two overflow bits at positions Width and Width+1, and
// one XOR with the register shifted right by Width wraps both to positions
// 0 and 1 at once (this is why Width >= 2). The two outgoing raw bits sat
// at positions Length-1 and Length-2 before the combined shift, i.e.
// Length+1 and Length after it; the older one is removed at the rotated
// position (rem+1) mod Width because the second shift moved its slot.
func (h *History) insertBits2(b1, b0 uint32) {
	for i := histWords - 1; i > 0; i-- {
		h.bits[i] = h.bits[i]<<2 | h.bits[i-1]>>62
	}
	h.bits[0] = h.bits[0]<<2 | uint64(b1&1)<<1 | uint64(b0&1)
	ins := (b1&1)<<1 | b0&1
	folds := h.folds
	vals := h.vals
	bits := &h.bits
	for i := range folds {
		f := &folds[i]
		out1 := uint32(bits[f.outW1]>>f.outS1) & 1
		out0 := uint32(bits[f.outW0]>>f.outS0) & 1
		v := vals[i]
		v = v<<2 | ins
		v ^= v >> f.width // wrap both overflow bits in one XOR
		v &= f.mask
		v ^= out1 << f.rem1
		v ^= out0 << f.rem
		vals[i] = v
	}
}

// InsertDir records a conditional-branch direction (Eq. 1).
func (h *History) InsertDir(taken bool) {
	b := uint32(0)
	if taken {
		b = 1
	}
	h.InsertBit(b)
}

// TargetHash computes the paper's Eq. 2 hash of a taken branch, folded to
// two bits.
func TargetHash(pc, target uint64) uint32 {
	x := (pc >> 2) ^ (target >> 3)
	x ^= x >> 32
	x ^= x >> 16
	x ^= x >> 8
	x ^= x >> 4
	x ^= x >> 2
	return uint32(x) & 3
}

// InsertTaken records a taken branch in target-history mode (Eq. 3): two
// history bits derived from the pc/target hash.
func (h *History) InsertTaken(pc, target uint64) {
	hash := TargetHash(pc, target)
	h.insertBits2(hash>>1, hash&1)
}

// Snapshot is a saved History state. The folded slice is owned by the
// snapshot and reused across saves, so snapshots are cheap in steady state.
type Snapshot struct {
	bits   [histWords]uint64
	folded []uint32
}

// Save copies the current state into s (allocating s.folded on first use).
func (h *History) Save(s *Snapshot) {
	s.bits = h.bits
	if cap(s.folded) < len(h.vals) {
		s.folded = make([]uint32, len(h.vals))
	}
	s.folded = s.folded[:len(h.vals)]
	copy(s.folded, h.vals)
}

// Restore sets the history back to a previously saved state. The snapshot
// must come from a History with the same FoldSpecs.
func (h *History) Restore(s *Snapshot) {
	h.bits = s.bits
	copy(h.vals, s.folded)
}

// CopyFrom makes h identical to src (same FoldSpecs required).
func (h *History) CopyFrom(src *History) {
	h.bits = src.bits
	copy(h.vals, src.vals)
}

// Reset clears all history.
func (h *History) Reset() {
	h.bits = [histWords]uint64{}
	for i := range h.vals {
		h.vals[i] = 0
	}
}

// FoldBrute computes the folded view from the raw bits directly (bit p of
// the low Length bits contributes to folded bit p mod Width). It is the
// specification the incremental registers are tested against and is also
// used when a predictor needs an ad-hoc fold it did not register.
func (h *History) FoldBrute(s FoldSpec) uint32 {
	var comp uint32
	for p := 0; p < s.Length; p++ {
		comp ^= h.Bit(p) << (uint(p) % uint(s.Width))
	}
	return comp
}
