// Command acctcheck verifies the cycle-accounting conservation invariant
// on a manifests JSONL stream: for every manifest carrying the acct.*
// counter family, the bucket sum must equal run.cycles exactly. It reads
// stdin (or the files given as arguments), skips non-JSON lines — so
// `fdpsim -metrics - | acctcheck` works even though the results table
// shares stdout — and exits non-zero on any violation or if no manifest
// could be checked at all.
//
// Usage:
//
//	fdpsim -workload server_a -metrics - | acctcheck
//	acctcheck manifests.jsonl
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"

	"fdp/internal/obs"
)

func main() {
	checked, failed := 0, 0
	verify := func(r io.Reader, name string) {
		c, f := verifyStream(r, name)
		checked += c
		failed += f
	}
	if flagArgs := os.Args[1:]; len(flagArgs) > 0 {
		for _, path := range flagArgs {
			f, err := os.Open(path)
			if err != nil {
				fatal("%v", err)
			}
			verify(f, path)
			f.Close()
		}
	} else {
		verify(os.Stdin, "stdin")
	}
	if checked == 0 {
		fatal("no manifests with an acct.* counter family found")
	}
	if failed > 0 {
		fatal("%d of %d manifests violate cycle-accounting conservation", failed, checked)
	}
	fmt.Printf("acctcheck: %d manifests conserve cycles (bucket sum == run.cycles)\n", checked)
}

// verifyStream checks every acct-carrying manifest line in r and returns
// (checked, failed) counts. Lines that are not JSON objects (the results
// table on a shared stdout) or manifests without the acct family (the
// __runner__ summary) are skipped.
func verifyStream(r io.Reader, name string) (checked, failed int) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Bytes()
		if len(line) == 0 || line[0] != '{' {
			continue
		}
		var m obs.Manifest
		if err := json.Unmarshal(line, &m); err != nil {
			continue
		}
		v, ok := obs.AcctVector(m.Counters)
		if !ok {
			continue
		}
		checked++
		var sum uint64
		for _, n := range v {
			sum += n
		}
		if cycles := m.Counters["run.cycles"]; sum != cycles {
			failed++
			fmt.Fprintf(os.Stderr, "acctcheck: %s:%d: %s/%s: bucket sum %d != run.cycles %d\n",
				name, lineNo, monitorConfigName(m.Config), m.Workload, sum, cycles)
		}
	}
	if err := sc.Err(); err != nil {
		fatal("reading %s: %v", name, err)
	}
	return checked, failed
}

// monitorConfigName mirrors monitor.ConfigName without pulling the HTTP
// monitor into this tiny checker.
func monitorConfigName(cfg any) string {
	b, err := json.Marshal(cfg)
	if err != nil {
		return ""
	}
	var v struct {
		Name string `json:"Name"`
	}
	if json.Unmarshal(b, &v) != nil {
		return ""
	}
	return v.Name
}

func fatal(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "acctcheck: "+format+"\n", args...)
	os.Exit(1)
}
