package wspec

import (
	"bytes"
	"strings"
	"testing"
)

const sampleSpec = `
# A blended fleet with one churn phase.
version: 1
name: blended.v1
class: fleet
seed: 42
switch_every: 10000
mix:
  - preset: server
    variant: 1
    weight: 3.0
    params:
      funcs: 900
      markov_stay: 0.9
  - preset: client
    weight: 1.0
    seed_offset: 7
phases:
  - at: 500000
    reseed: 1
  - at: 900000
    mix:
      - preset: spec
        variant: 2
`

func TestParseSample(t *testing.T) {
	sp, err := Parse([]byte(sampleSpec))
	if err != nil {
		t.Fatal(err)
	}
	if sp.Name != "blended.v1" || sp.Class != "fleet" || sp.Seed != 42 || sp.SwitchEvery != 10_000 {
		t.Fatalf("header mismatch: %+v", sp)
	}
	if len(sp.Mix) != 2 {
		t.Fatalf("mix = %d components, want 2", len(sp.Mix))
	}
	c0 := sp.Mix[0]
	if c0.Preset != "server" || c0.Variant != 1 || c0.Weight != 3.0 {
		t.Fatalf("mix[0] = %+v", c0)
	}
	if c0.Params.Funcs == nil || *c0.Params.Funcs != 900 {
		t.Fatalf("mix[0].params.funcs = %v, want 900", c0.Params.Funcs)
	}
	if c0.Params.MarkovStay == nil || *c0.Params.MarkovStay != 0.9 {
		t.Fatalf("mix[0].params.markov_stay = %v, want 0.9", c0.Params.MarkovStay)
	}
	if c0.Params.Levels != nil {
		t.Fatalf("mix[0].params.levels should be unset, got %v", *c0.Params.Levels)
	}
	if sp.Mix[1].Weight != 1.0 || sp.Mix[1].SeedOffset != 7 {
		t.Fatalf("mix[1] = %+v", sp.Mix[1])
	}
	if len(sp.Phases) != 2 {
		t.Fatalf("phases = %d, want 2", len(sp.Phases))
	}
	if sp.Phases[0].At != 500_000 || sp.Phases[0].Reseed != 1 || sp.Phases[0].Mix != nil {
		t.Fatalf("phases[0] = %+v", sp.Phases[0])
	}
	if sp.Phases[1].At != 900_000 || len(sp.Phases[1].Mix) != 1 || sp.Phases[1].Mix[0].Preset != "spec" {
		t.Fatalf("phases[1] = %+v", sp.Phases[1])
	}
}

func TestParseDefaults(t *testing.T) {
	sp, err := Parse([]byte("version: 1\nname: tiny\nmix:\n  - preset: server\n"))
	if err != nil {
		t.Fatal(err)
	}
	if sp.Class != "custom" || sp.Seed != 1 || sp.SwitchEvery != DefaultSwitchEvery {
		t.Fatalf("defaults not applied: %+v", sp)
	}
	if sp.Mix[0].Weight != 1 || sp.Mix[0].Variant != 0 {
		t.Fatalf("component defaults not applied: %+v", sp.Mix[0])
	}
}

// TestParseErrors is table-driven over the validation surface: every
// case must fail, and the error must mention the fragment so spec
// authors can find the problem.
func TestParseErrors(t *testing.T) {
	const okMix = "mix:\n  - preset: server\n"
	cases := []struct {
		name string
		in   string
		want string // substring of the error
	}{
		{"empty", "", "mapping"},
		{"scalar_top", "42\n", "key: value"},
		{"bad_version", "version: 9\nname: x\n" + okMix, "version"},
		{"missing_version", "name: x\n" + okMix, "version"},
		{"missing_name", "version: 1\n" + okMix, "missing name"},
		{"bad_name", "version: 1\nname: 'a b'\n" + okMix, "must match"},
		{"bad_class", "version: 1\nname: x\nclass: 'a b'\n" + okMix, "class"},
		{"unknown_key", "version: 1\nname: x\nbogus: 1\n" + okMix, `unknown key "bogus"`},
		{"empty_mix", "version: 1\nname: x\n", "empty mix"},
		{"mix_scalar", "version: 1\nname: x\nmix: 3\n", "list"},
		{"unknown_preset", "version: 1\nname: x\nmix:\n  - preset: mainframe\n", `unknown preset "mainframe"`},
		{"bad_variant", "version: 1\nname: x\nmix:\n  - preset: server\n    variant: 99\n", "variant"},
		{"zero_weight", "version: 1\nname: x\nmix:\n  - preset: server\n    weight: 0.0\n", "weight"},
		{"negative_weight", "version: 1\nname: x\nmix:\n  - preset: server\n    weight: -1.0\n", "weight"},
		{"unknown_param", "version: 1\nname: x\nmix:\n  - preset: server\n    params:\n      bogus_knob: 1\n", `unknown key "bogus_knob"`},
		{"param_type", "version: 1\nname: x\nmix:\n  - preset: server\n    params:\n      funcs: many\n", "integer"},
		{"switch_zero", "version: 1\nname: x\nswitch_every: 0\n" + okMix, "switch_every"},
		{"negative_seed", "version: 1\nname: x\nseed: -4\n" + okMix, "negative"},
		{"phase_at_zero", "version: 1\nname: x\n" + okMix + "phases:\n  - at: 0\n    reseed: 1\n", "at"},
		{"phase_not_increasing", "version: 1\nname: x\n" + okMix +
			"phases:\n  - at: 100\n    reseed: 1\n  - at: 100\n    reseed: 2\n", "strictly increasing"},
		{"phase_both", "version: 1\nname: x\n" + okMix +
			"phases:\n  - at: 100\n    reseed: 1\n    mix:\n      - preset: client\n", "mutually exclusive"},
		{"phase_neither", "version: 1\nname: x\n" + okMix + "phases:\n  - at: 100\n", "reseed > 0 or a non-empty mix"},
		{"tab_indent", "version: 1\n\tname: x\n", "tab"},
		{"dup_key", "version: 1\nversion: 1\nname: x\n" + okMix, "duplicate"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse([]byte(tc.in))
			if err == nil {
				t.Fatalf("Parse succeeded, want error containing %q", tc.want)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// TestHashStability pins the canonical hash of the sample spec: the
// hash is a cache identity, so any change here silently invalidates
// user caches and must be deliberate.
func TestHashStability(t *testing.T) {
	sp, err := Parse([]byte(sampleSpec))
	if err != nil {
		t.Fatal(err)
	}
	const want = "816d44d1ce50178428e4eb9ba63afd0e6461baeeafc13f096fe3fe2fd92070f4"
	if got := sp.Hash(); got != want {
		t.Fatalf("Hash() = %s, want %s (canonical encoding changed — bump the wspec preamble if intentional)", got, want)
	}
}

// TestHashIgnoresFormatting: comments, key order and explicit defaults
// must not change the hash; semantic edits must.
func TestHashIgnoresFormatting(t *testing.T) {
	base, err := Parse([]byte("version: 1\nname: x\nmix:\n  - preset: server\n"))
	if err != nil {
		t.Fatal(err)
	}
	same, err := Parse([]byte("# comment\nname: x\nversion: 1\nseed: 1\nclass: custom\nmix:\n  - weight: 1.0\n    preset: server\n    variant: 0\n"))
	if err != nil {
		t.Fatal(err)
	}
	if base.Hash() != same.Hash() {
		t.Fatalf("formatting changed the hash:\n%s\nvs\n%s", base.Encode(), same.Encode())
	}
	diff, err := Parse([]byte("version: 1\nname: x\nmix:\n  - preset: server\n    seed_offset: 1\n"))
	if err != nil {
		t.Fatal(err)
	}
	if base.Hash() == diff.Hash() {
		t.Fatal("semantic change (seed_offset) did not change the hash")
	}
}

// TestEncodeRoundTrip: the canonical encoding re-parses to an
// equivalent spec with an identical hash and encoding (fixpoint).
func TestEncodeRoundTrip(t *testing.T) {
	sp, err := Parse([]byte(sampleSpec))
	if err != nil {
		t.Fatal(err)
	}
	enc := sp.Encode()
	sp2, err := Parse(enc)
	if err != nil {
		t.Fatalf("canonical encoding does not re-parse: %v\n%s", err, enc)
	}
	if !bytes.Equal(enc, sp2.Encode()) {
		t.Fatalf("encoding is not a fixpoint:\n%s\nvs\n%s", enc, sp2.Encode())
	}
	if sp.Hash() != sp2.Hash() {
		t.Fatal("hash unstable across encode round trip")
	}
}

func TestScalarParsing(t *testing.T) {
	cases := []struct {
		in   string
		want interface{}
	}{
		{"null", nil}, {"~", nil}, {"", nil},
		{"true", true}, {"false", false},
		{"42", uint64(42)}, {"0x10", uint64(16)}, {"1_000", uint64(1000)},
		{"-3", int64(-3)},
		{"2.5", 2.5}, {"1e3", 1000.0},
		{`"a b"`, "a b"}, {`'it''s'`, "it's"},
		{"plain", "plain"},
		{"3 # trailing", uint64(3)},
	}
	for _, tc := range cases {
		got, err := parseScalar(tc.in, 1)
		if err != nil {
			t.Fatalf("parseScalar(%q): %v", tc.in, err)
		}
		if got != tc.want {
			t.Fatalf("parseScalar(%q) = %v (%T), want %v (%T)", tc.in, got, got, tc.want, tc.want)
		}
	}
}

// FuzzWorkloadSpec: parsing arbitrary bytes never panics, and any input
// that parses must survive the canonical encode→parse round trip with a
// stable hash.
func FuzzWorkloadSpec(f *testing.F) {
	f.Add([]byte(sampleSpec))
	f.Add([]byte("version: 1\nname: tiny\nmix:\n  - preset: server\n"))
	f.Add([]byte("version: 1\nname: x\nmix:\n  - preset: spec\n    params:\n      hot_fraction: 0.25\n"))
	f.Add([]byte("a: [flow, style]\n"))
	f.Add([]byte("- just\n- a\n- list\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		sp, err := Parse(data)
		if err != nil {
			return
		}
		h := sp.Hash()
		enc := sp.Encode()
		sp2, err := Parse(enc)
		if err != nil {
			t.Fatalf("canonical encoding does not re-parse: %v\n%s", err, enc)
		}
		if sp2.Hash() != h {
			t.Fatalf("hash unstable across round trip:\n%s", enc)
		}
	})
}
