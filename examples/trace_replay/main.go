// trace_replay demonstrates the on-disk trace workflow: record a workload
// into a ChampSim-style trace file, load it back, and verify that
// trace-driven simulation reproduces the in-memory run exactly.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"fdp/internal/core"
	"fdp/internal/synth"
	"fdp/internal/trace"
)

func main() {
	w := synth.ByName("client_a")
	const warmup, measure = 50_000, 200_000

	// Record comfortably more than the run needs.
	path := filepath.Join(os.TempDir(), "client_a.fdpt.gz")
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	tw, err := trace.NewWriter(f, trace.Header{
		Name: w.Name, Class: w.Class, Seed: w.Seed, Entry: w.Entry(),
	}, w.Image())
	if err != nil {
		log.Fatal(err)
	}
	src := w.NewStream()
	for i := 0; i < (warmup+measure)*2; i++ {
		tw.Record(src.Next())
	}
	if err := tw.Close(); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	fi, _ := os.Stat(path)
	fmt.Printf("recorded %d instructions to %s (%.2f bytes/inst)\n",
		tw.Count(), path, float64(fi.Size())/float64(tw.Count()))

	// Load and replay.
	rf, err := os.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	tr, err := trace.Read(rf)
	rf.Close()
	if err != nil {
		log.Fatal(err)
	}

	cfg := core.DefaultConfig()
	mem, err := core.Simulate(cfg, w.NewStream(), w.Name, warmup, measure)
	if err != nil {
		log.Fatal(err)
	}
	fromFile, err := core.Simulate(cfg, tr.NewStream(), tr.Header.Name, warmup, measure)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("in-memory:    %d cycles, %d mispredictions, %d L1I misses\n",
		mem.Cycles, mem.Mispredictions, mem.L1IMisses)
	fmt.Printf("trace-driven: %d cycles, %d mispredictions, %d L1I misses\n",
		fromFile.Cycles, fromFile.Mispredictions, fromFile.L1IMisses)
	if mem.Cycles == fromFile.Cycles && mem.Mispredictions == fromFile.Mispredictions {
		fmt.Println("bit-identical: yes")
	} else {
		fmt.Println("bit-identical: NO (this is a bug)")
	}
	os.Remove(path)
}
