package prefetch

import "fdp/internal/program"

// EIPConfig sizes the Entangling Instruction Prefetcher. The paper
// evaluates the original 128KB 34-way configuration and a realistic 27KB
// 8-way variant (§V).
type EIPConfig struct {
	Name    string
	Sets    int
	Ways    int // destination slots per source line
	HistLen int // recent-access history window used to pick sources
}

// EIP128KB returns the original championship configuration: the 34-way
// entangled table.
func EIP128KB() EIPConfig {
	return EIPConfig{Name: "eip-128kb", Sets: 2048, Ways: 34, HistLen: 64}
}

// EIP27KB returns the realistic configuration: the same table with 8
// destination ways.
func EIP27KB() EIPConfig {
	return EIPConfig{Name: "eip-27kb", Sets: 2048, Ways: 8, HistLen: 64}
}

type eipEntry struct {
	tag  uint16
	dsts []uint64
}

// EIP approximates the Entangling Instruction Prefetcher (Ros &
// Jimborean): when a miss to line D occurs, the line S accessed roughly
// one memory latency earlier is "entangled" with D, so that future
// accesses to S prefetch D just in time.
type EIP struct {
	cfg     EIPConfig
	table   []eipEntry
	setMask uint64

	// Circular recent demand-access history with timestamps.
	histLine []uint64
	histTime []uint64
	histPos  int

	now uint64 // advances once per OnAccess; a proxy for time

	// Latency is the lookback distance (in accesses) used to select the
	// entangling source; roughly memory latency / accesses-per-cycle.
	Lookback int
}

// NewEIP builds an EIP instance.
func NewEIP(cfg EIPConfig) *EIP {
	e := &EIP{
		cfg:      cfg,
		table:    make([]eipEntry, cfg.Sets),
		setMask:  uint64(cfg.Sets - 1),
		histLine: make([]uint64, cfg.HistLen),
		histTime: make([]uint64, cfg.HistLen),
		Lookback: 24,
	}
	for i := range e.table {
		e.table[i].dsts = make([]uint64, 0, cfg.Ways)
	}
	return e
}

// Name implements Prefetcher.
func (e *EIP) Name() string { return e.cfg.Name }

// StorageBits implements Prefetcher.
func (e *EIP) StorageBits() int {
	// Tag + ways x 16-bit compressed destinations (EIP stores destination
	// deltas relative to the source, not full addresses), plus the recent
	// access history.
	return e.cfg.Sets*(16+e.cfg.Ways*16) + e.cfg.HistLen*48
}

func (e *EIP) entry(line uint64) *eipEntry {
	return &e.table[line&e.setMask]
}

func (e *EIP) tag(line uint64) uint16 { return uint16(line >> 11) }

// OnAccess implements Prefetcher.
func (e *EIP) OnAccess(line uint64, hit, _ bool, emit Emit) {
	e.now++
	// Issue entangled prefetches for this source line.
	if en := e.entry(line); en.tag == e.tag(line) {
		for _, d := range en.dsts {
			emit(d)
		}
	}
	// Record the access.
	e.histLine[e.histPos] = line
	e.histTime[e.histPos] = e.now
	e.histPos = (e.histPos + 1) % len(e.histLine)

	if !hit {
		e.entangle(line)
	}
}

// entangle links the miss destination to the source accessed ~Lookback
// accesses earlier (the entangling distance that would have hidden the
// miss latency).
func (e *EIP) entangle(dst uint64) {
	want := e.now - uint64(e.Lookback)
	var src uint64
	found := false
	best := uint64(1 << 62)
	for i := range e.histLine {
		t := e.histTime[i]
		if t == 0 || e.histLine[i] == dst {
			continue
		}
		var d uint64
		if t > want {
			d = t - want
		} else {
			d = want - t
		}
		if d < best {
			best = d
			src = e.histLine[i]
			found = true
		}
	}
	if !found {
		return
	}
	en := e.entry(src)
	if en.tag != e.tag(src) {
		en.tag = e.tag(src)
		en.dsts = en.dsts[:0]
	}
	for _, d := range en.dsts {
		if d == dst {
			return
		}
	}
	if len(en.dsts) == e.cfg.Ways {
		copy(en.dsts, en.dsts[1:])
		en.dsts = en.dsts[:e.cfg.Ways-1]
	}
	en.dsts = append(en.dsts, dst)
}

// OnFill implements Prefetcher.
func (e *EIP) OnFill(uint64, Emit) {}

// OnBranch implements Prefetcher.
func (e *EIP) OnBranch(uint64, program.InstType, uint64, Emit) {}
