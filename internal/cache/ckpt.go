package cache

import "fdp/internal/ckpt"

const (
	tagCache = 0x43414348 // "CACH"
	tagHier  = 0x48494552 // "HIER"
	tagTLB   = 0x544c4231 // "TLB1"
)

// SaveState encodes the tag array, way metadata, replacement clock and
// statistics counters. Statistics are included because the ITLB's are
// never reset at measurement start, so a restored run must carry the same
// cumulative values a cold run would.
func (c *Cache) SaveState(w *ckpt.Writer) {
	w.Tag(tagCache)
	w.U64s(c.tags)
	w.Int(len(c.meta))
	for i := range c.meta {
		w.U64(c.meta[i].lru)
		w.U64(c.meta[i].fillAt)
		w.Bool(c.meta[i].prefetched)
	}
	w.U64(c.lruClock)
	w.U64(c.clock)
	w.U64(c.Probes)
	w.U64(c.Hits)
	w.U64(c.Misses)
	w.U64(c.PrefHits)
	w.U64(c.Evictions)
	w.U64(c.PrefFilled)
}

// LoadState restores state written by SaveState into a cache of the same
// geometry.
func (c *Cache) LoadState(r *ckpt.Reader) {
	r.Tag(tagCache)
	r.U64s(c.tags)
	if n := r.Int(); r.Err() == nil && n != len(c.meta) {
		r.Failf("cache %s: way count mismatch: %d vs %d", c.name, n, len(c.meta))
		return
	}
	for i := range c.meta {
		c.meta[i].lru = r.U64()
		c.meta[i].fillAt = r.U64()
		c.meta[i].prefetched = r.Bool()
	}
	c.lruClock = r.U64()
	c.clock = r.U64()
	c.Probes = r.U64()
	c.Hits = r.U64()
	c.Misses = r.U64()
	c.PrefHits = r.U64()
	c.Evictions = r.U64()
	c.PrefFilled = r.U64()
}

// SaveState encodes all three cache levels plus the hierarchy counters.
// In-flight fills are deliberately NOT part of a checkpoint: functional
// fast-forward never starts timed fills, so the MSHRs are empty at every
// snapshot point; Save panics if that invariant is violated.
func (h *Hierarchy) SaveState(w *ckpt.Writer) {
	if len(h.inflight) != 0 {
		panic("cache: checkpoint with in-flight fills")
	}
	w.Tag(tagHier)
	h.L1I.SaveState(w)
	h.L2.SaveState(w)
	h.LLC.SaveState(w)
	w.U64(h.DemandFills)
	w.U64(h.PrefetchFills)
	w.U64(h.MemAccesses)
	w.U64(h.MSHRFull)
}

// LoadState restores state written by SaveState. The in-flight fill list
// is cleared to match the encoder's empty-MSHR invariant.
func (h *Hierarchy) LoadState(r *ckpt.Reader) {
	r.Tag(tagHier)
	h.L1I.LoadState(r)
	h.L2.LoadState(r)
	h.LLC.LoadState(r)
	h.DemandFills = r.U64()
	h.PrefetchFills = r.U64()
	h.MemAccesses = r.U64()
	h.MSHRFull = r.U64()
	h.inflight = h.inflight[:0]
}

// Touch performs one functional access at line granularity: an L1I hit
// refreshes LRU; a miss walks the lower levels exactly like a timed
// demand fill would (L2 probe, LLC probe, memory) and installs the line
// everywhere, but without MSHRs or latency. This is the cache-warming
// primitive of fast-forward warmup.
func (h *Hierarchy) Touch(line uint64) {
	if hit, _ := h.L1I.Probe(line); hit {
		return
	}
	h.lowerLatency(line)
	h.DemandFills++
	h.L1I.Fill(line, false)
}

// SaveState encodes the underlying translation cache.
func (t *TLB) SaveState(w *ckpt.Writer) {
	w.Tag(tagTLB)
	t.c.SaveState(w)
}

// LoadState restores state written by SaveState.
func (t *TLB) LoadState(r *ckpt.Reader) {
	r.Tag(tagTLB)
	t.c.LoadState(r)
}
