package obs

import (
	"encoding/json"
	"io"
	"os/exec"
	"strings"
	"sync"
)

// ManifestSchema is the current manifest format version.
const ManifestSchema = 1

// Manifest is the single-document record of one simulation run: identity
// (tool, git state, workload, seed), the full machine configuration, and
// every metric — the end-of-run counters, derived rates, and histogram
// snapshots. Maps marshal with sorted keys, so the encoding is canonical
// and byte-diffable (the golden-run harness relies on this).
type Manifest struct {
	Schema   int    `json:"schema"`
	Tool     string `json:"tool,omitempty"`
	Git      string `json:"git,omitempty"`
	Workload string `json:"workload"`
	Class    string `json:"class,omitempty"`
	Seed     uint64 `json:"seed"`
	Warmup   uint64 `json:"warmup"`
	Measure  uint64 `json:"measure"`
	// FFwd marks runs whose warmup was functional fast-forward rather
	// than cycle-accurate — a different warmup semantic, so consumers
	// must not mix such manifests with cycle-accurate ones when
	// comparing. Omitted (false) for cycle-accurate runs, which keeps
	// every pre-existing golden manifest byte-identical.
	FFwd bool `json:"ffwd,omitempty"`

	// Config is the full simulator configuration (core.Config); typed as
	// any so this package stays a leaf dependency.
	Config any `json:"config"`

	Counters   map[string]uint64            `json:"counters"`
	Derived    map[string]float64           `json:"derived,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// RunInfo carries the identity fields of a manifest.
type RunInfo struct {
	Tool     string
	Git      string
	Workload string
	Class    string
	Seed     uint64
	Warmup   uint64
	Measure  uint64
	Config   any
}

// NewManifest assembles a manifest from the probe set's registry plus
// externally supplied counters and derived metrics (typically the
// stats.Run record). Registry counters and run counters share one
// namespace; run counters win on collision.
func NewManifest(info RunInfo, p *Probes, counters map[string]uint64, derived map[string]float64) *Manifest {
	m := &Manifest{
		Schema:     ManifestSchema,
		Tool:       info.Tool,
		Git:        info.Git,
		Workload:   info.Workload,
		Class:      info.Class,
		Seed:       info.Seed,
		Warmup:     info.Warmup,
		Measure:    info.Measure,
		Config:     info.Config,
		Counters:   make(map[string]uint64),
		Histograms: make(map[string]HistogramSnapshot),
	}
	if p != nil {
		for k, v := range p.Reg.CounterValues() {
			m.Counters[k] = v
		}
		m.Histograms = p.Reg.HistogramSnapshots()
		if p.Tracer != nil {
			m.Counters["trace.events"] = p.Tracer.n
			m.Counters["trace.dropped"] = p.Tracer.Dropped()
		}
		if p.Intervals != nil {
			m.Counters["interval.every"] = p.Intervals.Every()
			m.Counters["interval.records"] = uint64(len(p.Intervals.Records()))
		}
	}
	for k, v := range counters {
		m.Counters[k] = v
	}
	if len(derived) > 0 {
		m.Derived = make(map[string]float64, len(derived))
		for k, v := range derived {
			m.Derived[k] = v
		}
	}
	return m
}

// MarshalIndent returns the canonical indented JSON encoding.
func (m *Manifest) MarshalIndent() ([]byte, error) {
	return json.MarshalIndent(m, "", "  ")
}

// WriteJSONL writes the manifest as a single JSON line to w.
func (m *Manifest) WriteJSONL(w io.Writer) error {
	b, err := json.Marshal(m)
	if err != nil {
		return err
	}
	_, err = w.Write(append(b, '\n'))
	return err
}

// ManifestLog is a concurrency-safe collector of manifests, used by the
// parallel experiment runner to hand per-run manifests back to callers.
type ManifestLog struct {
	mu sync.Mutex
	ms []*Manifest
}

// NewManifestLog creates an empty log.
func NewManifestLog() *ManifestLog { return &ManifestLog{} }

// Add appends a manifest. Safe on a nil receiver (no-op) and for
// concurrent use.
func (l *ManifestLog) Add(m *Manifest) {
	if l == nil {
		return
	}
	l.mu.Lock()
	l.ms = append(l.ms, m)
	l.mu.Unlock()
}

// All returns the collected manifests.
func (l *ManifestLog) All() []*Manifest {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]*Manifest(nil), l.ms...)
}

// GitDescribe returns `git describe --always --dirty` for the current
// working tree, or "" when unavailable. Intended for command-line tools;
// tests and golden manifests leave Git empty.
func GitDescribe() string {
	out, err := exec.Command("git", "describe", "--always", "--dirty").Output()
	if err != nil {
		return ""
	}
	return strings.TrimSpace(string(out))
}
