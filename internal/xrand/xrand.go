// Package xrand provides the small deterministic PRNG used by every
// stochastic component of the simulator (workload generation, behaviour
// models, backend stall model). All simulation randomness flows through
// this package so that runs are exactly reproducible from a seed.
package xrand

// SplitMix64 is a tiny, fast, high-quality 64-bit PRNG (Steele et al.,
// "Fast splittable pseudorandom number generators"). The zero value is a
// valid generator seeded with 0.
type SplitMix64 struct {
	state uint64
}

// New returns a generator seeded with seed.
func New(seed uint64) *SplitMix64 { return &SplitMix64{state: seed} }

// Seed resets the generator state.
func (r *SplitMix64) Seed(seed uint64) { r.state = seed }

// State returns the raw generator state, for checkpointing.
func (r *SplitMix64) State() uint64 { return r.state }

// SetState restores a state previously read with State.
func (r *SplitMix64) SetState(s uint64) { r.state = s }

// Uint64 returns the next 64 random bits.
func (r *SplitMix64) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *SplitMix64) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Float64 returns a uniform float in [0, 1).
func (r *SplitMix64) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p.
func (r *SplitMix64) Bool(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// Geometric returns a sample from a geometric-ish distribution with mean
// approximately mean (minimum 1). Used for run lengths such as loop trip
// counts and basic-block sizes.
func (r *SplitMix64) Geometric(mean float64) int {
	if mean <= 1 {
		return 1
	}
	p := 1 / mean
	n := 1
	for !r.Bool(p) && n < int(mean*16) {
		n++
	}
	return n
}

// Mix hashes a 64-bit value with the splitmix64 finalizer; useful for
// deriving independent sub-seeds from a master seed.
func Mix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
