// Command bench runs the kernel benchmark suite through benchkit and
// manages the committed BENCH_kernel.json document.
//
// The suite measures the simulation kernel on each golden (config,
// workload) pair — steady-state retired instructions per second,
// nanoseconds per simulated cycle, and heap allocations during the
// measurement phase (which must stay at zero: the cycle loop is
// allocation-free once the machine is warm) — plus one end-to-end
// throughput case matching BenchmarkSimulatorThroughput (construction
// included, so its allocation count is the machine-build cost).
//
// Usage:
//
//	bench                         run the suite, print the report JSON
//	bench -out BENCH_kernel.json  run and update the document's current report
//	bench -out F -as-baseline     run and pin the report as the document's baseline
//	bench -check BENCH_kernel.json [-tol 0.3]
//	                              run and exit 1 on regression vs the committed results
//	bench -diff OLD NEW [-tol 0.1]
//	                              compare two documents without running anything
//
// See docs/PERFORMANCE.md for how the tolerance and the committed
// document are meant to be used.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"fdp"
	"fdp/internal/benchkit"
	"fdp/internal/core"
	"fdp/internal/synth"
)

// Metric names shared by every suite entry.
const (
	metInstPerSec = "inst_per_sec"
	metNsPerCycle = "ns_per_cycle"
	metAllocs     = "allocs_per_op"
	// metFFwdInstPerSec is reported only by the fast_forward case: the
	// throughput of the functional fast-forward warmup loop itself.
	metFFwdInstPerSec = "ffwd_inst_per_sec"
)

func steadyMetrics() []benchkit.Metric {
	return []benchkit.Metric{
		{Name: metInstPerSec, Unit: "inst/s", Better: benchkit.Higher},
		{Name: metNsPerCycle, Unit: "ns", Better: benchkit.Lower},
		{Name: metAllocs, Unit: "allocs", Better: benchkit.Lower},
	}
}

// benchCase is one suite entry: a machine configuration driven over a
// workload for warmup + measure retired instructions.
type benchCase struct {
	name     string
	cfg      fdp.Config
	workload *fdp.Workload
	warmup   uint64
	measure  uint64
	// endToEnd includes machine construction inside the timed region
	// (the whole-simulation view); steady-state cases construct and warm
	// up first and time only the cycle loop.
	endToEnd bool
	// ffwd warms up with functional fast-forward instead of the cycle
	// loop and additionally reports the fast-forward throughput.
	ffwd bool
}

// suite mirrors the golden-run matrix of golden_test.go plus the
// throughput benchmark of bench_test.go, so regressions here point at
// the same code paths the correctness harness pins.
func suite() []benchCase {
	eip := fdp.DefaultConfig()
	eip.Name = "fdp+eip"
	eip.Prefetcher = "eip-27kb"

	ghr := fdp.DefaultConfig()
	ghr.Name = "ghr-fix"
	ghr.HistPolicy = fdp.HistGHRFix
	ghr.BTBAllocPolicy = fdp.AllocAll

	srv := synth.ServerParams(0)
	srv.Name = "bench-server"
	srv.Funcs = 700

	return []benchCase{
		{name: "fdp_server_a", cfg: fdp.DefaultConfig(), workload: mustWorkload("server_a"), warmup: 20_000, measure: 60_000},
		{name: "baseline_client_a", cfg: fdp.BaselineConfig(), workload: mustWorkload("client_a"), warmup: 20_000, measure: 60_000},
		{name: "eip_server_b", cfg: eip, workload: mustWorkload("server_b"), warmup: 20_000, measure: 60_000},
		{name: "ghrfix_spec_a", cfg: ghr, workload: mustWorkload("spec_a"), warmup: 20_000, measure: 60_000},
		{name: "simulator_throughput", cfg: fdp.DefaultConfig(),
			workload: synth.MustGenerate(srv, "server", 0xBE11),
			warmup:   5_000, measure: 50_000, endToEnd: true},
		{name: "fast_forward", cfg: fdp.DefaultConfig(), workload: mustWorkload("server_a"),
			warmup: 300_000, measure: 60_000, ffwd: true},
	}
}

func mustWorkload(name string) *fdp.Workload {
	w := fdp.WorkloadByName(name)
	if w == nil {
		die(fmt.Errorf("unknown workload %q", name))
	}
	return w
}

// measureSteady builds the machine, warms it up, then times the bare
// cycle loop: exact cycle and instruction counts from the core, exact
// allocation counts from the runtime. The IPC timeline is pre-grown so
// its amortized append cannot show up as a steady-state allocation.
func measureSteady(c benchCase) map[string]float64 {
	m, err := core.New(c.cfg, c.workload.NewStream())
	if err != nil {
		die(err)
	}
	for m.Retired() < c.warmup {
		m.Step(512)
	}
	m.Stats().WindowIPC = make([]float64, 0, 1<<16)
	var ms0, ms1 runtime.MemStats
	runtime.ReadMemStats(&ms0)
	startCycles, startInsts := m.Now(), m.Retired()
	target := startInsts + c.measure
	t0 := time.Now()
	for m.Retired() < target {
		m.Step(512)
	}
	dt := time.Since(t0)
	runtime.ReadMemStats(&ms1)
	cycles := float64(m.Now() - startCycles)
	insts := float64(m.Retired() - startInsts)
	return map[string]float64{
		metInstPerSec: insts / dt.Seconds(),
		metNsPerCycle: float64(dt.Nanoseconds()) / cycles,
		metAllocs:     float64(ms1.Mallocs - ms0.Mallocs),
	}
}

// measureFastForward times the functional fast-forward warmup loop, then
// the steady-state cycle loop it hands off to. The cycle-loop metrics
// must look exactly like a cycle-accurately warmed machine's — in
// particular allocations must stay at zero: fast-forward leaves no
// deferred construction behind.
func measureFastForward(c benchCase) map[string]float64 {
	m, err := core.New(c.cfg, c.workload.NewStream())
	if err != nil {
		die(err)
	}
	t0 := time.Now()
	if err := m.FastForward(context.Background(), c.warmup); err != nil {
		die(err)
	}
	ffwdDT := time.Since(t0)
	// Fast-forward never runs the pipeline, so the first few thousand
	// cycles pay one-time lazy allocations (histogram buckets and the
	// like) that cycle-accurate warmup absorbs. Settle past them: the
	// timed region below asserts the *steady-state* loop after a
	// fast-forwarded warmup is just as allocation-free as after a
	// cycle-accurate one.
	settle := m.Retired() + 5_000
	for m.Retired() < settle {
		m.Step(512)
	}
	m.Stats().WindowIPC = make([]float64, 0, 1<<16)
	var ms0, ms1 runtime.MemStats
	runtime.ReadMemStats(&ms0)
	startCycles, startInsts := m.Now(), m.Retired()
	target := startInsts + c.measure
	t1 := time.Now()
	for m.Retired() < target {
		m.Step(512)
	}
	dt := time.Since(t1)
	runtime.ReadMemStats(&ms1)
	cycles := float64(m.Now() - startCycles)
	insts := float64(m.Retired() - startInsts)
	return map[string]float64{
		metInstPerSec:     insts / dt.Seconds(),
		metNsPerCycle:     float64(dt.Nanoseconds()) / cycles,
		metAllocs:         float64(ms1.Mallocs - ms0.Mallocs),
		metFFwdInstPerSec: float64(c.warmup) / ffwdDT.Seconds(),
	}
}

// measureEndToEnd times a whole fdp.Simulate call, construction
// included, exactly like BenchmarkSimulatorThroughput.
func measureEndToEnd(c benchCase) map[string]float64 {
	var ms0, ms1 runtime.MemStats
	runtime.ReadMemStats(&ms0)
	t0 := time.Now()
	r, err := fdp.Simulate(c.cfg, c.workload, c.warmup, c.measure)
	dt := time.Since(t0)
	runtime.ReadMemStats(&ms1)
	if err != nil {
		die(err)
	}
	if r.IPC() <= 0 {
		die(fmt.Errorf("%s: bad run", c.name))
	}
	// The end-to-end cycle count is dominated by the measurement phase;
	// scale the measured cycles by the simulated-instruction ratio for a
	// whole-run estimate.
	cycles := float64(r.Cycles) * float64(c.warmup+c.measure) / float64(c.measure)
	return map[string]float64{
		metInstPerSec: float64(c.warmup+c.measure) / dt.Seconds(),
		metNsPerCycle: float64(dt.Nanoseconds()) / cycles,
		metAllocs:     float64(ms1.Mallocs - ms0.Mallocs),
	}
}

// runSuite measures every case and assembles the report.
func runSuite(label string, warmupReps, reps int) *benchkit.Report {
	rep := &benchkit.Report{
		Label:      label,
		GoVersion:  runtime.Version(),
		Benchmarks: make(map[string]benchkit.Benchmark),
	}
	for _, c := range suite() {
		c := c
		fn := func() map[string]float64 { return measureSteady(c) }
		metrics := steadyMetrics()
		if c.endToEnd {
			fn = func() map[string]float64 { return measureEndToEnd(c) }
		}
		if c.ffwd {
			fn = func() map[string]float64 { return measureFastForward(c) }
			metrics = append(metrics, benchkit.Metric{Name: metFFwdInstPerSec, Unit: "inst/s", Better: benchkit.Higher})
		}
		b, err := benchkit.Measure(warmupReps, reps, metrics, fn)
		if err != nil {
			die(err)
		}
		rep.Benchmarks[c.name] = b
		m := b.Metrics
		fmt.Fprintf(os.Stderr, "%-22s %12.0f inst/s  %6.1f ns/cycle  %6.0f allocs/op  (n=%d)\n",
			c.name, m[metInstPerSec].Median, m[metNsPerCycle].Median, m[metAllocs].Median, reps)
	}
	return rep
}

// reportRegressions prints a diff verdict and returns the exit code.
func reportRegressions(regs []benchkit.Regression, tol float64) int {
	if len(regs) == 0 {
		fmt.Fprintf(os.Stderr, "OK: no regressions beyond %.0f%% tolerance\n", 100*tol)
		return 0
	}
	fmt.Fprintf(os.Stderr, "FAIL: %d regression(s) beyond %.0f%% tolerance:\n", len(regs), 100*tol)
	for _, r := range regs {
		fmt.Fprintf(os.Stderr, "  %s\n", r)
	}
	return 1
}

func die(err error) {
	fmt.Fprintln(os.Stderr, "bench:", err)
	os.Exit(2)
}

func main() {
	var (
		reps       = flag.Int("reps", 5, "measured repetitions per benchmark")
		warmupReps = flag.Int("warmup-reps", 1, "discarded warmup repetitions per benchmark")
		label      = flag.String("label", "", "label recorded in the report")
		out        = flag.String("out", "", "write or update the benchmark document at this path")
		asBaseline = flag.Bool("as-baseline", false, "with -out, pin the report as the document's baseline")
		check      = flag.String("check", "", "run the suite and fail on regressions vs this document's current report")
		diffMode   = flag.Bool("diff", false, "compare two documents (bench -diff OLD NEW) without running")
		tol        = flag.Float64("tol", 0.30, "fractional regression tolerance")
	)
	flag.Parse()

	if *diffMode {
		if flag.NArg() != 2 {
			die(errors.New("-diff needs exactly two document paths"))
		}
		oldF, err := benchkit.Load(flag.Arg(0))
		if err != nil {
			die(err)
		}
		newF, err := benchkit.Load(flag.Arg(1))
		if err != nil {
			die(err)
		}
		regs, err := benchkit.Diff(oldF.Current, newF.Current, *tol)
		if err != nil {
			die(err)
		}
		os.Exit(reportRegressions(regs, *tol))
	}

	rep := runSuite(*label, *warmupReps, *reps)

	if *check != "" {
		f, err := benchkit.Load(*check)
		if err != nil {
			die(err)
		}
		regs, err := benchkit.Diff(f.Current, rep, *tol)
		if err != nil {
			die(err)
		}
		os.Exit(reportRegressions(regs, *tol))
	}

	if *out != "" {
		f := &benchkit.File{Schema: benchkit.FileSchema}
		if prev, err := benchkit.Load(*out); err == nil {
			f = prev
		} else if !errors.Is(err, os.ErrNotExist) {
			die(err)
		}
		if *asBaseline {
			f.Baseline = rep
		} else {
			f.Current = rep
		}
		if f.Current == nil {
			// A document must always carry a current report; a fresh file
			// pinned with -as-baseline starts with current = baseline.
			f.Current = rep
		}
		b, err := f.Encode()
		if err != nil {
			die(err)
		}
		if err := os.WriteFile(*out, b, 0o644); err != nil {
			die(err)
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", *out)
		return
	}

	// Default: the report JSON on stdout, wrapped as a document.
	b, err := (&benchkit.File{Schema: benchkit.FileSchema, Current: rep}).Encode()
	if err != nil {
		die(err)
	}
	os.Stdout.Write(b)
}
