package benchkit

import (
	"encoding/json"
	"math"
	"os"
	"testing"
)

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{3, 1, 2})
	if s.Median != 2 || s.Mean != 2 || s.Min != 1 || s.Max != 3 || s.N != 3 {
		t.Errorf("odd-n summary = %+v", s)
	}
	s = Summarize([]float64{1, 2, 3, 4})
	if s.Median != 2.5 {
		t.Errorf("even-n median = %g, want 2.5", s.Median)
	}
	if s.CI95Lo >= s.Mean || s.CI95Hi <= s.Mean {
		t.Errorf("CI [%g, %g] does not bracket mean %g", s.CI95Lo, s.CI95Hi, s.Mean)
	}
	s = Summarize([]float64{7})
	if s.Median != 7 || s.CI95Lo != 7 || s.CI95Hi != 7 || s.N != 1 {
		t.Errorf("n=1 summary = %+v", s)
	}
	defer func() {
		if recover() == nil {
			t.Error("Summarize(nil) did not panic")
		}
	}()
	Summarize(nil)
}

func TestMeasure(t *testing.T) {
	decls := []Metric{{Name: "v", Unit: "x", Better: Higher}}
	calls := 0
	b, err := Measure(2, 3, decls, func() map[string]float64 {
		calls++
		return map[string]float64{"v": float64(calls)}
	})
	if err != nil {
		t.Fatal(err)
	}
	if calls != 5 {
		t.Errorf("fn called %d times, want 5 (2 warmup + 3 reps)", calls)
	}
	// Warmup runs (values 1, 2) must be discarded: samples are 3, 4, 5.
	m := b.Metrics["v"]
	if m.Median != 4 || m.Min != 3 || m.Max != 5 || m.N != 3 {
		t.Errorf("metrics = %+v, want median 4 over {3,4,5}", m)
	}
	if m.Unit != "x" || m.Better != Higher {
		t.Errorf("decl not carried into summary: %+v", m)
	}

	if _, err := Measure(0, 0, decls, nil); err == nil {
		t.Error("Measure with 0 reps did not error")
	}
	if _, err := Measure(0, 1, decls, func() map[string]float64 {
		return nil // declared metric missing
	}); err == nil {
		t.Error("Measure with missing metric did not error")
	}
}

// report builds a single-benchmark single-metric report for Diff tests.
func report(better string, median float64) *Report {
	return &Report{Benchmarks: map[string]Benchmark{
		"kernel": {Metrics: map[string]Summary{
			"speed": {Better: better, Median: median},
		}},
	}}
}

func mustDiff(t *testing.T, base, cur *Report, tol float64) []Regression {
	t.Helper()
	regs, err := Diff(base, cur, tol)
	if err != nil {
		t.Fatal(err)
	}
	return regs
}

func TestDiffToleranceEdges(t *testing.T) {
	base := report(Higher, 100)
	// Exactly at tolerance passes; epsilon beyond fails.
	if regs := mustDiff(t, base, report(Higher, 90), 0.10); len(regs) != 0 {
		t.Errorf("exactly-at-tolerance flagged: %v", regs)
	}
	if regs := mustDiff(t, base, report(Higher, 89.9), 0.10); len(regs) != 1 {
		t.Errorf("beyond-tolerance not flagged: %v", regs)
	} else if regs[0].Reason != ReasonWorse || math.Abs(regs[0].Delta-0.101) > 1e-9 {
		t.Errorf("regression = %+v", regs[0])
	}
	// Improvements of any size pass.
	if regs := mustDiff(t, base, report(Higher, 500), 0); len(regs) != 0 {
		t.Errorf("improvement flagged: %v", regs)
	}

	// Lower-is-better mirrors the direction.
	lbase := report(Lower, 100)
	if regs := mustDiff(t, lbase, report(Lower, 110), 0.10); len(regs) != 0 {
		t.Errorf("lower: exactly-at-tolerance flagged: %v", regs)
	}
	if regs := mustDiff(t, lbase, report(Lower, 110.1), 0.10); len(regs) != 1 {
		t.Errorf("lower: beyond-tolerance not flagged: %v", regs)
	}

	// Zero baseline, lower-better: tolerance is an absolute allowance.
	zbase := report(Lower, 0)
	if regs := mustDiff(t, zbase, report(Lower, 0.05), 0.10); len(regs) != 0 {
		t.Errorf("zero-baseline within allowance flagged: %v", regs)
	}
	if regs := mustDiff(t, zbase, report(Lower, 0.2), 0.10); len(regs) != 1 {
		t.Errorf("zero-baseline above allowance not flagged: %v", regs)
	}
	// Zero baseline, higher-better: nothing non-negative can be worse.
	if regs := mustDiff(t, report(Higher, 0), report(Higher, 0), 0); len(regs) != 0 {
		t.Errorf("zero-floor flagged: %v", regs)
	}
}

func TestDiffMissing(t *testing.T) {
	base := report(Higher, 100)
	empty := &Report{Benchmarks: map[string]Benchmark{}}
	regs := mustDiff(t, base, empty, 0.1)
	if len(regs) != 1 || regs[0].Reason != ReasonMissingBenchmark {
		t.Errorf("missing benchmark: %v", regs)
	}
	noMetric := &Report{Benchmarks: map[string]Benchmark{"kernel": {Metrics: map[string]Summary{}}}}
	regs = mustDiff(t, base, noMetric, 0.1)
	if len(regs) != 1 || regs[0].Reason != ReasonMissingMetric {
		t.Errorf("missing metric: %v", regs)
	}
	// Extra benchmarks in current are not regressions.
	cur := report(Higher, 100)
	cur.Benchmarks["new"] = Benchmark{Metrics: map[string]Summary{"m": {Median: 1}}}
	if regs := mustDiff(t, base, cur, 0.1); len(regs) != 0 {
		t.Errorf("extra benchmark flagged: %v", regs)
	}
}

func TestDiffNaNGuards(t *testing.T) {
	nan := math.NaN()
	for _, tc := range []struct{ base, cur float64 }{
		{nan, 100}, {100, nan}, {math.Inf(1), 100}, {100, math.Inf(-1)},
	} {
		regs := mustDiff(t, report(Higher, tc.base), report(Higher, tc.cur), 0.1)
		if len(regs) != 1 || regs[0].Reason != ReasonNotFinite {
			t.Errorf("base=%v cur=%v: %v", tc.base, tc.cur, regs)
		}
	}
	// A NaN tolerance (or a negative one) is a caller bug, not a pass.
	if _, err := Diff(report(Higher, 1), report(Higher, 1), nan); err == nil {
		t.Error("NaN tolerance accepted")
	}
	if _, err := Diff(report(Higher, 1), report(Higher, 1), -0.1); err == nil {
		t.Error("negative tolerance accepted")
	}
	if _, err := Diff(nil, report(Higher, 1), 0.1); err == nil {
		t.Error("nil baseline accepted")
	}
}

func TestFileEncodeLoadRoundTrip(t *testing.T) {
	f := &File{
		Schema:   FileSchema,
		Baseline: report(Higher, 1.0e6),
		Current:  report(Higher, 1.8e6),
	}
	b, err := f.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if b[len(b)-1] != '\n' {
		t.Error("encoded file lacks trailing newline")
	}
	path := t.TempDir() + "/bench.json"
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Current.Benchmarks["kernel"].Metrics["speed"].Median != 1.8e6 {
		t.Errorf("round trip lost data: %+v", got)
	}

	// Wrong schema and missing current report are rejected.
	bad := &File{Schema: 99, Current: report(Higher, 1)}
	bb, _ := json.Marshal(bad)
	if err := os.WriteFile(path, bb, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path); err == nil {
		t.Error("Load accepted wrong schema")
	}
	bb, _ = json.Marshal(&File{Schema: FileSchema})
	if err := os.WriteFile(path, bb, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path); err == nil {
		t.Error("Load accepted file without current report")
	}
}
