package main

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"fdp/internal/obs"
)

var update = flag.Bool("update", false, "rewrite the accounting golden file")

// TestAccountingGolden pins the accounting section's rendering over a
// fixed manifests JSONL fixture: read → table → byte-compare. The fixture
// includes a duplicate (config, workload) line and an acct-less summary
// manifest, so dedupe and skip behaviour are covered by the same bytes.
func TestAccountingGolden(t *testing.T) {
	f, err := os.Open(filepath.Join("testdata", "manifests.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	ms, err := readManifests(f)
	if err != nil {
		t.Fatalf("readManifests: %v", err)
	}
	if len(ms) != 4 {
		t.Fatalf("fixture has %d manifests, want 4", len(ms))
	}

	got := accountingTable(ms).String()
	golden := filepath.Join("testdata", "accounting.golden")
	if *update {
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run `go test ./cmd/report -update` to create it)", err)
	}
	if got != string(want) {
		t.Errorf("accounting table drifted from golden:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestAccountingTableContent checks the semantic properties the golden
// bytes cannot explain: dedupe, bucket-share normalization, and the
// acct-less manifest being excluded.
func TestAccountingTableContent(t *testing.T) {
	f, err := os.Open(filepath.Join("testdata", "manifests.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	ms, err := readManifests(f)
	if err != nil {
		t.Fatal(err)
	}

	out := accountingTable(ms).String()
	if strings.Contains(out, "__runner__") {
		t.Errorf("acct-less summary manifest leaked into the table:\n%s", out)
	}
	if n := strings.Count(out, "server_a"); n != 1 {
		t.Errorf("duplicate (config, workload) not deduped: server_a appears %d times\n%s", n, out)
	}
	for _, m := range ms {
		v, ok := obs.AcctVector(m.Counters)
		if !ok {
			continue
		}
		var sum uint64
		for _, n := range v {
			sum += n
		}
		if sum != m.Counters["run.cycles"] {
			t.Errorf("%s: acct sum %d != run.cycles %d", m.Workload, sum, m.Counters["run.cycles"])
		}
	}
}

// TestReadManifestsErrors covers the failure paths.
func TestReadManifestsErrors(t *testing.T) {
	if _, err := readManifests(strings.NewReader("not json\n")); err == nil {
		t.Error("malformed line should error")
	}
	ms, err := readManifests(strings.NewReader("\n\n"))
	if err != nil || len(ms) != 0 {
		t.Errorf("blank lines: got %d manifests, err %v", len(ms), err)
	}
}
