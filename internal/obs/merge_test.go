package obs

import "testing"

func TestHistogramMerge(t *testing.T) {
	var a, b Histogram
	for _, v := range []uint64{1, 5, 100} {
		a.Observe(v)
	}
	for _, v := range []uint64{0, 7, 1 << 20} {
		b.Observe(v)
	}
	a.Merge(&b)

	var want Histogram
	for _, v := range []uint64{1, 5, 100, 0, 7, 1 << 20} {
		want.Observe(v)
	}
	if a.Count() != want.Count() || a.Sum() != want.Sum() {
		t.Errorf("merged count/sum = %d/%d, want %d/%d", a.Count(), a.Sum(), want.Count(), want.Sum())
	}
	as, ws := a.Snapshot(), want.Snapshot()
	if as.Min != ws.Min || as.Max != ws.Max {
		t.Errorf("merged min/max = %d/%d, want %d/%d", as.Min, as.Max, ws.Min, ws.Max)
	}
	for i := 0; i < NumBuckets; i++ {
		if a.Bucket(i) != want.Bucket(i) {
			t.Errorf("bucket %d = %d, want %d", i, a.Bucket(i), want.Bucket(i))
		}
	}
}

func TestHistogramMergeEdges(t *testing.T) {
	// Merging an empty (or nil) histogram must not disturb min/max.
	var h, empty Histogram
	h.Observe(5)
	h.Merge(&empty)
	h.Merge(nil)
	if s := h.Snapshot(); s.Count != 1 || s.Min != 5 || s.Max != 5 {
		t.Errorf("merge of empty changed state: %+v", s)
	}

	// Merging into an empty histogram must adopt the source's min, even
	// when it is larger than the zero-value min field.
	var dst Histogram
	var src Histogram
	src.Observe(42)
	dst.Merge(&src)
	if s := dst.Snapshot(); s.Count != 1 || s.Min != 42 || s.Max != 42 {
		t.Errorf("merge into empty: %+v", s)
	}

	// Nil receiver is a no-op.
	var nilH *Histogram
	nilH.Merge(&src)
}

func TestRegistryMerge(t *testing.T) {
	a, b := NewRegistry(), NewRegistry()
	a.Counter("shared").Add(3)
	a.Histogram("hist").Observe(10)
	b.Counter("shared").Add(4)
	b.Counter("only_b").Add(9)
	b.Histogram("hist").Observe(20)
	b.Histogram("hist_b").Observe(1)

	a.Merge(b)
	if got := a.Counter("shared").Value(); got != 7 {
		t.Errorf("shared = %d, want 7", got)
	}
	if got := a.Counter("only_b").Value(); got != 9 {
		t.Errorf("only_b = %d, want 9 (missing names must be created)", got)
	}
	if h := a.Histogram("hist"); h.Count() != 2 || h.Sum() != 30 {
		t.Errorf("hist count/sum = %d/%d, want 2/30", h.Count(), h.Sum())
	}
	if h := a.Histogram("hist_b"); h.Count() != 1 {
		t.Errorf("hist_b not merged in")
	}

	a.Merge(nil) // no-op
	if got := a.Counter("shared").Value(); got != 7 {
		t.Errorf("nil merge changed state: shared = %d", got)
	}
}
