package runner

import (
	"context"
	"io"
	"sync"

	"fdp/internal/core"
	"fdp/internal/obs"
	"fdp/internal/stats"
)

// Options control one Execute call.
type Options struct {
	// Parallel bounds concurrent simulations (non-positive = GOMAXPROCS).
	Parallel int
	// Cache, when non-nil, satisfies repeated specs from stored results
	// and records fresh ones. It is bypassed whenever CacheBypassed()
	// reports true: tracing and interval recording change the observable
	// manifest (trace.* / interval.* counters) and their side-channel
	// output cannot be replayed from a cached result.
	Cache *Cache
	// Observe attaches a fresh probe set to every simulated run and
	// returns a per-run manifest on its Result.
	Observe bool
	// TraceCap, when > 0 together with Observe, gives each run a
	// ring-buffered pipeline event tracer holding the last TraceCap
	// events.
	TraceCap int
	// TraceSink, when non-nil, receives each traced run's events as JSONL
	// (one {"run": "config/workload"} header per run, in completion
	// order; writes are serialized).
	TraceSink io.Writer
	// IntervalEvery, when > 0 together with Observe, gives each run an
	// interval time-series recorder snapshotting the cycle-accounting
	// vector every IntervalEvery cycles.
	IntervalEvery uint64
	// IntervalSink, when non-nil, receives each run's interval records as
	// JSONL (one {"run": ..., "every": ...} header per run, in completion
	// order; writes are serialized).
	IntervalSink io.Writer
	// Reg, when non-nil, receives the runner metrics (runner_jobs,
	// runner_cache_hits, runner_queue_depth, ...). Unlike a per-run
	// registry it is shared across the pool; the scheduler serializes its
	// updates.
	Reg *obs.Registry
	// Status, when non-nil, receives lock-free live progress updates
	// readable from any goroutine while Execute runs (the HTTP monitor's
	// /progress source).
	Status *Status
	// Manifests, when non-nil together with Observe, receives every
	// per-run manifest as it completes (cache hits included), in
	// completion order. Unlike the Result slice this is visible mid-run,
	// which is what the HTTP monitor's /metrics endpoint serves.
	Manifests *obs.ManifestLog
}

// CacheBypassed reports whether the options force cache bypass: tracing
// or interval recording make runs non-replayable from cached results.
func (o Options) CacheBypassed() bool {
	return o.TraceCap > 0 || o.IntervalEvery > 0
}

// Result is the outcome of one spec.
type Result struct {
	// Run is the measurement record (nil when the job failed or was
	// cancelled before completing).
	Run *stats.Run
	// Manifest is the per-run observability document (Observe only).
	Manifest *obs.Manifest
	// CacheHit reports the result was replayed from the cache.
	CacheHit bool
	// Err is this job's own failure, if any. Execute's returned error is
	// the first failure across all jobs.
	Err error
}

// Execute runs every spec and returns one Result per spec, in spec order
// regardless of scheduling. The first job error cancels the remaining and
// in-flight jobs (simulations poll their context) and is returned;
// already-finished results are still present in the slice.
func Execute(ctx context.Context, specs []Spec, opts Options) ([]Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	sched := NewScheduler(opts.Parallel, opts.Reg)
	sched.status = opts.Status
	opts.Status.addSpecs(int64(len(specs)))
	results := make([]Result, len(specs))
	useCache := opts.Cache != nil && !opts.CacheBypassed()
	var sinkMu sync.Mutex

	err := sched.Run(ctx, len(specs), func(ctx context.Context, i int) error {
		sp := &specs[i]
		if useCache {
			if run, m, ok := opts.Cache.Get(sp.Key(), opts.Observe); ok {
				sched.metrics.count(sched.metrics.cacheHits)
				opts.Status.cacheHit()
				if m != nil {
					opts.Manifests.Add(m)
				}
				results[i] = Result{Run: run, Manifest: m, CacheHit: true}
				return nil
			}
			sched.metrics.count(sched.metrics.cacheMisses)
			opts.Status.cacheMiss()
		}

		var p *obs.Probes
		if opts.Observe {
			p = obs.NewProbes()
			if opts.TraceCap > 0 {
				p.EnableTrace(opts.TraceCap)
			}
			if opts.IntervalEvery > 0 {
				p.EnableIntervals(opts.IntervalEvery)
			}
		}
		run, err := core.SimulateContext(ctx, sp.Config, sp.NewOracle(), sp.Workload, sp.Warmup, sp.Measure, p)
		if run != nil {
			run.Class = sp.Class
		}
		if err != nil {
			results[i] = Result{Err: err}
			return err
		}
		var m *obs.Manifest
		if p != nil {
			m = core.Manifest(sp.Config, run, p, sp.Seed, sp.Warmup, sp.Measure)
			if opts.TraceSink != nil && p.Tracer != nil {
				sinkMu.Lock()
				werr := obs.WriteRunTrace(opts.TraceSink, sp.Config.Name+"/"+sp.Workload, p.Tracer)
				sinkMu.Unlock()
				if werr != nil {
					results[i] = Result{Err: werr}
					return werr
				}
			}
			if opts.IntervalSink != nil && p.Intervals != nil {
				sinkMu.Lock()
				werr := obs.WriteRunIntervals(opts.IntervalSink, sp.Config.Name+"/"+sp.Workload,
					p.Intervals.Every(), p.Intervals.Records())
				sinkMu.Unlock()
				if werr != nil {
					results[i] = Result{Err: werr}
					return werr
				}
			}
			opts.Manifests.Add(m)
		}
		results[i] = Result{Run: run, Manifest: m}
		if useCache {
			opts.Cache.Put(sp.Key(), run, m)
		}
		return nil
	})
	return results, err
}
