package fdp

import (
	"testing"

	"fdp/internal/core"
	"fdp/internal/experiments"
	"fdp/internal/synth"
)

// benchOptions keeps experiment benchmarks small enough to iterate: two
// reduced workloads (one server-class, one spec-class) and short runs.
// They exercise the exact same code paths as the full experiments; use
// cmd/experiments for paper-scale numbers.
func benchOptions() experiments.Options {
	srv := synth.ServerParams(0)
	srv.Name = "bench-server"
	srv.Funcs = 700
	spec := synth.SpecParams(0)
	spec.Name = "bench-spec"
	spec.Funcs = 200
	return experiments.Options{
		Warmup:  15_000,
		Measure: 50_000,
		Workloads: []*synth.Workload{
			synth.MustGenerate(srv, "server", 0xBE11),
			synth.MustGenerate(spec, "spec", 0xBE12),
		},
	}
}

var benchOpts = benchOptions()

// benchExperiment runs one paper experiment per iteration.
func benchExperiment(b *testing.B, id string) {
	b.Helper()
	e, ok := experiments.ByID(id)
	if !ok {
		b.Fatalf("unknown experiment %s", id)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := e.Run(benchOpts)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Tables) == 0 {
			b.Fatal("empty result")
		}
	}
}

// One benchmark per paper table and figure (§VI). Each regenerates the
// corresponding artifact end-to-end: workload streams, simulation grid,
// aggregation, rendering.

func BenchmarkFig1(b *testing.B)   { benchExperiment(b, "fig1") }
func BenchmarkTable1(b *testing.B) { benchExperiment(b, "tab1") }
func BenchmarkTable2(b *testing.B) { benchExperiment(b, "tab2") }
func BenchmarkTable3(b *testing.B) { benchExperiment(b, "tab3") }
func BenchmarkTable4(b *testing.B) { benchExperiment(b, "tab4") }
func BenchmarkTable5(b *testing.B) { benchExperiment(b, "tab5") }
func BenchmarkFig6a(b *testing.B)  { benchExperiment(b, "fig6a") }
func BenchmarkFig6b(b *testing.B)  { benchExperiment(b, "fig6b") }
func BenchmarkFig7(b *testing.B)   { benchExperiment(b, "fig7") }
func BenchmarkFig8(b *testing.B)   { benchExperiment(b, "fig8") }
func BenchmarkFig9(b *testing.B)   { benchExperiment(b, "fig9") }
func BenchmarkFig10(b *testing.B)  { benchExperiment(b, "fig10") }
func BenchmarkFig11(b *testing.B)  { benchExperiment(b, "fig11") }
func BenchmarkFig12(b *testing.B)  { benchExperiment(b, "fig12") }
func BenchmarkFig13(b *testing.B)  { benchExperiment(b, "fig13") }
func BenchmarkFig14(b *testing.B)  { benchExperiment(b, "fig14") }

// BenchmarkSimulatorThroughput measures raw simulation speed (retired
// instructions per second) on the default FDP configuration.
func BenchmarkSimulatorThroughput(b *testing.B) {
	w := benchOpts.Workloads[0]
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r, err := Simulate(DefaultConfig(), w, 5_000, 50_000)
		if err != nil {
			b.Fatal(err)
		}
		if r.IPC() <= 0 {
			b.Fatal("bad run")
		}
	}
	b.ReportMetric(float64(b.N)*55_000/b.Elapsed().Seconds(), "inst/s")
}

// BenchmarkCycleLoop measures the bare steady-state cycle loop: the
// machine is built and warmed outside the timed region, so allocs/op is
// the per-cycle allocation count of the kernel itself and must stay ~0
// (one op = 1000 cycles). Construction cost is BenchmarkSimulatorThroughput's
// business.
func BenchmarkCycleLoop(b *testing.B) {
	w := benchOpts.Workloads[0]
	c, err := core.New(core.DefaultConfig(), w.NewStream())
	if err != nil {
		b.Fatal(err)
	}
	c.Step(30_000) // warm caches, predictors and internal buffers
	// Pre-grow the IPC timeline so its amortized append stays out of the
	// steady-state allocation count.
	c.Stats().WindowIPC = make([]float64, 0, 1<<20)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Step(1000)
	}
	b.StopTimer()
	if c.Retired() == 0 {
		b.Fatal("no instructions retired")
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*1000), "ns/cycle")
}
