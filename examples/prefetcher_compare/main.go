// prefetcher_compare pits the dedicated instruction prefetchers (next
// line, the IPC-1 top-3 and perfect prefetching) against plain FDP, with
// and without a decoupled run-ahead frontend — the paper's central
// comparison (Figs. 1 and 6a).
package main

import (
	"fmt"
	"log"

	"fdp"
)

const (
	warmup  = 100_000
	measure = 400_000
)

// run simulates one config over a few workloads and returns the
// geometric-mean speedup over base.
func run(cfg fdp.Config, workloads []*fdp.Workload, base *fdp.Set) (*fdp.Set, float64) {
	set := &fdp.Set{Config: cfg.Name}
	for _, w := range workloads {
		r, err := fdp.Simulate(cfg, w, warmup, measure)
		if err != nil {
			log.Fatal(err)
		}
		set.Add(r)
	}
	if base == nil {
		return set, 1
	}
	return set, set.GeoMeanSpeedup(base)
}

func main() {
	var workloads []*fdp.Workload
	for _, name := range []string{"server_a", "server_b", "client_b", "spec_b"} {
		workloads = append(workloads, fdp.WorkloadByName(name))
	}

	baseCfg := fdp.BaselineConfig()
	base, _ := run(baseCfg, workloads, nil)

	prefetchers := []string{"nl1", "fnl+mma", "djolt", "eip-27kb", "eip-128kb"}

	fmt.Printf("geomean speedup over no-FDP/no-prefetch baseline (%d workloads)\n\n", len(workloads))
	fmt.Printf("%-12s  %10s  %10s\n", "mechanism", "no FDP", "with FDP")
	for _, pf := range prefetchers {
		noFDP := fdp.BaselineConfig()
		noFDP.Name = pf
		noFDP.Prefetcher = pf
		_, sp1 := run(noFDP, workloads, base)

		withFDP := fdp.DefaultConfig()
		withFDP.Name = "fdp+" + pf
		withFDP.Prefetcher = pf
		_, sp2 := run(withFDP, workloads, base)
		fmt.Printf("%-12s  %+9.1f%%  %+9.1f%%\n", pf, 100*(sp1-1), 100*(sp2-1))
	}

	_, fdpOnly := run(fdp.DefaultConfig(), workloads, base)
	perfect := fdp.BaselineConfig()
	perfect.Name = "perfect"
	perfect.PerfectPrefetch = true
	_, sp := run(perfect, workloads, base)
	fmt.Printf("%-12s  %+9.1f%%  %10s\n", "perfect-pf", 100*(sp-1), "-")
	fmt.Printf("%-12s  %10s  %+9.1f%%\n", "fdp alone", "-", 100*(fdpOnly-1))

	fmt.Println("\nThe paper's point: FDP alone (195 bytes of FTQ) lands in the same")
	fmt.Println("range as dedicated prefetchers with tens-of-KB metadata budgets, and")
	fmt.Println("layering those prefetchers on top of FDP adds only a little.")
}
