package trace

import (
	"bytes"
	"encoding/binary"
	"errors"
	"testing"
)

// FuzzRead hardens the trace reader against corrupted and adversarial
// inputs: it must return an error or a well-formed trace, never panic or
// hang.
func FuzzRead(f *testing.F) {
	// Seed with a real trace plus truncations and bit flips.
	w := testWorkload()
	var buf bytes.Buffer
	tw, err := NewWriter(&buf, Header{Name: w.Name, Class: w.Class, Seed: w.Seed, Entry: w.Entry()}, w.Image())
	if err != nil {
		f.Fatal(err)
	}
	s := w.NewStream()
	for i := 0; i < 500; i++ {
		tw.Record(s.Next())
	}
	tw.Close()
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add([]byte{})
	f.Add([]byte("FDPTRACE1\n"))
	flipped := append([]byte(nil), valid...)
	flipped[len(flipped)/3] ^= 0xff
	f.Add(flipped)

	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := Read(bytes.NewReader(data))
		if err != nil {
			// Every rejection must carry the corrupt-input classification:
			// the runner's retry/quarantine taxonomy branches on it.
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("rejection %v does not wrap ErrCorrupt", err)
			}
			return
		}
		// A successfully parsed trace must be internally consistent.
		if tr.Len() == 0 {
			t.Fatal("parsed trace with zero records")
		}
		if tr.Image().Size() == 0 {
			t.Fatal("parsed trace with empty image")
		}
		// Replaying a handful of records must not panic.
		st := tr.NewStream()
		for i := 0; i < 32; i++ {
			st.Next()
		}
	})
}

// FuzzBatchedDecode differentially tests the batched record decoder
// against the original one-record-at-a-time reference on arbitrary
// record-section bytes: both must agree on accept/reject and, when they
// accept, produce identical records.
func FuzzBatchedDecode(f *testing.F) {
	w := testWorkload()
	img := w.Image()
	entry := w.Entry()

	// Seed with a real record section (flags bytes + explicit varints).
	var enc bytes.Buffer
	s := w.NewStream()
	var varint [binary.MaxVarintLen64]byte
	for i := 0; i < 500; i++ {
		d := s.Next()
		switch {
		case d.NextPC == d.SI.FallThrough():
			flags := byte(flagSeqNext)
			if d.Taken {
				flags |= flagTaken
			}
			enc.WriteByte(flags)
		case d.Taken && d.SI.Type.IsDirect() && d.NextPC == d.SI.Target:
			enc.WriteByte(flagTaken | flagStatic)
		default:
			flags := byte(flagExplicit)
			if d.Taken {
				flags |= flagTaken
			}
			enc.WriteByte(flags)
			n := binary.PutUvarint(varint[:], d.NextPC)
			enc.Write(varint[:n])
		}
	}
	valid := enc.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add([]byte{})
	f.Add([]byte{flagSeqNext, flagSeqNext | flagTaken, flagTaken | flagStatic})
	f.Add([]byte{flagExplicit, 0x80})                                                       // truncated varint
	f.Add([]byte{flagExplicit, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x7f}) // overflow
	f.Add([]byte{0x00})                                                                     // bad flags

	f.Fuzz(func(t *testing.T, data []byte) {
		got, gotErr := decodeRecords(data, img, entry)
		want, wantErr := decodeRecordsReference(bytes.NewReader(data), img, entry)
		if (gotErr != nil) != (wantErr != nil) {
			t.Fatalf("decoder disagreement: batched err=%v, reference err=%v", gotErr, wantErr)
		}
		if gotErr != nil {
			return
		}
		if len(got) != len(want) {
			t.Fatalf("record count: batched %d, reference %d", len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("record %d: batched %+v, reference %+v", i, got[i], want[i])
			}
		}
	})
}
