// Package prefetch implements the dedicated instruction prefetchers the
// paper compares FDP against: next-line (NL1), the IPC-1 top-3 —
// FNL+MMA (Seznec), D-JOLT (Nakamura et al.) and EIP (Ros/Jimborean, in
// 128KB and 27KB variants) — and the Divide-and-Conquer frontend
// (SN4L + Dis + BTB prefetching, Ansari et al.).
//
// Prefetchers observe the demand L1I access/fill stream through the
// ChampSim-style hooks OnAccess/OnFill/OnBranch and emit candidate line
// addresses; the core filters them against the tag array (charging tag
// probes, Fig. 9) and issues fills through the shared MSHR path.
package prefetch

import "fdp/internal/program"

import (
	"fmt"

	"fdp/internal/obs"
)

// Emit receives prefetch candidate line addresses.
type Emit func(line uint64)

// Build constructs a prefetcher by name. The empty name returns None.
func Build(name string) (Prefetcher, error) {
	switch name {
	case "", "none":
		return None{}, nil
	case "nl1":
		return NL1{}, nil
	case "fnl+mma":
		return NewFNLMMA(), nil
	case "djolt":
		return NewDJOLT(), nil
	case "eip-128kb":
		return NewEIP(EIP128KB()), nil
	case "eip-27kb":
		return NewEIP(EIP27KB()), nil
	case "sn4l+dis":
		return NewSN4LDis(), nil
	case "rdip":
		return NewRDIP(), nil
	}
	return nil, fmt.Errorf("prefetch: unknown prefetcher %q", name)
}

// Prefetcher is the ChampSim-IPC-1-shaped prefetcher interface.
type Prefetcher interface {
	// Name identifies the prefetcher for reports.
	Name() string
	// OnAccess observes every demand L1I lookup (line address, whether it
	// hit, and whether it hit on a not-yet-used prefetched line) and may
	// emit prefetch candidates.
	OnAccess(line uint64, hit, prefHit bool, emit Emit)
	// OnFill observes lines arriving in the L1I (demand or prefetch).
	OnFill(line uint64, emit Emit)
	// OnBranch observes retired branches (ip, type, actual target), the
	// IPC-1 prefetcher_branch_operate hook.
	OnBranch(pc uint64, t program.InstType, target uint64, emit Emit)
	// StorageBits returns the metadata budget in bits.
	StorageBits() int
}

// Instrumented wraps a Prefetcher and counts hook invocations and emitted
// candidates into registry counters ("prefetch.hook.*" and
// "prefetch.candidates"). The wrapper reuses one emit closure so the hot
// path stays allocation-free; it is single-goroutine like the core.
type Instrumented struct {
	inner                            Prefetcher
	hookAccess, hookFill, hookBranch *obs.Counter
	candidates                       *obs.Counter
	cur                              Emit // downstream emit for the current hook call
	wrap                             Emit // stable counting wrapper handed to inner
}

// Instrument wraps p with hook/candidate counters registered in reg. The
// null prefetcher is returned unwrapped.
func Instrument(p Prefetcher, reg *obs.Registry) Prefetcher {
	if _, isNone := p.(None); isNone || p == nil {
		return p
	}
	i := &Instrumented{
		inner:      p,
		hookAccess: reg.Counter("prefetch.hook.on_access"),
		hookFill:   reg.Counter("prefetch.hook.on_fill"),
		hookBranch: reg.Counter("prefetch.hook.on_branch"),
		candidates: reg.Counter("prefetch.candidates"),
	}
	i.wrap = func(line uint64) {
		i.candidates.Inc()
		i.cur(line)
	}
	return i
}

// Unwrap returns the wrapped prefetcher.
func (i *Instrumented) Unwrap() Prefetcher { return i.inner }

// Name implements Prefetcher.
func (i *Instrumented) Name() string { return i.inner.Name() }

// OnAccess implements Prefetcher.
func (i *Instrumented) OnAccess(line uint64, hit, prefHit bool, emit Emit) {
	i.hookAccess.Inc()
	i.cur = emit
	i.inner.OnAccess(line, hit, prefHit, i.wrap)
	i.cur = nil
}

// OnFill implements Prefetcher.
func (i *Instrumented) OnFill(line uint64, emit Emit) {
	i.hookFill.Inc()
	i.cur = emit
	i.inner.OnFill(line, i.wrap)
	i.cur = nil
}

// OnBranch implements Prefetcher.
func (i *Instrumented) OnBranch(pc uint64, t program.InstType, target uint64, emit Emit) {
	i.hookBranch.Inc()
	i.cur = emit
	i.inner.OnBranch(pc, t, target, i.wrap)
	i.cur = nil
}

// StorageBits implements Prefetcher.
func (i *Instrumented) StorageBits() int { return i.inner.StorageBits() }

// None is the null prefetcher.
type None struct{}

// Name implements Prefetcher.
func (None) Name() string { return "none" }

// OnAccess implements Prefetcher.
func (None) OnAccess(uint64, bool, bool, Emit) {}

// OnFill implements Prefetcher.
func (None) OnFill(uint64, Emit) {}

// OnBranch implements Prefetcher.
func (None) OnBranch(uint64, program.InstType, uint64, Emit) {}

// StorageBits implements Prefetcher.
func (None) StorageBits() int { return 0 }

// NL1 is the next-line prefetcher: on a demand miss, prefetch the next
// sequential line (§V "Next line (NL1)").
type NL1 struct{}

// Name implements Prefetcher.
func (NL1) Name() string { return "nl1" }

// OnAccess implements Prefetcher.
func (NL1) OnAccess(line uint64, hit, _ bool, emit Emit) {
	if !hit {
		emit(line + 1)
	}
}

// OnFill implements Prefetcher.
func (NL1) OnFill(uint64, Emit) {}

// OnBranch implements Prefetcher.
func (NL1) OnBranch(uint64, program.InstType, uint64, Emit) {}

// StorageBits implements Prefetcher.
func (NL1) StorageBits() int { return 0 }
