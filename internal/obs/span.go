package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"sync"
	"time"
)

// SpanKind classifies one runner lifecycle span or event. Spans carry a
// duration (where an attempt's wall time went); events are instantaneous
// markers (something happened to the attempt). The taxonomy mirrors the
// runner's job lifecycle: a spec waits in the backlog (queued), resolves
// its post-warmup state (ckpt_wait, then restore or ffwd), simulates its
// measured region (simulate), and publishes (cache_write) — with retry,
// watchdog and quarantine events marking the exceptional paths. See
// docs/OBSERVABILITY.md for the full taxonomy.
type SpanKind uint8

const (
	// SpanQueued: the spec waited in the scheduler backlog before a
	// worker picked it up.
	SpanQueued SpanKind = iota
	// SpanCkptWait: the job waited for its post-warmup checkpoint —
	// a disk-cache read, or another job concurrently building it.
	SpanCkptWait
	// SpanRestore: a fresh oracle was advanced past the warmup region and
	// the checkpointed post-warmup state was loaded.
	SpanRestore
	// SpanFFwd: cold functional fast-forward warmup (training predictors
	// and caches architecturally), including the snapshot build when
	// checkpointing is on.
	SpanFFwd
	// SpanSimulate: the cycle-accurate simulation — the measured region,
	// plus cycle-accurate warmup for runs without fast-forward.
	SpanSimulate
	// SpanCacheWrite: the result cache write plus the journal record.
	SpanCacheWrite

	// SpanCacheHit: event — the spec was served from the result cache
	// without simulating.
	SpanCacheHit
	// SpanRetry: event — a transient attempt failure was scheduled for
	// re-execution after backoff.
	SpanRetry
	// SpanWatchdog: event — the watchdog canceled an attempt that made no
	// forward progress for the deadline.
	SpanWatchdog
	// SpanQuarantine: event — a terminal job failure was contained under
	// keep-going instead of aborting the pool.
	SpanQuarantine

	// SpanLease: the job was leased to a remote worker (distributed
	// backend); the span covers the lease from assignment to its outcome,
	// with the worker URL in Detail.
	SpanLease
	// SpanReassign: event — a lease expired or failed and the job was
	// handed to another worker (Detail carries the failure class), or the
	// backend fell back to local execution (Detail "local-fallback").
	SpanReassign
	// SpanWorkerLost: event — the coordinator declared a worker dead
	// (version skew, or too many consecutive failures) and stopped
	// assigning leases to it.
	SpanWorkerLost

	numSpanKinds
)

var spanKindNames = [numSpanKinds]string{
	SpanQueued:     "queued",
	SpanCkptWait:   "ckpt_wait",
	SpanRestore:    "restore",
	SpanFFwd:       "ffwd",
	SpanSimulate:   "simulate",
	SpanCacheWrite: "cache_write",
	SpanCacheHit:   "cache_hit",
	SpanRetry:      "retry",
	SpanWatchdog:   "watchdog",
	SpanQuarantine: "quarantine",
	SpanLease:      "lease",
	SpanReassign:   "reassign",
	SpanWorkerLost: "worker_lost",
}

// String returns the JSONL wire name of the kind.
func (k SpanKind) String() string {
	if int(k) < len(spanKindNames) {
		return spanKindNames[k]
	}
	return fmt.Sprintf("SpanKind(%d)", uint8(k))
}

// SpanKindFromString maps a wire name back to its SpanKind.
func SpanKindFromString(s string) (SpanKind, bool) {
	for k, name := range spanKindNames {
		if name == s {
			return SpanKind(k), true
		}
	}
	return 0, false
}

// Span is one timed slice (or instantaneous event) of a runner job's
// lifecycle. Times are microseconds relative to the campaign epoch (the
// SpanLog's creation time), so a timeline view needs no wall-clock
// bookkeeping and the records stay small.
type Span struct {
	// Run is the "config/workload" job label.
	Run string
	// Job is the spec index within the campaign; Attempt is 1 for the
	// first execution, +1 per retry (0 for job-level records that precede
	// the attempt loop, like queued and cache_hit).
	Job     int
	Attempt int
	Kind    SpanKind
	// Start is microseconds since the campaign epoch; Dur is the span
	// length in microseconds (0 for events).
	Start int64
	Dur   int64
	// Detail carries kind-specific context: the simulate mode
	// (cold/restored/build), the retry's error class, and so on.
	Detail string
	// Err is the attempt error the span ended with, if any.
	Err string
}

// appendJSONString appends the JSON encoding of s (quotes included).
// Span strings are labels and error texts, which may contain arbitrary
// bytes; encoding/json escapes them all validly.
func appendJSONString(dst []byte, s string) []byte {
	b, err := json.Marshal(s)
	if err != nil {
		// Strings always marshal (invalid UTF-8 is replaced).
		panic(fmt.Sprintf("obs: marshaling string: %v", err))
	}
	return append(dst, b...)
}

// AppendSpanJSONL appends the single-line JSON encoding of sp (without a
// trailing newline) to dst and returns it. Keys are compact: r = run,
// j = job, a = attempt, k = kind, s = start µs, d = duration µs,
// m = detail, e = error; m and e are omitted when empty.
func AppendSpanJSONL(dst []byte, sp Span) []byte {
	dst = append(dst, `{"r":`...)
	dst = appendJSONString(dst, sp.Run)
	dst = append(dst, `,"j":`...)
	dst = strconv.AppendInt(dst, int64(sp.Job), 10)
	dst = append(dst, `,"a":`...)
	dst = strconv.AppendInt(dst, int64(sp.Attempt), 10)
	dst = append(dst, `,"k":"`...)
	dst = append(dst, sp.Kind.String()...)
	dst = append(dst, `","s":`...)
	dst = strconv.AppendInt(dst, sp.Start, 10)
	dst = append(dst, `,"d":`...)
	dst = strconv.AppendInt(dst, sp.Dur, 10)
	if sp.Detail != "" {
		dst = append(dst, `,"m":`...)
		dst = appendJSONString(dst, sp.Detail)
	}
	if sp.Err != "" {
		dst = append(dst, `,"e":`...)
		dst = appendJSONString(dst, sp.Err)
	}
	dst = append(dst, '}')
	return dst
}

// wireSpan is the JSONL representation of a Span.
type wireSpan struct {
	R string `json:"r"`
	J int    `json:"j"`
	A int    `json:"a"`
	K string `json:"k"`
	S int64  `json:"s"`
	D int64  `json:"d"`
	M string `json:"m,omitempty"`
	E string `json:"e,omitempty"`
}

// ParseSpan decodes one JSONL span line.
func ParseSpan(line []byte) (Span, error) {
	var w wireSpan
	if err := json.Unmarshal(line, &w); err != nil {
		return Span{}, fmt.Errorf("obs: bad span line: %w", err)
	}
	k, ok := SpanKindFromString(w.K)
	if !ok {
		return Span{}, fmt.Errorf("obs: unknown span kind %q", w.K)
	}
	return Span{Run: w.R, Job: w.J, Attempt: w.A, Kind: k, Start: w.S, Dur: w.D, Detail: w.M, Err: w.E}, nil
}

// WriteSpans writes the spans as JSONL, one per line.
func WriteSpans(w io.Writer, spans []Span) error {
	bw := bufio.NewWriter(w)
	var line []byte
	for _, sp := range spans {
		line = AppendSpanJSONL(line[:0], sp)
		line = append(line, '\n')
		if _, err := bw.Write(line); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadSpanJSONL parses a span stream produced by WriteSpans or a SpanLog
// sink, skipping blank lines.
func ReadSpanJSONL(r io.Reader) ([]Span, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	var spans []Span
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		sp, err := ParseSpan(line)
		if err != nil {
			return nil, err
		}
		spans = append(spans, sp)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return spans, nil
}

// SpanLog is a concurrency-safe collector of lifecycle spans with one
// shared campaign epoch. Workers emit through the timestamp helpers (Span
// and Event convert wall-clock times into epoch-relative offsets); the
// HTTP monitor reads via All while the campaign runs. An optional sink
// additionally receives every span as JSONL the moment it is emitted, so
// a crash loses at most the in-flight line. A nil *SpanLog disables all
// emission, mirroring the other obs collectors.
type SpanLog struct {
	mu      sync.Mutex
	epoch   time.Time
	spans   []Span
	sink    io.Writer
	buf     []byte
	sinkErr error
}

// NewSpanLog creates an empty log whose epoch is now.
func NewSpanLog() *SpanLog { return &SpanLog{epoch: time.Now()} }

// SetSink attaches a JSONL streaming sink; every subsequently emitted
// span is written (serialized) as one line. Write errors are sticky and
// reported by SinkErr, not propagated to emitters: observability output
// must never fail the simulation that produced it.
func (l *SpanLog) SetSink(w io.Writer) {
	if l == nil {
		return
	}
	l.mu.Lock()
	l.sink = w
	l.mu.Unlock()
}

// Epoch returns the campaign epoch spans are measured from (zero time for
// a nil receiver).
func (l *SpanLog) Epoch() time.Time {
	if l == nil {
		return time.Time{}
	}
	return l.epoch
}

// Add appends a raw span. Safe on a nil receiver and for concurrent use.
func (l *SpanLog) Add(sp Span) {
	if l == nil {
		return
	}
	l.mu.Lock()
	l.spans = append(l.spans, sp)
	if l.sink != nil && l.sinkErr == nil {
		l.buf = AppendSpanJSONL(l.buf[:0], sp)
		l.buf = append(l.buf, '\n')
		if _, err := l.sink.Write(l.buf); err != nil {
			l.sinkErr = err
		}
	}
	l.mu.Unlock()
}

// Span emits a timed span from wall-clock start/end times, converting
// them to epoch offsets. Safe on a nil receiver.
func (l *SpanLog) Span(run string, job, attempt int, kind SpanKind, start, end time.Time, detail, errText string) {
	if l == nil {
		return
	}
	l.Add(Span{
		Run: run, Job: job, Attempt: attempt, Kind: kind,
		Start:  start.Sub(l.epoch).Microseconds(),
		Dur:    end.Sub(start).Microseconds(),
		Detail: detail, Err: errText,
	})
}

// Event emits an instantaneous marker at the current time. Safe on a nil
// receiver.
func (l *SpanLog) Event(run string, job, attempt int, kind SpanKind, detail, errText string) {
	if l == nil {
		return
	}
	now := time.Now()
	l.Span(run, job, attempt, kind, now, now, detail, errText)
}

// All returns a copy of the collected spans, in emission order.
func (l *SpanLog) All() []Span {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]Span(nil), l.spans...)
}

// SinkErr returns the first streaming-sink write error, if any.
func (l *SpanLog) SinkErr() error {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.sinkErr
}
