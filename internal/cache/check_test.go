package cache

import (
	"strings"
	"testing"
)

// TestCheckInvariantsHealthy: a hierarchy going through the normal
// request/advance protocol never trips its invariants.
func TestCheckInvariantsHealthy(t *testing.T) {
	h := smallHierarchy()
	var fills []Fill
	for now := uint64(0); now < 1000; now++ {
		fills = h.Advance(now, fills[:0])
		if now%7 == 0 {
			h.RequestFill(now*64, false, now)
		}
		if err := h.CheckInvariants(now); err != nil {
			t.Fatalf("cycle %d: %v", now, err)
		}
	}
}

// TestCheckInvariantsLeakedMSHR: a fill whose completion cycle has
// passed without being released is reported as a leak.
func TestCheckInvariantsLeakedMSHR(t *testing.T) {
	h := smallHierarchy()
	done, ok := h.RequestFill(0x1000, false, 0)
	if !ok {
		t.Fatal("fill rejected on empty MSHRs")
	}
	// Skipping Advance past the completion cycle models a lost release.
	err := h.CheckInvariants(done + 1)
	if err == nil {
		t.Fatal("leaked MSHR not detected")
	}
	if !strings.Contains(err.Error(), "leaked MSHR") {
		t.Fatalf("unexpected leak error: %v", err)
	}
}

// TestCheckInvariantsOverflow: more in-flight fills than MSHRs is
// structurally impossible via RequestFill, so a corrupted inflight list
// must be reported.
func TestCheckInvariantsOverflow(t *testing.T) {
	h := smallHierarchy()
	for i := 0; i < h.mshrs+1; i++ {
		h.inflight = append(h.inflight, Fill{Line: uint64(i), Done: 1 << 62})
	}
	err := h.CheckInvariants(0)
	if err == nil {
		t.Fatal("MSHR overflow not detected")
	}
	if !strings.Contains(err.Error(), "MSHR") {
		t.Fatalf("unexpected overflow error: %v", err)
	}
}
