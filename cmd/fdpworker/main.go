// Command fdpworker serves the distributed execution worker: it accepts
// leased simulation jobs from a coordinator (any frontend started with
// -workers), runs them through the same local runner.Execute path a
// single-box run uses, and streams heartbeats plus a CRC-sealed result
// envelope back. Results are byte-identical to local execution.
//
// Usage:
//
//	fdpworker -listen :9131
//	fdpworker -listen :9131 -slots 4 -cache ./fdp-cache -checkpoint
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"

	"fdp/internal/dist"
	"fdp/internal/obs"
	"fdp/internal/runner"
)

func main() {
	var (
		listen     = flag.String("listen", ":9131", "address to serve the worker protocol on (use :0 for an ephemeral port)")
		slots      = flag.Int("slots", 0, "concurrent leases to accept (0 = GOMAXPROCS); excess leases are refused with 503 and routed to other workers")
		cacheDir   = flag.String("cache", "", "worker-local result cache directory (re-leased specs replay instead of re-simulating)")
		checkpoint = flag.Bool("checkpoint", false, "reuse post-warmup checkpoints across leases (uses a memory-only store without -cache)")
		watchdog   = flag.Duration("watchdog", 0, "per-lease local progress watchdog (0 = off; coordinators detect hangs via lease expiry and reassign, so this is usually left off)")
		quiet      = flag.Bool("quiet", false, "suppress the startup line")
	)
	flag.Parse()

	var cache *runner.Cache
	var err error
	if *cacheDir != "" {
		cache, err = runner.NewCache(runner.DefaultCacheCapacity, *cacheDir)
		if err != nil {
			fatal("%v", err)
		}
	} else if *checkpoint {
		cache, err = runner.NewCache(runner.DefaultCacheCapacity, "")
		if err != nil {
			fatal("%v", err)
		}
	}

	wk := dist.NewWorker(dist.WorkerOptions{
		Slots:      *slots,
		Cache:      cache,
		Checkpoint: *checkpoint,
		Watchdog:   *watchdog,
		Manifests:  obs.NewManifestLog(),
	})
	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		fatal("%v", err)
	}
	if !*quiet {
		// The fixed prefix is the re-exec handshake: cmd/chaos parses it to
		// learn a :0 child's port.
		fmt.Printf("fdpworker: listening on %s (proto %d, epoch %d)\n",
			ln.Addr(), dist.ProtoVersion, runner.Epoch)
	}
	srv := &http.Server{Handler: wk.Handler()}
	if err := srv.Serve(ln); err != nil && err != http.ErrServerClosed {
		fatal("%v", err)
	}
}

func fatal(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "fdpworker: "+format+"\n", args...)
	os.Exit(1)
}
