// Command wlstat characterizes the synthetic workloads: static footprint
// and branch mix, dynamic working-set size, and (optionally) the baseline
// frontend metrics that determine how frontend-bound each one is.
//
// Usage:
//
//	wlstat               # static + dynamic characterization
//	wlstat -baseline     # also simulate the no-FDP baseline per workload
package main

import (
	"flag"
	"fmt"

	"fdp/internal/core"
	"fdp/internal/program"
	"fdp/internal/stats"
	"fdp/internal/synth"
)

func main() {
	var (
		baseline = flag.Bool("baseline", false, "simulate the baseline for MPKI / perfect-I$ uplift")
		window   = flag.Int("window", 200_000, "working-set window in instructions")
		n        = flag.Int("n", 1_000_000, "dynamic instructions to sample")
	)
	flag.Parse()

	t := stats.NewTable("workload characterization",
		"workload", "class", "code KB", "static branches", "dyn branch%", "taken%", "WSS KB")
	for _, w := range synth.StandardWorkloads() {
		s := w.NewStream()
		var branches, taken uint64
		win := map[uint64]bool{}
		var wssSum, wssN float64
		for i := 0; i < *n; i++ {
			d := s.Next()
			if d.SI.IsBranch() {
				branches++
				if d.Taken {
					taken++
				}
			}
			win[d.SI.PC>>6] = true
			if (i+1)%*window == 0 {
				wssSum += float64(len(win)) / 16
				wssN++
				win = map[uint64]bool{}
			}
		}
		t.AddRow(w.Name, w.Class, w.FootprintBytes()/1024, w.StaticBranches(),
			100*float64(branches)/float64(*n),
			100*float64(taken)/float64(branches),
			wssSum/wssN)
	}
	fmt.Print(t)

	if !*baseline {
		return
	}
	fmt.Println()
	bt := stats.NewTable("baseline frontend behaviour (no FDP, no prefetching)",
		"workload", "IPC", "L1I MPKI", "branch MPKI", "starv/KI", "perfect-I$ uplift")
	for _, w := range synth.StandardWorkloads() {
		base, err := core.Simulate(core.BaselineConfig(), w.NewStream(), w.Name, 150_000, 500_000)
		if err != nil {
			panic(err)
		}
		pcfg := core.BaselineConfig()
		pcfg.Name = "perfect-i$"
		pcfg.PerfectPrefetch = true
		perf, err := core.Simulate(pcfg, w.NewStream(), w.Name, 150_000, 500_000)
		if err != nil {
			panic(err)
		}
		bt.AddRow(w.Name, base.IPC(), base.L1IMPKI(), base.BranchMPKI(),
			base.StarvationPKI(), fmt.Sprintf("%+.1f%%", 100*(perf.Speedup(base)-1)))
	}
	fmt.Print(bt)
	fmt.Println("\n(the paper's selection criterion: every workload shows >5% uplift with a perfect I-cache)")

	// Static instruction mix across the suite.
	fmt.Println()
	mt := stats.NewTable("static instruction mix", "workload", "non-branch", "cond", "jump", "call", "ind-jump", "ind-call", "return")
	for _, w := range synth.StandardWorkloads() {
		h := w.Image().CountByType()
		mt.AddRow(w.Name, h[program.NonBranch], h[program.CondDirect], h[program.Jump],
			h[program.Call], h[program.IndJump], h[program.IndCall], h[program.Return])
	}
	fmt.Print(mt)
}
