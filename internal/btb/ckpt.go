package btb

import (
	"fdp/internal/ckpt"
	"fdp/internal/program"
)

func instTypeFromU8(v uint8) program.InstType { return program.InstType(v) }

// Checkpoint serialization of every BTB organization. Contents and
// replacement state are encoded; lookup statistics are not (the core
// resets them when measurement starts), except the Inserts/Replacements
// training counters, which warmup advances and reports survive.

const (
	tagBTB     = 0x42544231 // "BTB1"
	tagTwoLvl  = 0x4254_4232 // "BTB2"
	tagBB      = 0x4242_4231 // "BBB1"
	tagPerfect = 0x50425442 // "PBTB"
)

// SaveState encodes the tag array, way metadata and replacement clock.
func (b *BTB) SaveState(w *ckpt.Writer) {
	w.Tag(tagBTB)
	w.U64s(b.tags)
	w.Int(len(b.meta))
	for i := range b.meta {
		w.U64(b.meta[i].target)
		w.U64(b.meta[i].lru)
		w.U8(uint8(b.meta[i].typ))
	}
	w.U64(b.lruClock)
	w.U64(b.Inserts)
	w.U64(b.Replacements)
}

// LoadState restores state written by SaveState.
func (b *BTB) LoadState(r *ckpt.Reader) {
	r.Tag(tagBTB)
	r.U64s(b.tags)
	if n := r.Int(); r.Err() == nil && n != len(b.meta) {
		r.Failf("btb: way count mismatch: %d vs %d", n, len(b.meta))
		return
	}
	for i := range b.meta {
		b.meta[i].target = r.U64()
		b.meta[i].lru = r.U64()
		b.meta[i].typ = instTypeFromU8(r.U8())
	}
	b.lruClock = r.U64()
	b.Inserts = r.U64()
	b.Replacements = r.U64()
}

// SaveState encodes both levels plus the promotion counter.
func (t *TwoLevel) SaveState(w *ckpt.Writer) {
	w.Tag(tagTwoLvl)
	t.l1.SaveState(w)
	t.l2.SaveState(w)
	w.Bool(t.LastFromL2)
	w.U64(t.Promotions)
}

// LoadState restores state written by SaveState.
func (t *TwoLevel) LoadState(r *ckpt.Reader) {
	r.Tag(tagTwoLvl)
	t.l1.LoadState(r)
	t.l2.LoadState(r)
	t.LastFromL2 = r.Bool()
	t.Promotions = r.U64()
}

// SaveState encodes every basic-block entry and the replacement clock.
func (b *BasicBlock) SaveState(w *ckpt.Writer) {
	w.Tag(tagBB)
	w.Int(len(b.entries))
	for i := range b.entries {
		e := &b.entries[i]
		w.Bool(e.valid)
		w.U64(e.tag)
		w.U16(e.size)
		w.U8(uint8(e.typ))
		w.U64(e.target)
		w.U64(e.lru)
	}
	w.U64(b.lruClock)
	w.U64(b.Inserts)
	w.U64(b.Replacements)
}

// LoadState restores state written by SaveState.
func (b *BasicBlock) LoadState(r *ckpt.Reader) {
	r.Tag(tagBB)
	if n := r.Int(); r.Err() == nil && n != len(b.entries) {
		r.Failf("bbbtb: entry count mismatch: %d vs %d", n, len(b.entries))
		return
	}
	for i := range b.entries {
		e := &b.entries[i]
		e.valid = r.Bool()
		e.tag = r.U64()
		e.size = r.U16()
		e.typ = instTypeFromU8(r.U8())
		e.target = r.U64()
		e.lru = r.U64()
	}
	b.lruClock = r.U64()
	b.Inserts = r.U64()
	b.Replacements = r.U64()
}

// SaveState encodes the perfect BTB's learned indirect-target table. The
// raw open-addressed arrays are encoded verbatim (not as key/value pairs)
// so a restored table has the identical probe layout and the identical
// future growth behaviour.
func (p *Perfect) SaveState(w *ckpt.Writer) {
	w.Tag(tagPerfect)
	w.U64s(p.indirect.keys)
	w.U64s(p.indirect.vals)
	w.Int(p.indirect.used)
	w.Int(int(p.indirect.shift))
}

// LoadState restores state written by SaveState. The table arrays are
// reallocated to the encoded size (the perfect BTB's table grows with the
// workload's indirect-site count, so its size is state, not geometry).
func (p *Perfect) LoadState(r *ckpt.Reader) {
	r.Tag(tagPerfect)
	// Peek the length via a fresh slice: pcTable growth means the live
	// table size may differ from the checkpoint's.
	n := r.PeekU32()
	if r.Err() != nil {
		return
	}
	if int(n) != len(p.indirect.keys) {
		if n == 0 || n&(n-1) != 0 || n > 1<<22 {
			r.Failf("perfect-btb: bad table size %d", n)
			return
		}
		p.indirect.keys = make([]uint64, n)
		p.indirect.vals = make([]uint64, n)
	}
	r.U64s(p.indirect.keys)
	r.U64s(p.indirect.vals)
	p.indirect.used = r.Int()
	p.indirect.shift = uint(r.Int())
}
