package experiments

import (
	"strings"
	"testing"

	"fdp/internal/core"
	"fdp/internal/synth"
)

// miniOptions is even smaller than tinyOptions, for the many-config
// figure runners.
func miniOptions() Options {
	p := synth.SpecParams(0)
	p.Name = "mini"
	p.Funcs = 100
	w := synth.MustGenerate(p, "spec", 0xF0)
	return Options{Warmup: 8_000, Measure: 30_000, Workloads: []*synth.Workload{w}}
}

var mini = miniOptions()

func TestFig1Shape(t *testing.T) {
	res, err := Fig1(mini)
	if err != nil {
		t.Fatal(err)
	}
	// 5 prefetchers + fdp-alone row.
	if res.Tables[0].NumRows() != 6 {
		t.Errorf("Fig1 rows = %d", res.Tables[0].NumRows())
	}
	if !strings.Contains(res.String(), "fdp alone") {
		t.Error("Fig1 missing fdp-alone row")
	}
}

func TestFig6aShape(t *testing.T) {
	res, err := Fig6a(mini)
	if err != nil {
		t.Fatal(err)
	}
	out := res.String()
	for _, want := range []string{"nl1", "eip-128kb", "perfect", "fdp alone", "perfect BTB"} {
		if !strings.Contains(out, want) {
			t.Errorf("Fig6a missing %q", want)
		}
	}
	// 6 prefetchers + 3 fdp rows.
	if res.Tables[0].NumRows() != 9 {
		t.Errorf("Fig6a rows = %d", res.Tables[0].NumRows())
	}
}

func TestFig8Shape(t *testing.T) {
	res, err := Fig8(mini)
	if err != nil {
		t.Fatal(err)
	}
	if res.Tables[0].NumRows() != len(historyConfigs()) {
		t.Errorf("Fig8 rows = %d", res.Tables[0].NumRows())
	}
	out := res.String()
	for _, p := range []string{"Ideal", "THR", "GHR0", "GHR1", "GHR2", "GHR3"} {
		if !strings.Contains(out, p) {
			t.Errorf("Fig8 missing policy %s", p)
		}
	}
}

func TestFig9Shape(t *testing.T) {
	res, err := Fig9(mini)
	if err != nil {
		t.Fatal(err)
	}
	if res.Tables[0].NumRows() != 3 {
		t.Errorf("Fig9 rows = %d", res.Tables[0].NumRows())
	}
	out := res.String()
	if !strings.Contains(out, "fdp-8k-btb") || !strings.Contains(out, "fdp-4k-btb+eip27") {
		t.Errorf("Fig9 missing configs:\n%s", out)
	}
	if !strings.Contains(out, "tag-access ratio") {
		t.Error("Fig9 missing tag-access ratio note")
	}
}

func TestFig10Shape(t *testing.T) {
	res, err := Fig10(mini)
	if err != nil {
		t.Fatal(err)
	}
	// 3 BTB sizes x 2 histories x 2 prefetchers, minus the
	// perfect-BTB+btb-prefetch combinations: (2*2*2) + (1*2*1) = 10.
	if res.Tables[0].NumRows() != 10 {
		t.Errorf("Fig10 rows = %d, want 10", res.Tables[0].NumRows())
	}
}

func TestFig11Shape(t *testing.T) {
	res, err := Fig11(mini)
	if err != nil {
		t.Fatal(err)
	}
	if res.Tables[0].NumRows() != len(btbSizes) {
		t.Errorf("Fig11 rows = %d", res.Tables[0].NumRows())
	}
}

func TestFig12Shape(t *testing.T) {
	res, err := Fig12(mini)
	if err != nil {
		t.Fatal(err)
	}
	// 5 predictors + perfect-all.
	if res.Tables[0].NumRows() != 6 {
		t.Errorf("Fig12 rows = %d", res.Tables[0].NumRows())
	}
	if !strings.Contains(res.String(), "perfect-all") {
		t.Error("Fig12 missing perfect-all row")
	}
}

// The grid runner must surface simulation errors instead of dropping them.
func TestRunGridPropagatesErrors(t *testing.T) {
	bad := core.DefaultConfig()
	bad.Name = "bad"
	bad.Prefetcher = "no-such-prefetcher"
	if _, err := runGrid(mini, []core.Config{bad}); err == nil {
		t.Error("runGrid swallowed an error")
	}
}

// runGrid must key sets by config name with one run per workload.
func TestRunGridShape(t *testing.T) {
	a := core.BaselineConfig()
	a.Name = "a"
	b := core.DefaultConfig()
	b.Name = "b"
	sets, err := runGrid(mini, []core.Config{a, b})
	if err != nil {
		t.Fatal(err)
	}
	if len(sets) != 2 {
		t.Fatalf("sets = %d", len(sets))
	}
	for _, name := range sortedNames(sets) {
		if got := len(sets[name].Runs); got != len(mini.Workloads) {
			t.Errorf("set %s has %d runs", name, got)
		}
	}
	// FDP beats baseline even at mini scale.
	if sp := sets["b"].GeoMeanSpeedup(sets["a"]); sp <= 0 {
		t.Errorf("speedup = %v", sp)
	}
}

func TestExtensionsRegistered(t *testing.T) {
	exts := Extensions()
	if len(exts) != 6 {
		t.Fatalf("extensions = %d", len(exts))
	}
	if _, ok := ByID("ext-btb2l"); !ok {
		t.Error("ByID(ext-btb2l) failed")
	}
	if _, ok := ByID("ext-shape"); !ok {
		t.Error("ByID(ext-shape) failed")
	}
	all := AllWithExtensions()
	if len(all) != len(All())+len(exts) {
		t.Error("AllWithExtensions incomplete")
	}
}

func TestExtBTB2LShape(t *testing.T) {
	res, err := ExtBTB2L(mini)
	if err != nil {
		t.Fatal(err)
	}
	if res.Tables[0].NumRows() != 4 {
		t.Errorf("rows = %d", res.Tables[0].NumRows())
	}
}

func TestExtPredictorsShape(t *testing.T) {
	res, err := ExtPredictors(mini)
	if err != nil {
		t.Fatal(err)
	}
	if res.Tables[0].NumRows() != 6 {
		t.Errorf("rows = %d", res.Tables[0].NumRows())
	}
	if !strings.Contains(res.String(), "tage-sc-l-64kb") {
		t.Error("missing SC-L row")
	}
}

func TestExtSeedsShape(t *testing.T) {
	o := mini
	o.Warmup, o.Measure = 5_000, 20_000
	res, err := ExtSeeds(o)
	if err != nil {
		t.Fatal(err)
	}
	if res.Tables[0].NumRows() != 3 {
		t.Errorf("rows = %d", res.Tables[0].NumRows())
	}
}

func TestExtBBBTBShape(t *testing.T) {
	res, err := ExtBBBTB(mini)
	if err != nil {
		t.Fatal(err)
	}
	if res.Tables[0].NumRows() != 3 {
		t.Errorf("rows = %d", res.Tables[0].NumRows())
	}
}

func TestExtDataModelShape(t *testing.T) {
	res, err := ExtDataModel(mini)
	if err != nil {
		t.Fatal(err)
	}
	if res.Tables[0].NumRows() != 2 {
		t.Errorf("rows = %d", res.Tables[0].NumRows())
	}
}
