// Package experiments reproduces every table and figure of the paper's
// evaluation (§VI). Each experiment is a named runner that sweeps the
// relevant configurations over the workload set and renders the same rows
// or series the paper reports. Runs are parallelized across a worker pool;
// each (config, workload) pair simulates on its own deterministic stream,
// so results are reproducible regardless of scheduling.
package experiments

import (
	"context"
	"errors"
	"fmt"
	"io"
	"runtime"
	"sort"
	"time"

	"fdp/internal/core"
	"fdp/internal/obs"
	"fdp/internal/runner"
	"fdp/internal/stats"
	"fdp/internal/synth"
)

// Options control run lengths and the workload set. The paper uses 50M
// warmup + 50M measured instructions; the defaults here are scaled down so
// the full suite completes in minutes (see EXPERIMENTS.md for the scaling
// rationale and a -full mode).
type Options struct {
	Warmup    uint64
	Measure   uint64
	Workloads []*synth.Workload
	// Parallel bounds concurrent simulations (defaults to GOMAXPROCS).
	Parallel int

	// Metrics attaches a fresh observability probe set to every run and
	// records a per-run manifest on the resulting stats.Set (parallel to
	// Set.Runs) and, when Manifests is non-nil, into that log as well.
	Metrics bool
	// Manifests optionally collects every run manifest across experiments
	// (concurrency-safe); implies per-run probes like Metrics.
	Manifests *obs.ManifestLog
	// TraceCap, when > 0 together with Metrics, gives each run a
	// ring-buffered pipeline event tracer holding the last TraceCap
	// events; the manifests then also report trace.events/trace.dropped.
	TraceCap int
	// TraceSink, when non-nil, receives each traced run's events as JSONL
	// (one {"run": "config/workload"} header line per run, in completion
	// order; writes are serialized).
	TraceSink io.Writer
	// IntervalEvery, when > 0 together with probes, gives each run an
	// interval time-series recorder snapshotting the cycle-accounting
	// vector every IntervalEvery cycles (bypasses the result cache; see
	// runner.Options).
	IntervalEvery uint64
	// IntervalSink, when non-nil, receives each run's interval records as
	// JSONL at completion (see runner.Options.IntervalSink).
	IntervalSink io.Writer
	// Intervals, when non-nil, receives each run's interval records live
	// as they are snapshotted — the monitor's /intervals source (see
	// runner.Options.Intervals).
	Intervals *obs.IntervalStore
	// Spans, when non-nil, receives every job's lifecycle span timeline —
	// the monitor's /timeline source (see runner.Options.Spans).
	Spans *obs.SpanLog

	// Ctx, when non-nil, cancels pending and in-flight simulations once
	// it is done (simulations poll it; see core.SimulateContext).
	Ctx context.Context
	// Cache, when non-nil, satisfies repeated (config, workload, budget)
	// specs from stored results instead of re-simulating — notably the
	// shared baseline every table and figure re-runs. Bypassed while
	// tracing (see runner.Options.Cache).
	Cache *runner.Cache
	// RunnerReg, when non-nil, receives the scheduler's execution metrics
	// (runner_jobs, runner_cache_hits, runner_queue_depth, ...).
	RunnerReg *obs.Registry
	// Status, when non-nil, receives live job progress updates readable
	// from any goroutine while experiments run (the HTTP monitor's
	// /progress source).
	Status *runner.Status
	// Live, when non-nil, receives each run's manifest as it completes
	// (completion order, so NOT deterministic — the HTTP monitor's
	// /metrics source; implies per-run probes like Metrics). Manifests,
	// by contrast, is filled post-hoc in spec order.
	Live *obs.ManifestLog

	// WatchdogTimeout, when > 0, cancels any simulation making no forward
	// progress for this long (see runner.Options.WatchdogTimeout).
	WatchdogTimeout time.Duration
	// Retry bounds re-execution of transiently failed jobs.
	Retry runner.RetryPolicy
	// KeepGoing quarantines failing jobs (their runs are simply missing
	// from the resulting sets) instead of aborting the whole grid.
	KeepGoing bool
	// Journal, when non-nil, is the crash-safe completion WAL gating
	// cache trust on resume (see runner.Options.Journal).
	Journal *runner.Journal
	// Check enables per-cycle invariant checking in every simulated core.
	Check bool
	// FastForward warms every run up functionally (train predictors and
	// caches architecturally, skip pipeline timing) instead of
	// cycle-accurately. Different warmup semantics — results shift
	// slightly and cache under a distinct identity — but warmup cost
	// drops by roughly the simulated IPC.
	FastForward bool
	// Checkpoint, with FastForward and Cache, pays each distinct warmup
	// once per (workload, training config) and restores the checkpointed
	// post-warmup state for every other grid point (see
	// runner.Options.Checkpoint).
	Checkpoint bool
	// Backend, when non-nil, executes each attempt remotely (see
	// runner.Options.Backend — the distributed coordinator).
	Backend runner.Backend
}

// observed reports whether runs should carry probe sets.
func (o *Options) observed() bool {
	return o.Metrics || o.Manifests != nil || o.Live != nil ||
		(o.TraceCap > 0 && o.TraceSink != nil) ||
		(o.IntervalEvery > 0 && (o.IntervalSink != nil || o.Intervals != nil))
}

// DefaultOptions returns the standard scaled-down evaluation: all 12
// workloads, 200K warmup + 800K measured instructions each.
func DefaultOptions() Options {
	return Options{Warmup: 200_000, Measure: 800_000, Workloads: synth.StandardWorkloads()}
}

// QuickOptions returns a fast smoke-level evaluation: 6 workloads, 50K
// warmup + 200K measured.
func QuickOptions() Options {
	ws, err := synth.Resolve("server_a", "server_b", "client_a", "client_b", "spec_a", "spec_b")
	if err != nil {
		panic(err) // the quick set names standard workloads only
	}
	return Options{Warmup: 50_000, Measure: 200_000, Workloads: ws}
}

// FullOptions returns the heavyweight evaluation: all workloads, 2M warmup
// + 8M measured instructions.
func FullOptions() Options {
	return Options{Warmup: 2_000_000, Measure: 8_000_000, Workloads: synth.StandardWorkloads()}
}

// ParseWorkloads resolves the -workloads / -workload-spec frontend
// flags into a workload suite override: workloads is a comma-separated
// list of standard names and @file.yaml references, specFiles a
// comma-separated list of spec paths. Either may be empty.
func ParseWorkloads(workloads, specFiles string) ([]*synth.Workload, error) {
	return synth.ParseWorkloadFlags(workloads, specFiles, workloads != "")
}

func (o *Options) parallel() int {
	if o.Parallel > 0 {
		return o.Parallel
	}
	return runtime.GOMAXPROCS(0)
}

func (o *Options) ctx() context.Context {
	if o.Ctx != nil {
		return o.Ctx
	}
	return context.Background()
}

// Result is the rendered output of one experiment.
type Result struct {
	ID     string
	Title  string
	Tables []*stats.Table
	Notes  []string
}

// String renders the result.
func (r *Result) String() string {
	out := fmt.Sprintf("### %s: %s\n\n", r.ID, r.Title)
	for _, t := range r.Tables {
		out += t.String() + "\n"
	}
	for _, n := range r.Notes {
		out += "note: " + n + "\n"
	}
	return out
}

// Runner executes one experiment.
type Runner func(Options) (*Result, error)

// Experiment pairs an ID with its runner.
type Experiment struct {
	ID    string
	Title string
	Run   Runner
}

// All returns every experiment in paper order.
func All() []Experiment {
	return []Experiment{
		{"fig1", "Prefetching limit study (IPC-1-like framework, perfect BTB)", Fig1},
		{"tab1", "BTB capacity gap between academia and industry", Table1},
		{"tab2", "Handling BTB-miss not-taken branches", Table2},
		{"tab3", "FTQ hardware overhead", Table3},
		{"tab4", "Common simulation parameters", Table4},
		{"tab5", "Branch history management policies", Table5},
		{"fig6a", "IPC improvement by instruction prefetching", Fig6a},
		{"fig6b", "Per-trace EIP-128KB improvement vs branch MPKI", Fig6b},
		{"fig7", "PFC benefit vs BTB capacity", Fig7},
		{"fig8", "Branch history management", Fig8},
		{"fig9", "ISO-budget analysis", Fig9},
		{"fig10", "BTB prefetching (SN4L+Dis+BTB)", Fig10},
		{"fig11", "BTB capacity sensitivity", Fig11},
		{"fig12", "Branch direction predictor sensitivity", Fig12},
		{"fig13", "Prediction bandwidth / BTB latency sensitivity", Fig13},
		{"fig14", "FTQ size sensitivity and exposed misses", Fig14},
	}
}

// ByID returns the experiment with the given ID, searching the paper
// artifacts and the extensions.
func ByID(id string) (Experiment, bool) {
	for _, e := range AllWithExtensions() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// runGrid simulates every config over every workload through the shared
// run-execution subsystem (internal/runner) and returns one Set per
// config, keyed by config name, with runs in workload order. The first
// failing job cancels the remaining and in-flight ones.
func runGrid(opts Options, configs []core.Config) (map[string]*stats.Set, error) {
	specs := make([]runner.Spec, 0, len(configs)*len(opts.Workloads))
	for _, cfg := range configs {
		for _, wl := range opts.Workloads {
			sp := runner.WorkloadSpec(cfg, wl, opts.Warmup, opts.Measure)
			sp.FFwd = opts.FastForward
			specs = append(specs, sp)
		}
	}
	results, err := runner.Execute(opts.ctx(), specs, runner.Options{
		Parallel:        opts.parallel(),
		Cache:           opts.Cache,
		Observe:         opts.observed(),
		TraceCap:        opts.TraceCap,
		TraceSink:       opts.TraceSink,
		IntervalEvery:   opts.IntervalEvery,
		IntervalSink:    opts.IntervalSink,
		Intervals:       opts.Intervals,
		Spans:           opts.Spans,
		Reg:             opts.RunnerReg,
		Status:          opts.Status,
		Manifests:       opts.Live,
		WatchdogTimeout: opts.WatchdogTimeout,
		Retry:           opts.Retry,
		KeepGoing:       opts.KeepGoing,
		Journal:         opts.Journal,
		Check:           opts.Check,
		Checkpoint:      opts.Checkpoint,
		Backend:         opts.Backend,
	})
	if err != nil {
		// Under KeepGoing a classified job error means "some jobs were
		// quarantined, the rest completed" — build the sets from what
		// finished. Anything else still aborts the experiment.
		var jerr *runner.Error
		if !(opts.KeepGoing && errors.As(err, &jerr)) {
			return nil, err
		}
	}

	sets := make(map[string]*stats.Set)
	for _, cfg := range configs {
		sets[cfg.Name] = &stats.Set{Config: cfg.Name}
	}
	for i, res := range results {
		if res.Run == nil {
			continue // quarantined under KeepGoing
		}
		set := sets[specs[i].Config.Name]
		set.Add(res.Run)
		if res.Manifest != nil {
			opts.Manifests.Add(res.Manifest)
			set.Manifests = append(set.Manifests, res.Manifest)
		}
	}
	return sets, nil
}

// speedupPct formats a speedup ratio as a percent-improvement string.
func speedupPct(sp float64) string {
	return fmt.Sprintf("%+.1f%%", 100*(sp-1))
}

// sortedNames returns map keys in sorted order (determinism for reports).
func sortedNames(m map[string]*stats.Set) []string {
	names := make([]string, 0, len(m))
	for k := range m {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}
