package experiments

import (
	"testing"

	"fdp/internal/core"
)

// TestHeadlineShapes asserts the paper's load-bearing orderings at quick
// scale. This is the reproduction's acceptance test; it takes a couple of
// minutes, so it is skipped under -short.
func TestHeadlineShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("headline shapes need quick-scale runs")
	}
	opts := QuickOptions()

	base := core.BaselineConfig()
	fdp := core.DefaultConfig()

	smallOff := core.DefaultConfig()
	smallOff.Name = "btb1k-pfc-off"
	smallOff.BTBEntries = 1024
	smallOff.PFC = false
	smallOn := smallOff
	smallOn.Name = "btb1k-pfc-on"
	smallOn.PFC = true

	ghr2 := core.DefaultConfig()
	ghr2.Name = "ghr2"
	ghr2.HistPolicy = core.HistGHRFix
	ghr2.BTBAllocPolicy = core.AllocTakenOnly

	eip := core.BaselineConfig()
	eip.Name = "eip-128kb"
	eip.Prefetcher = "eip-128kb"

	sets, err := runGrid(opts, []core.Config{base, fdp, smallOff, smallOn, ghr2, eip})
	if err != nil {
		t.Fatal(err)
	}
	baseSet := sets["baseline"]
	sp := func(name string) float64 { return sets[name].GeoMeanSpeedup(baseSet) }

	// 1. FDP gives a large speedup over the no-FDP baseline.
	if got := sp("fdp"); got < 1.15 {
		t.Errorf("FDP speedup %.3f, want > 1.15", got)
	}
	// 2. FDP alone is at least competitive with EIP-128KB without FDP
	//    (the paper's central claim, Fig 1/6a).
	if f, e := sp("fdp"), sp("eip-128kb"); f < e {
		t.Errorf("FDP (%.3f) below EIP-128KB without FDP (%.3f)", f, e)
	}
	// 3. PFC rescues a small BTB (Fig 7).
	if off, on := sp("btb1k-pfc-off"), sp("btb1k-pfc-on"); on <= off {
		t.Errorf("PFC did not help 1K BTB: %.3f -> %.3f", off, on)
	}
	// 4. THR beats the fixup policy GHR2 (Fig 8).
	if thr, g := sp("fdp"), sp("ghr2"); thr <= g {
		t.Errorf("THR (%.3f) not above GHR2 (%.3f)", thr, g)
	}
	// 5. GHR2 actually pays fixup flushes.
	var flushes uint64
	for _, r := range sets["ghr2"].Runs {
		flushes += r.HistFixupFlushes
	}
	if flushes == 0 {
		t.Error("GHR2 recorded no fixup flushes")
	}
	// 6. FDP reduces starvation (the mechanism, Fig 14).
	if b, f := baseSet.MeanStarvationPKI(), sets["fdp"].MeanStarvationPKI(); f >= b {
		t.Errorf("starvation not reduced: %.1f -> %.1f", b, f)
	}
}
