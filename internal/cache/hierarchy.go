package cache

import "fdp/internal/obs"

// Latencies are the fixed access latencies (in cycles) of each level of the
// instruction-side hierarchy, charged on top of the L1I pipeline itself.
type Latencies struct {
	L2  uint64 // L1I miss, L2 hit
	LLC uint64 // L2 miss, LLC hit
	Mem uint64 // LLC miss
}

// DefaultLatencies returns Sunny-Cove-like latencies (Table IV).
func DefaultLatencies() Latencies { return Latencies{L2: 14, LLC: 44, Mem: 210} }

// Fill describes one in-flight line fill.
type Fill struct {
	Line     uint64
	Done     uint64 // completion cycle
	Prefetch bool   // true if no demand request has merged into it
	// Demanded is the cycle at which a demand request first needed this
	// line (==issue cycle for demand fills); used for exposed-miss
	// classification.
	Demanded uint64
	// Way is the L1I way the line landed in (set by Advance).
	Way int
}

// Hierarchy is the instruction-side memory system: an L1I backed by a
// unified L2 and LLC with fixed latencies, and an MSHR file bounding the
// number of in-flight fills. Lower-level state (L2/LLC tags) is updated at
// request time; only the L1I fill is delayed by the computed latency.
type Hierarchy struct {
	L1I *Cache
	L2  *Cache
	LLC *Cache
	Lat Latencies

	mshrs    int
	inflight []Fill
	// nextDone is the earliest completion cycle among in-flight fills
	// (meaningful only when inflight is non-empty), letting Advance skip
	// the scan on cycles where nothing can complete.
	nextDone uint64
	obs      *obs.Probes // nil unless a probe set is attached

	// Stats.
	DemandFills   uint64
	PrefetchFills uint64
	MemAccesses   uint64 // requests that reached DRAM
	MSHRFull      uint64 // fill requests rejected for lack of an MSHR
}

// NewHierarchy builds a hierarchy. mshrs bounds in-flight fills (demand +
// prefetch combined), modelling a shared MSHR file.
func NewHierarchy(l1iBytes, l1iWays, l2Bytes, l2Ways, llcBytes, llcWays, mshrs int, lat Latencies) *Hierarchy {
	return &Hierarchy{
		L1I:   New("l1i", l1iBytes, l1iWays),
		L2:    New("l2", l2Bytes, l2Ways),
		LLC:   New("llc", llcBytes, llcWays),
		Lat:   lat,
		mshrs: mshrs,
	}
}

// DefaultHierarchy returns the Table IV configuration: 32KB/8-way L1I,
// 1MB/16-way L2, 8MB/16-way LLC, 16 MSHRs.
func DefaultHierarchy() *Hierarchy {
	return NewHierarchy(32*1024, 8, 1024*1024, 16, 8*1024*1024, 16, 16, DefaultLatencies())
}

// InFlight returns the number of outstanding fills.
func (h *Hierarchy) InFlight() int { return len(h.inflight) }

// Observe attaches (or detaches, with nil) an observability probe set:
// MSHR occupancy is sampled each Advance, demand-miss fill latencies feed
// the L1I miss-latency histogram, prefetch-to-use distances are measured
// on demand hits of prefetched lines, and fill / prefetch-issue events go
// to the probe set's tracer when one is enabled.
func (h *Hierarchy) Observe(p *obs.Probes) {
	h.obs = p
	h.L1I.obs = p
}

// Pending reports whether a fill for the line is outstanding and, if so,
// its completion cycle.
func (h *Hierarchy) Pending(line uint64) (done uint64, pending bool) {
	for i := range h.inflight {
		if h.inflight[i].Line == line {
			return h.inflight[i].Done, true
		}
	}
	return 0, false
}

// lowerLatency walks L2 and LLC for a line, updating their contents, and
// returns the total fill latency for the L1I.
func (h *Hierarchy) lowerLatency(line uint64) uint64 {
	if hit, _ := h.L2.Probe(line); hit {
		return h.Lat.L2
	}
	if hit, _ := h.LLC.Probe(line); hit {
		h.L2.Fill(line, false)
		return h.Lat.L2 + h.Lat.LLC
	}
	h.MemAccesses++
	h.LLC.Fill(line, false)
	h.L2.Fill(line, false)
	return h.Lat.L2 + h.Lat.LLC + h.Lat.Mem
}

// RequestFill starts (or merges into) a fill of the line, returning the
// cycle at which the L1I will contain it. ok is false if no MSHR is
// available. A demand request merging into a prefetch fill converts it to
// demand and records the demand time.
func (h *Hierarchy) RequestFill(line uint64, prefetch bool, now uint64) (done uint64, ok bool) {
	for i := range h.inflight {
		if h.inflight[i].Line == line {
			f := &h.inflight[i]
			if !prefetch && f.Prefetch {
				f.Prefetch = false
				f.Demanded = now
				if h.obs != nil {
					// A demand merging into a prefetch still waits for the
					// remaining latency: a late (partially timely) prefetch.
					h.obs.MissLat.Observe(f.Done - now)
				}
			}
			return f.Done, true
		}
	}
	if len(h.inflight) >= h.mshrs {
		h.MSHRFull++
		return 0, false
	}
	lat := h.lowerLatency(line)
	done = now + lat
	f := Fill{Line: line, Done: done, Prefetch: prefetch}
	if prefetch {
		h.PrefetchFills++
	} else {
		h.DemandFills++
		f.Demanded = now
	}
	if h.obs != nil {
		if prefetch {
			h.obs.Tracer.Emit(obs.EvPrefetchIssue, line, lat)
		} else {
			h.obs.MissLat.Observe(lat)
		}
	}
	if len(h.inflight) == 0 || done < h.nextDone {
		h.nextDone = done
	}
	h.inflight = append(h.inflight, f)
	return done, true
}

// Advance completes all fills due at or before now, inserting them into the
// L1I and returning them (completed fills are appended to out to avoid
// per-cycle allocation).
func (h *Hierarchy) Advance(now uint64, out []Fill) []Fill {
	if h.obs != nil {
		// One sample per cycle: Advance is the hierarchy's clock tick.
		h.obs.MSHROcc.Observe(uint64(len(h.inflight)))
		h.L1I.clock = now
	}
	if len(h.inflight) == 0 || now < h.nextDone {
		// Nothing in flight, or the earliest fill is still in the future:
		// no fill can complete this cycle (the common steady-state case).
		return out
	}
	kept := h.inflight[:0]
	next := ^uint64(0)
	for _, f := range h.inflight {
		if f.Done <= now {
			f.Way = h.L1I.Fill(f.Line, f.Prefetch)
			if h.obs != nil {
				var pf uint64
				if f.Prefetch {
					pf = 1
				}
				h.obs.Tracer.Emit(obs.EvFill, f.Line, pf)
			}
			out = append(out, f)
		} else {
			if f.Done < next {
				next = f.Done
			}
			kept = append(kept, f)
		}
	}
	h.inflight = kept
	h.nextDone = next
	return out
}

// InstantFill walks the lower levels for traffic accounting and fills the
// L1I immediately, returning the way used. It models the paper's perfect
// prefetching: "a prefetch brings the data into the cache instantaneously
// but still sends out the request to the memory subsystem".
func (h *Hierarchy) InstantFill(line uint64) (way int) {
	h.lowerLatency(line)
	h.PrefetchFills++
	return h.L1I.Fill(line, false)
}

// Reset clears all cache contents, in-flight fills and statistics.
func (h *Hierarchy) Reset() {
	h.L1I.Reset()
	h.L2.Reset()
	h.LLC.Reset()
	h.inflight = h.inflight[:0]
	h.DemandFills, h.PrefetchFills, h.MemAccesses, h.MSHRFull = 0, 0, 0, 0
}

// ResetStats clears statistics but keeps cache contents (end of warmup).
func (h *Hierarchy) ResetStats() {
	h.L1I.ResetStats()
	h.L2.ResetStats()
	h.LLC.ResetStats()
	h.DemandFills, h.PrefetchFills, h.MemAccesses, h.MSHRFull = 0, 0, 0, 0
}
