package core

// Stress tests: squeeze each frontend resource to its minimum and verify
// the machine still makes forward progress with sane statistics. These
// exercise the retry/backpressure paths (MSHR-full, decode-queue-full,
// I-TLB misses) that the default configuration rarely hits.

import (
	"context"
	"reflect"
	"testing"

	"fdp/internal/stats"
	"fdp/internal/synth"
)

func stressWorkload() *synth.Workload {
	p := synth.ServerParams(0)
	p.Name = "stress"
	p.Funcs = 500
	return synth.MustGenerate(p, "server", 0x57E55)
}

var stressWL = stressWorkload()

func runStress(t *testing.T, mutate func(*Config)) {
	t.Helper()
	cfg := DefaultConfig()
	mutate(&cfg)
	r, err := Simulate(cfg, stressWL.NewStream(), stressWL.Name, 10_000, 60_000)
	if err != nil {
		t.Fatalf("%s: %v", cfg.Name, err)
	}
	if r.IPC() <= 0 || r.IPC() > float64(cfg.DecodeWidth) {
		t.Errorf("%s: IPC = %v", cfg.Name, r.IPC())
	}
}

func TestSingleMSHR(t *testing.T) {
	runStress(t, func(c *Config) { c.Name = "mshr1"; c.MSHRs = 1 })
}

func TestTinyDecodeQueue(t *testing.T) {
	runStress(t, func(c *Config) { c.Name = "dq"; c.DecodeQueueCap = c.FetchWidth })
}

func TestTinyITLB(t *testing.T) {
	runStress(t, func(c *Config) {
		c.Name = "itlb"
		c.ITLBEntries = 2
		c.ITLBWays = 1
		c.ITLBMissPenalty = 20
	})
}

func TestTinyL1I(t *testing.T) {
	runStress(t, func(c *Config) { c.Name = "l1i"; c.L1IBytes = 2048; c.L1IWays = 2 })
}

func TestMinimalBTB(t *testing.T) {
	runStress(t, func(c *Config) { c.Name = "btb"; c.BTBEntries = 16; c.BTBWays = 2 })
}

func TestShallowRAS(t *testing.T) {
	runStress(t, func(c *Config) { c.Name = "ras"; c.RASDepth = 2 })
}

func TestHugeResolveLatency(t *testing.T) {
	runStress(t, func(c *Config) { c.Name = "resolve"; c.ResolveLatency = 100 })
}

func TestWidePredictNarrowFetch(t *testing.T) {
	runStress(t, func(c *Config) { c.Name = "wide"; c.PredictWidth = 24; c.FetchWidth = 2; c.DecodeWidth = 2 })
}

func TestConstantBackendStalls(t *testing.T) {
	runStress(t, func(c *Config) { c.Name = "stall"; c.StallProb = 0.5; c.StallCycles = 3 })
}

func TestEveryPrefetcherUnderPressure(t *testing.T) {
	for _, pf := range []string{"nl1", "fnl+mma", "djolt", "eip-27kb", "sn4l+dis"} {
		pf := pf
		runStress(t, func(c *Config) {
			c.Name = "pf-" + pf
			c.Prefetcher = pf
			c.MSHRs = 2 // prefetches and demand fills fight for MSHRs
			c.L1IBytes = 4096
			c.L1IWays = 2
		})
	}
}

// The frontend must tolerate a workload shorter than its runahead (the
// oracle wraps immediately).
func TestVeryShortRun(t *testing.T) {
	r, err := Simulate(DefaultConfig(), stressWL.NewStream(), stressWL.Name, 0, 100)
	if err != nil {
		t.Fatal(err)
	}
	if r.Instructions < 100 {
		t.Errorf("Instructions = %d", r.Instructions)
	}
}

// Warmup-free runs must work (statistics start from a cold machine), and
// fast-forward mode with nothing to fast-forward over must degenerate to
// exactly the plain run.
func TestNoWarmup(t *testing.T) {
	r, err := Simulate(DefaultConfig(), stressWL.NewStream(), stressWL.Name, 0, 50_000)
	if err != nil {
		t.Fatal(err)
	}
	if r.IPC() <= 0 {
		t.Errorf("IPC = %v", r.IPC())
	}

	ff, err := SimulateOptions(context.Background(), DefaultConfig(), stressWL.NewStream(), stressWL.Name,
		0, 50_000, SimOptions{FastForward: true})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r, ff) {
		t.Errorf("zero-warmup fast-forward run differs from plain run:\nplain %+v\nffwd  %+v", r, ff)
	}
}

// TestTwoLevelBTBExtension: the two-level BTB must run and behave like a
// capacity between its L1 and the flat L2.
func TestTwoLevelBTBExtension(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Name = "btb-2l"
	cfg.L1BTBEntries = 128
	cfg.L1BTBWays = 4
	cfg.L2BTBPenalty = 3
	r, err := Simulate(cfg, stressWL.NewStream(), stressWL.Name, 20_000, 100_000)
	if err != nil {
		t.Fatal(err)
	}
	if r.IPC() <= 0 {
		t.Errorf("IPC = %v", r.IPC())
	}
	// A flat 8K BTB with no redirect penalty must be at least as fast.
	flat, err := Simulate(DefaultConfig(), stressWL.NewStream(), stressWL.Name, 20_000, 100_000)
	if err != nil {
		t.Fatal(err)
	}
	if r.IPC() > flat.IPC()*1.02 {
		t.Errorf("two-level (%v) implausibly beats flat ideal-latency BTB (%v)", r.IPC(), flat.IPC())
	}
}

// TestExtendedPredictorsRun: the perceptron and TAGE-SC-L options must
// simulate and land in a sane accuracy band.
func TestExtendedPredictorsRun(t *testing.T) {
	base, err := Simulate(DefaultConfig(), stressWL.NewStream(), stressWL.Name, 20_000, 100_000)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range []DirKind{DirPerceptron, DirTAGESCL24, DirTAGESCL64} {
		cfg := DefaultConfig()
		cfg.Name = string(d)
		cfg.Dir = d
		r, err := Simulate(cfg, stressWL.NewStream(), stressWL.Name, 20_000, 100_000)
		if err != nil {
			t.Fatal(err)
		}
		if r.IPC() <= 0 {
			t.Errorf("%s: IPC = %v", d, r.IPC())
		}
		// SC-L must not be drastically worse than plain TAGE.
		if d != DirPerceptron && r.IPC() < 0.9*base.IPC() {
			t.Errorf("%s IPC %.3f far below TAGE %.3f", d, r.IPC(), base.IPC())
		}
	}
}

// TestFTQSizeMonotonicity: more FTQ run-ahead must not hurt materially
// (the Fig. 14 curve is monotone up to noise).
func TestFTQSizeMonotonicity(t *testing.T) {
	var last float64
	for i, sz := range []int{2, 8, 24} {
		cfg := DefaultConfig()
		cfg.Name = "ftq"
		cfg.FTQEntries = sz
		if sz == 2 {
			cfg.PFC = false
		}
		r, err := Simulate(cfg, stressWL.NewStream(), stressWL.Name, 50_000, 250_000)
		if err != nil {
			t.Fatal(err)
		}
		if i > 0 && r.IPC() < last*0.99 {
			t.Errorf("FTQ %d IPC %.3f below smaller FTQ's %.3f", sz, r.IPC(), last)
		}
		last = r.IPC()
	}
}

// TestPredictBandwidthMonotonicity: B6 <= B12 within tolerance.
func TestPredictBandwidthMonotonicity(t *testing.T) {
	ipc := func(width int) float64 {
		cfg := DefaultConfig()
		cfg.Name = "bw"
		cfg.PredictWidth = width
		r, err := Simulate(cfg, stressWL.NewStream(), stressWL.Name, 50_000, 250_000)
		if err != nil {
			t.Fatal(err)
		}
		return r.IPC()
	}
	if b6, b12 := ipc(6), ipc(12); b6 > b12*1.01 {
		t.Errorf("B6 (%.3f) beats B12 (%.3f)", b6, b12)
	}
}

// TestMemLatencySensitivity: slower memory must hurt the baseline more
// than the FDP machine (latency hiding is FDP's whole point).
func TestMemLatencySensitivity(t *testing.T) {
	run := func(cfg Config, memLat uint64) float64 {
		cfg.Lat.Mem = memLat
		r, err := Simulate(cfg, stressWL.NewStream(), stressWL.Name, 50_000, 250_000)
		if err != nil {
			t.Fatal(err)
		}
		return r.IPC()
	}
	baseFast := run(BaselineConfig(), 100)
	baseSlow := run(BaselineConfig(), 400)
	fdpFast := run(DefaultConfig(), 100)
	fdpSlow := run(DefaultConfig(), 400)
	baseLoss := baseFast / baseSlow
	fdpLoss := fdpFast / fdpSlow
	if fdpLoss > baseLoss*1.02 {
		t.Errorf("FDP lost more from slow memory (%.3fx) than baseline (%.3fx)", fdpLoss, baseLoss)
	}
}

// TestMispredBreakdownSums: the per-cause misprediction counters must
// partition (up to the non-branch residue) the total.
func TestMispredBreakdownSums(t *testing.T) {
	r, err := Simulate(DefaultConfig(), stressWL.NewStream(), stressWL.Name, 30_000, 200_000)
	if err != nil {
		t.Fatal(err)
	}
	parts := r.MispredCond + r.MispredIndirect + r.MispredReturn + r.MispredBTBMiss
	if parts > r.Mispredictions {
		t.Errorf("breakdown %d exceeds total %d", parts, r.Mispredictions)
	}
	// The unclassified residue (e.g. wrong-PFC direct branches) must be
	// small.
	if r.Mispredictions-parts > r.Mispredictions/5 {
		t.Errorf("breakdown covers only %d of %d", parts, r.Mispredictions)
	}
	if r.MispredCond == 0 {
		t.Error("no conditional mispredictions recorded")
	}
}

// TestBasicBlockBTBRuns: the BB-BTB organization must run and detect
// not-taken conditionals on covered blocks (no GHR fixups needed even
// under the fix policy).
func TestBasicBlockBTBRuns(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Name = "bbbtb"
	cfg.BasicBlockBTB = true
	cfg.HistPolicy = HistGHRFix
	cfg.BTBAllocPolicy = AllocAll
	r, err := Simulate(cfg, stressWL.NewStream(), stressWL.Name, 30_000, 150_000)
	if err != nil {
		t.Fatal(err)
	}
	if r.IPC() <= 0 {
		t.Errorf("IPC = %v", r.IPC())
	}
	// Compare against the instruction BTB under the same policy: the
	// BB-BTB's perfect per-block detection must cut fixup flushes.
	flat := cfg
	flat.Name = "flat"
	flat.BasicBlockBTB = false
	fr, err := Simulate(flat, stressWL.NewStream(), stressWL.Name, 30_000, 150_000)
	if err != nil {
		t.Fatal(err)
	}
	if r.HistFixupFlushes >= fr.HistFixupFlushes {
		t.Errorf("BB-BTB fixups %d not below instruction-BTB's %d (with taken-only... all-alloc)",
			r.HistFixupFlushes, fr.HistFixupFlushes)
	}
}

// TestBasicBlockBTBConfigValidation: incompatible combinations rejected.
func TestBasicBlockBTBConfigValidation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.BasicBlockBTB = true
	cfg.PerfectBTB = true
	if _, err := New(cfg, stressWL.NewStream()); err == nil {
		t.Error("BB-BTB + perfect BTB accepted")
	}
	cfg = DefaultConfig()
	cfg.BasicBlockBTB = true
	cfg.L1BTBEntries = 64
	cfg.L1BTBWays = 4
	if _, err := New(cfg, stressWL.NewStream()); err == nil {
		t.Error("BB-BTB + two-level accepted")
	}
}

// TestDataModel: the cache-driven data side must run deterministically and
// a larger data footprint must cost IPC.
func TestDataModel(t *testing.T) {
	run := func(footprint int) *stats.Run {
		cfg := DefaultConfig()
		cfg.Name = "data"
		cfg.DataModel = true
		cfg.DataFootprint = footprint
		r, err := Simulate(cfg, stressWL.NewStream(), stressWL.Name, 30_000, 150_000)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	small := run(32 * 1024) // fits L1D: almost no stalls
	big := run(32 * 1024 * 1024)
	if small.IPC() <= big.IPC() {
		t.Errorf("bigger data footprint did not cost IPC: %.3f vs %.3f", small.IPC(), big.IPC())
	}
	// Determinism.
	a, b := run(8*1024*1024), run(8*1024*1024)
	if a.Cycles != b.Cycles {
		t.Errorf("data model nondeterministic: %d vs %d cycles", a.Cycles, b.Cycles)
	}
}

// TestDataModelPreservesFDPBenefit: the headline conclusion must survive a
// cache-driven backend.
func TestDataModelPreservesFDPBenefit(t *testing.T) {
	run := func(cfg Config) *stats.Run {
		cfg.DataModel = true
		r, err := Simulate(cfg, stressWL.NewStream(), stressWL.Name, 40_000, 200_000)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	base := run(BaselineConfig())
	fdp := run(DefaultConfig())
	if fdp.Speedup(base) < 1.05 {
		t.Errorf("FDP speedup under data model = %.3f", fdp.Speedup(base))
	}
}

// TestValidateMatrix covers every rejection branch of Config.Validate.
func TestValidateMatrix(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Config)
	}{
		{"ftq", func(c *Config) { c.FTQEntries = 0 }},
		{"widths", func(c *Config) { c.PredictWidth = 0 }},
		{"fetch", func(c *Config) { c.FetchWidth = 0 }},
		{"decode", func(c *Config) { c.DecodeWidth = 0 }},
		{"taken", func(c *Config) { c.MaxTakenPerCycle = 0 }},
		{"dq", func(c *Config) { c.DecodeQueueCap = 1 }},
		{"btblat", func(c *Config) { c.BTBLatency = 0 }},
		{"btb", func(c *Config) { c.BTBEntries = 0 }},
		{"btbways", func(c *Config) { c.BTBWays = 0 }},
		{"l1btb", func(c *Config) { c.L1BTBEntries = 64; c.L1BTBWays = 0 }},
		{"bb+perfect", func(c *Config) { c.BasicBlockBTB = true; c.PerfectBTB = true }},
		{"ras", func(c *Config) { c.RASDepth = 0 }},
		{"resolve", func(c *Config) { c.ResolveLatency = 0 }},
		{"stall", func(c *Config) { c.StallProb = 1.5 }},
		{"probes", func(c *Config) { c.TagProbesPerCycle = 0 }},
		{"prefetch", func(c *Config) { c.PrefetchDegree = -1 }},
		{"data", func(c *Config) { c.DataModel = true; c.DataFootprint = 0 }},
	}
	for _, tc := range cases {
		cfg := DefaultConfig()
		tc.mut(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("%s: Validate accepted bad config", tc.name)
		}
	}
	good := DefaultConfig()
	if err := good.Validate(); err != nil {
		t.Errorf("default config rejected: %v", err)
	}
	// Perfect BTB skips the BTB geometry check.
	p := DefaultConfig()
	p.PerfectBTB = true
	p.BTBEntries = 0
	if err := p.Validate(); err != nil {
		t.Errorf("perfect BTB with zero entries rejected: %v", err)
	}
}

// TestDebugHelpers exercises the calibration-only accessors.
func TestDebugHelpers(t *testing.T) {
	byType := map[string]int{}
	r, err := SimulateDebug(DefaultConfig(), stressWL.NewStream(), stressWL.Name, 10_000, 60_000, byType)
	if err != nil {
		t.Fatal(err)
	}
	if r.Mispredictions > 0 && len(byType) == 0 {
		t.Error("SimulateDebug recorded no breakdown")
	}
	c, err := New(DefaultConfig(), stressWL.NewStream())
	if err != nil {
		t.Fatal(err)
	}
	c.Step(20_000)
	l2h, l2m, _, _, _ := c.DebugMemStats()
	if l2h+l2m == 0 {
		t.Error("no L2 traffic observed")
	}
}

// TestFTQOccupancyBounds: the mean occupancy statistic must stay within
// the FTQ capacity, and FDP run-ahead must keep the queue meaningfully
// occupied on a frontend-bound workload.
func TestFTQOccupancyBounds(t *testing.T) {
	r, err := Simulate(DefaultConfig(), stressWL.NewStream(), stressWL.Name, 30_000, 150_000)
	if err != nil {
		t.Fatal(err)
	}
	occ := r.MeanFTQOccupancy()
	if occ < 0 || occ > float64(DefaultConfig().FTQEntries) {
		t.Errorf("mean FTQ occupancy %.2f out of bounds", occ)
	}
	if occ < 2 {
		t.Errorf("mean FTQ occupancy %.2f suspiciously low for FDP", occ)
	}
	base, err := Simulate(BaselineConfig(), stressWL.NewStream(), stressWL.Name, 30_000, 150_000)
	if err != nil {
		t.Fatal(err)
	}
	if base.MeanFTQOccupancy() > 2 {
		t.Errorf("2-entry FTQ occupancy %.2f > 2", base.MeanFTQOccupancy())
	}
}

// TestWrongPathFillsRecorded: FDP run-ahead must generate some wrong-path
// fills on a mispredicting workload, and the baseline far fewer.
func TestWrongPathFillsRecorded(t *testing.T) {
	fdp, err := Simulate(DefaultConfig(), stressWL.NewStream(), stressWL.Name, 30_000, 200_000)
	if err != nil {
		t.Fatal(err)
	}
	if fdp.WrongPathFills == 0 {
		t.Error("no wrong-path fills recorded under FDP run-ahead")
	}
}

// TestWindowIPCSampled: the IPC timeline must be populated with plausible
// values during the measurement phase only.
func TestWindowIPCSampled(t *testing.T) {
	r, err := Simulate(DefaultConfig(), stressWL.NewStream(), stressWL.Name, 30_000, 100_000)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.WindowIPC) < 5 || len(r.WindowIPC) > 12 {
		t.Errorf("timeline samples = %d for 100K instructions", len(r.WindowIPC))
	}
	for i, v := range r.WindowIPC {
		if v <= 0 || v > float64(DefaultConfig().DecodeWidth) {
			t.Errorf("window %d IPC = %v", i, v)
		}
	}
}
