package trace

import (
	"bytes"
	"testing"

	"fdp/internal/core"
)

// Trace-driven and in-memory simulation must agree: a trace long enough to
// cover the whole run replays the identical instruction stream, so the
// measured statistics are identical.
func TestTraceDrivenSimulationMatchesSynth(t *testing.T) {
	w := testWorkload()
	const warmup, measure = 20_000, 80_000
	// Record comfortably more than the run needs so the wrap never happens.
	data := writeTrace(t, w, (warmup+measure)*2)
	tr, err := Read(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}

	cfg := core.DefaultConfig()
	fromSynth, err := core.Simulate(cfg, w.NewStream(), w.Name, warmup, measure)
	if err != nil {
		t.Fatal(err)
	}
	fromTrace, err := core.Simulate(cfg, tr.NewStream(), w.Name, warmup, measure)
	if err != nil {
		t.Fatal(err)
	}

	if fromSynth.Cycles != fromTrace.Cycles {
		t.Errorf("cycles differ: synth %d vs trace %d", fromSynth.Cycles, fromTrace.Cycles)
	}
	if fromSynth.Mispredictions != fromTrace.Mispredictions {
		t.Errorf("mispredictions differ: %d vs %d", fromSynth.Mispredictions, fromTrace.Mispredictions)
	}
	if fromSynth.L1IMisses != fromTrace.L1IMisses {
		t.Errorf("L1I misses differ: %d vs %d", fromSynth.L1IMisses, fromTrace.L1IMisses)
	}
	if fromSynth.PFCResteers != fromTrace.PFCResteers {
		t.Errorf("PFC resteers differ: %d vs %d", fromSynth.PFCResteers, fromTrace.PFCResteers)
	}
}

// A wrapping trace still simulates (each wrap costs one artificial
// misprediction, nothing more).
func TestWrappingTraceSimulates(t *testing.T) {
	w := testWorkload()
	data := writeTrace(t, w, 30_000)
	tr, err := Read(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	r, err := core.Simulate(core.DefaultConfig(), tr.NewStream(), w.Name, 20_000, 80_000)
	if err != nil {
		t.Fatal(err)
	}
	if r.IPC() <= 0 {
		t.Errorf("IPC = %v", r.IPC())
	}
}
