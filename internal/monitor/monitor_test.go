package monitor

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"

	"fdp/internal/core"
	"fdp/internal/obs"
	"fdp/internal/runner"
)

func testSource() Source {
	st := &runner.Status{}
	st.Specs.Store(4)
	st.Started.Store(3)
	st.Done.Store(2)
	st.Running.Store(1)
	st.CacheHits.Store(1)
	st.CacheMisses.Store(2)
	st.Retries.Store(5)
	st.Watchdog.Store(1)
	st.Quarantined.Store(2)
	st.CacheQuarantined.Store(3)

	ml := obs.NewManifestLog()
	ml.Add(&obs.Manifest{
		Schema:   obs.ManifestSchema,
		Workload: "server_a",
		Config:   map[string]any{"Name": "fdp"},
		Counters: map[string]uint64{"run.cycles": 1000, "acct.delivering": 700},
		Derived:  map[string]float64{"run.ipc": 2.5},
		Histograms: map[string]obs.HistogramSnapshot{
			"ftq.occupancy": {Count: 1000, Sum: 12000, Min: 0, Max: 24},
		},
	})
	return Source{Status: st, Manifests: ml}
}

func get(t *testing.T, srv *httptest.Server, path string) (string, *http.Response) {
	t.Helper()
	resp, err := srv.Client().Get(srv.URL + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read %s: %v", path, err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d, body %q", path, resp.StatusCode, body)
	}
	return string(body), resp
}

func TestMetricsEndpoint(t *testing.T) {
	srv := httptest.NewServer(Handler(testSource()))
	defer srv.Close()

	body, resp := get(t, srv, "/metrics")
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content type %q, want text/plain", ct)
	}
	for _, want := range []string{
		"runner_jobs 3\n",
		"runner_cache_hits 1\n",
		"runner_cache_misses 2\n",
		"runner_jobs_running 1\n",
		"runner_jobs_queued 1\n",
		"runner_retries 5\n",
		"runner_watchdog_fired 1\n",
		"runner_jobs_quarantined 2\n",
		"runner_cache_quarantined 3\n",
		"# TYPE runner_jobs counter\n",
		"# TYPE runner_watchdog_fired counter\n",
		`fdp_run_counter{config="fdp",workload="server_a",name="acct.delivering"} 700` + "\n",
		`fdp_run_counter{config="fdp",workload="server_a",name="run.cycles"} 1000` + "\n",
		`fdp_run_derived{config="fdp",workload="server_a",name="run.ipc"} 2.5` + "\n",
		`fdp_run_histogram_sum{config="fdp",workload="server_a",name="ftq.occupancy"} 12000` + "\n",
		`fdp_run_histogram_count{config="fdp",workload="server_a",name="ftq.occupancy"} 1000` + "\n",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q\ngot:\n%s", want, body)
		}
	}
	// Every non-comment line must be `name value` or `name{labels} value`:
	// a cheap validity check of the exposition format.
	for _, line := range strings.Split(strings.TrimRight(body, "\n"), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			t.Errorf("malformed exposition line %q", line)
		}
	}
}

func TestProgressEndpoint(t *testing.T) {
	srv := httptest.NewServer(Handler(testSource()))
	defer srv.Close()

	body, resp := get(t, srv, "/progress")
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("content type %q, want application/json", ct)
	}
	var snap runner.StatusSnapshot
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("progress body not JSON: %v\n%s", err, body)
	}
	want := runner.StatusSnapshot{
		Specs: 4, Started: 3, Done: 2, Running: 1, Queued: 1,
		CacheHits: 1, CacheMisses: 2,
		Retries: 5, Watchdog: 1, Quarantined: 2, CacheQuarantined: 3,
	}
	if !reflect.DeepEqual(snap, want) {
		t.Errorf("progress snapshot = %+v, want %+v", snap, want)
	}
}

// TestInFlightJobExposure: a tracked attempt shows up on /progress with
// its heartbeat age and on /metrics as a runner_job_heartbeat_age_ms
// sample.
func TestInFlightJobExposure(t *testing.T) {
	src := testSource()
	hb := &core.Heartbeat{}
	hb.Beat(4096)
	src.Status.TrackJob(7, "fdp/server_a", 2, hb)
	srv := httptest.NewServer(Handler(src))
	defer srv.Close()

	body, _ := get(t, srv, "/progress")
	var snap runner.StatusSnapshot
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("progress body not JSON: %v\n%s", err, body)
	}
	if len(snap.Jobs) != 1 {
		t.Fatalf("progress jobs = %+v, want one entry", snap.Jobs)
	}
	j := snap.Jobs[0]
	if j.Index != 7 || j.Job != "fdp/server_a" || j.Attempt != 2 || j.Cycles != 4096 {
		t.Errorf("job snapshot = %+v", j)
	}
	if j.LastBeatMS < 0 {
		t.Errorf("beaten job has last_beat_ms %d, want >= 0", j.LastBeatMS)
	}

	metrics, _ := get(t, srv, "/metrics")
	if !strings.Contains(metrics, `runner_job_heartbeat_age_ms{job="fdp/server_a",attempt="2"} `) {
		t.Errorf("/metrics missing per-job heartbeat age:\n%s", metrics)
	}
}

func TestPprofMounted(t *testing.T) {
	srv := httptest.NewServer(Handler(testSource()))
	defer srv.Close()

	body, _ := get(t, srv, "/debug/pprof/")
	if !strings.Contains(body, "goroutine") {
		t.Errorf("pprof index does not list profiles:\n%.200s", body)
	}
}

func TestNilSources(t *testing.T) {
	srv := httptest.NewServer(Handler(Source{}))
	defer srv.Close()

	body, _ := get(t, srv, "/metrics")
	if !strings.Contains(body, "runner_jobs 0\n") {
		t.Errorf("nil-source /metrics missing zero runner_jobs:\n%s", body)
	}
	if strings.Contains(body, "fdp_run_counter{") {
		t.Errorf("nil-source /metrics should have no per-run series:\n%s", body)
	}
	get(t, srv, "/progress")
}

func TestStartAndClose(t *testing.T) {
	srv, err := Start("localhost:0", testSource())
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	resp, err := http.Get("http://" + srv.Addr() + "/progress")
	if err != nil {
		t.Fatalf("GET live server: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("live /progress status %d", resp.StatusCode)
	}
	if err := srv.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}
