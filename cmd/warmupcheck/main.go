// Command warmupcheck is the CI gate for fast-forward warmup and
// checkpointed post-warmup state (`make warmup-check`). It proves two
// properties end to end:
//
//  1. Equivalence: for every golden (config, workload) pair, a run that
//     fast-forwards its warmup cold (training and snapshotting) and a run
//     that restores the checkpoint produce byte-identical observability
//     manifests over the measured region.
//
//  2. Payoff: a warmup-heavy sweep of 8 timing configurations over one
//     workload runs at least 2x faster with fast-forward checkpoints than
//     with cycle-accurate warmup, while every checkpointed result is
//     identical to the same fast-forward run without checkpoints.
//
// Exit status is nonzero on any violation.
package main

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"reflect"
	"time"

	"fdp/internal/core"
	"fdp/internal/obs"
	"fdp/internal/runner"
	"fdp/internal/synth"
)

// goldenCase mirrors the golden-run harness cases (golden_test.go): the
// same four (config, workload) pairs and budgets the repo pins manifests
// for, now exercised under the fast-forward warmup semantic.
type goldenCase struct {
	name     string
	cfg      core.Config
	workload string
	warmup   uint64
	measure  uint64
}

func goldenCases() []goldenCase {
	eip := core.DefaultConfig()
	eip.Name = "fdp+eip"
	eip.Prefetcher = "eip-27kb"

	ghr := core.DefaultConfig()
	ghr.Name = "ghr-fix"
	ghr.HistPolicy = core.HistGHRFix
	ghr.BTBAllocPolicy = core.AllocAll

	return []goldenCase{
		{"fdp_server_a", core.DefaultConfig(), "server_a", 20_000, 60_000},
		{"baseline_client_a", core.BaselineConfig(), "client_a", 20_000, 60_000},
		{"eip_server_b", eip, "server_b", 20_000, 60_000},
		{"ghrfix_spec_a", ghr, "spec_a", 20_000, 60_000},
	}
}

// manifestBytes runs one case (cold fast-forward when restore is nil,
// checkpoint restore otherwise) and returns the canonical manifest
// encoding plus the snapshot the cold path produced.
func manifestBytes(c goldenCase, w *synth.Workload, restore []byte) ([]byte, []byte, error) {
	p := obs.NewProbes()
	r, snap, err := core.SimulateCheckpointed(context.Background(), c.cfg, w.NewStream(), w.Name,
		c.warmup, c.measure, core.SimOptions{Probes: p}, restore)
	if err != nil {
		return nil, nil, err
	}
	r.Class = w.Class
	m := core.Manifest(c.cfg, r, p, w.Seed, c.warmup, c.measure)
	m.FFwd = true
	b, err := m.MarshalIndent()
	if err != nil {
		return nil, nil, err
	}
	return b, snap, nil
}

// checkGoldenEquivalence is property 1.
func checkGoldenEquivalence() error {
	fmt.Println("warmup-check: golden checkpoint equivalence")
	for _, c := range goldenCases() {
		w := synth.ByName(c.workload)
		if w == nil {
			return fmt.Errorf("%s: unknown workload %q", c.name, c.workload)
		}
		cold, snap, err := manifestBytes(c, w, nil)
		if err != nil {
			return fmt.Errorf("%s: cold run: %w", c.name, err)
		}
		if len(snap) == 0 {
			return fmt.Errorf("%s: cold run produced no checkpoint", c.name)
		}
		restored, _, err := manifestBytes(c, w, snap)
		if err != nil {
			return fmt.Errorf("%s: restored run: %w", c.name, err)
		}
		if !bytes.Equal(cold, restored) {
			return fmt.Errorf("%s: restored manifest differs from cold manifest (%d vs %d bytes, first divergence at byte %d)",
				c.name, len(cold), len(restored), firstDiff(cold, restored))
		}
		fmt.Printf("  %-18s cold == restored (%d-byte manifest, %d-byte checkpoint)\n",
			c.name, len(cold), len(snap))
	}
	return nil
}

// sweepSpecs builds the warmup-heavy sweep: 8 configurations differing
// only in timing knobs (one shared CheckpointKey) over one workload.
func sweepSpecs(ffwd bool) []runner.Spec {
	const (
		warmup  = 300_000
		measure = 30_000
	)
	w := synth.ByName("server_a")
	specs := make([]runner.Spec, 0, 8)
	for i := 0; i < 8; i++ {
		cfg := core.DefaultConfig()
		cfg.Name = fmt.Sprintf("ftq=%d", 4+4*i)
		cfg.FTQEntries = 4 + 4*i
		sp := runner.WorkloadSpec(cfg, w, warmup, measure)
		sp.FFwd = ffwd
		specs = append(specs, sp)
	}
	return specs
}

// checkSweepSpeedup is property 2. It returns the measured speedup.
func checkSweepSpeedup() (float64, error) {
	fmt.Println("warmup-check: warmup-heavy sweep (8 configs x 1 workload, 300K warmup / 30K measure)")
	ctx := context.Background()

	t0 := time.Now()
	if _, err := runner.Execute(ctx, sweepSpecs(false), runner.Options{Parallel: 1}); err != nil {
		return 0, fmt.Errorf("cycle-accurate sweep: %w", err)
	}
	cycleAccurate := time.Since(t0)

	// Reference fast-forward sweep without checkpoints: every job pays its
	// own functional warmup.
	plain, err := runner.Execute(ctx, sweepSpecs(true), runner.Options{Parallel: 1})
	if err != nil {
		return 0, fmt.Errorf("fast-forward sweep: %w", err)
	}

	cache, err := runner.NewCache(0, "")
	if err != nil {
		return 0, err
	}
	reg := obs.NewRegistry()
	t1 := time.Now()
	ckpt, err := runner.Execute(ctx, sweepSpecs(true),
		runner.Options{Parallel: 1, Cache: cache, Checkpoint: true, Reg: reg})
	if err != nil {
		return 0, fmt.Errorf("checkpointed sweep: %w", err)
	}
	checkpointed := time.Since(t1)

	for i := range plain {
		if ckpt[i].Run == nil || !reflect.DeepEqual(plain[i].Run, ckpt[i].Run) {
			return 0, fmt.Errorf("config %d: checkpointed run differs from plain fast-forward run", i)
		}
	}
	misses := reg.Counter(runner.MetricCheckpointMisses).Value()
	restores := reg.Counter(runner.MetricCheckpointRestores).Value()
	if misses != 1 || restores != 7 {
		return 0, fmt.Errorf("checkpoint scheduling: misses=%d restores=%d, want 1/7 (warmup paid once)", misses, restores)
	}

	speedup := cycleAccurate.Seconds() / checkpointed.Seconds()
	fmt.Printf("  cycle-accurate warmup: %7.2fs\n", cycleAccurate.Seconds())
	fmt.Printf("  ffwd + checkpoints:    %7.2fs  (%.1fx, checkpoint_misses=%d checkpoint_restores=%d)\n",
		checkpointed.Seconds(), speedup, misses, restores)
	if speedup < 2 {
		return speedup, fmt.Errorf("speedup %.2fx below the 2x gate", speedup)
	}
	return speedup, nil
}

func firstDiff(a, b []byte) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return i
		}
	}
	return n
}

func main() {
	if err := checkGoldenEquivalence(); err != nil {
		fmt.Fprintf(os.Stderr, "warmup-check: FAIL: %v\n", err)
		os.Exit(1)
	}
	if _, err := checkSweepSpeedup(); err != nil {
		fmt.Fprintf(os.Stderr, "warmup-check: FAIL: %v\n", err)
		os.Exit(1)
	}
	fmt.Println("warmup-check: PASS")
}
