package runner

import (
	"context"
	"sync"
	"time"

	"fdp/internal/core"
)

// watchdog detects no-forward-progress jobs: every attempt registers its
// heartbeat (stamped by the simulation's cycle loop at each context-poll
// point) and a cancel function; a background sweeper cancels — with
// ErrHung as the cause — any registered job whose heartbeat has not moved
// for the deadline. Simulations poll their context, so a canceled hang
// unwinds promptly; jobs that never reach the cycle loop (stuck I/O,
// injected hangs) are covered too because registration itself stamps the
// heartbeat once.
type watchdog struct {
	timeout time.Duration
	metrics *schedMetrics
	status  *Status

	mu   sync.Mutex
	jobs map[int]watchItem

	stop     chan struct{}
	stopOnce sync.Once
	done     chan struct{}
}

// watchItem is one supervised attempt.
type watchItem struct {
	label  string
	hb     *core.Heartbeat
	cancel context.CancelCauseFunc
}

// newWatchdog starts the sweeper goroutine; callers must close() it.
func newWatchdog(timeout time.Duration, m *schedMetrics, st *Status) *watchdog {
	w := &watchdog{
		timeout: timeout,
		metrics: m,
		status:  st,
		jobs:    make(map[int]watchItem),
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
	}
	go w.loop()
	return w
}

// watch registers job i's current attempt. The heartbeat is stamped here
// so the deadline measures from registration even for attempts that hang
// before their first cycle.
func (w *watchdog) watch(i int, label string, hb *core.Heartbeat, cancel context.CancelCauseFunc) {
	hb.Beat(hb.Cycles())
	w.mu.Lock()
	w.jobs[i] = watchItem{label: label, hb: hb, cancel: cancel}
	w.mu.Unlock()
}

// unwatch removes job i (attempt finished, by any outcome).
func (w *watchdog) unwatch(i int) {
	w.mu.Lock()
	delete(w.jobs, i)
	w.mu.Unlock()
}

// loop sweeps at a quarter of the deadline (clamped to [1ms, 1s]) so a
// hang is detected within ~1.25 deadlines in the worst case.
func (w *watchdog) loop() {
	defer close(w.done)
	interval := w.timeout / 4
	if interval < time.Millisecond {
		interval = time.Millisecond
	}
	if interval > time.Second {
		interval = time.Second
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-w.stop:
			return
		case <-t.C:
			w.sweep(time.Now())
		}
	}
}

// sweep cancels every job whose heartbeat is older than the deadline.
// Cancellation runs outside the lock; a fired job is removed first so it
// is counted exactly once.
func (w *watchdog) sweep(now time.Time) {
	var fired []watchItem
	w.mu.Lock()
	for i, it := range w.jobs {
		if now.Sub(it.hb.LastBeat()) > w.timeout {
			delete(w.jobs, i)
			fired = append(fired, it)
		}
	}
	w.mu.Unlock()
	for _, it := range fired {
		it.cancel(ErrHung)
		w.metrics.count(w.metrics.watchdog)
		w.status.watchdogFired()
	}
}

// close stops the sweeper and waits for it to exit.
func (w *watchdog) close() {
	w.stopOnce.Do(func() { close(w.stop) })
	<-w.done
}
