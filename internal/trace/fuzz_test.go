package trace

import (
	"bytes"
	"testing"
)

// FuzzRead hardens the trace reader against corrupted and adversarial
// inputs: it must return an error or a well-formed trace, never panic or
// hang.
func FuzzRead(f *testing.F) {
	// Seed with a real trace plus truncations and bit flips.
	w := testWorkload()
	var buf bytes.Buffer
	tw, err := NewWriter(&buf, Header{Name: w.Name, Class: w.Class, Seed: w.Seed, Entry: w.Entry()}, w.Image())
	if err != nil {
		f.Fatal(err)
	}
	s := w.NewStream()
	for i := 0; i < 500; i++ {
		tw.Record(s.Next())
	}
	tw.Close()
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add([]byte{})
	f.Add([]byte("FDPTRACE1\n"))
	flipped := append([]byte(nil), valid...)
	flipped[len(flipped)/3] ^= 0xff
	f.Add(flipped)

	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := Read(bytes.NewReader(data))
		if err != nil {
			return
		}
		// A successfully parsed trace must be internally consistent.
		if tr.Len() == 0 {
			t.Fatal("parsed trace with zero records")
		}
		if tr.Image().Size() == 0 {
			t.Fatal("parsed trace with empty image")
		}
		// Replaying a handful of records must not panic.
		st := tr.NewStream()
		for i := 0; i < 32; i++ {
			st.Next()
		}
	})
}
