package ckpt

import (
	"bytes"
	"strings"
	"testing"
)

// TestRoundTrip encodes one value of every type and decodes them back.
func TestRoundTrip(t *testing.T) {
	w := NewWriter()
	w.Tag(0xF00D)
	w.U8(0xAB)
	w.Bool(true)
	w.Bool(false)
	w.I8(-5)
	w.U16(0xBEEF)
	w.U32(0xDEADBEEF)
	w.I32(-123456)
	w.U64(1 << 60)
	w.Int(-1)
	w.U8s([]uint8{1, 2, 3})
	w.I8s([]int8{-1, 0, 1})
	w.U16s([]uint16{10, 20})
	w.U32s([]uint32{100})
	w.U64s([]uint64{1, 1 << 40})

	r := NewReader(w.Bytes())
	r.Tag(0xF00D)
	if got := r.U8(); got != 0xAB {
		t.Errorf("U8 = %#x", got)
	}
	if !r.Bool() || r.Bool() {
		t.Error("Bool round-trip failed")
	}
	if got := r.I8(); got != -5 {
		t.Errorf("I8 = %d", got)
	}
	if got := r.U16(); got != 0xBEEF {
		t.Errorf("U16 = %#x", got)
	}
	if got := r.U32(); got != 0xDEADBEEF {
		t.Errorf("U32 = %#x", got)
	}
	if got := r.I32(); got != -123456 {
		t.Errorf("I32 = %d", got)
	}
	if got := r.U64(); got != 1<<60 {
		t.Errorf("U64 = %#x", got)
	}
	if got := r.Int(); got != -1 {
		t.Errorf("Int = %d", got)
	}
	u8s := make([]uint8, 3)
	r.U8s(u8s)
	if !bytes.Equal(u8s, []uint8{1, 2, 3}) {
		t.Errorf("U8s = %v", u8s)
	}
	i8s := make([]int8, 3)
	r.I8s(i8s)
	if i8s[0] != -1 || i8s[2] != 1 {
		t.Errorf("I8s = %v", i8s)
	}
	u16s := make([]uint16, 2)
	r.U16s(u16s)
	if u16s[0] != 10 || u16s[1] != 20 {
		t.Errorf("U16s = %v", u16s)
	}
	u32s := make([]uint32, 1)
	r.U32s(u32s)
	if u32s[0] != 100 {
		t.Errorf("U32s = %v", u32s)
	}
	u64s := make([]uint64, 2)
	r.U64s(u64s)
	if u64s[1] != 1<<40 {
		t.Errorf("U64s = %v", u64s)
	}
	if err := r.Done(); err != nil {
		t.Fatalf("Done: %v", err)
	}
}

// TestStickyErrors: the first failure wins, later reads return zeros and
// do not overwrite it.
func TestStickyErrors(t *testing.T) {
	w := NewWriter()
	w.Tag(1)
	r := NewReader(w.Bytes())
	r.Tag(2) // mismatch — first error
	r.U64()  // would also fail (truncated), must not replace the first
	if got := r.U32(); got != 0 {
		t.Errorf("read after error = %d, want 0", got)
	}
	err := r.Err()
	if err == nil || !strings.Contains(err.Error(), "tag mismatch") {
		t.Errorf("Err = %v, want the tag mismatch", err)
	}
}

// TestTruncation: every reader fails cleanly at end of stream.
func TestTruncation(t *testing.T) {
	r := NewReader([]byte{1, 2})
	if r.U32(); r.Err() == nil {
		t.Fatal("U32 on a 2-byte stream did not fail")
	}
	if !strings.Contains(r.Err().Error(), "truncated") {
		t.Errorf("Err = %v, want truncation", r.Err())
	}
}

// TestSliceLengthMismatch: decoding into wrongly sized storage is how
// geometry disagreements between checkpoint and machine are caught.
func TestSliceLengthMismatch(t *testing.T) {
	w := NewWriter()
	w.U32s([]uint32{1, 2, 3})
	r := NewReader(w.Bytes())
	r.U32s(make([]uint32, 2))
	if r.Err() == nil || !strings.Contains(r.Err().Error(), "length mismatch") {
		t.Errorf("Err = %v, want length mismatch", r.Err())
	}
}

// TestBadBool: only 0 and 1 decode as bools.
func TestBadBool(t *testing.T) {
	r := NewReader([]byte{2})
	r.Bool()
	if r.Err() == nil || !strings.Contains(r.Err().Error(), "bad bool") {
		t.Errorf("Err = %v, want bad bool", r.Err())
	}
}

// TestDoneTrailing: leftover bytes after a structurally valid decode are
// an error — a checkpoint must be consumed exactly.
func TestDoneTrailing(t *testing.T) {
	w := NewWriter()
	w.U32(7)
	r := NewReader(append(w.Bytes(), 0xFF))
	if r.U32() != 7 {
		t.Fatal("U32 mis-decoded")
	}
	if err := r.Done(); err == nil {
		t.Error("Done accepted trailing bytes")
	}
}

// TestPeekU32 does not consume and agrees with the following U32.
func TestPeekU32(t *testing.T) {
	w := NewWriter()
	w.U32(42)
	r := NewReader(w.Bytes())
	if p := r.PeekU32(); p != 42 {
		t.Errorf("PeekU32 = %d", p)
	}
	if v := r.U32(); v != 42 {
		t.Errorf("U32 after peek = %d", v)
	}
	if err := r.Done(); err != nil {
		t.Errorf("Done: %v", err)
	}
}

// TestFailf records caller-detected structural errors with the offset.
func TestFailf(t *testing.T) {
	r := NewReader(nil)
	r.Failf("count %d out of range", 9)
	if r.Err() == nil || !strings.Contains(r.Err().Error(), "count 9 out of range") {
		t.Errorf("Err = %v", r.Err())
	}
}
