package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"

	"fdp/internal/experiments"
	"fdp/internal/monitor"
	"fdp/internal/obs"
	"fdp/internal/stats"
)

// runDiff implements the -diff mode: gather manifests (from a recorded
// JSONL file, or by running the full experiment suite and collecting
// every run's manifest), diff each config's accounting against the
// baseline config, print the table, and optionally emit the JSON
// document.
func runDiff(opts experiments.Options, baseline, manifestsPath, jsonOut string) {
	var ms []*obs.Manifest
	if manifestsPath != "" {
		f, err := os.Open(manifestsPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "report: %v\n", err)
			os.Exit(1)
		}
		ms, err = readManifests(f)
		f.Close()
		if err != nil {
			fmt.Fprintf(os.Stderr, "report: %s: %v\n", manifestsPath, err)
			os.Exit(1)
		}
	} else {
		log := obs.NewManifestLog()
		opts.Manifests = log
		for _, e := range experiments.AllWithExtensions() {
			if _, err := e.Run(opts); err != nil {
				fmt.Fprintf(os.Stderr, "report: %s: %v\n", e.ID, err)
				os.Exit(1)
			}
			fmt.Fprintf(os.Stderr, "report: %s done\n", e.ID)
		}
		ms = log.All()
	}
	rep, err := accountingDiff(ms, baseline)
	if err != nil {
		fmt.Fprintf(os.Stderr, "report: %v\n", err)
		os.Exit(1)
	}
	fmt.Print(rep.Table().String())
	if jsonOut != "" {
		w, err := obs.OpenSink(jsonOut)
		if err != nil {
			fmt.Fprintf(os.Stderr, "report: %v\n", err)
			os.Exit(1)
		}
		if err := rep.WriteJSON(w); err == nil {
			err = w.Close()
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "report: writing %s: %v\n", jsonOut, err)
			os.Exit(1)
		}
	}
}

// acctRun is one deduped (config, workload) run's accounting state.
type acctRun struct {
	v      [obs.NumAcctBuckets]uint64
	cycles uint64
	ipc    float64
}

// DiffRow is one (config, workload) pair's accounting delta against the
// baseline config on the same workload.
type DiffRow struct {
	Config   string `json:"config"`
	Workload string `json:"workload"`
	// BaselineCycles / Cycles are the measured-cycle totals of the two
	// runs; negative DeltaCycles means the config finished the same
	// instruction budget in fewer cycles than the baseline.
	BaselineCycles uint64  `json:"baseline_cycles"`
	Cycles         uint64  `json:"cycles"`
	DeltaCycles    int64   `json:"delta_cycles"`
	BaselineIPC    float64 `json:"baseline_ipc"`
	IPC            float64 `json:"ipc"`
	DeltaIPC       float64 `json:"delta_ipc"`
	// DeltaBucketCycles[b] is the signed cycle movement of accounting
	// bucket b (config minus baseline), index-aligned with the report's
	// Buckets list; DeltaBucketSharePct[b] is the same movement as a
	// percentage of the baseline's total cycles.
	DeltaBucketCycles   [obs.NumAcctBuckets]int64   `json:"delta_bucket_cycles"`
	DeltaBucketSharePct [obs.NumAcctBuckets]float64 `json:"delta_bucket_share_pct"`
}

// DiffReport is the machine-readable accounting-delta document (the
// -diff-json output; the table is rendered from the same rows).
type DiffReport struct {
	Schema   int    `json:"schema"`
	Baseline string `json:"baseline"`
	// Buckets names the accounting buckets the per-row delta vectors are
	// index-aligned with.
	Buckets []string  `json:"buckets"`
	Rows    []DiffRow `json:"rows"`
}

// collectAcctRuns indexes the manifests by config then workload,
// first-wins on duplicates (the shared baseline appears in many
// experiments) and skipping manifests without the acct.* family.
func collectAcctRuns(ms []*obs.Manifest) map[string]map[string]acctRun {
	runs := make(map[string]map[string]acctRun)
	for _, m := range ms {
		v, ok := obs.AcctVector(m.Counters)
		if !ok {
			continue // pre-accounting manifest or the __runner__ summary
		}
		cfg := monitor.ConfigName(m.Config)
		byWL := runs[cfg]
		if byWL == nil {
			byWL = make(map[string]acctRun)
			runs[cfg] = byWL
		}
		if _, dup := byWL[m.Workload]; dup {
			continue
		}
		r := acctRun{v: v, ipc: m.Derived["ipc"]}
		for _, n := range v {
			r.cycles += n
		}
		byWL[m.Workload] = r
	}
	return runs
}

// accountingDiff computes, for every non-baseline config, where cycles
// moved per accounting bucket relative to the baseline config on the
// same workload. Workloads the baseline did not run are skipped.
func accountingDiff(ms []*obs.Manifest, baseline string) (*DiffReport, error) {
	runs := collectAcctRuns(ms)
	base, ok := runs[baseline]
	if !ok {
		known := make([]string, 0, len(runs))
		for cfg := range runs {
			known = append(known, cfg)
		}
		sort.Strings(known)
		return nil, fmt.Errorf("baseline config %q has no accounting runs in the input (have %v)", baseline, known)
	}
	rep := &DiffReport{Schema: 1, Baseline: baseline, Buckets: append([]string(nil), obs.AcctBucketNames[:]...), Rows: []DiffRow{}}
	for cfg, byWL := range runs {
		if cfg == baseline {
			continue
		}
		for wl, r := range byWL {
			b, ok := base[wl]
			if !ok {
				continue
			}
			row := DiffRow{
				Config: cfg, Workload: wl,
				BaselineCycles: b.cycles, Cycles: r.cycles,
				DeltaCycles: int64(r.cycles) - int64(b.cycles),
				BaselineIPC: b.ipc, IPC: r.ipc, DeltaIPC: r.ipc - b.ipc,
			}
			for i := range row.DeltaBucketCycles {
				d := int64(r.v[i]) - int64(b.v[i])
				row.DeltaBucketCycles[i] = d
				if b.cycles > 0 {
					row.DeltaBucketSharePct[i] = 100 * float64(d) / float64(b.cycles)
				}
			}
			rep.Rows = append(rep.Rows, row)
		}
	}
	sort.Slice(rep.Rows, func(i, j int) bool {
		if rep.Rows[i].Config != rep.Rows[j].Config {
			return rep.Rows[i].Config < rep.Rows[j].Config
		}
		return rep.Rows[i].Workload < rep.Rows[j].Workload
	})
	return rep, nil
}

// Table renders the delta report: one row per (config, workload), each
// bucket cell showing the signed cycles moved and, in parentheses, that
// movement as a share of the baseline's measured cycles.
func (d *DiffReport) Table() *stats.Table {
	header := []string{"config", "workload", "ΔIPC", "Δcycles"}
	for _, name := range d.Buckets {
		header = append(header, "Δ"+name)
	}
	t := stats.NewTable(fmt.Sprintf("Accounting delta vs %s (cycles moved per bucket; %% of baseline cycles)", d.Baseline), header...)
	for _, r := range d.Rows {
		cells := []interface{}{
			r.Config, r.Workload,
			fmt.Sprintf("%+.3f", r.DeltaIPC),
			fmt.Sprintf("%+d", r.DeltaCycles),
		}
		for i := range r.DeltaBucketCycles {
			cells = append(cells, fmt.Sprintf("%+d (%+.1f%%)", r.DeltaBucketCycles[i], r.DeltaBucketSharePct[i]))
		}
		t.AddRow(cells...)
	}
	return t
}

// WriteJSON writes the report as indented JSON.
func (d *DiffReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(d)
}
