package experiments

import (
	"encoding/json"
	"reflect"
	"runtime"
	"testing"

	"fdp/internal/core"
	"fdp/internal/stats"
)

// TestRunGridParallelDeterminism runs the quick evaluation at
// Parallel = 1, 4 and GOMAXPROCS and asserts the resulting stats.Sets —
// every counter, the WindowIPC series, and every attached manifest — are
// bit-identical regardless of scheduling. Under -race this doubles as the
// stress test for the parallel runner and per-run probe isolation.
func TestRunGridParallelDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-grid simulation in -short mode")
	}
	cfgs := []core.Config{core.DefaultConfig(), core.BaselineConfig()}
	levels := []int{1, 4, runtime.GOMAXPROCS(0)}

	run := func(parallel int) map[string]*stats.Set {
		opts := QuickOptions()
		opts.Parallel = parallel
		opts.Metrics = true
		opts.TraceCap = 1024
		sets, err := runGrid(opts, cfgs)
		if err != nil {
			t.Fatalf("parallel=%d: %v", parallel, err)
		}
		return sets
	}

	ref := run(levels[0])
	for name, s := range ref {
		if len(s.Runs) != len(QuickOptions().Workloads) {
			t.Fatalf("set %s has %d runs", name, len(s.Runs))
		}
		if len(s.Manifests) != len(s.Runs) {
			t.Fatalf("set %s has %d manifests for %d runs", name, len(s.Manifests), len(s.Runs))
		}
	}
	for _, lvl := range levels[1:] {
		got := run(lvl)
		if !reflect.DeepEqual(ref, got) {
			rb, _ := json.Marshal(ref)
			gb, _ := json.Marshal(got)
			t.Fatalf("results differ between Parallel=%d and Parallel=%d:\n%s\nvs\n%s",
				levels[0], lvl, rb, gb)
		}
	}
}
