package bpred

// Gshare is McFarling's gshare predictor: a single table of 2-bit counters
// indexed by pc XOR a fold of the most recent history bits. The paper uses
// an 8KB gshare with 15-bit history as the weaker comparison point of
// Fig. 12.
type Gshare struct {
	name     string
	counters []uint8
	idxBits  int
	histBits int
	foldBase int
}

// NewGshare builds a gshare with 2^idxBits 2-bit counters using histBits of
// global history. Gshare8KB uses idxBits=15 (32K counters = 8KB).
func NewGshare(name string, idxBits, histBits int) *Gshare {
	g := &Gshare{
		name:     name,
		counters: make([]uint8, 1<<idxBits),
		idxBits:  idxBits,
		histBits: histBits,
	}
	for i := range g.counters {
		g.counters[i] = 2
	}
	return g
}

// Gshare8KB returns the Fig. 12 configuration: 8KB of counters, 15-bit
// history.
func Gshare8KB() *Gshare { return NewGshare("gshare-8kb", 15, 15) }

// Name implements DirPredictor.
func (g *Gshare) Name() string { return g.name }

// Specs implements DirPredictor.
func (g *Gshare) Specs() []FoldSpec {
	return []FoldSpec{{Length: g.histBits, Width: g.idxBits}}
}

// Bind implements DirPredictor.
func (g *Gshare) Bind(base int) { g.foldBase = base }

// StorageBits implements DirPredictor.
func (g *Gshare) StorageBits() int { return len(g.counters) * 2 }

func (g *Gshare) index(pc uint64, h *History) uint32 {
	return (uint32(pc>>2) ^ h.Folded(g.foldBase)) & (1<<uint(g.idxBits) - 1)
}

// Predict implements DirPredictor.
func (g *Gshare) Predict(pc uint64, h *History) bool {
	return g.counters[g.index(pc, h)] >= 2
}

// Update implements DirPredictor.
func (g *Gshare) Update(pc uint64, h *History, taken bool) {
	c := &g.counters[g.index(pc, h)]
	if taken {
		if *c < 3 {
			*c++
		}
	} else if *c > 0 {
		*c--
	}
}

// PerfectDir is the oracle direction predictor of Fig. 12: it consults the
// workload's behaviour model directly. Oracle must return the direction
// the branch at pc will take on its next execution (wrong-path queries may
// return anything; those instructions are squashed).
type PerfectDir struct {
	Oracle func(pc uint64) bool
}

// Name implements DirPredictor.
func (p *PerfectDir) Name() string { return "perfect-dir" }

// Specs implements DirPredictor.
func (p *PerfectDir) Specs() []FoldSpec { return nil }

// Bind implements DirPredictor.
func (p *PerfectDir) Bind(int) {}

// StorageBits implements DirPredictor.
func (p *PerfectDir) StorageBits() int { return 0 }

// Predict implements DirPredictor.
func (p *PerfectDir) Predict(pc uint64, _ *History) bool { return p.Oracle(pc) }

// Update implements DirPredictor.
func (p *PerfectDir) Update(uint64, *History, bool) {}

// Bimodal is a plain per-PC 2-bit-counter predictor; it serves as the
// history-free floor in sensitivity studies and tests.
type Bimodal struct {
	counters []uint8
	idxBits  int
}

// NewBimodal builds a bimodal predictor with 2^idxBits counters.
func NewBimodal(idxBits int) *Bimodal {
	b := &Bimodal{counters: make([]uint8, 1<<idxBits), idxBits: idxBits}
	for i := range b.counters {
		b.counters[i] = 2
	}
	return b
}

// Name implements DirPredictor.
func (b *Bimodal) Name() string { return "bimodal" }

// Specs implements DirPredictor.
func (b *Bimodal) Specs() []FoldSpec { return nil }

// Bind implements DirPredictor.
func (b *Bimodal) Bind(int) {}

// StorageBits implements DirPredictor.
func (b *Bimodal) StorageBits() int { return len(b.counters) * 2 }

func (b *Bimodal) index(pc uint64) uint32 {
	return uint32(pc>>2) & (1<<uint(b.idxBits) - 1)
}

// Predict implements DirPredictor.
func (b *Bimodal) Predict(pc uint64, _ *History) bool {
	return b.counters[b.index(pc)] >= 2
}

// Update implements DirPredictor.
func (b *Bimodal) Update(pc uint64, _ *History, taken bool) {
	c := &b.counters[b.index(pc)]
	if taken {
		if *c < 3 {
			*c++
		}
	} else if *c > 0 {
		*c--
	}
}
