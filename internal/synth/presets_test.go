package synth

import (
	"strings"
	"testing"
)

func TestResolve(t *testing.T) {
	ws, err := Resolve("server_a", "spec_b")
	if err != nil {
		t.Fatal(err)
	}
	if len(ws) != 2 || ws[0].Name != "server_a" || ws[1].Name != "spec_b" {
		t.Fatalf("Resolve order/content wrong: %v", ws)
	}
	if _, err := Resolve("server_a", "nope"); err == nil || !strings.Contains(err.Error(), "nope") {
		t.Fatalf("unknown name not reported: %v", err)
	}
}

func TestParseList(t *testing.T) {
	for _, all := range []string{"all", "", "  all  "} {
		ws, err := ParseList(all)
		if err != nil {
			t.Fatal(err)
		}
		if len(ws) != len(StandardWorkloads()) {
			t.Fatalf("ParseList(%q) = %d workloads", all, len(ws))
		}
	}
	ws, err := ParseList(" server_a , client_b ")
	if err != nil {
		t.Fatal(err)
	}
	if len(ws) != 2 || ws[0].Name != "server_a" || ws[1].Name != "client_b" {
		t.Fatalf("ParseList did not trim/resolve: %v", ws)
	}
	if _, err := ParseList("server_a,bogus"); err == nil {
		t.Fatal("bogus name accepted")
	}
}
