package core

// Opt-in data-side model. The paper's ChampSim runs a full out-of-order
// core with data caches; the default reproduction abstracts the backend as
// a dispatch pipe with stochastic stalls (Config.StallProb). Enabling
// Config.DataModel replaces that with a deterministic cache-driven model:
// a fixed fraction of non-branch instructions are loads, each load derives
// a synthetic data address from its PC and a slowly-rotating phase, and
// load misses in a modelled L1D block dispatch for the fill latency. This
// keeps runs deterministic while giving the backend realistic bursty
// stalls whose rate scales with the configured data footprint.

import (
	"fdp/internal/cache"
	"fdp/internal/xrand"
)

// dataSide holds the data-side state.
type dataSide struct {
	l1d *cache.Cache
	lat cache.Latencies

	// footprintLines is the synthetic data working set in cache lines.
	footprintLines uint64
	// phaseShift controls how often the pc->address mapping rotates
	// (every 2^phaseShift retired instructions), creating periodic
	// working-set turnover.
	phaseShift uint

	// Loads and LoadMisses count data-side activity.
	Loads      uint64
	LoadMisses uint64
}

func newDataSide(cfg *Config) *dataSide {
	return &dataSide{
		l1d:            cache.New("l1d", cfg.L1DBytes, cfg.L1DWays),
		lat:            cfg.Lat,
		footprintLines: uint64(cfg.DataFootprint) / cache.LineBytes,
		phaseShift:     14,
	}
}

// loadFor reports whether the instruction at pc is modelled as a load
// (deterministic per PC, roughly one in four non-branches).
func (d *dataSide) loadFor(pc uint64) bool {
	return xrand.Mix(pc)&3 == 0
}

// address derives the synthetic data line address for a load.
func (d *dataSide) address(pc, retired uint64) uint64 {
	phase := retired >> d.phaseShift
	return xrand.Mix(pc^phase*0x9e37_79b9_7f4a_7c15) % d.footprintLines
}

// access performs the load, returning the dispatch-stall cycles.
func (d *dataSide) access(pc, retired uint64) uint64 {
	d.Loads++
	line := d.address(pc, retired)
	if hit, _ := d.l1d.Probe(line); hit {
		return 0
	}
	d.LoadMisses++
	d.l1d.Fill(line, false)
	// A miss blocks dispatch for the L2 latency; a fraction of misses go
	// deeper (modelled deterministically off the line address).
	switch line % 16 {
	case 0:
		return d.lat.L2 + d.lat.LLC + d.lat.Mem/4
	case 1, 2:
		return d.lat.L2 + d.lat.LLC
	default:
		return d.lat.L2
	}
}
