package core

import (
	"fdp/internal/ftq"
	"fdp/internal/obs"
	"fdp/internal/program"
)

// dispatchStage consumes decoded instructions in order, matching them
// against the oracle stream. Correct-path instructions retire and train
// the predictors with architectural state; the first control-flow
// divergence schedules a pipeline flush ResolveLatency cycles later
// (execution-stage branch resolution), and everything dispatched in
// between is wrong-path work that gets squashed.
func (c *Core) dispatchStage() {
	if c.diverged && c.now >= c.flushAt {
		c.applyFlush()
	}
	if c.now < c.blockedUntil {
		return
	}
	budget := c.cfg.DecodeWidth
	for budget > 0 && c.dqLen > 0 {
		u := c.dq[c.dqHead]
		c.dqHead++
		if c.dqHead == len(c.dq) {
			c.dqHead = 0
		}
		c.dqLen--
		budget--

		if c.diverged {
			c.wrongPathDisp++
			continue
		}
		if u.pc != c.oracle.PC() {
			panic("core: correct-path stream out of sync with oracle")
		}
		dyn := c.oracle.Next()
		c.retired++

		if dyn.SI.IsBranch() {
			c.trainBranch(u, dyn)
		}

		if u.next != dyn.NextPC {
			// Misprediction: detected architecturally now, but the flush
			// and redirect happen at execution-stage resolution.
			c.diverged = true
			c.flushAt = c.now + uint64(c.cfg.ResolveLatency)
			c.flushTo = dyn.NextPC
			c.run.Mispredictions++
			switch {
			case dyn.Taken && !u.detected && !u.pfc:
				c.run.MispredBTBMiss++
			case dyn.SI.Type.IsConditional():
				c.run.MispredCond++
			case dyn.SI.Type.IsIndirect():
				c.run.MispredIndirect++
			case dyn.SI.Type.IsReturn():
				c.run.MispredReturn++
			}
			if u.pfc {
				c.run.PFCWrong++
			}
			if c.debugMispred != nil {
				c.debugMispred(u, dyn)
			}
		}

		if c.data != nil {
			if !dyn.SI.IsBranch() && c.data.loadFor(u.pc) {
				if stall := c.data.access(u.pc, c.retired); stall > 0 {
					c.blockedUntil = c.now + stall
					return
				}
			}
		} else if c.cfg.StallProb > 0 && c.stallRng.Bool(c.cfg.StallProb) {
			c.blockedUntil = c.now + uint64(c.cfg.StallCycles)
			return
		}
	}
}

// trainBranch updates every predictor with the architectural outcome of a
// retired branch, using the architectural history (the state the frontend
// would have predicted this branch with on a correct path).
func (c *Core) trainBranch(u uop, dyn program.DynInst) {
	si := dyn.SI
	mispred := u.next != dyn.NextPC
	c.run.Branches++
	if si.Type.IsConditional() {
		c.run.CondBranches++
		if u.hint != dyn.Taken {
			c.run.DirMispredictions++
		}
		if c.tage != nil {
			c.tage.Update(u.pc, c.histArch, dyn.Taken)
		} else {
			c.dir.Update(u.pc, c.histArch, dyn.Taken)
		}
	}
	if dyn.Taken {
		c.run.TakenBranches++
		if !u.detected {
			c.run.BTBMissTaken++
		}
	}
	if si.Type.IsIndirect() {
		c.it.Update(u.pc, c.histArch, dyn.NextPC)
	}

	// BTB allocation policy (Table V). The perfect BTB ignores direct
	// inserts but records indirect targets, as an infinite BTB would.
	// Basic-block mode allocates one block entry per retired branch —
	// including not-taken conditionals, by the definition of a basic
	// block (§III-A).
	if c.bb != nil {
		if u.pc >= c.archBlockStart {
			size := int((u.pc-c.archBlockStart)/program.InstBytes) + 1
			tgt := dyn.NextPC
			if !dyn.Taken {
				tgt = si.Target
			}
			c.bb.Insert(c.archBlockStart, size, si.Type, tgt)
		}
		if dyn.Taken {
			c.archBlockStart = dyn.NextPC
		} else {
			c.archBlockStart = u.pc + program.InstBytes
		}
	} else {
		switch {
		case dyn.Taken:
			c.tb.Insert(u.pc, si.Type, dyn.NextPC)
		case c.cfg.BTBAllocPolicy == AllocAll:
			c.tb.Insert(u.pc, si.Type, si.Target)
		}
	}

	// Architectural RAS.
	if si.Type.IsCall() {
		c.rasArch.Push(u.pc + program.InstBytes)
	}
	if si.Type.IsReturn() {
		c.rasArch.Pop()
	}

	// Architectural history, mirroring the speculative insertion rules so
	// flush recovery restores exactly the history the frontend would have
	// had (§III-A: the flush "unrolls" and fixes the history).
	switch c.cfg.HistPolicy {
	case HistTHR:
		if dyn.Taken {
			c.histArch.InsertTaken(u.pc, dyn.NextPC)
		}
	case HistGHRNoFix:
		if u.detected || u.pfc || mispred {
			c.histArch.InsertDir(dyn.Taken)
		}
	case HistGHRFix, HistIdeal:
		c.histArch.InsertDir(dyn.Taken)
	}

	if c.pf != nil {
		c.pf.OnBranch(u.pc, si.Type, dyn.NextPC, c.emit)
	}
}

// applyFlush squashes the frontend and restarts it on the correct path
// with architectural history and RAS state.
func (c *Core) applyFlush() {
	c.diverged = false
	// Account speculative fetch work thrown away: entries that initiated
	// fills but never delivered an instruction.
	a, b := c.q.Views()
	c.countWrongPathFills(a)
	c.countWrongPathFills(b)
	if c.obs != nil {
		depth := uint64(c.q.Len())
		c.obs.FlushDepth.Observe(depth)
		c.obs.Tracer.Emit(obs.EvFlush, c.flushTo, depth)
	}
	c.q.Flush()
	c.readyQ = c.readyQ[:0]
	c.dqHead, c.dqLen = 0, 0
	c.histSpec.CopyFrom(c.histArch)
	c.rasSpec.CopyFrom(c.rasArch)
	c.resteer(c.flushTo, resteerFlush)
}

// countWrongPathFills tallies squashed entries of one contiguous FTQ view
// whose fills never delivered an instruction.
func (c *Core) countWrongPathFills(part []ftq.Entry) {
	for i := range part {
		e := &part[i]
		if e.FillInitiated && e.FetchedUpTo == e.StartOffset() {
			c.run.WrongPathFills++
		}
	}
}
