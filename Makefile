# Tier-1 gate for this repo (see ROADMAP.md). `make ci` is what must stay
# green; the other targets are its pieces plus developer conveniences.

GO ?= go
FUZZTIME ?= 5s

.PHONY: ci build vet test race fuzz bench bench-check golden-update clean experiments-smoke accounting-check chaos-check warmup-check repro-check spec-check cover

ci: vet build race fuzz experiments-smoke accounting-check chaos-check warmup-check repro-check spec-check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Each fuzz target needs its own invocation (go test allows one -fuzz
# pattern matching a single target per package).
fuzz:
	$(GO) test -run=^$$ -fuzz=FuzzHistogram -fuzztime=$(FUZZTIME) ./internal/obs
	$(GO) test -run=^$$ -fuzz=FuzzEventJSONL -fuzztime=$(FUZZTIME) ./internal/obs
	$(GO) test -run=^$$ -fuzz=FuzzIntervalJSONL -fuzztime=$(FUZZTIME) ./internal/obs
	$(GO) test -run=^$$ -fuzz=FuzzSpanJSONL -fuzztime=$(FUZZTIME) ./internal/obs
	$(GO) test -run=^$$ -fuzz=FuzzRead -fuzztime=$(FUZZTIME) ./internal/trace
	$(GO) test -run=^$$ -fuzz=FuzzBatchedDecode -fuzztime=$(FUZZTIME) ./internal/trace
	$(GO) test -run=^$$ -fuzz=FuzzJournal -fuzztime=$(FUZZTIME) ./internal/runner
	$(GO) test -run=^$$ -fuzz=FuzzCheckpoint -fuzztime=$(FUZZTIME) ./internal/core
	$(GO) test -run=^$$ -fuzz=FuzzScorecardJSON -fuzztime=$(FUZZTIME) ./internal/repro
	$(GO) test -run=^$$ -fuzz=FuzzWorkloadSpec -fuzztime=$(FUZZTIME) ./internal/wspec
	$(GO) test -run=^$$ -fuzz=FuzzResultEnvelope -fuzztime=$(FUZZTIME) ./internal/dist

# Benchmark knobs: BENCHTIME bounds the go-test benchmarks (1x keeps the
# 17-benchmark sweep fast; raise for stable numbers), BENCHREPS is the
# repetition count of the benchkit kernel suite, and BENCHTOL the
# fractional regression tolerance of bench-check (generous by default so
# it gates on structural regressions — allocation leaks, >2x slowdowns
# — rather than machine-to-machine timing noise; loaded shared runners
# routinely measure 50-80% above a quiet machine's timings. Allocation
# metrics have (near-)zero baselines, so they stay effectively exact at
# any timing tolerance).
BENCHTIME ?= 1x
BENCHREPS ?= 5
BENCHTOL ?= 1.0

# The full benchmark set: every go-test benchmark (experiments, whole-sim
# throughput, steady-state cycle loop), then the benchkit kernel suite
# with its per-golden-config metrics.
bench:
	$(GO) test -bench . -benchtime $(BENCHTIME) -run=^$$ .
	$(GO) run ./cmd/bench -reps $(BENCHREPS)

# Regression gate: re-measure the kernel suite and fail if any metric is
# worse than the committed BENCH_kernel.json beyond BENCHTOL. Allocation
# metrics with a zero baseline are effectively exact (the tolerance acts
# as an absolute allowance); see docs/PERFORMANCE.md.
bench-check:
	$(GO) run ./cmd/bench -check BENCH_kernel.json -tol $(BENCHTOL) -reps $(BENCHREPS)

# End-to-end smoke of the run-execution subsystem: the same quick
# experiment twice against one throwaway cache directory. The second run
# must be satisfied from the cache (nonzero runner cache_hits), proving
# the spec hash, disk store, and scheduler wiring end to end.
experiments-smoke:
	@dir=$$(mktemp -d) && trap 'rm -rf "$$dir"' EXIT && \
	$(GO) run ./cmd/experiments -quick -run tab2 -cache "$$dir/cache" > "$$dir/first.out" && \
	grep '^runner:' "$$dir/first.out" && \
	$(GO) run ./cmd/experiments -quick -run tab2 -cache "$$dir/cache" > "$$dir/second.out" && \
	grep '^runner:' "$$dir/second.out" && \
	grep -q 'cache_hits=[1-9]' "$$dir/second.out" || \
	{ echo "experiments-smoke: second run had no cache hits" >&2; exit 1; }

# Cycle-accounting conservation smoke: simulate a golden workload with
# manifests on stdout and pipe them through acctcheck, which asserts the
# top-down accounting buckets sum exactly to run.cycles. The unit tests
# (TestAccountingConservation) cover all golden cases; this proves the
# same invariant end to end through the CLI plumbing.
accounting-check:
	$(GO) run ./cmd/fdpsim -workload server_a,client_a -warmup 50000 -measure 150000 -metrics - | $(GO) run ./cmd/acctcheck

# Seeded fault-injection gate: inject a panic, a hang, a corrupt cache
# entry, and a kill -9 mid-campaign, and assert the runner survives each
# the advertised way (retry, watchdog, quarantine, journal resume); then
# run a distributed campaign over three worker processes while one is
# SIGKILLed, one hangs every lease, and the network flips bits, and
# assert the results are byte-identical to a clean local run. See
# docs/ROBUSTNESS.md and cmd/chaos.
chaos-check:
	$(GO) run ./cmd/chaos

# Reproduction gate: run the quick-scale scoring campaign through the
# runner's result cache and evaluate every contract in the
# internal/repro registry (the same thresholds TestHeadlineShapes
# asserts — see docs/CALIBRATION.md). Exits nonzero on any
# hard-severity expectation miss, so CI fails the moment a change bends
# a paper claim out of shape.
repro-check:
	$(GO) run ./cmd/reprocheck -scale quick

# Workload-spec gate: parse, validate and compile every example spec, so
# a schema or compiler change that orphans the shipped scenarios (or a
# broken example) fails CI. See docs/WORKLOADS.md.
spec-check:
	$(GO) run ./cmd/wlstat -check examples/workloads

# Coverage gate: per-package `go test -short -cover` (the per-package
# lines are the useful CI log), then the aggregate statement coverage
# checked against COVERFLOOR. The aggregate measured 71.4% as of the
# distributed-execution PR (2026-08); the floor sits a couple of points
# below so it trips on real coverage regressions, not refactoring noise.
COVERFLOOR ?= 69.5
COVERPROFILE ?= cover.out

cover:
	$(GO) test -short -cover -coverprofile=$(COVERPROFILE) ./...
	@total=$$($(GO) tool cover -func=$(COVERPROFILE) | awk '/^total:/ { gsub(/%/,"",$$3); print $$3 }'); \
	awk -v t="$$total" -v floor="$(COVERFLOOR)" 'BEGIN { \
		if (t+0 < floor+0) { printf "cover: total %s%% is below the floor %s%%\n", t, floor; exit 1 } \
		printf "cover: total %s%% >= floor %s%%\n", t, floor }'

# Fast-forward warmup gate: for every golden (config, workload) pair,
# a cold fast-forward run and a checkpoint-restored run must produce
# byte-identical manifests over the measured region, and a warmup-heavy
# 8-config sweep must run >= 2x faster with checkpoints on (the measured
# speedup is logged). See cmd/warmupcheck and docs/ARCHITECTURE.md.
warmup-check:
	$(GO) run ./cmd/warmupcheck

# Regenerate the golden-run manifests after an intentional simulator
# change; review the diff before committing. Cached runner results are
# keyed by runner.Epoch (internal/runner/spec.go): whenever a golden
# manifest legitimately changes, bump Epoch in the same commit so stale
# on-disk caches (-cache/-resume) cannot replay pre-change results.
golden-update:
	$(GO) test -run TestGoldenManifests -update .

clean:
	$(GO) clean ./...
