package main

import (
	"fmt"
	"os"

	"fdp/internal/experiments"
)

// runScore is the -score mode: evaluate the reproduction contracts at
// the selected scale, print the per-artifact scorecard (and optionally
// the machine-readable JSON document), and exit 1 on any hard
// expectation miss — the same verdict `make repro-check` gates CI on.
func runScore(opts experiments.Options, jsonOut string) {
	card, err := experiments.Score(opts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "report: %v\n", err)
		os.Exit(2)
	}
	fmt.Print(card.String())

	if jsonOut != "" {
		b, err := card.Encode()
		if err != nil {
			fmt.Fprintf(os.Stderr, "report: %v\n", err)
			os.Exit(2)
		}
		if jsonOut == "-" {
			os.Stdout.Write(b)
		} else if err := os.WriteFile(jsonOut, b, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "report: %v\n", err)
			os.Exit(2)
		}
	}

	if fails := card.HardFailures(); len(fails) > 0 {
		fmt.Fprintf(os.Stderr, "report: %d hard expectation(s) failed: %v\n", len(fails), fails)
		os.Exit(1)
	}
}
