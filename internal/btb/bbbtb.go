package btb

import "fdp/internal/program"

// BasicBlock is a basic-block-based BTB in the style of the academic
// baselines the paper contrasts with (Confluence/Boomerang/Shotgun,
// §III-A): entries are keyed by the *block start* address and hold the
// block size, the terminating branch's type and its taken target — exactly
// one branch per entry, including not-taken conditionals. This gives
// perfect branch detection for covered blocks (no GHR gaps) at the price
// of extra fields, entries for never-taken branches, and lookups that must
// happen at block granularity.
type BasicBlock struct {
	sets     int
	ways     int
	setMask  uint64
	entries  []bbEntry
	lruClock uint64

	lookups uint64
	hits    uint64
	// Inserts and Replacements support pollution studies.
	Inserts      uint64
	Replacements uint64
}

type bbEntry struct {
	valid  bool
	tag    uint64 // block start >> 2
	size   uint16 // instructions up to and including the branch
	typ    program.InstType
	target uint64
	lru    uint64
}

// MaxBlockSize bounds the block-size field (6 bits, like Shotgun's
// encodings); longer blocks are split by allocation.
const MaxBlockSize = 63

// NewBasicBlock builds a BB-BTB with the given entry count and
// associativity.
func NewBasicBlock(entries, ways int) *BasicBlock {
	if entries <= 0 || ways <= 0 || entries%ways != 0 {
		panic("btb: bad basic-block geometry")
	}
	sets := entries / ways
	if sets&(sets-1) != 0 {
		panic("btb: basic-block set count not a power of two")
	}
	return &BasicBlock{
		sets:    sets,
		ways:    ways,
		setMask: uint64(sets - 1),
		entries: make([]bbEntry, entries),
	}
}

// Entries returns the capacity.
func (b *BasicBlock) Entries() int { return b.sets * b.ways }

// EntryBits returns the per-entry storage cost in bits: tag-ish start
// address (48), size (6), type (3) and target (48) — the "additional
// fields" overhead of §III-A versus the ~7-byte instruction-BTB entry.
func EntryBits() int { return 48 + 6 + 3 + 48 }

func (b *BasicBlock) set(start uint64) []bbEntry {
	s := int((start >> 2) & b.setMask)
	return b.entries[s*b.ways : (s+1)*b.ways]
}

// Lookup finds the block starting exactly at start. It returns the block
// size in instructions, the terminating branch's type and taken target.
func (b *BasicBlock) Lookup(start uint64) (size int, t program.InstType, target uint64, ok bool) {
	b.lookups++
	tag := start >> 2
	set := b.set(start)
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			b.hits++
			b.lruClock++
			set[i].lru = b.lruClock
			return int(set[i].size), set[i].typ, set[i].target, true
		}
	}
	return 0, program.NonBranch, 0, false
}

// Insert installs or refreshes the block starting at start.
func (b *BasicBlock) Insert(start uint64, size int, t program.InstType, target uint64) {
	if size < 1 {
		return
	}
	if size > MaxBlockSize {
		size = MaxBlockSize
	}
	tag := start >> 2
	set := b.set(start)
	victim := 0
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			set[i].size = uint16(size)
			set[i].typ = t
			set[i].target = target
			b.lruClock++
			set[i].lru = b.lruClock
			return
		}
		if !set[i].valid {
			victim = i
		} else if set[victim].valid && set[i].lru < set[victim].lru {
			victim = i
		}
	}
	b.Inserts++
	if set[victim].valid {
		b.Replacements++
	}
	b.lruClock++
	set[victim] = bbEntry{valid: true, tag: tag, size: uint16(size), typ: t, target: target, lru: b.lruClock}
}

// Lookups returns the access count.
func (b *BasicBlock) Lookups() uint64 { return b.lookups }

// Hits returns the hit count.
func (b *BasicBlock) Hits() uint64 { return b.hits }

// ResetStats clears counters, keeping contents.
func (b *BasicBlock) ResetStats() { b.lookups, b.hits, b.Inserts, b.Replacements = 0, 0, 0, 0 }
