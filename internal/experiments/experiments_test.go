package experiments

import (
	"strings"
	"testing"

	"fdp/internal/synth"
)

// tinyOptions keeps unit tests fast: two workloads, short runs.
func tinyOptions() Options {
	p := synth.SpecParams(0)
	p.Name = "exp-test"
	p.Funcs = 150
	w := synth.MustGenerate(p, "spec", 0xE0)
	p2 := synth.ServerParams(0)
	p2.Name = "exp-test-srv"
	p2.Funcs = 600
	w2 := synth.MustGenerate(p2, "server", 0xE1)
	return Options{Warmup: 20_000, Measure: 80_000, Workloads: []*synth.Workload{w, w2}}
}

var tiny = tinyOptions()

func TestRegistryComplete(t *testing.T) {
	all := All()
	want := []string{"fig1", "tab1", "tab2", "tab3", "tab4", "tab5", "fig6a", "fig6b",
		"fig7", "fig8", "fig9", "fig10", "fig11", "fig12", "fig13", "fig14"}
	if len(all) != len(want) {
		t.Fatalf("registry has %d experiments, want %d", len(all), len(want))
	}
	for i, id := range want {
		if all[i].ID != id {
			t.Errorf("experiment %d = %s, want %s", i, all[i].ID, id)
		}
		if all[i].Run == nil || all[i].Title == "" {
			t.Errorf("experiment %s incomplete", id)
		}
	}
	if _, ok := ByID("fig7"); !ok {
		t.Error("ByID(fig7) failed")
	}
	if _, ok := ByID("nope"); ok {
		t.Error("ByID(nope) succeeded")
	}
}

func TestStaticTables(t *testing.T) {
	// The pure-documentation tables run instantly and must render.
	for _, id := range []string{"tab1", "tab3", "tab4", "tab5"} {
		e, _ := ByID(id)
		res, err := e.Run(tiny)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if len(res.Tables) == 0 || res.Tables[0].NumRows() == 0 {
			t.Errorf("%s: empty table", id)
		}
		if res.ID != id {
			t.Errorf("%s: result ID %s", id, res.ID)
		}
	}
}

func TestTable3Shows195Bytes(t *testing.T) {
	res, err := Table3(tiny)
	if err != nil {
		t.Fatal(err)
	}
	out := res.String()
	if !strings.Contains(out, "195 bytes") {
		t.Errorf("Table III missing the 195-byte total:\n%s", out)
	}
	for _, n := range res.Notes {
		if strings.Contains(n, "WARNING") {
			t.Errorf("Table III self-check failed: %s", n)
		}
	}
}

func TestTable2Shapes(t *testing.T) {
	res, err := Table2(tiny)
	if err != nil {
		t.Fatal(err)
	}
	if res.Tables[0].NumRows() != 3 {
		t.Errorf("Table II rows = %d", res.Tables[0].NumRows())
	}
	out := res.String()
	if !strings.Contains(out, "Target") || !strings.Contains(out, "Direction (fix)") {
		t.Errorf("Table II missing rows:\n%s", out)
	}
}

func TestFig7Shape(t *testing.T) {
	res, err := Fig7(tiny)
	if err != nil {
		t.Fatal(err)
	}
	if res.Tables[0].NumRows() != len(btbSizes) {
		t.Errorf("Fig7 rows = %d, want %d", res.Tables[0].NumRows(), len(btbSizes))
	}
}

func TestFig14Shape(t *testing.T) {
	res, err := Fig14(tiny)
	if err != nil {
		t.Fatal(err)
	}
	if res.Tables[0].NumRows() != len(ftqSizes) {
		t.Errorf("Fig14 rows = %d", res.Tables[0].NumRows())
	}
	out := res.String()
	if !strings.Contains(out, "speedup") {
		t.Errorf("Fig14 output malformed:\n%s", out)
	}
}

func TestFig13Shape(t *testing.T) {
	res, err := Fig13(tiny)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tables) != 2 {
		t.Fatalf("Fig13 tables = %d, want 2 (bandwidth + latency)", len(res.Tables))
	}
	if res.Tables[0].NumRows() != 4 || res.Tables[1].NumRows() != 4 {
		t.Errorf("Fig13 rows = %d/%d", res.Tables[0].NumRows(), res.Tables[1].NumRows())
	}
}

func TestFig6bPerWorkloadRows(t *testing.T) {
	res, err := Fig6b(tiny)
	if err != nil {
		t.Fatal(err)
	}
	if res.Tables[0].NumRows() != len(tiny.Workloads) {
		t.Errorf("Fig6b rows = %d, want %d", res.Tables[0].NumRows(), len(tiny.Workloads))
	}
}

func TestOptionsPresets(t *testing.T) {
	d := DefaultOptions()
	if len(d.Workloads) != 12 || d.Measure <= d.Warmup {
		t.Errorf("DefaultOptions: %d workloads, %d/%d", len(d.Workloads), d.Warmup, d.Measure)
	}
	q := QuickOptions()
	if len(q.Workloads) != 6 {
		t.Errorf("QuickOptions workloads = %d", len(q.Workloads))
	}
	if q.Measure >= d.Measure {
		t.Error("quick not quicker than default")
	}
	f := FullOptions()
	if f.Measure <= d.Measure {
		t.Error("full not fuller than default")
	}
	if (&Options{}).parallel() < 1 {
		t.Error("parallel() < 1")
	}
	if (&Options{Parallel: 3}).parallel() != 3 {
		t.Error("explicit Parallel ignored")
	}
}

func TestResultString(t *testing.T) {
	res, _ := Table1(tiny)
	out := res.String()
	for _, want := range []string{"### tab1", "Shotgun", "note:"} {
		if !strings.Contains(out, want) {
			t.Errorf("Result.String missing %q:\n%s", want, out)
		}
	}
}
