package obs

import (
	"bytes"
	"strings"
	"testing"
)

func testRecord(base uint64) IntervalRecord {
	rec := IntervalRecord{
		Cycle:        base * 1000,
		Instructions: base * 700,
		L1IMisses:    base * 3,
		FTQOcc:       base % 24,
	}
	for b := range rec.Acct {
		rec.Acct[b] = base * uint64(b+1)
	}
	return rec
}

func TestIntervalRecordDerived(t *testing.T) {
	rec := testRecord(1)
	var want uint64
	for b := 0; b < NumAcctBuckets; b++ {
		want += uint64(b + 1)
	}
	if rec.Cycles() != want {
		t.Errorf("Cycles() = %d, want %d", rec.Cycles(), want)
	}
	if got := rec.IPC(); got != float64(rec.Instructions)/float64(want) {
		t.Errorf("IPC() = %v", got)
	}
	if got := rec.L1IMPKI(); got != 1000*float64(rec.L1IMisses)/float64(rec.Instructions) {
		t.Errorf("L1IMPKI() = %v", got)
	}
	empty := IntervalRecord{}
	if empty.IPC() != 0 || empty.L1IMPKI() != 0 {
		t.Error("empty record derived rates must be 0")
	}
}

func TestIntervalRecorder(t *testing.T) {
	var nilRec *IntervalRecorder
	if nilRec.Every() != 0 {
		t.Error("nil recorder Every() != 0")
	}
	nilRec.Record(IntervalRecord{}) // must not panic
	nilRec.Reset()
	if nilRec.Records() != nil {
		t.Error("nil recorder has records")
	}

	r := NewIntervalRecorder(5000)
	if r.Every() != 5000 {
		t.Errorf("Every() = %d", r.Every())
	}
	r.Record(testRecord(1))
	r.Record(testRecord(2))
	if len(r.Records()) != 2 {
		t.Fatalf("got %d records", len(r.Records()))
	}
	r.Reset()
	if len(r.Records()) != 0 {
		t.Error("Reset did not discard records")
	}

	defer func() {
		if recover() == nil {
			t.Error("NewIntervalRecorder(0) did not panic")
		}
	}()
	NewIntervalRecorder(0)
}

func TestIntervalJSONLRoundTrip(t *testing.T) {
	recs := []IntervalRecord{testRecord(1), testRecord(2), testRecord(7)}
	var buf bytes.Buffer
	if err := WriteRunIntervals(&buf, "fdp/server_a", 5000, recs); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), `{"run":"fdp/server_a","every":5000}`+"\n") {
		t.Errorf("missing run header: %q", buf.String())
	}
	back, err := ReadIntervalJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(recs) {
		t.Fatalf("got %d records, want %d", len(back), len(recs))
	}
	for i := range recs {
		if back[i] != recs[i] {
			t.Errorf("record %d: %+v != %+v", i, back[i], recs[i])
		}
	}
}

func TestParseIntervalRecordErrors(t *testing.T) {
	if _, err := ParseIntervalRecord([]byte(`not json`)); err == nil {
		t.Error("non-JSON line must error")
	}
	if _, err := ParseIntervalRecord([]byte(`{"c":1,"i":2,"a":[1,2,3],"m":0,"o":0}`)); err == nil {
		t.Error("short accounting vector must error")
	}
}

func TestAcctVector(t *testing.T) {
	counters := map[string]uint64{"run.cycles": 100}
	if _, ok := AcctVector(counters); ok {
		t.Error("AcctVector on counters without the family must report !ok")
	}
	for b := 0; b < NumAcctBuckets; b++ {
		counters[AcctCounterName(b)] = uint64(b) * 10
	}
	v, ok := AcctVector(counters)
	if !ok {
		t.Fatal("AcctVector !ok with full family")
	}
	for b := 0; b < NumAcctBuckets; b++ {
		if v[b] != uint64(b)*10 {
			t.Errorf("bucket %d = %d, want %d", b, v[b], uint64(b)*10)
		}
	}
	// A partial family (one bucket missing) is not a family.
	delete(counters, AcctCounterName(NumAcctBuckets-1))
	if _, ok := AcctVector(counters); ok {
		t.Error("partial family must report !ok")
	}
}

// FuzzIntervalJSONL hardens the interval codec the same way as
// FuzzEventJSONL: arbitrary input never panics, and any line that parses
// must survive a re-encode/re-parse round trip, including through the
// stream reader.
func FuzzIntervalJSONL(f *testing.F) {
	f.Add(AppendIntervalJSONL(nil, testRecord(1)))
	f.Add(AppendIntervalJSONL(nil, IntervalRecord{}))
	f.Add([]byte(`{"c":1,"i":2,"a":[0,1,2,3,4,5,6],"m":1,"o":8}`))
	f.Add([]byte(`{"c":1,"i":2,"a":[0,1],"m":1,"o":8}`))
	f.Add([]byte(`{"run":"header","every":5000}`))
	f.Add([]byte(`not json`))

	f.Fuzz(func(t *testing.T, line []byte) {
		rec, err := ParseIntervalRecord(line)
		if err != nil {
			return
		}
		enc := AppendIntervalJSONL(nil, rec)
		back, err := ParseIntervalRecord(enc)
		if err != nil {
			t.Fatalf("re-parse of %q failed: %v", enc, err)
		}
		if back != rec {
			t.Fatalf("round trip %+v -> %q -> %+v", rec, enc, back)
		}
		recs, err := ReadIntervalJSONL(bytes.NewReader(append(enc, '\n')))
		if err != nil || len(recs) != 1 || recs[0] != rec {
			t.Fatalf("ReadIntervalJSONL(%q) = %v, %v", enc, recs, err)
		}
	})
}
