package core

import (
	"fdp/internal/cache"
	"fdp/internal/ftq"
	"fdp/internal/obs"
	"fdp/internal/program"
)

// completeFills drains finished L1I fills, waking matching FTQ entries and
// running the fill-side hooks (prefetcher training, BTB prefetching,
// exposed-miss classification).
func (c *Core) completeFills() {
	c.fillBuf = c.hier.Advance(c.now, c.fillBuf[:0])
	for i := range c.fillBuf {
		f := &c.fillBuf[i]
		if c.pf != nil {
			c.pf.OnFill(f.Line, c.emit)
		}
		if c.cfg.BTBPrefetch {
			c.btbPredecodeLine(f.Line)
		}
		a, b := c.q.Views()
		c.wakeEntries(a, f)
		c.wakeEntries(b, f)
	}
}

// wakeEntries transitions the waiting entries of one contiguous FTQ view
// whose block was just filled.
func (c *Core) wakeEntries(part []ftq.Entry, f *cache.Fill) {
	for j := range part {
		e := &part[j]
		if e.State == ftq.StateWaitFill && cache.LineAddr(e.BlockBase()) == f.Line {
			e.State = ftq.StateFetchable
			e.Way = int8(f.Way)
			if e.Missed {
				c.classifyMiss(e)
				e.Missed = false
			}
		}
	}
}

// classifyMiss implements the §VI-G taxonomy: covered (filled before any
// starvation was observed), fully exposed (fill initiated only once the
// entry reached the FTQ head) or partially exposed.
func (c *Core) classifyMiss(e *ftq.Entry) {
	switch {
	case c.run.StarvationCycles == e.StarvAtReq:
		c.run.MissCovered++
	case e.FillAtHead:
		c.run.MissFullyExposed++
	default:
		c.run.MissPartiallyExposed++
	}
}

// btbPredecodeLine implements BTB prefetching (§VI-E): pre-decode a filled
// line and unconditionally install its PC-relative branches. Register-
// indirect branches cannot be prefetched this way.
func (c *Core) btbPredecodeLine(line uint64) {
	// Prefetched branches are installed cold (at LRU) so they cannot
	// displace the trained working set unless a real lookup wants them.
	target := c.realBTB
	if target == nil && c.twoLevel != nil {
		target = c.twoLevel.L2()
	}
	if target == nil {
		return // perfect BTB: nothing to prefetch into
	}
	base := line << cache.LineShift
	for o := 0; o < cache.LineBytes/program.InstBytes; o++ {
		pc := base + uint64(o)*program.InstBytes
		si, ok := c.img.At(pc)
		if !ok {
			continue
		}
		switch si.Type {
		case program.CondDirect, program.Jump, program.Call:
			target.InsertCold(pc, si.Type, si.Target)
		}
	}
}

// fillStage probes the I-TLB and I-cache tags for the oldest ready FTQ
// entries and launches fills for misses, decoupled from the fetch stage
// (§IV-C: fills start without waiting for the entry to reach the head).
func (c *Core) fillStage() {
	if len(c.readyQ) > 0 {
		c.fillScan()
	}
	c.issuePrefetches()
}

// fillScan runs the fill-stage probe loop over the ready-entry queue
// (oldest first, matching FTQ order). Entries that stay ready — retry
// backoff, probe budget exhausted, MSHRs full — are compacted in place;
// entries that transition are dropped from the queue.
func (c *Core) fillScan() {
	rq := c.readyQ
	probes := c.cfg.TagProbesPerCycle
	head := c.q.Head()
	w, i := 0, 0
	for ; i < len(rq) && probes > 0; i++ {
		e := rq[i]
		if c.now < e.RetryAt {
			rq[w] = e
			w++
			continue
		}
		probes--
		if !e.Translated {
			if !c.itlb.Probe(e.StartPC) {
				// Page walk: the response is delivered to this entry after
				// the penalty even if the TLB entry is evicted meanwhile.
				c.itlb.Fill(e.StartPC)
				e.Translated = true
				e.RetryAt = c.now + uint64(c.cfg.ITLBMissPenalty)
				rq[w] = e
				w++
				continue
			}
			e.Translated = true
		}
		line := cache.LineAddr(e.BlockBase())
		c.run.L1IAccesses++
		prefBefore := c.hier.L1I.PrefHits
		hit, way := c.hier.L1I.Probe(line)
		prefHit := c.hier.L1I.PrefHits > prefBefore
		if c.pf != nil {
			c.pf.OnAccess(line, hit, prefHit, c.emit)
		}
		if hit {
			e.State = ftq.StateFetchable
			e.Way = int8(way)
			continue
		}
		c.run.L1IMisses++
		if c.cfg.PerfectPrefetch {
			// Perfect prefetching: the line appears instantly but the
			// memory request still happens (§V).
			e.State = ftq.StateFetchable
			e.Way = int8(c.hier.InstantFill(line))
			c.run.PrefetchIssued++
			c.run.MissCovered++
			continue
		}
		done, ok := c.hier.RequestFill(line, false, c.now)
		if !ok {
			// MSHR full; retry next cycle. Flag the refusal so the cycle
			// classifier can attribute starvation to MSHR backpressure.
			c.acctMSHRFull = true
			rq[w] = e
			w++
			continue
		}
		e.State = ftq.StateWaitFill
		e.Missed = true
		e.FillInitiated = true
		e.FillAtHead = e == head
		e.FillDone = done
		e.StarvAtReq = c.run.StarvationCycles
	}
	// Keep the unvisited tail (probe budget exhausted).
	w += copy(rq[w:], rq[i:])
	c.readyQ = rq[:w]
}

// emitPF enqueues a prefetch candidate from a prefetcher hook.
func (c *Core) emitPF(line uint64) {
	if len(c.pfQueue) < c.cfg.PrefetchQueueCap {
		c.pfQueue = append(c.pfQueue, line)
	}
}

// issuePrefetches filters queued candidates against the tag array
// (charging tag probes) and launches prefetch fills through the MSHRs.
func (c *Core) issuePrefetches() {
	issued := 0
	for len(c.pfQueue) > 0 && issued < c.cfg.PrefetchDegree {
		line := c.pfQueue[0]
		c.pfQueue = c.pfQueue[:copy(c.pfQueue, c.pfQueue[1:])]
		issued++
		if c.hier.L1I.ProbeQuiet(line) {
			c.run.PrefetchRedundant++
			continue
		}
		if _, pending := c.hier.Pending(line); pending {
			c.run.PrefetchRedundant++
			continue
		}
		if _, ok := c.hier.RequestFill(line, true, c.now); ok {
			c.run.PrefetchIssued++
		}
	}
}

// fetchStage delivers instructions from the FTQ head to the decode queue,
// running the pre-decoder (PFC, §III-B; GHR fixup, §III-A) the first time
// each entry is touched.
func (c *Core) fetchStage() {
	budget := c.cfg.FetchWidth
	for budget > 0 && !c.q.Empty() {
		e := c.q.Head()
		if e.State != ftq.StateFetchable {
			return
		}
		if !e.PFCChecked {
			if c.predecode(e) {
				return // re-steered or fixed up: frontend bubble this cycle
			}
		}
		for budget > 0 && e.FetchedUpTo <= e.EndOffset {
			if c.dqLen == c.cfg.DecodeQueueCap {
				return
			}
			o := e.FetchedUpTo
			pc := e.PCAt(o)
			next := pc + program.InstBytes
			isEnd := o == e.EndOffset
			if isEnd {
				next = e.NextPC
			}
			c.pushUop(uop{
				pc:       pc,
				next:     next,
				hint:     e.HintAt(o),
				detected: e.DetectedAt(o),
				pfc:      e.PFCApplied && isEnd,
			})
			e.FetchedUpTo++
			budget--
		}
		if e.FetchedUpTo > e.EndOffset {
			c.q.PopHead()
		} else {
			return
		}
	}
}

func (c *Core) pushUop(u uop) {
	idx := c.dqHead + c.dqLen
	if idx >= len(c.dq) {
		idx -= len(c.dq)
	}
	c.dq[idx] = u
	c.dqLen++
}

// predecode scans an entry's instructions against the program image (the
// hardware pre-decoder inspecting fetched bytes) and applies post-fetch
// correction or GHR fixup. It returns true when the frontend was
// re-steered or flushed.
func (c *Core) predecode(e *ftq.Entry) bool {
	e.PFCChecked = true
	so := e.StartOffset()
	if c.cfg.PFC {
		// PFC window: branches before the terminating offset; when the
		// block was not predicted taken, the final slot is included (the
		// flow claims sequential fall-through past it).
		last := e.EndOffset
		if e.PredictedTaken {
			last = e.EndOffset - 1
		}
		for o := so; o <= last; o++ {
			si, ok := c.img.At(e.PCAt(o))
			if !ok {
				continue
			}
			switch {
			case si.Type == program.Jump || si.Type == program.Call || si.Type.IsReturn():
				// Case 1: unconditional with a pre-decode-recoverable
				// target that the flow sailed past.
				c.doPFC(e, o, si)
				return true
			case si.Type == program.CondDirect && e.HintAt(o):
				// Case 2: BTB-miss conditional whose hint says taken.
				c.doPFC(e, o, si)
				return true
			}
		}
	}
	if c.cfg.HistPolicy == HistGHRFix && c.needsHistFixup(e) {
		c.doHistFixup(e)
		return true
	}
	return false
}

// needsHistFixup reports whether the entry contains an undetected
// conditional branch whose direction bit is missing from the GHR.
func (c *Core) needsHistFixup(e *ftq.Entry) bool {
	for o := e.StartOffset(); o <= e.EndOffset; o++ {
		si, ok := c.img.At(e.PCAt(o))
		if ok && si.Type == program.CondDirect && !e.DetectedAt(o) &&
			!(e.PredictedTaken && o == e.EndOffset) {
			return true
		}
	}
	return false
}

// doPFC performs a post-fetch correction re-steer at block offset o: the
// speculative history and RAS are rewound to the entry's checkpoint,
// replayed up to o, the corrected taken branch is folded in, younger FTQ
// entries are flushed, the entry is truncated at o, and prediction resumes
// at the recovered target.
func (c *Core) doPFC(e *ftq.Entry, o int, si program.StaticInst) {
	c.run.PFCResteers++
	c.histSpec.Restore(&e.Hist)
	c.rasSpec.Restore(&e.RAS)
	c.replayHistory(e, o)

	pc := e.PCAt(o)
	target := si.Target
	if si.Type.IsReturn() {
		target = c.rasSpec.Pop()
	}
	if si.Type.IsCall() {
		c.rasSpec.Push(pc + program.InstBytes)
	}
	switch c.cfg.HistPolicy {
	case HistTHR:
		c.histSpec.InsertTaken(pc, target)
	case HistGHRNoFix, HistGHRFix:
		c.histSpec.InsertDir(true)
	case HistIdeal:
		c.histSpec.InsertDir(true) // PFC asserts the branch is taken
	}

	e.EndOffset = o
	e.PredictedTaken = true
	e.NextPC = target
	e.PFCApplied = true

	if c.obs != nil {
		// Re-steer depth: run-ahead state discarded by this correction,
		// in younger FTQ entries.
		depth := uint64(c.q.Len() - 1)
		c.obs.ResteerDepth.Observe(depth)
		c.obs.Tracer.Emit(obs.EvResteer, target, depth)
	}
	c.q.TruncateAfter(0) // e is the head (fetchable), so no ready entries remain
	c.readyQ = c.readyQ[:0]
	c.resteer(target, resteerPFC)
}

// replayHistory re-applies the per-instruction history effects of entry e
// for offsets before stop, mirroring what the prediction pipe inserted.
// Under THR nothing precedes a PFC point (a detected taken branch would
// have ended the block); under GHR policies detected not-taken
// conditionals re-insert their bits; under Ideal every branch re-inserts
// its actual outcome.
func (c *Core) replayHistory(e *ftq.Entry, stop int) {
	switch c.cfg.HistPolicy {
	case HistGHRNoFix, HistGHRFix:
		for o := e.StartOffset(); o < stop; o++ {
			if e.DetectedAt(o) {
				c.histSpec.InsertDir(false)
			}
		}
	case HistIdeal:
		for o := e.StartOffset(); o < stop; o++ {
			c.specInsertIdeal(e.PCAt(o), e.HintAt(o))
		}
	}
}

// doHistFixup implements the GHR-fix policies (GHR2/GHR3): when pre-decode
// finds undetected not-taken conditionals, the speculative history is
// rebuilt with them included and everything younger is flushed (the
// paper's "more frontend flushes and backend pipeline stalls").
func (c *Core) doHistFixup(e *ftq.Entry) {
	c.run.HistFixupFlushes++
	c.histSpec.Restore(&e.Hist)
	c.rasSpec.Restore(&e.RAS)
	for o := e.StartOffset(); o <= e.EndOffset; o++ {
		pc := e.PCAt(o)
		si, ok := c.img.At(pc)
		if !ok || !si.IsBranch() {
			continue
		}
		switch {
		case si.Type.IsConditional():
			// The terminating detected-taken conditional re-inserts its
			// taken bit; all others (detected or fixed-up) are not-taken
			// on this flow.
			c.histSpec.InsertDir(e.PredictedTaken && o == e.EndOffset)
		case e.DetectedAt(o):
			c.histSpec.InsertDir(true)
		}
		// Replay RAS effects of the terminating taken branch.
		if e.PredictedTaken && o == e.EndOffset {
			if si.Type.IsReturn() {
				c.rasSpec.Pop()
			}
			if si.Type.IsCall() {
				c.rasSpec.Push(pc + program.InstBytes)
			}
		}
	}
	if c.obs != nil {
		depth := uint64(c.q.Len() - 1)
		c.obs.FlushDepth.Observe(depth)
		c.obs.Tracer.Emit(obs.EvFlush, e.NextPC, depth)
	}
	c.q.TruncateAfter(0) // e is the head (fetchable), so no ready entries remain
	c.readyQ = c.readyQ[:0]
	c.resteer(e.NextPC, resteerFixup)
}

// resteer restarts the prediction pipeline at pc after a redirect (PFC,
// history fixup or resolve-time flush), charging the pipeline restart
// latency. The cause tags the recovery bubble for cycle accounting.
func (c *Core) resteer(pc uint64, cause resteerCause) {
	c.specPC = pc
	c.lastResteer = cause
	c.predStallUntil = c.now + uint64(c.cfg.BTBLatency)
	if c.bb != nil {
		// Redirect targets are block starts: re-synchronize the walk.
		c.bbValid = false
		c.bbExpectStart = pc
	}
}
