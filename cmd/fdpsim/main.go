// Command fdpsim runs one frontend configuration on one or more workloads
// and prints the measured statistics.
//
// Usage:
//
//	fdpsim [flags]
//	fdpsim -workload server_a -ftq 24 -pfc
//	fdpsim -workload all -baseline -parallel 4 -cache ./fdp-cache
//	fdpsim -replay trace.fdpt.gz
//	fdpsim -workload server_a -metrics manifest.json -trace events.jsonl
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime/pprof"
	"strings"

	"fdp/internal/core"
	"fdp/internal/dist"
	"fdp/internal/obs"
	"fdp/internal/runner"
	"fdp/internal/stats"
	"fdp/internal/synth"
	"fdp/internal/trace"
)

func main() {
	var (
		workload     = flag.String("workload", "server_a", "comma-separated workload list: standard names, @file.yaml spec references, or 'all'")
		workloadSpec = flag.String("workload-spec", "", "workload spec file(s) to simulate, comma-separated (shorthand for -workload @file; combines with an explicit -workload)")
		replayFile   = flag.String("replay", "", "simulate a trace file instead of a synthetic workload")
		baseline     = flag.Bool("baseline", false, "use the no-FDP/no-prefetch baseline configuration")
		ftqEntries   = flag.Int("ftq", 0, "override FTQ entries (0 = config default)")
		btbEntries   = flag.Int("btb", 0, "override BTB entries")
		pfc          = flag.Bool("pfc", true, "enable post-fetch correction")
		dir          = flag.String("dir", "", "direction predictor: tage-9kb|tage-18kb|tage-36kb|gshare-8kb|perceptron-8kb|tage-sc-l-24kb|tage-sc-l-64kb|perfect")
		hist         = flag.String("hist", "thr", "history policy: thr|ghr-nofix|ghr-fix|ideal")
		prefetcher   = flag.String("prefetcher", "", "dedicated prefetcher: nl1|fnl+mma|djolt|eip-128kb|eip-27kb|sn4l+dis|rdip")
		btbPref      = flag.Bool("btb-prefetch", false, "enable BTB prefetching at fill pre-decode")
		l1btb        = flag.Int("l1btb", 0, "enable the two-level BTB extension with this many L1 entries")
		timeline     = flag.Bool("timeline", false, "print a per-workload IPC sparkline (10K-instruction windows)")
		warmup       = flag.Uint64("warmup", 200_000, "warmup instructions")
		measure      = flag.Uint64("measure", 800_000, "measured instructions")
		ffwd         = flag.Bool("ffwd", false, "functional fast-forward warmup: train predictors/caches architecturally without timing the pipeline (different warmup semantics, much faster)")
		checkpoint   = flag.Bool("checkpoint", false, "with -ffwd, reuse post-warmup state checkpoints across runs (persisted in the -cache directory when set)")
		parallel     = flag.Int("parallel", 0, "concurrent simulations with -workload all (0 = GOMAXPROCS)")
		workers      = flag.String("workers", "", "distribute simulations over these fdpworker URLs (comma-separated, e.g. http://host:9131); failed or hung workers are reassigned, and the run degrades to local execution if the whole fleet is lost")
		cacheDir     = flag.String("cache", "", "reuse results from this on-disk cache directory (synthetic workloads only)")

		check     = flag.Bool("check", false, "enable per-cycle invariant checking")
		watchdog  = flag.Duration("watchdog", 0, "cancel any simulation making no forward progress for this long (0 = off)")
		retries   = flag.Int("retries", 0, "retries for transiently failed jobs (panics), with exponential backoff")
		keepGoing = flag.Bool("keep-going", false, "report failed workloads and keep running the rest")

		metricsOut   = flag.String("metrics", "", "write per-run observability manifests (JSONL; '-' for stdout)")
		traceOut     = flag.String("trace", "", "write the pipeline event trace as JSONL to this file ('-' for stdout)")
		traceCap     = flag.Int("trace-cap", 1<<16, "event-trace ring capacity (last N events per run)")
		intervals    = flag.Uint64("intervals", 0, "snapshot the cycle-accounting time-series every N cycles (0 = off)")
		intervalsOut = flag.String("intervals-out", "", "write interval records as JSONL to this file ('-' for stdout)")
		spansOut     = flag.String("spans", "", "write the runner's job lifecycle span timeline as JSONL to this file ('-' for stdout; synthetic workloads only)")
		pprofOut     = flag.String("pprof", "", "write a CPU profile of the simulation to this file")
	)
	flag.Parse()

	cfg := core.DefaultConfig()
	if *baseline {
		cfg = core.BaselineConfig()
	}
	if *ftqEntries > 0 {
		cfg.FTQEntries = *ftqEntries
	}
	if *btbEntries > 0 {
		cfg.BTBEntries = *btbEntries
	}
	cfg.PFC = *pfc && !*baseline
	if *dir != "" {
		cfg.Dir = core.DirKind(*dir)
	}
	switch *hist {
	case "thr":
		cfg.HistPolicy = core.HistTHR
	case "ghr-nofix":
		cfg.HistPolicy, cfg.BTBAllocPolicy = core.HistGHRNoFix, core.AllocAll
	case "ghr-fix":
		cfg.HistPolicy, cfg.BTBAllocPolicy = core.HistGHRFix, core.AllocAll
	case "ideal":
		cfg.HistPolicy = core.HistIdeal
	default:
		fatal("unknown history policy %q", *hist)
	}
	cfg.Prefetcher = *prefetcher
	cfg.BTBPrefetch = *btbPref
	if *l1btb > 0 {
		cfg.L1BTBEntries = *l1btb
		cfg.L1BTBWays = 4
		cfg.L2BTBPenalty = cfg.BTBLatency
	}
	cfg.Name = "custom"
	if *baseline {
		cfg.Name = "baseline"
	}

	if *checkpoint && !*ffwd {
		fatal("-checkpoint requires -ffwd (checkpoints capture fast-forward warmup state)")
	}

	if *pprofOut != "" {
		f, err := os.Create(*pprofOut)
		if err != nil {
			fatal("%v", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal("%v", err)
		}
		defer pprof.StopCPUProfile()
	}

	var metricsW, traceW, intervalsW io.WriteCloser
	if *metricsOut != "" {
		metricsW = createOut(*metricsOut)
		defer metricsW.Close()
	}
	if *traceOut != "" {
		// -trace used to be the trace-replay input flag; refuse to clobber a
		// trace file handed to it by muscle memory.
		if strings.HasSuffix(*traceOut, ".fdpt") || strings.HasSuffix(*traceOut, ".fdpt.gz") {
			fatal("-trace now writes a pipeline event trace (JSONL); to simulate from %s use -replay", *traceOut)
		}
		if *traceCap <= 0 {
			fatal("-trace-cap must be positive (got %d)", *traceCap)
		}
		traceW = createOut(*traceOut)
		defer traceW.Close()
	}
	if *intervals > 0 && *intervalsOut == "" {
		fatal("-intervals requires -intervals-out")
	}
	if *intervalsOut != "" {
		if *intervals == 0 {
			fatal("-intervals-out requires -intervals N")
		}
		intervalsW = createOut(*intervalsOut)
		defer intervalsW.Close()
	}
	if *cacheDir != "" && (traceW != nil || intervalsW != nil) {
		fmt.Fprintln(os.Stderr, "fdpsim: warning: -cache is bypassed while -trace or -intervals is active (non-replayable side outputs)")
	}
	observed := metricsW != nil || traceW != nil || intervalsW != nil
	gitRev := ""
	if metricsW != nil {
		gitRev = obs.GitDescribe()
	}

	t := stats.NewTable("fdpsim results",
		"workload", "IPC", "branch MPKI", "L1I MPKI", "starv/KI", "tag/KI", "PFC resteers", "BTB hit%")
	var timelines []string
	report := func(name string, r *stats.Run) {
		t.AddRow(name, r.IPC(), r.BranchMPKI(), r.L1IMPKI(), r.StarvationPKI(),
			r.TagProbesPKI(), r.PFCResteers, 100*r.BTBHitRate())
		if *timeline {
			timelines = append(timelines, fmt.Sprintf("%-10s %s", name, stats.Sparkline(r.WindowIPC)))
		}
	}

	// simulate runs one workload oracle, records the run, and drains the
	// observability outputs.
	simulate := func(oracle core.Oracle, name, class string, seed uint64) {
		var p *obs.Probes
		if observed {
			p = obs.NewProbes()
			if traceW != nil {
				p.EnableTrace(*traceCap)
			}
			if intervalsW != nil {
				p.EnableIntervals(*intervals)
			}
		}
		r, err := core.SimulateOptions(context.Background(), cfg, oracle, name, *warmup, *measure,
			core.SimOptions{Probes: p, Check: *check, FastForward: *ffwd})
		if err != nil {
			fatal("%s: %v", name, err)
		}
		r.Class = class
		report(name, r)
		if metricsW != nil {
			m := core.Manifest(cfg, r, p, seed, *warmup, *measure)
			m.Tool = "fdpsim"
			m.Git = gitRev
			m.FFwd = *ffwd
			if err := m.WriteJSONL(metricsW); err != nil {
				fatal("writing manifest: %v", err)
			}
		}
		if traceW != nil {
			if err := obs.WriteRunTrace(traceW, cfg.Name+"/"+name, p.Tracer); err != nil {
				fatal("writing trace: %v", err)
			}
		}
		if intervalsW != nil {
			if err := obs.WriteRunIntervals(intervalsW, cfg.Name+"/"+name,
				p.Intervals.Every(), p.Intervals.Records()); err != nil {
				fatal("writing intervals: %v", err)
			}
		}
	}

	if *replayFile != "" {
		f, err := os.Open(*replayFile)
		if err != nil {
			fatal("%v", err)
		}
		tr, err := trace.Read(f)
		f.Close()
		if err != nil {
			fatal("%v", err)
		}
		fmt.Printf("trace %s: %s/%s, %d instructions, image %dKB\n",
			*replayFile, tr.Header.Name, tr.Header.Class, tr.Header.Instructions,
			tr.Image().Bytes()/1024)
		simulate(tr.NewStream(), tr.Header.Name, tr.Header.Class, tr.Header.Seed)
		fmt.Print(t)
		return
	}

	workloadExplicit := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "workload" {
			workloadExplicit = true
		}
	})
	workloads, err := synth.ParseWorkloadFlags(*workload, *workloadSpec, workloadExplicit)
	if err != nil {
		fatal("%v", err)
	}
	var cache *runner.Cache
	if *cacheDir != "" {
		cache, err = runner.NewCache(runner.DefaultCacheCapacity, *cacheDir)
		if err != nil {
			fatal("%v", err)
		}
	}
	if *checkpoint && cache == nil {
		// Memory-only store: warmup is still shared across this
		// invocation's workloads, it just doesn't survive the process.
		cache, err = runner.NewCache(runner.DefaultCacheCapacity, "")
		if err != nil {
			fatal("%v", err)
		}
	}
	ropts := runner.Options{
		Parallel:        *parallel,
		Cache:           cache,
		Observe:         observed,
		Check:           *check,
		WatchdogTimeout: *watchdog,
		KeepGoing:       *keepGoing,
		Checkpoint:      *checkpoint,
	}
	if *retries > 0 {
		ropts.Retry = runner.RetryPolicy{Attempts: *retries + 1}
	}
	if *workers != "" {
		coord, err := dist.FromFlag(*workers)
		if err != nil {
			fatal("%v", err)
		}
		if err := coord.Check(context.Background()); err != nil {
			fatal("%v", err)
		}
		ropts.Backend = coord
	}
	if traceW != nil {
		ropts.TraceCap = *traceCap
		ropts.TraceSink = traceW
	}
	if intervalsW != nil {
		ropts.IntervalEvery = *intervals
		ropts.IntervalSink = intervalsW
	}
	if *spansOut != "" {
		spansW := createOut(*spansOut)
		defer spansW.Close()
		spanLog := obs.NewSpanLog()
		spanLog.SetSink(spansW)
		ropts.Spans = spanLog
		defer func() {
			if serr := spanLog.SinkErr(); serr != nil {
				fmt.Fprintf(os.Stderr, "fdpsim: warning: -spans sink: %v\n", serr)
			}
		}()
	}
	specs := make([]runner.Spec, 0, len(workloads))
	for _, w := range workloads {
		sp := runner.WorkloadSpec(cfg, w, *warmup, *measure)
		sp.FFwd = *ffwd
		specs = append(specs, sp)
	}
	results, err := runner.Execute(context.Background(), specs, ropts)
	if err != nil {
		// Under -keep-going a classified job error means "some workloads
		// were quarantined, the rest completed" — report what finished.
		var jerr *runner.Error
		if !(*keepGoing && errors.As(err, &jerr)) {
			fatal("%v", err)
		}
		fmt.Fprintf(os.Stderr, "fdpsim: warning: %v\n", err)
	}
	for i, res := range results {
		if res.Run == nil {
			fmt.Fprintf(os.Stderr, "fdpsim: %s: quarantined: %v\n", workloads[i].Name, res.Err)
			continue
		}
		report(workloads[i].Name, res.Run)
		if metricsW != nil && res.Manifest != nil {
			m := res.Manifest
			m.Tool = "fdpsim"
			m.Git = gitRev
			if err := m.WriteJSONL(metricsW); err != nil {
				fatal("writing manifest: %v", err)
			}
		}
	}
	fmt.Print(t)
	for _, tl := range timelines {
		fmt.Println(tl)
	}
}

// createOut opens path for writing ("-" means stdout).
func createOut(path string) io.WriteCloser {
	w, err := obs.OpenSink(path)
	if err != nil {
		fatal("%v", err)
	}
	return w
}

func fatal(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "fdpsim: "+format+"\n", args...)
	os.Exit(1)
}
