package fdp

import (
	"strings"
	"testing"
)

func TestPublicWorkloadAPI(t *testing.T) {
	if len(StandardWorkloads()) != 12 {
		t.Fatalf("StandardWorkloads = %d", len(StandardWorkloads()))
	}
	if WorkloadByName("server_a") == nil {
		t.Error("WorkloadByName(server_a) = nil")
	}
	if WorkloadByName("missing") != nil {
		t.Error("WorkloadByName(missing) != nil")
	}
	names := WorkloadNames()
	if len(names) != 12 || names[0] != "server_a" {
		t.Errorf("WorkloadNames = %v", names)
	}
}

func TestPublicSimulate(t *testing.T) {
	w := WorkloadByName("spec_a")
	r, err := Simulate(BaselineConfig(), w, 20_000, 60_000)
	if err != nil {
		t.Fatal(err)
	}
	if r.IPC() <= 0 {
		t.Errorf("IPC = %v", r.IPC())
	}
	if _, err := Simulate(BaselineConfig(), nil, 1, 1); err == nil {
		t.Error("Simulate(nil workload) succeeded")
	}
}

func TestPublicConfigs(t *testing.T) {
	d := DefaultConfig()
	b := BaselineConfig()
	if d.FTQEntries != 24 || !d.PFC || d.HistPolicy != HistTHR {
		t.Errorf("DefaultConfig: %+v", d)
	}
	if b.FTQEntries != 2 || b.PFC {
		t.Errorf("BaselineConfig: FTQ=%d PFC=%v", b.FTQEntries, b.PFC)
	}
}

func TestPublicFTQCost(t *testing.T) {
	if got := FTQCost(24).TotalBytes; got != 195 {
		t.Errorf("FTQCost(24) = %d bytes, want 195", got)
	}
}

func TestPublicExperiments(t *testing.T) {
	if len(Experiments()) != 16 {
		t.Errorf("Experiments = %d, want 16", len(Experiments()))
	}
	e, ok := ExperimentByID("tab3")
	if !ok {
		t.Fatal("tab3 missing")
	}
	res, err := e.Run(QuickExperimentOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.String(), "195") {
		t.Error("tab3 output missing 195")
	}
}

func TestGenerateWorkload(t *testing.T) {
	p := WorkloadParams{
		Name: "custom", Funcs: 50, Levels: 4, BlocksPerFuncMean: 8,
		BlockLenMean: 5, JumpFrac: 0.1, CallFrac: 0.15, IndJumpFrac: 0.02,
		IndCallFrac: 0.02, LoopFrac: 0.2, PatternFrac: 0.1,
		StrongBiasFrac: 0.8, TripMean: 5, IndTargetsMax: 4,
		MarkovStay: 0.8, HotFraction: 0.5,
	}
	w, err := GenerateWorkload(p, "custom", 42)
	if err != nil {
		t.Fatal(err)
	}
	r, err := Simulate(DefaultConfig(), w, 10_000, 40_000)
	if err != nil {
		t.Fatal(err)
	}
	if r.IPC() <= 0 {
		t.Error("custom workload failed to simulate")
	}
	if _, err := GenerateWorkload(WorkloadParams{}, "x", 1); err == nil {
		t.Error("GenerateWorkload accepted empty params")
	}
}

func TestGeoMeanExported(t *testing.T) {
	if g := GeoMean([]float64{2, 8}); g != 4 {
		t.Errorf("GeoMean = %v", g)
	}
}
