package experiments

import (
	"fmt"

	"fdp/internal/core"
	"fdp/internal/repro"
	"fdp/internal/stats"
)

// withPrefetcher derives a config using the named dedicated prefetcher.
func withPrefetcher(base core.Config, name, pf string) core.Config {
	c := base
	c.Name = name
	switch pf {
	case "perfect":
		c.PerfectPrefetch = true
	default:
		c.Prefetcher = pf
	}
	return c
}

// noFDP converts a config to the paper's no-FDP machine: a 2-entry FTQ
// (no run-ahead) without PFC.
func noFDP(c core.Config) core.Config {
	c.FTQEntries = 2
	c.PFC = false
	return c
}

// Fig1 reproduces the Fig. 1 limit study: the IPC-1-like framework
// (perfect branch target prediction, i.e. a perfect BTB) with the IPC-1
// prefetchers, with a shallow FTQ ("no FDP") and with a 192-instruction
// FTQ ("+FDP"). The paper's observations: the top prefetchers reach close
// to perfect prefetching without FDP, and FDP alone matches them.
func Fig1(opts Options) (*Result, error) {
	base := core.DefaultConfig()
	base.PerfectBTB = true
	base.PFC = false // the IPC-1 framework's "basic FDP capability"

	prefetchers := []string{"nl1", "fnl+mma", "djolt", "eip-128kb", "perfect"}
	configs := []core.Config{noFDP(withPrefetcher(base, "base", ""))}
	for _, pf := range prefetchers {
		configs = append(configs, noFDP(withPrefetcher(base, pf, pf)))
	}
	fdp := base
	fdp.Name = "fdp"
	configs = append(configs, fdp)
	for _, pf := range prefetchers {
		configs = append(configs, withPrefetcher(base, "fdp+"+pf, pf))
	}
	sets, err := runGrid(opts, configs)
	if err != nil {
		return nil, err
	}
	baseSet := sets["base"]
	t := stats.NewTable("Fig 1: speedup over no-prefetch/no-FDP (perfect BTB framework)",
		"mechanism", "no FDP", "+FDP (192-inst FTQ)")
	for _, pf := range prefetchers {
		t.AddRow(pf, speedupPct(sets[pf].GeoMeanSpeedup(baseSet)),
			speedupPct(sets["fdp+"+pf].GeoMeanSpeedup(baseSet)))
	}
	t.AddRow("fdp alone", "-", speedupPct(sets["fdp"].GeoMeanSpeedup(baseSet)))
	return &Result{
		ID: "fig1", Title: "Prefetching limit study",
		Tables: []*stats.Table{t},
		Notes: []string{
			"paper: top-3 ~+28%, perfect +30.6%, FDP alone +30.2%, prefetchers on top of FDP add little",
		},
	}, nil
}

// Fig6a reproduces Fig. 6a: speedups of NL1, the IPC-1 prefetchers and
// perfect prefetching, each with and without FDP, plus FDP with a perfect
// BTB and with perfect everything.
func Fig6a(opts Options) (*Result, error) {
	base := core.DefaultConfig() // full FDP machine (THR, PFC)
	prefetchers := []string{"nl1", "fnl+mma", "djolt", "eip-27kb", "eip-128kb", "perfect"}

	configs := []core.Config{noFDP(withPrefetcher(base, "base", ""))}
	for _, pf := range prefetchers {
		configs = append(configs, noFDP(withPrefetcher(base, pf, pf)))
	}
	fdp := base
	fdp.Name = "fdp"
	configs = append(configs, fdp)
	for _, pf := range prefetchers {
		configs = append(configs, withPrefetcher(base, "fdp+"+pf, pf))
	}
	pbtb := base
	pbtb.Name = "fdp+perfect-btb"
	pbtb.PerfectBTB = true
	configs = append(configs, pbtb)
	pall := pbtb
	pall.Name = "fdp+perfect-btb+perfect-pf"
	pall.PerfectPrefetch = true
	configs = append(configs, pall)

	sets, err := runGrid(opts, configs)
	if err != nil {
		return nil, err
	}
	baseSet := sets["base"]
	t := stats.NewTable("Fig 6a: speedup over baseline (no FDP, no prefetching)",
		"mechanism", "no FDP", "+FDP")
	for _, pf := range prefetchers {
		t.AddRow(pf, speedupPct(sets[pf].GeoMeanSpeedup(baseSet)),
			speedupPct(sets["fdp+"+pf].GeoMeanSpeedup(baseSet)))
	}
	t.AddRow("fdp alone", "-", speedupPct(sets["fdp"].GeoMeanSpeedup(baseSet)))
	t.AddRow("fdp + perfect BTB", "-", speedupPct(sets["fdp+perfect-btb"].GeoMeanSpeedup(baseSet)))
	t.AddRow("fdp + perfect BTB + perfect pf", "-", speedupPct(sets["fdp+perfect-btb+perfect-pf"].GeoMeanSpeedup(baseSet)))

	tc := stats.NewTable("Fig 6a (by workload class): FDP speedup over baseline",
		"class", "fdp", "fdp+eip-128kb")
	for _, class := range []string{"server", "client", "spec"} {
		f := sets["fdp"].ClassSpeedup(baseSet, class)
		fe := sets["fdp+eip-128kb"].ClassSpeedup(baseSet, class)
		if f == 0 {
			continue // class absent at this scale
		}
		tc.AddRow(class, speedupPct(f), speedupPct(fe))
	}
	return &Result{
		ID: "fig6a", Title: "IPC improvement by instruction prefetching",
		Tables: []*stats.Table{t, tc},
		Notes: []string{
			"paper: FDP +41.0%; FDP+perfectBTB +3.4% more; FDP+EIP-128KB +4.3% more;",
			"FDP+perfect +5.4% more; both perfect +46.9% total",
		},
	}, nil
}

// contractFig6a is Fig6a's reproduction contract: the paper's central
// claims as machine-checkable expectations over a four-config slice of
// the figure's grid (see docs/CALIBRATION.md for threshold semantics).
func contractFig6a() repro.Contract {
	eip := core.BaselineConfig()
	eip.Name = "eip-128kb"
	eip.Prefetcher = "eip-128kb"
	fdpEip := core.DefaultConfig()
	fdpEip.Name = "fdp+eip-128kb"
	fdpEip.Prefetcher = "eip-128kb"
	return repro.Contract{
		Artifact: "fig6a", Title: "IPC improvement by instruction prefetching",
		Baseline: "baseline",
		Configs:  []core.Config{core.BaselineConfig(), core.DefaultConfig(), eip, fdpEip},
		Expectations: []repro.Expectation{
			{
				ID:       "fdp-speedup-floor",
				Claim:    "FDP gives a large speedup over the no-FDP baseline (paper: +41.0%)",
				Severity: repro.Hard, Kind: repro.KindRange, Metric: repro.MetricSpeedup,
				Configs: []string{"fdp"}, Lo: 1.15,
			},
			{
				ID:       "fdp-matches-eip",
				Claim:    "FDP alone at least matches EIP-128KB without FDP (the central claim, fig1/fig6a)",
				Severity: repro.Hard, Kind: repro.KindOrdering, Metric: repro.MetricSpeedup,
				Configs: []string{"fdp", "eip-128kb"},
			},
			{
				ID:       "prefetcher-adds-little",
				Claim:    "a dedicated prefetcher adds only a little on top of FDP (paper: +4.3pp)",
				Severity: repro.Warn, Kind: repro.KindOrdering, Metric: repro.MetricSpeedup,
				Configs: []string{"fdp", "fdp+eip-128kb"}, MinGap: -0.10,
			},
		},
	}
}

// Fig6b reproduces Fig. 6b: per-workload speedup of EIP-128KB with FDP on
// and off, against each workload's branch MPKI (which is unchanged by
// prefetching).
func Fig6b(opts Options) (*Result, error) {
	base := core.DefaultConfig()
	configs := []core.Config{
		noFDP(withPrefetcher(base, "base", "")),
		noFDP(withPrefetcher(base, "eip", "eip-128kb")),
		func() core.Config { c := base; c.Name = "fdp"; return c }(),
		withPrefetcher(base, "fdp+eip", "eip-128kb"),
	}
	sets, err := runGrid(opts, configs)
	if err != nil {
		return nil, err
	}
	t := stats.NewTable("Fig 6b: per-workload EIP-128KB speedup vs branch MPKI",
		"workload", "branch MPKI", "EIP speedup (no FDP)", "EIP speedup (with FDP)")
	for _, wl := range opts.Workloads {
		b := sets["base"].ByWorkload(wl.Name)
		e := sets["eip"].ByWorkload(wl.Name)
		f := sets["fdp"].ByWorkload(wl.Name)
		fe := sets["fdp+eip"].ByWorkload(wl.Name)
		t.AddRow(wl.Name, b.BranchMPKI(),
			speedupPct(e.Speedup(b)), speedupPct(fe.Speedup(f)))
	}
	t.SortByColumn(1)
	return &Result{
		ID: "fig6b", Title: "Per-trace EIP-128KB improvement",
		Tables: []*stats.Table{t},
		Notes: []string{
			"paper: without FDP EIP reaches up to 2.01x; with FDP the max falls to +14.8%",
			"and a couple of workloads regress slightly",
		},
	}, nil
}

// Fig9 reproduces the ISO-budget analysis (Fig. 9): an 8K-entry BTB
// against a 4K-entry BTB plus EIP-27KB (similar storage), with a 4K-entry
// BTB as the reference, all on top of FDP.
func Fig9(opts Options) (*Result, error) {
	mk := func(name string, btbEntries int, pf string) core.Config {
		c := core.DefaultConfig()
		c.Name = name
		c.BTBEntries = btbEntries
		c.Prefetcher = pf
		return c
	}
	configs := []core.Config{
		noFDP(withPrefetcher(core.DefaultConfig(), "base", "")),
		mk("fdp-8k-btb", 8192, ""),
		mk("fdp-4k-btb+eip27", 4096, "eip-27kb"),
		mk("fdp-4k-btb", 4096, ""),
	}
	sets, err := runGrid(opts, configs)
	if err != nil {
		return nil, err
	}
	baseSet := sets["base"]
	t := stats.NewTable("Fig 9: ISO-budget analysis (on top of FDP)",
		"config", "speedup", "branch MPKI", "starvation cyc/KI", "I$ tag accesses/KI")
	for _, name := range []string{"fdp-8k-btb", "fdp-4k-btb+eip27", "fdp-4k-btb"} {
		s := sets[name]
		t.AddRow(name, speedupPct(s.GeoMeanSpeedup(baseSet)),
			s.MeanBranchMPKI(), s.MeanStarvationPKI(), s.MeanTagProbesPKI())
	}
	ratio := sets["fdp-4k-btb+eip27"].MeanTagProbesPKI() / sets["fdp-8k-btb"].MeanTagProbesPKI()
	return &Result{
		ID: "fig9", Title: "ISO-budget analysis",
		Tables: []*stats.Table{t},
		Notes: []string{
			fmt.Sprintf("tag-access ratio EIP-27KB vs 8K-BTB: %.2fx (paper: 3.5x)", ratio),
			"paper: 41.0% vs 40.6% speedup; 8K-BTB has 12% fewer mispredictions;",
			"EIP-27KB has 13.5% lower starvation but 3.5x more tag accesses",
		},
	}, nil
}

// Fig10 reproduces Fig. 10: Divide-and-Conquer's SN4L+Dis with and
// without BTB prefetching, across BTB sizes, history policies and PFC.
func Fig10(opts Options) (*Result, error) {
	var configs []core.Config
	base := noFDP(withPrefetcher(core.DefaultConfig(), "base", ""))
	configs = append(configs, base)
	type axis struct {
		btb     int // 0 = perfect
		hist    core.HistPolicy
		alloc   core.BTBAlloc
		btbPref bool
		pfc     bool
	}
	name := func(a axis) string {
		btbName := "perfect"
		if a.btb > 0 {
			btbName = fmt.Sprintf("%dk", a.btb/1024)
		}
		h := "thr"
		if a.hist != core.HistTHR {
			h = "ghr3"
		}
		pf := "sn4l+dis"
		if a.btbPref {
			pf = "sn4l+dis+btb"
		}
		p := "pfc-off"
		if a.pfc {
			p = "pfc-on"
		}
		return fmt.Sprintf("%s/%s/%s/%s", btbName, h, pf, p)
	}
	var axes []axis
	for _, btb := range []int{2048, 8192, 0} {
		for _, thr := range []bool{true, false} {
			for _, bp := range []bool{false, true} {
				for _, pfc := range []bool{false, true} {
					a := axis{btb: btb, btbPref: bp, pfc: pfc}
					if thr {
						a.hist, a.alloc = core.HistTHR, core.AllocTakenOnly
					} else {
						a.hist, a.alloc = core.HistGHRFix, core.AllocAll // GHR3
					}
					axes = append(axes, a)
				}
			}
		}
	}
	for _, a := range axes {
		c := core.DefaultConfig()
		c.Name = name(a)
		c.Prefetcher = "sn4l+dis"
		c.BTBPrefetch = a.btbPref
		c.HistPolicy = a.hist
		c.BTBAllocPolicy = a.alloc
		c.PFC = a.pfc
		if a.btb == 0 {
			c.PerfectBTB = true
			c.BTBPrefetch = false // nothing to prefetch into
		} else {
			c.BTBEntries = a.btb
		}
		configs = append(configs, c)
	}
	sets, err := runGrid(opts, configs)
	if err != nil {
		return nil, err
	}
	baseSet := sets["base"]
	t := stats.NewTable("Fig 10: BTB prefetching with SN4L+Dis (speedup over no-FDP baseline)",
		"btb", "history", "prefetcher", "PFC off", "PFC on", "MPKI (pfc on)")
	for _, btbName := range []string{"2k", "8k", "perfect"} {
		for _, h := range []string{"ghr3", "thr"} {
			for _, pf := range []string{"sn4l+dis", "sn4l+dis+btb"} {
				if btbName == "perfect" && pf == "sn4l+dis+btb" {
					continue
				}
				off := sets[btbName+"/"+h+"/"+pf+"/pfc-off"]
				on := sets[btbName+"/"+h+"/"+pf+"/pfc-on"]
				if off == nil || on == nil {
					continue
				}
				t.AddRow(btbName, h, pf,
					speedupPct(off.GeoMeanSpeedup(baseSet)),
					speedupPct(on.GeoMeanSpeedup(baseSet)),
					on.MeanBranchMPKI())
			}
		}
	}
	return &Result{
		ID: "fig10", Title: "BTB prefetching",
		Tables: []*stats.Table{t},
		Notes: []string{
			"paper: PFC beats BTB prefetching; THR always beats GHR;",
			"BTB prefetching helps small BTBs with GHR, hurts 8K-BTB with THR (pollution)",
		},
	}, nil
}
