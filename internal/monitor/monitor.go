// Package monitor serves live telemetry for long sweep and experiment
// runs over HTTP: Prometheus-style text metrics (/metrics), JSON job
// progress (/progress), the live interval time-series of every run
// (/intervals as chunked JSONL with a follow mode, indexed by /runs),
// the runner's lifecycle span timeline (/timeline) and the standard
// pprof profiling endpoints (/debug/pprof/). The sources are chosen for
// safe concurrent reads under simulation: runner.Status is plain
// atomics, and obs.ManifestLog / obs.SpanLog / obs.IntervalStore are
// mutex-guarded collectors updated only at coarse boundaries, so
// scraping never contends with the cycle loops.
package monitor

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"sort"
	"time"

	"fdp/internal/dist"
	"fdp/internal/obs"
	"fdp/internal/runner"
)

// Source is what the monitor exposes: live scheduler progress, the
// manifests of completed runs, the live interval store and the span
// timeline. Every field may be nil — the corresponding endpoints serve
// empty (but well-formed) output.
type Source struct {
	Status    *runner.Status
	Manifests *obs.ManifestLog
	// Intervals is the live per-run interval store (wire the same store
	// into runner.Options.Intervals); it feeds /runs and /intervals.
	Intervals *obs.IntervalStore
	// Spans is the campaign span log (wire into runner.Options.Spans); it
	// feeds /timeline.
	Spans *obs.SpanLog
	// Fleet, when distributed execution is on, is the coordinator's live
	// worker-fleet view; it feeds /workers and the dist_* metrics.
	Fleet *dist.Coordinator
}

// Handler builds the monitor's HTTP mux.
func Handler(src Source) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		writeMetrics(w, src)
	})
	mux.HandleFunc("/progress", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(src.Status.Snapshot())
	})
	mux.HandleFunc("/runs", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		runs := src.Intervals.Runs()
		if runs == nil {
			runs = []obs.IntervalRunMeta{}
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(runs)
	})
	mux.HandleFunc("/intervals", func(w http.ResponseWriter, r *http.Request) {
		serveIntervals(w, r, src.Intervals)
	})
	mux.HandleFunc("/timeline", func(w http.ResponseWriter, r *http.Request) {
		serveTimeline(w, r, src.Spans)
	})
	mux.HandleFunc("/workers", func(w http.ResponseWriter, r *http.Request) {
		serveWorkers(w, src.Fleet)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// serveIntervals streams interval records as JSONL in the same
// header+records framing the -intervals-out file sink uses, so the same
// parsers read both. Without parameters it dumps every run's buffered
// records; run=Q (a spec key, unique key prefix, or config/workload
// label) selects one run; follow=1 with run= keeps the response open,
// flushing new records as the simulation takes them, until the run
// finishes or the client disconnects.
func serveIntervals(w http.ResponseWriter, r *http.Request, store *obs.IntervalStore) {
	q := r.URL.Query()
	follow := q.Get("follow") != "" && q.Get("follow") != "0"
	runQ := q.Get("run")
	if runQ == "" {
		if follow {
			http.Error(w, "follow=1 requires run=", http.StatusBadRequest)
			return
		}
		w.Header().Set("Content-Type", "application/x-ndjson")
		for _, meta := range store.Runs() {
			recs, _, _, _ := store.Read(meta.ID, 0)
			obs.WriteRunIntervals(w, meta.Run, meta.Every, recs)
		}
		return
	}
	id, ok := store.Resolve(runQ)
	if !ok {
		http.Error(w, "unknown or ambiguous run "+runQ, http.StatusNotFound)
		return
	}
	meta, _ := store.Run(id)
	w.Header().Set("Content-Type", "application/x-ndjson")
	if !follow {
		recs, _, _, _ := store.Read(id, 0)
		obs.WriteRunIntervals(w, meta.Run, meta.Every, recs)
		return
	}
	// Follow mode: header first, then an incremental read/flush loop.
	// Watch is grabbed *before* each read so a record landing between the
	// read and the wait still wakes us.
	flusher, _ := w.(http.Flusher)
	obs.WriteRunIntervals(w, meta.Run, meta.Every, nil)
	if flusher != nil {
		flusher.Flush()
	}
	ctx := r.Context()
	var (
		cursor uint64
		line   []byte
	)
	for {
		ch := store.Watch()
		recs, next, done, ok := store.Read(id, cursor)
		if !ok {
			return
		}
		cursor = next
		if len(recs) > 0 {
			for _, rec := range recs {
				line = obs.AppendIntervalJSONL(line[:0], rec)
				line = append(line, '\n')
				if _, err := w.Write(line); err != nil {
					return
				}
			}
			if flusher != nil {
				flusher.Flush()
			}
		}
		if done {
			return
		}
		select {
		case <-ch:
		case <-ctx.Done():
			return
		}
	}
}

// timelineSpan is the JSON shape of one span on /timeline.
type timelineSpan struct {
	Run     string `json:"run"`
	Job     int    `json:"job"`
	Attempt int    `json:"attempt"`
	Kind    string `json:"kind"`
	StartUS int64  `json:"start_us"`
	DurUS   int64  `json:"dur_us"`
	Detail  string `json:"detail,omitempty"`
	Err     string `json:"err,omitempty"`
}

// serveTimeline renders the campaign's span timeline as one JSON
// document (epoch + spans sorted by start). run= filters to one job
// label.
func serveTimeline(w http.ResponseWriter, r *http.Request, log *obs.SpanLog) {
	runQ := r.URL.Query().Get("run")
	doc := struct {
		Epoch string         `json:"epoch,omitempty"`
		Spans []timelineSpan `json:"spans"`
	}{Spans: []timelineSpan{}}
	if epoch := log.Epoch(); !epoch.IsZero() {
		doc.Epoch = epoch.Format(time.RFC3339Nano)
	}
	for _, sp := range log.All() {
		if runQ != "" && sp.Run != runQ {
			continue
		}
		doc.Spans = append(doc.Spans, timelineSpan{
			Run: sp.Run, Job: sp.Job, Attempt: sp.Attempt,
			Kind: sp.Kind.String(), StartUS: sp.Start, DurUS: sp.Dur,
			Detail: sp.Detail, Err: sp.Err,
		})
	}
	sort.SliceStable(doc.Spans, func(i, j int) bool { return doc.Spans[i].StartUS < doc.Spans[j].StartUS })
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(doc)
}

// serveWorkers renders the distributed fleet's status as JSON. With no
// coordinator wired (local execution) it serves an empty fleet, so
// dashboards probe one shape either way.
func serveWorkers(w http.ResponseWriter, fleet *dist.Coordinator) {
	snap := dist.FleetSnapshot{}
	if fleet != nil {
		snap = fleet.Fleet()
	}
	if snap.Workers == nil {
		snap.Workers = []dist.WorkerStatus{}
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(snap)
}

// writeMetrics renders the Prometheus text exposition: the runner_*
// family from the live Status, then per-run families from every
// completed run's manifest.
func writeMetrics(w io.Writer, src Source) {
	s := src.Status.Snapshot()
	writeFamily(w, "runner_jobs", "counter", "Jobs the scheduler started executing (cache hits included).")
	fmt.Fprintf(w, "runner_jobs %d\n", s.Started)
	writeFamily(w, "runner_cache_hits", "counter", "Jobs satisfied from the result cache.")
	fmt.Fprintf(w, "runner_cache_hits %d\n", s.CacheHits)
	writeFamily(w, "runner_cache_misses", "counter", "Jobs that had to simulate.")
	fmt.Fprintf(w, "runner_cache_misses %d\n", s.CacheMisses)
	writeFamily(w, "runner_jobs_canceled", "counter", "Jobs abandoned by cancellation.")
	fmt.Fprintf(w, "runner_jobs_canceled %d\n", s.Canceled)
	writeFamily(w, "runner_job_panics", "counter", "Jobs that panicked.")
	fmt.Fprintf(w, "runner_job_panics %d\n", s.Panics)
	writeFamily(w, "runner_jobs_running", "gauge", "In-flight jobs right now.")
	fmt.Fprintf(w, "runner_jobs_running %d\n", s.Running)
	writeFamily(w, "runner_jobs_queued", "gauge", "Jobs not yet started.")
	fmt.Fprintf(w, "runner_jobs_queued %d\n", s.Queued)
	writeFamily(w, "runner_jobs_done", "gauge", "Jobs finished (successfully or not).")
	fmt.Fprintf(w, "runner_jobs_done %d\n", s.Done)
	writeFamily(w, "runner_retries", "counter", "Transient-failure re-attempts after backoff.")
	fmt.Fprintf(w, "runner_retries %d\n", s.Retries)
	writeFamily(w, "runner_watchdog_fired", "counter", "Hung jobs canceled by the watchdog.")
	fmt.Fprintf(w, "runner_watchdog_fired %d\n", s.Watchdog)
	writeFamily(w, "runner_jobs_quarantined", "counter", "Terminal job failures contained under keep-going.")
	fmt.Fprintf(w, "runner_jobs_quarantined %d\n", s.Quarantined)
	writeFamily(w, "runner_cache_quarantined", "counter", "Corrupt disk cache entries set aside as *.corrupt.")
	fmt.Fprintf(w, "runner_cache_quarantined %d\n", s.CacheQuarantined)
	// The backlog histogram is rendered as a Prometheus summary: the
	// quantiles come from Status's concurrent-read-safe mirror (power-of-
	// two buckets, so they are factor-of-two estimates).
	qd := src.Status.QueueDepthSnapshot()
	writeFamily(w, "runner_queue_depth", "summary", "Backlog size sampled at every job start.")
	for _, q := range []float64{0.5, 0.9, 0.99} {
		fmt.Fprintf(w, "runner_queue_depth{quantile=\"%g\"} %g\n", q, qd.Quantile(q))
	}
	fmt.Fprintf(w, "runner_queue_depth_sum %d\n", qd.Sum)
	fmt.Fprintf(w, "runner_queue_depth_count %d\n", qd.Count)
	writeFamily(w, "runner_job_heartbeat_age_ms", "gauge", "Per in-flight job: age of its newest heartbeat.")
	for _, j := range s.Jobs {
		if j.LastBeatMS >= 0 {
			fmt.Fprintf(w, "runner_job_heartbeat_age_ms{job=%q,attempt=\"%d\"} %d\n", j.Job, j.Attempt, j.LastBeatMS)
		}
	}
	writeFamily(w, "runner_backend_fallbacks", "counter", "Jobs degraded to local execution after losing the backend.")
	fmt.Fprintf(w, "runner_backend_fallbacks %d\n", s.BackendFallbacks)
	if src.Fleet != nil {
		fs := src.Fleet.Fleet()
		writeFamily(w, "dist_leases", "counter", "Leases assigned to workers.")
		fmt.Fprintf(w, "dist_leases %d\n", fs.Leases)
		writeFamily(w, "dist_reassigns", "counter", "Leases reassigned after expiry or failure.")
		fmt.Fprintf(w, "dist_reassigns %d\n", fs.Reassigns)
		writeFamily(w, "dist_leases_expired", "counter", "Leases expired for lack of forward progress.")
		fmt.Fprintf(w, "dist_leases_expired %d\n", fs.Expired)
		writeFamily(w, "dist_results_corrupt", "counter", "Result envelopes rejected by integrity checks.")
		fmt.Fprintf(w, "dist_results_corrupt %d\n", fs.Corrupt)
		writeFamily(w, "dist_results_deduped", "counter", "Valid double-completions deterministically dropped.")
		fmt.Fprintf(w, "dist_results_deduped %d\n", fs.Duplicates)
		writeFamily(w, "dist_workers_lost", "counter", "Workers marked lost (skew or repeated failures).")
		fmt.Fprintf(w, "dist_workers_lost %d\n", fs.WorkersLost)
		writeFamily(w, "dist_workers_ok", "gauge", "Workers currently usable.")
		ok := 0
		for _, ws := range fs.Workers {
			if ws.State == "ok" {
				ok++
			}
		}
		fmt.Fprintf(w, "dist_workers_ok %d\n", ok)
	}

	ms := src.Manifests.All()
	if len(ms) == 0 {
		return
	}
	writeFamily(w, "fdp_run_counter", "gauge", "End-of-run counter value of one completed run.")
	forEachRun(ms, func(labels string, m *obs.Manifest) {
		for _, name := range sortedKeys(m.Counters) {
			fmt.Fprintf(w, "fdp_run_counter{%s,name=%q} %d\n", labels, name, m.Counters[name])
		}
	})
	writeFamily(w, "fdp_run_derived", "gauge", "Derived rate of one completed run.")
	forEachRun(ms, func(labels string, m *obs.Manifest) {
		for _, name := range sortedKeys(m.Derived) {
			fmt.Fprintf(w, "fdp_run_derived{%s,name=%q} %g\n", labels, name, m.Derived[name])
		}
	})
	writeFamily(w, "fdp_run_histogram_sum", "gauge", "Histogram sample sum of one completed run.")
	forEachRun(ms, func(labels string, m *obs.Manifest) {
		for _, name := range sortedKeys(m.Histograms) {
			fmt.Fprintf(w, "fdp_run_histogram_sum{%s,name=%q} %d\n", labels, name, m.Histograms[name].Sum)
		}
	})
	writeFamily(w, "fdp_run_histogram_count", "gauge", "Histogram sample count of one completed run.")
	forEachRun(ms, func(labels string, m *obs.Manifest) {
		for _, name := range sortedKeys(m.Histograms) {
			fmt.Fprintf(w, "fdp_run_histogram_count{%s,name=%q} %d\n", labels, name, m.Histograms[name].Count)
		}
	})
}

func writeFamily(w io.Writer, name, kind, help string) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, kind)
}

// forEachRun visits the manifests in a stable (config, workload) order
// with their rendered label pair.
func forEachRun(ms []*obs.Manifest, f func(labels string, m *obs.Manifest)) {
	sorted := append([]*obs.Manifest(nil), ms...)
	sort.SliceStable(sorted, func(i, j int) bool {
		ci, cj := ConfigName(sorted[i].Config), ConfigName(sorted[j].Config)
		if ci != cj {
			return ci < cj
		}
		return sorted[i].Workload < sorted[j].Workload
	})
	for _, m := range sorted {
		// %q escapes backslash, quote and newline — exactly the Prometheus
		// label-value escape set.
		labels := fmt.Sprintf("config=%q,workload=%q", ConfigName(m.Config), m.Workload)
		f(labels, m)
	}
}

// ConfigName extracts the configuration name from a manifest's Config
// field, which may be a live core.Config or (after a JSONL round trip) a
// map. A marshal/unmarshal round trip handles both without this package
// importing core.
func ConfigName(cfg any) string {
	if cfg == nil {
		return ""
	}
	b, err := json.Marshal(cfg)
	if err != nil {
		return ""
	}
	var v struct {
		Name string `json:"Name"`
	}
	if json.Unmarshal(b, &v) != nil {
		return ""
	}
	return v.Name
}

// Server is a running monitor.
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// Start listens on addr (e.g. "localhost:8080" or ":0") and serves the
// monitor in a background goroutine.
func Start(addr string, src Source) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	srv := &http.Server{Handler: Handler(src)}
	go srv.Serve(ln)
	return &Server{ln: ln, srv: srv}, nil
}

// Addr returns the bound address (useful with ":0").
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the server.
func (s *Server) Close() error { return s.srv.Close() }

func sortedKeys[M ~map[string]V, V any](m M) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
