package core

import (
	"fdp/internal/ftq"
	"fdp/internal/program"
)

// predictStage runs the branch prediction pipeline for one cycle: it scans
// up to PredictWidth sequential instruction addresses from the speculative
// PC, predicting the direction of every instruction (EV8-style hints),
// consulting the BTB for detection and targets, and pushes 32-byte-aligned
// blocks into the FTQ. Prediction stops at the first predicted-taken
// branch (MaxTakenPerCycle) and whenever the FTQ fills (§IV-B).
func (c *Core) predictStage() {
	if c.now < c.predStallUntil {
		return
	}
	budget := c.cfg.PredictWidth
	takenBudget := c.cfg.MaxTakenPerCycle
	for budget > 0 && !c.q.Full() {
		used, taken := c.predictBlock(budget)
		budget -= used
		if taken {
			takenBudget--
			if takenBudget == 0 {
				return
			}
		}
	}
}

// predictBlock predicts one FTQ block starting at the speculative PC and
// returns the instructions consumed and whether it ended predicted-taken.
func (c *Core) predictBlock(budget int) (used int, takenEnd bool) {
	e := c.q.Push()
	c.readyQ = append(c.readyQ, e)
	c.histSpec.Save(&e.Hist)
	c.rasSpec.Save(&e.RAS)
	e.StartPC = c.specPC
	e.State = ftq.StateReady

	base := e.BlockBase()
	so := e.StartOffset()
	e.FetchedUpTo = so
	end := so + budget - 1
	if end > ftq.BlockInsts-1 {
		end = ftq.BlockInsts - 1
	}

	// Per-offset bit masks accumulate in locals and are stored to the entry
	// once after the loop, keeping the loop body register-resident.
	var hints, detected, detectedTaken uint8
	ideal := c.cfg.HistPolicy == HistIdeal
	realBTB := c.realBTB

	taken := false
	var nextPC uint64
	o := so
	for ; o <= end; o++ {
		pc := base + uint64(o)*program.InstBytes
		var ty program.InstType
		var tgt uint64
		var hit bool
		if realBTB != nil {
			// Devirtualized fast path for the standard set-associative BTB.
			ty, tgt, hit = realBTB.Lookup(pc)
		} else {
			ty, tgt, hit = c.detect(pc)
		}
		// Hardware predicts the direction of every instruction
		// (EV8-style) to populate the FTQ hint bits. Simulating a
		// prediction is only observable when the hint can ever be read:
		// for real branches (the pre-decoder checks the image first) and
		// for BTB hits (aliased hits on non-branches steer the flow), so
		// the simulator skips the dead lookups.
		hint := false
		if hit || c.img.BranchAt(pc) {
			if c.tage != nil {
				hint = c.tage.Predict(pc, c.histSpec)
			} else {
				hint = c.dir.Predict(pc, c.histSpec)
			}
		}
		if hint {
			hints |= 1 << uint(o)
		}
		if hit {
			detected |= 1 << uint(o)
			t := true
			if ty.IsConditional() {
				t = hint
			}
			if t {
				target := c.predictTarget(pc, ty, tgt)
				if ty.IsCall() {
					c.rasSpec.Push(pc + program.InstBytes)
				}
				c.specInsertTaken(pc, target, ty)
				detectedTaken |= 1 << uint(o)
				taken = true
				nextPC = target
			} else {
				c.specInsertNotTaken()
			}
		}
		if ideal {
			c.specInsertIdeal(pc, hint)
		}
		if taken {
			break
		}
	}
	e.Hints = hints
	e.Detected = detected
	e.DetectedTaken = detectedTaken

	if taken {
		e.EndOffset = o
		e.PredictedTaken = true
		e.NextPC = nextPC
		used = o - so + 1
		// Two-level BTB extension: a taken redirect served by the second
		// level pays the slower array's bubble.
		if c.twoLevel != nil && c.twoLevel.LastFromL2 {
			c.predStallUntil = c.now + uint64(c.cfg.L2BTBPenalty)
			// Not a redirect: the bubble is a prediction-supply stall, so
			// the classifier should see it as ftq_empty, not recovery.
			c.lastResteer = resteerNone
		}
		// Basic-block mode: the taken target starts a new block.
		if c.bb != nil {
			c.bbValid = false
			c.bbExpectStart = nextPC
		}
	} else {
		// Not taken: fall through to the next instruction — the next
		// block when the whole block was covered, or the next offset of
		// the same block when the prediction budget truncated it.
		e.EndOffset = end
		e.NextPC = base + uint64(end+1)*program.InstBytes
		used = end - so + 1
	}
	if c.obs != nil {
		c.obs.PredBlockLen.Observe(uint64(used))
	}
	c.specPC = e.NextPC
	return used, taken
}

// detect consults the active BTB organization for the instruction at pc.
// In instruction-BTB mode it is a plain lookup. In basic-block mode the
// walk state tracks the current block: a lookup happens only at known
// block-start addresses, and the block's single branch is reported when
// the walk reaches it; after a miss at a block start, detection is lost
// until the next redirect re-synchronizes the walk (the cost §III-A
// ascribes to block-grained BTBs without prefilling).
func (c *Core) detect(pc uint64) (ty program.InstType, tgt uint64, hit bool) {
	if c.bb == nil {
		return c.tb.Lookup(pc)
	}
	if !c.bbValid && c.bbExpectStart == pc {
		if size, bty, btgt, ok := c.bb.Lookup(pc); ok {
			c.bbValid = true
			c.bbBranchPC = pc + uint64(size-1)*program.InstBytes
			c.bbType, c.bbTarget = bty, btgt
		} else {
			c.bbExpectStart = 0
		}
	}
	if c.bbValid && pc == c.bbBranchPC {
		c.bbValid = false
		c.bbExpectStart = pc + program.InstBytes // fallthrough block start
		return c.bbType, c.bbTarget, true
	}
	return program.NonBranch, 0, false
}

// predictTarget resolves the target of a detected predicted-taken branch:
// BTB target for direct branches, RAS for returns, the indirect predictor
// (or the Perfect-All oracle) for register-indirect branches.
func (c *Core) predictTarget(pc uint64, ty program.InstType, btbTarget uint64) uint64 {
	switch {
	case ty.IsReturn():
		return c.rasSpec.Pop()
	case ty.IsIndirect():
		if c.cfg.PerfectIndirect {
			if t, ok := c.oracle.PeekTarget(pc); ok {
				return t
			}
		}
		if t, ok := c.it.Predict(pc, c.histSpec); ok {
			return t
		}
		return btbTarget // fall back to the BTB's last stored target
	default:
		return btbTarget
	}
}

// specInsertTaken records a predicted-taken branch in the speculative
// history, per the active policy.
func (c *Core) specInsertTaken(pc, target uint64, _ program.InstType) {
	switch c.cfg.HistPolicy {
	case HistTHR:
		c.histSpec.InsertTaken(pc, target)
	case HistGHRNoFix, HistGHRFix:
		c.histSpec.InsertDir(true)
	case HistIdeal:
		// Handled by specInsertIdeal (actual outcomes, perfect detection).
	}
}

// specInsertNotTaken records a detected predicted-not-taken branch.
func (c *Core) specInsertNotTaken() {
	switch c.cfg.HistPolicy {
	case HistGHRNoFix, HistGHRFix:
		c.histSpec.InsertDir(false)
	}
}

// specInsertIdeal implements the HistIdeal policy: perfect branch
// detection via the image (no BTB-miss history gaps), inserting the
// predicted direction for conditionals and taken for unconditionals. On a
// correct path the predicted direction equals the actual one (wrong
// predictions divert the flow and are repaired by the flush), so the
// speculative and architectural histories agree — the property that makes
// the policy "ideal".
func (c *Core) specInsertIdeal(pc uint64, hint bool) {
	if c.cfg.HistPolicy != HistIdeal {
		return
	}
	si, ok := c.img.At(pc)
	if !ok || !si.IsBranch() {
		return
	}
	dir := true
	if si.Type.IsConditional() {
		dir = hint
	}
	c.histSpec.InsertDir(dir)
}
