// Package runner is the unified run-execution subsystem: every frontend
// (the experiment grid, cmd/sweep, cmd/fdpsim) describes its simulations
// as declarative Specs and hands them to Execute, which schedules them on
// a bounded worker pool with first-error cancellation and per-job panic
// isolation, and satisfies repeated specs from a content-addressed result
// cache instead of re-simulating. See docs/ARCHITECTURE.md.
package runner

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"

	"fdp/internal/core"
	"fdp/internal/synth"
)

// Epoch is the simulator-semantics version of cached results. Any change
// that alters simulation output — which by definition regenerates the
// golden manifests (`make golden-update`) — MUST bump this constant so
// stale on-disk cache entries are treated as misses instead of silently
// replaying results from the old simulator. Representation-only changes
// that keep the golden manifests byte-identical must NOT bump it, so
// caches stay warm across them.
const Epoch = 2

// cacheSchema versions the on-disk cache entry layout itself (as opposed
// to the simulator semantics, which Epoch tracks). v2 nests the result in
// a CRC-32-covered payload so bit flips are detected and quarantined.
const cacheSchema = 2

// Spec declares one simulation: the full machine configuration, the
// workload identity, and the warmup/measure instruction budget. Two specs
// with equal Keys denote the same simulation and — the simulator being
// deterministic — the same result; that is what makes results
// content-addressable.
type Spec struct {
	// Config is the full machine configuration (part of the identity).
	Config core.Config
	// Workload, Class and Seed identify the deterministic instruction
	// stream. For synthetic workloads the (name, seed) pair pins the
	// generated program and all branch behaviour.
	Workload string
	Class    string
	Seed     uint64
	// Warmup and Measure are the instruction budgets.
	Warmup  uint64
	Measure uint64

	// FFwd selects functional fast-forward warmup instead of
	// cycle-accurate warmup. It is part of the identity: fast-forward
	// trains with different (functional) semantics, so its results must
	// never be served for cycle-accurate specs or vice versa.
	FFwd bool

	// SpecHash is the canonical content hash of the workload spec for
	// spec-defined workloads (see internal/wspec), and "" for the
	// built-in presets. It is part of the identity: two scenarios may
	// share a display name while mixing different programs, so the hash —
	// not the name — pins what actually executed. Built-ins keep "" so
	// every pre-refactor cache key is unchanged.
	SpecHash string

	// SpecDoc is the canonical encoded workload-spec document
	// (wspec.Spec.Encode) for spec-defined workloads, "" for built-ins.
	// It is NOT part of the identity — SpecHash already pins the content
	// — but the distributed backend ships it so a worker can compile the
	// exact same scenario and verify it hashes to SpecHash.
	SpecDoc string

	// NewOracle produces a fresh oracle for the stream. It is the
	// execution handle only — never part of the identity hash — and must
	// yield the same instruction sequence every call (synth streams and
	// trace replays both do).
	NewOracle func() core.Oracle
}

// WorkloadSpec builds the Spec for one (config, synthetic workload,
// budget) simulation.
func WorkloadSpec(cfg core.Config, w *synth.Workload, warmup, measure uint64) Spec {
	return Spec{
		Config:   cfg,
		Workload: w.Name,
		Class:    w.Class,
		Seed:     w.Seed,
		Warmup:   warmup,
		Measure:  measure,
		SpecHash: w.SpecHash,
		SpecDoc:  w.SpecDoc,
		NewOracle: func() core.Oracle {
			return w.NewStream()
		},
	}
}

// Key returns the spec's stable content hash: sha256 over a versioned
// preamble, the workload identity and budget, and the canonical JSON
// encoding of the configuration. Adding a Config field changes the hash —
// deliberately, since a new knob may change semantics. The simulator
// Epoch is NOT part of the key; it is stored alongside cached entries and
// checked on read, so an epoch bump invalidates entries without orphaning
// the files. TestSpecKeyGolden pins the scheme against silent drift.
func (s Spec) Key() string {
	cfg, err := json.Marshal(s.Config)
	if err != nil {
		// core.Config is a plain data struct; its encoding cannot fail.
		panic(fmt.Sprintf("runner: marshaling config: %v", err))
	}
	h := sha256.New()
	fmt.Fprintf(h, "fdp-spec-v1|workload=%s|class=%s|seed=%d|warmup=%d|measure=%d|config=",
		s.Workload, s.Class, s.Seed, s.Warmup, s.Measure)
	h.Write(cfg)
	if s.FFwd {
		// Appended only when set so every pre-existing key is unchanged
		// (TestSpecKeyGolden): fast-forward runs train differently and
		// must hash to a different result identity.
		fmt.Fprint(h, "|ffwd=1")
	}
	if s.SpecHash != "" {
		// Same append-only rule: built-in workloads hash exactly as before
		// the wspec refactor (TestSpecKeyStability), while spec-defined
		// scenarios are identified by their content hash.
		fmt.Fprintf(h, "|wspec=%s", s.SpecHash)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// trainKey is the training-relevant subset of core.Config: exactly the
// knobs that change what functional fast-forward warmup trains (predictor
// kind, BTB organization and geometry, history policy, allocation policy,
// RAS depth, cache and ITLB geometry). Timing-only knobs — FTQ size,
// widths, latencies, prefetcher, MSHRs, backend stall model — are
// deliberately absent, which is the whole point: a sweep over timing
// parameters shares one checkpoint across all its configurations.
type trainKey struct {
	Dir            core.DirKind
	BTBEntries     int
	BTBWays        int
	PerfectBTB     bool
	BasicBlockBTB  bool
	L1BTBEntries   int
	L1BTBWays      int
	HistPolicy     core.HistPolicy
	BTBAllocPolicy core.BTBAlloc
	RASDepth       int
	L1IBytes       int
	L1IWays        int
	L2Bytes        int
	L2Ways         int
	LLCBytes       int
	LLCWays        int
	ITLBEntries    int
	ITLBWays       int
}

// CheckpointKey returns the content hash identifying the post-warmup
// state this spec's fast-forward warmup produces: workload identity,
// warmup budget, and the training-relevant configuration subset. The
// measure budget and every timing-only knob are excluded, so N
// configurations sweeping timing parameters over one workload map to one
// checkpoint — warmup is paid once and restored N-1 times.
func (s Spec) CheckpointKey() string {
	tk := trainKey{
		Dir:            s.Config.Dir,
		BTBEntries:     s.Config.BTBEntries,
		BTBWays:        s.Config.BTBWays,
		PerfectBTB:     s.Config.PerfectBTB,
		BasicBlockBTB:  s.Config.BasicBlockBTB,
		L1BTBEntries:   s.Config.L1BTBEntries,
		L1BTBWays:      s.Config.L1BTBWays,
		HistPolicy:     s.Config.HistPolicy,
		BTBAllocPolicy: s.Config.BTBAllocPolicy,
		RASDepth:       s.Config.RASDepth,
		L1IBytes:       s.Config.L1IBytes,
		L1IWays:        s.Config.L1IWays,
		L2Bytes:        s.Config.L2Bytes,
		L2Ways:         s.Config.L2Ways,
		LLCBytes:       s.Config.LLCBytes,
		LLCWays:        s.Config.LLCWays,
		ITLBEntries:    s.Config.ITLBEntries,
		ITLBWays:       s.Config.ITLBWays,
	}
	b, err := json.Marshal(tk)
	if err != nil {
		panic(fmt.Sprintf("runner: marshaling train key: %v", err))
	}
	h := sha256.New()
	fmt.Fprintf(h, "fdp-ckpt-v1|workload=%s|class=%s|seed=%d|warmup=%d|train=",
		s.Workload, s.Class, s.Seed, s.Warmup)
	h.Write(b)
	if s.SpecHash != "" {
		// Append-only, exactly as in Key: checkpoints of spec-defined
		// scenarios are pinned to the spec content, built-ins keep their
		// pre-refactor checkpoint identity.
		fmt.Fprintf(h, "|wspec=%s", s.SpecHash)
	}
	return hex.EncodeToString(h.Sum(nil))
}
