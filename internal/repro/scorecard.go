package repro

import (
	"encoding/json"
	"fmt"
	"strings"

	"fdp/internal/stats"
)

// Outcome is the evaluated result of one expectation: its status plus a
// measured-vs-expected detail line and the raw values behind it.
type Outcome struct {
	ID       string        `json:"id"`
	Claim    string        `json:"claim"`
	Severity Severity      `json:"severity"`
	Status   Status        `json:"status"`
	Detail   string        `json:"detail,omitempty"`
	Values   []Measurement `json:"values,omitempty"`
}

// ArtifactScore is one artifact's evaluated contract.
type ArtifactScore struct {
	Artifact string    `json:"artifact"`
	Title    string    `json:"title,omitempty"`
	Outcomes []Outcome `json:"outcomes"`
}

// Counts tallies the artifact's outcomes by status.
func (a *ArtifactScore) Counts() (pass, warn, fail int) {
	for _, o := range a.Outcomes {
		switch o.Status {
		case StatusPass:
			pass++
		case StatusWarn:
			warn++
		default:
			fail++
		}
	}
	return pass, warn, fail
}

// ScorecardSchema is the current scorecard document version.
const ScorecardSchema = 1

// Scorecard is the machine-readable reproduction score across every
// contracted artifact: the JSON document behind `report -score` and
// `reprocheck -json`, and the source of the text scorecard.
type Scorecard struct {
	Schema int `json:"schema"`
	// Scale describes the campaign the scores were measured at (e.g.
	// "quick: 6 workloads, 50000+200000 insts").
	Scale     string          `json:"scale,omitempty"`
	Artifacts []ArtifactScore `json:"artifacts"`
}

// Counts tallies all outcomes by status.
func (s *Scorecard) Counts() (pass, warn, fail int) {
	for i := range s.Artifacts {
		p, w, f := s.Artifacts[i].Counts()
		pass, warn, fail = pass+p, warn+w, fail+f
	}
	return pass, warn, fail
}

// HardFailures returns "artifact/id" for every failed outcome; a
// non-empty result is what trips the CI gate.
func (s *Scorecard) HardFailures() []string {
	var out []string
	for _, a := range s.Artifacts {
		for _, o := range a.Outcomes {
			if o.Status == StatusFail {
				out = append(out, a.Artifact+"/"+o.ID)
			}
		}
	}
	return out
}

// Summary renders the one-line score that joins the `runner:` line in
// experiments output.
func (s *Scorecard) Summary() string {
	pass, warn, fail := s.Counts()
	return fmt.Sprintf("repro: artifacts=%d checks=%d pass=%d warn=%d fail=%d",
		len(s.Artifacts), pass+warn+fail, pass, warn, fail)
}

// String renders the full per-artifact text scorecard: one table per
// artifact with status, severity and the measured-vs-expected detail,
// then the summary line.
func (s *Scorecard) String() string {
	var b strings.Builder
	if s.Scale != "" {
		fmt.Fprintf(&b, "scale: %s\n\n", s.Scale)
	}
	for _, a := range s.Artifacts {
		title := a.Artifact
		if a.Title != "" {
			title += ": " + a.Title
		}
		pass, warn, fail := a.Counts()
		t := stats.NewTable(fmt.Sprintf("%s — pass %d / warn %d / fail %d", title, pass, warn, fail),
			"status", "severity", "check", "measured vs expected")
		for _, o := range a.Outcomes {
			t.AddRow(strings.ToUpper(string(o.Status)), string(o.Severity), o.ID, o.Detail)
		}
		b.WriteString(t.String())
		b.WriteByte('\n')
	}
	b.WriteString(s.Summary())
	b.WriteByte('\n')
	return b.String()
}

// Encode renders the scorecard as canonical indented JSON with a
// trailing newline (deterministic: struct fields marshal in order).
func (s *Scorecard) Encode() ([]byte, error) {
	b, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// DecodeScorecard parses and validates a scorecard document.
func DecodeScorecard(b []byte) (*Scorecard, error) {
	var s Scorecard
	if err := json.Unmarshal(b, &s); err != nil {
		return nil, fmt.Errorf("repro: scorecard: %w", err)
	}
	if s.Schema != ScorecardSchema {
		return nil, fmt.Errorf("repro: scorecard schema %d, want %d", s.Schema, ScorecardSchema)
	}
	for _, a := range s.Artifacts {
		if a.Artifact == "" {
			return nil, fmt.Errorf("repro: scorecard artifact with empty id")
		}
		for _, o := range a.Outcomes {
			switch o.Status {
			case StatusPass, StatusWarn, StatusFail:
			default:
				return nil, fmt.Errorf("repro: scorecard %s/%s: unknown status %q", a.Artifact, o.ID, o.Status)
			}
		}
	}
	return &s, nil
}
