package repro

import (
	"math"
	"strings"
	"testing"

	"fdp/internal/core"
	"fdp/internal/stats"
)

// ipcSet builds a one-workload set whose speedup over a 1.0-IPC baseline
// is ipcMilli/1000 (up to geomean rounding — tests against these use
// margins, not exact boundaries).
func ipcSet(config string, ipcMilli uint64) *stats.Set {
	return &stats.Set{Config: config, Runs: []*stats.Run{
		{Workload: "w", Cycles: 1000, Instructions: ipcMilli},
	}}
}

// mpkiSet builds a one-workload set whose branch MPKI is exactly the
// integer mispred — perKI math is exact here, so these sets back the
// exactly-at-the-limit boundary cases.
func mpkiSet(config string, mispred uint64) *stats.Set {
	return &stats.Set{Config: config, Runs: []*stats.Run{
		{Workload: "w", Cycles: 1000, Instructions: 1000, Mispredictions: mispred},
	}}
}

// testEnv: baseline at IPC 1.0; a/b/c at speedups ~1.5/~1.2/~1.1;
// ma/mb/mc at branch MPKI exactly 10/4/3.
func testEnv() Env {
	return Env{Baseline: "base", Sets: map[string]*stats.Set{
		"base": ipcSet("base", 1000),
		"a":    ipcSet("a", 1500),
		"b":    ipcSet("b", 1200),
		"c":    ipcSet("c", 1100),
		"ma":   mpkiSet("ma", 10),
		"mb":   mpkiSet("mb", 4),
		"mc":   mpkiSet("mc", 3),
	}}
}

// TestEvalExpectation is the scorer edge-case table: tolerance
// boundaries exactly at the limit, missing configs, empty sets, and
// warn-vs-fail severity routing.
func TestEvalExpectation(t *testing.T) {
	std := testEnv()

	ordering := func(sev Severity, minGap float64, configs ...string) Expectation {
		if len(configs) == 0 {
			configs = []string{"a", "b"}
		}
		return Expectation{ID: "x", Severity: sev, Kind: KindOrdering,
			Metric: MetricSpeedup, Configs: configs, MinGap: minGap}
	}
	mpkiRange := func(lo, hi float64) Expectation {
		return Expectation{ID: "x", Severity: Hard, Kind: KindRange,
			Metric: MetricBranchMPKI, Configs: []string{"ma"}, Lo: lo, Hi: hi}
	}
	crossover := func(startMin, endMax float64) Expectation {
		// Benefit series: ma-mb = +6 at the start, mc-mb = -1 at the end.
		return Expectation{ID: "x", Severity: Hard, Kind: KindCrossover,
			Metric: MetricBranchMPKI, Configs: []string{"ma", "mc"},
			ConfigsB: []string{"mb", "mb"}, StartMin: startMin, EndMax: endMax}
	}
	monotonic := func(slack float64, configs ...string) Expectation {
		return Expectation{ID: "x", Severity: Hard, Kind: KindMonotonic,
			Metric: MetricBranchMPKI, Configs: configs, Dir: 1, Slack: slack}
	}

	tests := []struct {
		name   string
		e      Expectation
		want   Status
		detail string // substring the detail must contain ("" = any)
	}{
		{"ordering-pass", ordering(Hard, 0.1), StatusPass, "gap"},
		{"ordering-fail", ordering(Hard, 0.31), StatusFail, "want >= +0.3100"},
		{"ordering-warn-routing", ordering(Warn, 0.31), StatusWarn, ""},
		{"ordering-negative-gap-bounds-above", ordering(Hard, -0.1, "b", "a"), StatusFail, ""},
		{"ordering-exactly-at-gap-passes",
			Expectation{ID: "x", Severity: Hard, Kind: KindOrdering, Metric: MetricBranchMPKI,
				Configs: []string{"ma", "mb"}, MinGap: 6}, StatusPass, ""},
		{"ordering-just-past-gap-fails",
			Expectation{ID: "x", Severity: Hard, Kind: KindOrdering, Metric: MetricBranchMPKI,
				Configs: []string{"ma", "mb"}, MinGap: 6.0001}, StatusFail, ""},
		{"ordering-missing-config", ordering(Hard, 0, "a", "nope"), StatusFail, `config "nope" missing`},
		{"ordering-missing-config-warn-routing", ordering(Warn, 0, "a", "nope"), StatusWarn, "missing"},

		{"range-pass", mpkiRange(5, 15), StatusPass, ""},
		{"range-exactly-at-lo-passes", mpkiRange(10, 0), StatusPass, ""},
		{"range-exactly-at-hi-passes", mpkiRange(0, 10), StatusPass, ""},
		{"range-below-lo-fails", mpkiRange(10.0001, 0), StatusFail, "want in [10.0001, inf]"},
		{"range-above-hi-fails", mpkiRange(0, 9.9999), StatusFail, ""},
		{"range-hi-zero-is-unbounded", mpkiRange(1, 0), StatusPass, ""},

		{"crossover-pass", crossover(6, -1), StatusPass, ""},
		{"crossover-weak-start-fails", crossover(6.0001, -1), StatusFail, ""},
		{"crossover-persistent-end-fails", crossover(6, -1.0001), StatusFail, ""},

		{"monotonic-pass", monotonic(0, "mc", "mb", "ma"), StatusPass, ""},
		{"monotonic-backslide-exactly-at-slack-passes", monotonic(1, "mb", "mc", "ma"), StatusPass, ""},
		{"monotonic-backslide-beyond-slack-fails", monotonic(0.9999, "mb", "mc", "ma"), StatusFail, "increase"},
		{"monotonic-decreasing",
			Expectation{ID: "x", Severity: Hard, Kind: KindMonotonic, Metric: MetricBranchMPKI,
				Configs: []string{"ma", "mb", "mc"}, Dir: -1}, StatusPass, "decrease"},

		{"positive-zero-fails",
			Expectation{ID: "x", Severity: Hard, Kind: KindPositive, Metric: MetricFixupFlushPKI,
				Configs: []string{"a"}}, StatusFail, "want > 0"},
		{"positive-missing-config",
			Expectation{ID: "x", Severity: Hard, Kind: KindPositive, Metric: MetricBranchMPKI,
				Configs: []string{"nope"}}, StatusFail, `config "nope" missing`},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			out := evalExpectation(std, tt.e)
			if out.Status != tt.want {
				t.Fatalf("status = %s, want %s (detail: %s)", out.Status, tt.want, out.Detail)
			}
			if tt.detail != "" && !strings.Contains(out.Detail, tt.detail) {
				t.Errorf("detail %q does not contain %q", out.Detail, tt.detail)
			}
		})
	}
}

// TestEvalPositiveCounter covers the happy positive path with a real
// fixup-flush counter (the table above only covers its zero case).
func TestEvalPositiveCounter(t *testing.T) {
	env := testEnv()
	env.Sets["ghr2"] = &stats.Set{Config: "ghr2", Runs: []*stats.Run{
		{Workload: "w", Cycles: 1000, Instructions: 1000, HistFixupFlushes: 42},
	}}
	out := evalExpectation(env, Expectation{ID: "x", Severity: Hard, Kind: KindPositive,
		Metric: MetricFixupFlushPKI, Configs: []string{"ghr2"}})
	if out.Status != StatusPass {
		t.Fatalf("status = %s (%s)", out.Status, out.Detail)
	}
}

// TestEvalEmptySet: a config present but with zero runs (everything
// quarantined) must fail, not silently pass on a zero metric.
func TestEvalEmptySet(t *testing.T) {
	env := testEnv()
	env.Sets["empty"] = &stats.Set{Config: "empty"}
	out := evalExpectation(env, Expectation{ID: "x", Severity: Hard, Kind: KindRange,
		Metric: MetricBranchMPKI, Configs: []string{"empty"}, Lo: 0})
	if out.Status != StatusFail || !strings.Contains(out.Detail, "no runs") {
		t.Fatalf("got %s (%s), want fail on empty set", out.Status, out.Detail)
	}
}

// TestEvalMissingBaseline: speedup without the baseline in the sets must
// fail with a baseline-specific message even when the measured config
// itself resolved fine.
func TestEvalMissingBaseline(t *testing.T) {
	env := testEnv()
	env.Baseline = "gone"
	out := evalExpectation(env, Expectation{ID: "x", Severity: Hard, Kind: KindRange,
		Metric: MetricSpeedup, Configs: []string{"a"}, Lo: 1})
	if out.Status != StatusFail || !strings.Contains(out.Detail, "baseline") {
		t.Fatalf("got %s (%s), want baseline failure", out.Status, out.Detail)
	}
}

// TestEvalNonFinite: a NaN or Inf metric must never certify a claim —
// it fails with a non-finite detail, and its measurement is recorded
// with Finite=false so the scorecard still marshals to valid JSON.
func TestEvalNonFinite(t *testing.T) {
	const bad MetricKind = "test-non-finite"
	defer delete(metricEval, bad)
	for name, v := range map[string]float64{"nan": math.NaN(), "inf": math.Inf(1)} {
		v := v
		metricEval[bad] = func(Env, string, string) (float64, error) { return v, nil }
		t.Run(name, func(t *testing.T) {
			out := evalExpectation(testEnv(), Expectation{ID: "x", Severity: Hard,
				Kind: KindRange, Metric: bad, Configs: []string{"base"}, Lo: 0})
			if out.Status != StatusFail || !strings.Contains(out.Detail, "not finite") {
				t.Fatalf("got %s (%s), want non-finite failure", out.Status, out.Detail)
			}
			if len(out.Values) != 1 || out.Values[0].Finite || out.Values[0].Value != 0 {
				t.Errorf("non-finite measurement not sanitized: %+v", out.Values)
			}
			card := Scorecard{Schema: ScorecardSchema,
				Artifacts: []ArtifactScore{{Artifact: "t", Outcomes: []Outcome{out}}}}
			if _, err := card.Encode(); err != nil {
				t.Errorf("scorecard with sanitized non-finite value failed to marshal: %v", err)
			}
		})
	}
}

// TestEvalWorkloadScoped: Workloads parallel to Configs restricts each
// cell to one workload's run, so the same config can appear several
// times in a series with the workload as the sweep axis.
func TestEvalWorkloadScoped(t *testing.T) {
	env := Env{Baseline: "base", Sets: map[string]*stats.Set{
		"base": {Config: "base", Runs: []*stats.Run{
			{Workload: "small", Cycles: 1000, Instructions: 1000},
			{Workload: "big", Cycles: 1000, Instructions: 1000},
		}},
		"fdp": {Config: "fdp", Runs: []*stats.Run{
			{Workload: "small", Cycles: 1000, Instructions: 1000, Mispredictions: 2},
			{Workload: "big", Cycles: 1000, Instructions: 1500, Mispredictions: 9},
		}},
	}}

	mono := Expectation{ID: "x", Severity: Hard, Kind: KindMonotonic, Metric: MetricBranchMPKI,
		Configs: []string{"fdp", "fdp"}, Workloads: []string{"small", "big"}, Dir: 1}
	if out := evalExpectation(env, mono); out.Status != StatusPass {
		t.Fatalf("workload-scoped monotonic: %s (%s)", out.Status, out.Detail)
	}
	if out := evalExpectation(env, mono); out.Values[1].Config != "fdp@big" {
		t.Errorf("measurement not workload-labelled: %+v", out.Values)
	}

	// Per-workload speedup: fdp@big is 1.5x its own baseline run while
	// fdp@small is 1.0x, so the ordering only holds cell-wise.
	ord := Expectation{ID: "x", Severity: Hard, Kind: KindOrdering, Metric: MetricSpeedup,
		Configs: []string{"fdp", "fdp"}, Workloads: []string{"big", "small"}, MinGap: 0.4}
	if out := evalExpectation(env, ord); out.Status != StatusPass {
		t.Fatalf("workload-scoped speedup ordering: %s (%s)", out.Status, out.Detail)
	}

	missing := Expectation{ID: "x", Severity: Hard, Kind: KindRange, Metric: MetricBranchMPKI,
		Configs: []string{"fdp"}, Workloads: []string{"gone"}, Lo: 0}
	if out := evalExpectation(env, missing); out.Status != StatusFail ||
		!strings.Contains(out.Detail, `no run for workload "gone"`) {
		t.Fatalf("missing workload cell: %s (%s)", out.Status, out.Detail)
	}
}

// TestFlippedOrderingFails proves the gate trips on a deliberately
// broken expectation: a contract whose ordering passes on measured sets
// must hard-fail the scorecard once the ordering is flipped.
func TestFlippedOrderingFails(t *testing.T) {
	cfgA, cfgB, cfgBase := core.DefaultConfig(), core.DefaultConfig(), core.DefaultConfig()
	cfgA.Name, cfgB.Name, cfgBase.Name = "a", "b", "base"
	contract := Contract{
		Artifact: "t", Baseline: "base",
		Configs: []core.Config{cfgBase, cfgA, cfgB},
		Expectations: []Expectation{{
			ID: "order", Claim: "a beats b", Severity: Hard,
			Kind: KindOrdering, Metric: MetricSpeedup, Configs: []string{"a", "b"},
		}},
	}
	if err := contract.Validate(); err != nil {
		t.Fatal(err)
	}
	sets := testEnv().Sets

	card := Scorecard{Schema: ScorecardSchema, Artifacts: []ArtifactScore{contract.Eval(sets)}}
	if fails := card.HardFailures(); len(fails) != 0 {
		t.Fatalf("healthy contract failed: %v", fails)
	}

	flipped := contract
	flipped.Expectations = append([]Expectation(nil), contract.Expectations...)
	flipped.Expectations[0].Configs = []string{"b", "a"} // the deliberate break
	card = Scorecard{Schema: ScorecardSchema, Artifacts: []ArtifactScore{flipped.Eval(sets)}}
	fails := card.HardFailures()
	if len(fails) != 1 || fails[0] != "t/order" {
		t.Fatalf("flipped ordering did not hard-fail the scorecard: %v", fails)
	}
}

// TestContractValidate covers the structural guards.
func TestContractValidate(t *testing.T) {
	cfg := core.DefaultConfig()
	cfg.Name = "a"
	base := core.DefaultConfig()
	base.Name = "base"
	ok := Contract{Artifact: "t", Baseline: "base", Configs: []core.Config{base, cfg},
		Expectations: []Expectation{{ID: "e", Severity: Hard, Kind: KindRange,
			Metric: MetricSpeedup, Configs: []string{"a"}, Lo: 1}}}
	if err := ok.Validate(); err != nil {
		t.Fatalf("valid contract rejected: %v", err)
	}

	tests := []struct {
		name string
		mut  func(*Contract)
		want string
	}{
		{"empty-artifact", func(c *Contract) { c.Artifact = "" }, "empty artifact"},
		{"duplicate-config", func(c *Contract) { c.Configs = append(c.Configs, cfg) }, "duplicate config"},
		{"unnamed-config", func(c *Contract) { c.Configs[1].Name = "" }, "empty name"},
		{"empty-expectation-id", func(c *Contract) { c.Expectations[0].ID = "" }, "empty id"},
		{"duplicate-expectation-id", func(c *Contract) {
			c.Expectations = append(c.Expectations, c.Expectations[0])
		}, "duplicate expectation"},
		{"bad-severity", func(c *Contract) { c.Expectations[0].Severity = "soft" }, "unknown severity"},
		{"bad-metric", func(c *Contract) { c.Expectations[0].Metric = "vibes" }, "unknown metric"},
		{"bad-kind", func(c *Contract) { c.Expectations[0].Kind = "spiral" }, "unknown kind"},
		{"missing-baseline", func(c *Contract) { c.Baseline = "gone" }, "baseline"},
		{"unknown-config-ref", func(c *Contract) { c.Expectations[0].Configs = []string{"nope"} }, "not in grid"},
		{"ordering-arity", func(c *Contract) {
			c.Expectations[0].Kind = KindOrdering
			c.Expectations[0].Configs = []string{"a"}
		}, "exactly 2"},
		{"range-arity", func(c *Contract) { c.Expectations[0].Configs = []string{"a", "base"} }, "exactly 1"},
		{"empty-range", func(c *Contract) { c.Expectations[0].Lo, c.Expectations[0].Hi = 2, 1 }, "empty"},
		{"crossover-mismatched-series", func(c *Contract) {
			c.Expectations[0].Kind = KindCrossover
			c.Expectations[0].Configs = []string{"a", "base"}
			c.Expectations[0].ConfigsB = []string{"a"}
		}, "parallel series"},
		{"monotonic-bad-dir", func(c *Contract) {
			c.Expectations[0].Kind = KindMonotonic
			c.Expectations[0].Configs = []string{"a", "base"}
			c.Expectations[0].Dir = 0
		}, "dir"},
		{"monotonic-negative-slack", func(c *Contract) {
			c.Expectations[0].Kind = KindMonotonic
			c.Expectations[0].Configs = []string{"a", "base"}
			c.Expectations[0].Dir = 1
			c.Expectations[0].Slack = -0.1
		}, "slack"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			c := ok
			c.Configs = append([]core.Config(nil), ok.Configs...)
			c.Expectations = append([]Expectation(nil), ok.Expectations...)
			tt.mut(&c)
			err := c.Validate()
			if err == nil || !strings.Contains(err.Error(), tt.want) {
				t.Fatalf("Validate() = %v, want error containing %q", err, tt.want)
			}
		})
	}
}
