package bpred

import (
	"testing"
	"testing/quick"

	"fdp/internal/xrand"
)

// Property: every predictor survives arbitrary predict/update interleaving
// on arbitrary PCs without panicking, and stays deterministic.
func TestPredictorsRobustUnderRandomTraffic(t *testing.T) {
	build := []func() DirPredictor{
		func() DirPredictor { return NewTAGE(TAGE18KB()) },
		func() DirPredictor { return Gshare8KB() },
		func() DirPredictor { return NewBimodal(10) },
		func() DirPredictor { return TAGESCL24KB() },
		func() DirPredictor { return Perceptron8KB() },
	}
	for _, mk := range build {
		run := func(seed uint64) uint64 {
			p := mk()
			h := NewHistory(p.Specs())
			p.Bind(0)
			rng := xrand.New(seed)
			var sig uint64
			for i := 0; i < 3000; i++ {
				pc := rng.Uint64() &^ 3
				taken := rng.Bool(0.5)
				if p.Predict(pc, h) {
					sig = sig*3 + 1
				} else {
					sig = sig * 3
				}
				p.Update(pc, h, taken)
				h.InsertDir(taken)
			}
			return sig
		}
		a, b := run(42), run(42)
		if a != b {
			t.Errorf("%s nondeterministic under random traffic", mk().Name())
		}
	}
}

// Property: a loop predictor trained on any stable trip in [2, 300]
// becomes confident and predicts the activation exactly.
func TestLoopPredictorAnyStableTrip(t *testing.T) {
	f := func(raw uint16) bool {
		trip := 2 + int(raw)%299
		l := NewLoopPredictor(4)
		pc := uint64(0x40_0000)
		for act := 0; act < 6; act++ {
			for i := 0; i < trip-1; i++ {
				l.Update(pc, true)
			}
			l.Update(pc, false)
		}
		for i := 0; i < trip-1; i++ {
			taken, conf := l.Predict(pc)
			if !conf || !taken {
				return false
			}
			l.Update(pc, true)
		}
		taken, conf := l.Predict(pc)
		return conf && !taken
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: InsertTaken is equivalent to two InsertBits of the hash, so
// any mix of dir and taken events keeps folded registers consistent with
// the brute-force fold.
func TestMixedInsertConsistency(t *testing.T) {
	specs := []FoldSpec{{Length: 37, Width: 9}, {Length: 260, Width: 12}}
	f := func(ops []uint8) bool {
		h := NewHistory(specs)
		rng := xrand.New(1)
		for _, op := range ops {
			if op%2 == 0 {
				h.InsertDir(op%4 == 0)
			} else {
				h.InsertTaken(rng.Uint64()&^3, rng.Uint64()&^3)
			}
		}
		for i, s := range specs {
			if h.Folded(i) != h.FoldBrute(s) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Save/Restore is an exact inverse regardless of the operations
// in between.
func TestSnapshotIsExactInverse(t *testing.T) {
	specs := []FoldSpec{{Length: 100, Width: 11}, {Length: 7, Width: 5}}
	f := func(pre, mid []uint8) bool {
		h := NewHistory(specs)
		for _, b := range pre {
			h.InsertBit(uint32(b) & 1)
		}
		var snap Snapshot
		h.Save(&snap)
		want0, want1 := h.Folded(0), h.Folded(1)
		wantBits := h.bits
		for _, b := range mid {
			h.InsertBit(uint32(b) & 1)
		}
		h.Restore(&snap)
		return h.Folded(0) == want0 && h.Folded(1) == want1 && h.bits == wantBits
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TAGE-SC-L's corrector must never make a strongly-predictable branch
// worse than TAGE alone by more than noise.
func TestSCLNoRegressionOnEasyBranches(t *testing.T) {
	seq := func(i int) (uint64, bool) { return uint64(0x100 + (i%64)*4), (i % 64) < 60 }
	scl := sclHarness(t, TAGESCL24KB(), seq, 30000)
	tage := sclHarness(t, NewTAGE(TAGE18KB()), seq, 30000)
	if scl < tage-0.02 {
		t.Errorf("SC-L %.4f much worse than TAGE %.4f on easy branches", scl, tage)
	}
}
