// transport.go is faultkit's network arm: a fault-injecting
// http.RoundTripper wrapped around the distributed coordinator's client
// so chaos runs exercise the lease protocol's failure paths — dropped
// connections, stalls, truncated streams, flipped bits, server errors —
// without a real flaky network. Faults fire on a deterministic request
// cadence (every Nth matching request) with seeded offsets and delays,
// so a failing chaos run replays exactly.
package faultkit

import (
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"fdp/internal/xrand"
)

// NetKind enumerates the injectable network faults.
type NetKind int

const (
	// NetDrop fails the round trip with a synthesized timeout (a
	// net.Error whose Timeout() is true) — the connection-loss model.
	NetDrop NetKind = iota
	// NetDelay stalls the round trip before delivering the response.
	NetDelay
	// NetTruncate cuts the response body short — the mid-stream
	// connection-death model.
	NetTruncate
	// NetFlip flips one bit early in the response body — the corrupting-
	// link model the CRC envelope exists to catch.
	NetFlip
	// Net5xx replaces the response with a bodyless 503.
	Net5xx
)

// String names the kind for logs.
func (k NetKind) String() string {
	switch k {
	case NetDrop:
		return "drop"
	case NetDelay:
		return "delay"
	case NetTruncate:
		return "truncate"
	case NetFlip:
		return "flip"
	case Net5xx:
		return "5xx"
	default:
		return fmt.Sprintf("NetKind(%d)", int(k))
	}
}

// NetFaults plans the fault cadence: each non-zero Every fires its
// fault on every Nth matching request (1-based, so Every=1 faults every
// request). Cadences are deterministic where probabilities would make
// the injected-fault count depend on goroutine scheduling; only fault
// *parameters* (flip offset, delay length, truncation point) are
// seeded.
type NetFaults struct {
	DropEvery     int
	DelayEvery    int
	TruncateEvery int
	FlipEvery     int
	Err5xxEvery   int
	// DelayMax bounds an injected delay (default 50ms).
	DelayMax time.Duration
	// TruncateWithin bounds how many body bytes pass before truncation
	// (default 512).
	TruncateWithin int
	// FlipWithin bounds the flipped bit's byte offset (default 256 — early
	// enough to land inside any protocol line).
	FlipWithin int
	// Match filters which requests are eligible (nil = all).
	Match func(*http.Request) bool
}

// Transport injects NetFaults around a base RoundTripper.
type Transport struct {
	base   http.RoundTripper
	faults NetFaults

	mu       sync.Mutex
	rng      *xrand.SplitMix64
	seq      int
	injected map[NetKind]int
}

// NewTransport wraps base (nil = http.DefaultTransport).
func NewTransport(seed uint64, base http.RoundTripper, f NetFaults) *Transport {
	if base == nil {
		base = http.DefaultTransport
	}
	if f.DelayMax <= 0 {
		f.DelayMax = 50 * time.Millisecond
	}
	if f.TruncateWithin <= 0 {
		f.TruncateWithin = 512
	}
	if f.FlipWithin <= 0 {
		f.FlipWithin = 256
	}
	return &Transport{base: base, faults: f, rng: xrand.New(seed), injected: make(map[NetKind]int)}
}

// Injected reports how many faults of kind k actually fired.
func (t *Transport) Injected(k NetKind) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.injected[k]
}

// netTimeoutErr satisfies net.Error so runner.Classify sees a
// transient network timeout, exactly like a dead worker.
type netTimeoutErr struct{}

func (netTimeoutErr) Error() string   { return "faultkit: injected connection timeout" }
func (netTimeoutErr) Timeout() bool   { return true }
func (netTimeoutErr) Temporary() bool { return true }

// plan decides this request's fault under the lock: which kind (at most
// one per request, first match on a fixed cadence order) and its seeded
// parameter.
func (t *Transport) plan(req *http.Request) (kind NetKind, param uint64, fire bool) {
	if t.faults.Match != nil && !t.faults.Match(req) {
		return 0, 0, false
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.seq++
	every := func(n int) bool { return n > 0 && t.seq%n == 0 }
	switch {
	case every(t.faults.DropEvery):
		kind = NetDrop
	case every(t.faults.Err5xxEvery):
		kind = Net5xx
	case every(t.faults.TruncateEvery):
		kind, param = NetTruncate, uint64(t.rng.Intn(t.faults.TruncateWithin))
	case every(t.faults.FlipEvery):
		kind, param = NetFlip, uint64(t.rng.Intn(t.faults.FlipWithin*8))
	case every(t.faults.DelayEvery):
		kind, param = NetDelay, uint64(t.rng.Intn(int(t.faults.DelayMax)))
	default:
		return 0, 0, false
	}
	t.injected[kind]++
	return kind, param, true
}

// RoundTrip implements http.RoundTripper. Request bodies are never
// touched: request-direction integrity is the worker's job (it refuses
// a lease whose reconstructed spec hashes differently), so faulting the
// response direction exercises every defense the coordinator owns.
func (t *Transport) RoundTrip(req *http.Request) (*http.Response, error) {
	kind, param, fire := t.plan(req)
	if !fire {
		return t.base.RoundTrip(req)
	}
	switch kind {
	case NetDrop:
		return nil, netTimeoutErr{}
	case Net5xx:
		return &http.Response{
			StatusCode: http.StatusServiceUnavailable,
			Status:     "503 Service Unavailable (faultkit)",
			Proto:      req.Proto, ProtoMajor: req.ProtoMajor, ProtoMinor: req.ProtoMinor,
			Header: make(http.Header), Body: http.NoBody, Request: req,
		}, nil
	case NetDelay:
		select {
		case <-req.Context().Done():
			return nil, req.Context().Err()
		case <-time.After(time.Duration(param)):
		}
		return t.base.RoundTrip(req)
	}
	resp, err := t.base.RoundTrip(req)
	if err != nil {
		return resp, err
	}
	switch kind {
	case NetTruncate:
		resp.Body = &truncateBody{rc: resp.Body, left: int64(param)}
		resp.ContentLength = -1
	case NetFlip:
		resp.Body = &flipBody{rc: resp.Body, bit: int64(param)}
	}
	return resp, nil
}

// truncateBody passes the first left bytes and then reports an
// unexpected EOF, as a connection dying mid-response does.
type truncateBody struct {
	rc   io.ReadCloser
	left int64
}

func (b *truncateBody) Read(p []byte) (int, error) {
	if b.left <= 0 {
		return 0, io.ErrUnexpectedEOF
	}
	if int64(len(p)) > b.left {
		p = p[:b.left]
	}
	n, err := b.rc.Read(p)
	b.left -= int64(n)
	if err == nil && b.left <= 0 {
		err = io.ErrUnexpectedEOF
	}
	return n, err
}

func (b *truncateBody) Close() error { return b.rc.Close() }

// flipBody flips one bit at a fixed offset as the body streams past.
type flipBody struct {
	rc  io.ReadCloser
	bit int64 // absolute bit offset to flip
	off int64 // byte position of the next read
}

func (b *flipBody) Read(p []byte) (int, error) {
	n, err := b.rc.Read(p)
	if n > 0 {
		byteOff := b.bit / 8
		if byteOff >= b.off && byteOff < b.off+int64(n) {
			p[byteOff-b.off] ^= 1 << (b.bit % 8)
		}
		b.off += int64(n)
	}
	return n, err
}

func (b *flipBody) Close() error { return b.rc.Close() }
