package runner

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"fdp/internal/obs"
)

// Runner metric names. The obs registry handed to the scheduler is shared
// across workers, so all updates go through one mutex — job granularity
// is milliseconds, so the lock never contends measurably.
const (
	// MetricJobs counts jobs the scheduler started executing (cache hits
	// included).
	MetricJobs = "runner_jobs"
	// MetricCacheHits counts jobs satisfied from the result cache without
	// simulating; MetricCacheMisses counts jobs that had to simulate.
	MetricCacheHits   = "runner_cache_hits"
	MetricCacheMisses = "runner_cache_misses"
	// MetricCanceled counts jobs abandoned by first-error or caller
	// cancellation (in-flight or never started).
	MetricCanceled = "runner_jobs_canceled"
	// MetricPanics counts jobs that panicked (each fails only itself).
	MetricPanics = "runner_job_panics"
	// MetricQueueDepth samples, at every job start, how many jobs were
	// still waiting — the backlog profile of the pool.
	MetricQueueDepth = "runner_queue_depth"
	// MetricRetries counts transient-failure retries (each re-attempt of
	// a job after backoff adds one).
	MetricRetries = "runner_retries"
	// MetricWatchdogFired counts watchdog cancellations of jobs whose
	// heartbeat showed no forward progress for the deadline.
	MetricWatchdogFired = "runner_watchdog_fired"
	// MetricQuarantined counts jobs whose terminal failure was
	// quarantined under keep-going instead of aborting the pool.
	MetricQuarantined = "runner_jobs_quarantined"
	// MetricCacheQuarantined counts corrupt disk cache entries renamed to
	// *.corrupt instead of being served or silently treated as misses.
	MetricCacheQuarantined = "runner_cache_quarantined"
	// MetricCheckpointHits counts jobs whose fast-forward warmup was
	// satisfied from a stored (or just-built) checkpoint;
	// MetricCheckpointMisses counts jobs that had to build one cold.
	MetricCheckpointHits   = "runner_checkpoint_hits"
	MetricCheckpointMisses = "runner_checkpoint_misses"
	// MetricCheckpointRestores counts runs that actually measured from a
	// restored snapshot (hits minus restore-time decode fallbacks).
	MetricCheckpointRestores = "runner_checkpoint_restores"
)

// schedMetrics is the mutex-guarded view of the runner metrics. All
// methods are safe on a zero registry (every obs op is nil-safe).
type schedMetrics struct {
	mu               sync.Mutex
	jobs             *obs.Counter
	cacheHits        *obs.Counter
	cacheMisses      *obs.Counter
	canceled         *obs.Counter
	panics           *obs.Counter
	retries          *obs.Counter
	watchdog         *obs.Counter
	quarantined      *obs.Counter
	cacheQuarantined *obs.Counter
	ckptHits         *obs.Counter
	ckptMisses       *obs.Counter
	ckptRestores     *obs.Counter
	depth            *obs.Histogram
}

func newSchedMetrics(reg *obs.Registry) *schedMetrics {
	m := &schedMetrics{}
	if reg != nil {
		m.jobs = reg.Counter(MetricJobs)
		m.cacheHits = reg.Counter(MetricCacheHits)
		m.cacheMisses = reg.Counter(MetricCacheMisses)
		m.canceled = reg.Counter(MetricCanceled)
		m.panics = reg.Counter(MetricPanics)
		m.retries = reg.Counter(MetricRetries)
		m.watchdog = reg.Counter(MetricWatchdogFired)
		m.quarantined = reg.Counter(MetricQuarantined)
		m.cacheQuarantined = reg.Counter(MetricCacheQuarantined)
		m.ckptHits = reg.Counter(MetricCheckpointHits)
		m.ckptMisses = reg.Counter(MetricCheckpointMisses)
		m.ckptRestores = reg.Counter(MetricCheckpointRestores)
		m.depth = reg.Histogram(MetricQueueDepth)
	}
	return m
}

func (m *schedMetrics) jobStart(queued int) {
	m.mu.Lock()
	m.jobs.Inc()
	m.depth.Observe(uint64(queued))
	m.mu.Unlock()
}

func (m *schedMetrics) count(c *obs.Counter) {
	m.mu.Lock()
	c.Inc()
	m.mu.Unlock()
}

func (m *schedMetrics) add(c *obs.Counter, d uint64) {
	m.mu.Lock()
	c.Add(d)
	m.mu.Unlock()
}

// Scheduler is a bounded worker pool for simulation jobs. The first job
// error cancels the pool's context, which both stops new jobs from being
// claimed and — because simulations poll their context — aborts in-flight
// ones promptly. A panicking job is recovered into an error that fails
// that job alone; the process and the other jobs' results survive.
type Scheduler struct {
	parallel int
	metrics  *schedMetrics
	// status, when non-nil, receives lock-free live progress updates for
	// concurrent readers (Execute sets it from Options.Status).
	status *Status
}

// NewScheduler creates a pool of the given width (non-positive =
// GOMAXPROCS). A non-nil registry receives the runner metrics.
func NewScheduler(parallel int, reg *obs.Registry) *Scheduler {
	if parallel <= 0 {
		parallel = runtime.GOMAXPROCS(0)
	}
	return &Scheduler{parallel: parallel, metrics: newSchedMetrics(reg)}
}

// Run executes jobs 0..n-1 by calling f from up to parallel workers. It
// returns the first job error (in completion order; later errors are
// dropped), or ctx.Err() when the caller's context ended the run with no
// job at fault. Job indices are claimed in order, so with a pool of one
// the execution order is exactly 0..n-1.
func (s *Scheduler) Run(ctx context.Context, n int, f func(ctx context.Context, i int) error) error {
	if n <= 0 {
		return ctx.Err()
	}
	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	var (
		errMu    sync.Mutex
		firstErr error
	)
	fail := func(err error) {
		errMu.Lock()
		if firstErr == nil {
			firstErr = err
			cancel()
		}
		errMu.Unlock()
	}

	var next, completed int64
	next = -1
	workers := s.parallel
	if workers > n {
		workers = n
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&next, 1))
				if i >= n {
					return
				}
				if runCtx.Err() != nil {
					return
				}
				s.metrics.jobStart(n - 1 - i)
				s.status.ObserveQueueDepth(uint64(n - 1 - i))
				s.status.jobStarted()
				err := s.runOne(runCtx, i, f)
				s.status.jobDone()
				switch {
				case err == nil:
					atomic.AddInt64(&completed, 1)
				case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
					// The job was a casualty of cancellation, not its
					// cause; it counts as canceled, not completed.
					return
				default:
					atomic.AddInt64(&completed, 1)
					fail(err)
					return
				}
			}
		}()
	}
	wg.Wait()

	if c := n - int(atomic.LoadInt64(&completed)); c > 0 {
		s.metrics.add(s.metrics.canceled, uint64(c))
		s.status.addCanceled(int64(c))
	}
	errMu.Lock()
	err := firstErr
	errMu.Unlock()
	if err != nil {
		return err
	}
	return ctx.Err()
}

// runOne runs one job with panic isolation.
func (s *Scheduler) runOne(ctx context.Context, i int, f func(ctx context.Context, i int) error) (err error) {
	defer func() {
		if r := recover(); r != nil {
			s.metrics.count(s.metrics.panics)
			s.status.panicked()
			err = fmt.Errorf("runner: job %d panicked: %v", i, r)
		}
	}()
	return f(ctx, i)
}
