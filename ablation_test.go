package fdp

// Ablation benchmarks: each toggles one design choice DESIGN.md calls out
// and reports the resulting simulated IPC alongside the wall-clock cost,
// so a single `go test -bench Ablation` run shows what every feature buys.

import (
	"testing"

	"fdp/internal/core"
)

func benchAblation(b *testing.B, cfg Config) {
	b.Helper()
	w := benchOpts.Workloads[0] // the server-class bench workload
	var ipc float64
	for i := 0; i < b.N; i++ {
		r, err := Simulate(cfg, w, 30_000, 120_000)
		if err != nil {
			b.Fatal(err)
		}
		ipc = r.IPC()
	}
	b.ReportMetric(ipc, "IPC")
}

func BenchmarkAblationFDPOff(b *testing.B) {
	benchAblation(b, BaselineConfig())
}

func BenchmarkAblationFDPOn(b *testing.B) {
	benchAblation(b, DefaultConfig())
}

func BenchmarkAblationPFCOff(b *testing.B) {
	cfg := DefaultConfig()
	cfg.PFC = false
	benchAblation(b, cfg)
}

func BenchmarkAblationSmallBTBPFCOn(b *testing.B) {
	cfg := DefaultConfig()
	cfg.BTBEntries = 1024
	benchAblation(b, cfg)
}

func BenchmarkAblationSmallBTBPFCOff(b *testing.B) {
	cfg := DefaultConfig()
	cfg.BTBEntries = 1024
	cfg.PFC = false
	benchAblation(b, cfg)
}

func BenchmarkAblationGHRHistory(b *testing.B) {
	cfg := DefaultConfig()
	cfg.HistPolicy = core.HistGHRFix
	cfg.BTBAllocPolicy = core.AllocAll
	benchAblation(b, cfg)
}

func BenchmarkAblationShallowFTQ(b *testing.B) {
	cfg := DefaultConfig()
	cfg.FTQEntries = 4
	benchAblation(b, cfg)
}

func BenchmarkAblationHalfPredictBandwidth(b *testing.B) {
	cfg := DefaultConfig()
	cfg.PredictWidth = 6
	benchAblation(b, cfg)
}

func BenchmarkAblationGshare(b *testing.B) {
	cfg := DefaultConfig()
	cfg.Dir = DirGshare
	benchAblation(b, cfg)
}

func BenchmarkAblationWithEIP(b *testing.B) {
	cfg := DefaultConfig()
	cfg.Prefetcher = "eip-27kb"
	benchAblation(b, cfg)
}
