package synth

import (
	"fmt"
	"strings"
	"sync"
)

// ServerParams returns the parameter set for the "server" workload class:
// multi-hundred-KB code footprints, deep call graphs, heavy discontinuity.
// variant (0..3) perturbs sizes so the four server workloads differ.
func ServerParams(variant int) Params {
	return Params{
		Name:              fmt.Sprintf("server_%c", 'a'+variant),
		Funcs:             2800 + 350*variant,
		Levels:            8,
		BlocksPerFuncMean: 12 + variant,
		BlockLenMean:      6,
		JumpFrac:          0.08,
		CallFrac:          0.24,
		IndJumpFrac:       0.02,
		IndCallFrac:       0.04,
		LoopFrac:          0.08,
		PatternFrac:       0.16,
		StrongBiasFrac:    0.93,
		TripMean:          4,
		IndTargetsMax:     10,
		MarkovStay:        0.78,
		HotFraction:       0.45,
	}
}

// ClientParams returns the "client" class: mid footprint, moderate call
// depth, a mix of loops and branchy code.
func ClientParams(variant int) Params {
	return Params{
		Name:              fmt.Sprintf("client_%c", 'a'+variant),
		Funcs:             1350 + 180*variant,
		Levels:            7,
		BlocksPerFuncMean: 11 + variant,
		BlockLenMean:      6,
		JumpFrac:          0.08,
		CallFrac:          0.20,
		IndJumpFrac:       0.03,
		IndCallFrac:       0.03,
		LoopFrac:          0.14,
		PatternFrac:       0.18,
		StrongBiasFrac:    0.92,
		TripMean:          6,
		IndTargetsMax:     8,
		MarkovStay:        0.82,
		HotFraction:       0.45,
	}
}

// SpecParams returns the "spec" class: smaller, loopier codes in the style
// of SPEC CPU workloads that still exceed the 32KB L1I when warm.
func SpecParams(variant int) Params {
	return Params{
		Name:              fmt.Sprintf("spec_%c", 'a'+variant),
		Funcs:             700 + 90*variant,
		Levels:            6,
		BlocksPerFuncMean: 14 + 2*variant,
		BlockLenMean:      7,
		JumpFrac:          0.07,
		CallFrac:          0.15,
		IndJumpFrac:       0.02,
		IndCallFrac:       0.02,
		LoopFrac:          0.17,
		PatternFrac:       0.20,
		StrongBiasFrac:    0.88,
		TripMean:          8,
		IndTargetsMax:     6,
		MarkovStay:        0.88,
		HotFraction:       0.60,
	}
}

// classSeeds gives every workload an independent master seed.
const (
	serverSeedBase = 0x5eed_0001
	clientSeedBase = 0x5eed_1001
	specSeedBase   = 0x5eed_2001
)

var (
	stdOnce sync.Once
	stdSet  []*Workload
)

// StandardWorkloads returns the 12 standard workloads (4 per class) used
// by all paper experiments. The set is generated once and cached; workloads
// are immutable and safe to share across goroutines (each run creates its
// own Stream).
func StandardWorkloads() []*Workload {
	stdOnce.Do(func() {
		for v := 0; v < 4; v++ {
			stdSet = append(stdSet, MustGenerate(ServerParams(v), "server", serverSeedBase+uint64(v)))
		}
		for v := 0; v < 4; v++ {
			stdSet = append(stdSet, MustGenerate(ClientParams(v), "client", clientSeedBase+uint64(v)))
		}
		for v := 0; v < 4; v++ {
			stdSet = append(stdSet, MustGenerate(SpecParams(v), "spec", specSeedBase+uint64(v)))
		}
	})
	return stdSet
}

// WorkloadsWithSeedOffset generates the full 12-workload suite with every
// master seed shifted by offset (offset 0 equals StandardWorkloads but is
// regenerated, not cached). Use for seed-sensitivity studies: the same
// program classes, different random programs and behaviours.
func WorkloadsWithSeedOffset(offset uint64) []*Workload {
	var ws []*Workload
	for v := 0; v < 4; v++ {
		ws = append(ws, MustGenerate(ServerParams(v), "server", serverSeedBase+uint64(v)+offset))
	}
	for v := 0; v < 4; v++ {
		ws = append(ws, MustGenerate(ClientParams(v), "client", clientSeedBase+uint64(v)+offset))
	}
	for v := 0; v < 4; v++ {
		ws = append(ws, MustGenerate(SpecParams(v), "spec", specSeedBase+uint64(v)+offset))
	}
	return ws
}

// ByName returns the standard workload with the given name, or nil.
func ByName(name string) *Workload {
	for _, w := range StandardWorkloads() {
		if w.Name == name {
			return w
		}
	}
	return nil
}

// Resolve returns the named standard workloads in the given order,
// failing on the first unknown name.
func Resolve(names ...string) ([]*Workload, error) {
	ws := make([]*Workload, 0, len(names))
	for _, name := range names {
		w := ByName(name)
		if w == nil {
			return nil, fmt.Errorf("synth: unknown workload %q (have: %v)", name, Names())
		}
		ws = append(ws, w)
	}
	return ws, nil
}

// ParseList resolves a comma-separated workload list as the command-line
// tools accept it: "all" (or "") yields the full standard set, otherwise
// each name must be a standard workload. Whitespace around names is
// ignored. This is the one shared parser for every frontend's -workload
// flag.
func ParseList(s string) ([]*Workload, error) {
	s = strings.TrimSpace(s)
	if s == "" || s == "all" {
		return StandardWorkloads(), nil
	}
	names := strings.Split(s, ",")
	for i := range names {
		names[i] = strings.TrimSpace(names[i])
	}
	return Resolve(names...)
}

// Names returns the names of the standard workloads in order.
func Names() []string {
	ws := StandardWorkloads()
	out := make([]string, len(ws))
	for i, w := range ws {
		out[i] = w.Name
	}
	return out
}
