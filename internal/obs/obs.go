// Package obs is the observability layer of the simulator: a named
// counter/histogram registry, a ring-buffered pipeline event tracer
// drainable to JSONL, and a run-manifest emitter that packages one run's
// configuration, seed and every metric into a single JSON document.
//
// The package is designed so that an *unattached* probe set costs the hot
// path nothing but a nil check: Counter.Add, Histogram.Observe and
// Tracer.Emit are all safe on nil receivers, and none of them allocates.
// All types are single-run, single-goroutine state; parallel experiment
// runners attach one probe set per run.
package obs

import (
	"fmt"
	"math"
	"math/bits"
	"sort"
)

// Counter is a monotonically increasing named counter.
type Counter struct {
	name string
	v    uint64
}

// Name returns the counter's registered name.
func (c *Counter) Name() string { return c.name }

// Inc adds one. Safe on a nil receiver (no-op).
func (c *Counter) Inc() {
	if c != nil {
		c.v++
	}
}

// Add adds d. Safe on a nil receiver (no-op).
func (c *Counter) Add(d uint64) {
	if c != nil {
		c.v += d
	}
}

// Value returns the current count (0 for a nil receiver).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v
}

// NumBuckets is the number of power-of-two histogram buckets: bucket 0
// holds the value 0 and bucket i (i >= 1) holds values in
// [2^(i-1), 2^i - 1], so 65 buckets cover the full uint64 range.
const NumBuckets = 65

// BucketIndex returns the bucket a value falls into.
func BucketIndex(v uint64) int { return bits.Len64(v) }

// BucketBounds returns the inclusive [lo, hi] range of bucket i.
func BucketBounds(i int) (lo, hi uint64) {
	if i <= 0 {
		return 0, 0
	}
	lo = uint64(1) << uint(i-1)
	if i >= 64 {
		return lo, math.MaxUint64
	}
	return lo, uint64(1)<<uint(i) - 1
}

// Histogram is a fixed-size power-of-two-bucket histogram of uint64
// samples. Observation is allocation-free.
type Histogram struct {
	name    string
	count   uint64
	sum     uint64
	min     uint64
	max     uint64
	buckets [NumBuckets]uint64
}

// Name returns the histogram's registered name.
func (h *Histogram) Name() string { return h.name }

// Observe records one sample. Safe on a nil receiver (no-op).
func (h *Histogram) Observe(v uint64) {
	if h == nil {
		return
	}
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	h.count++
	h.sum += v
	h.buckets[BucketIndex(v)]++
}

// Count returns the number of samples.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count
}

// Sum returns the sum of all samples.
func (h *Histogram) Sum() uint64 {
	if h == nil {
		return 0
	}
	return h.sum
}

// Mean returns the arithmetic mean of all samples (0 when empty).
func (h *Histogram) Mean() float64 {
	if h == nil || h.count == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.count)
}

// Bucket returns the raw count of bucket i (0 when out of range).
func (h *Histogram) Bucket(i int) uint64 {
	if h == nil || i < 0 || i >= NumBuckets {
		return 0
	}
	return h.buckets[i]
}

// Merge folds o's samples into h, as if every sample observed by o had
// been observed by h: counts, sums and buckets add, min/max extend. An
// empty (or nil) o leaves h unchanged; a nil h is a no-op. This is what
// aggregates per-run registries and interval snapshots into sweep-level
// summaries.
func (h *Histogram) Merge(o *Histogram) {
	if h == nil || o == nil || o.count == 0 {
		return
	}
	if h.count == 0 || o.min < h.min {
		h.min = o.min
	}
	if o.max > h.max {
		h.max = o.max
	}
	h.count += o.count
	h.sum += o.sum
	for i := range h.buckets {
		h.buckets[i] += o.buckets[i]
	}
}

// reset zeroes the histogram in place.
func (h *Histogram) reset() {
	h.count, h.sum, h.min, h.max = 0, 0, 0, 0
	h.buckets = [NumBuckets]uint64{}
}

// Bucket is one non-empty histogram bucket in a snapshot.
type Bucket struct {
	Lo    uint64 `json:"lo"`
	Hi    uint64 `json:"hi"`
	Count uint64 `json:"count"`
}

// HistogramSnapshot is the serializable state of a histogram; only
// non-empty buckets are included.
type HistogramSnapshot struct {
	Count   uint64   `json:"count"`
	Sum     uint64   `json:"sum"`
	Min     uint64   `json:"min"`
	Max     uint64   `json:"max"`
	Buckets []Bucket `json:"buckets,omitempty"`
}

// Snapshot captures the histogram's current state.
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	s := HistogramSnapshot{Count: h.count, Sum: h.sum, Min: h.min, Max: h.max}
	for i, n := range h.buckets {
		if n == 0 {
			continue
		}
		lo, hi := BucketBounds(i)
		s.Buckets = append(s.Buckets, Bucket{Lo: lo, Hi: hi, Count: n})
	}
	return s
}

// Quantile estimates the q-quantile (0 <= q <= 1) of the samples by
// walking the cumulative bucket counts and interpolating linearly inside
// the bucket the rank falls in, clamped to the observed [Min, Max]. An
// empty snapshot returns 0. Power-of-two buckets make the estimate
// coarse (within a factor of two), which is the usual trade for
// allocation-free observation.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 {
		return 0
	}
	if q <= 0 {
		return float64(s.Min)
	}
	if q >= 1 {
		return float64(s.Max)
	}
	rank := q * float64(s.Count)
	var seen float64
	for _, b := range s.Buckets {
		bc := float64(b.Count)
		if seen+bc >= rank {
			frac := (rank - seen) / bc
			v := float64(b.Lo) + frac*(float64(b.Hi)-float64(b.Lo))
			if v < float64(s.Min) {
				v = float64(s.Min)
			}
			if v > float64(s.Max) {
				v = float64(s.Max)
			}
			return v
		}
		seen += bc
	}
	return float64(s.Max)
}

// Quantile estimates the q-quantile of the histogram's samples; see
// HistogramSnapshot.Quantile. Safe on a nil receiver (returns 0).
func (h *Histogram) Quantile(q float64) float64 {
	return h.Snapshot().Quantile(q)
}

// Registry holds named counters and histograms. Names are created on
// first use and stable for the registry's lifetime. Not goroutine-safe:
// a registry belongs to exactly one simulation run.
type Registry struct {
	counters map[string]*Counter
	hists    map[string]*Histogram
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	if c, ok := r.counters[name]; ok {
		return c
	}
	if _, ok := r.hists[name]; ok {
		panic(fmt.Sprintf("obs: %q already registered as a histogram", name))
	}
	c := &Counter{name: name}
	r.counters[name] = c
	return c
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	if h, ok := r.hists[name]; ok {
		return h
	}
	if _, ok := r.counters[name]; ok {
		panic(fmt.Sprintf("obs: %q already registered as a counter", name))
	}
	h := &Histogram{name: name}
	r.hists[name] = h
	return h
}

// Reset zeroes every counter and histogram, keeping registrations.
func (r *Registry) Reset() {
	for _, c := range r.counters {
		c.v = 0
	}
	for _, h := range r.hists {
		h.reset()
	}
}

// Merge folds every metric of o into r: counters add, histograms merge
// (see Histogram.Merge). Names missing from r are created; a nil o is a
// no-op. The kind-collision panics of Counter/Histogram apply.
func (r *Registry) Merge(o *Registry) {
	if o == nil {
		return
	}
	for name, c := range o.counters {
		r.Counter(name).Add(c.v)
	}
	for name, h := range o.hists {
		r.Histogram(name).Merge(h)
	}
}

// CounterValues returns a copy of all counter values keyed by name.
func (r *Registry) CounterValues() map[string]uint64 {
	out := make(map[string]uint64, len(r.counters))
	for name, c := range r.counters {
		out[name] = c.v
	}
	return out
}

// HistogramSnapshots returns a snapshot of every histogram keyed by name.
func (r *Registry) HistogramSnapshots() map[string]HistogramSnapshot {
	out := make(map[string]HistogramSnapshot, len(r.hists))
	for name, h := range r.hists {
		out[name] = h.Snapshot()
	}
	return out
}

// Names returns all registered metric names, sorted.
func (r *Registry) Names() []string {
	names := make([]string, 0, len(r.counters)+len(r.hists))
	for n := range r.counters {
		names = append(names, n)
	}
	for n := range r.hists {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
