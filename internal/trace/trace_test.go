package trace

import (
	"bytes"
	"testing"

	"fdp/internal/program"
	"fdp/internal/synth"
)

func testWorkload() *synth.Workload {
	p := synth.SpecParams(0)
	p.Name = "trace-test"
	p.Funcs = 60
	return synth.MustGenerate(p, "spec", 0x7ACE)
}

// writeTrace records n instructions of the workload into a buffer.
func writeTrace(t *testing.T, w *synth.Workload, n int) []byte {
	t.Helper()
	var buf bytes.Buffer
	tw, err := NewWriter(&buf, Header{
		Name: w.Name, Class: w.Class, Seed: w.Seed, Entry: w.Entry(),
	}, w.Image())
	if err != nil {
		t.Fatal(err)
	}
	s := w.NewStream()
	for i := 0; i < n; i++ {
		tw.Record(s.Next())
	}
	if tw.Count() != uint64(n) {
		t.Fatalf("Count = %d, want %d", tw.Count(), n)
	}
	if err := tw.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestRoundTrip(t *testing.T) {
	w := testWorkload()
	const n = 20000
	data := writeTrace(t, w, n)
	tr, err := Read(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if tr.Header.Name != w.Name || tr.Header.Class != w.Class || tr.Header.Seed != w.Seed {
		t.Errorf("header = %+v", tr.Header)
	}
	if tr.Len() != n || tr.Header.Instructions != n {
		t.Errorf("Len = %d", tr.Len())
	}
	if tr.Image().Size() != w.Image().Size() || tr.Image().Base() != w.Image().Base() {
		t.Error("image geometry mismatch")
	}
	// Replay must match the original stream exactly.
	orig := w.NewStream()
	replay := tr.NewStream()
	for i := 0; i < n-1; i++ { // last record's NextPC wraps
		a := orig.Next()
		b := replay.Next()
		if a.SI != b.SI || a.Taken != b.Taken || a.NextPC != b.NextPC {
			t.Fatalf("record %d: %+v vs %+v", i, a, b)
		}
	}
}

func TestImageRoundTripTypes(t *testing.T) {
	w := testWorkload()
	data := writeTrace(t, w, 100)
	tr, err := Read(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	mismatch := 0
	w.Image().EachInst(func(si program.StaticInst) {
		got, _ := tr.Image().At(si.PC)
		if got != si {
			mismatch++
		}
	})
	if mismatch != 0 {
		t.Errorf("%d static instructions differ", mismatch)
	}
}

func TestStreamLoops(t *testing.T) {
	w := testWorkload()
	data := writeTrace(t, w, 500)
	tr, err := Read(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	s := tr.NewStream()
	// Consume 3 full passes; must not run out and PCs must chain.
	prev := s.Next()
	for i := 0; i < 1500; i++ {
		d := s.Next()
		if d.SI.PC != prev.NextPC {
			t.Fatalf("chain broken at %d: pc %#x, want %#x", i, d.SI.PC, prev.NextPC)
		}
		prev = d
	}
}

func TestPeeks(t *testing.T) {
	w := testWorkload()
	data := writeTrace(t, w, 5000)
	tr, err := Read(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	s := tr.NewStream()
	checkedDir, checkedTgt := 0, 0
	for i := 0; i < 4000; i++ {
		pc := s.PC()
		si := tr.Image().AtOrSequential(pc)
		var wantDir, haveDir bool
		var wantTgt uint64
		var haveTgt bool
		if si.Type.IsConditional() {
			wantDir = s.PeekDirection(pc)
			haveDir = true
		}
		if si.Type.IsIndirect() {
			wantTgt, haveTgt = s.PeekTarget(pc)
		}
		d := s.Next()
		if haveDir {
			checkedDir++
			if d.Taken != wantDir {
				t.Fatalf("PeekDirection wrong at %d", i)
			}
		}
		if haveTgt {
			checkedTgt++
			if d.NextPC != wantTgt {
				t.Fatalf("PeekTarget wrong at %d", i)
			}
		}
	}
	if checkedDir < 100 {
		t.Errorf("only %d direction peeks", checkedDir)
	}
	if checkedTgt < 5 {
		t.Errorf("only %d target peeks", checkedTgt)
	}
}

func TestPeekMissesOutsideWindow(t *testing.T) {
	w := testWorkload()
	data := writeTrace(t, w, 100)
	tr, _ := Read(bytes.NewReader(data))
	s := tr.NewStream()
	if s.PeekDirection(0xdead_0000) {
		t.Error("peek found phantom branch")
	}
	if _, ok := s.PeekTarget(0xdead_0000); ok {
		t.Error("peek found phantom target")
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	if _, err := Read(bytes.NewReader([]byte("not a trace"))); err == nil {
		t.Error("Read accepted garbage")
	}
	// Valid gzip, wrong magic.
	var buf bytes.Buffer
	data := writeTrace(t, testWorkload(), 10)
	copy(data, data) // no-op; build a corrupted copy below
	corrupt := append([]byte(nil), data...)
	corrupt[len(corrupt)-1] ^= 0xff
	if _, err := Read(bytes.NewReader(corrupt)); err == nil {
		t.Error("Read accepted corrupted trace")
	}
	_ = buf
}

func TestEmptyTraceRejected(t *testing.T) {
	w := testWorkload()
	var buf bytes.Buffer
	tw, err := NewWriter(&buf, Header{Name: "empty", Entry: w.Entry()}, w.Image())
	if err != nil {
		t.Fatal(err)
	}
	tw.Close()
	if _, err := Read(bytes.NewReader(buf.Bytes())); err == nil {
		t.Error("Read accepted empty trace")
	}
}

func TestCompression(t *testing.T) {
	w := testWorkload()
	data := writeTrace(t, w, 100_000)
	// 100K records must compress well below 2 bytes per instruction.
	if perInst := float64(len(data)) / 100_000; perInst > 2 {
		t.Errorf("trace size %.2f bytes/inst", perInst)
	}
}
