// Package cache models the instruction-side memory hierarchy: a generic
// set-associative cache used for the L1I, L2 and LLC tag state, an I-TLB,
// MSHR-style in-flight fill tracking, and a Hierarchy that ties them
// together with fixed per-level latencies. Prefetch fills travel the same
// path as demand fills and are accounted separately so the experiments can
// report tag-probe overheads (Fig. 9) and prefetch usefulness.
package cache

import (
	"fmt"

	"fdp/internal/obs"
)

// LineShift is log2 of the cache line size; all caches use 64-byte lines.
const LineShift = 6

// LineBytes is the cache line size in bytes.
const LineBytes = 1 << LineShift

// LineAddr converts a byte address into a line address (address >> LineShift).
func LineAddr(addr uint64) uint64 { return addr >> LineShift }

// wayMeta is the payload of one cache way; the tag lives in a separate
// packed array (see Cache.tags) so the way-search loop touches only
// contiguous tag words.
type wayMeta struct {
	lru        uint64
	fillAt     uint64 // clock value when the line was filled (probes only)
	prefetched bool   // filled by a prefetch and not yet demanded
}

// Cache is a set-associative tag array with true-LRU replacement. It tracks
// tags only (this is an instruction-side timing model; data values are the
// program image). All addresses passed in are *line* addresses.
type Cache struct {
	name    string
	sets    int
	waysPer int
	setMask uint64
	// tags holds line<<1 | 1 for valid ways and 0 for invalid ones
	// (sets*waysPer, row-major), collapsing the valid check and tag compare
	// into one word comparison.
	tags     []uint64
	meta     []wayMeta
	lruClock uint64

	// obs and clock drive the prefetch-to-use probe: the owning Hierarchy
	// advances clock each cycle (L1I only) and a demand hit on a
	// prefetched line observes clock - fillAt.
	obs   *obs.Probes
	clock uint64

	// Stats.
	Probes     uint64 // tag-array accesses of any kind
	Hits       uint64
	Misses     uint64
	PrefHits   uint64 // demand hits on prefetched lines (useful prefetches)
	Evictions  uint64
	PrefFilled uint64
}

// New creates a cache with the given line capacity and associativity.
// sizeBytes must be a power-of-two multiple of waysPer*LineBytes.
func New(name string, sizeBytes, waysPer int) *Cache {
	if sizeBytes <= 0 || waysPer <= 0 {
		panic(fmt.Sprintf("cache %s: bad geometry size=%d ways=%d", name, sizeBytes, waysPer))
	}
	lines := sizeBytes / LineBytes
	sets := lines / waysPer
	if sets <= 0 || sets&(sets-1) != 0 {
		panic(fmt.Sprintf("cache %s: set count %d not a positive power of two", name, sets))
	}
	return &Cache{
		name:    name,
		sets:    sets,
		waysPer: waysPer,
		setMask: uint64(sets - 1),
		tags:    make([]uint64, sets*waysPer),
		meta:    make([]wayMeta, sets*waysPer),
	}
}

// Name returns the cache's name.
func (c *Cache) Name() string { return c.name }

// Sets returns the number of sets.
func (c *Cache) Sets() int { return c.sets }

// Ways returns the associativity.
func (c *Cache) Ways() int { return c.waysPer }

// SizeBytes returns the capacity in bytes.
func (c *Cache) SizeBytes() int { return c.sets * c.waysPer * LineBytes }

// wayKey packs a line address into its valid-way tag encoding.
func wayKey(line uint64) uint64 { return line<<1 | 1 }

// setBase returns the first way index of line's set.
func (c *Cache) setBase(line uint64) int {
	return int(line&c.setMask) * c.waysPer
}

// Probe looks up a line address, counting a tag access. On a hit it updates
// LRU, clears the prefetched bit (counting a useful prefetch if it was
// set), and returns the hit way index.
func (c *Cache) Probe(line uint64) (hit bool, wayIdx int) {
	c.Probes++
	k := wayKey(line)
	base := c.setBase(line)
	tags := c.tags[base : base+c.waysPer]
	for i := range tags {
		if tags[i] == k {
			c.Hits++
			m := &c.meta[base+i]
			if m.prefetched {
				c.PrefHits++
				m.prefetched = false
				if c.obs != nil {
					c.obs.PrefToUse.Observe(c.clock - m.fillAt)
				}
			}
			c.lruClock++
			m.lru = c.lruClock
			return true, i
		}
	}
	c.Misses++
	return false, -1
}

// Peek reports whether the line is present without disturbing LRU,
// prefetch bits or statistics.
func (c *Cache) Peek(line uint64) bool {
	k := wayKey(line)
	base := c.setBase(line)
	tags := c.tags[base : base+c.waysPer]
	for i := range tags {
		if tags[i] == k {
			return true
		}
	}
	return false
}

// ProbeQuiet is a tag access that counts a probe but does not update LRU or
// prefetched bits. Prefetchers use it to filter redundant prefetches; the
// probe still costs tag-array power (Fig. 9).
func (c *Cache) ProbeQuiet(line uint64) bool {
	c.Probes++
	return c.Peek(line)
}

// Fill inserts a line (replacing LRU), returning the way used. prefetch
// marks the line as prefetched-not-yet-used. Filling a line that is already
// present refreshes it in place.
func (c *Cache) Fill(line uint64, prefetch bool) (wayIdx int) {
	k := wayKey(line)
	base := c.setBase(line)
	tags := c.tags[base : base+c.waysPer]
	victim := 0
	for i := range tags {
		if tags[i] == k {
			m := &c.meta[base+i]
			// Already present: a demand fill clears the prefetched bit.
			if !prefetch {
				m.prefetched = false
			}
			c.lruClock++
			m.lru = c.lruClock
			return i
		}
		if tags[i] == 0 {
			victim = i
		} else if tags[victim] != 0 && c.meta[base+i].lru < c.meta[base+victim].lru {
			victim = i
		}
	}
	if tags[victim] != 0 {
		c.Evictions++
	}
	if prefetch {
		c.PrefFilled++
	}
	c.lruClock++
	tags[victim] = k
	c.meta[base+victim] = wayMeta{prefetched: prefetch, lru: c.lruClock, fillAt: c.clock}
	return victim
}

// Reset invalidates all lines and clears statistics.
func (c *Cache) Reset() {
	for i := range c.tags {
		c.tags[i] = 0
		c.meta[i] = wayMeta{}
	}
	c.lruClock = 0
	c.Probes, c.Hits, c.Misses = 0, 0, 0
	c.PrefHits, c.Evictions, c.PrefFilled = 0, 0, 0
}

// ResetStats clears statistics but keeps cache contents (end of warmup).
func (c *Cache) ResetStats() {
	c.Probes, c.Hits, c.Misses = 0, 0, 0
	c.PrefHits, c.Evictions, c.PrefFilled = 0, 0, 0
}

// TLB is a tiny fully-counted set-associative translation buffer keyed by
// page address. Only timing matters, so it reuses the Cache tag machinery
// with 4KB "lines" mapped onto line addresses.
type TLB struct {
	c         *Cache
	pageShift uint
}

// NewTLB builds a TLB with the given number of entries and associativity.
func NewTLB(entries, ways int) *TLB {
	return &TLB{c: New("itlb", entries*LineBytes, ways), pageShift: 12}
}

// Probe looks up the page of addr, returning hit/miss.
func (t *TLB) Probe(addr uint64) bool {
	hit, _ := t.c.Probe(addr >> t.pageShift)
	return hit
}

// Fill installs the translation for addr's page.
func (t *TLB) Fill(addr uint64) { t.c.Fill(addr>>t.pageShift, false) }

// Reset clears the TLB.
func (t *TLB) Reset() { t.c.Reset() }

// Misses returns the number of TLB misses so far.
func (t *TLB) Misses() uint64 { return t.c.Misses }
