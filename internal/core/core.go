package core

import (
	"context"
	"fmt"

	"fdp/internal/bpred"
	"fdp/internal/btb"
	"fdp/internal/cache"
	"fdp/internal/ftq"
	"fdp/internal/indirect"
	"fdp/internal/obs"
	"fdp/internal/prefetch"
	"fdp/internal/program"
	"fdp/internal/ras"
	"fdp/internal/stats"
	"fdp/internal/xrand"
)

// Oracle is the workload interface the core consumes: the architectural
// instruction stream plus the peek side-channels needed only by the
// idealized configurations (perfect direction / Perfect All / Ideal
// history). synth.Stream implements it.
type Oracle interface {
	program.Stream
	// PC returns the address of the next architectural instruction.
	PC() uint64
	// PeekDirection returns the direction the conditional branch at pc
	// will take on its next execution.
	PeekDirection(pc uint64) bool
	// PeekTarget returns the target the indirect branch at pc will choose
	// on its next execution.
	PeekTarget(pc uint64) (uint64, bool)
}

// uop is one instruction delivered from the frontend to the backend.
type uop struct {
	pc       uint64
	next     uint64 // the frontend's intended successor address
	hint     bool   // direction hint attached in the FTQ
	detected bool   // prediction-time BTB hit
	pfc      bool   // successor came from a PFC re-steer
}

// Core is one simulated processor running one workload.
type Core struct {
	cfg    Config
	oracle Oracle
	img    *program.Image

	// Memory system.
	hier *cache.Hierarchy
	itlb *cache.TLB

	// Predictors.
	dir      bpred.DirPredictor
	tage     *bpred.TAGE // non-nil when dir is a plain TAGE (devirtualized hot path)
	tb       btb.TargetBuffer
	realBTB  *btb.BTB        // nil under PerfectBTB, TwoLevel and BasicBlock
	twoLevel *btb.TwoLevel   // nil unless the two-level extension is on
	bb       *btb.BasicBlock // nil unless BasicBlockBTB is on
	it       *indirect.ITTAGE

	// Basic-block walk state (speculative side).
	bbValid       bool
	bbExpectStart uint64
	bbBranchPC    uint64
	bbType        program.InstType
	bbTarget      uint64
	// archBlockStart tracks the current basic block at dispatch for
	// BB-BTB allocation.
	archBlockStart uint64

	// Speculative (frontend) and architectural (backend) history state.
	histSpec *bpred.History
	histArch *bpred.History
	rasSpec  *ras.RAS
	rasArch  *ras.RAS

	// Frontend.
	q              *ftq.FTQ
	specPC         uint64
	predStallUntil uint64
	// readyQ lists the FTQ entries still in StateReady, oldest first, so
	// the fill stage scans only them instead of striding over the whole
	// (wide) entry ring. Entries never re-enter StateReady: the queue grows
	// on push, shrinks when the fill stage transitions an entry, and is
	// cleared by queue truncation (PFC, history fixup, flush). Pointers
	// stay valid because the FTQ ring never reallocates and ready entries
	// are never popped or reused while listed.
	readyQ []*ftq.Entry

	// Decode queue (ring).
	dq     []uop
	dqHead int
	dqLen  int

	// Prefetch.
	pf      prefetch.Prefetcher
	pfQueue []uint64
	// emit is the bound emitPF method value, created once: passing
	// c.emitPF at a call site would allocate a fresh closure every call.
	emit prefetch.Emit

	// Backend.
	data          *dataSide // nil unless Config.DataModel
	diverged      bool
	flushAt       uint64
	flushTo       uint64
	blockedUntil  uint64
	stallRng      *xrand.SplitMix64
	retired       uint64
	wrongPathDisp uint64

	// Clock and stats.
	now        uint64
	run        *stats.Run
	obs        *obs.Probes // nil unless Observe attached a probe set
	hb         *Heartbeat  // nil unless a watchdog heartbeat is attached
	check      *checker    // nil unless -check invariant mode is on
	fillBuf    []cache.Fill
	winStart   uint64 // cycle at the start of the current IPC window
	winRetired uint64 // retired count at the start of the window

	// Cycle-accounting state (see account.go). acctMSHRFull marks that a
	// demand fill was refused by full MSHRs this cycle; lastResteer records
	// which redirect kind charged the current predStallUntil window; the
	// iv* fields are the delta baselines of the interval time-series.
	acctMSHRFull bool
	lastResteer  resteerCause
	ivCycle      uint64
	ivRetired    uint64
	ivMisses     uint64
	ivAcct       [obs.NumAcctBuckets]uint64

	// debugMispred, when set, observes every misprediction (tests only).
	debugMispred func(u uop, dyn program.DynInst)
}

// New builds a core for the given configuration and workload oracle.
func New(cfg Config, oracle Oracle) (*Core, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	c := &Core{
		cfg:      cfg,
		oracle:   oracle,
		img:      oracle.Image(),
		itlb:     cache.NewTLB(cfg.ITLBEntries, cfg.ITLBWays),
		q:        ftq.New(cfg.FTQEntries),
		readyQ:   make([]*ftq.Entry, 0, cfg.FTQEntries),
		dq:       make([]uop, cfg.DecodeQueueCap),
		rasSpec:  ras.New(cfg.RASDepth),
		rasArch:  ras.New(cfg.RASDepth),
		stallRng: xrand.New(0x57a11),
		run:      &stats.Run{Config: cfg.Name},
		specPC:   oracle.PC(),
	}
	c.hier = cache.NewHierarchy(cfg.L1IBytes, cfg.L1IWays, cfg.L2Bytes, cfg.L2Ways,
		cfg.LLCBytes, cfg.LLCWays, cfg.MSHRs, cfg.Lat)

	switch cfg.Dir {
	case DirTAGE9:
		c.tage = bpred.NewTAGE(bpred.TAGE9KB())
		c.dir = c.tage
	case DirTAGE18, "":
		c.tage = bpred.NewTAGE(bpred.TAGE18KB())
		c.dir = c.tage
	case DirTAGE36:
		c.tage = bpred.NewTAGE(bpred.TAGE36KB())
		c.dir = c.tage
	case DirGshare:
		c.dir = bpred.Gshare8KB()
	case DirPerceptron:
		c.dir = bpred.Perceptron8KB()
	case DirTAGESCL24:
		c.dir = bpred.TAGESCL24KB()
	case DirTAGESCL64:
		c.dir = bpred.TAGESCL64KB()
	case DirPerfect:
		c.dir = &bpred.PerfectDir{Oracle: oracle.PeekDirection}
	default:
		return nil, fmt.Errorf("core: unknown direction predictor %q", cfg.Dir)
	}

	switch {
	case cfg.PerfectBTB:
		c.tb = btb.NewPerfect(c.img)
	case cfg.BasicBlockBTB:
		c.bb = btb.NewBasicBlock(cfg.BTBEntries, cfg.BTBWays)
		c.bbExpectStart = c.specPC
		c.archBlockStart = c.specPC
	case cfg.L1BTBEntries > 0:
		c.twoLevel = btb.NewTwoLevel(cfg.L1BTBEntries, cfg.L1BTBWays, cfg.BTBEntries, cfg.BTBWays)
		c.tb = c.twoLevel
	default:
		c.realBTB = btb.New(cfg.BTBEntries, cfg.BTBWays)
		c.tb = c.realBTB
	}
	c.it = indirect.New(indirect.DefaultConfig())

	// Assemble the shared history: the direction predictor's folds first,
	// then ITTAGE's.
	specs := c.dir.Specs()
	c.dir.Bind(0)
	c.it.Bind(len(specs))
	specs = append(specs, c.it.Specs()...)
	c.histSpec = bpred.NewHistory(specs)
	c.histArch = bpred.NewHistory(specs)

	if cfg.DataModel {
		c.data = newDataSide(&cfg)
	}
	pf, err := prefetch.Build(cfg.Prefetcher)
	if err != nil {
		return nil, err
	}
	if _, isNone := pf.(prefetch.None); !isNone {
		c.pf = pf
		c.pfQueue = make([]uint64, 0, cfg.PrefetchQueueCap)
		c.emit = c.emitPF
	}
	return c, nil
}

// Now returns the current cycle.
func (c *Core) Now() uint64 { return c.now }

// Retired returns the number of retired (correct-path) instructions.
func (c *Core) Retired() uint64 { return c.retired }

// Stats returns the active statistics record.
func (c *Core) Stats() *stats.Run { return c.run }

// Prefetcher returns the attached prefetcher, or nil.
func (c *Core) Prefetcher() prefetch.Prefetcher { return c.pf }

// Observe attaches an observability probe set to the machine: per-cycle
// FTQ/MSHR occupancy, PFC re-steer depth, L1I miss latency and
// prefetch-to-use histograms, plus pipeline events when the probe set has
// a tracer. Attach before Run; a nil probe set detaches everything and
// the hot path degenerates to one nil check per probe site.
func (c *Core) Observe(p *obs.Probes) {
	c.obs = p
	c.hier.Observe(p)
	if p == nil {
		c.q.SetTrace(nil)
		return
	}
	c.q.SetTrace(p.Tracer)
	if c.pf != nil {
		c.pf = prefetch.Instrument(c.pf, p.Reg)
	}
}

// ipcWindow is the sampling interval for the IPC timeline.
const ipcWindow = 10_000

// cycle advances the machine one clock.
func (c *Core) cycle() {
	c.now++
	c.acctMSHRFull = false
	if c.obs != nil {
		c.obs.Tracer.SetCycle(c.now)
	}
	c.completeFills()
	c.fetchStage()
	c.fillStage()
	c.predictStage()
	c.dispatchStage()

	if c.dqLen < c.cfg.DecodeWidth {
		c.run.StarvationCycles++
	}
	c.accountCycle()
	c.run.FTQOccupancySum += uint64(c.q.Len())
	if c.obs != nil {
		// Same sampling point as FTQOccupancySum, so the histogram mean
		// matches MeanFTQOccupancy.
		c.obs.FTQOcc.Observe(uint64(c.q.Len()))
		if iv := c.obs.Intervals; iv != nil && c.now-c.ivCycle >= iv.Every() {
			c.snapshotInterval(iv)
		}
	}

	if c.retired-c.winRetired >= ipcWindow {
		if dc := c.now - c.winStart; dc > 0 {
			c.run.WindowIPC = append(c.run.WindowIPC, float64(c.retired-c.winRetired)/float64(dc))
		}
		c.winStart = c.now
		c.winRetired = c.retired
	}

	if c.check != nil {
		c.checkCycle()
	}
}

// Step runs n cycles (exposed for tests and interactive tools).
func (c *Core) Step(n int) {
	for i := 0; i < n; i++ {
		c.cycle()
	}
}

// Run simulates warmup retired instructions, resets statistics, then
// simulates measure more and returns the measurement record.
func (c *Core) Run(warmup, measure uint64) (*stats.Run, error) {
	return c.RunContext(context.Background(), warmup, measure)
}

// ctxCheckInterval is how often (in cycles) RunContext polls the context.
// A power of two keeps the check a single mask in the cycle loop; 16K
// cycles is microseconds of wall time, so cancellation is prompt without
// the poll ever showing up in profiles.
const ctxCheckInterval = 1 << 14

// RunContext is Run with cooperative cancellation: the cycle loop polls
// ctx every ctxCheckInterval cycles and returns ctx.Err() once it is
// done. The poll is allocation-free, so the steady-state cycle loop stays
// at zero allocs/op.
func (c *Core) RunContext(ctx context.Context, warmup, measure uint64) (*stats.Run, error) {
	if err := c.runUntil(ctx, c.retired+warmup); err != nil {
		return nil, err
	}
	c.resetStats()
	// The IPC timeline length is known up front; reserving it keeps the
	// measurement loop free of append-driven reallocation.
	c.run.WindowIPC = make([]float64, 0, measure/ipcWindow+1)
	startCycles := c.now
	startRetired := c.retired
	if err := c.runUntil(ctx, startRetired+measure); err != nil {
		return nil, err
	}
	c.run.Cycles = c.now - startCycles
	c.run.Instructions = c.retired - startRetired
	c.finalize()
	return c.run, nil
}

func (c *Core) runUntil(ctx context.Context, target uint64) error {
	// Background and TODO contexts have a nil Done channel; hoisting it
	// makes the uncancellable path a single nil check per poll.
	done := ctx.Done()
	c.hb.Beat(c.now) // stamp liveness before the first poll interval
	lastRetired := c.retired
	idle := 0
	for c.retired < target {
		c.cycle()
		if c.check != nil && c.check.err != nil {
			return c.check.err
		}
		if c.now&(ctxCheckInterval-1) == 0 {
			c.hb.Beat(c.now)
			if done != nil {
				select {
				case <-done:
					return ctx.Err()
				default:
				}
			}
		}
		if c.retired == lastRetired {
			idle++
			if idle > 1_000_000 {
				return fmt.Errorf("core: no forward progress for 1M cycles at cycle %d (pc %#x, ftq %d, dq %d)",
					c.now, c.specPC, c.q.Len(), c.dqLen)
			}
		} else {
			idle = 0
			lastRetired = c.retired
		}
	}
	return nil
}

func (c *Core) resetStats() {
	c.hier.ResetStats()
	if c.bb != nil {
		c.bb.ResetStats()
	} else {
		c.tb.ResetStats()
	}
	old := c.run
	c.run = &stats.Run{Config: old.Config, Workload: old.Workload, Class: old.Class}
	c.wrongPathDisp = 0
	c.winStart = c.now
	c.winRetired = c.retired
	c.obs.Reset()
	c.rebaseIntervals()
	if c.check != nil {
		// Re-anchor the accounting-conservation baseline: the reset just
		// zeroed the accounting vector.
		c.check.baseCycle = c.now
	}
}

// finalize folds cache-level counters into the run record.
func (c *Core) finalize() {
	if c.obs != nil {
		// Flush the trailing partial interval so the time-series records
		// partition the run exactly (their sums match the run totals).
		if iv := c.obs.Intervals; iv != nil && c.now > c.ivCycle {
			c.snapshotInterval(iv)
		}
	}
	c.run.L1ITagProbes = c.hier.L1I.Probes
	c.run.PrefetchUseful = c.hier.L1I.PrefHits
	if c.bb != nil {
		c.run.BTBLookups = c.bb.Lookups()
		c.run.BTBHits = c.bb.Hits()
	} else {
		c.run.BTBLookups = c.tb.Lookups()
		c.run.BTBHits = c.tb.Hits()
	}
}

// DebugMemStats exposes lower-level cache hit/miss counts for calibration
// and tests.
func (c *Core) DebugMemStats() (l2Hits, l2Misses, llcHits, llcMisses, memAccesses uint64) {
	return c.hier.L2.Hits, c.hier.L2.Misses, c.hier.LLC.Hits, c.hier.LLC.Misses, c.hier.MemAccesses
}

// SetWorkloadName labels the statistics record.
func (c *Core) SetWorkloadName(name string) { c.run.Workload = name }

// SimulateDebug runs like Simulate but tallies mispredictions by branch
// type into byType (tests and calibration only).
func SimulateDebug(cfg Config, oracle Oracle, workload string, warmup, measure uint64, byType map[string]int) (*stats.Run, error) {
	c, err := New(cfg, oracle)
	if err != nil {
		return nil, err
	}
	c.SetWorkloadName(workload)
	c.debugMispred = func(u uop, dyn program.DynInst) {
		key := dyn.SI.Type.String()
		if dyn.SI.Type.IsConditional() {
			if !u.detected {
				key += "-undet"
			}
		}
		byType[key]++
	}
	return c.Run(warmup, measure)
}

// Simulate is the package-level convenience: build a core, run it, and
// return the measurement record.
func Simulate(cfg Config, oracle Oracle, workload string, warmup, measure uint64) (*stats.Run, error) {
	return SimulateObserved(cfg, oracle, workload, warmup, measure, nil)
}

// SimulateObserved is Simulate with an observability probe set attached
// (nil behaves exactly like Simulate). Warmup activity is cleared from
// the probes when measurement starts.
func SimulateObserved(cfg Config, oracle Oracle, workload string, warmup, measure uint64, p *obs.Probes) (*stats.Run, error) {
	return SimulateContext(context.Background(), cfg, oracle, workload, warmup, measure, p)
}

// SimulateContext is SimulateObserved with cooperative cancellation: once
// ctx is done the cycle loop stops at the next poll (every
// ctxCheckInterval cycles) and the run's ctx.Err() is returned. This is
// what lets a parallel scheduler abandon in-flight simulations on first
// error instead of letting them run to completion.
func SimulateContext(ctx context.Context, cfg Config, oracle Oracle, workload string, warmup, measure uint64, p *obs.Probes) (*stats.Run, error) {
	return SimulateOptions(ctx, cfg, oracle, workload, warmup, measure, SimOptions{Probes: p})
}

// SimOptions bundles the optional attachments of one simulation: an
// observability probe set, a watchdog heartbeat, and online invariant
// checking. None of them change the simulated machine — results are
// identical with every combination — which is what lets the runner cache
// results regardless of how the run was supervised.
type SimOptions struct {
	// Probes, when non-nil, attaches an observability probe set (exactly
	// like SimulateObserved's p).
	Probes *obs.Probes
	// Heartbeat, when non-nil, is stamped with the current cycle at every
	// context-poll point so an external watchdog can detect a hung run.
	Heartbeat *Heartbeat
	// Check enables per-cycle online invariant checking (see
	// Core.EnableChecks); violations stop the run with an error wrapping
	// ErrInvariant.
	Check bool
	// FastForward replaces cycle-accurate warmup with functional
	// fast-forward warmup (see Core.FastForward). Unlike the other options
	// this DOES change the simulated result: training semantics differ
	// from cycle-accurate warmup, so runs using it carry a distinct
	// identity in the runner's result cache.
	FastForward bool
	// Phase, when non-nil, is called at the coarse lifecycle boundaries
	// of the fast-forward and checkpoint entry points: "ffwd" or
	// "restore" when warmup-state resolution starts, then "measure" when
	// the measured simulation starts. Purely observational — the runner
	// turns the callbacks into timeline spans. The plain cycle-accurate
	// path never calls it (warmup and measurement share one RunContext
	// call there, which the caller times as a whole).
	Phase func(phase string)
}

// phase invokes o.Phase if set.
func (o *SimOptions) phase(name string) {
	if o.Phase != nil {
		o.Phase(name)
	}
}

// SimulateOptions is the fully-optioned simulation entry point: build a
// core, attach everything in o, run it under ctx, and return the
// measurement record.
func SimulateOptions(ctx context.Context, cfg Config, oracle Oracle, workload string, warmup, measure uint64, o SimOptions) (*stats.Run, error) {
	c, err := New(cfg, oracle)
	if err != nil {
		return nil, err
	}
	c.SetWorkloadName(workload)
	if o.Probes != nil {
		c.Observe(o.Probes)
	}
	c.hb = o.Heartbeat
	if o.Check {
		c.EnableChecks()
	}
	if o.FastForward {
		o.phase("ffwd")
		if err := c.FastForward(ctx, warmup); err != nil {
			return nil, err
		}
		o.phase("measure")
		return c.RunContext(ctx, 0, measure)
	}
	return c.RunContext(ctx, warmup, measure)
}

// Manifest packages a finished observed run into a single JSON-ready
// document: configuration, workload identity, all stats counters and
// derived rates, and every registry metric from the probe set.
func Manifest(cfg Config, r *stats.Run, p *obs.Probes, seed, warmup, measure uint64) *obs.Manifest {
	return obs.NewManifest(obs.RunInfo{
		Workload: r.Workload,
		Class:    r.Class,
		Seed:     seed,
		Warmup:   warmup,
		Measure:  measure,
		Config:   cfg,
	}, p, r.Counters(), r.Derived())
}
