package experiments

import (
	"testing"

	"fdp/internal/repro"
)

// TestHeadlineShapes asserts the paper's load-bearing shape claims at
// quick scale by evaluating the internal/repro contract registry — the
// exact thresholds `make repro-check` gates CI on, so the test and the
// gate cannot drift apart (see docs/CALIBRATION.md). Hard failures fail
// the test; warn-severity misses are only logged. This is the
// reproduction's acceptance test; it takes a couple of minutes, so it
// is skipped under -short.
func TestHeadlineShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("headline shapes need quick-scale runs")
	}
	card, err := Score(QuickOptions())
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range card.Artifacts {
		for _, o := range a.Outcomes {
			switch o.Status {
			case repro.StatusFail:
				t.Errorf("%s/%s: %s\n  claim: %s", a.Artifact, o.ID, o.Detail, o.Claim)
			case repro.StatusWarn:
				t.Logf("warn: %s/%s: %s", a.Artifact, o.ID, o.Detail)
			}
		}
	}
	t.Log(card.Summary())
}
