package obs

import (
	"strings"
	"sync"
)

// DefaultIntervalRingCap is the per-run ring capacity an IntervalStore
// uses when none is given: at the default snapshot window this buffers
// the most recent few hundred million cycles of each run, plenty for a
// dashboard tail while bounding memory for arbitrarily long campaigns.
const DefaultIntervalRingCap = 4096

// IntervalStore is a concurrency-safe, ring-buffered in-memory store of
// interval time-series for a whole campaign, keyed by run id (the spec
// key). Simulation workers feed it live through the IntervalTee handles
// returned by StartRun (wired into each run's IntervalRecorder), and the
// HTTP monitor reads concurrently via Runs/Read — including blocking
// follow-mode tails built on Watch.
//
// Records are sequence-numbered per run. The ring keeps the most recent
// capacity records; readers that fall behind (or arrive late) skip the
// dropped prefix and resume at the oldest buffered record. A warmup
// reset clears the buffer but keeps the sequence monotonic, so follower
// cursors stay valid across the warmup/measure boundary.
type IntervalStore struct {
	mu     sync.Mutex
	perRun int
	order  []*IntervalRun
	byID   map[string]*IntervalRun
	change chan struct{}
}

// NewIntervalStore creates a store whose per-run rings hold perRun
// records (DefaultIntervalRingCap when perRun <= 0).
func NewIntervalStore(perRun int) *IntervalStore {
	if perRun <= 0 {
		perRun = DefaultIntervalRingCap
	}
	return &IntervalStore{
		perRun: perRun,
		byID:   make(map[string]*IntervalRun),
		change: make(chan struct{}),
	}
}

// IntervalRunMeta is the serializable index entry of one stored run.
type IntervalRunMeta struct {
	// ID is the run's stable identity: the runner spec key.
	ID string `json:"id"`
	// Run is the human "config/workload" label.
	Run string `json:"run"`
	// Every is the snapshot window in cycles.
	Every uint64 `json:"every"`
	// Records is the total number of records ever recorded, including
	// ones that have since been dropped from the ring or cleared by a
	// warmup reset; it is the next record's sequence number.
	Records uint64 `json:"records"`
	// Buffered is how many of those are currently readable.
	Buffered int `json:"buffered"`
	// Resets counts warmup-boundary buffer clears.
	Resets int `json:"resets"`
	// Done reports whether the run has finished feeding the store.
	Done bool `json:"done"`
}

// IntervalRun is one run's live ring inside an IntervalStore. It is the
// store-side IntervalTee: attach it to the run's IntervalRecorder with
// SetTee and every snapshot streams into the ring as it is taken. All
// methods are safe for concurrent use (they lock the owning store) and
// safe on a nil receiver.
type IntervalRun struct {
	store *IntervalStore
	meta  IntervalRunMeta
	buf   []IntervalRecord // ring contents, oldest at head
	head  int
}

// StartRun registers (or restarts, on a retry attempt) the run with the
// given id and label and returns its tee handle. Restarting clears the
// buffered records and marks the run live again but keeps the sequence
// numbering monotonic, so followers of the first attempt resume cleanly
// on the second. Safe on a nil store (returns a nil handle, whose
// methods are all no-ops).
func (s *IntervalStore) StartRun(id, label string, every uint64) *IntervalRun {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	r, ok := s.byID[id]
	if !ok {
		r = &IntervalRun{store: s, meta: IntervalRunMeta{ID: id}}
		s.byID[id] = r
		s.order = append(s.order, r)
	}
	r.meta.Run = label
	r.meta.Every = every
	r.meta.Done = false
	r.buf = r.buf[:0]
	r.head = 0
	s.notifyLocked()
	return r
}

// notifyLocked wakes all Watch waiters. Callers hold s.mu.
func (s *IntervalStore) notifyLocked() {
	close(s.change)
	s.change = make(chan struct{})
}

// Watch returns a channel that is closed on the next store change (any
// record, reset, registration or finish). Grab the channel *before*
// reading, then wait on it if the read came up empty — that ordering
// cannot miss an update. Safe on a nil store (returns nil, which blocks
// forever; guard with a context).
func (s *IntervalStore) Watch() <-chan struct{} {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.change
}

// RecordInterval appends one snapshot to the run's ring, dropping the
// oldest buffered record once the ring is full.
func (r *IntervalRun) RecordInterval(rec IntervalRecord) {
	if r == nil {
		return
	}
	s := r.store
	s.mu.Lock()
	if len(r.buf) < s.perRun {
		r.buf = append(r.buf, rec)
	} else {
		r.buf[r.head] = rec
		r.head++
		if r.head == len(r.buf) {
			r.head = 0
		}
	}
	r.meta.Records++
	s.notifyLocked()
	s.mu.Unlock()
}

// ResetIntervals clears the buffered records at the warmup/measure
// boundary. The sequence stays monotonic: cleared records count as
// consumed, so followers simply see measurement records next.
func (r *IntervalRun) ResetIntervals() {
	if r == nil {
		return
	}
	s := r.store
	s.mu.Lock()
	r.buf = r.buf[:0]
	r.head = 0
	r.meta.Resets++
	s.notifyLocked()
	s.mu.Unlock()
}

// Finish marks the run complete; followers drain and stop.
func (r *IntervalRun) Finish() {
	if r == nil {
		return
	}
	s := r.store
	s.mu.Lock()
	r.meta.Done = true
	s.notifyLocked()
	s.mu.Unlock()
}

// metaLocked returns the run's meta with the derived Buffered field
// filled in. Callers hold the store lock.
func (r *IntervalRun) metaLocked() IntervalRunMeta {
	m := r.meta
	m.Buffered = len(r.buf)
	return m
}

// Runs returns the index of all registered runs, in registration order.
// Safe on a nil store.
func (s *IntervalStore) Runs() []IntervalRunMeta {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]IntervalRunMeta, len(s.order))
	for i, r := range s.order {
		out[i] = r.metaLocked()
	}
	return out
}

// Run returns the index entry of one run by exact id.
func (s *IntervalStore) Run(id string) (IntervalRunMeta, bool) {
	if s == nil {
		return IntervalRunMeta{}, false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	r, ok := s.byID[id]
	if !ok {
		return IntervalRunMeta{}, false
	}
	return r.metaLocked(), true
}

// Resolve maps a query to a run id: an exact id match wins, then an
// exact label match, then a unique id prefix (spec keys are hex hashes,
// so short prefixes are handy at the curl prompt). Ambiguous or unknown
// queries return ok=false.
func (s *IntervalStore) Resolve(q string) (string, bool) {
	if s == nil || q == "" {
		return "", false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.byID[q]; ok {
		return q, true
	}
	for _, r := range s.order {
		if r.meta.Run == q {
			return r.meta.ID, true
		}
	}
	var match string
	for _, r := range s.order {
		if strings.HasPrefix(r.meta.ID, q) {
			if match != "" {
				return "", false // ambiguous
			}
			match = r.meta.ID
		}
	}
	return match, match != ""
}

// Read returns the run's buffered records with sequence number >= from,
// the cursor to pass next time, and whether the run has finished.
// Records already dropped from the ring are skipped (the cursor jumps
// forward past them). ok=false means the id is unknown.
func (s *IntervalStore) Read(id string, from uint64) (recs []IntervalRecord, next uint64, done, ok bool) {
	if s == nil {
		return nil, from, false, false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	r, exists := s.byID[id]
	if !exists {
		return nil, from, false, false
	}
	first := r.meta.Records - uint64(len(r.buf))
	if from < first {
		from = first
	}
	if from < r.meta.Records {
		n := int(r.meta.Records - from)
		recs = make([]IntervalRecord, 0, n)
		base := int(from - first)
		for i := 0; i < n; i++ {
			idx := r.head + base + i
			if idx >= len(r.buf) {
				idx -= len(r.buf)
			}
			recs = append(recs, r.buf[idx])
		}
	}
	return recs, r.meta.Records, r.meta.Done, true
}
