package btb

import "fdp/internal/program"

// TwoLevel is a two-level BTB hierarchy, the organization the paper notes
// commercial CPUs use (§II-A, "similar to the multi-level cache hierarchy,
// the multi-level BTB hierarchy can be implemented"): a small fast L1 BTB
// backed by the large L2 BTB. Lookups that are served by the L2 promote
// the entry into the L1 and are flagged so the frontend can charge the
// extra redirect latency (LastFromL2).
type TwoLevel struct {
	l1 *BTB
	l2 *BTB

	// LastFromL2 reports whether the most recent hit was served by the
	// L2 (and therefore pays the slower redirect). Cleared on L1 hits.
	LastFromL2 bool

	// Promotions counts L2->L1 entry promotions.
	Promotions uint64

	lookups uint64
	hits    uint64
}

// NewTwoLevel builds the hierarchy from entry counts and associativities.
func NewTwoLevel(l1Entries, l1Ways, l2Entries, l2Ways int) *TwoLevel {
	return &TwoLevel{l1: New(l1Entries, l1Ways), l2: New(l2Entries, l2Ways)}
}

// Name implements TargetBuffer.
func (t *TwoLevel) Name() string { return "btb-2level" }

// L1 exposes the first level (tests, stats).
func (t *TwoLevel) L1() *BTB { return t.l1 }

// L2 exposes the second level (tests, stats).
func (t *TwoLevel) L2() *BTB { return t.l2 }

// Lookup implements TargetBuffer.
func (t *TwoLevel) Lookup(pc uint64) (program.InstType, uint64, bool) {
	t.lookups++
	if ty, tgt, ok := t.l1.Lookup(pc); ok {
		t.hits++
		t.LastFromL2 = false
		return ty, tgt, true
	}
	if ty, tgt, ok := t.l2.Lookup(pc); ok {
		t.hits++
		t.LastFromL2 = true
		t.Promotions++
		t.l1.Insert(pc, ty, tgt)
		return ty, tgt, true
	}
	return program.NonBranch, 0, false
}

// Insert implements TargetBuffer: new branches land in both levels (the
// L1 as the hot set, the L2 as the backing store).
func (t *TwoLevel) Insert(pc uint64, ty program.InstType, target uint64) {
	t.l1.Insert(pc, ty, target)
	t.l2.Insert(pc, ty, target)
}

// Lookups implements TargetBuffer.
func (t *TwoLevel) Lookups() uint64 { return t.lookups }

// Hits implements TargetBuffer.
func (t *TwoLevel) Hits() uint64 { return t.hits }

// ResetStats implements TargetBuffer.
func (t *TwoLevel) ResetStats() {
	t.lookups, t.hits, t.Promotions = 0, 0, 0
	t.l1.ResetStats()
	t.l2.ResetStats()
}
