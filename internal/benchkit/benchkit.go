// Package benchkit is the measurement and regression-checking machinery
// behind cmd/bench and the committed BENCH_kernel.json document: warmup
// and repetition control, robust summary statistics (median, 95%
// confidence interval), a JSON report format, and a tolerance-based diff
// that turns two reports into a pass/fail regression verdict.
//
// The design splits cleanly into measurement (Measure, Summarize) and
// comparison (Diff): cmd/bench measures a fresh Report and Diff compares
// it — or two committed files — against a pinned baseline. Medians are
// compared rather than means so one noisy repetition cannot flip a
// verdict.
package benchkit

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"sort"
)

// Metric directions: whether a larger or a smaller value is better.
const (
	Higher = "higher"
	Lower  = "lower"
)

// Metric declares one measured quantity: its name in the report, its
// unit, and which direction is an improvement.
type Metric struct {
	Name   string
	Unit   string
	Better string // Higher or Lower
}

// Summary is the repetition statistics of one metric.
type Summary struct {
	Unit   string  `json:"unit,omitempty"`
	Better string  `json:"better"`
	Median float64 `json:"median"`
	Mean   float64 `json:"mean"`
	Min    float64 `json:"min"`
	Max    float64 `json:"max"`
	// CI95Lo/CI95Hi bound the mean with a normal-approximation 95%
	// confidence interval (mean ± 1.96·s/√n); equal to the mean when n=1.
	CI95Lo float64 `json:"ci95_lo"`
	CI95Hi float64 `json:"ci95_hi"`
	N      int     `json:"n"`
}

// Summarize computes the repetition statistics of one metric's samples.
// It panics on an empty slice: a benchmark with zero measured reps is a
// harness bug, not a data condition.
func Summarize(samples []float64) Summary {
	if len(samples) == 0 {
		panic("benchkit: Summarize on zero samples")
	}
	s := append([]float64(nil), samples...)
	sort.Float64s(s)
	n := len(s)
	med := s[n/2]
	if n%2 == 0 {
		med = (s[n/2-1] + s[n/2]) / 2
	}
	var sum float64
	for _, v := range s {
		sum += v
	}
	mean := sum / float64(n)
	var sq float64
	for _, v := range s {
		d := v - mean
		sq += d * d
	}
	half := 0.0
	if n > 1 {
		sd := math.Sqrt(sq / float64(n-1))
		half = 1.96 * sd / math.Sqrt(float64(n))
	}
	return Summary{
		Median: med, Mean: mean, Min: s[0], Max: s[n-1],
		CI95Lo: mean - half, CI95Hi: mean + half, N: n,
	}
}

// Benchmark is one named benchmark's summarized metrics.
type Benchmark struct {
	Metrics map[string]Summary `json:"metrics"`
}

// Measure runs fn warmup+reps times, discards the warmup runs, and
// summarizes each declared metric across the measured repetitions. Every
// run must report every declared metric.
func Measure(warmup, reps int, decls []Metric, fn func() map[string]float64) (Benchmark, error) {
	if reps < 1 {
		return Benchmark{}, fmt.Errorf("benchkit: reps = %d, need >= 1", reps)
	}
	for i := 0; i < warmup; i++ {
		fn()
	}
	samples := make(map[string][]float64, len(decls))
	for i := 0; i < reps; i++ {
		got := fn()
		for _, d := range decls {
			v, ok := got[d.Name]
			if !ok {
				return Benchmark{}, fmt.Errorf("benchkit: run %d missing metric %q", i, d.Name)
			}
			samples[d.Name] = append(samples[d.Name], v)
		}
	}
	b := Benchmark{Metrics: make(map[string]Summary, len(decls))}
	for _, d := range decls {
		s := Summarize(samples[d.Name])
		s.Unit, s.Better = d.Unit, d.Better
		b.Metrics[d.Name] = s
	}
	return b, nil
}

// Report is the result of one full suite run.
type Report struct {
	Label      string               `json:"label,omitempty"`
	GoVersion  string               `json:"go_version,omitempty"`
	Benchmarks map[string]Benchmark `json:"benchmarks"`
}

// File is the committed benchmark document (BENCH_kernel.json): the
// pinned baseline measured before an optimization pass, and the current
// results of the same suite after it.
type File struct {
	Schema   int     `json:"schema"`
	Baseline *Report `json:"baseline,omitempty"`
	Current  *Report `json:"current"`
}

// FileSchema is the current File document version.
const FileSchema = 1

// Encode renders the document as canonical indented JSON with a trailing
// newline (maps marshal with sorted keys, so encoding is deterministic).
func (f *File) Encode() ([]byte, error) {
	b, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// Load reads and validates a committed benchmark document.
func Load(path string) (*File, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f File
	if err := json.Unmarshal(b, &f); err != nil {
		return nil, fmt.Errorf("benchkit: %s: %w", path, err)
	}
	if f.Schema != FileSchema {
		return nil, fmt.Errorf("benchkit: %s: schema %d, want %d", path, f.Schema, FileSchema)
	}
	if f.Current == nil {
		return nil, fmt.Errorf("benchkit: %s: no current report", path)
	}
	return &f, nil
}

// Regression reasons.
const (
	ReasonWorse            = "worse"             // beyond tolerance in the bad direction
	ReasonMissingBenchmark = "missing-benchmark" // baseline benchmark absent from current
	ReasonMissingMetric    = "missing-metric"    // baseline metric absent from current
	ReasonNotFinite        = "not-finite"        // NaN or Inf median on either side
)

// Regression is one way the current report fails to match its baseline.
type Regression struct {
	Benchmark string  `json:"benchmark"`
	Metric    string  `json:"metric,omitempty"`
	Reason    string  `json:"reason"`
	Baseline  float64 `json:"baseline,omitempty"`
	Current   float64 `json:"current,omitempty"`
	// Delta is the fractional change in the worsening direction (positive
	// means worse); for a zero baseline it is the absolute current value.
	Delta float64 `json:"delta,omitempty"`
}

func (r Regression) String() string {
	switch r.Reason {
	case ReasonWorse:
		return fmt.Sprintf("%s/%s: %g -> %g (%.1f%% worse)", r.Benchmark, r.Metric, r.Baseline, r.Current, 100*r.Delta)
	case ReasonMissingMetric:
		return fmt.Sprintf("%s/%s: metric missing from current report", r.Benchmark, r.Metric)
	case ReasonMissingBenchmark:
		return fmt.Sprintf("%s: benchmark missing from current report", r.Benchmark)
	default:
		return fmt.Sprintf("%s/%s: %s (baseline %g, current %g)", r.Benchmark, r.Metric, r.Reason, r.Baseline, r.Current)
	}
}

// Diff compares the medians of every baseline metric against the current
// report under a fractional tolerance and returns the regressions, sorted
// by benchmark then metric. A metric regresses when it moves beyond
// tolerance in its declared bad direction; improvements of any size and
// benchmarks only present in the current report are ignored. When the
// baseline median is zero the tolerance acts as an absolute allowance
// (for Lower-better metrics such as allocation counts, any current value
// above tol fails). Exactly-at-tolerance passes. Non-finite medians are
// reported as regressions: a NaN must never certify a run as clean.
func Diff(baseline, current *Report, tol float64) ([]Regression, error) {
	if baseline == nil || current == nil {
		return nil, fmt.Errorf("benchkit: Diff on nil report")
	}
	if math.IsNaN(tol) || tol < 0 {
		return nil, fmt.Errorf("benchkit: bad tolerance %v", tol)
	}
	var regs []Regression
	names := sortedKeys(baseline.Benchmarks)
	for _, bn := range names {
		bb := baseline.Benchmarks[bn]
		cb, ok := current.Benchmarks[bn]
		if !ok {
			regs = append(regs, Regression{Benchmark: bn, Reason: ReasonMissingBenchmark})
			continue
		}
		for _, mn := range sortedKeys(bb.Metrics) {
			bm := bb.Metrics[mn]
			cm, ok := cb.Metrics[mn]
			if !ok {
				regs = append(regs, Regression{Benchmark: bn, Metric: mn, Reason: ReasonMissingMetric})
				continue
			}
			base, cur := bm.Median, cm.Median
			if !isFinite(base) || !isFinite(cur) {
				regs = append(regs, Regression{Benchmark: bn, Metric: mn, Reason: ReasonNotFinite, Baseline: base, Current: cur})
				continue
			}
			delta, worse := worseBy(bm.Better, base, cur, tol)
			if worse {
				regs = append(regs, Regression{Benchmark: bn, Metric: mn, Reason: ReasonWorse, Baseline: base, Current: cur, Delta: delta})
			}
		}
	}
	return regs, nil
}

// worseBy returns the fractional worsening of cur relative to base in the
// metric's bad direction, and whether it exceeds the tolerance.
func worseBy(better string, base, cur, tol float64) (delta float64, worse bool) {
	switch better {
	case Higher:
		if base == 0 {
			return 0, false // any non-negative value meets a zero floor
		}
		delta = (base - cur) / base
	default: // Lower, and the safe fallback for an undeclared direction
		if base == 0 {
			return cur, cur > tol
		}
		delta = (cur - base) / base
	}
	return delta, delta > tol
}

func isFinite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }

func sortedKeys[M map[string]V, V any](m M) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
