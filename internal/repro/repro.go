// Package repro turns the reproduction's figure and table claims into
// machine-checkable contracts. Each scored artifact (fig6a, fig7, ...)
// declares a Contract: the minimal configuration grid it needs plus a
// list of typed Expectations — orderings, ranges, crossovers, monotonic
// trends and strictly-positive counters — with per-expectation
// tolerances and severities. Evaluating a contract against the
// stats.Set output the experiments machinery already produces yields an
// ArtifactScore; the scores of all contracts form a Scorecard, which
// cmd/report renders (-score) and cmd/reprocheck gates CI on.
//
// The registry of actual contracts lives in internal/experiments
// (Contracts()), next to the figure definitions they score, so a figure
// and its contract evolve together. Threshold semantics and the
// process for adding or loosening an expectation are documented in
// docs/CALIBRATION.md.
package repro

import (
	"fmt"
	"math"
	"strings"

	"fdp/internal/core"
	"fdp/internal/stats"
	"fdp/internal/synth"
)

// Severity says what a violated expectation does to the CI gate.
type Severity string

const (
	// Hard expectations fail the gate (cmd/reprocheck exits nonzero and
	// TestHeadlineShapes errors).
	Hard Severity = "hard"
	// Warn expectations only warn: the claim is expected to hold at
	// paper scale but is known to be noise-sensitive at gate scale.
	Warn Severity = "warn"
)

// Status is the evaluated outcome of one expectation.
type Status string

const (
	StatusPass Status = "pass"
	StatusWarn Status = "warn"
	StatusFail Status = "fail"
)

// Kind selects the shape an expectation checks.
type Kind string

const (
	// KindOrdering checks Metric(Configs[0]) - Metric(Configs[1]) >=
	// MinGap. MinGap = 0 is "at least as good"; a positive MinGap
	// demands a real gap; a negative MinGap bounds how far Configs[1]
	// may rise above Configs[0] ("adds only a little on top").
	KindOrdering Kind = "ordering"
	// KindRange checks Lo <= Metric(Configs[0]) <= Hi. Hi = 0 means
	// unbounded above (no scored metric has a meaningful cap at zero).
	KindRange Kind = "range"
	// KindCrossover checks that the benefit series Metric(Configs[i]) -
	// Metric(ConfigsB[i]) starts at or above StartMin and ends at or
	// below EndMax — the benefit dies out across the sweep (fig7's "PFC
	// pays off exactly where BTB capacity runs out").
	KindCrossover Kind = "crossover"
	// KindMonotonic checks the series Metric(Configs[i]) moves in
	// direction Dir (+1 non-decreasing, -1 non-increasing), allowing
	// each step to backslide by at most Slack.
	KindMonotonic Kind = "monotonic"
	// KindPositive checks Metric(Configs[0]) > 0 strictly (e.g. GHR2
	// must actually pay fixup flushes, tab2).
	KindPositive Kind = "positive"
)

// MetricKind selects the measured quantity an expectation constrains.
type MetricKind string

const (
	// MetricSpeedup is the geometric-mean speedup over the contract's
	// Baseline config (stats.Set.GeoMeanSpeedup).
	MetricSpeedup MetricKind = "speedup"
	// MetricBranchMPKI is the arithmetic-mean branch MPKI.
	MetricBranchMPKI MetricKind = "branch_mpki"
	// MetricL1IMPKI is the arithmetic-mean L1I miss MPKI.
	MetricL1IMPKI MetricKind = "l1i_mpki"
	// MetricStarvationPKI is the arithmetic-mean starvation cycles/KI.
	MetricStarvationPKI MetricKind = "starvation_pki"
	// MetricTagProbesPKI is the arithmetic-mean I-cache tag probes/KI.
	MetricTagProbesPKI MetricKind = "tag_probes_pki"
	// MetricFixupFlushPKI is GHR-fixup frontend flushes per
	// kilo-instruction, aggregated over the whole set.
	MetricFixupFlushPKI MetricKind = "fixup_flushes_pki"
)

// Env is what expectations are evaluated against: the per-config result
// sets of one contract's grid plus the designated speedup baseline.
type Env struct {
	Sets     map[string]*stats.Set
	Baseline string
}

// metricEval maps each metric kind to its evaluator. The workload
// argument restricts the set to that single workload's run ("" = whole
// set) — Expectation.Workloads claims hold per grid cell, not suite
// mean. A package-level var so tests can temporarily register
// pathological metrics (NaN/Inf producers) without threading hooks
// through the public API.
var metricEval = map[MetricKind]func(env Env, config, workload string) (float64, error){
	MetricSpeedup: func(env Env, config, workload string) (float64, error) {
		s, err := envSet(env, config, workload)
		if err != nil {
			return 0, err
		}
		// The baseline stays unfiltered: GeoMeanSpeedup pairs runs by
		// workload name, so a filtered measured set yields the
		// per-workload speedup against its own baseline run.
		base, err := envSet(env, env.Baseline, "")
		if err != nil {
			return 0, fmt.Errorf("baseline %w", err)
		}
		return s.GeoMeanSpeedup(base), nil
	},
	MetricBranchMPKI:    meanMetric((*stats.Set).MeanBranchMPKI),
	MetricL1IMPKI:       meanMetric((*stats.Set).MeanL1IMPKI),
	MetricStarvationPKI: meanMetric((*stats.Set).MeanStarvationPKI),
	MetricTagProbesPKI:  meanMetric((*stats.Set).MeanTagProbesPKI),
	MetricFixupFlushPKI: func(env Env, config, workload string) (float64, error) {
		s, err := envSet(env, config, workload)
		if err != nil {
			return 0, err
		}
		var flushes, insts uint64
		for _, r := range s.Runs {
			flushes += r.HistFixupFlushes
			insts += r.Instructions
		}
		if insts == 0 {
			return 0, nil
		}
		return 1000 * float64(flushes) / float64(insts), nil
	},
}

func meanMetric(f func(*stats.Set) float64) func(Env, string, string) (float64, error) {
	return func(env Env, config, workload string) (float64, error) {
		s, err := envSet(env, config, workload)
		if err != nil {
			return 0, err
		}
		return f(s), nil
	}
}

// envSet resolves a config name to a non-empty set — restricted to a
// single workload's run when workload is non-empty — or explains why
// not: a missing workload or quarantined grid must score as a failed
// check, never as a silently-passing zero.
func envSet(env Env, config, workload string) (*stats.Set, error) {
	if config == "" {
		return nil, fmt.Errorf("config name is empty")
	}
	s, ok := env.Sets[config]
	if !ok || s == nil {
		return nil, fmt.Errorf("config %q missing from results", config)
	}
	if len(s.Runs) == 0 {
		return nil, fmt.Errorf("config %q has no runs", config)
	}
	if workload != "" {
		r := s.ByWorkload(workload)
		if r == nil {
			return nil, fmt.Errorf("config %q has no run for workload %q", config, workload)
		}
		s = &stats.Set{Config: s.Config, Runs: []*stats.Run{r}}
	}
	return s, nil
}

// Expectation is one machine-checkable claim about a contract's grid.
// The field subset that matters depends on Kind; see the Kind constants
// for exact semantics. All comparisons are inclusive: a value exactly
// at its limit passes (mirroring internal/benchkit's tolerance rule).
type Expectation struct {
	// ID is stable within the artifact (used in gate output and docs).
	ID string `json:"id"`
	// Claim is the human-readable statement being checked, usually a
	// paraphrase of the paper claim with the figure reference.
	Claim    string     `json:"claim"`
	Severity Severity   `json:"severity"`
	Kind     Kind       `json:"kind"`
	Metric   MetricKind `json:"metric"`

	// Configs are the config names involved: [A, B] for ordering, [X]
	// for range/positive, the swept series for monotonic and crossover.
	Configs []string `json:"configs"`
	// ConfigsB is the crossover's second series, parallel to Configs.
	ConfigsB []string `json:"configs_b,omitempty"`
	// Workloads, when non-empty, is parallel to Configs and restricts
	// each referenced value to that single workload's run instead of
	// the suite mean — the sweep axis can then be the workload itself
	// (ext-shape sweeps footprint with a fixed config pair). Crossover
	// applies the same workload positionally to both series.
	Workloads []string `json:"workloads,omitempty"`

	MinGap   float64 `json:"min_gap,omitempty"`   // ordering
	Lo       float64 `json:"lo,omitempty"`        // range
	Hi       float64 `json:"hi,omitempty"`        // range (0 = unbounded)
	StartMin float64 `json:"start_min,omitempty"` // crossover
	EndMax   float64 `json:"end_max,omitempty"`   // crossover
	Dir      int     `json:"dir,omitempty"`       // monotonic: +1 / -1
	Slack    float64 `json:"slack,omitempty"`     // monotonic
}

// Measurement is one measured value backing an outcome. Non-finite
// values are recorded with Finite=false and a zero Value so scorecards
// always marshal to valid JSON.
type Measurement struct {
	Config string  `json:"config"`
	Value  float64 `json:"value"`
	Finite bool    `json:"finite"`
}

func measurement(config string, v float64) Measurement {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return Measurement{Config: config, Finite: false}
	}
	return Measurement{Config: config, Value: v, Finite: true}
}

// Contract binds an artifact to the minimal grid and the expectations
// that score it.
type Contract struct {
	// Artifact is the experiment ID this contract scores (fig7, tab2...).
	Artifact string
	Title    string
	// Baseline is the config name speedups are measured against; it may
	// be empty when no expectation uses MetricSpeedup.
	Baseline string
	// Configs is the grid to simulate — only what the expectations
	// reference, so the gate stays one cheap campaign.
	Configs      []core.Config
	Expectations []Expectation
	// Workloads, when non-empty, replaces the campaign's workload suite
	// for this contract's grid (experiments.Score) — contracts whose
	// claims sweep the workload axis (ext-shape) bring their own suite
	// instead of inheriting the standard one.
	Workloads []*synth.Workload
}

// Validate reports the first structural problem: an expectation
// referencing a config the grid does not simulate would otherwise
// surface only as a confusing runtime failure.
func (c *Contract) Validate() error {
	if c.Artifact == "" {
		return fmt.Errorf("repro: contract with empty artifact")
	}
	have := make(map[string]bool, len(c.Configs))
	for _, cfg := range c.Configs {
		if cfg.Name == "" {
			return fmt.Errorf("repro: %s: config with empty name", c.Artifact)
		}
		if have[cfg.Name] {
			return fmt.Errorf("repro: %s: duplicate config %q", c.Artifact, cfg.Name)
		}
		have[cfg.Name] = true
	}
	haveWL := make(map[string]bool, len(c.Workloads))
	for _, w := range c.Workloads {
		if w == nil || w.Name == "" {
			return fmt.Errorf("repro: %s: nil or unnamed workload in contract suite", c.Artifact)
		}
		if haveWL[w.Name] {
			return fmt.Errorf("repro: %s: duplicate workload %q", c.Artifact, w.Name)
		}
		haveWL[w.Name] = true
	}
	ids := make(map[string]bool, len(c.Expectations))
	for _, e := range c.Expectations {
		if e.ID == "" {
			return fmt.Errorf("repro: %s: expectation with empty id", c.Artifact)
		}
		if ids[e.ID] {
			return fmt.Errorf("repro: %s: duplicate expectation id %q", c.Artifact, e.ID)
		}
		ids[e.ID] = true
		if e.Severity != Hard && e.Severity != Warn {
			return fmt.Errorf("repro: %s/%s: unknown severity %q", c.Artifact, e.ID, e.Severity)
		}
		if _, ok := metricEval[e.Metric]; !ok {
			return fmt.Errorf("repro: %s/%s: unknown metric %q", c.Artifact, e.ID, e.Metric)
		}
		if e.Metric == MetricSpeedup && !have[c.Baseline] {
			return fmt.Errorf("repro: %s/%s: speedup baseline %q not in grid", c.Artifact, e.ID, c.Baseline)
		}
		refs := append([]string(nil), e.Configs...)
		refs = append(refs, e.ConfigsB...)
		for _, name := range refs {
			if !have[name] {
				return fmt.Errorf("repro: %s/%s: references config %q not in grid", c.Artifact, e.ID, name)
			}
		}
		if len(e.Workloads) > 0 {
			if len(e.Workloads) != len(e.Configs) {
				return fmt.Errorf("repro: %s/%s: workloads must parallel configs (%d vs %d)",
					c.Artifact, e.ID, len(e.Workloads), len(e.Configs))
			}
			for _, w := range e.Workloads {
				if w == "" {
					return fmt.Errorf("repro: %s/%s: empty workload name", c.Artifact, e.ID)
				}
				if len(c.Workloads) > 0 && !haveWL[w] {
					return fmt.Errorf("repro: %s/%s: references workload %q not in contract suite", c.Artifact, e.ID, w)
				}
			}
		}
		if err := validateShape(e); err != nil {
			return fmt.Errorf("repro: %s/%s: %w", c.Artifact, e.ID, err)
		}
	}
	return nil
}

func validateShape(e Expectation) error {
	switch e.Kind {
	case KindOrdering:
		if len(e.Configs) != 2 {
			return fmt.Errorf("ordering needs exactly 2 configs, got %d", len(e.Configs))
		}
	case KindRange, KindPositive:
		if len(e.Configs) != 1 {
			return fmt.Errorf("%s needs exactly 1 config, got %d", e.Kind, len(e.Configs))
		}
		if e.Kind == KindRange && e.Hi != 0 && e.Hi < e.Lo {
			return fmt.Errorf("range [%v, %v] is empty", e.Lo, e.Hi)
		}
	case KindCrossover:
		if len(e.Configs) < 2 || len(e.Configs) != len(e.ConfigsB) {
			return fmt.Errorf("crossover needs two parallel series of >= 2 configs")
		}
	case KindMonotonic:
		if len(e.Configs) < 2 {
			return fmt.Errorf("monotonic needs >= 2 configs")
		}
		if e.Dir != 1 && e.Dir != -1 {
			return fmt.Errorf("monotonic dir must be +1 or -1, got %d", e.Dir)
		}
		if e.Slack < 0 {
			return fmt.Errorf("negative slack %v", e.Slack)
		}
	default:
		return fmt.Errorf("unknown kind %q", e.Kind)
	}
	return nil
}

// Eval scores the contract against measured sets. Evaluation never
// aborts: every problem (missing config, empty set, non-finite metric)
// becomes a failed or warned outcome routed by the expectation's
// severity, so one broken artifact cannot hide the others.
func (c *Contract) Eval(sets map[string]*stats.Set) ArtifactScore {
	env := Env{Sets: sets, Baseline: c.Baseline}
	score := ArtifactScore{Artifact: c.Artifact, Title: c.Title}
	for _, e := range c.Expectations {
		score.Outcomes = append(score.Outcomes, evalExpectation(env, e))
	}
	return score
}

// violated converts a violation (or evaluation problem) into the status
// the expectation's severity dictates.
func (e Expectation) violated() Status {
	if e.Severity == Warn {
		return StatusWarn
	}
	return StatusFail
}

func evalExpectation(env Env, e Expectation) Outcome {
	out := Outcome{ID: e.ID, Claim: e.Claim, Severity: e.Severity, Status: StatusPass}
	eval, ok := metricEval[e.Metric]
	if !ok {
		out.Status, out.Detail = e.violated(), fmt.Sprintf("unknown metric %q", e.Metric)
		return out
	}

	// Resolve every referenced value first, positionally; any
	// unresolvable or non-finite value fails the expectation with a
	// concrete reason (a NaN must never certify a claim, cf.
	// benchkit.Diff). Workloads (when set) parallel Configs and apply
	// positionally to ConfigsB too, so a cell is (config, workload).
	wl := func(i int) string {
		if len(e.Workloads) > 0 {
			return e.Workloads[i%len(e.Configs)]
		}
		return ""
	}
	names := append([]string(nil), e.Configs...)
	names = append(names, e.ConfigsB...)
	disp := make([]string, len(names))
	vals := make([]float64, len(names))
	for i, name := range names {
		w := wl(i)
		disp[i] = name
		if w != "" {
			disp[i] = name + "@" + w
		}
		v, err := eval(env, name, w)
		if err != nil {
			out.Status, out.Detail = e.violated(), err.Error()
			return out
		}
		out.Values = append(out.Values, measurement(disp[i], v))
		if math.IsNaN(v) || math.IsInf(v, 0) {
			out.Status, out.Detail = e.violated(), fmt.Sprintf("%s(%s) is not finite", e.Metric, disp[i])
			return out
		}
		vals[i] = v
	}

	switch e.Kind {
	case KindOrdering:
		gap := vals[0] - vals[1]
		out.Detail = fmt.Sprintf("%s(%s)=%.4f vs %s(%s)=%.4f: gap %+.4f, want >= %+.4f",
			e.Metric, disp[0], vals[0], e.Metric, disp[1], vals[1], gap, e.MinGap)
		if gap < e.MinGap {
			out.Status = e.violated()
		}
	case KindRange:
		hi := "inf"
		if e.Hi != 0 {
			hi = fmt.Sprintf("%.4f", e.Hi)
		}
		out.Detail = fmt.Sprintf("%s(%s)=%.4f, want in [%.4f, %s]", e.Metric, disp[0], vals[0], e.Lo, hi)
		if vals[0] < e.Lo || (e.Hi != 0 && vals[0] > e.Hi) {
			out.Status = e.violated()
		}
	case KindCrossover:
		n := len(e.Configs)
		start := vals[0] - vals[n]
		end := vals[n-1] - vals[2*n-1]
		out.Detail = fmt.Sprintf("%s gap: start %+.4f (want >= %+.4f), end %+.4f (want <= %+.4f)",
			e.Metric, start, e.StartMin, end, e.EndMax)
		if start < e.StartMin || end > e.EndMax {
			out.Status = e.violated()
		}
	case KindMonotonic:
		dir := "increase"
		if e.Dir < 0 {
			dir = "decrease"
		}
		var steps []string
		for i := range e.Configs {
			steps = append(steps, fmt.Sprintf("%.4f", vals[i]))
		}
		out.Detail = fmt.Sprintf("%s series [%s], want to %s (slack %.4f)",
			e.Metric, strings.Join(steps, " -> "), dir, e.Slack)
		for i := 0; i+1 < len(e.Configs); i++ {
			if float64(e.Dir)*(vals[i+1]-vals[i]) < -e.Slack {
				out.Status = e.violated()
				break
			}
		}
	case KindPositive:
		out.Detail = fmt.Sprintf("%s(%s)=%.4f, want > 0", e.Metric, disp[0], vals[0])
		if vals[0] <= 0 {
			out.Status = e.violated()
		}
	default:
		out.Status, out.Detail = e.violated(), fmt.Sprintf("unknown kind %q", e.Kind)
	}
	return out
}
