package runner

import (
	"testing"

	"fdp/internal/core"
	"fdp/internal/synth"
)

// goldenSpec is a fixed spec literal for the hash-stability test. The
// config is deliberately mostly zero-valued: the test pins the hashing
// scheme (preamble, field set, encoding), not any live default.
func goldenSpec() Spec {
	return Spec{
		Config:   core.Config{Name: "golden-spec", FTQEntries: 4, BTBEntries: 1024},
		Workload: "server_x",
		Class:    "server",
		Seed:     0xABCD,
		Warmup:   1000,
		Measure:  4000,
	}
}

// goldenSpecKey pins the content-hash scheme. If this test fails, the
// spec identity changed — a renamed/added core.Config field, a different
// preamble, or a new encoding. That invalidates every existing cache
// entry, which is correct, but it must be a *deliberate* choice: update
// the constant only after confirming the change is intentional, and bump
// Epoch if simulator semantics moved too.
const goldenSpecKey = "549205536bc846daf06502830ab5d483692efbe03bab529ea93b988f1f53086c"

func TestSpecKeyGolden(t *testing.T) {
	s := goldenSpec()
	if got := s.Key(); got != goldenSpecKey {
		t.Fatalf("spec key drifted:\n got  %s\n want %s\n(see the comment on goldenSpecKey before updating)", got, goldenSpecKey)
	}
}

// TestSpecKeySensitivity asserts every identity field changes the key and
// the execution handle does not.
func TestSpecKeySensitivity(t *testing.T) {
	base := goldenSpec()
	baseKey := base.Key()

	mutations := map[string]func(*Spec){
		"config":   func(s *Spec) { s.Config.FTQEntries = 24 },
		"workload": func(s *Spec) { s.Workload = "server_y" },
		"class":    func(s *Spec) { s.Class = "client" },
		"seed":     func(s *Spec) { s.Seed++ },
		"warmup":   func(s *Spec) { s.Warmup++ },
		"measure":  func(s *Spec) { s.Measure++ },
	}
	for name, mutate := range mutations {
		s := goldenSpec()
		mutate(&s)
		if s.Key() == baseKey {
			t.Errorf("mutating %s did not change the key", name)
		}
	}

	s := goldenSpec()
	s.NewOracle = func() core.Oracle { return synth.ByName("server_a").NewStream() }
	if s.Key() != baseKey {
		t.Error("NewOracle leaked into the key")
	}
}

// TestWorkloadSpec asserts the synth adapter carries the workload
// identity and a working oracle.
func TestWorkloadSpec(t *testing.T) {
	w := synth.ByName("client_b")
	cfg := core.DefaultConfig()
	s := WorkloadSpec(cfg, w, 100, 200)
	if s.Workload != w.Name || s.Class != w.Class || s.Seed != w.Seed {
		t.Fatalf("identity mismatch: %+v vs workload %s/%s/%d", s, w.Name, w.Class, w.Seed)
	}
	if s.NewOracle == nil || s.NewOracle() == nil {
		t.Fatal("no oracle")
	}
	// Same workload, same budget, same config => same key.
	if s.Key() != WorkloadSpec(cfg, w, 100, 200).Key() {
		t.Fatal("identical specs hash differently")
	}
}
