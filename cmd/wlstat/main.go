// Command wlstat characterizes workloads: static footprint and branch
// mix, dynamic working-set size, per-component scenario shape, and
// (optionally) the baseline frontend metrics that determine how
// frontend-bound each one is.
//
// Usage:
//
//	wlstat                                # standard suite
//	wlstat -workload server_a,@mix.yaml   # named workloads and spec refs
//	wlstat -workload-spec deploy.yaml     # inspect an authored spec
//	wlstat -baseline                      # also simulate the no-FDP baseline
//	wlstat -check examples/workloads      # validate every spec in a dir
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"fdp/internal/core"
	"fdp/internal/program"
	"fdp/internal/stats"
	"fdp/internal/synth"
	"fdp/internal/wspec"
)

func main() {
	var (
		workload     = flag.String("workload", "", "comma-separated workloads: standard names, @file.yaml spec references, or 'all' (default: standard suite)")
		workloadSpec = flag.String("workload-spec", "", "workload spec file(s) to characterize, comma-separated (shorthand for @file entries in -workload)")
		baseline     = flag.Bool("baseline", false, "simulate the baseline for MPKI / perfect-I$ uplift")
		window       = flag.Int("window", 200_000, "working-set window in instructions")
		n            = flag.Int("n", 1_000_000, "dynamic instructions to sample")
		checkDir     = flag.String("check", "", "validate every .yaml workload spec in this directory and exit")
	)
	flag.Parse()

	if *checkDir != "" {
		os.Exit(checkSpecs(*checkDir))
	}

	workloads, err := synth.ParseWorkloadFlags(*workload, *workloadSpec, *workload != "")
	if err != nil {
		fatal("%v", err)
	}

	t := stats.NewTable("workload characterization",
		"workload", "class", "code KB", "static branches", "dyn branch%", "taken%", "WSS KB")
	for _, w := range workloads {
		s := w.NewStream()
		var branches, taken uint64
		win := map[uint64]bool{}
		var wssSum, wssN float64
		for i := 0; i < *n; i++ {
			d := s.Next()
			if d.SI.IsBranch() {
				branches++
				if d.Taken {
					taken++
				}
			}
			win[d.SI.PC>>6] = true
			if (i+1)%*window == 0 {
				wssSum += float64(len(win)) / 16
				wssN++
				win = map[uint64]bool{}
			}
		}
		t.AddRow(w.Name, w.Class, w.FootprintBytes()/1024, w.StaticBranches(),
			100*float64(branches)/float64(*n),
			100*float64(taken)/float64(branches),
			wssSum/wssN)
	}
	fmt.Print(t)

	// Scenario shape: one row per (phase, component) for every workload
	// built from a spec with mixes or phases, so authored YAML is
	// inspectable before committing to a campaign.
	for _, w := range workloads {
		if !w.Mixed() {
			continue
		}
		fmt.Println()
		ct := stats.NewTable(fmt.Sprintf("scenario shape: %s (%d phases, spec %.12s)", w.Name, w.Phases(), w.SpecHash),
			"phase", "at inst", "component", "weight", "seed", "code KB", "static branches", "hot frac")
		for _, c := range w.Components() {
			ct.AddRow(c.Phase, c.PhaseStart, fmt.Sprintf("%d:%s", c.Index, c.Label),
				c.Weight, fmt.Sprintf("%#x", c.Seed), c.Bytes/1024, c.StaticBranches, c.HotFraction)
		}
		fmt.Print(ct)
	}

	if *baseline {
		fmt.Println()
		bt := stats.NewTable("baseline frontend behaviour (no FDP, no prefetching)",
			"workload", "IPC", "L1I MPKI", "branch MPKI", "starv/KI", "perfect-I$ uplift")
		for _, w := range workloads {
			base, err := core.Simulate(core.BaselineConfig(), w.NewStream(), w.Name, 150_000, 500_000)
			if err != nil {
				panic(err)
			}
			pcfg := core.BaselineConfig()
			pcfg.Name = "perfect-i$"
			pcfg.PerfectPrefetch = true
			perf, err := core.Simulate(pcfg, w.NewStream(), w.Name, 150_000, 500_000)
			if err != nil {
				panic(err)
			}
			bt.AddRow(w.Name, base.IPC(), base.L1IMPKI(), base.BranchMPKI(),
				base.StarvationPKI(), fmt.Sprintf("%+.1f%%", 100*(perf.Speedup(base)-1)))
		}
		fmt.Print(bt)
		fmt.Println("\n(the paper's selection criterion: every workload shows >5% uplift with a perfect I-cache)")
	}

	// Static instruction mix across the suite.
	fmt.Println()
	mt := stats.NewTable("static instruction mix", "workload", "non-branch", "cond", "jump", "call", "ind-jump", "ind-call", "return")
	for _, w := range workloads {
		h := w.Image().CountByType()
		mt.AddRow(w.Name, h[program.NonBranch], h[program.CondDirect], h[program.Jump],
			h[program.Call], h[program.IndJump], h[program.IndCall], h[program.Return])
	}
	fmt.Print(mt)
}

// checkSpecs parses, validates and compiles every .yaml file in dir,
// printing one line per spec; it returns 1 if any spec fails (the
// `make spec-check` gate).
func checkSpecs(dir string) int {
	entries, err := os.ReadDir(dir)
	if err != nil {
		fmt.Fprintf(os.Stderr, "wlstat: %v\n", err)
		return 1
	}
	var paths []string
	for _, e := range entries {
		if !e.IsDir() && (filepath.Ext(e.Name()) == ".yaml" || filepath.Ext(e.Name()) == ".yml") {
			paths = append(paths, filepath.Join(dir, e.Name()))
		}
	}
	sort.Strings(paths)
	if len(paths) == 0 {
		fmt.Fprintf(os.Stderr, "wlstat: no .yaml specs in %s\n", dir)
		return 1
	}
	bad := 0
	for _, p := range paths {
		sp, err := wspec.Load(p)
		if err == nil {
			_, err = synth.FromSpec(sp)
		}
		if err != nil {
			fmt.Printf("FAIL %s: %v\n", p, err)
			bad++
			continue
		}
		fmt.Printf("ok   %s: %s (hash %.12s)\n", p, sp.Summary(), sp.Hash())
	}
	if bad > 0 {
		fmt.Fprintf(os.Stderr, "wlstat: %d of %d specs failed validation\n", bad, len(paths))
		return 1
	}
	return 0
}

func fatal(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "wlstat: "+format+"\n", args...)
	os.Exit(1)
}
