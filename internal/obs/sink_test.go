package obs

import (
	"os"
	"path/filepath"
	"testing"
)

func TestOpenSink(t *testing.T) {
	w, err := OpenSink("-")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := w.(stdoutSink); !ok {
		t.Errorf("OpenSink(\"-\") = %T, want stdoutSink", w)
	}
	if err := w.Close(); err != nil {
		t.Errorf("stdout sink Close: %v", err)
	}

	path := filepath.Join(t.TempDir(), "out.jsonl")
	f, err := OpenSink(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("x\n")); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(path)
	if err != nil || string(b) != "x\n" {
		t.Errorf("file sink content %q, err %v", b, err)
	}

	if _, err := OpenSink(filepath.Join(t.TempDir(), "no", "such", "dir", "f")); err == nil {
		t.Error("OpenSink into missing directory must error")
	}
}
