// Package program defines the static-program model that the whole simulator
// is built on: fixed-length 32-bit instructions identified by their program
// counter, classified into the control-flow types the frontend cares about,
// and a program Image mapping addresses to static instructions.
//
// The image is the pre-decoder's ground truth: when the fetch pipeline reads
// an I-cache line it consults the image to learn the real instruction types
// in that line, exactly as hardware pre-decode inspects the fetched bytes.
package program

import "fmt"

// InstBytes is the fixed instruction length in bytes. The paper assumes
// fixed-length 32-bit instructions (§IV).
const InstBytes = 4

// InstType classifies a static instruction for frontend purposes.
type InstType uint8

const (
	// NonBranch is any instruction with sequential control flow.
	NonBranch InstType = iota
	// CondDirect is a PC-relative conditional branch (target embedded in
	// the instruction, direction decided at execute).
	CondDirect
	// Jump is a PC-relative unconditional branch.
	Jump
	// Call is a PC-relative unconditional call (pushes a return address).
	Call
	// IndJump is a register-indirect unconditional jump.
	IndJump
	// IndCall is a register-indirect call.
	IndCall
	// Return is a function return (target comes from the return address
	// stack).
	Return

	numInstTypes
)

// NumInstTypes is the number of distinct instruction types.
const NumInstTypes = int(numInstTypes)

var instTypeNames = [...]string{
	NonBranch:  "non-branch",
	CondDirect: "cond",
	Jump:       "jump",
	Call:       "call",
	IndJump:    "ind-jump",
	IndCall:    "ind-call",
	Return:     "return",
}

// String returns a short human-readable name for the type.
func (t InstType) String() string {
	if int(t) < len(instTypeNames) {
		return instTypeNames[t]
	}
	return fmt.Sprintf("InstType(%d)", uint8(t))
}

// IsBranch reports whether the instruction can redirect control flow.
func (t InstType) IsBranch() bool { return t != NonBranch }

// IsConditional reports whether the branch outcome depends on a predicted
// direction.
func (t InstType) IsConditional() bool { return t == CondDirect }

// IsUnconditional reports whether the branch is always taken when executed.
func (t InstType) IsUnconditional() bool {
	switch t {
	case Jump, Call, IndJump, IndCall, Return:
		return true
	}
	return false
}

// IsDirect reports whether the branch target is embedded in the instruction
// (PC-relative), i.e. recoverable by the pre-decoder without any predictor.
func (t InstType) IsDirect() bool {
	switch t {
	case CondDirect, Jump, Call:
		return true
	}
	return false
}

// IsIndirect reports whether the branch target comes from a register.
func (t InstType) IsIndirect() bool { return t == IndJump || t == IndCall }

// IsCall reports whether the instruction pushes a return address.
func (t InstType) IsCall() bool { return t == Call || t == IndCall }

// IsReturn reports whether the target comes from the return address stack.
func (t InstType) IsReturn() bool { return t == Return }

// StaticInst is one instruction of the static program image.
type StaticInst struct {
	// PC is the virtual address of the instruction.
	PC uint64
	// Type classifies the instruction.
	Type InstType
	// Target is the PC-relative target for direct branches (CondDirect,
	// Jump, Call). It is zero for non-branches, indirect branches and
	// returns, whose targets are not recoverable from the encoding.
	Target uint64
}

// IsBranch reports whether the instruction is any kind of branch.
func (si StaticInst) IsBranch() bool { return si.Type.IsBranch() }

// FallThrough returns the address of the next sequential instruction.
func (si StaticInst) FallThrough() uint64 { return si.PC + InstBytes }

// Image is a static program image: a dense array of instructions starting
// at Base. Lookup by PC is O(1). Images are immutable after Freeze and safe
// for concurrent readers.
type Image struct {
	base  uint64
	insts []StaticInst
	// types mirrors insts[i].Type in a dense byte array: the prediction
	// pipeline queries the type of every scanned instruction, and the
	// packed array keeps that scan 24x denser than the StaticInst records.
	types  []InstType
	frozen bool
}

// NewImage creates an empty image whose first instruction will live at
// base. base must be InstBytes-aligned.
func NewImage(base uint64) *Image {
	if base%InstBytes != 0 {
		panic(fmt.Sprintf("program: image base %#x not %d-byte aligned", base, InstBytes))
	}
	return &Image{base: base}
}

// Base returns the address of the first instruction.
func (im *Image) Base() uint64 { return im.base }

// Size returns the number of instructions in the image.
func (im *Image) Size() int { return len(im.insts) }

// Bytes returns the code footprint of the image in bytes.
func (im *Image) Bytes() uint64 { return uint64(len(im.insts)) * InstBytes }

// Limit returns the first address past the image.
func (im *Image) Limit() uint64 { return im.base + im.Bytes() }

// Append adds an instruction at the next sequential address and returns its
// PC. The Target field of branches may be patched later with SetTarget (the
// builder lays out code before all targets are known).
func (im *Image) Append(t InstType) uint64 {
	if im.frozen {
		panic("program: Append on frozen image")
	}
	pc := im.base + uint64(len(im.insts))*InstBytes
	im.insts = append(im.insts, StaticInst{PC: pc, Type: t})
	im.types = append(im.types, t)
	return pc
}

// SetTarget patches the direct target of the branch at pc.
func (im *Image) SetTarget(pc, target uint64) {
	if im.frozen {
		panic("program: SetTarget on frozen image")
	}
	idx, ok := im.index(pc)
	if !ok {
		panic(fmt.Sprintf("program: SetTarget on %#x outside image", pc))
	}
	if !im.insts[idx].Type.IsDirect() {
		panic(fmt.Sprintf("program: SetTarget on non-direct %v at %#x", im.insts[idx].Type, pc))
	}
	im.insts[idx].Target = target
}

// Freeze validates the image (all direct branches have in-image targets)
// and marks it immutable.
func (im *Image) Freeze() error {
	for i := range im.insts {
		si := &im.insts[i]
		if si.Type.IsDirect() {
			if _, ok := im.index(si.Target); !ok {
				return fmt.Errorf("program: direct %v at %#x targets %#x outside image [%#x,%#x)",
					si.Type, si.PC, si.Target, im.base, im.Limit())
			}
		}
	}
	im.frozen = true
	return nil
}

// Frozen reports whether Freeze has been called.
func (im *Image) Frozen() bool { return im.frozen }

func (im *Image) index(pc uint64) (int, bool) {
	if pc < im.base || pc%InstBytes != 0 {
		return 0, false
	}
	idx := int((pc - im.base) / InstBytes)
	if idx >= len(im.insts) {
		return 0, false
	}
	return idx, true
}

// At returns the static instruction at pc. ok is false if pc is outside the
// image or misaligned; the caller (e.g. a frontend running down a wrong
// path off the end of the image) must treat that as a non-branch.
func (im *Image) At(pc uint64) (StaticInst, bool) {
	idx, ok := im.index(pc)
	if !ok {
		return StaticInst{PC: pc, Type: NonBranch}, false
	}
	return im.insts[idx], true
}

// AtOrSequential returns the instruction at pc, or a synthetic non-branch
// when pc falls outside the image. Wrong-path fetches may run off the image
// edge; hardware would fetch whatever bytes are there, which we model as
// straight-line code.
func (im *Image) AtOrSequential(pc uint64) StaticInst {
	si, _ := im.At(pc)
	return si
}

// TypeAt returns the instruction type at pc, or NonBranch when pc falls
// outside the image (matching AtOrSequential). It reads the packed type
// array, avoiding the full StaticInst load on type-only queries.
func (im *Image) TypeAt(pc uint64) InstType {
	idx, ok := im.index(pc)
	if !ok {
		return NonBranch
	}
	return im.types[idx]
}

// BranchAt reports whether pc addresses a branch instruction, via the
// packed type array. The prediction pipeline calls this for every scanned
// instruction.
func (im *Image) BranchAt(pc uint64) bool {
	idx, ok := im.index(pc)
	return ok && im.types[idx] != NonBranch
}

// Contains reports whether pc addresses an instruction in the image.
func (im *Image) Contains(pc uint64) bool {
	_, ok := im.index(pc)
	return ok
}

// EachInst calls fn for every instruction in address order.
func (im *Image) EachInst(fn func(StaticInst)) {
	for i := range im.insts {
		fn(im.insts[i])
	}
}

// CountByType returns a histogram of instruction types.
func (im *Image) CountByType() [NumInstTypes]int {
	var h [NumInstTypes]int
	for i := range im.insts {
		h[im.insts[i].Type]++
	}
	return h
}

// DynInst is one executed (dynamic) instruction from the oracle stream: the
// static instruction plus its architectural outcome.
type DynInst struct {
	SI StaticInst
	// Taken is the architectural direction (always true for executed
	// unconditional branches, false for non-branches).
	Taken bool
	// NextPC is the architectural next program counter.
	NextPC uint64
}

// Stream produces the architecturally-correct dynamic instruction sequence
// of a workload. Implementations must be deterministic for a given seed.
type Stream interface {
	// Next returns the next executed instruction. Streams are infinite:
	// workloads loop forever so any warmup/measure length is valid.
	Next() DynInst
	// Image returns the static image the stream executes from.
	Image() *Image
}
