// history_study compares the branch-history management policies of the
// paper's Table V / Fig. 8: taken-only target history (THR) against
// direction-history variants with and without BTB-miss fixup, and the
// idealized reference.
package main

import (
	"fmt"
	"log"

	"fdp"
)

type policy struct {
	name   string
	mutate func(*fdp.Config)
}

func main() {
	policies := []policy{
		{"Ideal", func(c *fdp.Config) { c.HistPolicy = fdp.HistIdeal }},
		{"THR", func(c *fdp.Config) { c.HistPolicy = fdp.HistTHR }},
		{"GHR0 (nofix,taken)", func(c *fdp.Config) {
			c.HistPolicy = fdp.HistGHRNoFix
			c.BTBAllocPolicy = fdp.AllocTakenOnly
		}},
		{"GHR1 (nofix,all)", func(c *fdp.Config) {
			c.HistPolicy = fdp.HistGHRNoFix
			c.BTBAllocPolicy = fdp.AllocAll
		}},
		{"GHR2 (fix,taken)", func(c *fdp.Config) {
			c.HistPolicy = fdp.HistGHRFix
			c.BTBAllocPolicy = fdp.AllocTakenOnly
		}},
		{"GHR3 (fix,all)", func(c *fdp.Config) {
			c.HistPolicy = fdp.HistGHRFix
			c.BTBAllocPolicy = fdp.AllocAll
		}},
	}

	workloads := []*fdp.Workload{
		fdp.WorkloadByName("server_a"),
		fdp.WorkloadByName("server_c"),
		fdp.WorkloadByName("client_c"),
	}
	const warmup, measure = 100_000, 400_000

	base := &fdp.Set{Config: "base"}
	for _, w := range workloads {
		r, err := fdp.Simulate(fdp.BaselineConfig(), w, warmup, measure)
		if err != nil {
			log.Fatal(err)
		}
		base.Add(r)
	}

	fmt.Printf("history policy study over %d workloads (FDP, PFC on)\n\n", len(workloads))
	fmt.Printf("%-20s  %10s  %12s  %14s\n", "policy", "speedup", "branch MPKI", "fixup flush/KI")
	for _, p := range policies {
		cfg := fdp.DefaultConfig()
		p.mutate(&cfg)
		set := &fdp.Set{Config: p.name}
		var flushes, insts uint64
		for _, w := range workloads {
			r, err := fdp.Simulate(cfg, w, warmup, measure)
			if err != nil {
				log.Fatal(err)
			}
			set.Add(r)
			flushes += r.HistFixupFlushes
			insts += r.Instructions
		}
		fmt.Printf("%-20s  %+9.1f%%  %12.2f  %14.2f\n",
			p.name, 100*(set.GeoMeanSpeedup(base)-1), set.MeanBranchMPKI(),
			1000*float64(flushes)/float64(insts))
	}

	fmt.Println("\nExpected shape (paper §VI-C): THR tracks Ideal and wins; the fixup")
	fmt.Println("policies (GHR2/GHR3) pay for history repairs with frontend flushes.")
}
