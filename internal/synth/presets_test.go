package synth

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestResolve(t *testing.T) {
	ws, err := Resolve("server_a", "spec_b")
	if err != nil {
		t.Fatal(err)
	}
	if len(ws) != 2 || ws[0].Name != "server_a" || ws[1].Name != "spec_b" {
		t.Fatalf("Resolve order/content wrong: %v", ws)
	}
	if _, err := Resolve("server_a", "nope"); err == nil || !strings.Contains(err.Error(), "nope") {
		t.Fatalf("unknown name not reported: %v", err)
	}
}

func TestParseList(t *testing.T) {
	for _, all := range []string{"all", "", "  all  "} {
		ws, err := ParseList(all)
		if err != nil {
			t.Fatal(err)
		}
		if len(ws) != len(StandardWorkloads()) {
			t.Fatalf("ParseList(%q) = %d workloads", all, len(ws))
		}
	}
	ws, err := ParseList(" server_a , client_b ")
	if err != nil {
		t.Fatal(err)
	}
	if len(ws) != 2 || ws[0].Name != "server_a" || ws[1].Name != "client_b" {
		t.Fatalf("ParseList did not trim/resolve: %v", ws)
	}
	if _, err := ParseList("server_a,bogus"); err == nil {
		t.Fatal("bogus name accepted")
	}
}

// TestParseListErrors is table-driven over the error surface: every
// failing list must name the offending token, and the unknown-name path
// must teach the caller what is accepted (known workload names and the
// @file.yaml spec syntax).
func TestParseListErrors(t *testing.T) {
	cases := []struct {
		name string
		in   string
		want []string // substrings the error must carry
	}{
		{"unknown_name", "server_a,bogus", []string{`"bogus"`, "entry 2", "server_a", "@file.yaml"}},
		{"unknown_first", "nope", []string{`"nope"`, "entry 1", "known workloads"}},
		{"typo_case", "Server_a", []string{`"Server_a"`, "server_a"}},
		{"empty_entry", "server_a,,client_b", []string{"empty entry", "position 2"}},
		{"trailing_comma", "server_a,", []string{"empty entry", "position 2"}},
		{"bare_at", "@", []string{"empty spec reference", "@path/to/spec.yaml"}},
		{"missing_spec_file", "@no/such/spec.yaml", []string{"no/such/spec.yaml"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ws, err := ParseList(tc.in)
			if err == nil {
				t.Fatalf("ParseList(%q) accepted (%d workloads)", tc.in, len(ws))
			}
			for _, want := range tc.want {
				if !strings.Contains(err.Error(), want) {
					t.Errorf("ParseList(%q) error %q does not mention %q", tc.in, err, want)
				}
			}
		})
	}
}

// TestParseListSpecRef: a @file.yaml token resolves through the same
// list parser as the built-in names.
func TestParseListSpecRef(t *testing.T) {
	path := filepath.Join(t.TempDir(), "s.yaml")
	doc := "version: 1\nname: fromfile\nmix:\n  - preset: client\n"
	if err := os.WriteFile(path, []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
	ws, err := ParseList("server_a,@" + path)
	if err != nil {
		t.Fatal(err)
	}
	if len(ws) != 2 || ws[0].Name != "server_a" || ws[1].Name != "fromfile" {
		t.Fatalf("mixed list resolved wrong: %v", ws)
	}
	if ws[1].SpecHash == "" {
		t.Fatal("spec-file workload missing SpecHash")
	}
	// A broken spec file must point at the file and the line.
	bad := filepath.Join(t.TempDir(), "bad.yaml")
	if err := os.WriteFile(bad, []byte("version: 1\nname: x\nmix:\n  - preset: mainframe\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ParseList("@" + bad); err == nil || !strings.Contains(err.Error(), "mainframe") {
		t.Fatalf("bad spec error unhelpful: %v", err)
	}
}
