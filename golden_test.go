package fdp

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

// updateGolden regenerates the checked-in golden manifests:
//
//	go test -run TestGoldenManifests -update .
var updateGolden = flag.Bool("update", false, "rewrite testdata/golden manifests")

// goldenCase is one (config, workload) pair pinned by the golden-run
// regression harness. Runs are deliberately small so the whole harness
// stays in tier-1 test time.
type goldenCase struct {
	name     string
	cfg      Config
	workload string
	warmup   uint64
	measure  uint64
}

func goldenCases() []goldenCase {
	fdpCfg := DefaultConfig()

	eip := DefaultConfig()
	eip.Name = "fdp+eip"
	eip.Prefetcher = "eip-27kb"

	ghr := DefaultConfig()
	ghr.Name = "ghr-fix"
	ghr.HistPolicy = HistGHRFix
	ghr.BTBAllocPolicy = AllocAll

	return []goldenCase{
		{"fdp_server_a", fdpCfg, "server_a", 20_000, 60_000},
		{"baseline_client_a", BaselineConfig(), "client_a", 20_000, 60_000},
		{"eip_server_b", eip, "server_b", 20_000, 60_000},
		{"ghrfix_spec_a", ghr, "spec_a", 20_000, 60_000},
	}
}

// goldenManifest simulates one case with probes attached and returns the
// canonical manifest encoding. Git/Tool are left empty so the document
// depends only on the simulation.
func goldenManifest(t *testing.T, c goldenCase) []byte {
	t.Helper()
	w := WorkloadByName(c.workload)
	if w == nil {
		t.Fatalf("unknown workload %q", c.workload)
	}
	p := NewProbes()
	p.EnableTrace(4096)
	r, err := SimulateObserved(c.cfg, w, c.warmup, c.measure, p)
	if err != nil {
		t.Fatalf("%s: %v", c.name, err)
	}
	m := RunManifest(c.cfg, w, r, p, c.warmup, c.measure)
	b, err := m.MarshalIndent()
	if err != nil {
		t.Fatal(err)
	}
	return append(b, '\n')
}

// TestGoldenManifests re-simulates the four pinned (config, workload)
// pairs and diffs every counter and histogram byte-for-byte against the
// checked-in manifests. Any intentional change to simulator behaviour
// must regenerate them with -update and review the diff.
func TestGoldenManifests(t *testing.T) {
	for _, c := range goldenCases() {
		c := c
		t.Run(c.name, func(t *testing.T) {
			t.Parallel()
			got := goldenManifest(t, c)
			path := filepath.Join("testdata", "golden", c.name+".json")
			if *updateGolden {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, got, 0o644); err != nil {
					t.Fatal(err)
				}
				t.Logf("wrote %s (%d bytes)", path, len(got))
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden file (regenerate with -update): %v", err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("manifest for %s diverged from %s.\nRe-run with -update and review the diff if the change is intentional.\ngot %d bytes, want %d bytes; first divergence at byte %d",
					c.name, path, len(got), len(want), firstDiff(got, want))
			}
		})
	}
}

// firstDiff returns the index of the first differing byte.
func firstDiff(a, b []byte) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return i
		}
	}
	return n
}

// TestGoldenManifestShape asserts the structural acceptance criteria:
// a manifest from an observed run carries at least the five canonical
// histograms, with the occupancy and latency ones actually populated.
func TestGoldenManifestShape(t *testing.T) {
	c := goldenCases()[0]
	w := WorkloadByName(c.workload)
	p := NewProbes()
	r, err := SimulateObserved(c.cfg, w, c.warmup, c.measure, p)
	if err != nil {
		t.Fatal(err)
	}
	m := RunManifest(c.cfg, w, r, p, c.warmup, c.measure)
	for _, name := range []string{
		"ftq.occupancy", "mshr.occupancy", "prefetch.to_use_cycles",
		"pfc.resteer_depth", "l1i.miss_latency",
	} {
		if _, ok := m.Histograms[name]; !ok {
			t.Errorf("manifest missing histogram %q", name)
		}
	}
	if m.Histograms["ftq.occupancy"].Count != r.Cycles {
		t.Errorf("ftq.occupancy has %d samples, want one per cycle (%d)",
			m.Histograms["ftq.occupancy"].Count, r.Cycles)
	}
	if m.Histograms["l1i.miss_latency"].Count == 0 {
		t.Error("l1i.miss_latency is empty on a default run")
	}
	if m.Counters["run.cycles"] != r.Cycles {
		t.Errorf("run.cycles = %d, want %d", m.Counters["run.cycles"], r.Cycles)
	}
}
