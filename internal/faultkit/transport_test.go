package faultkit

import (
	"bytes"
	"errors"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"fdp/internal/runner"
)

func payloadServer(t *testing.T, body []byte) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write(body)
	}))
	t.Cleanup(srv.Close)
	return srv
}

// TestTransportDrop: a dropped request surfaces as a net.Error timeout,
// which the runner classifies transient — retryable weather.
func TestTransportDrop(t *testing.T) {
	srv := payloadServer(t, []byte("hello"))
	client := &http.Client{Transport: NewTransport(1, nil, NetFaults{DropEvery: 1})}
	_, err := client.Get(srv.URL)
	if err == nil {
		t.Fatal("dropped request returned no error")
	}
	var nerr net.Error
	if !errors.As(err, &nerr) || !nerr.Timeout() {
		t.Fatalf("drop error is not a net timeout: %v", err)
	}
	if runner.Classify(err) != runner.ClassTransient {
		t.Fatalf("drop classified %v, want transient", runner.Classify(err))
	}
	tr := client.Transport.(*Transport)
	if tr.Injected(NetDrop) != 1 {
		t.Fatalf("drop count = %d, want 1", tr.Injected(NetDrop))
	}
}

// TestTransportTruncate: the body dies mid-stream within the configured
// bound, reporting an unexpected EOF.
func TestTransportTruncate(t *testing.T) {
	body := bytes.Repeat([]byte("x"), 4096)
	srv := payloadServer(t, body)
	tr := NewTransport(7, nil, NetFaults{TruncateEvery: 1, TruncateWithin: 64})
	client := &http.Client{Transport: tr}
	resp, err := client.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	got, err := io.ReadAll(resp.Body)
	if !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("truncated body ended with %v, want ErrUnexpectedEOF", err)
	}
	if len(got) >= 64 {
		t.Fatalf("passed %d bytes, want < 64", len(got))
	}
	if tr.Injected(NetTruncate) != 1 {
		t.Fatalf("truncate count = %d", tr.Injected(NetTruncate))
	}
}

// TestTransportFlip: exactly one bit differs, within the configured
// prefix — the CRC envelope's adversary.
func TestTransportFlip(t *testing.T) {
	body := bytes.Repeat([]byte{0x00}, 1024)
	srv := payloadServer(t, body)
	tr := NewTransport(3, nil, NetFaults{FlipEvery: 1, FlipWithin: 128})
	client := &http.Client{Transport: tr}
	resp, err := client.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	got, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(body) {
		t.Fatalf("flip changed the length: %d vs %d", len(got), len(body))
	}
	flipped := 0
	for i, b := range got {
		for bit := 0; bit < 8; bit++ {
			if b&(1<<bit) != body[i]&(1<<bit) {
				flipped++
				if i >= 128 {
					t.Fatalf("bit flipped at offset %d, beyond FlipWithin", i)
				}
			}
		}
	}
	if flipped != 1 {
		t.Fatalf("%d bits flipped, want exactly 1", flipped)
	}
}

// TestTransport5xxAndCadence: the 503 replaces the response; cadence is
// every-Nth-request, so surrounding requests pass clean.
func TestTransport5xxAndCadence(t *testing.T) {
	srv := payloadServer(t, []byte("ok"))
	tr := NewTransport(9, nil, NetFaults{Err5xxEvery: 2})
	client := &http.Client{Transport: tr}
	for i := 1; i <= 4; i++ {
		resp, err := client.Get(srv.URL)
		if err != nil {
			t.Fatal(err)
		}
		want := http.StatusOK
		if i%2 == 0 {
			want = http.StatusServiceUnavailable
		}
		if resp.StatusCode != want {
			t.Fatalf("request %d: status %d, want %d", i, resp.StatusCode, want)
		}
		resp.Body.Close()
	}
	if tr.Injected(Net5xx) != 2 {
		t.Fatalf("5xx count = %d, want 2", tr.Injected(Net5xx))
	}
}

// TestTransportMatchAndDelay: the Match filter spares non-matching
// paths; a delayed request still completes intact.
func TestTransportMatchAndDelay(t *testing.T) {
	srv := payloadServer(t, []byte("payload"))
	tr := NewTransport(5, nil, NetFaults{
		DropEvery: 1,
		Match:     func(r *http.Request) bool { return strings.HasSuffix(r.URL.Path, "/run") },
	})
	client := &http.Client{Transport: tr}
	resp, err := client.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatalf("non-matching path was faulted: %v", err)
	}
	resp.Body.Close()
	if _, err := client.Get(srv.URL + "/run"); err == nil {
		t.Fatal("matching path was not faulted")
	}

	dl := NewTransport(5, nil, NetFaults{DelayEvery: 1, DelayMax: 5_000_000}) // ≤5ms
	dclient := &http.Client{Transport: dl}
	resp, err = dclient.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	got, _ := io.ReadAll(resp.Body)
	if string(got) != "payload" {
		t.Fatalf("delayed body corrupted: %q", got)
	}
	if dl.Injected(NetDelay) != 1 {
		t.Fatalf("delay count = %d", dl.Injected(NetDelay))
	}
}
