package main

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"fdp/internal/repro"
)

// loadScorecardFixture decodes the checked-in scorecard document; the
// fixture mixes pass/warn/fail outcomes and a non-finite measurement so
// the rendering and round-trip tests below exercise every row shape.
func loadScorecardFixture(t *testing.T) (*repro.Scorecard, []byte) {
	t.Helper()
	raw, err := os.ReadFile(filepath.Join("testdata", "scorecard.json"))
	if err != nil {
		t.Fatal(err)
	}
	card, err := repro.DecodeScorecard(raw)
	if err != nil {
		t.Fatal(err)
	}
	return card, raw
}

// TestScorecardGolden pins the `-score` text rendering byte-for-byte
// over a fixed scorecard document (the TestAccountingGolden pattern:
// decode fixture → render → compare; `go test ./cmd/report -update`
// rewrites the golden).
func TestScorecardGolden(t *testing.T) {
	card, _ := loadScorecardFixture(t)
	got := card.String()
	golden := filepath.Join("testdata", "scorecard.golden")
	if *update {
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run `go test ./cmd/report -update` to create it)", err)
	}
	if got != string(want) {
		t.Errorf("scorecard rendering drifted from golden:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestScorecardJSONRoundTrip: the machine-readable document written by
// `-score-json` must decode and re-encode to identical canonical bytes,
// and preserve verdict-bearing content from the fixture.
func TestScorecardJSONRoundTrip(t *testing.T) {
	card, _ := loadScorecardFixture(t)
	b1, err := card.Encode()
	if err != nil {
		t.Fatal(err)
	}
	again, err := repro.DecodeScorecard(b1)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := again.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1, b2) {
		t.Errorf("canonical encoding not stable:\n%s\nvs\n%s", b1, b2)
	}

	pass, warn, fail := again.Counts()
	if pass != 1 || warn != 1 || fail != 1 {
		t.Errorf("Counts() = %d/%d/%d, want 1/1/1", pass, warn, fail)
	}
	fails := again.HardFailures()
	if len(fails) != 1 || fails[0] != "tab2/ghr2-pays-fixups" {
		t.Errorf("HardFailures() = %v", fails)
	}
	if v := again.Artifacts[1].Outcomes[0].Values[0]; v.Finite || v.Value != 0 {
		t.Errorf("non-finite measurement not preserved: %+v", v)
	}
}
