package obs

import (
	"testing"
	"time"
)

func rec(c uint64) IntervalRecord {
	return IntervalRecord{Cycle: c, Instructions: 2 * c}
}

func TestIntervalStoreBasics(t *testing.T) {
	s := NewIntervalStore(8)
	r := s.StartRun("abc123", "fdp/server_a", 1000)
	if r == nil {
		t.Fatal("StartRun returned nil handle")
	}
	for c := uint64(1); c <= 3; c++ {
		r.RecordInterval(rec(c * 1000))
	}

	runs := s.Runs()
	if len(runs) != 1 {
		t.Fatalf("got %d runs, want 1", len(runs))
	}
	m := runs[0]
	if m.ID != "abc123" || m.Run != "fdp/server_a" || m.Every != 1000 ||
		m.Records != 3 || m.Buffered != 3 || m.Resets != 0 || m.Done {
		t.Fatalf("meta = %+v", m)
	}

	recs, next, done, ok := s.Read("abc123", 0)
	if !ok || done || next != 3 || len(recs) != 3 {
		t.Fatalf("Read = %v, %d, %v, %v", recs, next, done, ok)
	}
	for i, got := range recs {
		if got != rec(uint64(i+1)*1000) {
			t.Fatalf("record %d = %+v", i, got)
		}
	}
	// Cursor at the end: empty read, same cursor back.
	recs, next, _, ok = s.Read("abc123", next)
	if !ok || len(recs) != 0 || next != 3 {
		t.Fatalf("tail Read = %v, %d, %v", recs, next, ok)
	}

	r.Finish()
	if _, _, done, _ := s.Read("abc123", 3); !done {
		t.Fatal("Finish not visible to Read")
	}
	if m, ok := s.Run("abc123"); !ok || !m.Done {
		t.Fatalf("Run meta after Finish = %+v, %v", m, ok)
	}
	if _, _, _, ok := s.Read("nope", 0); ok {
		t.Fatal("unknown id read ok")
	}
}

func TestIntervalStoreRingOverflow(t *testing.T) {
	s := NewIntervalStore(4)
	r := s.StartRun("id", "cfg/wl", 1)
	for c := uint64(1); c <= 10; c++ {
		r.RecordInterval(rec(c))
	}
	m, _ := s.Run("id")
	if m.Records != 10 || m.Buffered != 4 {
		t.Fatalf("meta after overflow = %+v", m)
	}
	// A stale cursor skips the dropped prefix and resumes at the oldest
	// buffered record (seq 6, value 7).
	recs, next, _, ok := s.Read("id", 2)
	if !ok || next != 10 || len(recs) != 4 {
		t.Fatalf("Read = %v, %d, %v", recs, next, ok)
	}
	for i, got := range recs {
		if got != rec(uint64(i+7)) {
			t.Fatalf("record %d = %+v, want cycle %d", i, got, i+7)
		}
	}
	// A mid-ring cursor reads only the suffix.
	recs, _, _, _ = s.Read("id", 8)
	if len(recs) != 2 || recs[0] != rec(9) || recs[1] != rec(10) {
		t.Fatalf("suffix Read = %v", recs)
	}
}

func TestIntervalStoreResetKeepsSequence(t *testing.T) {
	s := NewIntervalStore(8)
	r := s.StartRun("id", "cfg/wl", 1)
	r.RecordInterval(rec(1))
	r.RecordInterval(rec(2))
	r.ResetIntervals() // warmup boundary
	r.RecordInterval(rec(100))

	m, _ := s.Run("id")
	if m.Records != 3 || m.Buffered != 1 || m.Resets != 1 {
		t.Fatalf("meta after reset = %+v", m)
	}
	// A follower that consumed the warmup records keeps its cursor; the
	// reset is invisible except that it sees only measurement records.
	recs, next, _, ok := s.Read("id", 2)
	if !ok || next != 3 || len(recs) != 1 || recs[0] != rec(100) {
		t.Fatalf("post-reset Read = %v, %d, %v", recs, next, ok)
	}
	// A from-zero reader also lands on the measurement records.
	recs, _, _, _ = s.Read("id", 0)
	if len(recs) != 1 || recs[0] != rec(100) {
		t.Fatalf("from-zero Read = %v", recs)
	}
}

func TestIntervalStoreRestart(t *testing.T) {
	s := NewIntervalStore(8)
	r := s.StartRun("id", "cfg/wl", 1)
	r.RecordInterval(rec(1))
	r.Finish()

	// Retry attempt: same id re-registers, clearing the buffer and the
	// done flag but keeping the sequence monotonic.
	r2 := s.StartRun("id", "cfg/wl", 1)
	if r2 != r {
		t.Fatal("restart allocated a new handle")
	}
	m, _ := s.Run("id")
	if m.Done || m.Buffered != 0 || m.Records != 1 {
		t.Fatalf("meta after restart = %+v", m)
	}
	r2.RecordInterval(rec(5))
	recs, next, _, _ := s.Read("id", 1)
	if len(recs) != 1 || recs[0] != rec(5) || next != 2 {
		t.Fatalf("post-restart Read = %v, %d", recs, next)
	}
	if len(s.Runs()) != 1 {
		t.Fatal("restart duplicated the index entry")
	}
}

func TestIntervalStoreWatch(t *testing.T) {
	s := NewIntervalStore(8)
	r := s.StartRun("id", "cfg/wl", 1)

	ch := s.Watch()
	recs, cursor, _, _ := s.Read("id", 0)
	if len(recs) != 0 {
		t.Fatalf("unexpected records: %v", recs)
	}
	go r.RecordInterval(rec(1))
	select {
	case <-ch:
	case <-time.After(5 * time.Second):
		t.Fatal("Watch channel never closed after a record")
	}
	recs, _, _, _ = s.Read("id", cursor)
	if len(recs) != 1 {
		t.Fatalf("post-wakeup Read = %v", recs)
	}

	// Grab-before-read ordering: a record landing between Read and Watch
	// is still seen, because the channel grabbed before the read is the
	// one closed by that record.
	ch = s.Watch()
	r.RecordInterval(rec(2))
	select {
	case <-ch:
	case <-time.After(5 * time.Second):
		t.Fatal("pre-grabbed Watch channel missed the update")
	}
}

func TestIntervalStoreResolve(t *testing.T) {
	s := NewIntervalStore(8)
	s.StartRun("aabb11", "fdp/server_a", 1)
	s.StartRun("aacc22", "baseline/server_a", 1)

	cases := []struct {
		q    string
		want string
		ok   bool
	}{
		{"aabb11", "aabb11", true},       // exact id
		{"fdp/server_a", "aabb11", true}, // exact label
		{"aab", "aabb11", true},          // unique prefix
		{"aacc", "aacc22", true},         // unique prefix
		{"aa", "", false},                // ambiguous prefix
		{"zz", "", false},                // unknown
		{"", "", false},                  // empty
	}
	for _, c := range cases {
		got, ok := s.Resolve(c.q)
		if got != c.want || ok != c.ok {
			t.Errorf("Resolve(%q) = %q, %v; want %q, %v", c.q, got, ok, c.want, c.ok)
		}
	}
}

func TestIntervalStoreNil(t *testing.T) {
	var s *IntervalStore
	r := s.StartRun("id", "x", 1)
	if r != nil {
		t.Fatal("nil store returned a handle")
	}
	r.RecordInterval(rec(1))
	r.ResetIntervals()
	r.Finish()
	if s.Runs() != nil {
		t.Fatal("nil store has runs")
	}
	if _, ok := s.Run("id"); ok {
		t.Fatal("nil store resolved a run")
	}
	if _, ok := s.Resolve("id"); ok {
		t.Fatal("nil store resolved a query")
	}
	if _, _, _, ok := s.Read("id", 0); ok {
		t.Fatal("nil store read ok")
	}
	if ch := s.Watch(); ch != nil {
		t.Fatal("nil store Watch non-nil")
	}
}

// TestIntervalRecorderTee proves the recorder forwards snapshots and
// resets to an attached store ring while still accumulating locally.
func TestIntervalRecorderTee(t *testing.T) {
	rc := NewIntervalRecorder(10)

	s := NewIntervalStore(8)
	run := s.StartRun("id", "cfg/wl", 10)
	rc.SetTee(run)

	rc.Record(IntervalRecord{Cycle: 10, Instructions: 25})
	recs, _, _, _ := s.Read("id", 0)
	if len(recs) != 1 || recs[0].Cycle != 10 || recs[0].Instructions != 25 {
		t.Fatalf("teed record = %+v", recs)
	}

	rc.Reset()
	m, _ := s.Run("id")
	if m.Resets != 1 || m.Buffered != 0 {
		t.Fatalf("meta after recorder reset = %+v", m)
	}

	// Detached recorder stops feeding the store but keeps accumulating.
	rc.SetTee(nil)
	rc.Record(IntervalRecord{Cycle: 20})
	if m, _ := s.Run("id"); m.Records != 1 {
		t.Fatalf("record after detach leaked to store: %+v", m)
	}
	if len(rc.Records()) != 1 {
		t.Fatalf("recorder buffer = %d records, want 1", len(rc.Records()))
	}
}
