package runner

import (
	"container/list"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sync"

	"fdp/internal/obs"
	"fdp/internal/stats"
)

// DefaultCacheCapacity bounds the in-memory LRU when NewCache is given a
// non-positive capacity. A full `experiments -full` invocation issues a
// few thousand (config, workload) jobs, so the default keeps every result
// of one invocation resident.
const DefaultCacheCapacity = 8192

// Cache is a content-addressed store of finished simulation results,
// keyed by Spec.Key(): an in-memory LRU always, plus an optional on-disk
// JSON store (one file per key) that survives the process — that is what
// makes an interrupted `experiments -full` run resumable. All methods are
// safe for concurrent use.
type Cache struct {
	mu    sync.Mutex
	cap   int
	ll    *list.List // front = most recently used
	items map[string]*list.Element
	dir   string // "" = memory only

	// Checkpoint store (see ckpt.go): post-warmup snapshots in their own
	// small LRU and <key>.ckpt files, lazily initialized on first use.
	ckptLL    *list.List
	ckptItems map[string]*list.Element

	hits, misses, diskErrs, quarantined uint64
	// onQuarantine, when set, is called (under the cache lock) for every
	// corrupt disk entry set aside — Execute uses it to surface the
	// runner_cache_quarantined metric live.
	onQuarantine func()
}

// cacheEntry is one cached result. Runs and manifests are copied on Put
// and Get, so callers can never mutate the cached state.
type cacheEntry struct {
	key      string
	run      *stats.Run
	manifest *obs.Manifest
}

// diskEntry is the on-disk JSON layout (cacheSchema 2). Epoch pins the
// simulator semantics the result was produced under; entries from
// another epoch are misses (see Epoch). The result itself is nested as a
// raw payload covered by a CRC-32, so a bit flip anywhere in the result
// — even one that still parses as JSON — is detected and the entry
// quarantined instead of served.
type diskEntry struct {
	Schema  int             `json:"schema"`
	Epoch   int             `json:"epoch"`
	Key     string          `json:"key"`
	CRC     uint32          `json:"crc"`
	Payload json.RawMessage `json:"payload"`
}

// diskPayload is the CRC-covered part of a disk entry.
type diskPayload struct {
	Run      *stats.Run    `json:"run"`
	Manifest *obs.Manifest `json:"manifest,omitempty"`
}

// NewCache creates a cache holding up to capacity results in memory
// (non-positive = DefaultCacheCapacity). A non-empty dir additionally
// persists every entry as dir/<key>.json; the directory is created if
// missing.
func NewCache(capacity int, dir string) (*Cache, error) {
	if capacity <= 0 {
		capacity = DefaultCacheCapacity
	}
	if dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("runner: cache dir: %w", err)
		}
	}
	return &Cache{
		cap:   capacity,
		ll:    list.New(),
		items: make(map[string]*list.Element),
		dir:   dir,
	}, nil
}

// Get returns the cached run (and manifest) for key. A memory miss falls
// through to the disk store when one is configured. needManifest guards
// observed consumers: an entry recorded without probes cannot satisfy a
// run that must report a manifest, so it is a miss for that caller.
// Wrong-epoch disk entries are silent misses; corrupt ones are
// quarantined (renamed to *.corrupt) and then treated as misses — Get
// itself never errors.
func (c *Cache) Get(key string, needManifest bool) (*stats.Run, *obs.Manifest, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		ent := el.Value.(*cacheEntry)
		if !needManifest || ent.manifest != nil {
			c.ll.MoveToFront(el)
			c.hits++
			return copyRun(ent.run), copyManifest(ent.manifest), true
		}
	}
	if ent := c.loadDisk(key); ent != nil && (!needManifest || ent.manifest != nil) {
		c.install(ent)
		c.hits++
		return copyRun(ent.run), copyManifest(ent.manifest), true
	}
	c.misses++
	return nil, nil, false
}

// Put stores a finished result under key, evicting the least recently
// used in-memory entry beyond capacity and (when a directory is
// configured) persisting the entry to disk. Disk write failures degrade
// the cache, never the run; they are counted in Stats.
func (c *Cache) Put(key string, run *stats.Run, m *obs.Manifest) {
	if run == nil {
		return
	}
	ent := &cacheEntry{key: key, run: copyRun(run), manifest: copyManifest(m)}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.install(ent)
	if c.dir != "" {
		if err := c.writeDisk(ent); err != nil {
			c.diskErrs++
		}
	}
}

// install adds or replaces the in-memory entry for ent.key (caller holds
// the lock).
func (c *Cache) install(ent *cacheEntry) {
	if el, ok := c.items[ent.key]; ok {
		el.Value = ent
		c.ll.MoveToFront(el)
		return
	}
	c.items[ent.key] = c.ll.PushFront(ent)
	for c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*cacheEntry).key)
	}
}

// Len returns the number of in-memory entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Stats returns cumulative hit/miss counts and the number of failed disk
// writes.
func (c *Cache) Stats() (hits, misses, diskErrs uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, c.diskErrs
}

// Quarantined returns how many corrupt disk entries were set aside as
// *.corrupt files.
func (c *Cache) Quarantined() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.quarantined
}

// SetQuarantineHook registers f to be called once per quarantined entry
// (Execute wires this to the runner_cache_quarantined metric and live
// status). One hook at a time; the last call wins.
func (c *Cache) SetQuarantineHook(f func()) {
	c.mu.Lock()
	c.onQuarantine = f
	c.mu.Unlock()
}

// path returns the disk file for key.
func (c *Cache) path(key string) string {
	return filepath.Join(c.dir, key+".json")
}

// loadDisk reads and validates the disk entry for key, returning nil on
// any problem. The failure modes are deliberately split: a missing file
// or a valid-but-foreign entry (older schema, different epoch) is a plain
// miss, while a *corrupt* entry — unparsable JSON, a key that does not
// match the filename, or a CRC mismatch over the payload — is
// quarantined: renamed to <file>.corrupt so it is preserved for
// inspection, counted, and never consulted again.
func (c *Cache) loadDisk(key string) *cacheEntry {
	if c.dir == "" {
		return nil
	}
	b, err := os.ReadFile(c.path(key))
	if err != nil {
		return nil
	}
	var d diskEntry
	if err := json.Unmarshal(b, &d); err != nil {
		c.quarantine(key)
		return nil
	}
	if d.Schema != cacheSchema || d.Epoch != Epoch {
		// A well-formed entry from another simulator version: a miss, not
		// corruption (it will be overwritten by this run's Put).
		return nil
	}
	if d.Key != key || crc32.ChecksumIEEE(d.Payload) != d.CRC {
		c.quarantine(key)
		return nil
	}
	var p diskPayload
	if err := json.Unmarshal(d.Payload, &p); err != nil || p.Run == nil {
		c.quarantine(key)
		return nil
	}
	return &cacheEntry{key: key, run: p.Run, manifest: p.Manifest}
}

// quarantine sets aside the corrupt disk entry for key (caller holds the
// lock). The rename is best-effort: if it fails the file simply stays in
// place and will be quarantined again on the next Get.
func (c *Cache) quarantine(key string) {
	c.quarantineFile(c.path(key))
}

// quarantineFile renames path to path+".corrupt" (caller holds the lock) —
// shared by result entries and checkpoint files.
func (c *Cache) quarantineFile(path string) {
	if err := os.Rename(path, path+".corrupt"); err != nil {
		c.diskErrs++
		return
	}
	c.quarantined++
	if c.onQuarantine != nil {
		c.onQuarantine()
	}
}

// writeDisk persists ent atomically (temp file + fsync + rename), so a
// crash mid-write leaves either the old entry or none — never a torn
// file — and the rename never publishes data the kernel hasn't flushed.
func (c *Cache) writeDisk(ent *cacheEntry) error {
	payload, err := json.Marshal(diskPayload{Run: ent.run, Manifest: ent.manifest})
	if err != nil {
		return err
	}
	b, err := json.Marshal(diskEntry{
		Schema:  cacheSchema,
		Epoch:   Epoch,
		Key:     ent.key,
		CRC:     crc32.ChecksumIEEE(payload),
		Payload: payload,
	})
	if err != nil {
		return err
	}
	tmp, err := os.CreateTemp(c.dir, "."+ent.key+".tmp*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(append(b, '\n')); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return os.Rename(tmp.Name(), c.path(ent.key))
}

// copyRun deep-copies a run record so cached state cannot alias caller
// state (WindowIPC is the only reference field).
func copyRun(r *stats.Run) *stats.Run {
	if r == nil {
		return nil
	}
	cp := *r
	if r.WindowIPC != nil {
		cp.WindowIPC = append([]float64(nil), r.WindowIPC...)
	}
	return &cp
}

// copyManifest shallow-copies the manifest document. The maps inside are
// shared — consumers treat them as read-only — while the copied struct
// lets each consumer stamp its own Tool/Git fields without touching the
// cached original.
func copyManifest(m *obs.Manifest) *obs.Manifest {
	if m == nil {
		return nil
	}
	cp := *m
	return &cp
}
