package runner

import (
	"context"
	"errors"
	"fmt"
	"net"
	"reflect"
	"sync/atomic"
	"syscall"
	"testing"
	"time"

	"fdp/internal/core"
	"fdp/internal/obs"
	"fdp/internal/stats"
)

// fakeNetTimeout is a minimal net.Error with Timeout() true (what a
// faulted or dead link surfaces through an http.Client).
type fakeNetTimeout struct{}

func (fakeNetTimeout) Error() string   { return "fake: i/o timeout" }
func (fakeNetTimeout) Timeout() bool   { return true }
func (fakeNetTimeout) Temporary() bool { return true }

// TestClassifyNetErrors: the network-weather cases the distributed
// backend surfaces are transient — a retry against a surviving worker
// can succeed — while non-network unknowns stay fatal.
func TestClassifyNetErrors(t *testing.T) {
	cases := []struct {
		name string
		err  error
		want ErrClass
	}{
		{"deadline exceeded", context.DeadlineExceeded, ClassTransient},
		{"wrapped deadline", fmt.Errorf("lease: %w", context.DeadlineExceeded), ClassTransient},
		{"net timeout", fakeNetTimeout{}, ClassTransient},
		{"wrapped net timeout", fmt.Errorf("worker: %w", fakeNetTimeout{}), ClassTransient},
		{"op error", &net.OpError{Op: "dial", Net: "tcp", Err: errors.New("down")}, ClassTransient},
		{"wrapped op error", fmt.Errorf("post: %w", &net.OpError{Op: "read", Net: "tcp", Err: errors.New("rst")}), ClassTransient},
		{"connection refused", fmt.Errorf("dial: %w", syscall.ECONNREFUSED), ClassTransient},
		{"connection reset", fmt.Errorf("read: %w", syscall.ECONNRESET), ClassTransient},
		{"broken pipe", fmt.Errorf("write: %w", syscall.EPIPE), ClassTransient},
		// Caller cancellation is not weather; the casualty check owns it
		// upstream, and anything that leaks this far stays fatal.
		{"canceled", context.Canceled, ClassFatal},
		{"unknown", errors.New("anything"), ClassFatal},
		// An embedded class always wins over cause sniffing.
		{"classified wins", &Error{Class: ClassFatal, Err: fakeNetTimeout{}}, ClassFatal},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if got := Classify(c.err); got != c.want {
				t.Errorf("Classify(%v) = %v, want %v", c.err, got, c.want)
			}
		})
	}
}

// TestBackoffGolden pins the jitter stream. The seed and the attempt
// are both avalanche-mixed before combining; the previous linear fold
// (seed ^ retry*gamma) correlated the per-retry streams (with seed 0,
// retry r's successor state is retry r+1's start). These values changing
// silently would un-reproduce every recorded chaos run.
func TestBackoffGolden(t *testing.T) {
	p := RetryPolicy{Attempts: 8, Base: 10 * time.Millisecond, Cap: 80 * time.Millisecond}.normalized()
	golden := map[uint64][]time.Duration{
		0: {9531820, 18170038, 27157327, 66494007, 74031684, 47289282},
		BackoffSeed("00ff00ff00ff00ff"): {6119165, 11282630, 31760126, 54478556, 43317190, 40908209},
	}
	for seed, want := range golden {
		for i, w := range want {
			if got := p.Backoff(i+1, seed); got != w {
				t.Errorf("seed %d retry %d: backoff %d, want %d", seed, i+1, got, w)
			}
		}
	}
	// Once the exponential step saturates at Cap, consecutive attempts
	// draw from the same range — distinct draws are pure jitter quality.
	seen := map[time.Duration]int{}
	for r := 4; r <= 8; r++ { // step capped at 80ms from retry 4 on
		seen[p.Backoff(r, 0)]++
	}
	for d, n := range seen {
		if n > 1 {
			t.Errorf("capped attempts repeated jitter value %v ×%d", d, n)
		}
	}
}

// recordingBackend runs jobs through the real simulator (so results are
// honest) while counting calls — runner.Backend's success path.
type recordingBackend struct {
	calls atomic.Int32
	fail  func(job BackendJob) error
}

func (b *recordingBackend) Run(ctx context.Context, job BackendJob) (*stats.Run, *obs.Manifest, error) {
	b.calls.Add(1)
	if b.fail != nil {
		if err := b.fail(job); err != nil {
			return nil, nil, err
		}
	}
	sp := job.Spec
	run, err := core.Simulate(sp.Config, sp.NewOracle(), sp.Workload, sp.Warmup, sp.Measure)
	if err != nil {
		return nil, nil, err
	}
	return run, nil, nil
}

// TestExecuteBackendRunsJobs: with a Backend configured every attempt
// executes remotely, results match direct simulation, and the cache
// still short-circuits the second campaign without backend calls.
func TestExecuteBackendRunsJobs(t *testing.T) {
	specs := smallSpecs(t)
	be := &recordingBackend{}
	cache, err := NewCache(0, "")
	if err != nil {
		t.Fatal(err)
	}
	results, err := Execute(context.Background(), specs, Options{Parallel: 2, Backend: be, Cache: cache})
	if err != nil {
		t.Fatal(err)
	}
	if got := be.calls.Load(); got != int32(len(specs)) {
		t.Fatalf("backend ran %d jobs, want %d", got, len(specs))
	}
	for i, sp := range specs {
		want, err := core.Simulate(sp.Config, sp.NewOracle(), sp.Workload, sp.Warmup, sp.Measure)
		if err != nil {
			t.Fatal(err)
		}
		want.Class = sp.Class
		if !reflect.DeepEqual(results[i].Run, want) {
			t.Fatalf("spec %d: backend result diverged from direct simulation", i)
		}
	}
	// Warm cache: zero further backend calls.
	if _, err := Execute(context.Background(), specs, Options{Parallel: 2, Backend: be, Cache: cache}); err != nil {
		t.Fatal(err)
	}
	if got := be.calls.Load(); got != int32(len(specs)) {
		t.Fatalf("cached campaign still called the backend (%d calls total)", got)
	}
}

// unavailableBackend models a fully lost fleet.
type unavailableBackend struct{ calls atomic.Int32 }

func (b *unavailableBackend) Run(ctx context.Context, job BackendJob) (*stats.Run, *obs.Manifest, error) {
	b.calls.Add(1)
	return nil, nil, fmt.Errorf("%w: every worker is lost", ErrBackendUnavailable)
}

// TestExecuteBackendUnavailableFallsBackLocal: losing the whole fleet
// degrades each job to local execution instead of failing the campaign.
func TestExecuteBackendUnavailableFallsBackLocal(t *testing.T) {
	specs := smallSpecs(t)[:2]
	be := &unavailableBackend{}
	st := &Status{}
	spans := obs.NewSpanLog()
	results, err := Execute(context.Background(), specs, Options{Parallel: 2, Backend: be, Status: st, Spans: spans})
	if err != nil {
		t.Fatal(err)
	}
	for i, sp := range specs {
		want, serr := core.Simulate(sp.Config, sp.NewOracle(), sp.Workload, sp.Warmup, sp.Measure)
		if serr != nil {
			t.Fatal(serr)
		}
		want.Class = sp.Class
		if !reflect.DeepEqual(results[i].Run, want) {
			t.Fatalf("spec %d: fallback result diverged from direct simulation", i)
		}
	}
	if got := st.BackendFallbacks.Load(); got != int64(len(specs)) {
		t.Fatalf("recorded %d backend fallbacks, want %d", got, len(specs))
	}
	falls := 0
	for _, sp := range spans.All() {
		if sp.Kind == obs.SpanReassign && sp.Detail == "local-fallback" {
			falls++
		}
	}
	if falls != len(specs) {
		t.Fatalf("%d local-fallback spans, want %d", falls, len(specs))
	}
}

// TestExecuteBackendErrorsClassified: a transient backend error is
// retried (and can succeed on the next attempt); a fatal one aborts.
func TestExecuteBackendErrorsClassified(t *testing.T) {
	specs := smallSpecs(t)[:1]
	var once atomic.Bool
	be := &recordingBackend{fail: func(job BackendJob) error {
		if once.CompareAndSwap(false, true) {
			return &Error{Class: ClassTransient, Job: job.Label, Err: fakeNetTimeout{}}
		}
		return nil
	}}
	st := &Status{}
	results, err := Execute(context.Background(), specs, Options{
		Backend: be, Status: st,
		Retry: RetryPolicy{Attempts: 3, Base: time.Millisecond, Cap: 2 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Run == nil {
		t.Fatal("retried job has no result")
	}
	if st.Retries.Load() != 1 {
		t.Fatalf("retries = %d, want 1", st.Retries.Load())
	}

	fatal := &recordingBackend{fail: func(job BackendJob) error {
		return &Error{Class: ClassFatal, Job: job.Label, Err: errors.New("worker invariant violation")}
	}}
	if _, err := Execute(context.Background(), specs, Options{Backend: fatal}); err == nil {
		t.Fatal("fatal backend error did not abort the campaign")
	}
}

// TestExecuteKeepGoingWatchdogQuarantine is the keep-going × watchdog ×
// journal interplay contract: a job hung past the watchdog deadline is
// quarantined exactly once — one errored slot in the results, one
// quarantine count — and its key must NOT enter the completion journal,
// so a resume re-simulates it instead of trusting a cache entry that
// never existed.
func TestExecuteKeepGoingWatchdogQuarantine(t *testing.T) {
	specs := smallSpecs(t)
	dir := t.TempDir()
	cache, err := NewCache(0, dir+"/cache")
	if err != nil {
		t.Fatal(err)
	}
	jr := openTestJournal(t, dir+"/run.wal")
	st := &Status{}
	reg := obs.NewRegistry()
	results, err := Execute(context.Background(), specs, Options{
		Parallel:        2,
		Cache:           cache,
		Journal:         jr,
		Status:          st,
		Reg:             reg,
		KeepGoing:       true,
		WatchdogTimeout: 400 * time.Millisecond,
		FaultHook: func(ctx context.Context, job, attempt int) error {
			if job == 0 {
				<-ctx.Done()
				return ctx.Err()
			}
			return nil
		},
	})
	var re *Error
	if !errors.As(err, &re) || !errors.Is(err, ErrHung) {
		t.Fatalf("want a classified hung-job error, got %v", err)
	}
	hung := 0
	for i, r := range results {
		if i == 0 {
			if r.Err == nil || r.Run != nil {
				t.Fatalf("hung job: err=%v run=%v", r.Err, r.Run)
			}
			hung++
			continue
		}
		if r.Err != nil || r.Run == nil {
			t.Fatalf("healthy job %d did not survive keep-going: %v", i, r.Err)
		}
	}
	if hung != 1 {
		t.Fatalf("hung job appears %d times in results, want exactly 1", hung)
	}
	if got := reg.Counter(MetricQuarantined).Value(); got != 1 {
		t.Fatalf("runner_jobs_quarantined = %d, want exactly 1", got)
	}
	if st.Quarantined.Load() != 1 || st.Watchdog.Load() != 1 {
		t.Fatalf("status quarantined=%d watchdog=%d, want 1/1", st.Quarantined.Load(), st.Watchdog.Load())
	}
	if jr.Done(specs[0].Key()) {
		t.Fatal("journal marked the quarantined job's key done — a resume would trust a result that was never produced")
	}
	if jr.Len() != len(specs)-1 {
		t.Fatalf("journal has %d keys, want %d", jr.Len(), len(specs)-1)
	}

	// Resume contract: the quarantined spec re-simulates (no cache trust),
	// the healthy ones replay from cache.
	reg2 := obs.NewRegistry()
	if _, err := Execute(context.Background(), specs, Options{Parallel: 2, Cache: cache, Journal: jr, Reg: reg2}); err != nil {
		t.Fatal(err)
	}
	if hits := reg2.Counter(MetricCacheHits).Value(); hits != uint64(len(specs)-1) {
		t.Fatalf("resume served %d hits, want %d", hits, len(specs)-1)
	}
	if misses := reg2.Counter(MetricCacheMisses).Value(); misses != 1 {
		t.Fatalf("resume re-simulated %d jobs, want exactly 1 (the quarantined one)", misses)
	}
}
