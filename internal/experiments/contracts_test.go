package experiments

import (
	"strings"
	"testing"

	"fdp/internal/repro"
)

// TestContractsWellFormed: every registered contract must validate, its
// artifact must be a real experiment ID (the contract scores a figure
// that exists), and artifacts must be unique across the registry.
func TestContractsWellFormed(t *testing.T) {
	seen := map[string]bool{}
	for _, c := range Contracts() {
		c := c
		if err := c.Validate(); err != nil {
			t.Errorf("%s: %v", c.Artifact, err)
			continue
		}
		if seen[c.Artifact] {
			t.Errorf("duplicate contract for artifact %s", c.Artifact)
		}
		seen[c.Artifact] = true
		if _, ok := ByID(c.Artifact); !ok {
			t.Errorf("%s: contract scores an unknown experiment ID", c.Artifact)
		}
		if len(c.Expectations) == 0 {
			t.Errorf("%s: contract with no expectations", c.Artifact)
		}
		for _, e := range c.Expectations {
			if e.Claim == "" {
				t.Errorf("%s/%s: expectation with no claim text", c.Artifact, e.ID)
			}
		}
	}
	if len(seen) < 6 {
		t.Errorf("only %d contracts registered, want >= 6", len(seen))
	}
}

// TestScorePlumbing runs the full scoring campaign at mini scale and
// checks document structure only — mini-scale runs are too small for
// the calibrated shape thresholds to hold (that is TestHeadlineShapes'
// job at quick scale), but every expectation must still evaluate to a
// concrete outcome with a measured-vs-expected detail line.
func TestScorePlumbing(t *testing.T) {
	card, err := Score(miniOptions())
	if err != nil {
		t.Fatal(err)
	}
	if card.Schema != repro.ScorecardSchema {
		t.Errorf("schema = %d", card.Schema)
	}
	if !strings.Contains(card.Scale, "1 workloads") {
		t.Errorf("scale = %q", card.Scale)
	}
	if len(card.Artifacts) != len(Contracts()) {
		t.Fatalf("artifacts = %d, want %d", len(card.Artifacts), len(Contracts()))
	}
	for i, c := range Contracts() {
		a := card.Artifacts[i]
		if a.Artifact != c.Artifact {
			t.Errorf("artifact[%d] = %s, want %s", i, a.Artifact, c.Artifact)
		}
		if len(a.Outcomes) != len(c.Expectations) {
			t.Errorf("%s: %d outcomes, want %d", a.Artifact, len(a.Outcomes), len(c.Expectations))
			continue
		}
		for j, o := range a.Outcomes {
			if o.ID != c.Expectations[j].ID {
				t.Errorf("%s: outcome[%d] = %s, want %s", a.Artifact, j, o.ID, c.Expectations[j].ID)
			}
			if o.Detail == "" {
				t.Errorf("%s/%s: outcome with no detail", a.Artifact, o.ID)
			}
			for _, m := range o.Values {
				if !m.Finite {
					t.Errorf("%s/%s: non-finite measurement for %s at mini scale", a.Artifact, o.ID, m.Config)
				}
			}
		}
	}
	// The scorecard must render and round-trip regardless of pass/fail.
	if card.String() == "" {
		t.Error("empty text scorecard")
	}
	b, err := card.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := repro.DecodeScorecard(b); err != nil {
		t.Fatal(err)
	}
}
