package indirect

import (
	"testing"

	"fdp/internal/bpred"
	"fdp/internal/xrand"
)

func newUnderTest() (*ITTAGE, *bpred.History) {
	it := New(DefaultConfig())
	h := bpred.NewHistory(it.Specs())
	it.Bind(0)
	return it, h
}

func TestColdPredictIsUnknown(t *testing.T) {
	it, h := newUnderTest()
	if _, ok := it.Predict(0x1000, h); ok {
		t.Error("cold predictor claimed a prediction")
	}
}

func TestLearnsMonomorphicTarget(t *testing.T) {
	it, h := newUnderTest()
	pc, tgt := uint64(0x40_0000), uint64(0x41_0000)
	for i := 0; i < 10; i++ {
		it.Update(pc, h, tgt)
		h.InsertTaken(pc, tgt)
	}
	got, ok := it.Predict(pc, h)
	if !ok || got != tgt {
		t.Errorf("Predict = %#x, %v", got, ok)
	}
}

func TestLearnsHistoryCorrelatedTargets(t *testing.T) {
	// Indirect branch alternates between two targets in lockstep with a
	// preceding taken branch pattern; requires tagged tables.
	it, h := newUnderTest()
	pc := uint64(0x40_0000)
	t1, t2 := uint64(0x50_0000), uint64(0x60_0000)
	correct, measured := 0, 0
	for i := 0; i < 6000; i++ {
		// Precursor taken-branch with alternating target, feeding history.
		pre := uint64(0x1000)
		preTgt := uint64(0x2000)
		if i%2 == 0 {
			preTgt = 0x3000
		}
		h.InsertTaken(pre, preTgt)
		want := t1
		if i%2 == 0 {
			want = t2
		}
		got, ok := it.Predict(pc, h)
		if i > 3000 {
			measured++
			if ok && got == want {
				correct++
			}
		}
		it.Update(pc, h, want)
		h.InsertTaken(pc, want)
	}
	acc := float64(correct) / float64(measured)
	if acc < 0.95 {
		t.Errorf("correlated target accuracy = %.3f", acc)
	}
}

func TestBaseTableFallback(t *testing.T) {
	// A noisy branch: base table still supplies the last target.
	it, h := newUnderTest()
	rng := xrand.New(3)
	pc := uint64(0x7000)
	targets := []uint64{0x100, 0x200, 0x300}
	var last uint64
	for i := 0; i < 200; i++ {
		tgt := targets[rng.Intn(3)]
		it.Update(pc, h, tgt)
		last = tgt
	}
	got, ok := it.Predict(pc, h)
	if !ok {
		t.Fatal("no prediction after 200 updates")
	}
	// Prediction must be one of the observed targets; base table would
	// give the last.
	valid := got == targets[0] || got == targets[1] || got == targets[2]
	if !valid {
		t.Errorf("predicted unseen target %#x (last=%#x)", got, last)
	}
}

func TestDistinctBranchesIndependent(t *testing.T) {
	it, h := newUnderTest()
	for i := 0; i < 20; i++ {
		it.Update(0x1000, h, 0xAAAA)
		it.Update(0x2000, h, 0xBBBB)
	}
	a, _ := it.Predict(0x1000, h)
	b, _ := it.Predict(0x2000, h)
	if a != 0xAAAA || b != 0xBBBB {
		t.Errorf("cross-talk: %#x %#x", a, b)
	}
}

func TestStorageBits(t *testing.T) {
	it, _ := newUnderTest()
	if it.StorageBits() <= 0 {
		t.Error("non-positive storage")
	}
	// Default: 512*48 + 4*512*(tag+52) bits, order ~15KB.
	kb := float64(it.StorageBits()) / 8 / 1024
	if kb < 4 || kb > 64 {
		t.Errorf("storage %.1fKB outside sane range", kb)
	}
	if it.Name() != "ittage" {
		t.Errorf("Name = %s", it.Name())
	}
}

func TestSpecsShape(t *testing.T) {
	it := New(DefaultConfig())
	specs := it.Specs()
	if len(specs) != 2*len(DefaultConfig().Tables) {
		t.Errorf("specs = %d", len(specs))
	}
	for _, s := range specs {
		if s.Length <= 0 || s.Width <= 0 {
			t.Errorf("bad spec %+v", s)
		}
	}
}

func TestRecoverFromTargetChange(t *testing.T) {
	// Monomorphic branch migrates to a new target; predictor must follow.
	it, h := newUnderTest()
	pc := uint64(0x9000)
	for i := 0; i < 50; i++ {
		it.Update(pc, h, 0x111)
	}
	for i := 0; i < 50; i++ {
		it.Update(pc, h, 0x222)
	}
	got, ok := it.Predict(pc, h)
	if !ok || got != 0x222 {
		t.Errorf("after migration: %#x, %v", got, ok)
	}
}
