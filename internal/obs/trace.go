package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
)

// Kind classifies a pipeline event.
type Kind uint8

// Pipeline event kinds. A and B are kind-specific arguments.
const (
	// EvFTQEnqueue: a block entered the FTQ. A = entry sequence number,
	// B = FTQ occupancy after the push.
	EvFTQEnqueue Kind = iota
	// EvFTQDequeue: the FTQ head was fully fetched and released.
	// A = entry sequence number, B = occupancy after the pop.
	EvFTQDequeue
	// EvPrefetchIssue: a prefetch fill was accepted by the MSHRs.
	// A = line address, B = predicted fill latency in cycles.
	EvPrefetchIssue
	// EvFill: a line arrived in the L1I. A = line address,
	// B = 1 for a prefetch fill, 0 for a demand fill.
	EvFill
	// EvResteer: post-fetch correction redirected the frontend.
	// A = recovered target PC, B = younger FTQ entries flushed.
	EvResteer
	// EvFlush: a pipeline or history-fixup flush squashed the frontend.
	// A = redirect PC, B = FTQ entries flushed.
	EvFlush

	numKinds
)

var kindNames = [numKinds]string{
	EvFTQEnqueue:    "enq",
	EvFTQDequeue:    "deq",
	EvPrefetchIssue: "pf",
	EvFill:          "fill",
	EvResteer:       "resteer",
	EvFlush:         "flush",
}

// String returns the JSONL wire name of the kind.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// KindFromString maps a wire name back to its Kind.
func KindFromString(s string) (Kind, bool) {
	for k, name := range kindNames {
		if name == s {
			return Kind(k), true
		}
	}
	return 0, false
}

// Event is one cycle-stamped pipeline event.
type Event struct {
	Cycle uint64
	Kind  Kind
	A     uint64
	B     uint64
}

// Tracer is a fixed-capacity ring buffer of events. When full, the oldest
// events are overwritten; Dropped reports how many were lost. All methods
// are safe on a nil receiver so probe sites need no tracing-enabled check.
type Tracer struct {
	cycle uint64
	buf   []Event
	n     uint64 // total events emitted since the last reset
}

// NewTracer creates a tracer holding the last capacity events.
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		panic("obs: non-positive tracer capacity")
	}
	return &Tracer{buf: make([]Event, capacity)}
}

// SetCycle stamps subsequent events with the given cycle. Called once per
// simulated cycle by the core. Safe on a nil receiver.
func (t *Tracer) SetCycle(now uint64) {
	if t != nil {
		t.cycle = now
	}
}

// Emit records an event at the current cycle. Safe on a nil receiver.
func (t *Tracer) Emit(k Kind, a, b uint64) {
	if t == nil {
		return
	}
	t.buf[t.n%uint64(len(t.buf))] = Event{Cycle: t.cycle, Kind: k, A: a, B: b}
	t.n++
}

// Len returns the number of buffered events.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	if t.n < uint64(len(t.buf)) {
		return int(t.n)
	}
	return len(t.buf)
}

// Dropped returns how many events were overwritten since the last reset.
func (t *Tracer) Dropped() uint64 {
	if t == nil || t.n <= uint64(len(t.buf)) {
		return 0
	}
	return t.n - uint64(len(t.buf))
}

// Events appends the buffered events, oldest first, to out and returns it.
func (t *Tracer) Events(out []Event) []Event {
	if t == nil {
		return out
	}
	n := uint64(t.Len())
	start := t.n - n
	for i := uint64(0); i < n; i++ {
		out = append(out, t.buf[(start+i)%uint64(len(t.buf))])
	}
	return out
}

// Reset discards all buffered events (the cycle stamp is kept).
func (t *Tracer) Reset() {
	if t != nil {
		t.n = 0
	}
}

// AppendJSONL appends the single-line JSON encoding of ev (without a
// trailing newline) to dst and returns it.
func AppendJSONL(dst []byte, ev Event) []byte {
	dst = append(dst, `{"c":`...)
	dst = strconv.AppendUint(dst, ev.Cycle, 10)
	dst = append(dst, `,"k":"`...)
	dst = append(dst, ev.Kind.String()...)
	dst = append(dst, `","a":`...)
	dst = strconv.AppendUint(dst, ev.A, 10)
	dst = append(dst, `,"b":`...)
	dst = strconv.AppendUint(dst, ev.B, 10)
	dst = append(dst, '}')
	return dst
}

// wireEvent is the JSONL representation of an Event.
type wireEvent struct {
	C uint64 `json:"c"`
	K string `json:"k"`
	A uint64 `json:"a"`
	B uint64 `json:"b"`
}

// ParseEvent decodes one JSONL event line.
func ParseEvent(line []byte) (Event, error) {
	var w wireEvent
	if err := json.Unmarshal(line, &w); err != nil {
		return Event{}, fmt.Errorf("obs: bad event line: %w", err)
	}
	k, ok := KindFromString(w.K)
	if !ok {
		return Event{}, fmt.Errorf("obs: unknown event kind %q", w.K)
	}
	return Event{Cycle: w.C, Kind: k, A: w.A, B: w.B}, nil
}

// WriteJSONL drains the buffered events to w, one JSON object per line,
// oldest first.
func (t *Tracer) WriteJSONL(w io.Writer) error {
	if t == nil {
		return nil
	}
	bw := bufio.NewWriter(w)
	var line []byte
	n := uint64(t.Len())
	start := t.n - n
	for i := uint64(0); i < n; i++ {
		ev := t.buf[(start+i)%uint64(len(t.buf))]
		line = AppendJSONL(line[:0], ev)
		line = append(line, '\n')
		if _, err := bw.Write(line); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// runHeader is the non-event marker line separating runs in a shared
// trace file.
type runHeader struct {
	Run string `json:"run"`
}

// WriteRunTrace writes a {"run": label} header line followed by the
// tracer's events as JSONL. Multiple runs can share one file.
func WriteRunTrace(w io.Writer, label string, t *Tracer) error {
	hdr, err := json.Marshal(runHeader{Run: label})
	if err != nil {
		return err
	}
	if _, err := w.Write(append(hdr, '\n')); err != nil {
		return err
	}
	return t.WriteJSONL(w)
}

// ReadJSONL parses an event stream produced by WriteJSONL or
// WriteRunTrace, skipping run-header lines and blank lines.
func ReadJSONL(r io.Reader) ([]Event, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	var events []Event
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var hdr runHeader
		if err := json.Unmarshal(line, &hdr); err == nil && hdr.Run != "" {
			continue
		}
		ev, err := ParseEvent(line)
		if err != nil {
			return nil, err
		}
		events = append(events, ev)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return events, nil
}
