package cache

import (
	"testing"
	"testing/quick"
)

func TestNewGeometry(t *testing.T) {
	c := New("l1i", 32*1024, 8)
	if c.Sets() != 64 || c.Ways() != 8 || c.SizeBytes() != 32*1024 {
		t.Errorf("geometry: sets=%d ways=%d size=%d", c.Sets(), c.Ways(), c.SizeBytes())
	}
	if c.Name() != "l1i" {
		t.Errorf("Name = %q", c.Name())
	}
}

func TestNewPanicsOnBadGeometry(t *testing.T) {
	for _, tc := range []struct{ size, ways int }{
		{0, 8}, {1024, 0}, {3 * LineBytes, 1}, // 3 sets: not a power of two
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%d,%d) did not panic", tc.size, tc.ways)
				}
			}()
			New("bad", tc.size, tc.ways)
		}()
	}
}

func TestProbeMissThenHit(t *testing.T) {
	c := New("c", 8*LineBytes, 2)
	if hit, _ := c.Probe(5); hit {
		t.Fatal("hit in empty cache")
	}
	w := c.Fill(5, false)
	hit, w2 := c.Probe(5)
	if !hit || w2 != w {
		t.Fatalf("after fill: hit=%v way=%d want way %d", hit, w2, w)
	}
	if c.Probes != 2 || c.Hits != 1 || c.Misses != 1 {
		t.Errorf("stats: %d probes %d hits %d misses", c.Probes, c.Hits, c.Misses)
	}
}

func TestLRUReplacement(t *testing.T) {
	// 1 set, 2 ways: lines mapping to set 0.
	c := New("c", 2*LineBytes, 2)
	c.Fill(0, false)
	c.Fill(1, false)
	c.Probe(0)       // 0 now MRU
	c.Fill(2, false) // evicts 1
	if !c.Peek(0) {
		t.Error("MRU line 0 evicted")
	}
	if c.Peek(1) {
		t.Error("LRU line 1 survived")
	}
	if !c.Peek(2) {
		t.Error("new line 2 absent")
	}
	if c.Evictions != 1 {
		t.Errorf("evictions = %d", c.Evictions)
	}
}

func TestPrefetchedBitAndUsefulness(t *testing.T) {
	c := New("c", 4*LineBytes, 4)
	c.Fill(7, true)
	if c.PrefFilled != 1 {
		t.Errorf("PrefFilled = %d", c.PrefFilled)
	}
	hit, _ := c.Probe(7)
	if !hit || c.PrefHits != 1 {
		t.Errorf("useful prefetch not counted: hit=%v prefHits=%d", hit, c.PrefHits)
	}
	// Second demand hit must not double-count usefulness.
	c.Probe(7)
	if c.PrefHits != 1 {
		t.Errorf("PrefHits double-counted: %d", c.PrefHits)
	}
}

func TestDemandFillClearsPrefetchBit(t *testing.T) {
	c := New("c", 4*LineBytes, 4)
	c.Fill(9, true)
	c.Fill(9, false) // demand refill of present line
	c.Probe(9)
	if c.PrefHits != 0 {
		t.Errorf("prefetch bit survived demand fill: PrefHits=%d", c.PrefHits)
	}
}

func TestProbeQuietCountsProbeOnly(t *testing.T) {
	c := New("c", 4*LineBytes, 4)
	c.Fill(3, true)
	if !c.ProbeQuiet(3) {
		t.Error("ProbeQuiet missed present line")
	}
	if c.ProbeQuiet(4) {
		t.Error("ProbeQuiet hit absent line")
	}
	if c.Probes != 2 {
		t.Errorf("Probes = %d, want 2", c.Probes)
	}
	if c.Hits != 0 || c.Misses != 0 {
		t.Errorf("ProbeQuiet affected hit/miss stats: %d/%d", c.Hits, c.Misses)
	}
	// Prefetched bit untouched.
	c.Probe(3)
	if c.PrefHits != 1 {
		t.Error("ProbeQuiet consumed prefetched bit")
	}
}

func TestPeekDoesNotTouchLRU(t *testing.T) {
	c := New("c", 2*LineBytes, 2)
	c.Fill(0, false)
	c.Fill(1, false)
	c.Peek(0)        // must NOT make 0 MRU
	c.Fill(2, false) // evicts 0 (it is LRU)
	if c.Peek(0) {
		t.Error("Peek updated LRU")
	}
}

func TestResetAndResetStats(t *testing.T) {
	c := New("c", 4*LineBytes, 2)
	c.Fill(1, false)
	c.Probe(1)
	c.ResetStats()
	if c.Probes != 0 || c.Hits != 0 {
		t.Error("ResetStats left counters")
	}
	if !c.Peek(1) {
		t.Error("ResetStats dropped contents")
	}
	c.Reset()
	if c.Peek(1) {
		t.Error("Reset kept contents")
	}
}

// Property: after filling any line, probing it hits, and capacity is never
// exceeded (filling K distinct lines into an N-line cache keeps at most N).
func TestFillProbeProperty(t *testing.T) {
	f := func(lines []uint16) bool {
		c := New("c", 16*LineBytes, 4)
		for _, l := range lines {
			c.Fill(uint64(l), false)
			if hit, _ := c.Probe(uint64(l)); !hit {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSetConflictEviction(t *testing.T) {
	c := New("c", 16*LineBytes, 2) // 8 sets, 2 ways
	// Three lines in the same set (stride 8): third fill evicts first.
	c.Fill(0, false)
	c.Fill(8, false)
	c.Fill(16, false)
	if c.Peek(0) {
		t.Error("line 0 should be evicted by set conflict")
	}
	if !c.Peek(8) || !c.Peek(16) {
		t.Error("later lines missing")
	}
}

func TestTLB(t *testing.T) {
	tlb := NewTLB(64, 4)
	addr := uint64(0x40_0000)
	if tlb.Probe(addr) {
		t.Error("hit in empty TLB")
	}
	tlb.Fill(addr)
	if !tlb.Probe(addr) {
		t.Error("miss after fill")
	}
	// Same page, different offset: hit.
	if !tlb.Probe(addr + 0xfff) {
		t.Error("same-page probe missed")
	}
	// Different page: miss.
	if tlb.Probe(addr + 0x1000) {
		t.Error("different-page probe hit")
	}
	if tlb.Misses() != 2 {
		t.Errorf("Misses = %d", tlb.Misses())
	}
	tlb.Reset()
	if tlb.Probe(addr) {
		t.Error("hit after Reset")
	}
}
