package core

import (
	"errors"
	"fmt"

	"fdp/internal/obs"
)

// ErrInvariant marks a failed online invariant check: the machine state
// violated a structural property that must hold on every cycle, which is
// by definition a simulator bug, never a property of the workload.
// Callers classify it with errors.Is.
var ErrInvariant = errors.New("core: invariant violation")

// checker is the online invariant checker state (-check mode). It is
// deliberately read-only with respect to the machine: enabling it cannot
// change any simulation result, only detect when one is untrustworthy.
// When disabled (the default) the only cost is one nil check per cycle,
// keeping the steady-state cycle loop at zero allocs/op and the golden
// manifests byte-identical.
type checker struct {
	// err is the first violation observed; the run stops at the next
	// cycle boundary once it is set.
	err error
	// baseCycle is the cycle count at the last stats reset, the baseline
	// of the incremental accounting-conservation check.
	baseCycle uint64
}

// EnableChecks turns on per-cycle invariant checking: FTQ occupancy
// within capacity, decode-queue occupancy within capacity, RAS depth
// bounds on both the speculative and architectural stacks, MSHR
// allocate/release leak detection, and incremental cycle-accounting
// conservation. Violations stop the run with an error wrapping
// ErrInvariant.
func (c *Core) EnableChecks() {
	c.check = &checker{baseCycle: c.now}
}

// CheckErr returns the first invariant violation observed so far (nil
// when checking is disabled or no violation occurred). RunContext returns
// the same error; this accessor serves Step-driven tests and tools.
func (c *Core) CheckErr() error {
	if c.check == nil {
		return nil
	}
	return c.check.err
}

// violate records the first violation (later ones are dropped: once the
// state is corrupt, follow-on noise only buries the root cause).
func (c *Core) violate(format string, args ...any) {
	if c.check.err == nil {
		c.check.err = fmt.Errorf("%w at cycle %d: %s", ErrInvariant, c.now, fmt.Sprintf(format, args...))
	}
}

// checkCycle runs every online invariant at the end of one cycle. It
// only reads machine state, so the checked and unchecked simulations are
// cycle-for-cycle identical.
func (c *Core) checkCycle() {
	// FTQ occupancy must stay within the configured capacity.
	if n, capa := c.q.Len(), c.q.Cap(); n < 0 || n > capa {
		c.violate("ftq occupancy %d outside [0, %d]", n, capa)
	}
	// Decode-queue occupancy must stay within its ring.
	if c.dqLen < 0 || c.dqLen > len(c.dq) {
		c.violate("decode queue occupancy %d outside [0, %d]", c.dqLen, len(c.dq))
	}
	// RAS depth bounds on both copies of the stack.
	if n, d := c.rasSpec.Size(), c.rasSpec.Depth(); n < 0 || n > d {
		c.violate("speculative RAS size %d outside [0, %d]", n, d)
	}
	if n, d := c.rasArch.Size(), c.rasArch.Depth(); n < 0 || n > d {
		c.violate("architectural RAS size %d outside [0, %d]", n, d)
	}
	// MSHR file: never over-allocated, and no fill past its completion
	// cycle may still be in flight (a missed release is a leak).
	if err := c.hier.CheckInvariants(c.now); err != nil {
		c.violate("%v", err)
	}
	// Accounting conservation, incrementally: every elapsed cycle since
	// the last stats reset is attributed to exactly one bucket.
	var sum uint64
	for _, v := range c.run.Acct {
		sum += v
	}
	if elapsed := c.now - c.check.baseCycle; sum != elapsed {
		c.violate("accounting sum %d != %d elapsed cycles (%s)", sum, elapsed, acctDump(c.run.Acct))
	}
}

// acctDump renders the accounting vector for violation messages.
func acctDump(v [obs.NumAcctBuckets]uint64) string {
	s := ""
	for b, n := range v {
		if b > 0 {
			s += " "
		}
		s += fmt.Sprintf("%s=%d", obs.AcctBucketNames[b], n)
	}
	return s
}
