// Command sweep runs one-dimensional parameter sweeps and emits CSV, for
// ad-hoc sensitivity studies beyond the canned experiments.
//
// Usage:
//
//	sweep -param ftq -values 2,4,8,16,24,32
//	sweep -param btb -values 1024,4096,16384 -workloads server_a,server_b
//	sweep -param resolve -values 8,14,20,30 -pfc=false
//
// Output: one CSV row per (value, workload) plus a geomean summary row per
// value, on stdout.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime/pprof"
	"strconv"
	"strings"

	"fdp/internal/core"
	"fdp/internal/obs"
	"fdp/internal/stats"
	"fdp/internal/synth"
)

// params maps sweepable parameter names to config mutators.
var params = map[string]func(*core.Config, int){
	"ftq":      func(c *core.Config, v int) { c.FTQEntries = v },
	"btb":      func(c *core.Config, v int) { c.BTBEntries = v },
	"predict":  func(c *core.Config, v int) { c.PredictWidth = v },
	"fetch":    func(c *core.Config, v int) { c.FetchWidth = v },
	"resolve":  func(c *core.Config, v int) { c.ResolveLatency = v },
	"btblat":   func(c *core.Config, v int) { c.BTBLatency = v },
	"mshrs":    func(c *core.Config, v int) { c.MSHRs = v },
	"l1i":      func(c *core.Config, v int) { c.L1IBytes = v },
	"ras":      func(c *core.Config, v int) { c.RASDepth = v },
	"taken":    func(c *core.Config, v int) { c.MaxTakenPerCycle = v },
	"memlat":   func(c *core.Config, v int) { c.Lat.Mem = uint64(v) },
	"l1btb":    func(c *core.Config, v int) { c.L1BTBEntries = v; c.L1BTBWays = 4; c.L2BTBPenalty = c.BTBLatency },
	"decodeq":  func(c *core.Config, v int) { c.DecodeQueueCap = v },
	"pfdegree": func(c *core.Config, v int) { c.PrefetchDegree = v },
}

func main() {
	var (
		param     = flag.String("param", "ftq", "parameter to sweep: "+paramNames())
		valuesStr = flag.String("values", "2,4,8,16,24,32", "comma-separated values")
		wlStr     = flag.String("workloads", "server_a,client_a,spec_a", "comma-separated workloads, or 'all'")
		pfc       = flag.Bool("pfc", true, "post-fetch correction")
		warmup    = flag.Uint64("warmup", 100_000, "warmup instructions")
		measure   = flag.Uint64("measure", 400_000, "measured instructions")

		metricsOut = flag.String("metrics", "", "write per-run observability manifests as JSONL to this file")
		traceOut   = flag.String("trace", "", "write pipeline event traces as JSONL to this file")
		traceCap   = flag.Int("trace-cap", 1<<14, "event-trace ring capacity (last N events per run)")
		pprofOut   = flag.String("pprof", "", "write a CPU profile of the sweep to this file")
	)
	flag.Parse()

	if *pprofOut != "" {
		f, err := os.Create(*pprofOut)
		if err != nil {
			fmt.Fprintf(os.Stderr, "sweep: %v\n", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "sweep: %v\n", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	var metricsW, traceW *os.File
	openOut := func(path string) *os.File {
		f, err := os.Create(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "sweep: %v\n", err)
			os.Exit(1)
		}
		return f
	}
	if *metricsOut != "" {
		metricsW = openOut(*metricsOut)
		defer metricsW.Close()
	}
	if *traceOut != "" {
		if *traceCap <= 0 {
			fmt.Fprintf(os.Stderr, "sweep: -trace-cap must be positive (got %d)\n", *traceCap)
			os.Exit(1)
		}
		traceW = openOut(*traceOut)
		defer traceW.Close()
	}
	gitRev := ""
	if metricsW != nil {
		gitRev = obs.GitDescribe()
	}

	mutate, ok := params[*param]
	if !ok {
		fmt.Fprintf(os.Stderr, "sweep: unknown parameter %q (have %s)\n", *param, paramNames())
		os.Exit(1)
	}
	var values []int
	for _, v := range strings.Split(*valuesStr, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(v))
		if err != nil {
			fmt.Fprintf(os.Stderr, "sweep: bad value %q\n", v)
			os.Exit(1)
		}
		values = append(values, n)
	}
	var workloads []*synth.Workload
	if *wlStr == "all" {
		workloads = synth.StandardWorkloads()
	} else {
		for _, name := range strings.Split(*wlStr, ",") {
			w := synth.ByName(strings.TrimSpace(name))
			if w == nil {
				fmt.Fprintf(os.Stderr, "sweep: unknown workload %q\n", name)
				os.Exit(1)
			}
			workloads = append(workloads, w)
		}
	}

	fmt.Printf("param,value,workload,ipc,branch_mpki,l1i_mpki,starv_pki,tag_pki,pfc_resteers\n")
	for _, v := range values {
		var ipcs []float64
		for _, w := range workloads {
			cfg := core.DefaultConfig()
			cfg.PFC = *pfc
			mutate(&cfg, v)
			cfg.Name = fmt.Sprintf("%s=%d", *param, v)
			var p *obs.Probes
			if metricsW != nil || traceW != nil {
				p = obs.NewProbes()
				if traceW != nil {
					p.EnableTrace(*traceCap)
				}
			}
			r, err := core.SimulateObserved(cfg, w.NewStream(), w.Name, *warmup, *measure, p)
			if err != nil {
				fmt.Fprintf(os.Stderr, "sweep: %s %s: %v\n", cfg.Name, w.Name, err)
				os.Exit(1)
			}
			r.Class = w.Class
			if metricsW != nil {
				m := core.Manifest(cfg, r, p, w.Seed, *warmup, *measure)
				m.Tool = "sweep"
				m.Git = gitRev
				if err := m.WriteJSONL(metricsW); err != nil {
					fmt.Fprintf(os.Stderr, "sweep: %v\n", err)
					os.Exit(1)
				}
			}
			if traceW != nil {
				if err := obs.WriteRunTrace(traceW, cfg.Name+"/"+w.Name, p.Tracer); err != nil {
					fmt.Fprintf(os.Stderr, "sweep: %v\n", err)
					os.Exit(1)
				}
			}
			ipcs = append(ipcs, r.IPC())
			fmt.Printf("%s,%d,%s,%.4f,%.3f,%.3f,%.2f,%.2f,%d\n",
				*param, v, w.Name, r.IPC(), r.BranchMPKI(), r.L1IMPKI(),
				r.StarvationPKI(), r.TagProbesPKI(), r.PFCResteers)
		}
		fmt.Printf("%s,%d,GEOMEAN,%.4f,,,,,\n", *param, v, stats.GeoMean(ipcs))
	}
}

func paramNames() string {
	names := make([]string, 0, len(params))
	for k := range params {
		names = append(names, k)
	}
	// Stable order for help text.
	for i := 0; i < len(names); i++ {
		for j := i + 1; j < len(names); j++ {
			if names[j] < names[i] {
				names[i], names[j] = names[j], names[i]
			}
		}
	}
	return strings.Join(names, "|")
}
