package fdp_test

import (
	"fmt"
	"log"

	"fdp"
)

// The minimal library usage: compare the paper's FDP design against the
// no-runahead baseline on one workload.
func Example() {
	w := fdp.WorkloadByName("spec_a")
	base, err := fdp.Simulate(fdp.BaselineConfig(), w, 50_000, 200_000)
	if err != nil {
		log.Fatal(err)
	}
	run, err := fdp.Simulate(fdp.DefaultConfig(), w, 50_000, 200_000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("FDP faster:", run.IPC() > base.IPC())
	fmt.Println("FTQ cost bytes:", fdp.FTQCost(24).TotalBytes)
	// Output:
	// FDP faster: true
	// FTQ cost bytes: 195
}

// Configurations are plain values: copy one and flip the knobs under
// study.
func ExampleConfig() {
	cfg := fdp.DefaultConfig()
	cfg.BTBEntries = 1024
	cfg.PFC = false
	fmt.Println(cfg.FTQEntries, cfg.BTBEntries, cfg.PFC, cfg.HistPolicy)
	// Output: 24 1024 false THR
}

// Experiments regenerate the paper's artifacts programmatically.
func ExampleExperimentByID() {
	e, ok := fdp.ExperimentByID("tab3")
	fmt.Println(ok, e.ID)
	// Output: true tab3
}
