package synth

import (
	"testing"

	"fdp/internal/program"
)

// The generator must honour its parameter distributions, within sampling
// tolerance: terminator-kind fractions, block sizes and loop trip counts.

func TestTerminatorFractions(t *testing.T) {
	p := testParams()
	p.Funcs = 400
	p.CallFrac = 0.25
	p.JumpFrac = 0.10
	w := MustGenerate(p, "spec", 0xD157)
	h := w.Image().CountByType()
	terms := h[program.CondDirect] + h[program.Jump] + h[program.Call] +
		h[program.IndJump] + h[program.IndCall]
	callFrac := float64(h[program.Call]) / float64(terms)
	jumpFrac := float64(h[program.Jump]) / float64(terms)
	// Calls degrade to conds at the deepest level and the dispatcher is
	// all-indirect-calls, so allow generous bands.
	if callFrac < 0.12 || callFrac > 0.40 {
		t.Errorf("call fraction = %.3f, configured 0.25", callFrac)
	}
	if jumpFrac < 0.04 || jumpFrac > 0.20 {
		t.Errorf("jump fraction = %.3f, configured 0.10", jumpFrac)
	}
	if h[program.Return] == 0 {
		t.Error("no returns (every function must end in one)")
	}
}

func TestBlockLengthMean(t *testing.T) {
	p := testParams()
	p.BlockLenMean = 6
	w := MustGenerate(p, "spec", 0xD158)
	// Mean instructions per terminator ~ BlockLenMean (geometric), so the
	// branch density should be near 1/BlockLenMean.
	h := w.Image().CountByType()
	branches := 0
	for ty := 0; ty < program.NumInstTypes; ty++ {
		if program.InstType(ty).IsBranch() {
			branches += h[ty]
		}
	}
	meanBlock := float64(w.Image().Size()) / float64(branches)
	if meanBlock < 4 || meanBlock > 9 {
		t.Errorf("mean block length = %.2f, configured %d", meanBlock, p.BlockLenMean)
	}
}

func TestLoopTripsNearMean(t *testing.T) {
	p := testParams()
	p.LoopFrac = 0.5
	p.TripMean = 6
	w := MustGenerate(p, "spec", 0xD159)
	s := w.NewStream()
	// Observe per-site consecutive-taken runs of backward conditionals.
	runs := map[uint64]int{}
	var lens []int
	for i := 0; i < 400_000; i++ {
		d := s.Next()
		if d.SI.Type == program.CondDirect && d.SI.Target <= d.SI.PC {
			if d.Taken {
				runs[d.SI.PC]++
			} else {
				lens = append(lens, runs[d.SI.PC]+1)
				runs[d.SI.PC] = 0
			}
		}
	}
	if len(lens) < 100 {
		t.Fatalf("only %d loop activations observed", len(lens))
	}
	var sum float64
	for _, l := range lens {
		sum += float64(l)
	}
	mean := sum / float64(len(lens))
	if mean < 3 || mean > 12 {
		t.Errorf("mean loop trip = %.2f, configured %d", mean, p.TripMean)
	}
}

func TestDispatcherRotatesThroughHandlers(t *testing.T) {
	w := MustGenerate(testParams(), "spec", 0xD15A)
	s := w.NewStream()
	// Collect the targets of the first indirect-call site encountered.
	targets := map[uint64]map[uint64]bool{}
	for i := 0; i < 300_000; i++ {
		pc := s.PC()
		si := w.Image().AtOrSequential(pc)
		d := s.Next()
		if si.Type == program.IndCall {
			if targets[pc] == nil {
				targets[pc] = map[uint64]bool{}
			}
			targets[pc][d.NextPC] = true
		}
	}
	multi := 0
	for _, set := range targets {
		if len(set) >= 2 {
			multi++
		}
	}
	if multi == 0 {
		t.Error("no polymorphic indirect-call sites observed")
	}
}

func TestClassesAreOrderedByFootprint(t *testing.T) {
	if testing.Short() {
		t.Skip("standard workloads in -short")
	}
	var server, client, spec uint64
	for _, w := range StandardWorkloads() {
		switch w.Class {
		case "server":
			server += w.FootprintBytes()
		case "client":
			client += w.FootprintBytes()
		case "spec":
			spec += w.FootprintBytes()
		}
	}
	if !(server > client && client > spec) {
		t.Errorf("class footprints not ordered: server=%d client=%d spec=%d", server, client, spec)
	}
}
