// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments                # run everything at default scale
//	experiments -run fig7      # one experiment
//	experiments -quick         # fast smoke run (6 workloads, short)
//	experiments -full          # heavyweight run (2M+8M instructions)
//	experiments -list          # list experiment IDs
//	experiments -resume        # reuse ./fdp-cache across invocations
//	experiments -cache DIR     # same, explicit cache directory
//
// Interrupting a run (Ctrl-C) cancels in-flight simulations promptly; with
// a cache directory, a re-run resumes from the results already stored.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"runtime/pprof"
	"strings"
	"time"

	"fdp/internal/dist"
	"fdp/internal/experiments"
	"fdp/internal/monitor"
	"fdp/internal/obs"
	"fdp/internal/runner"
)

// defaultCacheDir is where -resume keeps results between invocations.
const defaultCacheDir = "fdp-cache"

func main() {
	var (
		run   = flag.String("run", "all", "experiment ID to run, or 'all'")
		quick = flag.Bool("quick", false, "quick smoke run")
		full  = flag.Bool("full", false, "heavyweight run")
		list  = flag.Bool("list", false, "list experiments and exit")
		csv   = flag.String("csv", "", "also write each experiment's tables as CSV files into this directory")

		workloads    = flag.String("workloads", "", "override the workload suite: comma-separated standard names and/or @file.yaml spec references")
		workloadSpec = flag.String("workload-spec", "", "workload spec file(s) to run the experiments on, comma-separated (combines with -workloads)")

		cacheDir = flag.String("cache", "", "store and reuse simulation results in this directory")
		resume   = flag.Bool("resume", false, "shorthand for -cache ./"+defaultCacheDir)

		ffwd       = flag.Bool("ffwd", false, "functional fast-forward warmup: train predictors/caches architecturally without timing the pipeline (different warmup semantics, much faster)")
		checkpoint = flag.Bool("checkpoint", false, "with -ffwd, pay each distinct warmup once per (workload, training config) and restore its checkpoint everywhere else")

		score = flag.Bool("score", false, "after the experiments, evaluate the reproduction contracts (internal/repro) and print the scorecard summary line; the run's result cache makes the scoring campaign cheap")

		check     = flag.Bool("check", false, "enable per-cycle invariant checking in every simulated core")
		watchdog  = flag.Duration("watchdog", 0, "cancel any simulation making no forward progress for this long (0 = off)")
		retries   = flag.Int("retries", 0, "retries for transiently failed jobs (panics), with exponential backoff")
		keepGoing = flag.Bool("keep-going", false, "quarantine failing jobs and keep running the rest of the grid")

		metricsOut   = flag.String("metrics", "", "write every run's observability manifest as JSONL to this file ('-' for stdout)")
		traceOut     = flag.String("trace", "", "write pipeline event traces as JSONL to this file ('-' for stdout)")
		traceCap     = flag.Int("trace-cap", 1<<14, "event-trace ring capacity (last N events per run)")
		intervals    = flag.Uint64("intervals", 0, "snapshot each run's cycle-accounting time-series every N cycles (0 = off)")
		intervalsOut = flag.String("intervals-out", "", "write interval records as JSONL to this file ('-' for stdout)")
		spansOut     = flag.String("spans", "", "write the runner's job lifecycle span timeline as JSONL to this file ('-' for stdout)")
		httpAddr     = flag.String("http", "", "serve live telemetry on this address (/metrics, /progress, /runs, /intervals, /timeline, /workers, /debug/pprof)")
		workers      = flag.String("workers", "", "distribute simulations over these fdpworker URLs (comma-separated, e.g. http://host:9131); failed or hung workers are reassigned, and the run degrades to local execution if the whole fleet is lost")
		pprofOut     = flag.String("pprof", "", "write a CPU profile of the experiment run to this file")
	)
	flag.Parse()

	if *pprofOut != "" {
		f, err := os.Create(*pprofOut)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}

	if *list {
		for _, e := range experiments.AllWithExtensions() {
			fmt.Printf("%-10s %s\n", e.ID, e.Title)
		}
		return
	}

	opts := experiments.DefaultOptions()
	scale := "default"
	if *quick {
		opts = experiments.QuickOptions()
		scale = "quick"
	}
	if *full {
		opts = experiments.FullOptions()
		scale = "full"
	}
	if *workloads != "" || *workloadSpec != "" {
		ws, err := experiments.ParseWorkloads(*workloads, *workloadSpec)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			os.Exit(1)
		}
		opts.Workloads = ws
	}
	fmt.Printf("scale=%s workloads=%d warmup=%d measure=%d\n\n",
		scale, len(opts.Workloads), opts.Warmup, opts.Measure)

	// Ctrl-C cancels in-flight simulations cooperatively instead of
	// killing the process mid-write; a second interrupt kills outright.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	opts.Ctx = ctx

	// Experiments share one result cache: every table and figure re-runs
	// the same baseline config, so even a pure in-memory cache removes
	// duplicate simulations within a single invocation. A directory makes
	// it survive across invocations (-resume / -cache).
	if *resume && *cacheDir == "" {
		*cacheDir = defaultCacheDir
	}
	cache, err := runner.NewCache(runner.DefaultCacheCapacity, *cacheDir)
	if err != nil {
		fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
		os.Exit(1)
	}
	opts.Cache = cache
	runnerReg := obs.NewRegistry()
	opts.RunnerReg = runnerReg

	if *checkpoint && !*ffwd {
		fmt.Fprintln(os.Stderr, "experiments: -checkpoint requires -ffwd (checkpoints capture fast-forward warmup state)")
		os.Exit(1)
	}
	opts.FastForward = *ffwd
	opts.Checkpoint = *checkpoint

	opts.Check = *check
	opts.WatchdogTimeout = *watchdog
	opts.KeepGoing = *keepGoing
	if *retries > 0 {
		opts.Retry = runner.RetryPolicy{Attempts: *retries + 1}
	}
	// With a persistent cache directory, completion is journaled so a crash
	// (even kill -9) mid-run never lets a half-written result be trusted on
	// resume: only journaled specs may be served from the cache.
	if *cacheDir != "" {
		journal, err := runner.OpenJournal(filepath.Join(*cacheDir, "journal.wal"))
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			os.Exit(1)
		}
		defer journal.Close()
		opts.Journal = journal
	}

	var manifests *obs.ManifestLog
	if *metricsOut != "" {
		manifests = obs.NewManifestLog()
		opts.Manifests = manifests
	}
	if *traceOut != "" {
		if *traceCap <= 0 {
			fmt.Fprintf(os.Stderr, "experiments: -trace-cap must be positive (got %d)\n", *traceCap)
			os.Exit(1)
		}
		traceW, err := obs.OpenSink(*traceOut)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			os.Exit(1)
		}
		defer traceW.Close()
		opts.TraceCap = *traceCap
		opts.TraceSink = traceW
		// The result cache cannot replay trace output, so every run
		// re-simulates while tracing — say so instead of silently ignoring
		// the cache (which this command always creates).
		fmt.Fprintln(os.Stderr, "experiments: warning: the result cache is bypassed while -trace is active (traces cannot be replayed from cached results)")
	}
	if *intervals > 0 && *intervalsOut == "" && *httpAddr == "" {
		fmt.Fprintln(os.Stderr, "experiments: -intervals requires -intervals-out or -http (somewhere for the series to go)")
		os.Exit(1)
	}
	if *intervalsOut != "" && *intervals == 0 {
		fmt.Fprintln(os.Stderr, "experiments: -intervals-out requires -intervals N")
		os.Exit(1)
	}
	if *intervals > 0 {
		opts.IntervalEvery = *intervals
		if *intervalsOut != "" {
			intervalsW, err := obs.OpenSink(*intervalsOut)
			if err != nil {
				fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
				os.Exit(1)
			}
			defer intervalsW.Close()
			opts.IntervalSink = intervalsW
		}
		fmt.Fprintln(os.Stderr, "experiments: warning: the result cache is bypassed while -intervals is active (interval series cannot be replayed from cached results)")
	}
	var coord *dist.Coordinator
	if *workers != "" {
		c, err := dist.FromFlag(*workers)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			os.Exit(1)
		}
		if err := c.Check(context.Background()); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			os.Exit(1)
		}
		coord = c
		opts.Backend = coord
	}
	var spanLog *obs.SpanLog
	if *spansOut != "" || *httpAddr != "" {
		spanLog = obs.NewSpanLog()
		opts.Spans = spanLog
	}
	if *spansOut != "" {
		spansW, err := obs.OpenSink(*spansOut)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			os.Exit(1)
		}
		defer spansW.Close()
		spanLog.SetSink(spansW)
		defer func() {
			if serr := spanLog.SinkErr(); serr != nil {
				fmt.Fprintf(os.Stderr, "experiments: warning: -spans sink: %v\n", serr)
			}
		}()
	}

	if *httpAddr != "" {
		opts.Status = &runner.Status{}
		opts.Live = obs.NewManifestLog()
		if *intervals > 0 {
			opts.Intervals = obs.NewIntervalStore(0)
		}
		srv, err := monitor.Start(*httpAddr, monitor.Source{
			Status:    opts.Status,
			Manifests: opts.Live,
			Intervals: opts.Intervals,
			Spans:     spanLog,
			Fleet:     coord,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			os.Exit(1)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "experiments: live telemetry on http://%s (/metrics, /progress, /runs, /intervals, /timeline, /debug/pprof)\n", srv.Addr())
	}

	var todo []experiments.Experiment
	if *run == "all" {
		todo = experiments.AllWithExtensions()
	} else {
		e, ok := experiments.ByID(*run)
		if !ok {
			fmt.Fprintf(os.Stderr, "experiments: unknown experiment %q (use -list)\n", *run)
			os.Exit(1)
		}
		todo = []experiments.Experiment{e}
	}

	if *csv != "" {
		if err := os.MkdirAll(*csv, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			os.Exit(1)
		}
	}
	for _, e := range todo {
		t0 := time.Now()
		res, err := e.Run(opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", e.ID, err)
			os.Exit(1)
		}
		fmt.Print(res)
		fmt.Printf("(%s in %.1fs)\n\n", e.ID, time.Since(t0).Seconds())
		if *csv != "" {
			for i, tb := range res.Tables {
				name := res.ID
				if len(res.Tables) > 1 {
					name = fmt.Sprintf("%s_%d", res.ID, i)
				}
				path := filepath.Join(*csv, name+".csv")
				content := "# " + strings.ReplaceAll(tb.Title(), "\n", " ") + "\n" + tb.CSV()
				if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
					fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
					os.Exit(1)
				}
			}
		}
	}

	// The scorecard summary joins the runner: line below, so campaign
	// health and reproduction health are read off the same screen.
	if *score {
		card, err := experiments.Score(opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: score: %v\n", err)
			os.Exit(1)
		}
		fmt.Println(card.Summary())
		for _, f := range card.HardFailures() {
			fmt.Fprintf(os.Stderr, "experiments: score: hard expectation failed: %s (run `go run ./cmd/reprocheck` for the full scorecard)\n", f)
		}
	}

	jobs := runnerReg.Counter(runner.MetricJobs).Value()
	hits := runnerReg.Counter(runner.MetricCacheHits).Value()
	misses := runnerReg.Counter(runner.MetricCacheMisses).Value()
	// checkpoint_* fields are distinct from the cache_* ones: a
	// checkpoint-served job still simulated its measured region (only the
	// warmup was restored), whereas a cache-served job simulated nothing.
	fmt.Printf("runner: jobs=%d cache_hits=%d cache_misses=%d checkpoint_hits=%d checkpoint_misses=%d checkpoint_restores=%d retries=%d watchdog=%d quarantined=%d cache_quarantined=%d\n",
		jobs, hits, misses,
		runnerReg.Counter(runner.MetricCheckpointHits).Value(),
		runnerReg.Counter(runner.MetricCheckpointMisses).Value(),
		runnerReg.Counter(runner.MetricCheckpointRestores).Value(),
		runnerReg.Counter(runner.MetricRetries).Value(),
		runnerReg.Counter(runner.MetricWatchdogFired).Value(),
		runnerReg.Counter(runner.MetricQuarantined).Value(),
		runnerReg.Counter(runner.MetricCacheQuarantined).Value())

	if manifests != nil {
		f, err := obs.OpenSink(*metricsOut)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		gitRev := obs.GitDescribe()
		for _, m := range manifests.All() {
			m.Tool = "experiments"
			m.Git = gitRev
			if err := m.WriteJSONL(f); err != nil {
				fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
				os.Exit(1)
			}
		}
		// One trailing summary manifest records the execution-layer
		// metrics (runner_jobs, runner_cache_hits, queue depth, ...) so
		// cache effectiveness is auditable from the manifest log alone.
		summary := obs.NewManifest(
			obs.RunInfo{Tool: "experiments", Git: gitRev, Workload: "__runner__"},
			&obs.Probes{Reg: runnerReg}, nil, nil)
		if err := summary.WriteJSONL(f); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %d run manifests to %s\n", len(manifests.All())+1, *metricsOut)
	}
}
