// Command sweep runs one-dimensional parameter sweeps and emits CSV, for
// ad-hoc sensitivity studies beyond the canned experiments.
//
// Usage:
//
//	sweep -param ftq -values 2,4,8,16,24,32
//	sweep -param btb -values 1024,4096,16384 -workloads server_a,server_b
//	sweep -param resolve -values 8,14,20,30 -pfc=false
//	sweep -param ftq -values 2,32 -parallel 8 -cache ./fdp-cache
//
// Output: one CSV row per (value, workload) plus a geomean summary row per
// value, on stdout. Rows appear in sweep order regardless of -parallel.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime/pprof"
	"strconv"
	"strings"

	"fdp/internal/core"
	"fdp/internal/dist"
	"fdp/internal/monitor"
	"fdp/internal/obs"
	"fdp/internal/runner"
	"fdp/internal/stats"
	"fdp/internal/synth"
)

// params maps sweepable parameter names to config mutators.
var params = map[string]func(*core.Config, int){
	"ftq":      func(c *core.Config, v int) { c.FTQEntries = v },
	"btb":      func(c *core.Config, v int) { c.BTBEntries = v },
	"predict":  func(c *core.Config, v int) { c.PredictWidth = v },
	"fetch":    func(c *core.Config, v int) { c.FetchWidth = v },
	"resolve":  func(c *core.Config, v int) { c.ResolveLatency = v },
	"btblat":   func(c *core.Config, v int) { c.BTBLatency = v },
	"mshrs":    func(c *core.Config, v int) { c.MSHRs = v },
	"l1i":      func(c *core.Config, v int) { c.L1IBytes = v },
	"ras":      func(c *core.Config, v int) { c.RASDepth = v },
	"taken":    func(c *core.Config, v int) { c.MaxTakenPerCycle = v },
	"memlat":   func(c *core.Config, v int) { c.Lat.Mem = uint64(v) },
	"l1btb":    func(c *core.Config, v int) { c.L1BTBEntries = v; c.L1BTBWays = 4; c.L2BTBPenalty = c.BTBLatency },
	"decodeq":  func(c *core.Config, v int) { c.DecodeQueueCap = v },
	"pfdegree": func(c *core.Config, v int) { c.PrefetchDegree = v },
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "sweep: %v\n", err)
		os.Exit(1)
	}
}

// run executes the whole sweep: it exists (separately from main) so tests
// can drive the real flag parsing and CSV rendering in-process.
func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("sweep", flag.ContinueOnError)
	var (
		param      = fs.String("param", "ftq", "parameter to sweep: "+paramNames())
		valuesStr  = fs.String("values", "2,4,8,16,24,32", "comma-separated values")
		wlStr      = fs.String("workloads", "server_a,client_a,spec_a", "comma-separated workloads: standard names, @file.yaml spec references, or 'all'")
		wlSpec     = fs.String("workload-spec", "", "workload spec file(s) to sweep, comma-separated (shorthand for @file entries in -workloads)")
		pfc        = fs.Bool("pfc", true, "post-fetch correction")
		warmup     = fs.Uint64("warmup", 100_000, "warmup instructions")
		measure    = fs.Uint64("measure", 400_000, "measured instructions")
		ffwd       = fs.Bool("ffwd", false, "functional fast-forward warmup: train predictors/caches architecturally without timing the pipeline (different warmup semantics, much faster)")
		checkpoint = fs.Bool("checkpoint", false, "with -ffwd, warm up once per (workload, training config) and restore the checkpoint for every other sweep point")
		parallel   = fs.Int("parallel", 0, "concurrent simulations (0 = GOMAXPROCS)")
		cacheDir   = fs.String("cache", "", "reuse results from this on-disk cache directory")

		check     = fs.Bool("check", false, "enable per-cycle invariant checking")
		watchdog  = fs.Duration("watchdog", 0, "cancel any simulation making no forward progress for this long (0 = off)")
		retries   = fs.Int("retries", 0, "retries for transiently failed jobs (panics), with exponential backoff")
		keepGoing = fs.Bool("keep-going", false, "skip failed points (missing CSV rows) and keep sweeping")

		metricsOut   = fs.String("metrics", "", "write per-run observability manifests as JSONL to this file ('-' for stdout)")
		traceOut     = fs.String("trace", "", "write pipeline event traces as JSONL to this file ('-' for stdout)")
		traceCap     = fs.Int("trace-cap", 1<<14, "event-trace ring capacity (last N events per run)")
		intervals    = fs.Uint64("intervals", 0, "snapshot each run's cycle-accounting time-series every N cycles (0 = off)")
		intervalsOut = fs.String("intervals-out", "", "write interval records as JSONL to this file ('-' for stdout)")
		spansOut     = fs.String("spans", "", "write the runner's job lifecycle span timeline as JSONL to this file ('-' for stdout)")
		httpAddr     = fs.String("http", "", "serve live telemetry on this address (/metrics, /progress, /runs, /intervals, /timeline, /workers, /debug/pprof)")
		workers      = fs.String("workers", "", "distribute simulations over these fdpworker URLs (comma-separated, e.g. http://host:9131); failed or hung workers are reassigned, and the sweep degrades to local execution if the whole fleet is lost")
		pprofOut     = fs.String("pprof", "", "write a CPU profile of the sweep to this file")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *checkpoint && !*ffwd {
		return fmt.Errorf("-checkpoint requires -ffwd (checkpoints capture fast-forward warmup state)")
	}

	if *pprofOut != "" {
		f, err := os.Create(*pprofOut)
		if err != nil {
			return err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}
	var metricsW, traceW, intervalsW io.WriteCloser
	if *metricsOut != "" {
		w, err := obs.OpenSink(*metricsOut)
		if err != nil {
			return err
		}
		metricsW = w
		defer metricsW.Close()
	}
	if *traceOut != "" {
		if *traceCap <= 0 {
			return fmt.Errorf("-trace-cap must be positive (got %d)", *traceCap)
		}
		w, err := obs.OpenSink(*traceOut)
		if err != nil {
			return err
		}
		traceW = w
		defer traceW.Close()
	}
	if *intervals > 0 && *intervalsOut == "" && *httpAddr == "" {
		return fmt.Errorf("-intervals requires -intervals-out or -http (somewhere for the series to go)")
	}
	if *intervalsOut != "" {
		if *intervals == 0 {
			return fmt.Errorf("-intervals-out requires -intervals N")
		}
		w, err := obs.OpenSink(*intervalsOut)
		if err != nil {
			return err
		}
		intervalsW = w
		defer intervalsW.Close()
	}
	if *cacheDir != "" && (traceW != nil || *intervals > 0) {
		fmt.Fprintln(os.Stderr, "sweep: warning: -cache is bypassed while -trace or -intervals is active (non-replayable side outputs)")
	}
	gitRev := ""
	if metricsW != nil {
		gitRev = obs.GitDescribe()
	}

	mutate, ok := params[*param]
	if !ok {
		return fmt.Errorf("unknown parameter %q (have %s)", *param, paramNames())
	}
	var values []int
	for _, v := range strings.Split(*valuesStr, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(v))
		if err != nil {
			return fmt.Errorf("bad value %q", v)
		}
		values = append(values, n)
	}
	wlExplicit := false
	fs.Visit(func(f *flag.Flag) {
		if f.Name == "workloads" {
			wlExplicit = true
		}
	})
	workloads, err := synth.ParseWorkloadFlags(*wlStr, *wlSpec, wlExplicit)
	if err != nil {
		return err
	}

	var cache *runner.Cache
	if *cacheDir != "" {
		cache, err = runner.NewCache(runner.DefaultCacheCapacity, *cacheDir)
		if err != nil {
			return err
		}
	}
	if *checkpoint && cache == nil {
		// Memory-only store: the sweep still pays each warmup once, the
		// checkpoints just don't survive the process.
		cache, err = runner.NewCache(runner.DefaultCacheCapacity, "")
		if err != nil {
			return err
		}
	}

	observed := metricsW != nil || traceW != nil || *intervals > 0 || *httpAddr != ""
	ropts := runner.Options{
		Parallel:        *parallel,
		Cache:           cache,
		Observe:         observed,
		Check:           *check,
		WatchdogTimeout: *watchdog,
		KeepGoing:       *keepGoing,
		Checkpoint:      *checkpoint,
	}
	if *retries > 0 {
		ropts.Retry = runner.RetryPolicy{Attempts: *retries + 1}
	}
	if traceW != nil {
		ropts.TraceCap = *traceCap
		ropts.TraceSink = traceW
	}
	if *intervals > 0 {
		ropts.IntervalEvery = *intervals
		ropts.IntervalSink = intervalsW
	}
	var coord *dist.Coordinator
	if *workers != "" {
		coord, err = dist.FromFlag(*workers)
		if err != nil {
			return err
		}
		if err := coord.Check(context.Background()); err != nil {
			return err
		}
		ropts.Backend = coord
	}
	var spanLog *obs.SpanLog
	if *spansOut != "" || *httpAddr != "" {
		spanLog = obs.NewSpanLog()
		ropts.Spans = spanLog
	}
	if *spansOut != "" {
		w, err := obs.OpenSink(*spansOut)
		if err != nil {
			return err
		}
		defer w.Close()
		spanLog.SetSink(w)
		defer func() {
			if serr := spanLog.SinkErr(); serr != nil {
				fmt.Fprintf(os.Stderr, "sweep: warning: -spans sink: %v\n", serr)
			}
		}()
	}
	if *httpAddr != "" {
		ropts.Status = &runner.Status{}
		ropts.Manifests = obs.NewManifestLog()
		if *intervals > 0 {
			ropts.Intervals = obs.NewIntervalStore(0)
		}
		srv, err := monitor.Start(*httpAddr, monitor.Source{
			Status:    ropts.Status,
			Manifests: ropts.Manifests,
			Intervals: ropts.Intervals,
			Spans:     spanLog,
			Fleet:     coord,
		})
		if err != nil {
			return err
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "sweep: live telemetry on http://%s (/metrics, /progress, /runs, /intervals, /timeline, /debug/pprof)\n", srv.Addr())
	}

	specs := make([]runner.Spec, 0, len(values)*len(workloads))
	for _, v := range values {
		for _, w := range workloads {
			cfg := core.DefaultConfig()
			cfg.PFC = *pfc
			mutate(&cfg, v)
			cfg.Name = fmt.Sprintf("%s=%d", *param, v)
			sp := runner.WorkloadSpec(cfg, w, *warmup, *measure)
			sp.FFwd = *ffwd
			specs = append(specs, sp)
		}
	}
	results, err := runner.Execute(context.Background(), specs, ropts)
	if err != nil {
		// Under -keep-going a classified job error means "some points were
		// quarantined, the rest completed" — emit the rows that finished.
		var jerr *runner.Error
		if !(*keepGoing && errors.As(err, &jerr)) {
			return err
		}
		fmt.Fprintf(os.Stderr, "sweep: warning: %v\n", err)
	}

	fmt.Fprintf(stdout, "param,value,workload,ipc,branch_mpki,l1i_mpki,starv_pki,tag_pki,pfc_resteers\n")
	i := 0
	for _, v := range values {
		runs := make([]*stats.Run, 0, len(workloads))
		for _, w := range workloads {
			res := results[i]
			i++
			r := res.Run
			if r == nil {
				fmt.Fprintf(os.Stderr, "sweep: %s=%d/%s: quarantined: %v\n", *param, v, w.Name, res.Err)
				continue
			}
			if metricsW != nil && res.Manifest != nil {
				m := res.Manifest
				m.Tool = "sweep"
				m.Git = gitRev
				if err := m.WriteJSONL(metricsW); err != nil {
					return err
				}
			}
			runs = append(runs, r)
			fmt.Fprintf(stdout, "%s,%d,%s,%.4f,%.3f,%.3f,%.2f,%.2f,%d\n",
				*param, v, w.Name, r.IPC(), r.BranchMPKI(), r.L1IMPKI(),
				r.StarvationPKI(), r.TagProbesPKI(), r.PFCResteers)
		}
		fmt.Fprintf(stdout, "%s,%d,GEOMEAN,%.4f,,,,,\n", *param, v, stats.GeoMeanIPC(runs))
	}
	return nil
}

func paramNames() string {
	names := make([]string, 0, len(params))
	for k := range params {
		names = append(names, k)
	}
	// Stable order for help text.
	for i := 0; i < len(names); i++ {
		for j := i + 1; j < len(names); j++ {
			if names[j] < names[i] {
				names[i], names[j] = names[j], names[i]
			}
		}
	}
	return strings.Join(names, "|")
}
