package experiments

import (
	"fmt"

	"fdp/internal/core"
	"fdp/internal/repro"
	"fdp/internal/stats"
	"fdp/internal/synth"
	"fdp/internal/wspec"
)

// shapeFuncs is the workload-shape sweep axis: the server preset's
// function count, overridden per spec to span static footprints from
// "nearly fits in a 32KB L1I" (~40KB) to "far beyond it" (~1.2MB) at
// ~350 bytes of code per function.
var shapeFuncs = []int{120, 400, 1200, 3600}

// shapeSeedBase keeps the shape suite's master seeds clear of the
// standard workload seed bases.
const shapeSeedBase = 0x5eed_3001

// shapeSpecs builds the workload-shape spec grid: one single-component
// server spec per footprint point, defined in code through the exact
// wspec path @file.yaml scenarios use.
func shapeSpecs() []*wspec.Spec {
	specs := make([]*wspec.Spec, len(shapeFuncs))
	for i, funcs := range shapeFuncs {
		f := funcs
		specs[i] = &wspec.Spec{
			Version:     wspec.Version,
			Name:        fmt.Sprintf("shape_f%d", f),
			Class:       "shape",
			Seed:        shapeSeedBase + uint64(i),
			SwitchEvery: wspec.DefaultSwitchEvery,
			Mix: []wspec.Component{{
				Preset: "server", Weight: 1,
				Params: wspec.Overrides{Funcs: &f},
			}},
		}
	}
	return specs
}

// shapeWorkloads compiles the shape spec grid. The specs are fixed and
// known-valid, so compilation failure is a programming error.
func shapeWorkloads() []*synth.Workload {
	specs := shapeSpecs()
	ws := make([]*synth.Workload, len(specs))
	for i, sp := range specs {
		w, err := synth.FromSpec(sp)
		if err != nil {
			panic(err)
		}
		ws[i] = w
	}
	return ws
}

// shapeConfigs is the fixed config pair the shape sweep holds constant
// while the workload axis varies: the no-FDP baseline and the default
// FDP frontend.
func shapeConfigs() (base, fdp core.Config) {
	base = noFDP(withPrefetcher(core.DefaultConfig(), "base", ""))
	fdp = core.DefaultConfig()
	fdp.Name = "fdp"
	return base, fdp
}

// ExtShape sweeps the workload shape instead of a hardware parameter:
// a spec-defined footprint grid (server code scaled from ~40KB to
// ~1.2MB) under the fixed (baseline, FDP) config pair. The L1I miss
// rate, and with it FDP's room to help, is a property of the workload's
// static shape — the axis the declarative spec layer makes sweepable.
func ExtShape(opts Options) (*Result, error) {
	opts.Workloads = shapeWorkloads()
	base, fdp := shapeConfigs()
	sets, err := runGrid(opts, []core.Config{base, fdp})
	if err != nil {
		return nil, err
	}
	baseSet, fdpSet := sets["base"], sets["fdp"]

	t := stats.NewTable("Extension: L1I pressure and FDP benefit vs workload footprint",
		"workload", "code KB", "base L1I MPKI", "FDP L1I MPKI", "FDP speedup")
	for _, w := range opts.Workloads {
		br := baseSet.ByWorkload(w.Name)
		fr := fdpSet.ByWorkload(w.Name)
		if br == nil || fr == nil {
			return nil, fmt.Errorf("ext-shape: workload %s missing from results", w.Name)
		}
		t.AddRow(w.Name, w.FootprintBytes()/1024, br.L1IMPKI(), fr.L1IMPKI(),
			speedupPct(fr.Speedup(br)))
	}
	return &Result{
		ID: "ext-shape", Title: "Workload-shape sweep (spec grid)",
		Tables: []*stats.Table{t},
		Notes: []string{
			"footprint, not microarchitecture, sets the L1I miss rate: the smallest",
			"shape nearly fits and FDP has little to fetch ahead for, while the",
			"largest misses constantly and fetch-directed prefetch pays the most",
		},
	}, nil
}

// contractShape is ext-shape's reproduction contract: the workload axis
// claims. The contract brings its own spec-grid suite (Workloads) and
// scores per-cell via workload-scoped expectations — the shape sweep
// holds the config pair fixed. Thresholds calibrated at the repro-check
// quick scale; see docs/CALIBRATION.md.
func contractShape() repro.Contract {
	base, fdp := shapeConfigs()
	ws := shapeWorkloads()
	names := make([]string, len(ws))
	for i, w := range ws {
		names[i] = w.Name
	}
	small, large := names[0], names[len(names)-1]
	baseSeries := make([]string, len(ws))
	fdpSeries := make([]string, len(ws))
	for i := range fdpSeries {
		baseSeries[i] = "base"
		fdpSeries[i] = "fdp"
	}
	return repro.Contract{
		Artifact:  "ext-shape",
		Title:     "Workload-shape sweep (spec grid)",
		Baseline:  "base",
		Configs:   []core.Config{base, fdp},
		Workloads: ws,
		Expectations: []repro.Expectation{
			{
				// The largest shape is excluded from the strict series: at
				// the gate's 200K-instruction window the stream does not
				// touch the whole ~1.2MB image, so its demand MPKI sits
				// near (quick scale: just below) the ~340KB point's. The
				// large-vs-small ordering below still pins the endpoint.
				ID:    "l1i-mpki-grows-with-footprint",
				Claim: "baseline L1I MPKI rises monotonically across the ~40KB..~340KB spec grid",
				Severity: repro.Hard, Kind: repro.KindMonotonic, Metric: repro.MetricL1IMPKI,
				Configs: baseSeries[:3], Workloads: names[:3], Dir: 1, Slack: 0.5,
			},
			{
				ID:    "largest-dwarfs-smallest",
				Claim: "the ~1.2MB shape misses the L1I far more than the ~40KB shape",
				Severity: repro.Hard, Kind: repro.KindOrdering, Metric: repro.MetricL1IMPKI,
				Configs: []string{"base", "base"}, Workloads: []string{large, small}, MinGap: 30,
			},
			{
				ID:    "smallest-shape-nearly-fits",
				Claim: "the ~40KB shape barely misses the 32KB L1I (measured 0.19 MPKI at gate scale)",
				Severity: repro.Hard, Kind: repro.KindRange, Metric: repro.MetricL1IMPKI,
				Configs: []string{"base"}, Workloads: []string{small}, Lo: 0, Hi: 10,
			},
			{
				ID:    "largest-shape-thrashes",
				Claim: "the ~1.2MB shape misses the L1I heavily (measured 62 MPKI at gate scale)",
				Severity: repro.Hard, Kind: repro.KindRange, Metric: repro.MetricL1IMPKI,
				Configs: []string{"base"}, Workloads: []string{large}, Lo: 30,
			},
			{
				ID:    "speedup-grows-with-footprint",
				Claim: "FDP speedup rises with footprint across the whole spec grid",
				Severity: repro.Hard, Kind: repro.KindMonotonic, Metric: repro.MetricSpeedup,
				Configs: fdpSeries, Workloads: names, Dir: 1, Slack: 0.05,
			},
			{
				ID:    "speedup-gap-large-vs-small",
				Claim: "FDP helps the thrashing shape far more than the fitting one (measured +53% vs +5%)",
				Severity: repro.Hard, Kind: repro.KindOrdering, Metric: repro.MetricSpeedup,
				Configs: []string{"fdp", "fdp"}, Workloads: []string{large, small}, MinGap: 0.2,
			},
		},
	}
}
