package stats

import (
	"math"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"fdp/internal/obs"
)

func TestRunDerivedMetrics(t *testing.T) {
	r := &Run{
		Cycles:           1000,
		Instructions:     2000,
		Mispredictions:   10,
		L1IMisses:        40,
		L1ITagProbes:     300,
		StarvationCycles: 500,
		BTBLookups:       100,
		BTBHits:          90,
		FTQOccupancySum:  12000,
	}
	if got := r.IPC(); got != 2.0 {
		t.Errorf("IPC = %v", got)
	}
	if got := r.BranchMPKI(); got != 5.0 {
		t.Errorf("BranchMPKI = %v", got)
	}
	if got := r.L1IMPKI(); got != 20.0 {
		t.Errorf("L1IMPKI = %v", got)
	}
	if got := r.StarvationPKI(); got != 250.0 {
		t.Errorf("StarvationPKI = %v", got)
	}
	if got := r.TagProbesPKI(); got != 150.0 {
		t.Errorf("TagProbesPKI = %v", got)
	}
	if got := r.BTBHitRate(); got != 0.9 {
		t.Errorf("BTBHitRate = %v", got)
	}
	if got := r.MeanFTQOccupancy(); got != 12.0 {
		t.Errorf("MeanFTQOccupancy = %v", got)
	}
}

func TestZeroRunIsSafe(t *testing.T) {
	r := &Run{}
	for name, f := range map[string]func() float64{
		"IPC":     r.IPC,
		"MPKI":    r.BranchMPKI,
		"L1IMPKI": r.L1IMPKI,
		"Starv":   r.StarvationPKI,
		"Tag":     r.TagProbesPKI,
		"BTB":     r.BTBHitRate,
		"FTQ":     r.MeanFTQOccupancy,
	} {
		if got := f(); got != 0 {
			t.Errorf("%s on zero run = %v", name, got)
		}
	}
	if (&Run{Cycles: 1, Instructions: 1}).Speedup(r) != 0 {
		t.Error("Speedup over zero-IPC base should be 0")
	}
}

func TestSpeedup(t *testing.T) {
	base := &Run{Cycles: 100, Instructions: 100}
	fast := &Run{Cycles: 100, Instructions: 141}
	if got := fast.Speedup(base); math.Abs(got-1.41) > 1e-12 {
		t.Errorf("Speedup = %v", got)
	}
}

func TestSetGeoMeanSpeedup(t *testing.T) {
	base := &Set{Config: "base"}
	fdp := &Set{Config: "fdp"}
	// Two workloads: speedups 2.0 and 0.5 -> geomean exactly 1.0.
	base.Add(&Run{Workload: "a", Cycles: 100, Instructions: 100})
	base.Add(&Run{Workload: "b", Cycles: 100, Instructions: 100})
	fdp.Add(&Run{Workload: "a", Cycles: 100, Instructions: 200})
	fdp.Add(&Run{Workload: "b", Cycles: 100, Instructions: 50})
	if got := fdp.GeoMeanSpeedup(base); math.Abs(got-1.0) > 1e-12 {
		t.Errorf("GeoMeanSpeedup = %v", got)
	}
}

func TestSetGeoMeanSkipsUnpaired(t *testing.T) {
	base := &Set{}
	s := &Set{}
	base.Add(&Run{Workload: "a", Cycles: 100, Instructions: 100})
	s.Add(&Run{Workload: "a", Cycles: 100, Instructions: 150})
	s.Add(&Run{Workload: "orphan", Cycles: 100, Instructions: 900})
	if got := s.GeoMeanSpeedup(base); math.Abs(got-1.5) > 1e-12 {
		t.Errorf("GeoMeanSpeedup with orphan = %v", got)
	}
	if got := (&Set{}).GeoMeanSpeedup(base); got != 0 {
		t.Errorf("empty set speedup = %v", got)
	}
}

func TestSetMeans(t *testing.T) {
	s := &Set{}
	s.Add(&Run{Workload: "a", Instructions: 1000, Mispredictions: 10, L1IMisses: 20, StarvationCycles: 100, L1ITagProbes: 50})
	s.Add(&Run{Workload: "b", Instructions: 1000, Mispredictions: 30, L1IMisses: 40, StarvationCycles: 300, L1ITagProbes: 150})
	if got := s.MeanBranchMPKI(); got != 20 {
		t.Errorf("MeanBranchMPKI = %v", got)
	}
	if got := s.MeanL1IMPKI(); got != 30 {
		t.Errorf("MeanL1IMPKI = %v", got)
	}
	if got := s.MeanStarvationPKI(); got != 200 {
		t.Errorf("MeanStarvationPKI = %v", got)
	}
	if got := s.MeanTagProbesPKI(); got != 100 {
		t.Errorf("MeanTagProbesPKI = %v", got)
	}
	if got := (&Set{}).MeanBranchMPKI(); got != 0 {
		t.Errorf("empty mean = %v", got)
	}
}

func TestSetByWorkload(t *testing.T) {
	s := &Set{}
	r := &Run{Workload: "x"}
	s.Add(r)
	if s.ByWorkload("x") != r {
		t.Error("ByWorkload did not find run")
	}
	if s.ByWorkload("y") != nil {
		t.Error("ByWorkload found phantom run")
	}
}

func TestGeoMeanAndMean(t *testing.T) {
	if got := GeoMean([]float64{2, 8}); math.Abs(got-4) > 1e-12 {
		t.Errorf("GeoMean = %v", got)
	}
	if got := GeoMean([]float64{1, 0, -3}); got != 1 {
		t.Errorf("GeoMean skipping nonpositive = %v", got)
	}
	if got := GeoMean(nil); got != 0 {
		t.Errorf("GeoMean(nil) = %v", got)
	}
	if got := Mean([]float64{1, 2, 3}); got != 2 {
		t.Errorf("Mean = %v", got)
	}
	if got := Mean(nil); got != 0 {
		t.Errorf("Mean(nil) = %v", got)
	}
}

func TestGeoMeanIPC(t *testing.T) {
	runs := []*Run{
		{Cycles: 1000, Instructions: 2000}, // IPC 2
		nil,                                // skipped
		{Cycles: 1000, Instructions: 8000}, // IPC 8
	}
	if got := GeoMeanIPC(runs); math.Abs(got-4) > 1e-12 {
		t.Errorf("GeoMeanIPC = %v, want 4", got)
	}
	if got := GeoMeanIPC(nil); got != 0 {
		t.Errorf("GeoMeanIPC(nil) = %v", got)
	}
}

// Property: geomean of pairwise speedups is scale-invariant in cycles.
func TestGeoMeanScaleInvariance(t *testing.T) {
	f := func(aRaw, bRaw uint8) bool {
		a, b := uint64(aRaw)+1, uint64(bRaw)+1
		base := &Set{}
		s := &Set{}
		base.Add(&Run{Workload: "w", Cycles: a * 7, Instructions: 1000})
		s.Add(&Run{Workload: "w", Cycles: b * 7, Instructions: 1000})
		g1 := s.GeoMeanSpeedup(base)
		base2 := &Set{}
		s2 := &Set{}
		base2.Add(&Run{Workload: "w", Cycles: a * 13, Instructions: 1000})
		s2.Add(&Run{Workload: "w", Cycles: b * 13, Instructions: 1000})
		g2 := s2.GeoMeanSpeedup(base2)
		return math.Abs(g1-g2) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("demo", "name", "speedup")
	tb.AddRow("base", 1.0)
	tb.AddRow("fdp", 1.41)
	out := tb.String()
	if !strings.Contains(out, "== demo ==") {
		t.Error("missing title")
	}
	if !strings.Contains(out, "1.410") {
		t.Errorf("missing value row: %s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // title, header, sep, 2 rows
		t.Errorf("got %d lines:\n%s", len(lines), out)
	}
	if tb.NumRows() != 2 {
		t.Errorf("NumRows = %d", tb.NumRows())
	}
}

func TestTableSortByColumn(t *testing.T) {
	tb := NewTable("", "w", "mpki")
	tb.AddRow("hi", 30.0)
	tb.AddRow("lo", 1.5)
	tb.AddRow("mid", 10.0)
	tb.SortByColumn(1)
	out := tb.String()
	iLo := strings.Index(out, "lo")
	iMid := strings.Index(out, "mid")
	iHi := strings.Index(out, "hi")
	if !(iLo < iMid && iMid < iHi) {
		t.Errorf("sort order wrong:\n%s", out)
	}
}

func TestClassSpeedup(t *testing.T) {
	base := &Set{}
	s := &Set{}
	base.Add(&Run{Workload: "srv", Class: "server", Cycles: 100, Instructions: 100})
	base.Add(&Run{Workload: "sp", Class: "spec", Cycles: 100, Instructions: 100})
	s.Add(&Run{Workload: "srv", Class: "server", Cycles: 100, Instructions: 200})
	s.Add(&Run{Workload: "sp", Class: "spec", Cycles: 100, Instructions: 110})
	if got := s.ClassSpeedup(base, "server"); math.Abs(got-2.0) > 1e-12 {
		t.Errorf("server class speedup = %v", got)
	}
	if got := s.ClassSpeedup(base, "spec"); math.Abs(got-1.1) > 1e-12 {
		t.Errorf("spec class speedup = %v", got)
	}
	if got := s.ClassSpeedup(base, "client"); got != 0 {
		t.Errorf("absent class speedup = %v", got)
	}
	// Unfiltered equals plain geomean.
	if s.GeoMeanSpeedupWhere(base, nil) != s.GeoMeanSpeedup(base) {
		t.Error("nil filter differs from GeoMeanSpeedup")
	}
}

func TestTableCSV(t *testing.T) {
	tb := NewTable("t", "name", "v")
	tb.AddRow("plain", 1.0)
	tb.AddRow(`has,comma "q"`, 2.0)
	out := tb.CSV()
	want := "name,v\nplain,1.000\n\"has,comma \"\"q\"\"\",2.000\n"
	if out != want {
		t.Errorf("CSV:\n%q\nwant\n%q", out, want)
	}
	if tb.Title() != "t" {
		t.Errorf("Title = %q", tb.Title())
	}
}

func TestSparkline(t *testing.T) {
	if got := Sparkline(nil); got != "" {
		t.Errorf("Sparkline(nil) = %q", got)
	}
	out := Sparkline([]float64{0, 0.5, 1.0})
	runes := []rune(out)
	if len(runes) != 3 {
		t.Fatalf("len = %d", len(runes))
	}
	if runes[0] != '▁' || runes[2] != '█' {
		t.Errorf("scaling wrong: %q", out)
	}
	// All-zero series must not divide by zero.
	if got := []rune(Sparkline([]float64{0, 0})); len(got) != 2 || got[0] != '▁' {
		t.Errorf("zero series = %q", string(got))
	}
}

// TestDivisionEdgeCases pins the zero-denominator behaviour of every
// derived metric: zero-instruction runs, empty sets and nil bases must
// all yield 0, never NaN or Inf.
func TestDivisionEdgeCases(t *testing.T) {
	empty := &Run{Workload: "w"}
	full := &Run{Workload: "w", Cycles: 100, Instructions: 200, BTBLookups: 10, BTBHits: 5}
	cases := []struct {
		name string
		got  float64
		want float64
	}{
		{"perKI zero instructions", empty.BranchMPKI(), 0},
		{"L1IMPKI zero instructions", empty.L1IMPKI(), 0},
		{"StarvationPKI zero instructions", empty.StarvationPKI(), 0},
		{"TagProbesPKI zero instructions", empty.TagProbesPKI(), 0},
		{"BTBHitRate zero lookups", empty.BTBHitRate(), 0},
		{"IPC zero cycles", empty.IPC(), 0},
		{"MeanFTQOccupancy zero cycles", empty.MeanFTQOccupancy(), 0},
		{"Speedup nil base", full.Speedup(nil), 0},
		{"Speedup zero-IPC base", full.Speedup(empty), 0},
		{"Speedup of zero-IPC run", empty.Speedup(full), 0},
		{"GeoMeanSpeedup empty sets", (&Set{}).GeoMeanSpeedup(&Set{}), 0},
		{"GeoMeanSpeedup nil base", (&Set{Runs: []*Run{full}}).GeoMeanSpeedup(nil), 0},
		{"GeoMeanSpeedup zero-IPC base", (&Set{Runs: []*Run{full}}).GeoMeanSpeedup(&Set{Runs: []*Run{empty}}), 0},
		{"ClassSpeedup no matching class", (&Set{Runs: []*Run{full}}).ClassSpeedup(&Set{Runs: []*Run{full}}, "nope"), 0},
		{"mean over empty set", (&Set{}).MeanBranchMPKI(), 0},
		{"GeoMean all non-positive", GeoMean([]float64{0, -1}), 0},
		{"GeoMean empty", GeoMean(nil), 0},
		{"Mean empty", Mean(nil), 0},
	}
	for _, c := range cases {
		if math.IsNaN(c.got) || math.IsInf(c.got, 0) {
			t.Errorf("%s: got non-finite %v", c.name, c.got)
			continue
		}
		if c.got != c.want {
			t.Errorf("%s: got %v, want %v", c.name, c.got, c.want)
		}
	}
}

// TestRunCountersComplete checks the manifest counter map stays in sync
// with the Run struct: every uint64 counter field must be present.
func TestRunCountersComplete(t *testing.T) {
	r := &Run{Cycles: 1, Instructions: 2, StarvationCycles: 3}
	c := r.Counters()
	if c["run.cycles"] != 1 || c["run.instructions"] != 2 || c["run.starvation_cycles"] != 3 {
		t.Fatalf("counter values wrong: %v", c)
	}
	want := 0
	rt := reflect.TypeOf(*r)
	for i := 0; i < rt.NumField(); i++ {
		ft := rt.Field(i).Type
		switch {
		case ft.Kind() == reflect.Uint64:
			want++
		case ft.Kind() == reflect.Array && ft.Elem().Kind() == reflect.Uint64:
			// Counter families (the cycle-accounting vector): one manifest
			// counter per element.
			want += ft.Len()
		}
	}
	if len(c) != want {
		t.Fatalf("Counters() has %d entries but Run has %d uint64 fields — update Counters()", len(c), want)
	}
	for name, d := range r.Derived() {
		if math.IsNaN(d) || math.IsInf(d, 0) {
			t.Errorf("derived %s non-finite: %v", name, d)
		}
	}
}

// TestAcctShareZeroCycles: a run that accounted nothing (zero-cycle
// measurement, e.g. a 0-budget smoke run) must not divide by zero — every
// bucket's share is 0, and shares of a populated run sum to 1.
func TestAcctShareZeroCycles(t *testing.T) {
	var empty Run
	for b := 0; b < obs.NumAcctBuckets; b++ {
		if got := empty.AcctShare(b); got != 0 {
			t.Fatalf("zero-cycle AcctShare(%d) = %v, want 0", b, got)
		}
	}

	var run Run
	for b := 0; b < obs.NumAcctBuckets; b++ {
		run.Acct[b] = uint64(b + 1)
	}
	var sum float64
	for b := 0; b < obs.NumAcctBuckets; b++ {
		sum += run.AcctShare(b)
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Fatalf("bucket shares sum to %v, want 1", sum)
	}
}
