// Package ras implements the Return Address Stack: a fixed-depth circular
// stack of return addresses with cheap whole-state snapshots, used both
// speculatively by the prediction pipeline and architecturally by the
// backend (the backend copy is the recovery point on pipeline flushes).
package ras

// DefaultDepth is the standard RAS depth (Table IV).
const DefaultDepth = 32

// RAS is a circular return address stack. Pushing beyond the depth
// overwrites the oldest entry; popping an empty stack returns 0 and keeps
// the stack empty (a misprediction the core will discover at resolution).
type RAS struct {
	entries []uint64
	top     int // index of the most recent entry (valid when size > 0)
	size    int // logical occupancy, 0..depth

	// Pushes, Pops and Underflows are statistics counters.
	Pushes     uint64
	Pops       uint64
	Underflows uint64
}

// New creates a RAS with the given depth.
func New(depth int) *RAS {
	if depth <= 0 {
		panic("ras: non-positive depth")
	}
	return &RAS{entries: make([]uint64, depth)}
}

// Depth returns the stack capacity.
func (r *RAS) Depth() int { return len(r.entries) }

// Size returns the current logical occupancy.
func (r *RAS) Size() int { return r.size }

// Push records a return address (on a call).
func (r *RAS) Push(addr uint64) {
	r.Pushes++
	r.top = (r.top + 1) % len(r.entries)
	r.entries[r.top] = addr
	if r.size < len(r.entries) {
		r.size++
	}
}

// Pop removes and returns the most recent return address. An empty stack
// returns 0.
func (r *RAS) Pop() uint64 {
	r.Pops++
	if r.size == 0 {
		r.Underflows++
		return 0
	}
	addr := r.entries[r.top]
	r.top = (r.top - 1 + len(r.entries)) % len(r.entries)
	r.size--
	return addr
}

// Top returns the most recent return address without popping (0 if empty).
func (r *RAS) Top() uint64 {
	if r.size == 0 {
		return 0
	}
	return r.entries[r.top]
}

// Snapshot is a saved RAS state; the entries slice is reused across saves.
//
// Only the logically live region of the ring (size entries ending at top)
// is copied: dead slots are never read by Pop/Top before a Push overwrites
// them, so omitting them is observationally identical and keeps Save —
// which runs once per predicted block — proportional to the call depth
// instead of the full stack capacity.
type Snapshot struct {
	entries []uint64
	top     int
	size    int
}

// copyLive copies the live region of the ring src (size entries ending at
// index top, capacity depth) into dst at the same ring positions.
func copyLive(dst, src []uint64, top, size int) {
	start := top - size + 1
	if start >= 0 {
		copy(dst[start:top+1], src[start:top+1])
		return
	}
	// Live region wraps: [depth+start .. depth) and [0 .. top].
	depth := len(src)
	copy(dst[depth+start:], src[depth+start:])
	copy(dst[:top+1], src[:top+1])
}

// Save copies the stack state into s.
func (r *RAS) Save(s *Snapshot) {
	if cap(s.entries) < len(r.entries) {
		s.entries = make([]uint64, len(r.entries))
	}
	s.entries = s.entries[:len(r.entries)]
	copyLive(s.entries, r.entries, r.top, r.size)
	s.top = r.top
	s.size = r.size
}

// Restore sets the stack back to a previously saved state (same depth
// required).
func (r *RAS) Restore(s *Snapshot) {
	copyLive(r.entries, s.entries, s.top, s.size)
	r.top = s.top
	r.size = s.size
}

// CopyFrom makes r identical to src (same depth required).
func (r *RAS) CopyFrom(src *RAS) {
	copyLive(r.entries, src.entries, src.top, src.size)
	r.top = src.top
	r.size = src.size
}

// Reset empties the stack and clears statistics.
func (r *RAS) Reset() {
	r.top, r.size = 0, 0
	r.Pushes, r.Pops, r.Underflows = 0, 0, 0
}
