// decode.go maps the generic parseYAML output onto the Spec structs
// with strict unknown-key and type errors. Errors accumulate first-wins
// so Parse reports the most useful violation, not a cascade.
package wspec

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

type decoder struct {
	err error
}

func (d *decoder) errf(format string, args ...interface{}) {
	if d.err == nil {
		d.err = fmt.Errorf(format, args...)
	}
}

// strictKeys rejects keys outside the allowed set, naming the closest
// schema so typos fail loudly instead of silently defaulting.
func (d *decoder) strictKeys(ctx string, m map[string]interface{}, allowed ...string) {
	var unknown []string
	for k := range m {
		ok := false
		for _, a := range allowed {
			if k == a {
				ok = true
				break
			}
		}
		if !ok {
			unknown = append(unknown, k)
		}
	}
	if len(unknown) > 0 {
		sort.Strings(unknown)
		d.errf("%s: unknown key %q (known keys: %s)", ctx, unknown[0], strings.Join(allowed, ", "))
	}
}

func (d *decoder) strField(name string, m map[string]interface{}, def string) string {
	v, ok := m[name]
	if !ok || v == nil {
		return def
	}
	s, ok := v.(string)
	if !ok {
		d.errf("%s: expected a string, got %T (%v)", name, v, v)
		return def
	}
	return s
}

func (d *decoder) intField(name string, m map[string]interface{}, def int) int {
	v, ok := m[name]
	if !ok || v == nil {
		return def
	}
	switch n := v.(type) {
	case uint64:
		if n > math.MaxInt64 {
			d.errf("%s: %d overflows an integer", name, n)
			return def
		}
		return int(n)
	case int64:
		return int(n)
	default:
		d.errf("%s: expected an integer, got %T (%v)", name, v, v)
		return def
	}
}

func (d *decoder) uintField(name string, m map[string]interface{}, def uint64) uint64 {
	// Field name may be qualified ("phases[0].at"); the lookup key is the
	// last path segment.
	key := name
	if i := strings.LastIndexAny(name, "]."); i >= 0 && i+1 < len(name) {
		key = name[i+1:]
	}
	v, ok := m[key]
	if !ok || v == nil {
		return def
	}
	switch n := v.(type) {
	case uint64:
		return n
	case int64:
		if n < 0 {
			d.errf("%s: %d must not be negative", name, n)
			return def
		}
		return uint64(n)
	default:
		d.errf("%s: expected a non-negative integer, got %T (%v)", name, v, v)
		return def
	}
}

func (d *decoder) floatField(name string, m map[string]interface{}, def float64) float64 {
	v, ok := m[name]
	if !ok || v == nil {
		return def
	}
	switch n := v.(type) {
	case float64:
		return n
	case uint64:
		return float64(n)
	case int64:
		return float64(n)
	default:
		d.errf("%s: expected a number, got %T (%v)", name, v, v)
		return def
	}
}

// mixField decodes a component list. The lookup key is the last path
// segment of name, like uintField.
func (d *decoder) mixField(name string, m map[string]interface{}) []Component {
	key := name
	if i := strings.LastIndexAny(name, "]."); i >= 0 && i+1 < len(name) {
		key = name[i+1:]
	}
	v, ok := m[key]
	if !ok || v == nil {
		return nil
	}
	items, ok := v.([]interface{})
	if !ok {
		d.errf("%s: must be a list of components", name)
		return nil
	}
	var mix []Component
	for i, it := range items {
		cm, ok := it.(map[string]interface{})
		if !ok {
			d.errf("%s[%d]: must be a mapping (preset, weight, ...)", name, i)
			continue
		}
		ctx := fmt.Sprintf("%s[%d]", name, i)
		d.strictKeys(ctx, cm, "preset", "variant", "weight", "seed_offset", "params")
		c := Component{Weight: 1}
		c.Preset = d.strField("preset", cm, "")
		c.Variant = d.intField("variant", cm, 0)
		c.Weight = d.floatField("weight", cm, c.Weight)
		c.SeedOffset = d.uintField("seed_offset", cm, 0)
		if raw, ok := cm["params"]; ok && raw != nil {
			pmap, ok := raw.(map[string]interface{})
			if !ok {
				d.errf("%s.params: must be a mapping of parameter overrides", ctx)
			} else {
				d.decodeOverrides(ctx+".params", pmap, &c.Params)
			}
		}
		mix = append(mix, c)
	}
	return mix
}

func (d *decoder) decodeOverrides(ctx string, m map[string]interface{}, o *Overrides) {
	ints := o.intFields()
	floats := o.floatFields()
	var allowed []string
	for _, f := range ints {
		allowed = append(allowed, f.name)
	}
	for _, f := range floats {
		allowed = append(allowed, f.name)
	}
	d.strictKeys(ctx, m, allowed...)
	for _, f := range ints {
		v, ok := m[f.name]
		if !ok || v == nil {
			continue
		}
		switch n := v.(type) {
		case uint64:
			if n > math.MaxInt64 {
				d.errf("%s.%s: %d overflows an integer", ctx, f.name, n)
				continue
			}
			*f.p = new(int)
			**f.p = int(n)
		case int64:
			*f.p = new(int)
			**f.p = int(n)
		default:
			d.errf("%s.%s: expected an integer, got %T (%v)", ctx, f.name, v, v)
		}
	}
	for _, f := range floats {
		v, ok := m[f.name]
		if !ok || v == nil {
			continue
		}
		switch n := v.(type) {
		case float64:
			*f.p = new(float64)
			**f.p = n
		case uint64:
			*f.p = new(float64)
			**f.p = float64(n)
		case int64:
			*f.p = new(float64)
			**f.p = float64(n)
		default:
			d.errf("%s.%s: expected a number, got %T (%v)", ctx, f.name, v, v)
		}
	}
}

// intField / floatField descriptors expose the override fields by their
// YAML key, keeping decode, encode and validation in one table.
type intOverride struct {
	name string
	v    *int  // current value (nil if unset)
	p    **int // slot to set on decode
}

type floatOverride struct {
	name string
	v    *float64
	p    **float64
}

func (o *Overrides) intFields() []intOverride {
	return []intOverride{
		{"funcs", o.Funcs, &o.Funcs},
		{"levels", o.Levels, &o.Levels},
		{"blocks_per_func_mean", o.BlocksPerFuncMean, &o.BlocksPerFuncMean},
		{"block_len_mean", o.BlockLenMean, &o.BlockLenMean},
		{"trip_mean", o.TripMean, &o.TripMean},
		{"ind_targets_max", o.IndTargetsMax, &o.IndTargetsMax},
	}
}

func (o *Overrides) floatFields() []floatOverride {
	return []floatOverride{
		{"jump_frac", o.JumpFrac, &o.JumpFrac},
		{"call_frac", o.CallFrac, &o.CallFrac},
		{"ind_jump_frac", o.IndJumpFrac, &o.IndJumpFrac},
		{"ind_call_frac", o.IndCallFrac, &o.IndCallFrac},
		{"loop_frac", o.LoopFrac, &o.LoopFrac},
		{"pattern_frac", o.PatternFrac, &o.PatternFrac},
		{"strong_bias_frac", o.StrongBiasFrac, &o.StrongBiasFrac},
		{"markov_stay", o.MarkovStay, &o.MarkovStay},
		{"hot_fraction", o.HotFraction, &o.HotFraction},
	}
}
