package experiments

import (
	"fmt"

	"fdp/internal/core"
	"fdp/internal/ftq"
	"fdp/internal/repro"
	"fdp/internal/stats"
)

// Table1 reproduces Table I: the BTB capacity gap between academic
// baselines and disclosed commercial designs. The data is from the paper
// and its citations (a documentation table, not a measurement).
func Table1(Options) (*Result, error) {
	t := stats.NewTable("Table I: BTB capacity gap (entries)", "academia", "BTB", "industry", "BTB")
	t.AddRow("Shotgun [12]", "2.1K", "AMD Zen2 [29]", "7K")
	t.AddRow("Confluence [10]", "1.5K", "Samsung Exynos M3 [27]", "16K")
	t.AddRow("Divide&Conquer [13]", "2K", "Arm Neoverse N1 [26]", "6K")
	return &Result{
		ID: "tab1", Title: "BTB capacity gap between academia and industry",
		Tables: []*stats.Table{t},
		Notes:  []string{"static reproduction of the paper's survey data"},
	}, nil
}

// Table2 reproduces Table II as a measurement: how the three ways of
// handling BTB-miss not-taken branches differ in mispredictions, frontend
// stalls (fixup flushes) and BTB allocation.
func Table2(opts Options) (*Result, error) {
	target := core.DefaultConfig()
	target.Name = "target"
	target.HistPolicy = core.HistTHR
	target.BTBAllocPolicy = core.AllocTakenOnly

	dirNoFix := core.DefaultConfig()
	dirNoFix.Name = "direction-nofix"
	dirNoFix.HistPolicy = core.HistGHRNoFix
	dirNoFix.BTBAllocPolicy = core.AllocAll

	dirFix := core.DefaultConfig()
	dirFix.Name = "direction-fix"
	dirFix.HistPolicy = core.HistGHRFix
	dirFix.BTBAllocPolicy = core.AllocAll

	sets, err := runGrid(opts, []core.Config{target, dirNoFix, dirFix})
	if err != nil {
		return nil, err
	}
	t := stats.NewTable("Table II: handling BTB-miss not-taken branches",
		"history type", "GHR fixup", "branch MPKI", "fixup flushes/KI", "BTB allocation")
	row := func(set *stats.Set, hist, fixup, alloc string) {
		var flushPKI float64
		for _, r := range set.Runs {
			flushPKI += 1000 * float64(r.HistFixupFlushes) / float64(r.Instructions)
		}
		flushPKI /= float64(len(set.Runs))
		t.AddRow(hist, fixup, set.MeanBranchMPKI(), flushPKI, alloc)
	}
	row(sets["target"], "Target", "no need", "Taken")
	row(sets["direction-nofix"], "Direction (no fix)", "no", "All")
	row(sets["direction-fix"], "Direction (fix)", "yes", "All")
	return &Result{
		ID: "tab2", Title: "Handling BTB-miss not-taken branches",
		Tables: []*stats.Table{t},
		Notes: []string{
			"paper's qualitative claims: Target has fewest mispredictions and no fixup stalls;",
			"Direction(fix) trades mispredictions for frontend fixup flushes",
		},
	}, nil
}

// contractTab2 is Table II's reproduction contract: the fixup policy
// must actually pay its frontend flushes — if GHR2 stops flushing, the
// history-management comparison (tab2, fig8) is no longer measuring the
// paper's trade-off.
func contractTab2() repro.Contract {
	ghr2 := core.DefaultConfig()
	ghr2.Name = "ghr2"
	ghr2.HistPolicy = core.HistGHRFix
	ghr2.BTBAllocPolicy = core.AllocTakenOnly
	return repro.Contract{
		Artifact: "tab2", Title: "Handling BTB-miss not-taken branches",
		Configs: []core.Config{ghr2},
		Expectations: []repro.Expectation{
			{
				ID:       "ghr2-pays-fixups",
				Claim:    "the GHR fixup policy pays real frontend fixup flushes",
				Severity: repro.Hard, Kind: repro.KindPositive, Metric: repro.MetricFixupFlushPKI,
				Configs: []string{"ghr2"},
			},
		},
	}
}

// Table3 reproduces Table III: the FTQ hardware overhead, including the
// 195-byte total for the 24-entry FTQ and the 24-byte PFC addition.
func Table3(Options) (*Result, error) {
	c := ftq.Cost(24)
	t := stats.NewTable("Table III: hardware overhead", "field", "size")
	t.AddRow("Start address", fmt.Sprintf("%d-bit", c.StartAddrBits))
	t.AddRow("Block predicted taken", fmt.Sprintf("%d-bit", c.PredTakenBits))
	t.AddRow("Block termination offset", fmt.Sprintf("%d-bit", c.EndOffsetBits))
	t.AddRow("I-cache way", fmt.Sprintf("%d-bit", c.WayBits))
	t.AddRow("State", fmt.Sprintf("%d-bit", c.StateBits))
	t.AddRow("Direction hint", fmt.Sprintf("%d-bit", c.HintBits))
	t.AddRow(fmt.Sprintf("Total (%d-entry)", c.Entries), fmt.Sprintf("%d bytes", c.TotalBytes))
	t.AddRow("PFC-specific (hints)", fmt.Sprintf("%d bytes", c.PFCExtraBytes))
	notes := []string{fmt.Sprintf("per-entry cost: %d bits", c.PerEntryBits)}
	if c.TotalBytes != 195 {
		notes = append(notes, fmt.Sprintf("WARNING: expected 195 bytes, computed %d", c.TotalBytes))
	}
	return &Result{ID: "tab3", Title: "FTQ hardware overhead", Tables: []*stats.Table{t}, Notes: notes}, nil
}

// Table4 reproduces Table IV: the common core parameters, printed from
// the live default configuration so the report can never drift from the
// simulator.
func Table4(Options) (*Result, error) {
	c := core.DefaultConfig()
	t := stats.NewTable("Table IV: common parameters", "parameter", "value")
	t.AddRow("Fetch width", fmt.Sprintf("%d inst/cycle", c.FetchWidth))
	t.AddRow("Decode width", fmt.Sprintf("%d inst/cycle", c.DecodeWidth))
	t.AddRow("Prediction bandwidth", fmt.Sprintf("%d inst/cycle", c.PredictWidth))
	t.AddRow("Taken predictions", fmt.Sprintf("%d /cycle", c.MaxTakenPerCycle))
	t.AddRow("FTQ", fmt.Sprintf("%d entries (%d instructions)", c.FTQEntries, c.FTQEntries*ftq.BlockInsts))
	t.AddRow("Direction predictor", string(c.Dir)+" (260-bit target history)")
	t.AddRow("BTB", fmt.Sprintf("%d entries, %d-way, 16B-indexed, %d-cycle", c.BTBEntries, c.BTBWays, c.BTBLatency))
	t.AddRow("Indirect predictor", "ittage (4 tagged tables + base)")
	t.AddRow("RAS", fmt.Sprintf("%d entries", c.RASDepth))
	t.AddRow("L1I", fmt.Sprintf("%dKB %d-way, 64B lines", c.L1IBytes/1024, c.L1IWays))
	t.AddRow("L2", fmt.Sprintf("%dKB %d-way, +%d cycles", c.L2Bytes/1024, c.L2Ways, c.Lat.L2))
	t.AddRow("LLC", fmt.Sprintf("%dKB %d-way, +%d cycles", c.LLCBytes/1024, c.LLCWays, c.Lat.LLC))
	t.AddRow("Memory", fmt.Sprintf("+%d cycles", c.Lat.Mem))
	t.AddRow("MSHRs", fmt.Sprintf("%d", c.MSHRs))
	t.AddRow("Branch resolution", fmt.Sprintf("%d cycles after dispatch", c.ResolveLatency))
	t.AddRow("History policy", c.HistPolicy.String())
	t.AddRow("PFC", fmt.Sprintf("%v", c.PFC))
	return &Result{ID: "tab4", Title: "Common simulation parameters", Tables: []*stats.Table{t}}, nil
}

// historyConfig describes one Table V row.
type historyConfig struct {
	name   string
	policy core.HistPolicy
	alloc  core.BTBAlloc
}

// historyConfigs returns the Table V policy matrix: Ideal, THR and the
// four GHR variants.
func historyConfigs() []historyConfig {
	return []historyConfig{
		{"Ideal", core.HistIdeal, core.AllocTakenOnly},
		{"THR", core.HistTHR, core.AllocTakenOnly},
		{"GHR0", core.HistGHRNoFix, core.AllocTakenOnly},
		{"GHR1", core.HistGHRNoFix, core.AllocAll},
		{"GHR2", core.HistGHRFix, core.AllocTakenOnly},
		{"GHR3", core.HistGHRFix, core.AllocAll},
	}
}

// Table5 reproduces Table V: the branch history management policy matrix.
func Table5(Options) (*Result, error) {
	t := stats.NewTable("Table V: branch history management policies",
		"name", "history type", "GHR fixup", "BTB allocation")
	for _, hc := range historyConfigs() {
		histType := "direction"
		fix := "no"
		switch hc.policy {
		case core.HistTHR:
			histType = "taken-only target"
			fix = "n/a"
		case core.HistIdeal:
			histType = "idealized direction"
			fix = "n/a"
		case core.HistGHRFix:
			fix = "yes"
		}
		t.AddRow(hc.name, histType, fix, hc.alloc.String())
	}
	return &Result{ID: "tab5", Title: "Branch history management policies", Tables: []*stats.Table{t}}, nil
}
