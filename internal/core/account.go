package core

import (
	"fdp/internal/ftq"
	"fdp/internal/obs"
)

// resteerCause records why the prediction pipeline was last restarted,
// so recovery-bubble cycles (c.now < c.predStallUntil) can be attributed
// to the redirect that caused them.
type resteerCause uint8

const (
	// resteerNone: no redirect charged the current stall (e.g. the
	// two-level BTB's L2 bubble, or the initial state).
	resteerNone resteerCause = iota
	// resteerPFC: a post-fetch-correction re-steer.
	resteerPFC
	// resteerFlush: a resolve-time misprediction flush.
	resteerFlush
	// resteerFixup: a GHR-fixup frontend flush.
	resteerFixup
)

// accountCycle attributes the cycle that just executed to exactly one
// bucket of the top-down taxonomy (obs.AcctBucketNames). It runs
// unconditionally — the accounting vector lives on stats.Run, costs one
// array increment per cycle, and never allocates — so the conservation
// invariant (bucket sum == measured cycles) holds by construction.
func (c *Core) accountCycle() {
	c.run.Acct[c.classifyCycle()]++
}

// classifyCycle implements the taxonomy's priority rules, evaluated at
// the same end-of-cycle sample point as StarvationCycles:
//
//  1. delivering        — the decode queue holds a full decode-width
//     group; the frontend kept the backend fed.
//  2. flush_recovery    — a misprediction flush is pending at resolve,
//     or the prediction pipeline is restarting after
//     a resolve or GHR-fixup flush.
//  3. resteer_recovery  — the prediction pipeline is restarting after a
//     PFC redirect.
//  4. ftq_empty         — no FTQ entries to fetch from (including pure
//     prediction bubbles such as the two-level BTB's
//     L2 penalty): the prediction pipeline is the
//     bottleneck.
//  5. l1i_miss_starved  — the FTQ head is waiting on an I-cache fill.
//  6. mshr_backpressure — a demand fill could not launch this cycle
//     because the MSHRs were full.
//  7. fetch_partial     — fetchable work exists but delivery stayed
//     under decode width (partial blocks,
//     taken-branch fragmentation, tag-probe
//     bandwidth, fill-pipeline skew).
//
// Recovery windows (rules 2-3) take priority over the FTQ head's state:
// once a redirect restarts the pipeline, the whole bubble is charged to
// the redirect, matching how the paper reasons about PFC/flush cost.
func (c *Core) classifyCycle() int {
	if c.dqLen >= c.cfg.DecodeWidth {
		return obs.AcctDelivering
	}
	if c.diverged {
		return obs.AcctFlushRecovery
	}
	if c.now < c.predStallUntil {
		switch c.lastResteer {
		case resteerPFC:
			return obs.AcctResteerRecovery
		case resteerFlush, resteerFixup:
			return obs.AcctFlushRecovery
		default:
			return obs.AcctFTQEmpty
		}
	}
	head := c.q.Head()
	if head == nil {
		return obs.AcctFTQEmpty
	}
	switch {
	case head.State == ftq.StateWaitFill:
		return obs.AcctL1IMissStarved
	case c.acctMSHRFull:
		return obs.AcctMSHRBackpressure
	default:
		return obs.AcctFetchPartial
	}
}

// snapshotInterval records one interval time-series sample: the
// accounting deltas since the previous snapshot, the retired-instruction
// and demand-L1I-miss deltas, and the instantaneous FTQ occupancy. The
// rebase fields make consecutive records exact partitions of the run, so
// summing a run's records reproduces its end-of-run accounting vector.
func (c *Core) snapshotInterval(iv *obs.IntervalRecorder) {
	rec := obs.IntervalRecord{
		Cycle:        c.now,
		Instructions: c.retired - c.ivRetired,
		L1IMisses:    c.run.L1IMisses - c.ivMisses,
		FTQOcc:       uint64(c.q.Len()),
	}
	for b := range rec.Acct {
		rec.Acct[b] = c.run.Acct[b] - c.ivAcct[b]
	}
	c.ivAcct = c.run.Acct
	c.ivCycle, c.ivRetired, c.ivMisses = c.now, c.retired, c.run.L1IMisses
	iv.Record(rec)
}

// rebaseIntervals re-anchors the interval delta baselines to the current
// machine state (measurement start, after the stats reset).
func (c *Core) rebaseIntervals() {
	c.ivAcct = c.run.Acct
	c.ivCycle, c.ivRetired, c.ivMisses = c.now, c.retired, c.run.L1IMisses
}
