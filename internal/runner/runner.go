package runner

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sync"
	"time"

	"fdp/internal/core"
	"fdp/internal/obs"
	"fdp/internal/stats"
)

// Options control one Execute call.
type Options struct {
	// Parallel bounds concurrent simulations (non-positive = GOMAXPROCS).
	Parallel int
	// Cache, when non-nil, satisfies repeated specs from stored results
	// and records fresh ones. It is bypassed whenever CacheBypassed()
	// reports true: tracing and interval recording change the observable
	// manifest (trace.* / interval.* counters) and their side-channel
	// output cannot be replayed from a cached result.
	Cache *Cache
	// Observe attaches a fresh probe set to every simulated run and
	// returns a per-run manifest on its Result.
	Observe bool
	// TraceCap, when > 0 together with Observe, gives each run a
	// ring-buffered pipeline event tracer holding the last TraceCap
	// events.
	TraceCap int
	// TraceSink, when non-nil, receives each traced run's events as JSONL
	// (one {"run": "config/workload"} header per run, in completion
	// order; writes are serialized).
	TraceSink io.Writer
	// IntervalEvery, when > 0 together with Observe, gives each run an
	// interval time-series recorder snapshotting the cycle-accounting
	// vector every IntervalEvery cycles.
	IntervalEvery uint64
	// IntervalSink, when non-nil, receives each run's interval records as
	// JSONL (one {"run": ..., "every": ...} header per run, in completion
	// order; writes are serialized).
	IntervalSink io.Writer
	// Reg, when non-nil, receives the runner metrics (runner_jobs,
	// runner_cache_hits, runner_queue_depth, ...). Unlike a per-run
	// registry it is shared across the pool; the scheduler serializes its
	// updates.
	Reg *obs.Registry
	// Status, when non-nil, receives lock-free live progress updates
	// readable from any goroutine while Execute runs (the HTTP monitor's
	// /progress source).
	Status *Status
	// Manifests, when non-nil together with Observe, receives every
	// per-run manifest as it completes (cache hits included), in
	// completion order. Unlike the Result slice this is visible mid-run,
	// which is what the HTTP monitor's /metrics endpoint serves.
	Manifests *obs.ManifestLog
	// Spans, when non-nil, receives the structured lifecycle timeline of
	// every job: queued / ckpt_wait / restore / ffwd / simulate /
	// cache_write spans plus cache_hit / retry / watchdog / quarantine
	// events (see obs.SpanKind). Visible mid-run (the monitor's /timeline
	// source) and streamable to JSONL via SpanLog.SetSink. Purely
	// observational: emission never changes results or cache identity.
	Spans *obs.SpanLog
	// Intervals, when non-nil together with Observe and IntervalEvery,
	// receives every run's interval records live as they are snapshotted
	// (ring-buffered per run, keyed by spec key) — the monitor's
	// /intervals and /runs source. Unlike IntervalSink, which gets whole
	// runs at completion, the store sees records mid-simulation.
	Intervals *obs.IntervalStore

	// WatchdogTimeout, when > 0, supervises every attempt with a
	// heartbeat deadline: an attempt whose simulation makes no forward
	// progress (and beats no heartbeat) for this long is canceled with
	// ErrHung as the cause and fails as a fatal hung-job error.
	WatchdogTimeout time.Duration
	// Retry bounds re-execution of transiently failed attempts (panics,
	// injected faults). The zero value means one attempt — no retries.
	Retry RetryPolicy
	// KeepGoing quarantines terminally failed jobs (their Result carries
	// the classified error) and lets the rest of the pool finish, instead
	// of the default first-error abort. Execute then returns the first
	// quarantined error alongside all completed results.
	KeepGoing bool
	// Journal, when non-nil, is the crash-safe completion WAL: cached
	// results are trusted only for journaled keys, and every fresh
	// result is journaled (append + fsync) after it is cached. See
	// OpenJournal.
	Journal *Journal
	// Checkpoint enables post-warmup state reuse for fast-forward specs
	// (Spec.FFwd with a non-zero warmup budget; requires Cache): the first
	// job of a given CheckpointKey fast-forwards once and snapshots, every
	// other job restores — a timing sweep of N configurations over one
	// workload pays its warmup once instead of N times. Unlike the result
	// cache this is NOT disabled by tracing/interval bypass: a checkpoint
	// captures pre-measurement state, which observation does not affect.
	Checkpoint bool
	// Check enables the online invariant checker inside every simulated
	// core (FTQ occupancy, MSHR leaks, RAS depth, accounting
	// conservation); a violation fails the job with core.ErrInvariant.
	Check bool
	// FaultHook, when non-nil, runs at the start of every attempt (after
	// the cache check) — the fault-injection seam used by the chaos
	// harness. A returned error fails the attempt; a panic is handled
	// like a simulation panic.
	FaultHook func(ctx context.Context, job, attempt int) error
	// Backend, when non-nil, executes attempts somewhere other than the
	// in-process simulator (the distributed coordinator, internal/dist).
	// Execute keeps owning the cache, journal, retry policy, watchdog and
	// quarantine; only the simulation itself is delegated. Attempts that
	// need non-replayable local side outputs (CacheBypassed: tracing,
	// interval recording) always run in-process, and the checkpoint group
	// is disabled — workers resolve their own warmup. A backend error
	// wrapping ErrBackendUnavailable degrades that attempt to local
	// execution instead of failing it.
	Backend Backend
}

// CacheBypassed reports whether the options force cache bypass: tracing
// or interval recording make runs non-replayable from cached results.
func (o Options) CacheBypassed() bool {
	return o.TraceCap > 0 || o.IntervalEvery > 0
}

// Result is the outcome of one spec.
type Result struct {
	// Run is the measurement record (nil when the job failed or was
	// cancelled before completing).
	Run *stats.Run
	// Manifest is the per-run observability document (Observe only).
	Manifest *obs.Manifest
	// CacheHit reports the result was replayed from the cache.
	CacheHit bool
	// Err is this job's own failure, if any. Execute's returned error is
	// the first failure across all jobs.
	Err error
}

// Execute runs every spec and returns one Result per spec, in spec order
// regardless of scheduling. The first job error cancels the remaining and
// in-flight jobs (simulations poll their context) and is returned;
// already-finished results are still present in the slice. With
// Options.KeepGoing, terminal job failures are quarantined into their
// Result instead, the pool runs to completion, and the first quarantined
// error is returned alongside the full result set.
func Execute(ctx context.Context, specs []Spec, opts Options) ([]Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	sched := NewScheduler(opts.Parallel, opts.Reg)
	sched.status = opts.Status
	opts.Status.addSpecs(int64(len(specs)))
	results := make([]Result, len(specs))
	useCache := opts.Cache != nil && !opts.CacheBypassed()
	var sinkMu sync.Mutex
	submitted := time.Now() // every spec's queued span starts here

	if useCache {
		opts.Cache.SetQuarantineHook(func() {
			sched.metrics.count(sched.metrics.cacheQuarantined)
			opts.Status.cacheQuarantined()
		})
		defer opts.Cache.SetQuarantineHook(nil)
	}

	var wd *watchdog
	if opts.WatchdogTimeout > 0 {
		wd = newWatchdog(opts.WatchdogTimeout, sched.metrics, opts.Status)
		defer wd.close()
	}

	var ckpts *ckptGroup
	if opts.Checkpoint && opts.Cache != nil && opts.Backend == nil {
		// With a remote backend the post-warmup state lives wherever the
		// worker runs; the coordinator-side checkpoint group would only
		// serialize jobs against snapshots nobody here consumes.
		ckpts = newCkptGroup()
	}

	var (
		quarMu    sync.Mutex
		firstQuar error
	)

	err := sched.Run(ctx, len(specs), func(ctx context.Context, i int) error {
		sp := &specs[i]
		label := sp.Config.Name + "/" + sp.Workload
		opts.Spans.Span(label, i, 0, obs.SpanQueued, submitted, time.Now(), "", "")
		key := ""
		if useCache || opts.Journal != nil {
			key = sp.Key()
		}
		// A cached result counts as done only if the journal (when
		// configured) confirms it was durably recorded: the journal is the
		// completion source of truth on resume.
		if useCache && (opts.Journal == nil || opts.Journal.Done(key)) {
			if run, m, ok := opts.Cache.Get(key, opts.Observe); ok {
				sched.metrics.count(sched.metrics.cacheHits)
				opts.Status.cacheHit()
				opts.Spans.Event(label, i, 0, obs.SpanCacheHit, "", "")
				if m != nil {
					opts.Manifests.Add(m)
				}
				results[i] = Result{Run: run, Manifest: m, CacheHit: true}
				return nil
			}
			sched.metrics.count(sched.metrics.cacheMisses)
			opts.Status.cacheMiss()
		} else if useCache {
			sched.metrics.count(sched.metrics.cacheMisses)
			opts.Status.cacheMiss()
		}

		// Checkpoint plan: resolve the post-warmup snapshot before the
		// attempt loop. Either restore bytes are in hand (cache hit or a
		// concurrent builder's snapshot) or this job is elected builder and
		// must publish — finish on success, fail on every other exit so
		// waiters are never stranded.
		var (
			ckptKey       string
			ckptRestore   []byte
			ckptBuild     bool
			ckptPublished bool
		)
		if ckpts != nil && sp.FFwd && sp.Warmup > 0 {
			ckptKey = sp.CheckpointKey()
			var aerr error
			waitStart := time.Now()
			ckptRestore, ckptBuild, aerr = ckpts.acquire(ctx, opts.Cache, ckptKey)
			if aerr != nil {
				return aerr
			}
			ckptMode := "hit"
			if ckptBuild {
				ckptMode = "build"
			}
			opts.Spans.Span(label, i, 0, obs.SpanCkptWait, waitStart, time.Now(), ckptMode, "")
			if ckptBuild {
				sched.metrics.count(sched.metrics.ckptMisses)
				opts.Status.checkpointMiss()
				defer func() {
					if !ckptPublished {
						ckpts.fail(ckptKey)
					}
				}()
			} else {
				sched.metrics.count(sched.metrics.ckptHits)
				opts.Status.checkpointHit()
			}
		}

		policy := opts.Retry.normalized()
		seed := BackoffSeed(sp.Key())
		var lastErr error
		for attempt := 1; attempt <= policy.Attempts; attempt++ {
			res, snap, restored, err := runAttempt(ctx, sp, i, attempt, label, opts, wd, &sinkMu, ckptRestore, ckptBuild)
			if err == nil {
				results[i] = res
				if ckptBuild {
					opts.Cache.PutCheckpoint(ckptKey, snap)
					ckpts.finish(ckptKey, snap)
					ckptPublished = true
				}
				if restored {
					sched.metrics.count(sched.metrics.ckptRestores)
					opts.Status.checkpointRestored()
				}
				if useCache || opts.Journal != nil {
					wStart := time.Now()
					if useCache {
						opts.Cache.Put(key, res.Run, res.Manifest)
					}
					if opts.Journal != nil {
						// Journal after the cache write: a journaled key
						// promises a replayable (or at worst re-simulatable)
						// result, never the reverse.
						_ = opts.Journal.Record(key)
					}
					opts.Spans.Span(label, i, attempt, obs.SpanCacheWrite, wStart, time.Now(), "", "")
				}
				return nil
			}
			// A pure cancellation casualty (pool abort or caller cancel,
			// not this job's own hang) passes through unclassified so the
			// scheduler counts it as canceled, not failed.
			if (errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)) &&
				!errors.Is(err, ErrHung) {
				return err
			}
			if errors.Is(err, ErrHung) {
				opts.Spans.Event(label, i, attempt, obs.SpanWatchdog, "", err.Error())
			}
			lastErr = &Error{Class: Classify(err), Job: label, Attempts: attempt, Err: err}
			if Classify(err) == ClassTransient && attempt < policy.Attempts {
				sched.metrics.count(sched.metrics.retries)
				opts.Status.retried()
				opts.Spans.Event(label, i, attempt, obs.SpanRetry, Classify(err).String(), err.Error())
				if serr := sleepCtx(ctx, policy.Backoff(attempt, seed)); serr != nil {
					return serr
				}
				continue
			}
			break
		}
		results[i] = Result{Err: lastErr}
		if opts.KeepGoing {
			sched.metrics.count(sched.metrics.quarantined)
			opts.Status.quarantined()
			opts.Spans.Event(label, i, 0, obs.SpanQuarantine, "", lastErr.Error())
			quarMu.Lock()
			if firstQuar == nil {
				firstQuar = lastErr
			}
			quarMu.Unlock()
			return nil
		}
		return lastErr
	})
	if err == nil {
		quarMu.Lock()
		err = firstQuar
		quarMu.Unlock()
	}
	return results, err
}

// runAttempt executes one attempt of one spec: fault hook, simulation
// (with heartbeat, watchdog supervision, and optional invariant checks),
// sink writes, and manifest assembly. Panics are recovered into ErrPanic
// so the retry loop can classify them as transient.
//
// For fast-forward specs, restore (when non-nil) seeds the run from a
// checkpoint and buildSnap asks the run to return one. The returned snap
// is non-nil only when buildSnap was honoured; restored reports that the
// run actually measured from the restore bytes (false after the
// bad-snapshot cold fallback).
func runAttempt(ctx context.Context, sp *Spec, i, attempt int, label string, opts Options, wd *watchdog, sinkMu *sync.Mutex, restore []byte, buildSnap bool) (res Result, snap []byte, restored bool, err error) {
	attemptCtx, cancel := context.WithCancelCause(ctx)
	defer cancel(nil)
	hb := &core.Heartbeat{}
	if wd != nil {
		wd.watch(i, label, hb, cancel)
		defer wd.unwatch(i)
	}
	opts.Status.TrackJob(i, label, attempt, hb)
	defer opts.Status.UntrackJob(i)
	defer func() {
		if r := recover(); r != nil {
			opts.Status.panicked()
			res, snap, restored, err = Result{}, nil, false, fmt.Errorf("%w: job %q attempt %d: %v", ErrPanic, label, attempt, r)
		}
	}()

	if opts.FaultHook != nil {
		if ferr := opts.FaultHook(attemptCtx, i, attempt); ferr != nil {
			return Result{}, nil, false, hungOr(attemptCtx, ferr)
		}
	}

	// Remote dispatch: hand the spec to the backend and fold its result
	// into the normal attempt flow. The heartbeat is shared, so the
	// watchdog supervises remote progress exactly like local cycles; the
	// error comes back through the same classification the retry loop
	// applies to local failures. ErrBackendUnavailable alone falls
	// through to local execution — the every-worker-lost degradation.
	if opts.Backend != nil && !opts.CacheBypassed() {
		run, m, berr := opts.Backend.Run(attemptCtx, BackendJob{
			Spec: sp, Key: sp.Key(), Index: i, Attempt: attempt, Label: label,
			Observe: opts.Observe, Check: opts.Check, Heartbeat: hb, Spans: opts.Spans,
		})
		switch {
		case berr == nil:
			if run != nil {
				run.Class = sp.Class
			}
			if m != nil {
				opts.Manifests.Add(m)
			}
			return Result{Run: run, Manifest: m}, nil, false, nil
		case errors.Is(berr, ErrBackendUnavailable):
			opts.Spans.Event(label, i, attempt, obs.SpanReassign, "local-fallback", berr.Error())
			opts.Status.backendFallback()
		default:
			return Result{}, nil, false, hungOr(attemptCtx, berr)
		}
	}

	var p *obs.Probes
	if opts.Observe {
		p = obs.NewProbes()
		if opts.TraceCap > 0 {
			p.EnableTrace(opts.TraceCap)
		}
		if opts.IntervalEvery > 0 {
			p.EnableIntervals(opts.IntervalEvery)
			if opts.Intervals != nil {
				// Stream snapshots into the live store as they are taken.
				// Finish on every attempt exit — a retry re-registers the
				// same id, clearing the ring but keeping follower cursors
				// valid (the store sequence is monotonic per id).
				ir := opts.Intervals.StartRun(sp.Key(), label, opts.IntervalEvery)
				p.Intervals.SetTee(ir)
				defer ir.Finish()
			}
		}
	}

	// The span timeline of the simulation itself: the fast-forward and
	// checkpoint entry points report their phase boundaries through the
	// observational SimOptions.Phase callback (same goroutine), which we
	// fold into restore/ffwd/simulate spans; the plain path emits one
	// simulate span around the whole call.
	mode := "cold"
	switch {
	case sp.FFwd && restore != nil:
		mode = "restored"
	case sp.FFwd && buildSnap:
		mode = "build"
	case sp.FFwd:
		mode = "ffwd"
	}
	simStart := time.Now()
	var (
		phKind    obs.SpanKind
		phStart   time.Time
		phaseOpen bool
	)
	simOpts := core.SimOptions{Probes: p, Heartbeat: hb, Check: opts.Check, FastForward: sp.FFwd}
	if opts.Spans != nil {
		simOpts.Phase = func(name string) {
			now := time.Now()
			if phaseOpen {
				opts.Spans.Span(label, i, attempt, phKind, phStart, now, mode, "")
			}
			switch name {
			case "ffwd":
				phKind = obs.SpanFFwd
			case "restore":
				phKind = obs.SpanRestore
			default:
				phKind = obs.SpanSimulate
			}
			phStart, phaseOpen = now, true
		}
	}
	var run *stats.Run
	var serr error
	switch {
	case sp.FFwd && restore != nil:
		run, _, serr = core.SimulateCheckpointed(attemptCtx, sp.Config, sp.NewOracle(), sp.Workload,
			sp.Warmup, sp.Measure, simOpts, restore)
		restored = serr == nil
		if serr != nil && errors.Is(serr, core.ErrBadSnapshot) && attemptCtx.Err() == nil {
			// Damage the CRC did not catch (or a stale geometry). The run is
			// still correct without the checkpoint: fall back to a cold
			// fast-forward warmup.
			mode = "fallback"
			run, serr = core.SimulateOptions(attemptCtx, sp.Config, sp.NewOracle(), sp.Workload,
				sp.Warmup, sp.Measure, simOpts)
		}
	case sp.FFwd && buildSnap:
		run, snap, serr = core.SimulateCheckpointed(attemptCtx, sp.Config, sp.NewOracle(), sp.Workload,
			sp.Warmup, sp.Measure, simOpts, nil)
	default:
		run, serr = core.SimulateOptions(attemptCtx, sp.Config, sp.NewOracle(), sp.Workload,
			sp.Warmup, sp.Measure, simOpts)
	}
	if opts.Spans != nil {
		now := time.Now()
		errText := ""
		if serr != nil {
			errText = serr.Error()
		}
		if phaseOpen {
			opts.Spans.Span(label, i, attempt, phKind, phStart, now, mode, errText)
		} else {
			opts.Spans.Span(label, i, attempt, obs.SpanSimulate, simStart, now, mode, errText)
		}
	}
	if run != nil {
		run.Class = sp.Class
	}
	if serr != nil {
		return Result{}, nil, false, hungOr(attemptCtx, serr)
	}
	var m *obs.Manifest
	if p != nil {
		m = core.Manifest(sp.Config, run, p, sp.Seed, sp.Warmup, sp.Measure)
		m.FFwd = sp.FFwd
		if opts.TraceSink != nil && p.Tracer != nil {
			sinkMu.Lock()
			werr := obs.WriteRunTrace(opts.TraceSink, label, p.Tracer)
			sinkMu.Unlock()
			if werr != nil {
				return Result{}, nil, false, werr
			}
		}
		if opts.IntervalSink != nil && p.Intervals != nil {
			sinkMu.Lock()
			werr := obs.WriteRunIntervals(opts.IntervalSink, label,
				p.Intervals.Every(), p.Intervals.Records())
			sinkMu.Unlock()
			if werr != nil {
				return Result{}, nil, false, werr
			}
		}
		opts.Manifests.Add(m)
	}
	return Result{Run: run, Manifest: m}, snap, restored, nil
}

// hungOr rewraps a cancellation error whose cause was the watchdog: the
// job did not die as a casualty of someone else's failure, it *was* the
// failure. ErrHung is wrapped with %w (so Classify sees it) while the
// underlying context error is flattened with %v — a hung job must not
// match the scheduler's errors.Is(err, context.Canceled) casualty check.
func hungOr(ctx context.Context, err error) error {
	if errors.Is(err, context.Canceled) && errors.Is(context.Cause(ctx), ErrHung) {
		return fmt.Errorf("%w (no forward progress; canceled by watchdog): %v", ErrHung, err)
	}
	return err
}
