package core

import (
	"bytes"
	"context"
	"reflect"
	"testing"

	"fdp/internal/synth"
)

// ffwdWL is a small synthetic workload shared by the checkpoint tests.
func ffwdWL() *synth.Workload {
	p := synth.ServerParams(0)
	p.Name = "ffwd"
	p.Funcs = 200
	return synth.MustGenerate(p, "server", 0xFF3D)
}

var ffwdTestWL = ffwdWL()

// ffwdConfigs covers every serialized component family: each direction
// predictor kind, each BTB organization, each history policy, and the
// allocate-all policy.
func ffwdConfigs() []Config {
	mk := func(name string, mutate func(*Config)) Config {
		cfg := DefaultConfig()
		cfg.Name = name
		mutate(&cfg)
		return cfg
	}
	return []Config{
		mk("fdp", func(c *Config) {}),
		mk("baseline", func(c *Config) { *c = BaselineConfig(); c.Name = "baseline" }),
		mk("gshare", func(c *Config) { c.Dir = DirGshare }),
		mk("perceptron", func(c *Config) { c.Dir = DirPerceptron }),
		mk("scl", func(c *Config) { c.Dir = DirTAGESCL24 }),
		mk("perfect-dir", func(c *Config) { c.Dir = DirPerfect }),
		mk("two-level", func(c *Config) { c.L1BTBEntries = 512; c.L1BTBWays = 4 }),
		mk("bb-btb", func(c *Config) { c.BasicBlockBTB = true }),
		mk("perfect-btb", func(c *Config) { c.PerfectBTB = true }),
		mk("ghr-nofix", func(c *Config) { c.HistPolicy = HistGHRNoFix }),
		mk("ghr-fix", func(c *Config) { c.HistPolicy = HistGHRFix; c.BTBAllocPolicy = AllocAll }),
		mk("ideal-hist", func(c *Config) { c.HistPolicy = HistIdeal }),
	}
}

// TestCheckpointEquivalence is the core correctness property: a cold
// fast-forward run (which produces the snapshot) and a restore of that
// snapshot must produce identical measured results, for every predictor
// and BTB organization.
func TestCheckpointEquivalence(t *testing.T) {
	ctx := context.Background()
	w := ffwdTestWL
	for _, cfg := range ffwdConfigs() {
		cfg := cfg
		t.Run(cfg.Name, func(t *testing.T) {
			cold, snap, err := SimulateCheckpointed(ctx, cfg, w.NewStream(), w.Name, 30_000, 30_000, SimOptions{}, nil)
			if err != nil {
				t.Fatalf("cold: %v", err)
			}
			if len(snap) == 0 {
				t.Fatal("cold run produced no snapshot")
			}
			restored, snap2, err := SimulateCheckpointed(ctx, cfg, w.NewStream(), w.Name, 30_000, 30_000, SimOptions{}, snap)
			if err != nil {
				t.Fatalf("restore: %v", err)
			}
			if snap2 != nil {
				t.Error("restore path returned a snapshot")
			}
			if !reflect.DeepEqual(cold, restored) {
				t.Errorf("restored run differs from cold run:\ncold: %+v\nrestored: %+v", cold, restored)
			}
			if cold.IPC() <= 0 {
				t.Errorf("cold IPC = %v", cold.IPC())
			}
		})
	}
}

// TestCheckpointRoundTripBytes is the differential property FuzzCheckpoint
// generalizes: decode(encode(state)) re-encodes to identical bytes.
func TestCheckpointRoundTripBytes(t *testing.T) {
	w := ffwdTestWL
	for _, cfg := range ffwdConfigs() {
		cfg := cfg
		t.Run(cfg.Name, func(t *testing.T) {
			c, err := New(cfg, w.NewStream())
			if err != nil {
				t.Fatal(err)
			}
			if err := c.FastForward(context.Background(), 25_000); err != nil {
				t.Fatal(err)
			}
			snap, err := c.Snapshot()
			if err != nil {
				t.Fatal(err)
			}
			o2 := w.NewStream()
			if err := AdvanceOracle(context.Background(), o2, 25_000); err != nil {
				t.Fatal(err)
			}
			c2, err := New(cfg, o2)
			if err != nil {
				t.Fatal(err)
			}
			if err := c2.RestoreSnapshot(snap); err != nil {
				t.Fatal(err)
			}
			snap2, err := c2.Snapshot()
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(snap, snap2) {
				t.Errorf("snapshot not byte-stable across restore: %d vs %d bytes", len(snap), len(snap2))
			}
		})
	}
}

// TestCheckpointDifferentMeasure proves a checkpoint is measure-budget
// independent: restoring under a different measure budget matches a cold
// fast-forward run with that budget.
func TestCheckpointDifferentMeasure(t *testing.T) {
	ctx := context.Background()
	w := ffwdTestWL
	cfg := DefaultConfig()
	_, snap, err := SimulateCheckpointed(ctx, cfg, w.NewStream(), w.Name, 30_000, 10_000, SimOptions{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	restored, _, err := SimulateCheckpointed(ctx, cfg, w.NewStream(), w.Name, 30_000, 40_000, SimOptions{}, snap)
	if err != nil {
		t.Fatal(err)
	}
	cold, _, err := SimulateCheckpointed(ctx, cfg, w.NewStream(), w.Name, 30_000, 40_000, SimOptions{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(cold, restored) {
		t.Errorf("restore under different measure budget diverged:\ncold: %+v\nrestored: %+v", cold, restored)
	}
}

// TestCheckpointAtBatchBoundary pins the edge where the warmup budget
// lands exactly on FastForward's context-poll interval.
func TestCheckpointAtBatchBoundary(t *testing.T) {
	ctx := context.Background()
	w := ffwdTestWL
	cfg := DefaultConfig()
	warmup := uint64(ffwdCheckInterval) // exactly one poll batch
	cold, snap, err := SimulateCheckpointed(ctx, cfg, w.NewStream(), w.Name, warmup, 20_000, SimOptions{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	restored, _, err := SimulateCheckpointed(ctx, cfg, w.NewStream(), w.Name, warmup, 20_000, SimOptions{}, snap)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(cold, restored) {
		t.Error("boundary-budget restore diverged from cold run")
	}
}

// TestFastForwardCancel verifies mid-fast-forward cancellation surfaces
// through SimulateOptions' context polling.
func TestFastForwardCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	w := ffwdTestWL
	_, err := SimulateOptions(ctx, DefaultConfig(), w.NewStream(), w.Name, 200_000, 10_000,
		SimOptions{FastForward: true})
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestRestoreRejectsWrongGeometry: a snapshot from one configuration must
// not load into a machine with different table geometry.
func TestRestoreRejectsWrongGeometry(t *testing.T) {
	w := ffwdTestWL
	cfg := DefaultConfig()
	c, err := New(cfg, w.NewStream())
	if err != nil {
		t.Fatal(err)
	}
	if err := c.FastForward(context.Background(), 10_000); err != nil {
		t.Fatal(err)
	}
	snap, err := c.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	other := DefaultConfig()
	other.BTBEntries = 1024
	o2 := w.NewStream()
	if err := AdvanceOracle(context.Background(), o2, 10_000); err != nil {
		t.Fatal(err)
	}
	c2, err := New(other, o2)
	if err != nil {
		t.Fatal(err)
	}
	if err := c2.RestoreSnapshot(snap); err == nil {
		t.Fatal("restore into mismatched geometry succeeded")
	}
}

// TestAdvanceOracleMatchesNext: Advance must land streams in exactly the
// state a Next loop reaches.
func TestAdvanceOracleMatchesNext(t *testing.T) {
	w := ffwdTestWL
	a, b := w.NewStream(), w.NewStream()
	const n = 12_345
	for i := 0; i < n; i++ {
		a.Next()
	}
	if err := AdvanceOracle(context.Background(), b, n); err != nil {
		t.Fatal(err)
	}
	if a.PC() != b.PC() {
		t.Fatalf("PC after advance: %#x vs %#x", a.PC(), b.PC())
	}
	for i := 0; i < 1000; i++ {
		da, db := a.Next(), b.Next()
		if da != db {
			t.Fatalf("stream diverged at +%d: %+v vs %+v", i, da, db)
		}
	}
}

// FuzzCheckpoint is the differential fuzz target: for a fuzzer-chosen
// config variant and warmup length, snapshot → restore → snapshot must be
// byte-identical; and restoring fuzzer-corrupted snapshot bytes must fail
// cleanly (error, never panic) or — if the corruption is in ignored
// padding, which the format does not have — restore an identical machine.
func FuzzCheckpoint(f *testing.F) {
	f.Add(uint8(0), uint16(1000), []byte{})
	f.Add(uint8(4), uint16(5000), []byte{0xff, 0x00, 0x10})
	f.Add(uint8(7), uint16(16384), []byte{1, 2, 3, 4, 5, 6, 7, 8})
	configs := ffwdConfigs()
	w := ffwdTestWL
	f.Fuzz(func(t *testing.T, cfgPick uint8, warm uint16, mutation []byte) {
		cfg := configs[int(cfgPick)%len(configs)]
		warmup := uint64(warm)
		c, err := New(cfg, w.NewStream())
		if err != nil {
			t.Fatal(err)
		}
		if err := c.FastForward(context.Background(), warmup); err != nil {
			t.Fatal(err)
		}
		snap, err := c.Snapshot()
		if err != nil {
			t.Fatal(err)
		}

		newAdvanced := func() *Core {
			o := w.NewStream()
			if err := AdvanceOracle(context.Background(), o, warmup); err != nil {
				t.Fatal(err)
			}
			c2, err := New(cfg, o)
			if err != nil {
				t.Fatal(err)
			}
			return c2
		}

		c2 := newAdvanced()
		if err := c2.RestoreSnapshot(snap); err != nil {
			t.Fatalf("restore of valid snapshot failed: %v", err)
		}
		snap2, err := c2.Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(snap, snap2) {
			t.Fatal("snapshot not byte-stable across restore")
		}

		// Corruption robustness: XOR the mutation bytes into the snapshot
		// at spread positions and restore into a fresh machine. Any
		// outcome is fine except a panic or a silent half-restore that
		// then snapshots to garbage lengths.
		if len(mutation) > 0 {
			corrupt := append([]byte(nil), snap...)
			for i, m := range mutation {
				pos := (int(m) + i*8191) % len(corrupt)
				corrupt[pos] ^= m | 1
			}
			c3 := newAdvanced()
			if err := c3.RestoreSnapshot(corrupt); err == nil {
				// The flip may have hit state payload (not structure), in
				// which case decode succeeds; the machine must still be
				// serializable and runnable.
				if _, err := c3.Snapshot(); err != nil {
					t.Fatalf("post-corrupt-restore snapshot failed: %v", err)
				}
			}
		}
	})
}
