package obs

// Canonical metric names. Probe sites use the typed fields on Probes; the
// names appear in manifests and docs/OBSERVABILITY.md.
const (
	MetricFTQOccupancy  = "ftq.occupancy"          // per-cycle FTQ entries
	MetricMSHROccupancy = "mshr.occupancy"         // per-cycle in-flight fills
	MetricPrefToUse     = "prefetch.to_use_cycles" // prefetch fill -> first demand hit
	MetricResteerDepth  = "pfc.resteer_depth"      // FTQ entries flushed per PFC re-steer
	MetricL1IMissLat    = "l1i.miss_latency"       // demand-miss fill latency in cycles
	MetricPredBlockLen  = "predict.block_len"      // instructions per predicted block
	MetricFlushDepth    = "flush.ftq_depth"        // FTQ entries squashed per flush
)

// Probes is the probe set a simulation run records into: a registry of
// named metrics, direct pointers to the hot-path histograms (so probe
// sites skip the map lookup), and an optional event tracer. A nil *Probes
// disables everything; the core guards each probe site with one nil check.
type Probes struct {
	Reg       *Registry
	Tracer    *Tracer           // nil unless EnableTrace was called
	Intervals *IntervalRecorder // nil unless EnableIntervals was called

	FTQOcc       *Histogram
	MSHROcc      *Histogram
	PrefToUse    *Histogram
	ResteerDepth *Histogram
	MissLat      *Histogram
	PredBlockLen *Histogram
	FlushDepth   *Histogram
}

// NewProbes creates a probe set with the canonical histograms registered
// and tracing disabled.
func NewProbes() *Probes {
	reg := NewRegistry()
	return &Probes{
		Reg:          reg,
		FTQOcc:       reg.Histogram(MetricFTQOccupancy),
		MSHROcc:      reg.Histogram(MetricMSHROccupancy),
		PrefToUse:    reg.Histogram(MetricPrefToUse),
		ResteerDepth: reg.Histogram(MetricResteerDepth),
		MissLat:      reg.Histogram(MetricL1IMissLat),
		PredBlockLen: reg.Histogram(MetricPredBlockLen),
		FlushDepth:   reg.Histogram(MetricFlushDepth),
	}
}

// EnableTrace attaches a ring-buffered event tracer holding the last
// capacity events and returns it.
func (p *Probes) EnableTrace(capacity int) *Tracer {
	p.Tracer = NewTracer(capacity)
	return p.Tracer
}

// EnableIntervals attaches an interval time-series recorder snapshotting
// the cycle-accounting vector and key deltas every `every` cycles, and
// returns it.
func (p *Probes) EnableIntervals(every uint64) *IntervalRecorder {
	p.Intervals = NewIntervalRecorder(every)
	return p.Intervals
}

// Reset zeroes all metrics and discards buffered events and interval
// snapshots (end of warmup).
func (p *Probes) Reset() {
	if p == nil {
		return
	}
	p.Reg.Reset()
	p.Tracer.Reset()
	p.Intervals.Reset()
}
