package prefetch

import "fdp/internal/program"

// DJOLT approximates the IPC-1 "D-JOLT: distant jolt prefetcher": it
// derives signatures from a FIFO of recent function-call sites (rather
// than RDIP's stack) and maps each signature to the I-cache miss lines
// that historically followed it, prefetching them far ahead on the next
// occurrence. A long-range table keyed by a deep signature is backed by a
// fuzzier short-range table keyed by a shallow one.
type DJOLT struct {
	fifo [4]uint64 // recent call/return sites, newest at [0]

	long  *sigTable // 4-deep signature
	short *sigTable // 2-deep signature

	// Pending misses are attributed to the signature that was live when
	// the region was entered.
	curLongSig  uint32
	curShortSig uint32
}

// sigTable maps a signature to up to vecLen future miss lines.
type sigTable struct {
	tags  []uint16
	lines [][]uint64
	mask  uint32
	vec   int
}

func newSigTable(entries, vec int) *sigTable {
	t := &sigTable{
		tags:  make([]uint16, entries),
		lines: make([][]uint64, entries),
		mask:  uint32(entries - 1),
		vec:   vec,
	}
	for i := range t.lines {
		t.lines[i] = make([]uint64, 0, vec)
	}
	return t
}

func (t *sigTable) record(sig uint32, line uint64) {
	i := sig & t.mask
	tag := uint16(sig >> 12)
	if t.tags[i] != tag {
		t.tags[i] = tag
		t.lines[i] = t.lines[i][:0]
	}
	for _, l := range t.lines[i] {
		if l == line {
			return
		}
	}
	if len(t.lines[i]) == t.vec {
		copy(t.lines[i], t.lines[i][1:])
		t.lines[i] = t.lines[i][:t.vec-1]
	}
	t.lines[i] = append(t.lines[i], line)
}

func (t *sigTable) lookup(sig uint32, emit Emit) bool {
	i := sig & t.mask
	if t.tags[i] != uint16(sig>>12) || len(t.lines[i]) == 0 {
		return false
	}
	for _, l := range t.lines[i] {
		emit(l)
	}
	return true
}

func (t *sigTable) storageBits() int {
	return len(t.tags) * (16 + t.vec*42)
}

// NewDJOLT builds the default-size D-JOLT (~52KB metadata).
func NewDJOLT() *DJOLT {
	return &DJOLT{
		long:  newSigTable(4096, 4),
		short: newSigTable(2048, 4),
	}
}

// Name implements Prefetcher.
func (d *DJOLT) Name() string { return "djolt" }

// StorageBits implements Prefetcher.
func (d *DJOLT) StorageBits() int { return d.long.storageBits() + d.short.storageBits() }

func sigOf(fifo []uint64) uint32 {
	var s uint64
	for _, v := range fifo {
		s = s*0x9e3779b97f4a7c15 + v
	}
	s ^= s >> 29
	return uint32(s)
}

// OnBranch implements Prefetcher: calls and returns rotate the FIFO and
// trigger lookahead prefetches for the new signature.
func (d *DJOLT) OnBranch(pc uint64, t program.InstType, _ uint64, emit Emit) {
	if !t.IsCall() && !t.IsReturn() {
		return
	}
	copy(d.fifo[1:], d.fifo[:3])
	d.fifo[0] = pc
	d.curLongSig = sigOf(d.fifo[:4])
	d.curShortSig = sigOf(d.fifo[:2])
	// Long-range first; fall back to the fuzzy short-range table.
	if !d.long.lookup(d.curLongSig, emit) {
		d.short.lookup(d.curShortSig, emit)
	}
}

// OnAccess implements Prefetcher: misses are attributed to the live
// signatures so the next occurrence prefetches them ahead of need.
func (d *DJOLT) OnAccess(line uint64, hit, _ bool, emit Emit) {
	if hit {
		return
	}
	d.long.record(d.curLongSig, line)
	d.short.record(d.curShortSig, line)
}

// OnFill implements Prefetcher.
func (d *DJOLT) OnFill(uint64, Emit) {}
