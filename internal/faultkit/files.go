package faultkit

import (
	"fmt"
	"os"

	"fdp/internal/xrand"
)

// FlipBit flips one seeded-deterministically chosen bit in the file —
// the single-event-upset model used to prove the cache's CRC catches
// damage that still parses.
func FlipBit(path string, seed uint64) error {
	b, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	if len(b) == 0 {
		return fmt.Errorf("faultkit: %s is empty, nothing to flip", path)
	}
	r := xrand.New(seed)
	i := r.Intn(len(b))
	b[i] ^= 1 << uint(r.Intn(8))
	return os.WriteFile(path, b, 0o644)
}

// TruncateFrac cuts the file to frac of its size (clamped to [0, 1]) —
// the torn-write model.
func TruncateFrac(path string, frac float64) error {
	st, err := os.Stat(path)
	if err != nil {
		return err
	}
	if frac < 0 {
		frac = 0
	}
	if frac > 1 {
		frac = 1
	}
	return os.Truncate(path, int64(float64(st.Size())*frac))
}

// AppendGarbage appends n seeded pseudo-random bytes — the crash-mid-
// append model for WAL tails.
func AppendGarbage(path string, seed uint64, n int) error {
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	defer f.Close()
	r := xrand.New(seed)
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(r.Uint64())
	}
	_, err = f.Write(b)
	return err
}
