// Quickstart: simulate one frontend-bound server workload with and
// without fetch-directed prefetching and print the headline numbers.
package main

import (
	"fmt"
	"log"

	"fdp"
)

func main() {
	w := fdp.WorkloadByName("server_a")
	fmt.Printf("workload %s: %dKB code, %d static branches\n",
		w.Name, w.FootprintBytes()/1024, w.StaticBranches())

	const warmup, measure = 200_000, 800_000

	base, err := fdp.Simulate(fdp.BaselineConfig(), w, warmup, measure)
	if err != nil {
		log.Fatal(err)
	}
	fdpRun, err := fdp.Simulate(fdp.DefaultConfig(), w, warmup, measure)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("baseline (no FDP):  IPC %.3f, %5.1f L1I MPKI, %6.1f starvation cycles/KI\n",
		base.IPC(), base.L1IMPKI(), base.StarvationPKI())
	fmt.Printf("FDP (24-entry FTQ): IPC %.3f, %5.1f L1I MPKI, %6.1f starvation cycles/KI\n",
		fdpRun.IPC(), fdpRun.L1IMPKI(), fdpRun.StarvationPKI())
	fmt.Printf("FDP speedup: %+.1f%%  (hardware cost: %d bytes of FTQ)\n",
		100*(fdpRun.Speedup(base)-1), fdp.FTQCost(fdp.DefaultConfig().FTQEntries).TotalBytes)
}
