package runner

import (
	"context"
	"reflect"
	"testing"

	"fdp/internal/core"
	"fdp/internal/obs"
	"fdp/internal/synth"
)

// smallSpecs builds a tiny config x workload grid.
func smallSpecs(t *testing.T) []Spec {
	t.Helper()
	var specs []Spec
	for _, cfgName := range []string{"fdp", "baseline"} {
		cfg := core.DefaultConfig()
		if cfgName == "baseline" {
			cfg = core.BaselineConfig()
		}
		for _, wl := range []string{"server_a", "client_a"} {
			w := synth.ByName(wl)
			if w == nil {
				t.Fatalf("unknown workload %s", wl)
			}
			specs = append(specs, WorkloadSpec(cfg, w, 5_000, 20_000))
		}
	}
	return specs
}

// TestExecuteMatchesDirectSimulation: the runner is an execution layer,
// not a semantics layer — its results must equal a direct core.Simulate.
func TestExecuteMatchesDirectSimulation(t *testing.T) {
	specs := smallSpecs(t)
	results, err := Execute(context.Background(), specs, Options{Parallel: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(specs) {
		t.Fatalf("%d results for %d specs", len(results), len(specs))
	}
	for i, sp := range specs {
		want, err := core.Simulate(sp.Config, sp.NewOracle(), sp.Workload, sp.Warmup, sp.Measure)
		if err != nil {
			t.Fatal(err)
		}
		want.Class = sp.Class
		if !reflect.DeepEqual(results[i].Run, want) {
			t.Fatalf("spec %d (%s/%s) diverged from direct simulation", i, sp.Config.Name, sp.Workload)
		}
	}
}

// TestExecuteCacheWarmRun: a second Execute over the same specs performs
// zero simulations — every job is a cache hit — and returns identical
// results.
func TestExecuteCacheWarmRun(t *testing.T) {
	specs := smallSpecs(t)
	cache, err := NewCache(0, "")
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	opts := Options{Parallel: 2, Cache: cache, Observe: true, Reg: reg}

	cold, err := Execute(context.Background(), specs, opts)
	if err != nil {
		t.Fatal(err)
	}
	if hits := reg.Counter(MetricCacheHits).Value(); hits != 0 {
		t.Fatalf("cold run had %d cache hits", hits)
	}
	warm, err := Execute(context.Background(), specs, opts)
	if err != nil {
		t.Fatal(err)
	}
	if hits := reg.Counter(MetricCacheHits).Value(); hits != uint64(len(specs)) {
		t.Fatalf("%s = %d after warm run, want %d", MetricCacheHits, hits, len(specs))
	}
	if misses := reg.Counter(MetricCacheMisses).Value(); misses != uint64(len(specs)) {
		t.Fatalf("%s = %d, want %d (cold run only)", MetricCacheMisses, misses, len(specs))
	}
	for i := range specs {
		if !warm[i].CacheHit {
			t.Fatalf("spec %d not served from cache", i)
		}
		if !reflect.DeepEqual(cold[i].Run, warm[i].Run) {
			t.Fatalf("spec %d cached run differs", i)
		}
		if cold[i].Manifest == nil || warm[i].Manifest == nil {
			t.Fatalf("spec %d missing manifest (observed run)", i)
		}
		if !reflect.DeepEqual(cold[i].Manifest.Counters, warm[i].Manifest.Counters) {
			t.Fatalf("spec %d cached manifest counters differ", i)
		}
	}
}

// TestExecuteDiskResume: a fresh process (modelled by a fresh Cache over
// the same directory) resumes from completed results.
func TestExecuteDiskResume(t *testing.T) {
	specs := smallSpecs(t)[:2]
	dir := t.TempDir()

	c1, err := NewCache(0, dir)
	if err != nil {
		t.Fatal(err)
	}
	first, err := Execute(context.Background(), specs, Options{Parallel: 2, Cache: c1})
	if err != nil {
		t.Fatal(err)
	}

	c2, err := NewCache(0, dir)
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	second, err := Execute(context.Background(), specs, Options{Parallel: 2, Cache: c2, Reg: reg})
	if err != nil {
		t.Fatal(err)
	}
	if hits := reg.Counter(MetricCacheHits).Value(); hits != uint64(len(specs)) {
		t.Fatalf("resume run had %d hits, want %d", hits, len(specs))
	}
	for i := range specs {
		if !reflect.DeepEqual(first[i].Run, second[i].Run) {
			t.Fatalf("spec %d run changed across disk round-trip", i)
		}
	}
}

// TestExecuteFirstErrorCancels: an invalid config fails fast and cancels
// the very long remaining jobs; the whole call returns promptly.
func TestExecuteFirstErrorCancels(t *testing.T) {
	bad := core.DefaultConfig()
	bad.Name = "bad"
	bad.FTQEntries = -1 // fails Validate immediately

	w := synth.ByName("server_a")
	specs := []Spec{WorkloadSpec(bad, w, 0, 1000)}
	for i := 0; i < 6; i++ {
		// 500M instructions each: minutes of work if not cancelled.
		specs = append(specs, WorkloadSpec(core.DefaultConfig(), w, 0, 500_000_000))
	}
	reg := obs.NewRegistry()
	results, err := Execute(context.Background(), specs, Options{Parallel: 2, Reg: reg})
	if err == nil {
		t.Fatal("invalid config did not fail the grid")
	}
	if results[0].Err == nil {
		t.Fatal("failing job's own result carries no error")
	}
	if started := reg.Counter(MetricJobs).Value(); started > 3 {
		t.Fatalf("%d jobs started after first error, want <= 3", started)
	}
}

// TestExecuteTraceBypassesCache: tracing runs never read or write the
// cache (the manifest would otherwise lose its trace counters).
func TestExecuteTraceBypassesCache(t *testing.T) {
	specs := smallSpecs(t)[:1]
	cache, _ := NewCache(0, "")
	reg := obs.NewRegistry()
	opts := Options{Parallel: 1, Cache: cache, Observe: true, TraceCap: 256, Reg: reg}
	if _, err := Execute(context.Background(), specs, opts); err != nil {
		t.Fatal(err)
	}
	if _, err := Execute(context.Background(), specs, opts); err != nil {
		t.Fatal(err)
	}
	if hits := reg.Counter(MetricCacheHits).Value(); hits != 0 {
		t.Fatalf("traced run hit the cache %d times", hits)
	}
	if cache.Len() != 0 {
		t.Fatalf("traced run populated the cache (%d entries)", cache.Len())
	}
}
