package experiments

import (
	"fmt"

	"fdp/internal/core"
	"fdp/internal/stats"
	"fdp/internal/synth"
)

// ExtSeeds measures the reproduction's robustness to the synthetic
// workload seeds: the headline FDP speedup is recomputed over three
// independently-generated workload suites (same class parameters,
// different random programs). A reproduction whose conclusions flip with
// the seed would be worthless; this experiment quantifies the spread.
func ExtSeeds(opts Options) (*Result, error) {
	offsets := []uint64{0, 0x1000_0000, 0x2000_0000}
	t := stats.NewTable("Extension: seed sensitivity of the headline result",
		"seed set", "FDP speedup", "base L1I MPKI", "FDP branch MPKI")
	var speedups []float64
	for i, off := range offsets {
		o := opts
		o.Workloads = synth.WorkloadsWithSeedOffset(off)
		sets, err := runGrid(o, []core.Config{
			core.BaselineConfig(),
			core.DefaultConfig(),
		})
		if err != nil {
			return nil, err
		}
		base := sets["baseline"]
		fdp := sets["fdp"]
		sp := fdp.GeoMeanSpeedup(base)
		speedups = append(speedups, sp)
		t.AddRow(fmt.Sprintf("set %d (offset %#x)", i, off),
			speedupPct(sp), base.MeanL1IMPKI(), fdp.MeanBranchMPKI())
	}
	minSp, maxSp := speedups[0], speedups[0]
	for _, sp := range speedups[1:] {
		if sp < minSp {
			minSp = sp
		}
		if sp > maxSp {
			maxSp = sp
		}
	}
	return &Result{
		ID: "ext-seeds", Title: "Seed sensitivity",
		Tables: []*stats.Table{t},
		Notes: []string{
			fmt.Sprintf("FDP speedup spread across seed sets: %s .. %s",
				speedupPct(minSp), speedupPct(maxSp)),
			"the qualitative conclusion (large FDP speedup) must hold for every set",
		},
	}, nil
}
