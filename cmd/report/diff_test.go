package main

import (
	"bytes"
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"fdp/internal/obs"
)

// loadDiffFixture reads the baseline-vs-FDP manifests fixture (real
// fdpsim runs of the baseline and default configs over two golden
// workloads at 20K/60K budgets).
func loadDiffFixture(t *testing.T) []*obs.Manifest {
	t.Helper()
	f, err := os.Open(filepath.Join("testdata", "diff_manifests.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	ms, err := readManifests(f)
	if err != nil {
		t.Fatalf("readManifests: %v", err)
	}
	if len(ms) != 4 {
		t.Fatalf("fixture has %d manifests, want 4", len(ms))
	}
	return ms
}

// TestDiffGolden pins the -diff accounting-delta table for the
// baseline-vs-FDP pair: read fixture → diff → table → byte-compare.
func TestDiffGolden(t *testing.T) {
	ms := loadDiffFixture(t)
	rep, err := accountingDiff(ms, "baseline")
	if err != nil {
		t.Fatal(err)
	}
	got := rep.Table().String()
	golden := filepath.Join("testdata", "diff.golden")
	if *update {
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run `go test ./cmd/report -update` to create it)", err)
	}
	if got != string(want) {
		t.Errorf("diff table drifted from golden:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestDiffReportContent checks the semantics the golden bytes cannot
// explain: row identity, delta arithmetic against the raw counters, and
// the share denominators.
func TestDiffReportContent(t *testing.T) {
	ms := loadDiffFixture(t)
	rep, err := accountingDiff(ms, "baseline")
	if err != nil {
		t.Fatal(err)
	}
	if rep.Schema != 1 || rep.Baseline != "baseline" {
		t.Fatalf("report header = %+v", rep)
	}
	if len(rep.Buckets) != obs.NumAcctBuckets {
		t.Fatalf("%d buckets, want %d", len(rep.Buckets), obs.NumAcctBuckets)
	}
	// One non-baseline config ("custom") on two workloads, sorted.
	if len(rep.Rows) != 2 {
		t.Fatalf("%d rows, want 2: %+v", len(rep.Rows), rep.Rows)
	}
	if rep.Rows[0].Workload != "client_a" || rep.Rows[1].Workload != "server_a" {
		t.Fatalf("rows not workload-sorted: %s, %s", rep.Rows[0].Workload, rep.Rows[1].Workload)
	}

	// Index the fixture's raw vectors for arithmetic cross-checks.
	byRun := make(map[string][obs.NumAcctBuckets]uint64)
	cycles := make(map[string]uint64)
	for _, m := range ms {
		v, ok := obs.AcctVector(m.Counters)
		if !ok {
			t.Fatalf("fixture manifest %s has no accounting", m.Workload)
		}
		var cfg struct{ Name string }
		b, _ := json.Marshal(m.Config)
		json.Unmarshal(b, &cfg)
		byRun[cfg.Name+"/"+m.Workload] = v
		cycles[cfg.Name+"/"+m.Workload] = m.Counters["run.cycles"]
	}
	for _, row := range rep.Rows {
		if row.Config != "custom" {
			t.Fatalf("unexpected config %q", row.Config)
		}
		base, run := byRun["baseline/"+row.Workload], byRun["custom/"+row.Workload]
		if row.BaselineCycles != cycles["baseline/"+row.Workload] || row.Cycles != cycles["custom/"+row.Workload] {
			t.Errorf("%s: cycle totals %d/%d disagree with fixture", row.Workload, row.BaselineCycles, row.Cycles)
		}
		if row.DeltaCycles != int64(row.Cycles)-int64(row.BaselineCycles) {
			t.Errorf("%s: DeltaCycles %d inconsistent", row.Workload, row.DeltaCycles)
		}
		var deltaSum int64
		for b := range row.DeltaBucketCycles {
			want := int64(run[b]) - int64(base[b])
			if row.DeltaBucketCycles[b] != want {
				t.Errorf("%s bucket %s: delta %d, want %d", row.Workload, rep.Buckets[b], row.DeltaBucketCycles[b], want)
			}
			wantPct := 100 * float64(want) / float64(row.BaselineCycles)
			if math.Abs(row.DeltaBucketSharePct[b]-wantPct) > 1e-9 {
				t.Errorf("%s bucket %s: share %v, want %v", row.Workload, rep.Buckets[b], row.DeltaBucketSharePct[b], wantPct)
			}
			deltaSum += row.DeltaBucketCycles[b]
		}
		// Conservation: bucket deltas sum to the total cycle delta.
		if deltaSum != row.DeltaCycles {
			t.Errorf("%s: bucket deltas sum to %d, total delta %d", row.Workload, deltaSum, row.DeltaCycles)
		}
	}

	// JSON output round-trips.
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back DiffReport
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("diff JSON unparseable: %v", err)
	}
	if back.Baseline != "baseline" || len(back.Rows) != 2 {
		t.Fatalf("JSON round trip = %+v", back)
	}
}

// TestDiffMissingBaseline: an unknown baseline config fails with the
// known-config list, not a zero-row report.
func TestDiffMissingBaseline(t *testing.T) {
	ms := loadDiffFixture(t)
	_, err := accountingDiff(ms, "nope")
	if err == nil {
		t.Fatal("unknown baseline did not error")
	}
	if !strings.Contains(err.Error(), "baseline") || !strings.Contains(err.Error(), "custom") {
		t.Errorf("error %q does not list the known configs", err)
	}
}
