// Command reprocheck is the closed-loop reproduction gate (`make
// repro-check`): it runs the quick-scale scoring campaign through the
// shared result cache and evaluates every contract of the
// internal/repro registry (defined in internal/experiments, next to the
// figures they score). Any hard expectation miss exits nonzero, so a
// simulator change that drifts a paper claim out of shape fails CI with
// the measured-vs-expected values in the log.
//
// Usage:
//
//	reprocheck                  # quick-scale gate, in-memory cache
//	reprocheck -scale default   # heavier campaign
//	reprocheck -cache DIR       # persist results across invocations
//	reprocheck -json FILE       # also write the machine-readable scorecard
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"

	"fdp/internal/experiments"
	"fdp/internal/runner"
)

func main() {
	var (
		scale    = flag.String("scale", "quick", "campaign scale: quick, default or full")
		cacheDir = flag.String("cache", "", "store and reuse simulation results in this directory")
		jsonOut  = flag.String("json", "", "write the machine-readable scorecard JSON to this file ('-' for stdout)")
	)
	flag.Parse()

	var opts experiments.Options
	switch *scale {
	case "quick":
		opts = experiments.QuickOptions()
	case "default":
		opts = experiments.DefaultOptions()
	case "full":
		opts = experiments.FullOptions()
	default:
		fmt.Fprintf(os.Stderr, "reprocheck: unknown scale %q\n", *scale)
		os.Exit(2)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	opts.Ctx = ctx

	// One cache per campaign: the contracts share the baseline and FDP
	// configs, so even the default in-memory cache keeps the gate at one
	// simulation per distinct (config, workload) pair.
	cache, err := runner.NewCache(runner.DefaultCacheCapacity, *cacheDir)
	if err != nil {
		fmt.Fprintf(os.Stderr, "reprocheck: %v\n", err)
		os.Exit(2)
	}
	opts.Cache = cache

	card, err := experiments.Score(opts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "reprocheck: %v\n", err)
		os.Exit(2)
	}
	fmt.Print(card.String())

	if *jsonOut != "" {
		b, err := card.Encode()
		if err != nil {
			fmt.Fprintf(os.Stderr, "reprocheck: %v\n", err)
			os.Exit(2)
		}
		if *jsonOut == "-" {
			os.Stdout.Write(b)
		} else if err := os.WriteFile(*jsonOut, b, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "reprocheck: %v\n", err)
			os.Exit(2)
		}
	}

	if fails := card.HardFailures(); len(fails) > 0 {
		fmt.Fprintf(os.Stderr, "reprocheck: %d hard expectation(s) failed: %v\n", len(fails), fails)
		os.Exit(1)
	}
}
