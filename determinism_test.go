package fdp

// Whole-stack determinism: every configuration variant must produce
// bit-identical statistics across repeated runs. This is the property that
// makes the experiment tables reproducible, so it is tested across the
// full feature matrix, not just the default config.

import "testing"

func TestEveryVariantIsDeterministic(t *testing.T) {
	w := WorkloadByName("spec_b")
	variants := []struct {
		name string
		mut  func(*Config)
	}{
		{"default", func(c *Config) {}},
		{"baseline", func(c *Config) { *c = BaselineConfig() }},
		{"no-pfc", func(c *Config) { c.PFC = false }},
		{"ghr-fix", func(c *Config) { c.HistPolicy = HistGHRFix; c.BTBAllocPolicy = AllocAll }},
		{"ideal", func(c *Config) { c.HistPolicy = HistIdeal }},
		{"small-btb", func(c *Config) { c.BTBEntries = 1024 }},
		{"perfect-btb", func(c *Config) { c.PerfectBTB = true }},
		{"two-level", func(c *Config) { c.L1BTBEntries = 256; c.L1BTBWays = 4; c.L2BTBPenalty = 2 }},
		{"bb-btb", func(c *Config) { c.BasicBlockBTB = true }},
		{"gshare", func(c *Config) { c.Dir = DirGshare }},
		{"scl", func(c *Config) { c.Dir = DirTAGESCL24 }},
		{"perceptron", func(c *Config) { c.Dir = DirPerceptron }},
		{"nl1", func(c *Config) { c.Prefetcher = "nl1" }},
		{"eip", func(c *Config) { c.Prefetcher = "eip-27kb" }},
		{"djolt+btbpref", func(c *Config) { c.Prefetcher = "djolt"; c.BTBPrefetch = true }},
		{"data-model", func(c *Config) { c.DataModel = true }},
		{"perfect-pf", func(c *Config) { c.PerfectPrefetch = true }},
		{"b18m", func(c *Config) { c.PredictWidth = 18; c.MaxTakenPerCycle = 2 }},
	}
	for _, v := range variants {
		cfg := DefaultConfig()
		v.mut(&cfg)
		cfg.Name = v.name
		run := func() *Run {
			r, err := Simulate(cfg, w, 10_000, 50_000)
			if err != nil {
				t.Fatalf("%s: %v", v.name, err)
			}
			return r
		}
		a, b := run(), run()
		if a.Cycles != b.Cycles || a.Mispredictions != b.Mispredictions ||
			a.L1IMisses != b.L1IMisses || a.PFCResteers != b.PFCResteers ||
			a.StarvationCycles != b.StarvationCycles {
			t.Errorf("%s: nondeterministic (cycles %d/%d mispred %d/%d)",
				v.name, a.Cycles, b.Cycles, a.Mispredictions, b.Mispredictions)
		}
	}
}
