package runner

import (
	"context"
	"testing"
	"time"

	"fdp/internal/core"
	"fdp/internal/obs"
)

// spansByKind indexes a span log by kind, keeping emission order.
func spansByKind(l *obs.SpanLog) map[obs.SpanKind][]obs.Span {
	byKind := make(map[obs.SpanKind][]obs.Span)
	for _, sp := range l.All() {
		byKind[sp.Kind] = append(byKind[sp.Kind], sp)
	}
	return byKind
}

// TestExecuteSpans: a plain grid emits one queued and one simulate span
// per job, with sane timing (non-negative offsets/durations, simulate
// inside the campaign) and the config/workload run label.
func TestExecuteSpans(t *testing.T) {
	specs := smallSpecs(t)
	spans := obs.NewSpanLog()
	cache, _ := NewCache(0, "")
	opts := Options{Parallel: 2, Cache: cache, Spans: spans}
	if _, err := Execute(context.Background(), specs, opts); err != nil {
		t.Fatal(err)
	}

	byKind := spansByKind(spans)
	if got := len(byKind[obs.SpanQueued]); got != len(specs) {
		t.Fatalf("%d queued spans, want %d", got, len(specs))
	}
	if got := len(byKind[obs.SpanSimulate]); got != len(specs) {
		t.Fatalf("%d simulate spans, want %d", got, len(specs))
	}
	if got := len(byKind[obs.SpanCacheWrite]); got != len(specs) {
		t.Fatalf("%d cache_write spans, want %d", got, len(specs))
	}
	for _, sp := range spans.All() {
		if sp.Start < 0 || sp.Dur < 0 {
			t.Fatalf("span with negative timing: %+v", sp)
		}
		if sp.Err != "" {
			t.Fatalf("span with error on a clean run: %+v", sp)
		}
	}
	for _, sim := range byKind[obs.SpanSimulate] {
		if sim.Job < 0 || sim.Job >= len(specs) {
			t.Fatalf("simulate span job index out of range: %+v", sim)
		}
		sp := specs[sim.Job]
		if sim.Run != sp.Config.Name+"/"+sp.Workload {
			t.Fatalf("simulate span run label = %q for job %d", sim.Run, sim.Job)
		}
		if sim.Attempt != 1 || sim.Detail != "cold" {
			t.Fatalf("simulate span attempt/detail = %d/%q, want 1/cold", sim.Attempt, sim.Detail)
		}
	}

	// Warm rerun: every job is a cache hit — no simulate or cache_write
	// spans, one cache_hit event per job.
	warm := obs.NewSpanLog()
	opts.Spans = warm
	if _, err := Execute(context.Background(), specs, opts); err != nil {
		t.Fatal(err)
	}
	wk := spansByKind(warm)
	if got := len(wk[obs.SpanCacheHit]); got != len(specs) {
		t.Fatalf("%d cache_hit events on warm run, want %d", got, len(specs))
	}
	if len(wk[obs.SpanSimulate]) != 0 || len(wk[obs.SpanCacheWrite]) != 0 {
		t.Fatalf("warm run simulated: %+v", warm.All())
	}
}

// TestExecuteSpansFFwd: a plain fast-forward run splits its timeline
// into an ffwd span and a measure span (the measure span keeps the
// simulate kind).
func TestExecuteSpansFFwd(t *testing.T) {
	spans := obs.NewSpanLog()
	specs := []Spec{ffwdSpec(t, core.DefaultConfig(), "server_a", 10_000, 10_000)}
	if _, err := Execute(context.Background(), specs, Options{Parallel: 1, Spans: spans}); err != nil {
		t.Fatal(err)
	}
	byKind := spansByKind(spans)
	if len(byKind[obs.SpanFFwd]) != 1 || len(byKind[obs.SpanSimulate]) != 1 {
		t.Fatalf("ffwd/simulate spans = %d/%d, want 1/1: %+v",
			len(byKind[obs.SpanFFwd]), len(byKind[obs.SpanSimulate]), spans.All())
	}
	ff, sim := byKind[obs.SpanFFwd][0], byKind[obs.SpanSimulate][0]
	if ff.Detail != "ffwd" || sim.Detail != "ffwd" {
		t.Fatalf("ffwd-mode details = %q/%q, want ffwd", ff.Detail, sim.Detail)
	}
	if sim.Start < ff.Start+ff.Dur {
		t.Fatalf("measure span starts at %d, inside the ffwd span [%d,%d]",
			sim.Start, ff.Start, ff.Start+ff.Dur)
	}
}

// TestExecuteSpansCheckpoint: a checkpointed timing sweep shows one
// builder (ckpt_wait "build" + ffwd span) and n-1 restorers (ckpt_wait
// "hit" + restore span), each followed by a measure span.
func TestExecuteSpansCheckpoint(t *testing.T) {
	const n = 3
	specs := timingSweepSpecs(t, n)
	cache, err := NewCache(0, "")
	if err != nil {
		t.Fatal(err)
	}
	spans := obs.NewSpanLog()
	opts := Options{Parallel: n, Cache: cache, Checkpoint: true, Spans: spans}
	if _, err := Execute(context.Background(), specs, opts); err != nil {
		t.Fatal(err)
	}
	byKind := spansByKind(spans)
	if got := len(byKind[obs.SpanCkptWait]); got != n {
		t.Fatalf("%d ckpt_wait spans, want %d", got, n)
	}
	var builds, hits int
	for _, sp := range byKind[obs.SpanCkptWait] {
		switch sp.Detail {
		case "build":
			builds++
		case "hit":
			hits++
		default:
			t.Fatalf("ckpt_wait detail = %q", sp.Detail)
		}
	}
	if builds != 1 || hits != n-1 {
		t.Fatalf("builds/hits = %d/%d, want 1/%d", builds, hits, n-1)
	}
	if got := len(byKind[obs.SpanFFwd]); got != 1 {
		t.Fatalf("%d ffwd spans, want 1 (the builder)", got)
	}
	if byKind[obs.SpanFFwd][0].Detail != "build" {
		t.Fatalf("builder ffwd detail = %q, want build", byKind[obs.SpanFFwd][0].Detail)
	}
	if got := len(byKind[obs.SpanRestore]); got != n-1 {
		t.Fatalf("%d restore spans, want %d", got, n-1)
	}
	for _, sp := range byKind[obs.SpanRestore] {
		if sp.Detail != "restored" {
			t.Fatalf("restore detail = %q, want restored", sp.Detail)
		}
	}
	if got := len(byKind[obs.SpanSimulate]); got != n {
		t.Fatalf("%d measure spans, want %d", got, n)
	}
}

// TestExecuteSpansRetry: an injected transient fault produces a retry
// event carrying the error class, and the second attempt's simulate
// span has attempt 2.
func TestExecuteSpansRetry(t *testing.T) {
	specs := smallSpecs(t)[:1]
	spans := obs.NewSpanLog()
	_, err := Execute(context.Background(), specs, Options{
		Parallel: 1,
		Spans:    spans,
		Retry:    RetryPolicy{Attempts: 3, Base: time.Millisecond, Cap: 2 * time.Millisecond},
		FaultHook: func(ctx context.Context, job, attempt int) error {
			if attempt == 1 {
				panic("injected transient fault")
			}
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	byKind := spansByKind(spans)
	retries := byKind[obs.SpanRetry]
	if len(retries) != 1 {
		t.Fatalf("%d retry events, want 1: %+v", len(retries), spans.All())
	}
	if retries[0].Detail != "transient" || retries[0].Err == "" {
		t.Fatalf("retry event = %+v, want transient class and an error", retries[0])
	}
	sims := byKind[obs.SpanSimulate]
	if len(sims) != 1 || sims[0].Attempt != 2 {
		t.Fatalf("simulate spans = %+v, want one with attempt 2", sims)
	}
}

// TestExecuteSpansQuarantine: with KeepGoing a terminally failing job
// emits a quarantine event instead of failing the grid.
func TestExecuteSpansQuarantine(t *testing.T) {
	specs := smallSpecs(t)[:2]
	spans := obs.NewSpanLog()
	results, err := Execute(context.Background(), specs, Options{
		Parallel:  1,
		Spans:     spans,
		KeepGoing: true,
		Retry:     RetryPolicy{Attempts: 2, Base: time.Millisecond, Cap: 2 * time.Millisecond},
		FaultHook: func(ctx context.Context, job, attempt int) error {
			if job == 0 {
				panic("always failing")
			}
			return nil
		},
	})
	if err == nil {
		t.Fatal("KeepGoing run did not surface the quarantined error")
	}
	if results[0].Err == nil || results[1].Err != nil {
		t.Fatalf("results = %v / %v, want job 0 failed only", results[0].Err, results[1].Err)
	}
	byKind := spansByKind(spans)
	if len(byKind[obs.SpanQuarantine]) != 1 {
		t.Fatalf("%d quarantine events, want 1", len(byKind[obs.SpanQuarantine]))
	}
	if byKind[obs.SpanQuarantine][0].Err == "" {
		t.Fatal("quarantine event carries no error")
	}
}

// TestExecuteIntervalStoreStreaming: runs with IntervalEvery and a store
// feed their interval series into the store's rings, sequence-numbered
// and marked done when the run finishes.
func TestExecuteIntervalStoreStreaming(t *testing.T) {
	specs := smallSpecs(t)[:2]
	store := obs.NewIntervalStore(0)
	opts := Options{Parallel: 2, Observe: true, IntervalEvery: 1000, Intervals: store}
	if _, err := Execute(context.Background(), specs, opts); err != nil {
		t.Fatal(err)
	}
	runs := store.Runs()
	if len(runs) != len(specs) {
		t.Fatalf("%d runs in store, want %d", len(runs), len(specs))
	}
	for _, m := range runs {
		if !m.Done {
			t.Fatalf("run %s not marked done: %+v", m.Run, m)
		}
		if m.Records == 0 || m.Buffered == 0 {
			t.Fatalf("run %s streamed no records: %+v", m.Run, m)
		}
		recs, next, done, ok := store.Read(m.ID, 0)
		if !ok || !done || next != m.Records || len(recs) != m.Buffered {
			t.Fatalf("Read(%s) = %d recs, next=%d done=%v ok=%v", m.ID, len(recs), next, done, ok)
		}
		// The streamed series is the run's own measurement series: the
		// records' windows sum to the run's measured cycles budget shape
		// (every window non-empty, cycles monotonic).
		var prev uint64
		for i, r := range recs {
			if r.Cycle <= prev {
				t.Fatalf("run %s record %d cycle %d not increasing", m.Run, i, r.Cycle)
			}
			prev = r.Cycle
		}
	}
	// The two specs resolve by config/workload label.
	if _, ok := store.Resolve(specs[0].Config.Name + "/" + specs[0].Workload); !ok {
		t.Fatal("label resolution failed for a streamed run")
	}
}
