package runner

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"fdp/internal/obs"
)

func TestSchedulerRunsAllJobs(t *testing.T) {
	reg := obs.NewRegistry()
	s := NewScheduler(4, reg)
	var done [16]int32
	err := s.Run(context.Background(), len(done), func(ctx context.Context, i int) error {
		atomic.AddInt32(&done[i], 1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, d := range done {
		if d != 1 {
			t.Fatalf("job %d ran %d times", i, d)
		}
	}
	if got := reg.Counter(MetricJobs).Value(); got != 16 {
		t.Fatalf("%s = %d, want 16", MetricJobs, got)
	}
	if got := reg.Histogram(MetricQueueDepth).Count(); got != 16 {
		t.Fatalf("%s has %d samples, want 16", MetricQueueDepth, got)
	}
}

// TestSchedulerOrderSerial: with one worker, jobs run strictly in index
// order.
func TestSchedulerOrderSerial(t *testing.T) {
	s := NewScheduler(1, nil)
	var order []int
	s.Run(context.Background(), 8, func(ctx context.Context, i int) error {
		order = append(order, i)
		return nil
	})
	for i, got := range order {
		if got != i {
			t.Fatalf("serial order = %v", order)
		}
	}
}

// TestSchedulerFirstErrorCancels: the first failing job stops the pool
// from issuing the remaining jobs and aborts in-flight ones.
func TestSchedulerFirstErrorCancels(t *testing.T) {
	reg := obs.NewRegistry()
	s := NewScheduler(2, reg)
	boom := errors.New("boom")
	const n = 16
	var started int32
	err := s.Run(context.Background(), n, func(ctx context.Context, i int) error {
		atomic.AddInt32(&started, 1)
		if i == 0 {
			return boom
		}
		// Long job that honours cancellation, as simulations do.
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(30 * time.Second):
			return fmt.Errorf("job %d was not cancelled", i)
		}
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	// Worker count bounds how many jobs can have been claimed before the
	// failure propagated: the failing worker stops claiming, the other
	// worker is aborted in-flight, and nothing else starts.
	if got := atomic.LoadInt32(&started); got > 3 {
		t.Fatalf("%d jobs started after first error, want <= 3", got)
	}
	if got := reg.Counter(MetricCanceled).Value(); got < n-3 {
		t.Fatalf("%s = %d, want >= %d", MetricCanceled, got, n-3)
	}
}

// TestSchedulerPanicIsolation: a panicking job fails only its own result;
// the process and the other jobs survive.
func TestSchedulerPanicIsolation(t *testing.T) {
	reg := obs.NewRegistry()
	s := NewScheduler(1, reg)
	var mu sync.Mutex
	completed := map[int]bool{}
	err := s.Run(context.Background(), 4, func(ctx context.Context, i int) error {
		if i == 1 {
			panic("injected")
		}
		mu.Lock()
		completed[i] = true
		mu.Unlock()
		return nil
	})
	if err == nil || !strings.Contains(err.Error(), "panicked") {
		t.Fatalf("err = %v, want panic error", err)
	}
	if !strings.Contains(err.Error(), "injected") {
		t.Fatalf("panic value lost: %v", err)
	}
	// Serial pool: job 0 finished before the panic and its result stands.
	if !completed[0] {
		t.Fatal("pre-panic result lost")
	}
	if got := reg.Counter(MetricPanics).Value(); got != 1 {
		t.Fatalf("%s = %d, want 1", MetricPanics, got)
	}
}

// TestSchedulerCallerCancel: cancelling the caller's context ends the run
// with ctx.Err() when no job is at fault.
func TestSchedulerCallerCancel(t *testing.T) {
	s := NewScheduler(2, nil)
	ctx, cancel := context.WithCancel(context.Background())
	var once sync.Once
	err := s.Run(ctx, 64, func(ctx context.Context, i int) error {
		once.Do(cancel)
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(30 * time.Second):
			return fmt.Errorf("not cancelled")
		}
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestSchedulerEmpty(t *testing.T) {
	s := NewScheduler(0, nil)
	if err := s.Run(context.Background(), 0, nil); err != nil {
		t.Fatal(err)
	}
}
