package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"fdp/internal/monitor"
	"fdp/internal/obs"
	"fdp/internal/stats"
)

// readManifests parses a manifests JSONL stream (as written by fdpsim,
// sweep or experiments -metrics), skipping blank lines.
func readManifests(r io.Reader) ([]*obs.Manifest, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
	var out []*obs.Manifest
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var m obs.Manifest
		if err := json.Unmarshal(line, &m); err != nil {
			return nil, fmt.Errorf("manifest line %d: %w", len(out)+1, err)
		}
		out = append(out, &m)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// accountingTable renders the top-down frontend cycle-accounting section:
// one row per (config, workload) run with an acct.* counter family,
// showing IPC and each bucket's share of measured cycles. Duplicate
// (config, workload) pairs — the shared baseline appears in many
// experiments — keep their first occurrence only.
func accountingTable(ms []*obs.Manifest) *stats.Table {
	header := []string{"config", "workload", "IPC"}
	for _, name := range obs.AcctBucketNames {
		header = append(header, name+"%")
	}
	t := stats.NewTable("Frontend cycle accounting (share of measured cycles)", header...)

	type row struct {
		config, workload string
		ipc              float64
		shares           [obs.NumAcctBuckets]float64
	}
	seen := make(map[string]bool)
	var rows []row
	for _, m := range ms {
		v, ok := obs.AcctVector(m.Counters)
		if !ok {
			continue // pre-accounting manifest or the __runner__ summary
		}
		cfg := monitor.ConfigName(m.Config)
		key := cfg + "\x00" + m.Workload
		if seen[key] {
			continue
		}
		seen[key] = true
		var total uint64
		for _, n := range v {
			total += n
		}
		r := row{config: cfg, workload: m.Workload, ipc: m.Derived["ipc"]}
		if total > 0 {
			for b, n := range v {
				r.shares[b] = 100 * float64(n) / float64(total)
			}
		}
		rows = append(rows, r)
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].config != rows[j].config {
			return rows[i].config < rows[j].config
		}
		return rows[i].workload < rows[j].workload
	})
	for _, r := range rows {
		cells := []interface{}{r.config, r.workload, r.ipc}
		for _, s := range r.shares {
			cells = append(cells, fmt.Sprintf("%.1f", s))
		}
		t.AddRow(cells...)
	}
	return t
}
