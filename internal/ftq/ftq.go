// Package ftq implements the Fetch Target Queue, the only structure FDP
// adds to a decoupled frontend (§IV-A). Each entry covers a 32-byte-aligned
// instruction block (up to 8 fixed-length instructions), carries the
// per-instruction direction hints that enable post-fetch correction, and
// walks the paper's 4-state I-TLB/I-cache lifecycle. The package also
// computes the Table III hardware cost.
package ftq

import (
	"fmt"

	"fdp/internal/bpred"
	"fdp/internal/obs"
	"fdp/internal/program"
	"fdp/internal/ras"
)

// BlockBytes is the instruction-block granularity of an FTQ entry.
const BlockBytes = 32

// BlockInsts is the maximum number of instructions per entry.
const BlockInsts = BlockBytes / program.InstBytes

// State is the entry lifecycle from Table III / §IV-C.
type State uint8

const (
	// StateInvalid marks an unused entry.
	StateInvalid State = iota
	// StateReady means branch prediction completed; the entry awaits
	// address translation and the I-cache tag probe.
	StateReady
	// StateWaitFill means the tag probe missed and an I-cache fill is in
	// flight.
	StateWaitFill
	// StateFetchable means the way is known and instructions can be sent
	// to the decode queue.
	StateFetchable
)

// BlockBase returns the 32-byte-aligned base of the block containing pc.
func BlockBase(pc uint64) uint64 { return pc &^ (BlockBytes - 1) }

// Offset returns pc's instruction offset within its block (0..7).
func Offset(pc uint64) int { return int(pc>>2) & (BlockInsts - 1) }

// Entry is one FTQ entry. The hardware fields are those of Table III; the
// remaining fields are simulator bookkeeping (timing, checkpoints for
// recovery, and statistics attribution).
type Entry struct {
	// StartPC is the first instruction covered (48-bit in hardware).
	StartPC uint64
	// EndOffset is the block-relative offset of the last covered
	// instruction: the predicted-taken branch, or the block's final slot.
	EndOffset int
	// PredictedTaken indicates the block is terminated by a
	// predicted-taken branch at EndOffset.
	PredictedTaken bool
	// Hints holds one direction-hint bit per block offset (EV8-style
	// prediction of every instruction; drives PFC).
	Hints uint8
	// Way is the I-cache way holding the block (valid in StateFetchable).
	Way int8
	// State is the entry lifecycle state.
	State State

	// NextPC is the predicted successor address of the block (taken
	// target, or sequential block start). Simulator-only: hardware
	// re-derives it from the following entry.
	NextPC uint64
	// Detected marks block offsets where the prediction pipe detected a
	// branch via BTB hit (used to replay direction history on recovery).
	Detected uint8
	// DetectedTaken marks detected offsets that were predicted taken.
	DetectedTaken uint8

	// FillInitiated/FillDone/FillAtHead/Missed track the I-cache fill for
	// the exposed-miss classification of §VI-G.
	FillInitiated bool
	FillAtHead    bool
	FillDone      uint64
	Missed        bool

	// FetchedUpTo is the next block offset to deliver to decode.
	FetchedUpTo int
	// PFCChecked notes that pre-decode already scanned this entry.
	PFCChecked bool
	// PFCApplied marks an entry whose terminator was re-steered by PFC.
	PFCApplied bool
	// RetryAt delays the next tag-probe attempt (I-TLB miss penalty).
	RetryAt uint64
	// Translated notes that the entry's I-TLB walk completed (the walk
	// response belongs to this entry even if the TLB entry is evicted).
	Translated bool
	// StarvAtReq snapshots the global starvation count when the fill was
	// requested (exposed-miss classification, §VI-G).
	StarvAtReq uint64
	// WrongPath marks entries created after a known divergence
	// (statistics only; the core discovers divergence architecturally).
	WrongPath bool

	// Hist and RAS are the speculative-state checkpoints taken when the
	// entry was created, restored on PFC re-steers and history fixups.
	Hist bpred.Snapshot
	RAS  ras.Snapshot

	// Seq is a monotonically increasing identifier.
	Seq uint64
}

// StartOffset returns the block offset of StartPC.
func (e *Entry) StartOffset() int { return Offset(e.StartPC) }

// BlockBase returns the 32-byte-aligned block address.
func (e *Entry) BlockBase() uint64 { return BlockBase(e.StartPC) }

// NumInsts returns how many instructions the entry covers.
func (e *Entry) NumInsts() int { return e.EndOffset - e.StartOffset() + 1 }

// PCAt returns the instruction address at block offset o.
func (e *Entry) PCAt(o int) uint64 {
	return e.BlockBase() + uint64(o)*program.InstBytes
}

// HintAt returns the direction hint for block offset o.
func (e *Entry) HintAt(o int) bool { return e.Hints>>uint(o)&1 == 1 }

// DetectedAt reports whether the prediction pipe saw a BTB hit at offset o.
func (e *Entry) DetectedAt(o int) bool { return e.Detected>>uint(o)&1 == 1 }

// FTQ is a fixed-capacity queue of entries, stored in a ring so that
// checkpoints (which embed slices) are allocated once.
type FTQ struct {
	entries []Entry
	head    int
	size    int
	nextSeq uint64
	tr      *obs.Tracer // nil unless event tracing is attached
}

// SetTrace attaches (or detaches, with nil) an event tracer; Push and
// PopHead then emit enqueue/dequeue events with occupancy.
func (q *FTQ) SetTrace(tr *obs.Tracer) { q.tr = tr }

// New creates an FTQ with the given entry capacity.
func New(capacity int) *FTQ {
	if capacity <= 0 {
		panic("ftq: non-positive capacity")
	}
	return &FTQ{entries: make([]Entry, capacity)}
}

// Cap returns the capacity.
func (q *FTQ) Cap() int { return len(q.entries) }

// Len returns the current occupancy.
func (q *FTQ) Len() int { return q.size }

// Full reports whether a Push would fail.
func (q *FTQ) Full() bool { return q.size == len(q.entries) }

// Empty reports whether the queue has no entries.
func (q *FTQ) Empty() bool { return q.size == 0 }

// Push claims the next entry, resetting its hardware fields but keeping
// its checkpoint buffers for reuse. It panics when full (callers check
// Full; pushing into a full FTQ is a frontend bug).
func (q *FTQ) Push() *Entry {
	if q.Full() {
		panic("ftq: push into full queue")
	}
	idx := q.head + q.size
	if idx >= len(q.entries) {
		idx -= len(q.entries)
	}
	q.size++
	e := &q.entries[idx]
	// Reset field by field rather than assigning a fresh Entry literal:
	// the struct write would copy the Hist/RAS checkpoint buffers out and
	// back (a ~200-byte duffcopy on every predicted block) just to keep
	// them. Every field except the two checkpoints must be zeroed here.
	e.StartPC, e.NextPC = 0, 0
	e.EndOffset, e.FetchedUpTo = 0, 0
	e.PredictedTaken = false
	e.Hints, e.Detected, e.DetectedTaken = 0, 0, 0
	e.Way = 0
	e.State = StateInvalid
	e.FillInitiated, e.FillAtHead, e.Missed = false, false, false
	e.FillDone, e.RetryAt, e.StarvAtReq = 0, 0, 0
	e.PFCChecked, e.PFCApplied, e.Translated, e.WrongPath = false, false, false, false
	e.Seq = q.nextSeq
	q.nextSeq++
	if q.tr != nil {
		q.tr.Emit(obs.EvFTQEnqueue, e.Seq, uint64(q.size))
	}
	return e
}

// At returns the i-th oldest entry (0 = head). The panic message is a
// constant so the function stays within the inlining budget of the hot
// per-cycle scans.
func (q *FTQ) At(i int) *Entry {
	if uint(i) >= uint(q.size) {
		panic("ftq: At index out of range")
	}
	j := q.head + i
	if j >= len(q.entries) {
		j -= len(q.entries)
	}
	return &q.entries[j]
}

// Views returns the occupied entries, oldest first, as up to two
// contiguous slices of the backing ring (the second is non-empty only when
// the occupancy wraps). Per-cycle scans iterate these directly instead of
// paying an index computation per At call. Entries may be mutated through
// the returned slices; the views are invalidated by any Push/Pop/flush.
func (q *FTQ) Views() (a, b []Entry) {
	n := q.head + q.size
	if n <= len(q.entries) {
		return q.entries[q.head:n], nil
	}
	return q.entries[q.head:], q.entries[:n-len(q.entries)]
}

// Head returns the oldest entry, or nil when empty.
func (q *FTQ) Head() *Entry {
	if q.size == 0 {
		return nil
	}
	return &q.entries[q.head]
}

// PopHead releases the oldest entry.
func (q *FTQ) PopHead() {
	if q.size == 0 {
		panic("ftq: pop from empty queue")
	}
	q.entries[q.head].State = StateInvalid
	if q.tr != nil {
		q.tr.Emit(obs.EvFTQDequeue, q.entries[q.head].Seq, uint64(q.size-1))
	}
	q.head++
	if q.head == len(q.entries) {
		q.head = 0
	}
	q.size--
}

// TruncateAfter drops every entry younger than index i (keeping 0..i).
func (q *FTQ) TruncateAfter(i int) {
	if i < 0 || i >= q.size {
		panic(fmt.Sprintf("ftq: TruncateAfter(%d) with size %d", i, q.size))
	}
	for j := i + 1; j < q.size; j++ {
		k := q.head + j
		if k >= len(q.entries) {
			k -= len(q.entries)
		}
		q.entries[k].State = StateInvalid
	}
	q.size = i + 1
}

// Flush drops all entries.
func (q *FTQ) Flush() {
	for j := 0; j < q.size; j++ {
		k := q.head + j
		if k >= len(q.entries) {
			k -= len(q.entries)
		}
		q.entries[k].State = StateInvalid
	}
	q.size = 0
}

// HardwareCost describes the per-entry and total storage of the FTQ per
// Table III.
type HardwareCost struct {
	StartAddrBits int
	PredTakenBits int
	EndOffsetBits int
	WayBits       int
	StateBits     int
	HintBits      int
	Entries       int
	PerEntryBits  int
	TotalBits     int
	TotalBytes    int
	PFCExtraBits  int // hint bits are the only PFC addition (§IV-A)
	PFCExtraBytes int
}

// Cost returns the Table III hardware cost for an FTQ with n entries.
// For n = 24 the total is the paper's 195 bytes and the PFC-specific
// overhead is 24 bytes.
func Cost(n int) HardwareCost {
	c := HardwareCost{
		StartAddrBits: 48,
		PredTakenBits: 1,
		EndOffsetBits: 3,
		WayBits:       3,
		StateBits:     2,
		HintBits:      8,
		Entries:       n,
	}
	c.PerEntryBits = c.StartAddrBits + c.PredTakenBits + c.EndOffsetBits +
		c.WayBits + c.StateBits + c.HintBits
	c.TotalBits = c.PerEntryBits * n
	c.TotalBytes = (c.TotalBits + 7) / 8
	c.PFCExtraBits = c.HintBits * n
	c.PFCExtraBytes = (c.PFCExtraBits + 7) / 8
	return c
}
