package runner

import (
	"context"
	"io"
	"sync"

	"fdp/internal/core"
	"fdp/internal/obs"
	"fdp/internal/stats"
)

// Options control one Execute call.
type Options struct {
	// Parallel bounds concurrent simulations (non-positive = GOMAXPROCS).
	Parallel int
	// Cache, when non-nil, satisfies repeated specs from stored results
	// and records fresh ones. It is bypassed whenever TraceCap > 0:
	// enabling the event-trace ring changes the observable manifest
	// (trace.* counters) and trace output cannot be replayed from a
	// cached result.
	Cache *Cache
	// Observe attaches a fresh probe set to every simulated run and
	// returns a per-run manifest on its Result.
	Observe bool
	// TraceCap, when > 0 together with Observe, gives each run a
	// ring-buffered pipeline event tracer holding the last TraceCap
	// events.
	TraceCap int
	// TraceSink, when non-nil, receives each traced run's events as JSONL
	// (one {"run": "config/workload"} header per run, in completion
	// order; writes are serialized).
	TraceSink io.Writer
	// Reg, when non-nil, receives the runner metrics (runner_jobs,
	// runner_cache_hits, runner_queue_depth, ...). Unlike a per-run
	// registry it is shared across the pool; the scheduler serializes its
	// updates.
	Reg *obs.Registry
}

// Result is the outcome of one spec.
type Result struct {
	// Run is the measurement record (nil when the job failed or was
	// cancelled before completing).
	Run *stats.Run
	// Manifest is the per-run observability document (Observe only).
	Manifest *obs.Manifest
	// CacheHit reports the result was replayed from the cache.
	CacheHit bool
	// Err is this job's own failure, if any. Execute's returned error is
	// the first failure across all jobs.
	Err error
}

// Execute runs every spec and returns one Result per spec, in spec order
// regardless of scheduling. The first job error cancels the remaining and
// in-flight jobs (simulations poll their context) and is returned;
// already-finished results are still present in the slice.
func Execute(ctx context.Context, specs []Spec, opts Options) ([]Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	sched := NewScheduler(opts.Parallel, opts.Reg)
	results := make([]Result, len(specs))
	useCache := opts.Cache != nil && opts.TraceCap <= 0
	var traceMu sync.Mutex

	err := sched.Run(ctx, len(specs), func(ctx context.Context, i int) error {
		sp := &specs[i]
		if useCache {
			if run, m, ok := opts.Cache.Get(sp.Key(), opts.Observe); ok {
				sched.metrics.count(sched.metrics.cacheHits)
				results[i] = Result{Run: run, Manifest: m, CacheHit: true}
				return nil
			}
			sched.metrics.count(sched.metrics.cacheMisses)
		}

		var p *obs.Probes
		if opts.Observe {
			p = obs.NewProbes()
			if opts.TraceCap > 0 {
				p.EnableTrace(opts.TraceCap)
			}
		}
		run, err := core.SimulateContext(ctx, sp.Config, sp.NewOracle(), sp.Workload, sp.Warmup, sp.Measure, p)
		if run != nil {
			run.Class = sp.Class
		}
		if err != nil {
			results[i] = Result{Err: err}
			return err
		}
		var m *obs.Manifest
		if p != nil {
			m = core.Manifest(sp.Config, run, p, sp.Seed, sp.Warmup, sp.Measure)
			if opts.TraceSink != nil && p.Tracer != nil {
				traceMu.Lock()
				werr := obs.WriteRunTrace(opts.TraceSink, sp.Config.Name+"/"+sp.Workload, p.Tracer)
				traceMu.Unlock()
				if werr != nil {
					results[i] = Result{Err: werr}
					return werr
				}
			}
		}
		results[i] = Result{Run: run, Manifest: m}
		if useCache {
			opts.Cache.Put(sp.Key(), run, m)
		}
		return nil
	})
	return results, err
}
