// Package bpred implements the branch-direction prediction stack: the
// global-history machinery shared by all history-based predictors (raw
// history bits plus incrementally-folded index registers), the TAGE and
// Gshare direction predictors, and the history-management policies the
// paper compares (taken-only target history vs direction history, §III-A,
// Table V).
package bpred

// HistoryBits is the raw global history register capacity in bits. The
// paper uses up to 280-bit direction history and 260-bit target history.
const HistoryBits = 320

const histWords = HistoryBits / 64

// FoldSpec describes one folded view of the global history: the low Length
// bits folded (by XOR of Width-bit chunks, with rotation) into Width bits.
// Predictor tables register the FoldSpecs they need at construction time.
type FoldSpec struct {
	Length int // history bits consumed (0 < Length < HistoryBits)
	Width  int // folded register width in bits (1..31)
}

// History is the speculative (or architectural) global history: raw bits
// plus one incrementally-maintained folded register per registered
// FoldSpec. All predictors sharing a frontend share one History so that a
// single insert updates every folded view at once.
//
// The two insertion flavours implement the paper's Eq. 1 (direction
// history) and Eq. 2/3 (taken-only target history; the target hash is
// folded to two bits per event so the register remains a pure shift
// register, preserving O(1) folded updates).
type History struct {
	bits   [histWords]uint64
	specs  []FoldSpec
	folded []uint32
	// Precomputed per-spec constants for InsertBit.
	outWord  []int    // word index of the outgoing bit (raw position Length)
	outShift []uint   // bit offset of the outgoing bit within its word
	remShift []uint   // Length % Width: where the outgoing bit sits in the fold
	mask     []uint32 // (1 << Width) - 1
	width    []uint   // Width
}

// NewHistory creates a History maintaining the given folded views.
func NewHistory(specs []FoldSpec) *History {
	for _, s := range specs {
		if s.Length <= 0 || s.Length >= HistoryBits {
			panic("bpred: FoldSpec.Length out of range")
		}
		if s.Width <= 0 || s.Width > 31 {
			panic("bpred: FoldSpec.Width out of range")
		}
	}
	h := &History{specs: specs, folded: make([]uint32, len(specs))}
	h.outWord = make([]int, len(specs))
	h.outShift = make([]uint, len(specs))
	h.remShift = make([]uint, len(specs))
	h.mask = make([]uint32, len(specs))
	h.width = make([]uint, len(specs))
	for i, s := range specs {
		h.outWord[i] = s.Length >> 6
		h.outShift[i] = uint(s.Length) & 63
		h.remShift[i] = uint(s.Length) % uint(s.Width)
		h.mask[i] = 1<<uint(s.Width) - 1
		h.width[i] = uint(s.Width)
	}
	return h
}

// NumFolds returns the number of folded registers.
func (h *History) NumFolds() int { return len(h.folded) }

// Folded returns the current value of folded register i.
func (h *History) Folded(i int) uint32 { return h.folded[i] }

// Bit returns raw history bit p (0 = newest).
func (h *History) Bit(p int) uint32 {
	return uint32(h.bits[p>>6]>>(uint(p)&63)) & 1
}

// InsertBit shifts one bit into the history and updates all folded views.
func (h *History) InsertBit(b uint32) {
	for i := histWords - 1; i > 0; i-- {
		h.bits[i] = h.bits[i]<<1 | h.bits[i-1]>>63
	}
	h.bits[0] = h.bits[0]<<1 | uint64(b&1)
	b &= 1
	for i := range h.folded {
		comp := h.folded[i]
		comp = comp<<1 | b
		comp ^= comp >> h.width[i] // wrap the overflow bit to position 0
		comp &= h.mask[i]
		// Remove the bit that just left the Length-bit window; after the
		// shift it sits at raw position Length.
		out := uint32(h.bits[h.outWord[i]]>>h.outShift[i]) & 1
		comp ^= out << h.remShift[i]
		h.folded[i] = comp
	}
}

// InsertDir records a conditional-branch direction (Eq. 1).
func (h *History) InsertDir(taken bool) {
	b := uint32(0)
	if taken {
		b = 1
	}
	h.InsertBit(b)
}

// TargetHash computes the paper's Eq. 2 hash of a taken branch, folded to
// two bits.
func TargetHash(pc, target uint64) uint32 {
	x := (pc >> 2) ^ (target >> 3)
	x ^= x >> 32
	x ^= x >> 16
	x ^= x >> 8
	x ^= x >> 4
	x ^= x >> 2
	return uint32(x) & 3
}

// InsertTaken records a taken branch in target-history mode (Eq. 3): two
// history bits derived from the pc/target hash.
func (h *History) InsertTaken(pc, target uint64) {
	hash := TargetHash(pc, target)
	h.InsertBit(hash >> 1)
	h.InsertBit(hash & 1)
}

// Snapshot is a saved History state. The folded slice is owned by the
// snapshot and reused across saves, so snapshots are cheap in steady state.
type Snapshot struct {
	bits   [histWords]uint64
	folded []uint32
}

// Save copies the current state into s (allocating s.folded on first use).
func (h *History) Save(s *Snapshot) {
	s.bits = h.bits
	if cap(s.folded) < len(h.folded) {
		s.folded = make([]uint32, len(h.folded))
	}
	s.folded = s.folded[:len(h.folded)]
	copy(s.folded, h.folded)
}

// Restore sets the history back to a previously saved state. The snapshot
// must come from a History with the same FoldSpecs.
func (h *History) Restore(s *Snapshot) {
	h.bits = s.bits
	copy(h.folded, s.folded)
}

// CopyFrom makes h identical to src (same FoldSpecs required).
func (h *History) CopyFrom(src *History) {
	h.bits = src.bits
	copy(h.folded, src.folded)
}

// Reset clears all history.
func (h *History) Reset() {
	h.bits = [histWords]uint64{}
	for i := range h.folded {
		h.folded[i] = 0
	}
}

// FoldBrute computes the folded view from the raw bits directly (bit p of
// the low Length bits contributes to folded bit p mod Width). It is the
// specification the incremental registers are tested against and is also
// used when a predictor needs an ad-hoc fold it did not register.
func (h *History) FoldBrute(s FoldSpec) uint32 {
	var comp uint32
	for p := 0; p < s.Length; p++ {
		comp ^= h.Bit(p) << (uint(p) % uint(s.Width))
	}
	return comp
}
