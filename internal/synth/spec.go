// spec.go compiles declarative workload specs (internal/wspec) into
// executable Workloads. The three preset families are themselves
// expressed as built-in specs (see presets.go), so named workloads and
// @file.yaml scenarios flow through the same compiler.
package synth

import (
	"fmt"

	"fdp/internal/program"
	"fdp/internal/wspec"
)

// churnStep spaces reseeded phase generations far apart in seed space so
// churned seeds cannot collide with neighbouring seed_offsets.
const churnStep = 0x9e37_79b9_7f4a_7c15

// presetParams maps a spec preset name to its parameter family.
// wspec.Presets lists the valid names; TestPresetsCompile keeps the two
// in lock-step.
func presetParams(preset string, variant int) (Params, error) {
	switch preset {
	case "server":
		return ServerParams(variant), nil
	case "client":
		return ClientParams(variant), nil
	case "spec":
		return SpecParams(variant), nil
	}
	return Params{}, fmt.Errorf("synth: unknown preset %q (have server, client, spec)", preset)
}

// applyOverrides folds the spec's per-component parameter overrides into
// the preset parameters.
func applyOverrides(p *Params, o *wspec.Overrides) {
	if o.Funcs != nil {
		p.Funcs = *o.Funcs
	}
	if o.Levels != nil {
		p.Levels = *o.Levels
	}
	if o.BlocksPerFuncMean != nil {
		p.BlocksPerFuncMean = *o.BlocksPerFuncMean
	}
	if o.BlockLenMean != nil {
		p.BlockLenMean = *o.BlockLenMean
	}
	if o.TripMean != nil {
		p.TripMean = *o.TripMean
	}
	if o.IndTargetsMax != nil {
		p.IndTargetsMax = *o.IndTargetsMax
	}
	if o.JumpFrac != nil {
		p.JumpFrac = *o.JumpFrac
	}
	if o.CallFrac != nil {
		p.CallFrac = *o.CallFrac
	}
	if o.IndJumpFrac != nil {
		p.IndJumpFrac = *o.IndJumpFrac
	}
	if o.IndCallFrac != nil {
		p.IndCallFrac = *o.IndCallFrac
	}
	if o.LoopFrac != nil {
		p.LoopFrac = *o.LoopFrac
	}
	if o.PatternFrac != nil {
		p.PatternFrac = *o.PatternFrac
	}
	if o.StrongBiasFrac != nil {
		p.StrongBiasFrac = *o.StrongBiasFrac
	}
	if o.MarkovStay != nil {
		p.MarkovStay = *o.MarkovStay
	}
	if o.HotFraction != nil {
		p.HotFraction = *o.HotFraction
	}
}

// compComp is one fully-resolved component of one phase: concrete
// generator parameters, a derived seed, a mix weight and a short
// family label (e.g. "server_a") for inspection tools.
type compComp struct {
	p      Params
	seed   uint64
	weight float64
	label  string
}

// resolvePhases expands the spec into per-phase resolved component
// lists. Phase 0 is the spec's mix; a reseed phase inherits the
// previous phase's components with the churn offset folded into every
// seed (fresh program images, same shape — a code deploy); a mix phase
// replaces the blend.
func resolvePhases(sp *wspec.Spec) ([][]compComp, error) {
	resolveMix := func(mix []wspec.Component, churn uint64, phase int) ([]compComp, error) {
		out := make([]compComp, len(mix))
		for i, c := range mix {
			p, err := presetParams(c.Preset, c.Variant)
			if err != nil {
				return nil, err
			}
			applyOverrides(&p, &c.Params)
			p.Name = fmt.Sprintf("%s/p%d.%d:%s_%c", sp.Name, phase, i, c.Preset, 'a'+c.Variant)
			if err := p.Validate(); err != nil {
				return nil, fmt.Errorf("wspec %s: phase %d, component %d (%s variant %d): %w",
					sp.Name, phase, i, c.Preset, c.Variant, err)
			}
			out[i] = compComp{
				p: p, seed: sp.Seed + c.SeedOffset + churn, weight: c.Weight,
				label: fmt.Sprintf("%s_%c", c.Preset, 'a'+c.Variant),
			}
		}
		return out, nil
	}

	churn := uint64(0)
	first, err := resolveMix(sp.Mix, 0, 0)
	if err != nil {
		return nil, err
	}
	phases := [][]compComp{first}
	curMix := sp.Mix
	for pi, ph := range sp.Phases {
		if ph.Reseed > 0 {
			churn += ph.Reseed * churnStep
		} else {
			curMix = ph.Mix
		}
		comps, err := resolveMix(curMix, churn, pi+1)
		if err != nil {
			return nil, err
		}
		phases = append(phases, comps)
	}
	return phases, nil
}

// FromSpec compiles a validated workload spec into a Workload. A spec
// with one component and no phases compiles to a plain workload
// (byte-identical to Generate with the same parameters and seed); any
// other shape compiles every component of every phase back to back into
// one combined image executed by the mixed, phased Stream. The
// workload carries the spec's canonical content hash, which the runner
// folds into cache and checkpoint keys.
func FromSpec(sp *wspec.Spec) (*Workload, error) {
	if err := sp.Validate(); err != nil {
		return nil, err
	}
	phases, err := resolvePhases(sp)
	if err != nil {
		return nil, err
	}

	if len(phases) == 1 && len(phases[0]) == 1 {
		c := phases[0][0]
		c.p.Name = sp.Name
		w, err := Generate(c.p, sp.Class, c.seed)
		if err != nil {
			return nil, err
		}
		w.SpecHash = sp.Hash()
		w.SpecDoc = string(sp.Encode())
		w.comps[0].Label = c.label
		return w, nil
	}

	img := program.NewImage(imageBase)
	var info []branchInfo
	var runPhases []runPhase
	var ranges []seedRange
	var compStats []ComponentStat
	at := uint64(0)
	for pi, comps := range phases {
		if pi > 0 {
			at = sp.Phases[pi-1].At
		}
		rp := runPhase{at: at, comps: make([]runComp, len(comps))}
		for ci, c := range comps {
			lo := len(info)
			entry, err := appendComponent(c.p, c.seed, img, &info)
			if err != nil {
				return nil, err
			}
			ranges = append(ranges, seedRange{lo: lo, hi: len(info), seed: c.seed})
			rp.comps[ci] = runComp{entry: entry, weight: c.weight}
			compStats = append(compStats, ComponentStat{
				Phase: pi, PhaseStart: at, Index: ci, Label: c.label,
				Weight: c.weight, Seed: c.seed, Entry: entry,
				Insts: len(info) - lo,
				Bytes: uint64(len(info)-lo) * program.InstBytes,
				StaticBranches: countBranches(img, lo, len(info)),
				HotFraction:    c.p.HotFraction,
			})
		}
		runPhases = append(runPhases, rp)
	}
	if err := img.Freeze(); err != nil {
		return nil, fmt.Errorf("synth: %s: %w", sp.Name, err)
	}
	return &Workload{
		Name: sp.Name, Class: sp.Class, Seed: sp.Seed, SpecHash: sp.Hash(),
		SpecDoc: string(sp.Encode()),
		img: img, info: info, entry: runPhases[0].comps[0].entry, base: imageBase,
		phases: runPhases, switchEvery: sp.SwitchEvery, seedRanges: ranges,
		comps: compStats,
	}, nil
}

// LoadSpecFile reads, validates and compiles the workload spec at path.
func LoadSpecFile(path string) (*Workload, error) {
	sp, err := wspec.Load(path)
	if err != nil {
		return nil, err
	}
	return FromSpec(sp)
}
