// Package btb implements the Branch Target Buffer: a 16-byte-indexed
// set-associative structure holding branch type and target, the allocation
// policies the paper compares (taken-only vs all-branch, Table V), and the
// perfect-BTB oracle used in the limit studies.
package btb

import "fdp/internal/program"

// TargetBuffer is the prediction pipeline's view of a BTB. Lookup is
// consulted for every instruction address the prediction pipe scans;
// Insert/UpdateTarget train it at branch resolution (and, for BTB
// prefetching, at pre-decode).
type TargetBuffer interface {
	// Lookup returns the stored branch type and target for pc. ok is
	// false when pc misses (the branch is undetected).
	Lookup(pc uint64) (t program.InstType, target uint64, ok bool)
	// Insert installs or refreshes the entry for pc.
	Insert(pc uint64, t program.InstType, target uint64)
	// Lookups and Hits return access statistics.
	Lookups() uint64
	Hits() uint64
	// ResetStats clears statistics, keeping contents.
	ResetStats()
	// Name identifies the implementation for reports.
	Name() string
}

// blockShift implements the paper's 16B-indexed BTB: all branches in the
// same 16-byte block map to the same set.
const blockShift = 4

type entry struct {
	valid  bool
	typ    program.InstType
	tag    uint64 // pc >> 2 (distinguishes branches within a block)
	target uint64
	lru    uint64
}

// BTB is a set-associative branch target buffer with true-LRU replacement.
type BTB struct {
	sets     int
	ways     int
	setMask  uint64
	entries  []entry
	lruClock uint64

	lookups uint64
	hits    uint64
	// Inserts and Replacements are exported counters for studies of BTB
	// pollution (Fig. 10).
	Inserts      uint64
	Replacements uint64
}

// New builds a BTB with the given total entry count and associativity.
// entries must be a power-of-two multiple of ways.
func New(entries, ways int) *BTB {
	if entries <= 0 || ways <= 0 || entries%ways != 0 {
		panic("btb: bad geometry")
	}
	sets := entries / ways
	if sets&(sets-1) != 0 {
		panic("btb: set count not a power of two")
	}
	return &BTB{
		sets:    sets,
		ways:    ways,
		setMask: uint64(sets - 1),
		entries: make([]entry, entries),
	}
}

// Entries returns the total capacity.
func (b *BTB) Entries() int { return b.sets * b.ways }

// Name implements TargetBuffer.
func (b *BTB) Name() string { return "btb" }

func (b *BTB) set(pc uint64) []entry {
	s := int((pc >> blockShift) & b.setMask)
	return b.entries[s*b.ways : (s+1)*b.ways]
}

// Lookup implements TargetBuffer.
func (b *BTB) Lookup(pc uint64) (program.InstType, uint64, bool) {
	b.lookups++
	tag := pc >> 2
	set := b.set(pc)
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			b.hits++
			b.lruClock++
			set[i].lru = b.lruClock
			return set[i].typ, set[i].target, true
		}
	}
	return program.NonBranch, 0, false
}

// Peek reports whether pc is present without touching LRU or stats.
func (b *BTB) Peek(pc uint64) bool {
	tag := pc >> 2
	set := b.set(pc)
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			return true
		}
	}
	return false
}

// Insert implements TargetBuffer: it installs pc, replacing LRU on
// conflict, or refreshes the existing entry (updating the target, which is
// how indirect-branch targets stay current).
func (b *BTB) Insert(pc uint64, t program.InstType, target uint64) {
	tag := pc >> 2
	set := b.set(pc)
	victim := 0
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			set[i].typ = t
			set[i].target = target
			b.lruClock++
			set[i].lru = b.lruClock
			return
		}
		if !set[i].valid {
			victim = i
		} else if set[victim].valid && set[i].lru < set[victim].lru {
			victim = i
		}
	}
	b.Inserts++
	if set[victim].valid {
		b.Replacements++
	}
	b.lruClock++
	set[victim] = entry{valid: true, typ: t, tag: tag, target: target, lru: b.lruClock}
}

// InsertCold installs a *prefetched* branch at the LRU position of its
// set: it only survives if a real lookup promotes it, bounding the BTB
// pollution that blind pre-decode installs cause (§VI-E). An existing
// entry just gets its target refreshed.
func (b *BTB) InsertCold(pc uint64, t program.InstType, target uint64) {
	tag := pc >> 2
	set := b.set(pc)
	victim := 0
	var minLRU uint64
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			set[i].typ = t
			set[i].target = target
			return
		}
		if !set[i].valid {
			// Free slot: use it, still marked old.
			set[i] = entry{valid: true, typ: t, tag: tag, target: target}
			b.Inserts++
			return
		}
		if i == 0 || set[i].lru < minLRU {
			victim = i
			minLRU = set[i].lru
		}
	}
	b.Inserts++
	b.Replacements++
	// Replace the LRU entry but keep the slot's age, so the prefetched
	// entry is itself the next victim unless a lookup promotes it.
	set[victim] = entry{valid: true, typ: t, tag: tag, target: target, lru: minLRU}
}

// Lookups implements TargetBuffer.
func (b *BTB) Lookups() uint64 { return b.lookups }

// Hits implements TargetBuffer.
func (b *BTB) Hits() uint64 { return b.hits }

// ResetStats implements TargetBuffer.
func (b *BTB) ResetStats() { b.lookups, b.hits, b.Inserts, b.Replacements = 0, 0, 0, 0 }

// Reset clears contents and statistics.
func (b *BTB) Reset() {
	for i := range b.entries {
		b.entries[i] = entry{}
	}
	b.lruClock = 0
	b.ResetStats()
}

// Perfect is the perfect-BTB oracle (§VI-A): every branch in the program
// image is detected with its static type; direct branches return their
// static target. Indirect branches return their last observed target (what
// an infinite BTB would hold), refinable by the indirect predictor;
// returns are detected and resolved through the RAS, as in hardware.
type Perfect struct {
	img      *program.Image
	indirect map[uint64]uint64 // pc -> last taken target (indirect sites)
	lookups  uint64
	hits     uint64
}

// NewPerfect wraps a program image as a perfect BTB.
func NewPerfect(img *program.Image) *Perfect {
	return &Perfect{img: img, indirect: make(map[uint64]uint64)}
}

// Name implements TargetBuffer.
func (p *Perfect) Name() string { return "perfect-btb" }

// Lookup implements TargetBuffer.
func (p *Perfect) Lookup(pc uint64) (program.InstType, uint64, bool) {
	p.lookups++
	si, ok := p.img.At(pc)
	if !ok || !si.Type.IsBranch() {
		return program.NonBranch, 0, false
	}
	p.hits++
	target := si.Target
	if si.Type.IsIndirect() {
		target = p.indirect[pc]
	}
	return si.Type, target, true
}

// Insert implements TargetBuffer: detection is already perfect, but the
// last target of indirect branches is recorded, as an infinite real BTB
// would.
func (p *Perfect) Insert(pc uint64, t program.InstType, target uint64) {
	if t.IsIndirect() {
		p.indirect[pc] = target
	}
}

// Lookups implements TargetBuffer.
func (p *Perfect) Lookups() uint64 { return p.lookups }

// Hits implements TargetBuffer.
func (p *Perfect) Hits() uint64 { return p.hits }

// ResetStats implements TargetBuffer.
func (p *Perfect) ResetStats() { p.lookups, p.hits = 0, 0 }
