package fdp

import (
	"bytes"
	"testing"
)

// TestKernelEquivalence simulates each golden (config, workload) pair
// twice in one process with fresh machine instances and asserts the two
// manifests are byte-identical. TestGoldenManifests pins behaviour
// against the committed past; this pins determinism within a single
// binary: no package-level state, map-iteration order, or pointer-keyed
// decision may leak into simulation results between runs.
func TestKernelEquivalence(t *testing.T) {
	for _, c := range goldenCases() {
		c := c
		t.Run(c.name, func(t *testing.T) {
			t.Parallel()
			first := goldenManifest(t, c)
			second := goldenManifest(t, c)
			if !bytes.Equal(first, second) {
				t.Fatalf("two in-process runs of %s diverged: %d vs %d bytes, first difference at byte %d",
					c.name, len(first), len(second), firstDiff(first, second))
			}
		})
	}
}
