package bpred

import (
	"testing"

	"fdp/internal/xrand"
)

func TestLoopPredictorLearnsFixedTrip(t *testing.T) {
	l := NewLoopPredictor(6)
	pc := uint64(0x40_0000)
	const trip = 12
	// Train several complete activations (trip-1 taken, 1 not-taken).
	for act := 0; act < 6; act++ {
		for i := 0; i < trip-1; i++ {
			l.Update(pc, true)
		}
		l.Update(pc, false)
	}
	// Now predict a full activation exactly.
	for i := 0; i < trip-1; i++ {
		taken, conf := l.Predict(pc)
		if !conf {
			t.Fatalf("iteration %d: not confident", i)
		}
		if !taken {
			t.Fatalf("iteration %d: predicted exit too early", i)
		}
		l.Update(pc, true)
	}
	taken, conf := l.Predict(pc)
	if !conf || taken {
		t.Fatalf("exit: conf=%v taken=%v, want confident not-taken", conf, taken)
	}
}

func TestLoopPredictorRejectsUnstableTrips(t *testing.T) {
	l := NewLoopPredictor(6)
	pc := uint64(0x1000)
	rng := xrand.New(7)
	for act := 0; act < 20; act++ {
		trip := 3 + rng.Intn(10) // wildly varying
		for i := 0; i < trip-1; i++ {
			l.Update(pc, true)
		}
		l.Update(pc, false)
	}
	if _, conf := l.Predict(pc); conf {
		t.Error("confident on an unstable loop")
	}
}

func TestLoopPredictorAgingReplacement(t *testing.T) {
	l := NewLoopPredictor(2) // 4 entries: force conflicts
	a := uint64(0x1000)
	b := a + (1 << 4) // same index (idx bits 2..3), different tag
	for act := 0; act < 4; act++ {
		for i := 0; i < 4; i++ {
			l.Update(a, true)
		}
		l.Update(a, false)
	}
	if _, conf := l.Predict(a); !conf {
		t.Skip("index aliasing differs; entry not trained")
	}
	// Hammer a conflicting branch until it takes over.
	for i := 0; i < 40; i++ {
		l.Update(b, false)
	}
	if _, conf := l.Predict(a); conf {
		t.Error("stale entry survived replacement pressure")
	}
}

func sclHarness(t *testing.T, p DirPredictor, seq func(i int) (uint64, bool), n int) float64 {
	t.Helper()
	h := NewHistory(p.Specs())
	p.Bind(0)
	correct, measured := 0, 0
	for i := 0; i < n; i++ {
		pc, taken := seq(i)
		pred := p.Predict(pc, h)
		p.Update(pc, h, taken)
		h.InsertDir(taken)
		if i >= n/2 {
			measured++
			if pred == taken {
				correct++
			}
		}
	}
	return float64(correct) / float64(measured)
}

func TestTAGESCLBeatsTAGEOnLongLoops(t *testing.T) {
	// Trip count 200: far beyond TAGE history reach; the loop predictor
	// nails it.
	seq := func(i int) (uint64, bool) { return 0x2000, i%200 != 199 }
	scl := sclHarness(t, TAGESCL24KB(), seq, 40000)
	tage := sclHarness(t, NewTAGE(TAGE18KB()), seq, 40000)
	if scl < tage {
		t.Errorf("TAGE-SC-L %.4f < TAGE %.4f on a long loop", scl, tage)
	}
	if scl < 0.999 {
		t.Errorf("TAGE-SC-L accuracy %.4f on a fixed long loop", scl)
	}
}

func TestTAGESCLMatchesTAGEOnPatterns(t *testing.T) {
	seq := func(i int) (uint64, bool) { return 0x3000, i%4 != 3 }
	scl := sclHarness(t, TAGESCL24KB(), seq, 20000)
	if scl < 0.99 {
		t.Errorf("TAGE-SC-L pattern accuracy %.3f", scl)
	}
}

func TestTAGESCLStatisticallyBiased(t *testing.T) {
	// A branch taken 80% at random: TAGE churns allocations; the
	// statistical corrector should keep accuracy near the bias.
	rng := xrand.New(11)
	seq := func(i int) (uint64, bool) { return 0x4000, rng.Bool(0.8) }
	scl := sclHarness(t, TAGESCL24KB(), seq, 40000)
	if scl < 0.70 {
		t.Errorf("TAGE-SC-L accuracy %.3f on 80%% biased branch", scl)
	}
}

func TestTAGESCLInterface(t *testing.T) {
	p := TAGESCL64KB()
	if p.Name() != "tage-sc-l-64kb" {
		t.Errorf("Name = %s", p.Name())
	}
	if p.StorageBits() <= NewTAGE(TAGE36KB()).StorageBits() {
		t.Error("SC-L storage not larger than bare TAGE")
	}
	specs := p.Specs()
	if len(specs) <= len(NewTAGE(TAGE36KB()).Specs()) {
		t.Error("SC-L registers no extra folds")
	}
	for _, s := range specs {
		if s.Length <= 0 || s.Width <= 0 {
			t.Errorf("bad spec %+v", s)
		}
	}
}

func TestPerceptronLearnsLinearlySeparable(t *testing.T) {
	// Outcome = history bit 3 (a linearly separable function).
	var hist []bool
	seq := func(i int) (uint64, bool) {
		taken := i%2 == 0
		if len(hist) >= 4 {
			taken = hist[len(hist)-4]
		}
		hist = append(hist, taken)
		return 0x5000, taken
	}
	acc := sclHarness(t, Perceptron8KB(), seq, 20000)
	if acc < 0.97 {
		t.Errorf("perceptron accuracy %.3f on linearly separable branch", acc)
	}
}

func TestPerceptronLearnsBias(t *testing.T) {
	acc := sclHarness(t, Perceptron8KB(), func(i int) (uint64, bool) {
		return uint64(0x100 + (i%32)*4), (i % 32) < 24
	}, 30000)
	if acc < 0.95 {
		t.Errorf("perceptron bias accuracy %.3f", acc)
	}
}

func TestPerceptronInterface(t *testing.T) {
	p := Perceptron8KB()
	if p.StorageBits() != 256*33*8 {
		t.Errorf("storage = %d", p.StorageBits())
	}
	if len(p.Specs()) != 0 {
		t.Error("perceptron should need no folds")
	}
	if p.Name() != "perceptron-8kb" {
		t.Errorf("Name = %s", p.Name())
	}
}

func BenchmarkTAGESCLPredict(b *testing.B) {
	p := TAGESCL24KB()
	h := NewHistory(p.Specs())
	p.Bind(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Predict(uint64(0x40_0000+(i%512)*4), h)
	}
}
