// Package faultkit is the seeded fault-injection harness behind `make
// chaos-check`: it turns a deterministic plan of per-job faults (panics,
// hangs, process kills) into a runner.Options.FaultHook, and corrupts
// files (cache entries, journal tails) in seeded, reproducible ways. All
// randomness flows through xrand, so a failing chaos run replays exactly
// from its seed.
package faultkit

import (
	"context"
	"fmt"
	"os"
	"sync"

	"fdp/internal/xrand"
)

// Kind enumerates the injectable faults.
type Kind int

const (
	// None leaves the job alone.
	None Kind = iota
	// Panic panics at attempt start — the transient class, which a retry
	// policy must absorb.
	Panic
	// Hang blocks on the attempt context until canceled — watchdog food;
	// classified fatal once the watchdog fires.
	Hang
	// Exit kills the whole process with os.Exit — the kill -9 model for
	// crash-recovery tests. Never absorbed; the test harness re-execs.
	Exit
)

// String names the kind for logs.
func (k Kind) String() string {
	switch k {
	case None:
		return "none"
	case Panic:
		return "panic"
	case Hang:
		return "hang"
	case Exit:
		return "exit"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Fault is one job's planned misbehaviour.
type Fault struct {
	Kind Kind
	// Attempts is how many attempts of the job misbehave (Panic/Hang) —
	// later attempts run clean, so Attempts < the retry budget means the
	// job eventually succeeds. For Exit it is the attempt that kills the
	// process. Zero means 1.
	Attempts int
	// Code is the Exit status (zero means 9, echoing SIGKILL).
	Code int
}

// Plan maps job indices to faults and counts what was actually injected.
// Safe for the concurrent calls a worker pool makes.
type Plan struct {
	mu       sync.Mutex
	faults   map[int]Fault
	injected map[Kind]int
}

// NewPlan returns an empty plan (every job clean).
func NewPlan() *Plan {
	return &Plan{faults: make(map[int]Fault), injected: make(map[Kind]int)}
}

// Set plans a fault for job.
func (p *Plan) Set(job int, f Fault) {
	if f.Attempts <= 0 {
		f.Attempts = 1
	}
	if f.Kind == Exit && f.Code == 0 {
		f.Code = 9
	}
	p.faults[job] = f
}

// Seeded scatters faults over jobs deterministically: each job
// independently panics (for one attempt) with probability panicFrac or
// hangs with probability hangFrac. The same seed always yields the same
// plan.
func Seeded(seed uint64, jobs int, panicFrac, hangFrac float64) *Plan {
	p := NewPlan()
	r := xrand.New(seed)
	for i := 0; i < jobs; i++ {
		switch {
		case r.Bool(panicFrac):
			p.Set(i, Fault{Kind: Panic})
		case r.Bool(hangFrac):
			p.Set(i, Fault{Kind: Hang})
		}
	}
	return p
}

// Injected reports how many faults of kind k actually fired.
func (p *Plan) Injected(k Kind) int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.injected[k]
}

// Planned reports how many jobs have a fault of kind k planned.
func (p *Plan) Planned(k Kind) int {
	n := 0
	for _, f := range p.faults {
		if f.Kind == k {
			n++
		}
	}
	return n
}

// Hook adapts the plan to runner.Options.FaultHook. It must be attached
// to the Execute call whose job indices the plan was built against.
func (p *Plan) Hook() func(ctx context.Context, job, attempt int) error {
	return func(ctx context.Context, job, attempt int) error {
		f, ok := p.faults[job]
		if !ok || attempt > f.Attempts {
			return nil
		}
		p.mu.Lock()
		p.injected[f.Kind]++
		p.mu.Unlock()
		switch f.Kind {
		case Panic:
			panic(fmt.Sprintf("faultkit: injected panic (job %d attempt %d)", job, attempt))
		case Hang:
			<-ctx.Done()
			return ctx.Err()
		case Exit:
			os.Exit(f.Code)
		}
		return nil
	}
}
