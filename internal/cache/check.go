package cache

import "fmt"

// CheckInvariants validates the MSHR file's structural invariants at the
// end of a cycle: the number of in-flight fills never exceeds the MSHR
// count, and no fill whose completion cycle has passed is still in
// flight (Advance must have released it — a stale fill is an
// allocate-without-release leak, typically a nextDone bookkeeping bug).
// It only reads state; the core's -check mode calls it once per cycle.
func (h *Hierarchy) CheckInvariants(now uint64) error {
	if len(h.inflight) > h.mshrs {
		return fmt.Errorf("cache: %d fills in flight exceed %d MSHRs", len(h.inflight), h.mshrs)
	}
	for i := range h.inflight {
		if h.inflight[i].Done < now {
			return fmt.Errorf("cache: leaked MSHR: fill of line %#x due at cycle %d still in flight at cycle %d",
				h.inflight[i].Line, h.inflight[i].Done, now)
		}
	}
	return nil
}
