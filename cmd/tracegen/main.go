// Command tracegen generates workload trace files and inspects them.
//
// Usage:
//
//	tracegen -workload server_a -n 1000000 -o server_a.fdpt.gz
//	tracegen -inspect server_a.fdpt.gz
package main

import (
	"flag"
	"fmt"
	"os"

	"fdp/internal/program"
	"fdp/internal/synth"
	"fdp/internal/trace"
)

func main() {
	var (
		workload     = flag.String("workload", "server_a", "standard workload name, or @file.yaml spec reference")
		workloadSpec = flag.String("workload-spec", "", "workload spec file to record (overrides -workload)")
		n            = flag.Uint64("n", 1_000_000, "dynamic instructions to record")
		out          = flag.String("o", "", "output file (default <workload>.fdpt.gz)")
		inspect      = flag.String("inspect", "", "print a trace file's header and histogram")
	)
	flag.Parse()

	if *inspect != "" {
		doInspect(*inspect)
		return
	}

	token := *workload
	if *workloadSpec != "" {
		token = "@" + *workloadSpec
	}
	ws, err := synth.Resolve(token)
	if err != nil {
		fatal("%v", err)
	}
	w := ws[0]
	path := *out
	if path == "" {
		path = w.Name + ".fdpt.gz"
	}
	f, err := os.Create(path)
	if err != nil {
		fatal("%v", err)
	}
	tw, err := trace.NewWriter(f, trace.Header{
		Name: w.Name, Class: w.Class, Seed: w.Seed, Entry: w.Entry(),
	}, w.Image())
	if err != nil {
		fatal("%v", err)
	}
	s := w.NewStream()
	for i := uint64(0); i < *n; i++ {
		tw.Record(s.Next())
	}
	if err := tw.Close(); err != nil {
		fatal("%v", err)
	}
	if err := f.Close(); err != nil {
		fatal("%v", err)
	}
	fi, _ := os.Stat(path)
	fmt.Printf("wrote %s: %d instructions, image %dKB, %d bytes (%.2f b/inst)\n",
		path, *n, w.FootprintBytes()/1024, fi.Size(), float64(fi.Size())/float64(*n))
}

func doInspect(path string) {
	f, err := os.Open(path)
	if err != nil {
		fatal("%v", err)
	}
	defer f.Close()
	tr, err := trace.Read(f)
	if err != nil {
		fatal("%v", err)
	}
	h := tr.Header
	fmt.Printf("trace:        %s (class %s, seed %#x)\n", h.Name, h.Class, h.Seed)
	fmt.Printf("entry:        %#x\n", h.Entry)
	fmt.Printf("instructions: %d\n", h.Instructions)
	img := tr.Image()
	fmt.Printf("image:        base %#x, %d instructions, %dKB\n", img.Base(), img.Size(), img.Bytes()/1024)
	hist := img.CountByType()
	for t := 0; t < program.NumInstTypes; t++ {
		if hist[t] > 0 {
			fmt.Printf("  %-12s %d\n", program.InstType(t).String(), hist[t])
		}
	}

	// Dynamic statistics from one replay pass.
	s := tr.NewStream()
	var branches, taken uint64
	for i := uint64(0); i < h.Instructions; i++ {
		d := s.Next()
		if d.SI.IsBranch() {
			branches++
			if d.Taken {
				taken++
			}
		}
	}
	fmt.Printf("dynamic:      %.1f%% branches, %.1f%% of branches taken\n",
		100*float64(branches)/float64(h.Instructions), 100*float64(taken)/float64(branches))
}

func fatal(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "tracegen: "+format+"\n", args...)
	os.Exit(1)
}
