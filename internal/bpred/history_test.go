package bpred

import (
	"testing"
	"testing/quick"

	"fdp/internal/xrand"
)

func TestNewHistoryValidation(t *testing.T) {
	for _, s := range []FoldSpec{
		{Length: 0, Width: 10},
		{Length: HistoryBits, Width: 10},
		{Length: 10, Width: 0},
		{Length: 10, Width: 32},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewHistory(%+v) did not panic", s)
				}
			}()
			NewHistory([]FoldSpec{s})
		}()
	}
}

func TestInsertBitShiftsRaw(t *testing.T) {
	h := NewHistory(nil)
	h.InsertBit(1)
	h.InsertBit(0)
	h.InsertBit(1)
	// Newest bit is Bit(0): sequence (newest first) = 1,0,1.
	if h.Bit(0) != 1 || h.Bit(1) != 0 || h.Bit(2) != 1 {
		t.Errorf("bits = %d%d%d", h.Bit(0), h.Bit(1), h.Bit(2))
	}
}

func TestRawShiftAcrossWords(t *testing.T) {
	h := NewHistory(nil)
	h.InsertBit(1)
	for i := 0; i < 64; i++ {
		h.InsertBit(0)
	}
	if h.Bit(64) != 1 {
		t.Error("bit did not cross word boundary")
	}
	if h.Bit(63) != 0 || h.Bit(65) != 0 {
		t.Error("neighbours polluted")
	}
}

// The incremental folded registers must always equal the brute-force fold.
func TestFoldedMatchesBruteForce(t *testing.T) {
	specs := []FoldSpec{
		{Length: 5, Width: 3},
		{Length: 13, Width: 7},
		{Length: 64, Width: 10},
		{Length: 130, Width: 11},
		{Length: 260, Width: 12},
		{Length: 300, Width: 13},
		{Length: 20, Width: 20}, // width == length
		{Length: 33, Width: 31},
	}
	h := NewHistory(specs)
	rng := xrand.New(99)
	for step := 0; step < 2000; step++ {
		h.InsertBit(uint32(rng.Uint64() & 1))
		for i, s := range specs {
			if got, want := h.Folded(i), h.FoldBrute(s); got != want {
				t.Fatalf("step %d spec %+v: folded=%#x brute=%#x", step, s, got, want)
			}
		}
	}
}

func TestInsertTakenUpdatesFolds(t *testing.T) {
	specs := []FoldSpec{{Length: 50, Width: 9}}
	h := NewHistory(specs)
	rng := xrand.New(7)
	for i := 0; i < 500; i++ {
		h.InsertTaken(rng.Uint64()&^3, rng.Uint64()&^3)
		if got, want := h.Folded(0), h.FoldBrute(specs[0]); got != want {
			t.Fatalf("after taken %d: folded=%#x brute=%#x", i, got, want)
		}
	}
}

func TestTargetHashDependsOnBoth(t *testing.T) {
	// The two-bit hash must react to pc and target changes somewhere.
	seenPC := false
	seenTgt := false
	for i := uint64(0); i < 256; i++ {
		if TargetHash(i<<2, 0x1000) != TargetHash(0, 0x1000) {
			seenPC = true
		}
		if TargetHash(0x400, i<<3) != TargetHash(0x400, 0) {
			seenTgt = true
		}
	}
	if !seenPC || !seenTgt {
		t.Errorf("hash insensitive: pc=%v tgt=%v", seenPC, seenTgt)
	}
	if TargetHash(0x1234, 0x5678) > 3 {
		t.Error("hash wider than 2 bits")
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	specs := []FoldSpec{{Length: 40, Width: 8}, {Length: 120, Width: 12}}
	h := NewHistory(specs)
	rng := xrand.New(3)
	for i := 0; i < 100; i++ {
		h.InsertBit(uint32(rng.Uint64() & 1))
	}
	var snap Snapshot
	h.Save(&snap)
	want0, want1 := h.Folded(0), h.Folded(1)
	for i := 0; i < 57; i++ {
		h.InsertBit(1)
	}
	h.Restore(&snap)
	if h.Folded(0) != want0 || h.Folded(1) != want1 {
		t.Error("folded registers not restored")
	}
	// And the restored state must stay consistent under further inserts.
	h.InsertBit(1)
	if h.Folded(1) != h.FoldBrute(specs[1]) {
		t.Error("restored state inconsistent with raw bits")
	}
}

func TestSnapshotReusesBuffer(t *testing.T) {
	h := NewHistory([]FoldSpec{{Length: 10, Width: 5}})
	var snap Snapshot
	h.Save(&snap)
	buf := &snap.folded[0]
	h.InsertBit(1)
	h.Save(&snap)
	if &snap.folded[0] != buf {
		t.Error("Save reallocated folded buffer")
	}
}

func TestCopyFromAndReset(t *testing.T) {
	specs := []FoldSpec{{Length: 30, Width: 6}}
	a := NewHistory(specs)
	b := NewHistory(specs)
	for i := 0; i < 25; i++ {
		a.InsertBit(1)
	}
	b.CopyFrom(a)
	if b.Folded(0) != a.Folded(0) || b.Bit(3) != a.Bit(3) {
		t.Error("CopyFrom incomplete")
	}
	a.Reset()
	if a.Folded(0) != 0 || a.Bit(0) != 0 {
		t.Error("Reset incomplete")
	}
}

// Property: inserting the same bit sequence into two histories yields
// identical folded state regardless of interleaved snapshots.
func TestHistoryDeterminism(t *testing.T) {
	specs := []FoldSpec{{Length: 100, Width: 11}}
	f := func(seq []byte) bool {
		a := NewHistory(specs)
		b := NewHistory(specs)
		var snap Snapshot
		for _, x := range seq {
			a.InsertBit(uint32(x) & 1)
			b.Save(&snap) // noise operations on b
			b.Restore(&snap)
			b.InsertBit(uint32(x) & 1)
		}
		return a.Folded(0) == b.Folded(0) && a.bits == b.bits
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkInsertBit(b *testing.B) {
	// TAGE-like spec load: 10 tables x 3 folds.
	var specs []FoldSpec
	lens := []int{4, 7, 12, 20, 33, 54, 88, 130, 190, 260}
	for _, l := range lens {
		specs = append(specs, FoldSpec{l, 11}, FoldSpec{l, 8}, FoldSpec{l, 7})
	}
	h := NewHistory(specs)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.InsertBit(uint32(i) & 1)
	}
}
