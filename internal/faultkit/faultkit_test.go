package faultkit

import (
	"context"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// TestSeededDeterminism: the same seed always plans the same faults.
func TestSeededDeterminism(t *testing.T) {
	a := Seeded(0xC4A05, 64, 0.2, 0.1)
	b := Seeded(0xC4A05, 64, 0.2, 0.1)
	if !reflect.DeepEqual(a.faults, b.faults) {
		t.Fatal("same seed planned different faults")
	}
	if a.Planned(Panic) == 0 || a.Planned(Hang) == 0 {
		t.Fatalf("seeded plan injected nothing: %d panics, %d hangs", a.Planned(Panic), a.Planned(Hang))
	}
	c := Seeded(0xBEEF, 64, 0.2, 0.1)
	if reflect.DeepEqual(a.faults, c.faults) {
		t.Fatal("different seeds planned identical faults (suspicious)")
	}
}

// TestHookPanicAndRecovery: a planned panic fires only on the planned
// attempts, then the job runs clean — the retryable-transient shape.
func TestHookPanicAndRecovery(t *testing.T) {
	p := NewPlan()
	p.Set(3, Fault{Kind: Panic, Attempts: 2})
	hook := p.Hook()

	if err := hook(context.Background(), 0, 1); err != nil {
		t.Fatalf("clean job faulted: %v", err)
	}
	for attempt := 1; attempt <= 2; attempt++ {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("attempt %d did not panic", attempt)
				}
			}()
			hook(context.Background(), 3, attempt)
		}()
	}
	if err := hook(context.Background(), 3, 3); err != nil {
		t.Fatalf("attempt past the fault budget still faulted: %v", err)
	}
	if got := p.Injected(Panic); got != 2 {
		t.Fatalf("Injected(Panic) = %d, want 2", got)
	}
}

// TestHookHangBlocksUntilCancel: the hang fault releases only on context
// cancellation and surfaces the context error (watchdog contract).
func TestHookHangBlocksUntilCancel(t *testing.T) {
	p := NewPlan()
	p.Set(0, Fault{Kind: Hang})
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- p.Hook()(ctx, 0, 1) }()
	select {
	case err := <-done:
		t.Fatalf("hang returned before cancel: %v", err)
	default:
	}
	cancel()
	if err := <-done; err != context.Canceled {
		t.Fatalf("hang returned %v, want context.Canceled", err)
	}
}

// TestFlipBitDeterministic: one bit differs, and the same seed flips the
// same bit.
func TestFlipBitDeterministic(t *testing.T) {
	dir := t.TempDir()
	orig := []byte("the quick brown fox jumps over the lazy dog")
	for _, name := range []string{"a", "b"} {
		if err := os.WriteFile(filepath.Join(dir, name), orig, 0o644); err != nil {
			t.Fatal(err)
		}
		if err := FlipBit(filepath.Join(dir, name), 0x5EED); err != nil {
			t.Fatal(err)
		}
	}
	a, _ := os.ReadFile(filepath.Join(dir, "a"))
	b, _ := os.ReadFile(filepath.Join(dir, "b"))
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed flipped different bits")
	}
	diff := 0
	for i := range orig {
		for bit := 0; bit < 8; bit++ {
			if (orig[i]^a[i])&(1<<bit) != 0 {
				diff++
			}
		}
	}
	if diff != 1 {
		t.Fatalf("%d bits differ, want exactly 1", diff)
	}
}

// TestTruncateAndGarbage: the torn-write helpers do what they say.
func TestTruncateAndGarbage(t *testing.T) {
	path := filepath.Join(t.TempDir(), "f")
	if err := os.WriteFile(path, make([]byte, 100), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := TruncateFrac(path, 0.4); err != nil {
		t.Fatal(err)
	}
	if st, _ := os.Stat(path); st.Size() != 40 {
		t.Fatalf("size %d after truncate, want 40", st.Size())
	}
	if err := AppendGarbage(path, 1, 7); err != nil {
		t.Fatal(err)
	}
	if st, _ := os.Stat(path); st.Size() != 47 {
		t.Fatalf("size %d after garbage, want 47", st.Size())
	}
}
